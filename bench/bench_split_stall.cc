// Split stall — the headline for elastic online resharding: p99 served-op
// latency on the shards that are NOT splitting while a sibling shard
// splits under load. The split migrates the victim shard's keys while
// both source and target serve, and publishes via one crash-atomic
// directory flip; the routing snapshots mean the other shards should
// barely notice. Acceptance: non-victim p99 during the split < 2x the
// no-split baseline.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "store/sharded_table.h"

using namespace hdnh;
using namespace hdnh::bench;

namespace {

struct Windows {
  Histogram calm;    // ops completed while no split is running
  Histogram during;  // ops completed while the sibling split is running
};

// 90% search / 10% update over a private id pool, bucketed by the global
// phase flag at op start.
void worker(HashTable* t, const std::vector<uint64_t>& ids, uint64_t seed,
            const std::atomic<bool>* stop, const std::atomic<int>* phase,
            Windows* out) {
  uint64_t x = seed | 1;
  Value v;
  while (!stop->load(std::memory_order_acquire)) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const uint64_t id = ids[x % ids.size()];
    const int ph = phase->load(std::memory_order_acquire);
    const uint64_t t0 = now_ns();
    if (x % 10 == 0) {
      t->update(make_key(id), make_value(id ^ x));
    } else {
      t->search(make_key(id), &v);
    }
    const uint64_t d = now_ns() - t0;
    (ph ? out->during : out->calm).record(d);
  }
}

// Unmeasured pressure on the victim shard, so the split races real writes.
void victim_load(HashTable* t, const std::vector<uint64_t>& ids,
                 const std::atomic<bool>* stop) {
  uint64_t x = 0x9E3779B9u;
  while (!stop->load(std::memory_order_acquire)) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const uint64_t id = ids[x % ids.size()];
    t->update(make_key(id), make_value(id + x));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 200000, 0, 4);
  const uint32_t shards = static_cast<uint32_t>(
      cli.get_int("initial_shards", 4, "shard count before the split"));
  const uint32_t victim = static_cast<uint32_t>(
      cli.get_int("victim", 0, "shard to split mid-run"));
  const int warm_ms =
      static_cast<int>(cli.get_int("warm_ms", 200, "per-window warmup"));
  const int calm_ms = static_cast<int>(
      cli.get_int("calm_ms", 400, "no-split baseline window length"));
  cli.finish();
  print_env("Split stall: non-victim p99 while a sibling shard splits", env);

  TableOptions opts;
  opts.capacity = env.preload;
  opts.sharding.max_shards = shards * 2;
  const std::string scheme = "hdnh@" + std::to_string(shards);
  OwnedTable t = make_table(scheme, env.preload * 2, env, opts);
  auto* st = dynamic_cast<store::ShardedTable*>(t.table.get());
  if (st == nullptr) {
    std::fprintf(stderr, "scheme %s did not build a sharded table\n",
                 scheme.c_str());
    return 1;
  }

  // Preload, then partition the ids by owning shard: the measured workers
  // only ever touch keys the split does not move.
  std::vector<uint64_t> other_ids, victim_ids;
  for (uint64_t id = 0; id < env.preload; ++id) {
    t.table->insert(make_key(id), make_value(id));
    (st->route(make_key(id)).shard == victim ? victim_ids : other_ids)
        .push_back(id);
  }
  if (victim_ids.empty() || other_ids.empty()) {
    std::fprintf(stderr, "degenerate key partition (victim=%u)\n", victim);
    return 1;
  }

  const uint32_t workers = env.threads == 0 ? 1 : env.threads;
  std::atomic<bool> stop{false};
  std::atomic<int> phase{0};
  std::vector<Windows> wins(workers);
  std::vector<std::thread> ts;
  ts.reserve(workers + 1);
  for (uint32_t w = 0; w < workers; ++w) {
    ts.emplace_back(worker, t.table.get(), std::cref(other_ids),
                    env.seed + w * 7919, &stop, &phase, &wins[w]);
  }
  ts.emplace_back(victim_load, t.table.get(), std::cref(victim_ids), &stop);

  // Window 1: calm baseline. Window 2: the split itself, bracketed by the
  // phase flag so only ops concurrent with the migration land in `during`.
  std::this_thread::sleep_for(std::chrono::milliseconds(warm_ms));
  for (auto& w : wins) w.calm = Histogram();
  std::this_thread::sleep_for(std::chrono::milliseconds(calm_ms));

  phase.store(1, std::memory_order_release);
  const uint64_t s0 = now_ns();
  const Status split = st->split_shard(victim);
  const uint64_t split_ns = now_ns() - s0;
  phase.store(0, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(warm_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : ts) th.join();

  if (!split.ok()) {
    std::fprintf(stderr, "split_shard(%u) failed: %s\n", victim,
                 split.to_string().c_str());
    return 1;
  }

  Histogram calm, during;
  for (auto& w : wins) {
    calm.merge(w.calm);
    during.merge(w.during);
  }
  const double calm_p99 = static_cast<double>(calm.percentile(0.99)) / 1e3;
  const double split_p99 = static_cast<double>(during.percentile(0.99)) / 1e3;
  const double ratio = calm_p99 > 0 ? split_p99 / calm_p99 : 0.0;
  const double split_ms = static_cast<double>(split_ns) / 1e6;

  std::printf("\n%-22s %10s %10s %12s\n", "window", "ops", "p50(us)",
              "p99(us)");
  std::printf("%-22s %10llu %10.2f %12.2f\n", "calm (no split)",
              static_cast<unsigned long long>(calm.count()),
              static_cast<double>(calm.percentile(0.5)) / 1e3, calm_p99);
  std::printf("%-22s %10llu %10.2f %12.2f\n", "during sibling split",
              static_cast<unsigned long long>(during.count()),
              static_cast<double>(during.percentile(0.5)) / 1e3, split_p99);
  std::printf("\nsplit: shard %u -> %u shards in %.2f ms; moved %llu keys; "
              "non-victim p99 ratio %.2fx (acceptance: < 2x)\n", victim,
              st->shards(), split_ms,
              static_cast<unsigned long long>(victim_ids.size()), ratio);

  print_json_line(
      "split_stall",
      {{"scheme", "\"" + scheme + "\""},
       {"threads", std::to_string(workers)},
       {"preload", std::to_string(env.preload)},
       {"victim", std::to_string(victim)},
       {"shards_after", std::to_string(st->shards())},
       {"split_ms", std::to_string(split_ms)},
       {"calm_p99_us", std::to_string(calm_p99)},
       {"split_p99_us", std::to_string(split_p99)},
       {"p99_ratio", std::to_string(ratio)},
       {"calm_ops", std::to_string(calm.count())},
       {"split_ops", std::to_string(during.count())}});
  return 0;
}
