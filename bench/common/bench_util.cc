#include "common/bench_util.h"

#include <cstdio>

namespace hdnh::bench {

Env standard_env(Cli& cli, uint64_t def_preload, uint64_t def_ops,
                 uint32_t def_threads) {
  Env env;
  env.preload = static_cast<uint64_t>(cli.get_int(
      "preload", static_cast<int64_t>(def_preload), "items preloaded"));
  env.ops = static_cast<uint64_t>(
      cli.get_int("ops", static_cast<int64_t>(def_ops), "timed operations"));
  env.threads = static_cast<uint32_t>(
      cli.get_int("threads", def_threads, "worker threads"));
  env.shards = static_cast<uint32_t>(cli.get_int(
      "shards", 0, "partition the store into N shards (0: scheme decides)"));
  env.emulate =
      cli.get_bool("emulate", true, "emulate AEP latency (spin-waits)");
  env.lat_scale =
      cli.get_double("lat_scale", 1.0, "scale all emulated latencies");
  env.seed = static_cast<uint64_t>(cli.get_int("seed", 42, "workload seed"));
  env.dimms = static_cast<uint32_t>(
      cli.get_int("dimms", 1, "emulated DIMM count (1 = flat device)"));
  env.dimm_ig = static_cast<uint64_t>(cli.get_int(
      "dimm_ig", 1 << 20, "DIMM interleave granularity in bytes (0: slices)"));
  env.dimm_write_mbps = static_cast<uint64_t>(cli.get_int(
      "dimm_write_mbps", 0, "per-DIMM write bandwidth cap, MB/s (0: uncapped)"));
  env.dimm_read_mbps = static_cast<uint64_t>(cli.get_int(
      "dimm_read_mbps", 0, "per-DIMM read bandwidth cap, MB/s (0: uncapped)"));
  env.chunked = cli.get_bool(
      "chunked", false, "per-thread chunked allocation (DIMM-affine claims)");
  return env;
}

nvm::NvmConfig nvm_config(const Env& env) {
  nvm::NvmConfig cfg;
  cfg.emulate_latency = env.emulate;
  cfg.latency_scale = env.lat_scale;
  cfg.dimm.dimms = env.dimms;
  cfg.dimm.interleave_bytes = env.dimm_ig;
  cfg.dimm.write_mbps = env.dimm_write_mbps;
  cfg.dimm.read_mbps = env.dimm_read_mbps;
  return cfg;
}

OwnedTable make_table(const std::string& scheme, uint64_t max_items,
                      const Env& env, TableOptions opts) {
  OwnedTable t;
  const SchemeSpec spec = parse_scheme(scheme);
  // --shards applies when the scheme string itself carries no @N suffix;
  // an explicit suffix always wins.
  std::string effective = scheme;
  if (spec.shards == 0 && env.shards > 1) {
    effective = spec.base + "@" + std::to_string(env.shards);
  }
  t.pool = std::make_unique<nvm::PmemPool>(
      pool_bytes_hint(effective, max_items), nvm_config(env));
  t.alloc = std::make_unique<nvm::PmemAllocator>(*t.pool);
  if (env.chunked) t.alloc->enable_chunked();
  if (opts.capacity == 0 || opts.capacity == TableOptions{}.capacity) {
    // PATH is static and must be sized for everything it will ever hold;
    // growing schemes start at the preload size, as the paper's runs do.
    opts.capacity = spec.base == "path" ? max_items : env.preload;
    if (opts.capacity == 0) opts.capacity = 1024;
  }
  t.table = create_table(effective, *t.alloc, opts);
  return t;
}

void print_env(const char* title, const Env& env) {
  std::printf("# %s\n", title);
  std::printf(
      "# preload=%llu ops=%llu threads=%u emulate=%s lat_scale=%.2f "
      "(AEP model: 300ns/256B read block, 100ns/line write, 30ns fence)\n",
      static_cast<unsigned long long>(env.preload),
      static_cast<unsigned long long>(env.ops), env.threads,
      env.emulate ? "on" : "off", env.lat_scale);
  std::fflush(stdout);
}

void print_run_header() {
  std::printf("%-28s %10s %12s %14s %14s %12s\n", "config", "Mops/s",
              "hit-rate", "nvm-reads/op", "nvm-writes/op", "hot-hits/op");
}

void print_run_row(const std::string& label, const ycsb::RunResult& r) {
  const double ops = static_cast<double>(r.ops ? r.ops : 1);
  std::printf("%-28s %10.3f %11.1f%% %14.3f %14.3f %12.3f\n", label.c_str(),
              r.mops(), 100.0 * static_cast<double>(r.hits) / ops,
              static_cast<double>(r.nvm.nvm_read_ops) / ops,
              static_cast<double>(r.nvm.nvm_write_ops) / ops,
              static_cast<double>(r.nvm.dram_hot_hits) / ops);
  std::fflush(stdout);
}

std::vector<std::pair<std::string, std::string>> dimm_json_fields(
    const Env& env) {
  return {
      {"dimms", std::to_string(env.dimms)},
      {"dimm_ig", std::to_string(env.dimm_ig)},
      {"dimm_write_mbps", std::to_string(env.dimm_write_mbps)},
      {"dimm_read_mbps", std::to_string(env.dimm_read_mbps)},
      {"chunked", env.chunked ? "true" : "false"},
  };
}

void print_json_run(
    const std::string& bench, const std::string& scheme, uint32_t threads,
    uint32_t shards, const ycsb::RunResult& r,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  const double ops = static_cast<double>(r.ops ? r.ops : 1);
  std::printf(
      "BENCH_JSON {\"bench\":\"%s\",\"scheme\":\"%s\",\"threads\":%u,"
      "\"shards\":%u,\"mops\":%.4f,\"nvm_reads_per_op\":%.4f,"
      "\"nvm_writes_per_op\":%.4f",
      bench.c_str(), scheme.c_str(), threads, shards, r.mops(),
      static_cast<double>(r.nvm.nvm_read_ops) / ops,
      static_cast<double>(r.nvm.nvm_write_ops) / ops);
  if (r.latency.count() > 0) {
    // Latency percentiles ride along whenever the run recorded a histogram
    // (RunOptions.measure_latency), so suite aggregations can plot the Fig
    // 15-style tail without a separate pass.
    std::printf(
        ",\"lat_mean_ns\":%.0f,\"lat_p50_ns\":%llu,\"lat_p90_ns\":%llu,"
        "\"lat_p99_ns\":%llu,\"lat_p999_ns\":%llu,\"lat_max_ns\":%llu",
        r.latency.mean(),
        static_cast<unsigned long long>(r.latency.percentile(0.5)),
        static_cast<unsigned long long>(r.latency.percentile(0.9)),
        static_cast<unsigned long long>(r.latency.percentile(0.99)),
        static_cast<unsigned long long>(r.latency.percentile(0.999)),
        static_cast<unsigned long long>(r.latency.max()));
  }
  for (const auto& [k, v] : extra) {
    std::printf(",\"%s\":%s", k.c_str(), v.c_str());
  }
  std::printf("}\n");
  std::fflush(stdout);
}

void print_json_line(
    const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::printf("BENCH_JSON {\"bench\":\"%s\"", bench.c_str());
  for (const auto& [k, v] : fields) {
    std::printf(",\"%s\":%s", k.c_str(), v.c_str());
  }
  std::printf("}\n");
  std::fflush(stdout);
}

}  // namespace hdnh::bench
