// Shared bench harness: standard flags, AEP-emulated table construction,
// and paper-style result rows.
//
// Every bench binary reproduces one table/figure of the paper (see
// DESIGN.md §3). Absolute numbers depend on this host; the *shape* (who
// wins, by what factor) is the reproduction target, and each binary also
// prints the hardware-independent signal: emulated-NVM reads/writes per
// operation.
//
// Common flags (see --help): --preload, --ops, --threads, --emulate,
// --lat_scale, --seed. Sizes default to a laptop-friendly 1:9
// preload:ops ratio, the paper's 20M:180M shape scaled down; scale up with
// --preload/--ops to approach the paper's operating point.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/factory.h"
#include "common/cli.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "ycsb/runner.h"

namespace hdnh::bench {

struct Env {
  uint64_t preload = 100000;
  uint64_t ops = 900000;
  uint32_t threads = 1;
  uint32_t shards = 0;  // 0 = scheme string decides (e.g. "hdnh@8")
  bool emulate = true;
  double lat_scale = 1.0;
  uint64_t seed = 42;
  // DIMM topology axis (--dimms etc.): 1 = the flat legacy device. Caps of
  // 0 attribute traffic per DIMM without ever stalling, so --dimms=N alone
  // is latency- and traffic-neutral (the CI smoke relies on this).
  uint32_t dimms = 1;
  uint64_t dimm_ig = 1ull << 20;   // interleave granularity, bytes
  uint64_t dimm_write_mbps = 0;    // per-DIMM caps, MB/s (0 = uncapped)
  uint64_t dimm_read_mbps = 0;
  bool chunked = false;  // per-thread chunked allocation (--chunked)
};

// Registers and reads the standard flags.
Env standard_env(Cli& cli, uint64_t def_preload = 100000,
                 uint64_t def_ops = 900000, uint32_t def_threads = 1);

// The NvmConfig a bench pool should run under: latency model + DIMM axis.
nvm::NvmConfig nvm_config(const Env& env);

// A pool + allocator + table bundle with the AEP latency model applied.
struct OwnedTable {
  std::unique_ptr<nvm::PmemPool> pool;
  std::unique_ptr<nvm::PmemAllocator> alloc;
  std::unique_ptr<HashTable> table;

  HashTable& operator*() { return *table; }
  HashTable* operator->() { return table.get(); }
};

// `max_items` sizes the pool; `opts.capacity` sizes the table's initial
// structure (0 -> defaults to max_items for the static PATH scheme and to
// env.preload for growing schemes).
OwnedTable make_table(const std::string& scheme, uint64_t max_items,
                      const Env& env, TableOptions opts = {});

// Pretty-printers.
void print_env(const char* title, const Env& env);
void print_run_row(const std::string& label, const ycsb::RunResult& r);
void print_run_header();

// Machine-readable result lines for scripted plotting: a single
//   BENCH_JSON {...}
// record per run, greppable out of the human-readable output.
// `print_json_run` covers the standard runner metrics (scheme, threads,
// shards, Mops/s, NVM read/write blocks per op), plus any caller-supplied
// `extra` fields (values written verbatim — quote strings yourself);
// `print_json_line` emits arbitrary extra fields under the same verbatim
// rule.
// The DimmConfig fields of `env` as JSON extra fields ("dimms",
// "dimm_ig", ...), for stamping every BENCH_JSON row of a dimm-axis run.
std::vector<std::pair<std::string, std::string>> dimm_json_fields(
    const Env& env);

void print_json_run(
    const std::string& bench, const std::string& scheme, uint32_t threads,
    uint32_t shards, const ycsb::RunResult& r,
    const std::vector<std::pair<std::string, std::string>>& extra = {});
void print_json_line(
    const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& fields);

}  // namespace hdnh::bench
