// Figure 13: single-thread throughput of PATH / LEVEL / CCEH / HDNH for
// 100% insert, positive search, negative search, and delete.
//
// Paper's reported shape (AEP testbed): HDNH beats CCEH/LEVEL by
//   insert 1.9x/3.7x, positive search 1.57x/4.33x,
//   negative search 2.2x/5.6x, delete 1.7x/2.9x,
// with PATH slowest overall.
#include <cstdio>
#include <map>

#include "common/bench_util.h"

using namespace hdnh;
using namespace hdnh::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli);
  cli.finish();
  print_env("Figure 13: single-thread performance", env);

  struct Case {
    const char* name;
    ycsb::WorkloadSpec spec;
  };
  const Case cases[] = {
      {"insert", ycsb::WorkloadSpec::InsertOnly()},
      {"search+", [] {
         auto s = ycsb::WorkloadSpec::ReadOnly();
         s.dist = ycsb::Dist::kUniform;  // isolate structure costs
         return s;
       }()},
      {"search-", ycsb::WorkloadSpec::NegativeRead()},
      {"delete", ycsb::WorkloadSpec::DeleteOnly()},
  };

  std::map<std::string, std::map<std::string, double>> mops;
  for (const Case& c : cases) {
    std::printf("\n== %s ==\n", c.name);
    print_run_header();
    for (const std::string& scheme : paper_schemes()) {
      const bool has_insert = c.spec.insert > 0;
      // Delete workloads need `ops` preloaded victims; inserts grow past
      // the preload; searches probe the preloaded set.
      const uint64_t preload =
          c.spec.erase > 0 ? std::max(env.preload, env.ops) : env.preload;
      const uint64_t max_items = preload + (has_insert ? env.ops : 0);
      OwnedTable t = make_table(scheme, max_items, env);
      t.pool->set_emulate_latency(false);  // fast untimed preload
      ycsb::preload(*t.table, preload);
      t.pool->set_emulate_latency(env.emulate);

      ycsb::RunOptions ro;
      ro.threads = env.threads;
      ro.seed = env.seed;
      auto r = ycsb::run(*t.table, c.spec, preload, env.ops, ro);
      print_run_row(std::string(t.table->name()), r);
      mops[c.name][scheme] = r.mops();
    }
  }

  std::printf("\n== HDNH speedups (paper: CCEH 1.9/1.57/2.2/1.7x, LEVEL "
              "3.7/4.33/5.6/2.9x) ==\n");
  for (const Case& c : cases) {
    auto& m = mops[c.name];
    std::printf("%-8s  vs CCEH %.2fx   vs LEVEL %.2fx   vs PATH %.2fx\n",
                c.name, m["hdnh"] / m["cceh"], m["hdnh"] / m["level"],
                m["hdnh"] / m["path"]);
  }
  return 0;
}
