// Figure 11(a): HDNH single-thread insert and positive-search throughput
// as the segment size sweeps 256 B .. 256 KB.
//
// Paper's shape: insert throughput rises up to 16 KB (fewer rehash stalls),
// then falls (large-segment resize blocking); search rises to 16 KB and
// then flattens. The paper picks 16 KB.
//
// Sweep semantics: the level geometry (segment count) is held constant, so
// segment size sets the table's capacity — exactly why the paper sees
// "the frequency of rehashing decreases with the increase of segment
// sizes": at 256 B the levels are tiny and the table rehashes constantly.
#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "hdnh/hdnh.h"

using namespace hdnh;
using namespace hdnh::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 50000, 450000);
  cli.finish();
  print_env("Figure 11(a): segment size sensitivity (HDNH)", env);

  const std::vector<uint64_t> sizes = {256,        1024,      4096,
                                       16 * 1024,  64 * 1024, 256 * 1024};
  std::printf("\n%-12s %14s %14s %12s\n", "segment", "insert Mops/s",
              "search Mops/s", "resizes");
  for (uint64_t seg : sizes) {
    TableOptions opts;
    opts.hdnh.segment_bytes = seg;
    // Constant segment count across the sweep (see header comment): 24
    // bottom-level segments; capacity scales with segment size.
    opts.capacity = static_cast<uint64_t>(
        0.7 * 3 * 24 * (seg / 256) * 8);
    if (opts.capacity == 0) opts.capacity = 1;

    // Insert throughput: preload untimed, then timed inserts (grows table).
    OwnedTable t = make_table("hdnh", env.preload + env.ops, env, opts);
    t.pool->set_emulate_latency(false);
    ycsb::preload(*t.table, env.preload);
    t.pool->set_emulate_latency(env.emulate);
    ycsb::RunOptions ro;
    ro.seed = env.seed;
    auto ins = ycsb::run(*t.table, ycsb::WorkloadSpec::InsertOnly(),
                         env.preload, env.ops, ro);

    // Search throughput on the now-full table.
    auto spec = ycsb::WorkloadSpec::ReadOnly();
    spec.dist = ycsb::Dist::kUniform;
    auto srch =
        ycsb::run(*t.table, spec, env.preload + env.ops, env.ops, ro);

    auto* h = dynamic_cast<Hdnh*>(t.table.get());
    char label[32];
    if (seg >= 1024) {
      std::snprintf(label, sizeof(label), "%lluKB",
                    static_cast<unsigned long long>(seg / 1024));
    } else {
      std::snprintf(label, sizeof(label), "%lluB",
                    static_cast<unsigned long long>(seg));
    }
    std::printf("%-12s %14.3f %14.3f %12llu\n", label, ins.mops(), srch.mops(),
                static_cast<unsigned long long>(h ? h->resize_count() : 0));
  }
  std::printf("\n(paper: both curves peak around 16KB; search flat beyond)\n");
  return 0;
}
