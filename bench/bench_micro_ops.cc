// Micro-benchmarks (google-benchmark): per-operation cost of each scheme on
// the emulated AEP device. Complements the figure benches with
// statistically-managed single-op timings.
//
// Run a subset with e.g.:
//   bench_micro_ops --benchmark_filter='Search.*hdnh'
#include <benchmark/benchmark.h>

#include <memory>

#include "common/bench_util.h"
#include "common/random.h"

using namespace hdnh;
using namespace hdnh::bench;

namespace {

constexpr uint64_t kPreload = 100000;

Env micro_env() {
  Env env;
  env.preload = kPreload;
  env.emulate = true;
  return env;
}

// One prebuilt table per scheme, shared by all micro benchmarks (building
// per-iteration would swamp the measurement).
OwnedTable& shared_table(const std::string& scheme) {
  static std::map<std::string, OwnedTable>* tables =
      new std::map<std::string, OwnedTable>();
  auto it = tables->find(scheme);
  if (it == tables->end()) {
    Env env = micro_env();
    // Headroom for insert/erase churn benchmarks.
    OwnedTable t = make_table(scheme, kPreload * 4, env);
    t.pool->set_emulate_latency(false);
    ycsb::preload(*t.table, kPreload);
    t.pool->set_emulate_latency(true);
    it = tables->emplace(scheme, std::move(t)).first;
  }
  return it->second;
}

void BM_PositiveSearch(benchmark::State& state, const std::string& scheme) {
  OwnedTable& t = shared_table(scheme);
  Rng rng(7);
  Value v;
  for (auto _ : state) {
    const uint64_t id = rng.next_below(kPreload);
    benchmark::DoNotOptimize(t.table->search(make_key(id), &v));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_NegativeSearch(benchmark::State& state, const std::string& scheme) {
  OwnedTable& t = shared_table(scheme);
  Rng rng(11);
  Value v;
  for (auto _ : state) {
    const uint64_t id = (1ULL << 41) + rng.next();
    benchmark::DoNotOptimize(t.table->search(make_key(id), &v));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Update(benchmark::State& state, const std::string& scheme) {
  OwnedTable& t = shared_table(scheme);
  Rng rng(13);
  for (auto _ : state) {
    const uint64_t id = rng.next_below(kPreload);
    benchmark::DoNotOptimize(t.table->update(make_key(id), make_value(id + 1)));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InsertEraseChurn(benchmark::State& state, const std::string& scheme) {
  OwnedTable& t = shared_table(scheme);
  uint64_t id = 1ULL << 33;
  for (auto _ : state) {
    t.table->insert(make_key(id), make_value(id));
    t.table->erase(make_key(id));
    ++id;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

void register_all() {
  for (const std::string scheme : {"hdnh", "cceh", "level", "path"}) {
    benchmark::RegisterBenchmark(("PositiveSearch/" + scheme).c_str(),
                                 BM_PositiveSearch, scheme);
    benchmark::RegisterBenchmark(("NegativeSearch/" + scheme).c_str(),
                                 BM_NegativeSearch, scheme);
    benchmark::RegisterBenchmark(("Update/" + scheme).c_str(), BM_Update,
                                 scheme);
    benchmark::RegisterBenchmark(("InsertEraseChurn/" + scheme).c_str(),
                                 BM_InsertEraseChurn, scheme);
  }
}

const bool registered = (register_all(), true);

}  // namespace
