// Cost of the always-on load-signal telemetry, measured where it hurts
// most: NegativeSearch (every probe walks the full OCF, no NVM stall to
// hide behind, so per-op bookkeeping is the largest possible fraction of
// the op). Two configurations over the same id stream:
//
//   off — latency capture, heavy-hitter tracking, and slowlog admission
//         all disabled at runtime (counters still tick; they always do)
//   on  — latency recording + heavy-hitter sketch + slowlog threshold
//         check enabled, i.e. the default server configuration
//
// Interleaved min-of-N (default 10) per tier; the BENCH_JSON line carries
// the PR's acceptance number (obs_on_negative_search_overhead, a
// fraction: 0.03 = 3% slower with telemetry on).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "obs/obs.h"

using namespace hdnh;
using namespace hdnh::bench;

namespace {

// Timed negative-search loop; returns Mops/s.
double run_negative(HashTable& t, const std::vector<uint64_t>& ids) {
  Value v;
  uint64_t hits = 0;
  const uint64_t t0 = now_ns();
  for (uint64_t id : ids) hits += t.search(make_key(id), &v) ? 1 : 0;
  const uint64_t dt = now_ns() - t0;
  (void)hits;
  return dt ? static_cast<double>(ids.size()) * 1e3 / static_cast<double>(dt)
            : 0.0;
}

void set_obs(bool on) {
  obs::Metrics::set_latency_enabled(on);
  obs::HeavyHitters::set_enabled(on);
  // Threshold stays at its default either way — admission is the cheap
  // rejecting compare we are charging for, not actual slowlog writes.
}

std::string fmt(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", x);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 100000, 400000);
  const int reps = static_cast<int>(
      cli.get_int("reps", 10, "repetitions per tier (best is kept)"));
  cli.finish();

  print_env("Telemetry overhead: NegativeSearch, obs runtime on vs off", env);

  if constexpr (!obs::kCompiledIn) {
    std::printf("HDNH_OBS=OFF build: nothing to measure, overhead is 0.\n");
    print_json_line("obs_overhead",
                    {{"obs_compiled", "false"},
                     {"obs_on_negative_search_overhead", "0.0"}});
    return 0;
  }

  OwnedTable t = make_table("hdnh-nohot", env.preload, env);
  for (uint64_t i = 0; i < env.preload; ++i)
    t.table->insert(make_key(i), make_value(i));

  Rng rng(env.seed);
  std::vector<uint64_t> ids(env.ops);
  for (auto& id : ids) id = (1ull << 40) + rng.next();

  // Warm both tiers, then interleave the measured reps so a descheduling
  // blip cannot decide the comparison either way.
  set_obs(false);
  run_negative(*t.table, ids);
  set_obs(true);
  run_negative(*t.table, ids);

  double off = 0, on = 0;
  for (int r = 0; r < reps; ++r) {
    set_obs(false);
    off = std::max(off, run_negative(*t.table, ids));
    set_obs(true);
    on = std::max(on, run_negative(*t.table, ids));
  }
  set_obs(true);  // leave the process in the default configuration

  const double overhead = (off > 0 && on > 0) ? (off - on) / off : 0.0;
  std::printf("%-6s %14s %14s %10s\n", "tier", "off Mops", "on Mops",
              "overhead");
  std::printf("%-6s %14.3f %14.3f %9.2f%%\n", "neg", off, on,
              overhead * 100.0);
  print_json_line("obs_overhead",
                  {{"reps", std::to_string(reps)},
                   {"ops", std::to_string(env.ops)},
                   {"off_mops", fmt(off)},
                   {"on_mops", fmt(on)},
                   {"obs_on_negative_search_overhead", fmt(overhead)}});
  return 0;
}
