// Figure 12: single-thread search throughput vs zipfian skew s in
// [0.5, 1.22] for LEVEL, CCEH, HDNH(LRU) and HDNH(RAFL).
//
// Paper's shape: LEVEL/CCEH barely react to skew (no hot-awareness); HDNH
// improves sharply with skew; RAFL beats LRU by ~1.23x at s=0.99 and
// ~1.4x at s=1.22.
#include <cstdio>
#include <map>
#include <vector>

#include "common/bench_util.h"

using namespace hdnh;
using namespace hdnh::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 200000, 600000);
  cli.finish();
  print_env("Figure 12: access skewness and the hot table", env);

  const std::vector<double> skews = {0.5, 0.7, 0.9, 0.99, 1.1, 1.22};
  const std::vector<std::string> schemes = {"level", "cceh", "hdnh-lru",
                                            "hdnh"};

  // Build one table per scheme and reuse it across the skew sweep.
  std::map<std::string, OwnedTable> tables;
  for (const auto& s : schemes) {
    tables.emplace(s, make_table(s, env.preload, env));
    tables[s].pool->set_emulate_latency(false);
    ycsb::preload(*tables[s].table, env.preload);
    tables[s].pool->set_emulate_latency(env.emulate);
  }

  std::printf("\n%-8s", "s");
  for (const auto& s : schemes) std::printf(" %12s", tables[s]->name());
  std::printf(" %12s\n", "RAFL/LRU");

  for (double s : skews) {
    std::map<std::string, double> mops;
    std::printf("%-8.2f", s);
    for (const auto& scheme : schemes) {
      auto spec = ycsb::WorkloadSpec::ReadOnly(s);
      ycsb::RunOptions ro;
      ro.seed = env.seed;
      auto r = ycsb::run(*tables[scheme].table, spec, env.preload, env.ops, ro);
      mops[scheme] = r.mops();
      std::printf(" %12.3f", r.mops());
    }
    std::printf(" %11.2fx\n", mops["hdnh"] / mops["hdnh-lru"]);
  }
  std::printf("\n(paper: HDNH rises with s; RAFL/LRU = 1.23x at s=0.99, "
              "1.4x at s=1.22; LEVEL/CCEH flat)\n");
  return 0;
}
