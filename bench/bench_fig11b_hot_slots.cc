// Figure 11(b): HDNH positive/negative search throughput vs hot-table
// slots per bucket.
//
// Paper's shape: positive search improves with more slots (higher hot-table
// hit rate); negative search degrades (longer useless hot-table scans
// before falling through to the OCF). 4 slots balances the two.
#include <cstdio>
#include <vector>

#include "common/bench_util.h"

using namespace hdnh;
using namespace hdnh::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 200000, 900000);
  cli.finish();
  print_env("Figure 11(b): hot-table slots per bucket (HDNH)", env);

  std::printf("\n%-8s %16s %16s %14s\n", "slots", "search+ Mops/s",
              "search- Mops/s", "hot-hit rate");
  for (uint32_t slots : {1u, 2u, 4u, 8u, 16u}) {
    TableOptions opts;
    opts.hdnh.hot_slots_per_bucket = slots;
    OwnedTable t = make_table("hdnh", env.preload, env, opts);
    t.pool->set_emulate_latency(false);
    ycsb::preload(*t.table, env.preload);
    t.pool->set_emulate_latency(env.emulate);

    ycsb::RunOptions ro;
    ro.seed = env.seed;
    auto pos_spec = ycsb::WorkloadSpec::ReadOnly(0.99);  // skewed: hot set
    auto pos = ycsb::run(*t.table, pos_spec, env.preload, env.ops, ro);
    auto neg = ycsb::run(*t.table, ycsb::WorkloadSpec::NegativeRead(),
                         env.preload, env.ops, ro);
    std::printf("%-8u %16.3f %16.3f %13.1f%%\n", slots, pos.mops(), neg.mops(),
                100.0 * static_cast<double>(pos.nvm.dram_hot_hits) /
                    static_cast<double>(pos.ops));
  }
  std::printf("\n(paper: positive search grows with slots, negative search "
              "shrinks; 4 is the balance point)\n");
  return 0;
}
