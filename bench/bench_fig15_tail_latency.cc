// Figure 15: tail-latency CDF under YCSB-A (50% read / 50% update,
// zipfian 0.99 — the high-contention case) at 16 threads.
//
// Paper's shape: HDNH's maximum latency is 2.96x lower than CCEH and 4.86x
// lower than LEVEL (19.2 ms vs 56.8 / 93.3 ms) because coarse in-NVM locks
// make readers queue behind writers.
#include <cstdio>

#include "common/bench_util.h"

using namespace hdnh;
using namespace hdnh::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 100000, 300000, /*def_threads=*/16);
  const bool dump_cdf = cli.get_bool("cdf", true, "print CDF sample points");
  cli.finish();
  print_env("Figure 15: YCSB-A tail latency CDF", env);

  std::printf("\n%-8s %10s %10s %10s %10s %10s %12s\n", "scheme", "p50(us)",
              "p90(us)", "p99(us)", "p99.9(us)", "p99.99(us)", "max(us)");
  double hdnh_max = 0, cceh_max = 0, level_max = 0;
  double hdnh_p999 = 0, cceh_p999 = 0, level_p999 = 0;
  for (const std::string& scheme : paper_schemes()) {
    OwnedTable t = make_table(scheme, env.preload, env);
    t.pool->set_emulate_latency(false);
    ycsb::preload(*t.table, env.preload);
    t.pool->set_emulate_latency(env.emulate);

    ycsb::RunOptions ro;
    ro.threads = env.threads;
    ro.seed = env.seed;
    ro.measure_latency = true;
    auto r = ycsb::run(*t.table, ycsb::WorkloadSpec::YcsbA(), env.preload,
                       env.ops, ro);
    auto us = [&](double q) {
      return static_cast<double>(r.latency.percentile(q)) / 1000.0;
    };
    const double mx = static_cast<double>(r.latency.max()) / 1000.0;
    std::printf("%-8s %10.2f %10.2f %10.2f %10.2f %10.2f %12.2f\n",
                t.table->name(), us(0.5), us(0.9), us(0.99), us(0.999),
                us(0.9999), mx);
    if (scheme == "hdnh") { hdnh_max = mx; hdnh_p999 = us(0.999); }
    if (scheme == "cceh") { cceh_max = mx; cceh_p999 = us(0.999); }
    if (scheme == "level") { level_max = mx; level_p999 = us(0.999); }

    if (dump_cdf) {
      std::printf("  cdf:");
      auto cdf = r.latency.cdf();
      // Sample ~12 evenly spaced points of the CDF for plotting.
      const size_t step = cdf.size() > 12 ? cdf.size() / 12 : 1;
      for (size_t i = 0; i < cdf.size(); i += step) {
        std::printf(" (%.1fus,%.4f)", static_cast<double>(cdf[i].first) / 1000.0,
                    cdf[i].second);
      }
      std::printf(" (%.1fus,1.0000)\n",
                  static_cast<double>(r.latency.max()) / 1000.0);
    }
  }
  if (hdnh_max > 0) {
    std::printf("\nmax-latency ratios: CCEH/HDNH %.2fx (paper 2.96x), "
                "LEVEL/HDNH %.2fx (paper 4.86x)\n",
                cceh_max / hdnh_max, level_max / hdnh_max);
    // On hosts with few cores the absolute max is dominated by scheduler
    // preemption (hits every scheme alike); the contention tail the paper
    // attributes to coarse in-NVM locks shows up at p99.9.
    std::printf("p99.9 ratios:       CCEH/HDNH %.2fx, LEVEL/HDNH %.2fx\n",
                cceh_p999 / (hdnh_p999 + 1e-9),
                level_p999 / (hdnh_p999 + 1e-9));
  }
  return 0;
}
