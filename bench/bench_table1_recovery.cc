// Table 1: HDNH recovery time (OCF rebuild, hot-table rebuild, merged
// total) for growing data sizes.
//
// Paper's numbers (2M / 20M / 200M items, single recovery thread):
//   OCF       8.0 /  9.1 /  60.8 ms
//   Hot table 6.7 / 48.6 / 351.2 ms
//   HDNH      8.3 / 60.5 / 435.1 ms   (merged single traversal < sum)
// Shape targets: near-linear growth in items, merged total below the sum
// of the separate rebuilds, sub-second at the largest size.
#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "hdnh/hdnh.h"

using namespace hdnh;
using namespace hdnh::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 20000, 0);
  const int64_t steps = cli.get_int("steps", 3, "sizes = preload * 10^k");
  const int64_t threads = cli.get_int("recovery_threads", 1,
                                      "recovery threads (paper uses 1)");
  cli.finish();
  print_env("Table 1: recovery time", env);
  std::printf("# sizes scale the paper's 2M/20M/200M by preload/2e6\n\n");

  std::printf("%-12s %14s %18s %16s %14s\n", "items", "OCF (ms)",
              "hot table (ms)", "merged (ms)", "items/ms");
  uint64_t size = env.preload;
  for (int64_t step = 0; step < steps; ++step, size *= 10) {
    TableOptions opts;
    opts.capacity = size;
    Env quiet = env;
    quiet.preload = size;
    OwnedTable t = make_table("hdnh", size, quiet, opts);
    t.pool->set_emulate_latency(false);  // build as fast as possible
    ycsb::preload(*t.table, size, 4);
    t.pool->set_emulate_latency(env.emulate);

    auto* h = dynamic_cast<Hdnh*>(t.table.get());
    // Separate rebuilds (how Table 1 itemizes OCF vs hot table)...
    auto sep = h->rebuild_volatile(static_cast<uint32_t>(threads),
                                   /*merged=*/false);
    // ...and the merged single-traversal recovery (the reported total).
    auto merged = h->rebuild_volatile(static_cast<uint32_t>(threads),
                                      /*merged=*/true);
    std::printf("%-12llu %14.1f %18.1f %16.1f %14.0f\n",
                static_cast<unsigned long long>(size), sep.ocf_ms, sep.hot_ms,
                merged.total_ms,
                static_cast<double>(size) / (merged.total_ms + 1e-9));
    std::fflush(stdout);
  }
  std::printf("\n(paper: 8.3 / 60.5 / 435.1 ms at 2M/20M/200M — merged total "
              "below OCF+hot sum, near-linear in items)\n");
  return 0;
}
