// Resize pauses — the "blocking of large segment sizes resizing" effect
// behind Fig 11(a)'s insert dip, measured directly: per-insert latency
// percentiles and the maximum stall across a run that crosses several
// resizes, for varying segment sizes, rehash worker counts, and shard
// counts. Sharding bounds each resize to 1/N of the keyspace, so the max
// stall shrinks roughly with the shard count.
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "hdnh/hdnh.h"
#include "store/sharded_table.h"

using namespace hdnh;
using namespace hdnh::bench;

namespace {

uint64_t table_resize_count(HashTable& t) {
  if (auto* h = dynamic_cast<Hdnh*>(&t)) return h->resize_count();
  if (auto* s = dynamic_cast<store::ShardedTable*>(&t))
    return s->resize_count();
  return 0;
}

std::vector<uint32_t> parse_list(const std::string& s) {
  std::vector<uint32_t> out;
  for (size_t pos = 0; pos < s.size();) {
    out.push_back(static_cast<uint32_t>(std::strtoul(&s[pos], nullptr, 10)));
    pos = s.find(',', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 4000, 250000);
  const std::string shard_list = cli.get_str(
      "shard_list", "1,8", "comma-separated shard counts to sweep");
  cli.finish();
  print_env("Resize pauses: insert stalls vs segment size / workers / shards",
            env);

  std::printf("\n%-10s %8s %7s %12s %12s %12s %14s %9s\n", "segment",
              "workers", "shards", "p50(us)", "p99(us)", "p99.9(us)",
              "max stall(ms)", "resizes");
  for (uint64_t seg : {uint64_t{1024}, uint64_t{16 * 1024},
                       uint64_t{256 * 1024}}) {
    for (uint32_t workers : {1u, 4u}) {
      for (uint32_t shards : parse_list(shard_list)) {
        TableOptions opts;
        opts.hdnh.segment_bytes = seg;
        opts.hdnh.resize_threads = workers;
        opts.capacity = env.preload;
        const std::string scheme =
            shards > 1 ? "hdnh@" + std::to_string(shards) : "hdnh";
        OwnedTable t = make_table(scheme, env.preload + env.ops, env, opts);
        ycsb::preload(*t.table, env.preload);

        Histogram lat;
        uint64_t max_ns = 0;
        for (uint64_t i = 0; i < env.ops; ++i) {
          const uint64_t id = (1 << 20) + i;
          const uint64_t t0 = now_ns();
          t.table->insert(make_key(id), make_value(id));
          const uint64_t d = now_ns() - t0;
          lat.record(d);
          max_ns = std::max(max_ns, d);
        }
        const uint64_t resizes = table_resize_count(*t.table);
        const double max_ms = static_cast<double>(max_ns) / 1e6;
        const double p99_us =
            static_cast<double>(lat.percentile(0.99)) / 1e3;
        std::printf("%-10llu %8u %7u %12.2f %12.2f %12.2f %14.2f %9llu\n",
                    static_cast<unsigned long long>(seg), workers, shards,
                    static_cast<double>(lat.percentile(0.5)) / 1e3, p99_us,
                    static_cast<double>(lat.percentile(0.999)) / 1e3, max_ms,
                    static_cast<unsigned long long>(resizes));
        std::fflush(stdout);
        print_json_line(
            "resize_pause",
            {{"scheme", "\"" + scheme + "\""},
             {"segment_bytes", std::to_string(seg)},
             {"workers", std::to_string(workers)},
             {"shards", std::to_string(shards)},
             {"p99_us", std::to_string(p99_us)},
             {"max_stall_ms", std::to_string(max_ms)},
             {"resizes", std::to_string(resizes)}});
      }
    }
  }
  std::printf("\n(expected: max stall grows with table size at resize; extra "
              "rehash workers and extra shards both shorten it — a shard "
              "resizes 1/N of the keys)\n");
  return 0;
}
