// Resize pauses — the "blocking of large segment sizes resizing" effect
// behind Fig 11(a)'s insert dip, measured directly: per-insert latency
// percentiles and the maximum stall across a run that crosses several
// resizes, for varying segment sizes and rehash worker counts.
#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "hdnh/hdnh.h"

using namespace hdnh;
using namespace hdnh::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 4000, 250000);
  cli.finish();
  print_env("Resize pauses: insert stalls vs segment size / rehash workers",
            env);

  std::printf("\n%-10s %8s %12s %12s %12s %14s %9s\n", "segment", "workers",
              "p50(us)", "p99(us)", "p99.9(us)", "max stall(ms)", "resizes");
  for (uint64_t seg : {uint64_t{1024}, uint64_t{16 * 1024},
                       uint64_t{256 * 1024}}) {
    for (uint32_t workers : {1u, 4u}) {
      TableOptions opts;
      opts.hdnh.segment_bytes = seg;
      opts.hdnh.resize_threads = workers;
      opts.capacity = env.preload;
      OwnedTable t = make_table("hdnh", env.preload + env.ops, env, opts);
      ycsb::preload(*t.table, env.preload);

      Histogram lat;
      uint64_t max_ns = 0;
      for (uint64_t i = 0; i < env.ops; ++i) {
        const uint64_t id = (1 << 20) + i;
        const uint64_t t0 = now_ns();
        t.table->insert(make_key(id), make_value(id));
        const uint64_t d = now_ns() - t0;
        lat.record(d);
        max_ns = std::max(max_ns, d);
      }
      auto* h = dynamic_cast<Hdnh*>(t.table.get());
      std::printf("%-10llu %8u %12.2f %12.2f %12.2f %14.2f %9llu\n",
                  static_cast<unsigned long long>(seg), workers,
                  static_cast<double>(lat.percentile(0.5)) / 1e3,
                  static_cast<double>(lat.percentile(0.99)) / 1e3,
                  static_cast<double>(lat.percentile(0.999)) / 1e3,
                  static_cast<double>(max_ns) / 1e6,
                  static_cast<unsigned long long>(h->resize_count()));
      std::fflush(stdout);
    }
  }
  std::printf("\n(expected: max stall grows with table size at resize; extra "
              "rehash workers shorten it on multi-core hosts)\n");
  return 0;
}
