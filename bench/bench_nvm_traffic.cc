// NVM traffic matrix — the hardware-independent reproduction signal.
//
// For every scheme x operation class, the emulated device's exact per-op
// costs: media reads (ops and 256 B blocks), writes (annotated stores and
// persisted cachelines, including lock-word writebacks), and fences. The
// paper's §4 throughput orderings follow directly from this table; unlike
// throughput, it does not depend on the host's core count or clock.
#include <cstdio>
#include <string>

#include "common/bench_util.h"

using namespace hdnh;
using namespace hdnh::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 100000, 200000);
  cli.finish();
  env.emulate = false;  // pure accounting: latency irrelevant
  print_env("Per-operation NVM traffic matrix (accounting only)", env);

  struct Case {
    const char* name;
    ycsb::WorkloadSpec spec;
  };
  const Case cases[] = {
      {"insert", ycsb::WorkloadSpec::InsertOnly()},
      {"search+ uniform", [] {
         auto s = ycsb::WorkloadSpec::ReadOnly();
         s.dist = ycsb::Dist::kUniform;
         return s;
       }()},
      {"search+ zipf.99", ycsb::WorkloadSpec::ReadOnly(0.99)},
      {"search- (miss)", ycsb::WorkloadSpec::NegativeRead()},
      {"update zipf.99", [] {
         ycsb::WorkloadSpec s;
         s.read = 0;
         s.update = 1;
         return s;
       }()},
      {"delete", ycsb::WorkloadSpec::DeleteOnly()},
  };

  for (const Case& c : cases) {
    std::printf("\n== %s ==\n", c.name);
    std::printf("%-8s %10s %12s %11s %12s %9s\n", "scheme", "reads/op",
                "blocks/op", "writes/op", "lines/op", "fences/op");
    for (const std::string& scheme : paper_schemes()) {
      const bool grows = c.spec.insert > 0;
      const uint64_t preload =
          c.spec.erase > 0 ? std::max(env.preload, env.ops) : env.preload;
      OwnedTable t = make_table(scheme, preload + (grows ? env.ops : 0), env);
      ycsb::preload(*t.table, preload);
      ycsb::RunOptions ro;
      ro.seed = env.seed;
      auto r = ycsb::run(*t.table, c.spec, preload, env.ops, ro);
      const double n = static_cast<double>(r.ops);
      std::printf("%-8s %10.3f %12.3f %11.3f %12.3f %9.3f\n", t.table->name(),
                  static_cast<double>(r.nvm.nvm_read_ops) / n,
                  static_cast<double>(r.nvm.nvm_read_blocks) / n,
                  static_cast<double>(r.nvm.nvm_write_ops) / n,
                  static_cast<double>(r.nvm.nvm_write_lines) / n,
                  static_cast<double>(r.nvm.fences) / n);
    }
  }
  std::printf("\n(HDNH's rows should show near-zero reads on misses — the "
              "OCF — and zero search writes — no in-NVM locks; baseline "
              "search rows pay 2 lock-line writebacks each.)\n");
  return 0;
}
