// bench_net — closed-loop load generator for hdnh_server.
//
// N connections (one driver thread each) keep a depth-D pipeline of
// requests in flight: each connection sends D commands, then issues one
// new command per reply, so exactly D are outstanding — the classic
// closed-loop shape whose offered load is conns × depth. The workload is
// a GET/SET mix over a fixed keyspace (default 95/5, the read-heavy
// serving mix of the acceptance run), with an optional MGET fraction to
// drive the server's batched read path.
//
// Reports throughput and per-request latency percentiles (latency of a
// pipelined request includes its queueing turn — that is the number a
// remote caller experiences) plus a BENCH_JSON line:
//   BENCH_JSON {"bench":"net","conns":32,"depth":8,...,"p99_ns":...}
// Protocol errors (RESP -ERR replies, malformed frames) are counted and
// make the exit code nonzero — CI asserts zero.
//
//   $ ./bench/bench_net --port=6399 --conns=32 --depth=8 --ops=500000
#include <atomic>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/random.h"
#include "net/client.h"

using namespace hdnh;

namespace {

std::string key_name(uint64_t id) { return "k" + std::to_string(id); }

// Deterministic value payload. value_bytes == 0 keeps the historic tiny
// values ("v<id>" / "w<id>", they fit a fixed-record store); otherwise the
// value is exactly value_bytes of id-derived text, exercising the
// variable-length path end to end.
std::string value_payload(char tag, uint64_t id, uint64_t value_bytes) {
  std::string v;
  v += tag;
  v += std::to_string(id);
  if (value_bytes == 0) return v;
  if (v.size() > value_bytes) {
    v.resize(value_bytes);
    return v;
  }
  v.reserve(value_bytes);
  while (v.size() < value_bytes) {
    v += static_cast<char>('a' + (id + v.size()) % 26);
  }
  return v;
}

struct ConnResult {
  uint64_t ops = 0;
  uint64_t hits = 0;
  uint64_t errors = 0;
  Histogram lat;
};

// One METRICS scrape (the full Prometheus text) over its own connection;
// "" if the server predates the command or the scrape fails — the bench
// then reports zeros for the server-side fields rather than failing.
std::string fetch_metrics(const std::string& host, uint16_t port) {
  try {
    net::Client c;
    c.set_timeouts({5000, 5000, 5000});
    c.connect(host, port);
    c.pipeline({"METRICS"});
    c.flush();
    const net::RespValue v = c.read_reply();
    if (v.type == net::RespValue::Type::kBulk) return v.str;
  } catch (const std::exception&) {
  }
  return "";
}

// Value of an exact Prometheus series (name + label body) in a scrape, 0.0
// when absent.
double prom_value(const std::string& text, const std::string& series) {
  const std::string needle = series + " ";
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    const size_t len = (eol == std::string::npos ? text.size() : eol) - pos;
    if (len > needle.size() && text.compare(pos, needle.size(), needle) == 0) {
      return std::atof(text.c_str() + pos + needle.size());
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string host = cli.get_str("host", "127.0.0.1", "server host");
  const uint16_t port =
      static_cast<uint16_t>(cli.get_int("port", 6399, "server port"));
  const uint32_t conns =
      static_cast<uint32_t>(cli.get_int("conns", 32, "client connections"));
  const uint32_t depth = static_cast<uint32_t>(
      cli.get_int("depth", 8, "pipelined requests in flight per connection"));
  const uint64_t ops = static_cast<uint64_t>(
      cli.get_int("ops", 500000, "total operations across all connections"));
  const uint64_t keys = static_cast<uint64_t>(
      cli.get_int("keys", 100000, "keyspace size (preloaded via SET)"));
  const double get_ratio =
      cli.get_double("get_ratio", 0.95, "fraction of GETs (rest are SETs)");
  const double mget_ratio = cli.get_double(
      "mget_ratio", 0.0, "fraction of GETs issued as one MGET batch");
  const uint32_t mget_batch = static_cast<uint32_t>(
      cli.get_int("mget_batch", 16, "keys per MGET when mget_ratio > 0"));
  const bool do_preload =
      cli.get_bool("preload", true, "SET the whole keyspace first");
  const uint64_t value_bytes = static_cast<uint64_t>(cli.get_int(
      "value_bytes", 0,
      "exact value size (0 = tiny fixed-record-compatible values)"));
  const uint64_t seed = static_cast<uint64_t>(cli.get_int("seed", 42, "rng seed"));
  const int timeout_ms = static_cast<int>(cli.get_int(
      "timeout_ms", 30000,
      "connect/recv/send deadline per call (0 = block forever)"));
  cli.finish();

  // A dead or wedged server fails the bench within the deadline instead of
  // hanging the harness (CI kills the server mid-run on purpose).
  net::Client::Timeouts deadlines;
  deadlines.connect_ms = timeout_ms;
  deadlines.recv_ms = timeout_ms;
  deadlines.send_ms = timeout_ms;

  // Preload the keyspace over the wire, deeply pipelined on one connection.
  if (do_preload) {
    net::Client c;
    c.set_timeouts(deadlines);
    c.connect(host, port);
    const uint64_t t0 = now_ns();
    uint64_t inflight = 0, answered = 0;
    for (uint64_t id = 0; id < keys; ++id) {
      c.pipeline({"SET", key_name(id), value_payload('v', id, value_bytes)});
      if (++inflight == 512) {
        c.flush();
        while (inflight > 0) {
          const net::RespValue v = c.read_reply();
          if (v.is_error()) {
            std::fprintf(stderr, "preload error: %s\n", v.str.c_str());
            return 1;
          }
          --inflight;
          ++answered;
        }
      }
    }
    c.flush();
    while (answered < keys) {
      if (c.read_reply().is_error()) return 1;
      ++answered;
    }
    std::printf("# preloaded %llu keys in %.2fs\n",
                static_cast<unsigned long long>(keys),
                static_cast<double>(now_ns() - t0) / 1e9);
  }

  // Server-side view: scrape METRICS before and after the measured run so
  // the BENCH_JSON line carries the server's own counter deltas (what the
  // store actually did) next to the client-side latency (what the caller
  // saw).
  const std::string scrape_before = fetch_metrics(host, port);

  const uint64_t per_conn = ops / (conns ? conns : 1);
  std::vector<ConnResult> results(conns);
  std::vector<std::thread> drivers;
  drivers.reserve(conns);
  std::atomic<bool> failed{false};
  const uint64_t bench_t0 = now_ns();

  for (uint32_t ci = 0; ci < conns; ++ci) {
    drivers.emplace_back([&, ci] {
      ConnResult& res = results[ci];
      try {
        net::Client c;
        c.set_timeouts(deadlines);
        c.connect(host, port);
        Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (ci + 1)));
        // FIFO of (send timestamp, keys carried): replies come back in
        // order, so front() is always the reply being read.
        std::deque<std::pair<uint64_t, uint32_t>> inflight;
        uint64_t sent_keys = 0, done_keys = 0;
        const uint64_t quota = per_conn + (ci < ops % conns ? 1 : 0);

        auto issue_one = [&] {
          const double dice = rng.next_double();
          uint32_t carried = 1;
          if (dice < get_ratio * mget_ratio) {
            std::vector<std::string> args;
            carried = mget_batch;
            if (sent_keys + carried > quota) {
              carried = static_cast<uint32_t>(quota - sent_keys);
            }
            args.reserve(carried + 1);
            args.emplace_back("MGET");
            for (uint32_t j = 0; j < carried; ++j) {
              args.push_back(key_name(rng.next_below(keys)));
            }
            c.pipeline(args);
          } else if (dice < get_ratio) {
            c.pipeline({"GET", key_name(rng.next_below(keys))});
          } else {
            const uint64_t id = rng.next_below(keys);
            c.pipeline(
                {"SET", key_name(id), value_payload('w', id, value_bytes)});
          }
          inflight.emplace_back(now_ns(), carried);
          sent_keys += carried;
        };

        while (done_keys < quota) {
          while (sent_keys < quota && inflight.size() < depth) issue_one();
          c.flush();
          const net::RespValue v = c.read_reply();
          const auto [t_sent, carried] = inflight.front();
          inflight.pop_front();
          res.lat.record(now_ns() - t_sent);
          done_keys += carried;
          res.ops += carried;
          if (v.is_error()) {
            ++res.errors;
          } else if (v.type == net::RespValue::Type::kArray) {
            for (const auto& e : v.elems) res.hits += !e.is_nil();
          } else if (!v.is_nil()) {
            ++res.hits;
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "conn %u: %s\n", ci, e.what());
        ++res.errors;
        failed.store(true);
      }
    });
  }
  for (auto& t : drivers) t.join();
  const double seconds = static_cast<double>(now_ns() - bench_t0) / 1e9;
  const std::string scrape_after = fetch_metrics(host, port);
  auto scrape_delta = [&](const std::string& series) {
    return prom_value(scrape_after, series) - prom_value(scrape_before, series);
  };

  ConnResult total;
  for (const auto& r : results) {
    total.ops += r.ops;
    total.hits += r.hits;
    total.errors += r.errors;
    total.lat.merge(r.lat);
  }
  const double mops = seconds > 0 ? static_cast<double>(total.ops) / seconds / 1e6
                                  : 0;

  std::printf(
      "# net: conns=%u depth=%u ops=%llu get_ratio=%.2f -> %.3f Mops/s, "
      "p50=%llu ns p95=%llu ns p99=%llu ns p999=%llu ns, errors=%llu\n",
      conns, depth, static_cast<unsigned long long>(total.ops), get_ratio,
      mops, static_cast<unsigned long long>(total.lat.percentile(0.50)),
      static_cast<unsigned long long>(total.lat.percentile(0.95)),
      static_cast<unsigned long long>(total.lat.percentile(0.99)),
      static_cast<unsigned long long>(total.lat.percentile(0.999)),
      static_cast<unsigned long long>(total.errors));

  bench::print_json_line(
      "net",
      {{"conns", std::to_string(conns)},
       {"depth", std::to_string(depth)},
       {"ops", std::to_string(total.ops)},
       {"keys", std::to_string(keys)},
       {"get_ratio", std::to_string(get_ratio)},
       {"mget_ratio", std::to_string(mget_ratio)},
       {"value_bytes", std::to_string(value_bytes)},
       {"seconds", std::to_string(seconds)},
       {"mops", std::to_string(mops)},
       {"hits", std::to_string(total.hits)},
       {"errors", std::to_string(total.errors)},
       {"p50_ns", std::to_string(total.lat.percentile(0.50))},
       {"p95_ns", std::to_string(total.lat.percentile(0.95))},
       {"p99_ns", std::to_string(total.lat.percentile(0.99))},
       {"p999_ns", std::to_string(total.lat.percentile(0.999))},
       // Server-side deltas over the measured interval (0 when the server
       // has no METRICS command or scraping failed).
       {"server_ops_get",
        std::to_string(scrape_delta("hdnh_ops_total{op=\"get\"}"))},
       {"server_ops_put",
        std::to_string(scrape_delta("hdnh_ops_total{op=\"put\"}"))},
       {"server_mget_keys",
        std::to_string(scrape_delta("hdnh_ops_total{op=\"multiget_keys\"}"))},
       {"server_nvm_read_blocks",
        std::to_string(scrape_delta("hdnh_nvm_read_blocks_total"))},
       {"server_nvm_write_lines",
        std::to_string(scrape_delta("hdnh_nvm_write_lines_total"))},
       {"server_window_hot_hit_ratio",
        std::to_string(prom_value(scrape_after, "hdnh_window_hot_hit_ratio"))},
       {"server_window_get_p99_ns",
        std::to_string(prom_value(
            scrape_after,
            "hdnh_window_op_latency_ns{op=\"get\",quantile=\"0.99\"}"))}});

  return (total.errors > 0 || failed.load()) ? 1 : 0;
}
