// Microbench of the two PR-level read-path optimizations:
//
//   1. probe kernel — scalar vs vector OCF/bucket scanning (emulation off:
//      this isolates the CPU cost of the probe itself). Positive and
//      negative lookups, hot table off so every search walks the OCF.
//   2. batched multiget vs serial search — default AEP cost model ON, the
//      phased pipeline's overlapped reads-ahead against one-at-a-time
//      latency charging. Uniform keys with misses included.
//
// Each run emits a BENCH_JSON line; the ratio lines carry the PR's
// acceptance numbers (probe_simd_speedup, multiget_batch_speedup).
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/simd.h"

using namespace hdnh;
using namespace hdnh::bench;

namespace {

double mops(uint64_t ops, uint64_t ns) {
  return ns ? static_cast<double>(ops) * 1e3 / static_cast<double>(ns) : 0.0;
}

// Timed search loop over a prebuilt id stream; returns Mops/s.
double run_serial(HashTable& t, const std::vector<uint64_t>& ids) {
  Value v;
  uint64_t hits = 0;
  const uint64_t t0 = now_ns();
  for (uint64_t id : ids) hits += t.search(make_key(id), &v) ? 1 : 0;
  const uint64_t dt = now_ns() - t0;
  (void)hits;
  return mops(ids.size(), dt);
}

double run_batched(HashTable& t, const std::vector<uint64_t>& ids,
                   size_t batch) {
  std::vector<Key> keys(batch);
  std::vector<Value> values(batch);
  std::vector<uint8_t> found(batch);
  uint64_t hits = 0;
  const uint64_t t0 = now_ns();
  for (size_t base = 0; base < ids.size(); base += batch) {
    const size_t n = std::min(batch, ids.size() - base);
    for (size_t i = 0; i < n; ++i) keys[i] = make_key(ids[base + i]);
    hits += t.multiget(keys.data(), n, values.data(),
                       reinterpret_cast<bool*>(found.data()));
  }
  const uint64_t dt = now_ns() - t0;
  (void)hits;
  return mops(ids.size(), dt);
}

std::string fmt(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", x);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 100000, 400000);
  const uint64_t batch = static_cast<uint64_t>(
      cli.get_int("batch", 32, "multiget batch size"));
  const int reps = static_cast<int>(
      cli.get_int("reps", 3, "repetitions per measurement (best is kept)"));
  cli.finish();
  print_env("Read-path microbench: probe kernel + batched multiget", env);

  Rng rng(env.seed);

  // ---- 1. probe kernel: scalar vs vector, accounting only ----
  {
    Env probe_env = env;
    probe_env.emulate = false;
    OwnedTable t = make_table("hdnh-nohot", env.preload, probe_env);
    for (uint64_t i = 0; i < env.preload; ++i)
      t.table->insert(make_key(i), make_value(i));

    std::vector<uint64_t> pos(env.ops), neg(env.ops), mix(env.ops);
    for (auto& id : pos) id = rng.next_below(env.preload);
    for (auto& id : neg) id = (1ull << 40) + rng.next();
    for (size_t i = 0; i < mix.size(); ++i) mix[i] = i % 2 ? pos[i] : neg[i];

    struct Case {
      const char* name;
      const std::vector<uint64_t>* ids;
    } cases[] = {{"positive", &pos}, {"negative", &neg}, {"mixed", &mix}};

    std::printf("\n== probe kernel (hot table off, no latency emulation) ==\n");
    std::printf("%-10s %14s %14s %9s\n", "lookup", "scalar Mops", "simd Mops",
                "speedup");
    for (const Case& c : cases) {
      // Interleave the two tiers and keep each tier's best rep: the box
      // running this may be shared, and a single descheduling blip must not
      // decide the comparison either way.
      double scalar = 0, vec = 0;
      simd::force_level(simd::IsaLevel::kScalar);
      run_serial(*t.table, *c.ids);  // warm-up
      simd::force_level(simd::compiled_level());
      run_serial(*t.table, *c.ids);  // warm-up
      for (int r = 0; r < reps; ++r) {
        simd::force_level(simd::IsaLevel::kScalar);
        scalar = std::max(scalar, run_serial(*t.table, *c.ids));
        simd::force_level(simd::compiled_level());
        vec = std::max(vec, run_serial(*t.table, *c.ids));
      }
      const double speedup = scalar > 0 ? vec / scalar : 0;
      std::printf("%-10s %14.3f %14.3f %8.2fx\n", c.name, scalar, vec,
                  speedup);
      print_json_line(
          "micro_probe",
          {{"case", std::string("\"") + c.name + "\""},
           {"simd_level",
            std::string("\"") + simd::level_name(simd::compiled_level()) +
                "\""},
           {"scalar_mops", fmt(scalar)},
           {"simd_mops", fmt(vec)},
           {"probe_simd_speedup", fmt(speedup)}});
    }
    simd::force_level(simd::compiled_level());
  }

  // ---- 2. batched multiget vs serial search, full cost model ----
  {
    Env get_env = env;  // --emulate=false isolates the pipeline's CPU cost
    OwnedTable t = make_table("hdnh", env.preload, get_env);
    for (uint64_t i = 0; i < env.preload; ++i)
      t.table->insert(make_key(i), make_value(i));

    // Uniform over 1.25x the preloaded space: ~20% misses ride along.
    std::vector<uint64_t> ids(env.ops);
    for (auto& id : ids) id = rng.next_below(env.preload + env.preload / 4);

    std::printf("\n== multiget pipeline (default AEP model, batch=%llu) ==\n",
                static_cast<unsigned long long>(batch));
    run_serial(*t.table, ids);  // warm-up (also fills the hot table)
    run_batched(*t.table, ids, batch);
    double serial = 0, batched = 0;
    uint64_t b_overlapped = 0, b_stalled = 0;
    for (int r = 0; r < reps; ++r) {
      serial = std::max(serial, run_serial(*t.table, ids));
      const nvm::StatsSnapshot s0 = nvm::Stats::snapshot();
      batched = std::max(batched, run_batched(*t.table, ids, batch));
      const nvm::StatsSnapshot s1 = nvm::Stats::snapshot();
      b_overlapped += s1.nvm_read_blocks_overlapped - s0.nvm_read_blocks_overlapped;
      b_stalled += s1.nvm_read_blocks_stalled - s0.nvm_read_blocks_stalled;
    }
    const double overlap_frac =
        b_overlapped + b_stalled
            ? static_cast<double>(b_overlapped) /
                  static_cast<double>(b_overlapped + b_stalled)
            : 0.0;
    const double speedup = serial > 0 ? batched / serial : 0;
    std::printf("%-10s %14s %14s %9s\n", "", "serial Mops", "batched Mops",
                "speedup");
    std::printf("%-10s %14.3f %14.3f %8.2fx\n", "uniform", serial, batched,
                speedup);
    print_json_line("micro_multiget",
                    {{"batch", std::to_string(batch)},
                     {"serial_mops", fmt(serial)},
                     {"batched_mops", fmt(batched)},
                     {"overlapped_read_fraction", fmt(overlap_frac)},
                     {"multiget_batch_speedup", fmt(speedup)}});
  }
  return 0;
}
