// DIMM-aware NVM parallelism: insert-heavy value-log throughput across a
// thread sweep, under three device/allocator configurations:
//
//   flat          dimms=1, shared bump allocator — the legacy emulator.
//   dimm_shared   dimms=D with per-DIMM bandwidth caps, shared allocator:
//                 segments are bump-allocated nearly contiguously, so the
//                 threads' active segments cluster on one or two interleave
//                 stripes and their combined write demand slams into a
//                 single DIMM's token bucket. (For the clustering to be
//                 visible the stripe must hold several segments, so the
//                 bench defaults the interleave to 8 x segment_bytes.)
//   dimm_chunked  dimms=D with the same caps, chunked allocator
//                 (chunk_bytes = segment_bytes): each thread claims whole
//                 chunks on its round-robin home DIMM, so segment traffic
//                 spreads across all D buckets and per-DIMM demand stays
//                 under the cap — Peng et al.'s "bandwidth scales only when
//                 traffic actually spreads across DIMMs", reproduced.
//
// Caps default to auto-calibration: an uncapped warm-up run measures this
// host's achievable NVM write byte rate R, and each DIMM is capped at
// R / (D - 2) MB/s — concentrated traffic oversubscribes one bucket ~4x,
// spread traffic stays comfortably below cap. Override with
// --dimm_write_mbps for fixed-cap runs (e.g. Optane-calibrated 2300).
//
// The headline row (dimm_scaling_headline) records chunked/shared speedup
// at the top thread count; the acceptance floor is 1.3x.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.h"
#include "nvm/stats.h"
#include "vkv/vkv_store.h"

using namespace hdnh;
using namespace hdnh::bench;

namespace {

struct RunOut {
  double mops = 0;
  double secs = 0;
  uint64_t write_bytes = 0;
  uint64_t stall_ns = 0;
  uint64_t chunks_claimed = 0;
  uint64_t shared_fallbacks = 0;
  uint32_t active_dimms = 0;
  uint64_t dimm_w[nvm::kMaxDimms] = {};
  uint64_t dimm_r[nvm::kMaxDimms] = {};
  uint64_t dimm_stall[nvm::kMaxDimms] = {};
};

struct Shape {
  uint64_t ops_per_thread;
  uint64_t value_len;
  uint64_t segment_bytes;
  uint64_t pool_bytes;
};

// One fresh store, `threads` writer threads, disjoint key ranges,
// insert-only. Returns throughput plus the per-DIMM traffic signature.
RunOut run_insert(const Env& env, const Shape& sh, uint32_t threads,
                  bool chunked) {
  nvm::PmemPool pool(sh.pool_bytes, nvm_config(env));
  nvm::PmemAllocator alloc(pool);
  if (chunked) {
    nvm::PmemAllocator::ChunkConfig cc;
    cc.chunk_bytes = sh.segment_bytes;  // segments claim whole chunks
    // Keep half the region on the shared path for the index (it resizes
    // through large allocations the chunk arena should not absorb).
    cc.reserve_bytes = sh.pool_bytes / 2;
    alloc.enable_chunked(cc);
  }
  vkv::VkvStore::Options vo;
  vo.expected_records = threads * sh.ops_per_thread;
  vo.segment_bytes = sh.segment_bytes;
  vo.log_bytes = vkv::LogStore::kMaxSegments * sh.segment_bytes;
  vo.auto_gc = false;  // insert-only: nothing dead to reclaim
  vkv::VkvStore store(alloc, vo);

  nvm::ScopedStatsDelta d;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ts;
  for (uint32_t t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      const std::string val(sh.value_len, 'v');
      for (uint64_t i = 0; i < sh.ops_per_thread; ++i) {
        const std::string key =
            "k" + std::to_string(t) + "_" + std::to_string(i);
        if (!store.put(key, val).ok()) std::abort();
      }
    });
  }
  for (auto& th : ts) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const nvm::StatsSnapshot s = d.delta();

  RunOut out;
  out.secs = secs;
  out.mops = static_cast<double>(threads) *
             static_cast<double>(sh.ops_per_thread) / secs / 1e6;
  out.write_bytes = s.nvm_write_lines * nvm::kCacheLine;
  out.chunks_claimed = s.alloc_chunks_claimed;
  out.shared_fallbacks = s.alloc_shared_fallbacks;
  for (uint32_t dm = 0; dm < nvm::kMaxDimms; ++dm) {
    out.stall_ns += s.nvm_dimm_write_stall_ns[dm] + s.nvm_dimm_read_stall_ns[dm];
    if (s.nvm_dimm_write_bytes[dm] != 0) out.active_dimms++;
    out.dimm_w[dm] = s.nvm_dimm_write_bytes[dm];
    out.dimm_r[dm] = s.nvm_dimm_read_bytes[dm];
    out.dimm_stall[dm] =
        s.nvm_dimm_write_stall_ns[dm] + s.nvm_dimm_read_stall_ns[dm];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, /*def_preload=*/0, /*def_ops=*/0);
  const std::string thread_list =
      cli.get_str("thread_list", "1,2,4,8", "comma-separated thread counts");
  // Large values keep the discriminating traffic (value-log appends, whose
  // placement the allocator controls) dominant over index writes (whose
  // placement is identical in every variant).
  const uint64_t value_len = static_cast<uint64_t>(
      cli.get_int("value_len", 1000, "value bytes per record"));
  const uint64_t segment_kb = static_cast<uint64_t>(cli.get_int(
      "segment_kb", 1024, "log segment (and chunk) size in KiB"));
  cli.finish();
  if (env.dimms == 1) env.dimms = 6;  // the bench's subject; default 6-DIMM
  print_env("DIMM scaling: insert-heavy value-log throughput", env);

  std::vector<uint32_t> threads;
  for (size_t pos = 0; pos < thread_list.size();) {
    threads.push_back(
        static_cast<uint32_t>(std::strtoul(&thread_list[pos], nullptr, 10)));
    pos = thread_list.find(',', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
  const uint32_t top = *std::max_element(threads.begin(), threads.end());

  Shape sh;
  sh.value_len = value_len;
  sh.segment_bytes = segment_kb << 10;
  // Default shape: each thread writes one segment's worth of records, so a
  // T-thread run has T active segments totalling T x segment_bytes — small
  // enough to sit inside ONE interleave stripe when bump-allocated
  // contiguously (the shared variant's pathology) and to land on T
  // distinct home DIMMs when chunk-claimed (the fix being measured).
  sh.ops_per_thread =
      env.ops != 0 ? std::max<uint64_t>(1, env.ops / top)
                   : sh.segment_bytes / (value_len + 64 /*record overhead*/);
  // Total log demand must fit the 64-segment directory with slack.
  const uint64_t demand =
      top * sh.ops_per_thread * (value_len + 64);
  if (demand > vkv::LogStore::kMaxSegments * sh.segment_bytes / 2) {
    sh.segment_bytes =
        2 * demand / vkv::LogStore::kMaxSegments;  // grow segments to fit
    std::printf("# segment_bytes raised to %llu to fit the log directory\n",
                static_cast<unsigned long long>(sh.segment_bytes));
  }
  sh.pool_bytes = std::max<uint64_t>(
      256ull << 20, 4 * vkv::LogStore::kMaxSegments * sh.segment_bytes);
  // A stripe must hold every active segment of the top run or
  // contiguously-allocated segments spread across DIMMs on their own and
  // there is nothing for affinity to fix. Unless the caller pinned a
  // different granularity, interleave at top-threads segments per stripe.
  if (env.dimm_ig == (1ull << 20)) env.dimm_ig = top * sh.segment_bytes;

  // Auto-calibrate the per-DIMM caps from this host's achievable write
  // rate, unless the caller pinned them. Calibration runs uncapped on the
  // flat device at the top thread count — the demand the capped runs see.
  Env flat = env;
  flat.dimms = 1;
  flat.dimm_write_mbps = 0;
  flat.dimm_read_mbps = 0;
  if (env.dimm_write_mbps == 0) {
    const RunOut cal = run_insert(flat, sh, top, /*chunked=*/false);
    const double mbps =
        static_cast<double>(cal.write_bytes) / cal.secs / 1e6;
    // Cap at R/D: D-way-spread demand exactly saturates the fleet while
    // one-stripe-concentrated demand oversubscribes its bucket D-fold.
    env.dimm_write_mbps =
        std::max<uint64_t>(1, static_cast<uint64_t>(mbps) / env.dimms);
    env.dimm_read_mbps = 3 * env.dimm_write_mbps;  // Optane read:write ~3:1
    std::printf(
        "# calibration: host writes %.0f MB/s -> per-DIMM cap %llu MB/s "
        "(x%u DIMMs)\n",
        mbps, static_cast<unsigned long long>(env.dimm_write_mbps),
        env.dimms);
  }

  struct Variant {
    const char* name;
    bool dimm;     // run under env (D dimms + caps) vs flat
    bool chunked;
  };
  const Variant variants[] = {
      {"flat", false, false},
      {"dimm_shared", true, false},
      {"dimm_chunked", true, true},
  };

  std::printf("\n%-14s %8s %10s %12s %12s %10s %8s\n", "config", "threads",
              "Mops/s", "stall-ms", "MB-written", "dimms-hit", "chunks");
  double shared_top = 0, chunked_top = 0;
  for (const uint32_t th : threads) {
    for (const Variant& v : variants) {
      const Env& e = v.dimm ? env : flat;
      const RunOut r = run_insert(e, sh, th, v.chunked);
      std::printf("%-14s %8u %10.3f %12.1f %12.1f %10u %8llu\n", v.name, th,
                  r.mops, static_cast<double>(r.stall_ns) / 1e6,
                  static_cast<double>(r.write_bytes) / 1e6, r.active_dimms,
                  static_cast<unsigned long long>(r.chunks_claimed));
      if (e.dimms > 1) {
        std::printf("  per-dimm wMB/rMB/stall-ms:");
        for (uint32_t dm = 0; dm < e.dimms; ++dm) {
          std::printf(" [%u] %.1f/%.1f/%.0f", dm,
                      static_cast<double>(r.dimm_w[dm]) / 1e6,
                      static_cast<double>(r.dimm_r[dm]) / 1e6,
                      static_cast<double>(r.dimm_stall[dm]) / 1e6);
        }
        std::printf("\n");
      }
      std::fflush(stdout);
      Env stamped = e;
      stamped.chunked = v.chunked;
      std::vector<std::pair<std::string, std::string>> fields;
      fields.emplace_back("variant", std::string("\"") + v.name + "\"");
      fields.emplace_back("threads", std::to_string(th));
      for (auto& kv : dimm_json_fields(stamped)) fields.push_back(kv);
      fields.emplace_back("mops", std::to_string(r.mops));
      fields.emplace_back("stall_ns", std::to_string(r.stall_ns));
      fields.emplace_back("active_dimms", std::to_string(r.active_dimms));
      fields.emplace_back("chunks_claimed", std::to_string(r.chunks_claimed));
      fields.emplace_back("shared_fallbacks",
                          std::to_string(r.shared_fallbacks));
      print_json_line("dimm_scaling", fields);
      if (th == top && std::string(v.name) == "dimm_shared") shared_top = r.mops;
      if (th == top && std::string(v.name) == "dimm_chunked") chunked_top = r.mops;
    }
  }

  const double speedup = shared_top > 0 ? chunked_top / shared_top : 0;
  std::printf(
      "\nheadline: chunked+affine vs shared allocator at %u threads, "
      "%u DIMMs: %.2fx (acceptance floor 1.3x)\n",
      top, env.dimms, speedup);
  print_json_line(
      "dimm_scaling_headline",
      {{"threads", std::to_string(top)},
       {"dimms", std::to_string(env.dimms)},
       {"dimm_ig", std::to_string(env.dimm_ig)},
       {"dimm_write_mbps", std::to_string(env.dimm_write_mbps)},
       {"dimm_read_mbps", std::to_string(env.dimm_read_mbps)},
       {"shared_mops", std::to_string(shared_top)},
       {"chunked_mops", std::to_string(chunked_top)},
       {"speedup", std::to_string(speedup)}});
  return 0;
}
