// YCSB suite: workloads A (50r/50u), B (95r/5u) and C (100r), zipfian 0.99,
// across all four schemes — the abstract's claim is "HDNH outperforms its
// counterparts by up to 2.9x under various YCSB workloads".
#include <cstdio>
#include <map>

#include "common/bench_util.h"

using namespace hdnh;
using namespace hdnh::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 150000, 600000);
  const uint32_t read_batch = static_cast<uint32_t>(cli.get_int(
      "read_batch", 0, "issue point reads through multiget in batches"));
  const bool latency = cli.get_bool(
      "latency", true, "record per-op latency percentiles into BENCH_JSON");
  cli.finish();
  print_env("YCSB A/B/C suite", env);

  struct Case {
    const char* name;
    ycsb::WorkloadSpec spec;
  };
  const Case cases[] = {
      {"YCSB-A (50r/50u)", ycsb::WorkloadSpec::YcsbA()},
      {"YCSB-B (95r/5u)", ycsb::WorkloadSpec::YcsbB()},
      {"YCSB-C (100r)", ycsb::WorkloadSpec::YcsbC()},
  };

  std::map<std::string, std::map<std::string, double>> mops;
  for (const Case& c : cases) {
    std::printf("\n== %s ==\n", c.name);
    print_run_header();
    for (const std::string& scheme : paper_schemes()) {
      OwnedTable t = make_table(scheme, env.preload, env);
      t.pool->set_emulate_latency(false);
      ycsb::preload(*t.table, env.preload);
      t.pool->set_emulate_latency(env.emulate);
      ycsb::RunOptions ro;
      ro.threads = env.threads;
      ro.seed = env.seed;
      ro.read_batch = read_batch;
      ro.measure_latency = latency;
      auto r = ycsb::run(*t.table, c.spec, env.preload, env.ops, ro);
      print_run_row(std::string(t.table->name()), r);
      print_json_run(c.name, std::string(t.table->name()), env.threads,
                     env.shards ? env.shards : 1, r);
      mops[c.name][scheme] = r.mops();
    }
  }

  std::printf("\n== HDNH speedups (abstract: 'up to 2.9x') ==\n");
  for (const Case& c : cases) {
    auto& m = mops[c.name];
    std::printf("%-18s vs CCEH %.2fx  vs LEVEL %.2fx  vs PATH %.2fx\n",
                c.name, m["hdnh"] / m["cceh"], m["hdnh"] / m["level"],
                m["hdnh"] / m["path"]);
  }
  return 0;
}
