// YCSB suite: workloads A (50r/50u), B (95r/5u) and C (100r), zipfian 0.99,
// across all four schemes — the abstract's claim is "HDNH outperforms its
// counterparts by up to 2.9x under various YCSB workloads".
//
// --value_sweep=16,128,1024,65536 additionally runs the same workloads over
// the variable-length value-log store (create_kv_store "vkv") at each exact
// value size, emitting BENCH_JSON rows with a "value_bytes" field — the
// large-value trajectory the fixed 15-byte record cannot express.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/bench_util.h"

using namespace hdnh;
using namespace hdnh::bench;

namespace {

std::vector<uint64_t> parse_sizes(const std::string& csv) {
  std::vector<uint64_t> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
    if (!tok.empty()) out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    pos = comma == std::string::npos ? csv.size() : comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 150000, 600000);
  const uint32_t read_batch = static_cast<uint32_t>(cli.get_int(
      "read_batch", 0, "issue point reads through multiget in batches"));
  const bool latency = cli.get_bool(
      "latency", true, "record per-op latency percentiles into BENCH_JSON");
  const std::string value_sweep = cli.get_str(
      "value_sweep", "",
      "comma-separated value sizes to run over the vkv store (empty = skip)");
  const bool fixed = cli.get_bool(
      "fixed", true, "run the fixed-record scheme comparison section");
  cli.finish();
  print_env("YCSB A/B/C suite", env);

  struct Case {
    const char* name;
    ycsb::WorkloadSpec spec;
  };
  const Case cases[] = {
      {"YCSB-A (50r/50u)", ycsb::WorkloadSpec::YcsbA()},
      {"YCSB-B (95r/5u)", ycsb::WorkloadSpec::YcsbB()},
      {"YCSB-C (100r)", ycsb::WorkloadSpec::YcsbC()},
  };

  std::map<std::string, std::map<std::string, double>> mops;
  for (const Case& c : cases) {
    if (!fixed) break;
    std::printf("\n== %s ==\n", c.name);
    print_run_header();
    for (const std::string& scheme : paper_schemes()) {
      OwnedTable t = make_table(scheme, env.preload, env);
      t.pool->set_emulate_latency(false);
      ycsb::preload(*t.table, env.preload);
      t.pool->set_emulate_latency(env.emulate);
      ycsb::RunOptions ro;
      ro.threads = env.threads;
      ro.seed = env.seed;
      ro.read_batch = read_batch;
      ro.measure_latency = latency;
      auto r = ycsb::run(*t.table, c.spec, env.preload, env.ops, ro);
      print_run_row(std::string(t.table->name()), r);
      print_json_run(c.name, std::string(t.table->name()), env.threads,
                     env.shards ? env.shards : 1, r);
      mops[c.name][scheme] = r.mops();
    }
  }

  if (fixed) {
    std::printf("\n== HDNH speedups (abstract: 'up to 2.9x') ==\n");
    for (const Case& c : cases) {
      auto& m = mops[c.name];
      std::printf("%-18s vs CCEH %.2fx  vs LEVEL %.2fx  vs PATH %.2fx\n",
                  c.name, m["hdnh"] / m["cceh"], m["hdnh"] / m["level"],
                  m["hdnh"] / m["path"]);
    }
  }

  // ---- variable-length value sweep over the vkv store ----
  for (const uint64_t vb : parse_sizes(value_sweep)) {
    // Large values shrink the keyspace and op count so one sweep point
    // keeps a laptop-friendly footprint (~256 MB of live values).
    const uint64_t budget = 256ull << 20;
    const uint64_t per_rec = vb + 64;  // record header + handle slack
    uint64_t preload = env.preload;
    if (preload * per_rec > budget) preload = budget / per_rec;
    if (preload < 1024) preload = 1024;
    uint64_t ops = env.ops;
    if (ops > 4 * preload) ops = 4 * preload;

    const uint64_t capacity = preload + preload / 2;
    const std::string scheme =
        env.shards > 1 ? "vkv@" + std::to_string(env.shards) : "vkv";
    std::printf("\n== vkv value sweep: %llu B values (preload=%llu ops=%llu) ==\n",
                static_cast<unsigned long long>(vb),
                static_cast<unsigned long long>(preload),
                static_cast<unsigned long long>(ops));
    print_run_header();
    for (const Case& c : cases) {
      nvm::NvmConfig cfg;
      cfg.emulate_latency = env.emulate;
      cfg.latency_scale = env.lat_scale;
      nvm::PmemPool pool(kv_pool_bytes_hint(scheme, capacity, vb), cfg);
      nvm::PmemAllocator alloc(pool);
      TableOptions topts;
      topts.capacity = capacity;
      topts.log_bytes = 2 * capacity * per_rec + (32ull << 20);
      auto store = create_kv_store(scheme, alloc, topts);

      pool.set_emulate_latency(false);
      ycsb::preload(*store, preload, vb, env.threads);
      pool.set_emulate_latency(env.emulate);

      ycsb::RunOptions ro;
      ro.threads = env.threads;
      ro.seed = env.seed;
      ro.read_batch = read_batch;
      ro.measure_latency = latency;
      ro.value_bytes = vb;
      auto r = ycsb::run(*store, c.spec, preload, ops, ro);
      const std::string label =
          std::string(store->name()) + " " + std::to_string(vb) + "B";
      print_run_row(label, r);
      print_json_run(c.name, std::string(store->name()), env.threads,
                     env.shards ? env.shards : 1, r,
                     {{"value_bytes", std::to_string(vb)}});
    }
  }
  return 0;
}
