// Space utilization (supports §4's "good space utilization" claim and §3.2's
// OCF-overhead argument): for each scheme, the achieved load factor at each
// structural growth event, plus HDNH's DRAM overhead per record (OCF entry
// = 2 B/slot, hot table = ratio * 31 B).
#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "hdnh/hdnh.h"
#include "hdnh/nv_layout.h"

using namespace hdnh;
using namespace hdnh::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 4000, 300000);
  cli.finish();
  env.emulate = false;  // space metrics only; no need to pay latency
  print_env("Space utilization at growth events", env);

  for (const std::string& scheme : {std::string("hdnh"), std::string("level"),
                                    std::string("cceh")}) {
    OwnedTable t = make_table(scheme, env.ops, env);
    std::printf("\n== %s ==\n%-12s %14s %12s\n", t.table->name(), "items",
                "load factor", "total slots");
    double prev_lf = 0;
    uint64_t grow_events = 0;
    double peak_lf = 0;
    for (uint64_t i = 0; i < env.ops; ++i) {
      t.table->insert(make_key(i), make_value(i));
      const double lf = t.table->load_factor();
      peak_lf = std::max(peak_lf, lf);
      if (lf < prev_lf * 0.6) {  // structure grew
        ++grow_events;
        std::printf("%-12llu %13.1f%% %12llu   (grew; pre-growth fill "
                    "%.1f%%)\n",
                    static_cast<unsigned long long>(i + 1), 100 * lf,
                    static_cast<unsigned long long>(
                        static_cast<uint64_t>((i + 1) / (lf > 0 ? lf : 1))),
                    100 * prev_lf);
      }
      prev_lf = lf;
    }
    std::printf("final: %.1f%% fill after %llu growths; peak fill %.1f%%\n",
                100 * t.table->load_factor(),
                static_cast<unsigned long long>(grow_events), 100 * peak_lf);

    if (scheme == "hdnh") {
      auto* h = dynamic_cast<Hdnh*>(t.table.get());
      const uint64_t nvt_slots = h->total_slots();
      const double ocf_bytes = 2.0 * static_cast<double>(nvt_slots);
      const double hot_bytes =
          static_cast<double>(h->hot_table_slots()) * (sizeof(KVPair) + 2);
      std::printf("DRAM overhead: OCF %.1f MB (2 B/slot), hot table %.1f MB "
                  "-> %.2f B per NVT slot vs 31 B record\n",
                  ocf_bytes / 1e6, hot_bytes / 1e6,
                  (ocf_bytes + hot_bytes) / static_cast<double>(nvt_slots));
    }
  }
  std::printf("\n(paper claim: HDNH reaches high fill before resizing thanks "
              "to 8 candidate buckets x 8 slots; OCF costs only 2 B/slot)\n");
  return 0;
}
