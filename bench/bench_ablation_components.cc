// Ablation (beyond the paper's figures): isolate each HDNH design choice by
// switching components off — OCF filtering, the hot table, RAFL-vs-LRU, and
// inline vs background synchronous writes — under the workloads each
// component targets. This quantifies DESIGN.md's per-mechanism claims.
#include <cstdio>
#include <vector>

#include "common/bench_util.h"

using namespace hdnh;
using namespace hdnh::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 150000, 450000);
  cli.finish();
  print_env("Ablation: HDNH component contributions", env);

  const std::vector<std::string> variants = {"hdnh", "hdnh-noocf",
                                             "hdnh-nohot", "hdnh-lru",
                                             "hdnh-bg"};
  struct Case {
    const char* name;
    ycsb::WorkloadSpec spec;
    const char* targets;
  };
  const Case cases[] = {
      {"insert", ycsb::WorkloadSpec::InsertOnly(), "OCF (dup-check in DRAM)"},
      {"search+ zipf0.99", ycsb::WorkloadSpec::ReadOnly(0.99),
       "hot table + RAFL"},
      {"search- (miss)", ycsb::WorkloadSpec::NegativeRead(),
       "OCF fingerprints"},
      {"ycsb-a", ycsb::WorkloadSpec::YcsbA(), "sync-write mechanism"},
  };

  for (const Case& c : cases) {
    std::printf("\n== %s  (exercises: %s) ==\n", c.name, c.targets);
    print_run_header();
    for (const std::string& variant : variants) {
      const bool has_insert = c.spec.insert > 0;
      OwnedTable t = make_table(variant,
                                env.preload + (has_insert ? env.ops : 0), env);
      t.pool->set_emulate_latency(false);
      ycsb::preload(*t.table, env.preload);
      t.pool->set_emulate_latency(env.emulate);
      ycsb::RunOptions ro;
      ro.threads = env.threads;
      ro.seed = env.seed;
      auto r = ycsb::run(*t.table, c.spec, env.preload, env.ops, ro);
      print_run_row(variant, r);
    }
  }
  std::printf("\n(expected: -noocf inflates nvm-reads/op on misses and "
              "inserts; -nohot zeroes hot-hits and slows skewed search; LRU "
              "trails RAFL on skewed search)\n");
  return 0;
}
