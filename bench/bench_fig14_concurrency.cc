// Figure 14: multi-threaded throughput, threads 1 -> 16, for three YCSB
// workloads: (a) 100% insert, (b) 100% search, (c) 50% insert / 50% search.
//
// Paper's shape: HDNH scales best (fine-grained optimistic concurrency, no
// NVM lock traffic): 1.6-6.9x on inserts, 1.9x/4.4x over CCEH/LEVEL on
// search, 1.4x/4.3x on the mix. On hosts with few cores the throughput
// curves flatten, but the per-op NVM traffic columns — the cause the paper
// argues from — are core-count independent.
#include <cstdio>
#include <tuple>
#include <vector>

#include "common/bench_util.h"

using namespace hdnh;
using namespace hdnh::bench;

namespace {

std::vector<uint32_t> parse_list(const std::string& s) {
  std::vector<uint32_t> out;
  for (size_t pos = 0; pos < s.size();) {
    out.push_back(static_cast<uint32_t>(std::strtoul(&s[pos], nullptr, 10)));
    pos = s.find(',', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  Env env = standard_env(cli, 100000, 300000);
  const std::string thread_list =
      cli.get_str("thread_list", "1,2,4,8,16", "comma-separated thread counts");
  const std::string shard_list = cli.get_str(
      "shard_list", "1,4,8",
      "shard counts for the sharded-HDNH section (section (d))");
  cli.finish();
  print_env("Figure 14: concurrent throughput", env);

  const std::vector<uint32_t> threads = parse_list(thread_list);

  struct Case {
    const char* name;
    ycsb::WorkloadSpec spec;
  };
  const Case cases[] = {
      {"(a) 100% insert", ycsb::WorkloadSpec::InsertOnly()},
      {"(b) 100% search", [] {
         auto s = ycsb::WorkloadSpec::ReadOnly();
         s.dist = ycsb::Dist::kUniform;
         return s;
       }()},
      {"(c) 50% insert / 50% search", ycsb::WorkloadSpec::Mixed5050()},
  };

  for (const Case& c : cases) {
    std::printf("\n== %s ==\n", c.name);
    std::printf("%-8s", "threads");
    for (const auto& s : paper_schemes()) std::printf(" %10s", s.c_str());
    std::printf("   (Mops/s)\n");
    for (uint32_t th : threads) {
      std::printf("%-8u", th);
      std::vector<std::pair<std::string, ycsb::RunResult>> row;
      for (const std::string& scheme : paper_schemes()) {
        const bool has_insert = c.spec.insert > 0;
        OwnedTable t = make_table(
            scheme, env.preload + (has_insert ? env.ops : 0), env);
        t.pool->set_emulate_latency(false);
        ycsb::preload(*t.table, env.preload);
        t.pool->set_emulate_latency(env.emulate);
        ycsb::RunOptions ro;
        ro.threads = th;
        ro.seed = env.seed;
        auto r = ycsb::run(*t.table, c.spec, env.preload, env.ops, ro);
        std::printf(" %10.3f", r.mops());
        std::fflush(stdout);
        row.emplace_back(scheme, r);
      }
      std::printf("\n");
      for (const auto& [scheme, r] : row) print_json_run("fig14", scheme, th, 1, r);
    }
  }

  // (d) the sharded store runtime: same 50/50 mix, HDNH partitioned into N
  // independent tables. Writers contending on one global resize domain is
  // the scalability ceiling sharding removes.
  const std::vector<uint32_t> shard_axis = parse_list(shard_list);
  std::printf("\n== (d) 50/50 mix, sharded HDNH ==\n");
  std::printf("%-8s", "threads");
  for (uint32_t s : shard_axis) std::printf(" %9u@", s);
  std::printf("   (Mops/s)\n");
  for (uint32_t th : threads) {
    std::printf("%-8u", th);
    std::vector<std::tuple<std::string, uint32_t, ycsb::RunResult>> row;
    for (uint32_t shards : shard_axis) {
      const std::string scheme =
          shards > 1 ? "hdnh@" + std::to_string(shards) : "hdnh";
      OwnedTable t = make_table(scheme, env.preload + env.ops, env);
      t.pool->set_emulate_latency(false);
      ycsb::preload(*t.table, env.preload);
      t.pool->set_emulate_latency(env.emulate);
      ycsb::RunOptions ro;
      ro.threads = th;
      ro.seed = env.seed;
      auto r = ycsb::run(*t.table, ycsb::WorkloadSpec::Mixed5050(),
                         env.preload, env.ops, ro);
      std::printf(" %10.3f", r.mops());
      std::fflush(stdout);
      row.emplace_back(scheme, shards, r);
    }
    std::printf("\n");
    for (const auto& [scheme, shards, r] : row)
      print_json_run("fig14_sharded", scheme, th, shards, r);
  }

  std::printf("\n(paper @16T: HDNH over CCEH/LEVEL = insert up to 6.9x, "
              "search 1.9x/4.4x, mixed 1.4x/4.3x)\n");
  return 0;
}
