#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "../test_util.h"
#include "hdnh/hdnh.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

TEST(HdnhResize, GrowsWellPastInitialCapacity) {
  HdnhConfig cfg = small_config(512);
  HdnhPack p(256 << 20, cfg);
  const uint64_t initial_slots = p.table->total_slots();
  constexpr uint64_t kN = 50000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i))) << i;
  }
  EXPECT_GT(p.table->resize_count(), 0u);
  EXPECT_GT(p.table->total_slots(), initial_slots);
  EXPECT_EQ(p.table->size(), kN);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << "lost key " << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
}

TEST(HdnhResize, NegativeSearchesStillNegativeAfterResize) {
  HdnhPack p(128 << 20, small_config(512));
  for (uint64_t i = 0; i < 20000; ++i)
    p.table->insert(make_key(i), make_value(i));
  ASSERT_GT(p.table->resize_count(), 0u);
  Value v;
  for (uint64_t i = 100000; i < 102000; ++i) {
    ASSERT_FALSE(p.table->search(make_key(i), &v)) << i;
  }
}

TEST(HdnhResize, TopLevelDoublesEachResize) {
  HdnhPack p(256 << 20, small_config(512));
  uint64_t prev_slots = p.table->total_slots();
  uint64_t i = 0;
  const uint64_t start_resizes = p.table->resize_count();
  while (p.table->resize_count() < start_resizes + 3 && i < 200000) {
    p.table->insert(make_key(i), make_value(i));
    ++i;
    if (p.table->total_slots() != prev_slots) {
      // After a resize: new total = new TL (2x old TL) + old TL; the old
      // structure was old TL + old BL (= old TL / 2). Ratio = 2.
      EXPECT_EQ(p.table->total_slots(), prev_slots * 2);
      prev_slots = p.table->total_slots();
    }
  }
  EXPECT_GE(p.table->resize_count(), 3u);
}

TEST(HdnhResize, DeletedKeysStayDeletedAcrossResize) {
  HdnhPack p(128 << 20, small_config(512));
  for (uint64_t i = 0; i < 5000; ++i)
    p.table->insert(make_key(i), make_value(i));
  for (uint64_t i = 0; i < 5000; i += 2) p.table->erase(make_key(i));
  const uint64_t before_resizes = p.table->resize_count();
  for (uint64_t i = 100000; i < 130000; ++i)
    p.table->insert(make_key(i), make_value(i));
  ASSERT_GT(p.table->resize_count(), before_resizes);
  Value v;
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(p.table->search(make_key(i), &v), i % 2 == 1) << i;
  }
}

TEST(HdnhResize, UpdatesSurviveResize) {
  HdnhPack p(128 << 20, small_config(512));
  for (uint64_t i = 0; i < 3000; ++i)
    p.table->insert(make_key(i), make_value(i));
  for (uint64_t i = 0; i < 3000; ++i)
    ASSERT_TRUE(p.table->update(make_key(i), make_value(i + 1000000)));
  for (uint64_t i = 100000; i < 140000; ++i)
    p.table->insert(make_key(i), make_value(i));
  ASSERT_GT(p.table->resize_count(), 0u);
  Value v;
  for (uint64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i + 1000000)) << i;
  }
}

TEST(HdnhResize, ConcurrentInsertersSurviveResizes) {
  HdnhPack p(256 << 20, small_config(512));
  constexpr int kThreads = 4;
  constexpr uint64_t kPer = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPer; ++i) {
        const uint64_t id = t * kPer + i;
        ASSERT_TRUE(p.table->insert(make_key(id), make_value(id)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(p.table->resize_count(), 0u);
  EXPECT_EQ(p.table->size(), kThreads * kPer);
  Value v;
  for (uint64_t id = 0; id < kThreads * kPer; ++id) {
    ASSERT_TRUE(p.table->search(make_key(id), &v)) << id;
    ASSERT_TRUE(v == make_value(id)) << id;
  }
}

TEST(HdnhResize, HotTableScalesWithTable) {
  HdnhPack p(256 << 20, small_config(512));
  const uint64_t hot_before = p.table->hot_table_slots();
  for (uint64_t i = 0; i < 50000; ++i)
    p.table->insert(make_key(i), make_value(i));
  ASSERT_GT(p.table->resize_count(), 0u);
  EXPECT_GT(p.table->hot_table_slots(), hot_before);
}

}  // namespace
}  // namespace hdnh
