#include "hdnh/hdnh.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

TEST(HdnhBasic, InsertAndSearch) {
  HdnhPack p(32 << 20, small_config());
  EXPECT_TRUE(p.table->insert(make_key(1), make_value(1)));
  Value v;
  ASSERT_TRUE(p.table->search(make_key(1), &v));
  EXPECT_TRUE(v == make_value(1));
  EXPECT_EQ(p.table->size(), 1u);
}

TEST(HdnhBasic, SearchMissingReturnsFalse) {
  HdnhPack p(32 << 20, small_config());
  Value v;
  EXPECT_FALSE(p.table->search(make_key(12345), &v));
  p.table->insert(make_key(1), make_value(1));
  EXPECT_FALSE(p.table->search(make_key(2), &v));
}

TEST(HdnhBasic, DuplicateInsertRejected) {
  HdnhPack p(32 << 20, small_config());
  EXPECT_TRUE(p.table->insert(make_key(9), make_value(9)));
  EXPECT_FALSE(p.table->insert(make_key(9), make_value(10)));
  Value v;
  ASSERT_TRUE(p.table->search(make_key(9), &v));
  EXPECT_TRUE(v == make_value(9));  // original value untouched
  EXPECT_EQ(p.table->size(), 1u);
}

TEST(HdnhBasic, UpdateChangesValue) {
  HdnhPack p(32 << 20, small_config());
  p.table->insert(make_key(5), make_value(5));
  EXPECT_TRUE(p.table->update(make_key(5), make_value(500)));
  Value v;
  ASSERT_TRUE(p.table->search(make_key(5), &v));
  EXPECT_TRUE(v == make_value(500));
  EXPECT_EQ(p.table->size(), 1u);
}

TEST(HdnhBasic, UpdateMissingReturnsFalse) {
  HdnhPack p(32 << 20, small_config());
  EXPECT_FALSE(p.table->update(make_key(5), make_value(500)));
}

TEST(HdnhBasic, RepeatedUpdatesStayConsistent) {
  // Out-of-place updates churn slots within/through buckets; many rounds
  // must neither lose the key nor duplicate it.
  HdnhPack p(32 << 20, small_config());
  p.table->insert(make_key(1), make_value(0));
  for (uint64_t i = 1; i <= 200; ++i) {
    ASSERT_TRUE(p.table->update(make_key(1), make_value(i)));
    Value v;
    ASSERT_TRUE(p.table->search(make_key(1), &v));
    ASSERT_TRUE(v == make_value(i)) << "round " << i;
  }
  EXPECT_EQ(p.table->size(), 1u);
}

TEST(HdnhBasic, EraseRemoves) {
  HdnhPack p(32 << 20, small_config());
  p.table->insert(make_key(3), make_value(3));
  EXPECT_TRUE(p.table->erase(make_key(3)));
  Value v;
  EXPECT_FALSE(p.table->search(make_key(3), &v));
  EXPECT_EQ(p.table->size(), 0u);
  EXPECT_FALSE(p.table->erase(make_key(3)));  // second erase fails
}

TEST(HdnhBasic, ReinsertAfterEraseWorks) {
  HdnhPack p(32 << 20, small_config());
  p.table->insert(make_key(3), make_value(3));
  p.table->erase(make_key(3));
  EXPECT_TRUE(p.table->insert(make_key(3), make_value(33)));
  Value v;
  ASSERT_TRUE(p.table->search(make_key(3), &v));
  EXPECT_TRUE(v == make_value(33));
}

TEST(HdnhBasic, ManyKeysAllRetrievable) {
  HdnhPack p(64 << 20, small_config(8192));
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i))) << i;
  }
  EXPECT_EQ(p.table->size(), kN);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
  for (uint64_t i = kN; i < 2 * kN; ++i) {
    ASSERT_FALSE(p.table->search(make_key(i), &v)) << i;
  }
}

TEST(HdnhBasic, EraseHalfKeepsOtherHalf) {
  HdnhPack p(64 << 20, small_config(8192));
  constexpr uint64_t kN = 4000;
  for (uint64_t i = 0; i < kN; ++i) p.table->insert(make_key(i), make_value(i));
  for (uint64_t i = 0; i < kN; i += 2) EXPECT_TRUE(p.table->erase(make_key(i)));
  EXPECT_EQ(p.table->size(), kN / 2);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(p.table->search(make_key(i), &v), i % 2 == 1) << i;
  }
}

TEST(HdnhBasic, LoadFactorTracksCount) {
  HdnhPack p(32 << 20, small_config(4096));
  EXPECT_DOUBLE_EQ(p.table->load_factor(), 0.0);
  for (uint64_t i = 0; i < 1000; ++i)
    p.table->insert(make_key(i), make_value(i));
  const double lf = p.table->load_factor();
  EXPECT_GT(lf, 0.0);
  EXPECT_LE(lf, 1.0);
  EXPECT_NEAR(lf, 1000.0 / static_cast<double>(p.table->total_slots()), 1e-9);
}

TEST(HdnhBasic, NameReflectsPolicy) {
  HdnhPack p1(32 << 20, small_config());
  EXPECT_STREQ(p1.table->name(), "HDNH");
  HdnhConfig cfg = small_config();
  cfg.hot_policy = HdnhConfig::HotPolicy::kLru;
  HdnhPack p2(32 << 20, cfg);
  EXPECT_STREQ(p2.table->name(), "HDNH-LRU");
}

TEST(HdnhBasic, RejectsBadSegmentBytes) {
  nvm::PmemPool pool(8 << 20);
  nvm::PmemAllocator alloc(pool);
  HdnhConfig cfg;
  cfg.segment_bytes = 100;  // not a multiple of 256
  EXPECT_THROW(Hdnh t(alloc, cfg), std::invalid_argument);
}

TEST(HdnhBasic, WorksWithoutHotTable) {
  HdnhConfig cfg = small_config();
  cfg.enable_hot_table = false;
  HdnhPack p(32 << 20, cfg);
  for (uint64_t i = 0; i < 1000; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
  Value v;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v));
    ASSERT_TRUE(v == make_value(i));
  }
  EXPECT_EQ(p.table->hot_table_slots(), 0u);
}

TEST(HdnhBasic, WorksWithoutOcfFiltering) {
  HdnhConfig cfg = small_config();
  cfg.enable_ocf = false;
  HdnhPack p(32 << 20, cfg);
  for (uint64_t i = 0; i < 1000; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
  Value v;
  for (uint64_t i = 0; i < 1000; ++i) ASSERT_TRUE(p.table->search(make_key(i), &v));
  for (uint64_t i = 5000; i < 6000; ++i)
    ASSERT_FALSE(p.table->search(make_key(i), &v));
}

TEST(HdnhBasic, BackgroundSyncModeMatchesInline) {
  HdnhConfig cfg = small_config();
  cfg.sync_mode = HdnhConfig::SyncMode::kBackground;
  cfg.bg_workers = 2;
  HdnhPack p(32 << 20, cfg);
  for (uint64_t i = 0; i < 2000; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
  Value v;
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i));
  }
  ASSERT_TRUE(p.table->update(make_key(7), make_value(777)));
  ASSERT_TRUE(p.table->search(make_key(7), &v));
  EXPECT_TRUE(v == make_value(777));
  ASSERT_TRUE(p.table->erase(make_key(8)));
  EXPECT_FALSE(p.table->search(make_key(8), &v));
}

// Property sweep: the table behaves identically across segment sizes.
class HdnhSegmentParam : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HdnhSegmentParam, InsertSearchEraseAcrossSegmentSizes) {
  HdnhConfig cfg;
  cfg.segment_bytes = GetParam();
  cfg.initial_capacity = 2048;
  HdnhPack p(64 << 20, cfg);
  constexpr uint64_t kN = 3000;  // forces at least one resize for small segs
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i))) << i;
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
  for (uint64_t i = 0; i < kN; i += 3) ASSERT_TRUE(p.table->erase(make_key(i)));
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(p.table->search(make_key(i), &v), i % 3 != 0) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(SegmentSweep, HdnhSegmentParam,
                         ::testing::Values(256, 1024, 4096, 16384, 65536));

// Property sweep: hot-table slot counts (paper Fig 11b space).
class HdnhHotSlotsParam : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HdnhHotSlotsParam, CorrectAcrossHotSlotCounts) {
  HdnhConfig cfg = small_config();
  cfg.hot_slots_per_bucket = GetParam();
  HdnhPack p(32 << 20, cfg);
  for (uint64_t i = 0; i < 2000; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
  Value v;
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v));
    ASSERT_TRUE(v == make_value(i));
  }
}

INSTANTIATE_TEST_SUITE_P(HotSlotSweep, HdnhHotSlotsParam,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace hdnh
