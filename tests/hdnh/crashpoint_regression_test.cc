// Pinned (scenario, event_index, seed) regression triples for the
// durability holes the crash-point sweep exposed. Each test documents the
// pre-fix failure mode; all reproduce standalone via
//   hdnh_crashpoint --scenario=<name> --seed=<seed> --only=<event_index>
#include <gtest/gtest.h>

#include "testing/crash_scenarios.h"

namespace hdnh::crashtest {
namespace {

void expect_point_ok(const char* name, uint64_t seed, uint64_t k) {
  const Scenario* s = find_scenario(name);
  ASSERT_NE(s, nullptr);
  const PointResult r = run_crash_point(*s, seed, k, 0);
  EXPECT_TRUE(r.crashed) << "event_index=" << k << " never fired";
  EXPECT_EQ(r.failure, "")
      << "scenario=" << name << " event_index=" << k << " seed=" << seed;
}

// Bug: a crash could persist `resizing_flag = 1` while `level_number` was
// still 0 on media — at the very start of a resize (flag persisted, state 2
// not yet) or at its very tail (level_number := 0 persisted first, the
// flag's clear never landed). Recovery treated any set flag as an
// interrupted resize but had no branch for level_number == 0, attached NO
// level views, and died (division by zero on zero buckets) or came back
// empty. Fixed in Hdnh::attach_and_recover by treating flag==1/ln==0 as
// "steady state published, stale flag": attach the level_off views and
// retire the flag.
//
// Pinned triples: (resize-swap, 1, 1) hits the start-of-resize window
// (event 0 persists the flag, the crash at event 1 — the fence — leaves
// flag=1/ln=0 on media); the tail window is the last persist of the finish
// protocol, at event N-2.
TEST(CrashpointRegressionTest, StaleResizingFlagStartWindow) {
  expect_point_ok("resize-swap", 1, 1);
}

TEST(CrashpointRegressionTest, StaleResizingFlagTailWindow) {
  const Scenario* s = find_scenario("resize-swap");
  ASSERT_NE(s, nullptr);
  const uint64_t n = probe_events(*s, 1);
  ASSERT_GE(n, 4u);
  expect_point_ok("resize-swap", 1, n - 2);
}

// Bug: background-mode insert submitted a pointer to a stack-allocated
// SyncWriteSignal to the BgWriter and only then ran the NVT publish; an
// injected crash unwinding out of publish_nvt destroyed the signal while a
// worker could still dereference it (use-after-scope), and the queue could
// drain into a dead object. Fixed by waiting for the signal before
// re-throwing. run_crash_point asserts bg_queue_depth() == 0 at every
// injected crash; pre-fix, crash points inside the insert publish window
// (the first 16 ops of bg-flush are inserts, 4 events each) tripped it.
TEST(CrashpointRegressionTest, BgSubmitSignalDrainedOnCrash) {
  for (uint64_t k = 0; k < 64; k += 2) {
    expect_point_ok("bg-flush", 1, k);
  }
}

// Crash-during-recovery idempotence: replaying an armed update log must
// tolerate a second crash at every one of its own durability events (the
// two-bit flip redo is idempotent), and a recovery resuming a mid-rehash
// image must tolerate a second crash anywhere in the resumed drain without
// double-applying records or losing the prev_* snapshot.
TEST(CrashpointRegressionTest, LogReplayRecoveryIdempotent) {
  const Scenario* s = find_scenario("recovery-replay");
  ASSERT_NE(s, nullptr);
  const uint64_t n = probe_events(*s, 1);
  for (uint64_t k = 0; k < n; ++k) {
    expect_point_ok("recovery-replay", 1, k);
  }
}

TEST(CrashpointRegressionTest, ResumedResizeRecoveryIdempotent) {
  const Scenario* s = find_scenario("recovery-resize");
  ASSERT_NE(s, nullptr);
  const uint64_t n = probe_events(*s, 1);
  ASSERT_GE(n, 8u);
  for (const uint64_t k : {uint64_t{0}, uint64_t{1}, uint64_t{5}, n / 2,
                           n - 2, n - 1}) {
    expect_point_ok("recovery-resize", 1, k);
  }
}

}  // namespace
}  // namespace hdnh::crashtest
