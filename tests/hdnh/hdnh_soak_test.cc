// Soak tests: sustained multi-threaded mixed traffic with periodic
// quiescent integrity audits — the closest in-process approximation of a
// production burn-in. Also exercises the update-log slot pool under
// pressure (every cross-bucket update transits a 64-slot pool).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "common/random.h"
#include "common/threads.h"
#include "hdnh/hdnh.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

TEST(HdnhSoak, MixedTrafficWithPeriodicIntegrityAudits) {
  HdnhPack p(256 << 20, small_config(1 << 14));
  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  constexpr int kOpsPerRound = 8000;
  constexpr uint64_t kKeysPerThread = 2000;

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t, round] {
        Rng rng(round * 17 + t);
        Value v;
        const uint64_t base = t * 1000000;
        for (int op = 0; op < kOpsPerRound; ++op) {
          const uint64_t k = base + rng.next_below(kKeysPerThread);
          switch (rng.next_below(4)) {
            case 0:
              p.table->insert(make_key(k), make_value(k));
              break;
            case 1:
              p.table->update(make_key(k), make_value(op));
              break;
            case 2:
              p.table->erase(make_key(k));
              break;
            case 3:
              p.table->search(make_key(k), &v);
              break;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    // Quiescent audit after each round.
    auto rep = p.table->check_integrity();
    ASSERT_TRUE(rep.ok())
        << "round " << round << ": ocf=" << rep.ocf_valid_mismatches
        << " fp=" << rep.fingerprint_mismatches
        << " busy=" << rep.stuck_busy_entries
        << " dup=" << rep.duplicate_keys
        << " stale_hot=" << rep.hot_table_stale
        << " logs=" << rep.armed_log_entries;
    ASSERT_EQ(rep.items, p.table->size()) << "round " << round;
  }
}

TEST(HdnhSoak, UpdateLogPoolUnderCrossBucketPressure) {
  // Dense table + many threads updating: cross-bucket updates contend for
  // the 64-entry persistent log pool; all must complete and no entry may
  // stay armed.
  HdnhPack p(256 << 20, small_config(512));
  constexpr uint64_t kKeys = 10000;
  for (uint64_t i = 0; i < kKeys; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> completed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 9);
      for (int op = 0; op < 10000; ++op) {
        const uint64_t k = rng.next_below(kKeys);
        if (p.table->update(make_key(k), make_value(op))) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(completed.load(), uint64_t{kThreads} * 10000);
  auto rep = p.table->check_integrity();
  EXPECT_EQ(rep.armed_log_entries, 0u);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(p.table->size(), kKeys);
}

TEST(HdnhSoak, BackgroundModeSoak) {
  HdnhConfig cfg = small_config(1 << 13);
  cfg.sync_mode = HdnhConfig::SyncMode::kBackground;
  cfg.bg_workers = 2;
  HdnhPack p(128 << 20, cfg);
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 31);
      Value v;
      const uint64_t base = t * 500000;
      for (int op = 0; op < 15000; ++op) {
        const uint64_t k = base + rng.next_below(1500);
        switch (rng.next_below(4)) {
          case 0:
            p.table->insert(make_key(k), make_value(k));
            break;
          case 1:
            p.table->update(make_key(k), make_value(op));
            break;
          case 2:
            p.table->erase(make_key(k));
            break;
          default:
            p.table->search(make_key(k), &v);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(p.table->check_integrity().ok());
}

TEST(HdnhSoak, SurvivesManyResizeCyclesWithVerification) {
  // March the table through ~8 doublings while spot-verifying.
  HdnhPack p(1024ull << 20, small_config(256));
  uint64_t next = 0;
  Value v;
  Rng rng(77);
  while (p.table->resize_count() < 8) {
    for (int burst = 0; burst < 5000; ++burst) {
      ASSERT_TRUE(p.table->insert(make_key(next), make_value(next)));
      ++next;
    }
    for (int probe = 0; probe < 200; ++probe) {
      const uint64_t k = rng.next_below(next);
      ASSERT_TRUE(p.table->search(make_key(k), &v)) << k;
      ASSERT_TRUE(v == make_value(k)) << k;
    }
  }
  EXPECT_EQ(p.table->size(), next);
  auto rep = p.table->check_integrity();
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.items, next);
}

}  // namespace
}  // namespace hdnh
