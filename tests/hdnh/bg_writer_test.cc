// The §3.4 synchronous-write machinery in isolation: request routing,
// signal rendezvous, ordering per key, shutdown draining.
#include "hdnh/bg_writer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hdnh {
namespace {

KVPair kv(uint64_t id, uint64_t vid) {
  return KVPair{make_key(id), make_value(vid)};
}

TEST(SyncWriteSignal, CompletesExactlyOnce) {
  SyncWriteSignal sig;
  std::thread t([&] { sig.complete(); });
  sig.wait();  // must return promptly once completed
  t.join();
  sig.wait();  // idempotent: already complete
  SUCCEED();
}

TEST(BgWriter, PutReachesHotTable) {
  HotTable hot(256, 4, HdnhConfig::HotPolicy::kRafl);
  BgWriter bg(&hot, 2);
  SyncWriteSignal sig;
  bg.submit(BgWriter::Op::kPut, kv(1, 1), key_hash1(make_key(1)), &sig);
  sig.wait();
  Value v;
  ASSERT_TRUE(hot.search(make_key(1), &v));
  EXPECT_TRUE(v == make_value(1));
}

TEST(BgWriter, EraseReachesHotTable) {
  HotTable hot(256, 4, HdnhConfig::HotPolicy::kRafl);
  BgWriter bg(&hot, 2);
  SyncWriteSignal s1;
  bg.submit(BgWriter::Op::kPut, kv(1, 1), key_hash1(make_key(1)), &s1);
  s1.wait();
  SyncWriteSignal s2;
  bg.submit(BgWriter::Op::kErase, kv(1, 0), key_hash1(make_key(1)), &s2);
  s2.wait();
  Value v;
  EXPECT_FALSE(hot.search(make_key(1), &v));
}

TEST(BgWriter, SameKeyOpsApplyInSubmissionOrder) {
  // Same key -> same worker queue -> FIFO: the last submitted value wins.
  HotTable hot(1024, 4, HdnhConfig::HotPolicy::kRafl);
  BgWriter bg(&hot, 4);
  const uint64_t h = key_hash1(make_key(9));
  SyncWriteSignal last;
  for (uint64_t vid = 0; vid < 100; ++vid) {
    if (vid == 99) {
      bg.submit(BgWriter::Op::kPut, kv(9, vid), h, &last);
    } else {
      bg.submit(BgWriter::Op::kPut, kv(9, vid), h, nullptr);
    }
  }
  last.wait();
  Value v;
  ASSERT_TRUE(hot.search(make_key(9), &v));
  EXPECT_TRUE(v == make_value(99));
}

TEST(BgWriter, ManyProducersManyKeys) {
  HotTable hot(1 << 14, 4, HdnhConfig::HotPolicy::kRafl);
  BgWriter bg(&hot, 3);
  constexpr int kThreads = 4;
  constexpr uint64_t kPer = 2000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPer; ++i) {
        const uint64_t id = t * kPer + i;
        SyncWriteSignal sig;
        bg.submit(BgWriter::Op::kPut, kv(id, id), key_hash1(make_key(id)),
                  &sig);
        sig.wait();
      }
    });
  }
  for (auto& p : producers) p.join();
  // Everything submitted-and-awaited is visible (capacity permitting).
  Value v;
  uint64_t found = 0;
  for (uint64_t id = 0; id < kThreads * kPer; ++id) {
    if (hot.search(make_key(id), &v)) ++found;
  }
  EXPECT_GT(found, kThreads * kPer / 2);
}

TEST(BgWriter, DestructorDrainsOutstandingWork) {
  HotTable hot(4096, 4, HdnhConfig::HotPolicy::kRafl);
  {
    BgWriter bg(&hot, 2);
    for (uint64_t i = 0; i < 500; ++i) {
      bg.submit(BgWriter::Op::kPut, kv(i, i), key_hash1(make_key(i)), nullptr);
    }
  }  // destructor joins workers
  Value v;
  uint64_t found = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    if (hot.search(make_key(i), &v)) ++found;
  }
  // All 500 fire-and-forget puts must have been processed before shutdown.
  EXPECT_EQ(found, 500u);
}

TEST(BgWriter, SingleWorkerHandlesEverything) {
  HotTable hot(4096, 4, HdnhConfig::HotPolicy::kRafl);
  BgWriter bg(&hot, 1);
  SyncWriteSignal sigs[64];
  for (uint64_t i = 0; i < 64; ++i) {
    bg.submit(BgWriter::Op::kPut, kv(i, i), key_hash1(make_key(i)), &sigs[i]);
  }
  for (auto& s : sigs) s.wait();
  Value v;
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(hot.search(make_key(i), &v)) << i;
  }
}

}  // namespace
}  // namespace hdnh
