// Recovery after a NORMAL shutdown (§3.7): the non-volatile table persists;
// OCF and hot table are rebuilt by traversing it.
#include <gtest/gtest.h>

#include <cstdio>

#include "../test_util.h"
#include "hdnh/hdnh.h"
#include "nvm/stats.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

TEST(HdnhRecovery, ReattachRestoresAllItems) {
  HdnhPack p(64 << 20, small_config(8192));
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
  p.table.reset();  // clean shutdown

  Hdnh t2(p.alloc, small_config(8192));
  EXPECT_EQ(t2.size(), kN);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(t2.search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
  for (uint64_t i = kN; i < kN + 1000; ++i)
    ASSERT_FALSE(t2.search(make_key(i), &v));
}

TEST(HdnhRecovery, ReattachPreservesUpdatesAndDeletes) {
  HdnhPack p(64 << 20, small_config(8192));
  constexpr uint64_t kN = 3000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));
  for (uint64_t i = 0; i < kN; i += 3)
    ASSERT_TRUE(p.table->update(make_key(i), make_value(i + 7777)));
  for (uint64_t i = 1; i < kN; i += 3) ASSERT_TRUE(p.table->erase(make_key(i)));
  p.table.reset();

  Hdnh t2(p.alloc, small_config(8192));
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(t2.search(make_key(i), &v)) << i;
      ASSERT_TRUE(v == make_value(i + 7777)) << i;
    } else if (i % 3 == 1) {
      ASSERT_FALSE(t2.search(make_key(i), &v)) << i;
    } else {
      ASSERT_TRUE(t2.search(make_key(i), &v)) << i;
      ASSERT_TRUE(v == make_value(i)) << i;
    }
  }
}

TEST(HdnhRecovery, TableRemainsFullyFunctionalAfterReattach) {
  HdnhPack p(128 << 20, small_config(4096));
  for (uint64_t i = 0; i < 2000; ++i)
    p.table->insert(make_key(i), make_value(i));
  p.table.reset();

  Hdnh t2(p.alloc, small_config(4096));
  for (uint64_t i = 2000; i < 30000; ++i)
    ASSERT_TRUE(t2.insert(make_key(i), make_value(i))) << i;
  EXPECT_GT(t2.resize_count(), 0u);
  Value v;
  for (uint64_t i = 0; i < 30000; ++i) ASSERT_TRUE(t2.search(make_key(i), &v));
  ASSERT_TRUE(t2.update(make_key(100), make_value(42)));
  ASSERT_TRUE(t2.search(make_key(100), &v));
  EXPECT_TRUE(v == make_value(42));
}

TEST(HdnhRecovery, RecoveryAcrossResizedTable) {
  HdnhPack p(128 << 20, small_config(512));
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));
  ASSERT_GT(p.table->resize_count(), 0u);
  p.table.reset();

  Hdnh t2(p.alloc, small_config(512));
  EXPECT_EQ(t2.size(), kN);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(t2.search(make_key(i), &v)) << i;
}

TEST(HdnhRecovery, SegmentSizeComesFromSuperblockNotConfig) {
  HdnhConfig cfg = small_config(4096);
  cfg.segment_bytes = 4096;
  HdnhPack p(64 << 20, cfg);
  for (uint64_t i = 0; i < 1000; ++i)
    p.table->insert(make_key(i), make_value(i));
  p.table.reset();

  HdnhConfig other = cfg;
  other.segment_bytes = 16384;  // conflicting config on reattach
  Hdnh t2(p.alloc, other);
  EXPECT_EQ(t2.config().segment_bytes, 4096u);  // superblock wins
  Value v;
  for (uint64_t i = 0; i < 1000; ++i) ASSERT_TRUE(t2.search(make_key(i), &v));
}

TEST(HdnhRecovery, RebuildVolatileSeparateAndMergedAgree) {
  HdnhPack p(64 << 20, small_config(8192));
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));

  auto sep = p.table->rebuild_volatile(2, /*merged=*/false);
  EXPECT_EQ(sep.items, kN);
  EXPECT_GT(sep.ocf_ms, 0.0);
  EXPECT_GT(sep.hot_ms, 0.0);
  Value v;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;

  auto merged = p.table->rebuild_volatile(2, /*merged=*/true);
  EXPECT_EQ(merged.items, kN);
  EXPECT_GT(merged.total_ms, 0.0);
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
}

TEST(HdnhRecovery, MultiThreadedRebuildMatchesSingle) {
  HdnhPack p(64 << 20, small_config(8192));
  constexpr uint64_t kN = 4000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    auto rs = p.table->rebuild_volatile(threads, true);
    EXPECT_EQ(rs.items, kN) << threads << " threads";
    Value v;
    for (uint64_t i = 0; i < kN; i += 97)
      ASSERT_TRUE(p.table->search(make_key(i), &v));
  }
}

TEST(HdnhRecovery, HotTableServesReadsAfterRebuild) {
  HdnhConfig cfg = small_config(4096);
  cfg.hot_capacity_ratio = 1.0;  // room for everything
  HdnhPack p(64 << 20, cfg);
  constexpr uint64_t kN = 1000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));
  p.table.reset();

  Hdnh t2(p.alloc, cfg);
  // Recovery preloads the hot table, so reads hit DRAM immediately.
  nvm::Stats::reset();
  Value v;
  for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(t2.search(make_key(i), &v));
  EXPECT_GT(nvm::Stats::snapshot().dram_hot_hits, kN / 2);
}

TEST(HdnhRecovery, EmptyTableReattaches) {
  HdnhPack p(32 << 20, small_config());
  p.table.reset();
  Hdnh t2(p.alloc, small_config());
  EXPECT_EQ(t2.size(), 0u);
  ASSERT_TRUE(t2.insert(make_key(1), make_value(1)));
  Value v;
  EXPECT_TRUE(t2.search(make_key(1), &v));
}

TEST(HdnhRecovery, FileBackedPoolSurvivesProcessStyleRestart) {
  const std::string path = ::testing::TempDir() + "/hdnh_recovery.pool";
  std::remove(path.c_str());
  constexpr uint64_t kN = 2000;
  {
    nvm::PmemPool pool(64 << 20, nvm::NvmConfig{}, path);
    nvm::PmemAllocator alloc(pool);
    Hdnh t(alloc, small_config(4096));
    for (uint64_t i = 0; i < kN; ++i)
      ASSERT_TRUE(t.insert(make_key(i), make_value(i)));
  }  // pool unmapped: simulates process exit
  {
    nvm::PmemPool pool(64 << 20, nvm::NvmConfig{}, path);
    ASSERT_TRUE(pool.recovered());
    nvm::PmemAllocator alloc(pool);
    ASSERT_TRUE(alloc.attached_existing());
    Hdnh t(alloc, small_config(4096));
    EXPECT_EQ(t.size(), kN);
    Value v;
    for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(t.search(make_key(i), &v));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hdnh
