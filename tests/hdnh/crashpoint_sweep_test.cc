// Stride-sampled crash-point sweep over every scenario in the crashkit
// library (tools/hdnh_crashpoint runs the exhaustive version). Each sampled
// point injects a crash at one durability event, recovers, and checks the
// durability oracle; a failure prints the exact (scenario, event_index,
// seed) triple, which reproduces standalone via
//   hdnh_crashpoint --scenario=<name> --seed=<seed> --only=<event_index>
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "testing/crash_scenarios.h"

namespace hdnh::crashtest {
namespace {

class CrashpointSweepTest : public ::testing::TestWithParam<const char*> {};

void sweep(const char* name, uint64_t seed, uint64_t samples,
           uint64_t evict_lines) {
  const Scenario* s = find_scenario(name);
  ASSERT_NE(s, nullptr) << name;
  const uint64_t n = probe_events(*s, seed);
  ASSERT_GT(n, 0u) << "scenario emitted no durability events";
  const uint64_t stride = std::max<uint64_t>(1, n / samples);
  for (uint64_t k = 0; k < n; k += stride) {
    const PointResult r = run_crash_point(*s, seed, k, evict_lines);
    EXPECT_TRUE(r.crashed) << "plan never fired at k=" << k << " (of " << n
                           << " probed events)";
    EXPECT_EQ(r.failure, "")
        << "scenario=" << s->name << " event_index=" << k << " seed=" << seed;
    if (!r.failure.empty()) break;  // one triple is enough to debug
  }
}

TEST_P(CrashpointSweepTest, StridedSweepPasses) {
  sweep(GetParam(), /*seed=*/1, /*samples=*/24, /*evict_lines=*/0);
}

// Satellite check: adversarial random-line evictions (legal spontaneous
// writebacks) every 7th event and at the crash itself must never surface
// un-fenced state — in particular not during in-flight resize or
// background-flush windows.
TEST_P(CrashpointSweepTest, EvictionBurstSweepPasses) {
  sweep(GetParam(), /*seed=*/3, /*samples=*/10, /*evict_lines=*/8);
}

// Crash points at or past the event count never fire: the workload runs to
// completion and the oracle still holds on the live table.
TEST_P(CrashpointSweepTest, PastEndPointDoesNotCrash) {
  const Scenario* s = find_scenario(GetParam());
  ASSERT_NE(s, nullptr);
  const uint64_t n = probe_events(*s, 1);
  const PointResult r = run_crash_point(*s, 1, n, 0);
  EXPECT_FALSE(r.crashed);
  EXPECT_EQ(r.failure, "");
}

INSTANTIATE_TEST_SUITE_P(
    All, CrashpointSweepTest,
    ::testing::Values("insert", "update", "erase", "rehash", "resize-swap",
                      "bg-flush", "recovery-resize", "recovery-replay"),
    [](const ::testing::TestParamInfo<const char*>& pi) {
      std::string name = pi.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace hdnh::crashtest
