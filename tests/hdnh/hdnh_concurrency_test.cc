// Multi-threaded correctness of the fine-grained optimistic concurrency
// mechanism (§3.6): lock-free reads validated by per-slot versions, per-slot
// busy bits for writers, linearizable per-key semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "common/random.h"
#include "hdnh/hdnh.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

TEST(HdnhConcurrency, DisjointInsertersAllSucceed) {
  HdnhPack p(256 << 20, small_config(1 << 16));
  constexpr int kThreads = 8;
  constexpr uint64_t kPer = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPer; ++i) {
        const uint64_t id = t * kPer + i;
        ASSERT_TRUE(p.table->insert(make_key(id), make_value(id)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(p.table->size(), kThreads * kPer);
  Value v;
  for (uint64_t id = 0; id < kThreads * kPer; ++id) {
    ASSERT_TRUE(p.table->search(make_key(id), &v)) << id;
    ASSERT_TRUE(v == make_value(id)) << id;
  }
}

TEST(HdnhConcurrency, ReadersNeverSeeTornValues) {
  HdnhPack p(64 << 20, small_config(4096));
  constexpr uint64_t kKey = 33;
  constexpr uint64_t kVersions = 64;
  p.table->insert(make_key(kKey), make_value(0));

  // Precompute the set of legal value prefixes.
  std::set<uint64_t> legal;
  for (uint64_t i = 0; i < kVersions; ++i) {
    uint64_t first8;
    std::memcpy(&first8, make_value(i).b, 8);
    legal.insert(first8);
  }

  std::atomic<bool> stop{false};
  std::thread updater([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      p.table->update(make_key(kKey), make_value(++i % kVersions));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      Value v;
      for (int i = 0; i < 100000; ++i) {
        ASSERT_TRUE(p.table->search(make_key(kKey), &v));
        uint64_t first8;
        std::memcpy(&first8, v.b, 8);
        ASSERT_TRUE(legal.count(first8)) << "torn or stale-mix read";
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  updater.join();
  EXPECT_EQ(p.table->size(), 1u);
}

TEST(HdnhConcurrency, MixedWorkloadKeepsPerKeyIntegrity) {
  HdnhPack p(128 << 20, small_config(1 << 15));
  constexpr uint64_t kKeys = 2000;
  for (uint64_t i = 0; i < kKeys; ++i)
    p.table->insert(make_key(i), make_value(i));

  // Each thread owns a disjoint key shard and does random ops on it while
  // all threads share the table; per-shard bookkeeping lets each thread
  // verify its own keys exactly.
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const uint64_t lo = t * (kKeys / kThreads);
      const uint64_t hi = lo + kKeys / kThreads;
      std::vector<bool> present(kKeys / kThreads, true);
      std::vector<uint64_t> val(kKeys / kThreads);
      for (uint64_t i = lo; i < hi; ++i) val[i - lo] = i;
      Rng rng(t + 1);
      Value v;
      for (int op = 0; op < 30000; ++op) {
        const uint64_t i = lo + rng.next_below(hi - lo);
        const uint64_t x = i - lo;
        switch (rng.next_below(4)) {
          case 0:  // search
            ASSERT_EQ(p.table->search(make_key(i), &v), present[x]) << i;
            if (present[x]) ASSERT_TRUE(v == make_value(val[x]));
            break;
          case 1:  // update
            ASSERT_EQ(p.table->update(make_key(i), make_value(op + i)),
                      present[x]);
            if (present[x]) val[x] = op + i;
            break;
          case 2:  // erase
            ASSERT_EQ(p.table->erase(make_key(i)), present[x]);
            present[x] = false;
            break;
          case 3:  // insert
            ASSERT_EQ(p.table->insert(make_key(i), make_value(i)),
                      !present[x]);
            if (!present[x]) {
              present[x] = true;
              val[x] = i;
            }
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(HdnhConcurrency, SearchersDuringInsertStorm) {
  HdnhPack p(256 << 20, small_config(1 << 14));
  constexpr uint64_t kStable = 3000;
  for (uint64_t i = 0; i < kStable; ++i)
    p.table->insert(make_key(i), make_value(i));

  std::atomic<bool> stop{false};
  std::thread inserter([&] {
    uint64_t id = 1 << 20;
    while (!stop.load(std::memory_order_relaxed)) {
      p.table->insert(make_key(id), make_value(id));
      ++id;
    }
  });
  // The insert storm forces resizes; stable keys must stay visible and
  // correct throughout.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      Value v;
      for (int i = 0; i < 60000; ++i) {
        const uint64_t id = rng.next_below(kStable);
        ASSERT_TRUE(p.table->search(make_key(id), &v)) << id;
        ASSERT_TRUE(v == make_value(id)) << id;
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  inserter.join();
}

TEST(HdnhConcurrency, ConcurrentErasersEachKeyErasedOnce) {
  HdnhPack p(64 << 20, small_config(1 << 14));
  constexpr uint64_t kKeys = 8000;
  for (uint64_t i = 0; i < kKeys; ++i)
    p.table->insert(make_key(i), make_value(i));

  // All threads race to erase the same keys; exactly one eraser may win
  // each key.
  constexpr int kThreads = 4;
  std::atomic<uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      uint64_t mine = 0;
      for (uint64_t i = 0; i < kKeys; ++i) {
        if (p.table->erase(make_key(i))) ++mine;
      }
      wins.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(p.table->size(), 0u);
}

TEST(HdnhConcurrency, BackgroundSyncUnderContention) {
  HdnhConfig cfg = small_config(1 << 14);
  cfg.sync_mode = HdnhConfig::SyncMode::kBackground;
  cfg.bg_workers = 2;
  HdnhPack p(128 << 20, cfg);
  constexpr int kThreads = 4;
  constexpr uint64_t kPer = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Value v;
      for (uint64_t i = 0; i < kPer; ++i) {
        const uint64_t id = t * kPer + i;
        ASSERT_TRUE(p.table->insert(make_key(id), make_value(id)));
        ASSERT_TRUE(p.table->search(make_key(id), &v));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(p.table->size(), kThreads * kPer);
}

}  // namespace
}  // namespace hdnh
