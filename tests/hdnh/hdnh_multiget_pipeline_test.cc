// The phased multiget pipeline: NVM reads-ahead must overlap (counters),
// must never change traffic vs serial gets, duplicates must probe once, and
// the batch path must stay correct under concurrent writers and across a
// crash injected mid-batch.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "api/factory.h"
#include "common/random.h"
#include "hdnh/hdnh.h"
#include "nvm/stats.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

HdnhConfig nohot_config(uint64_t capacity) {
  HdnhConfig cfg = small_config(capacity);
  cfg.enable_hot_table = false;  // every lookup goes to the NVT
  return cfg;
}

TEST(HdnhMultigetPipeline, BatchedReadsOverlap) {
  HdnhPack p(64 << 20, nohot_config(8192));
  constexpr uint64_t kN = 4000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));

  constexpr size_t kBatch = 64;
  std::vector<Key> keys;
  for (size_t i = 0; i < kBatch; ++i)
    keys.push_back(make_key(i % 4 ? i * 31 % kN : (1ull << 40) + i));
  std::vector<Value> values(kBatch);
  std::vector<uint8_t> found(kBatch);

  nvm::Stats::reset();
  p.table->multiget(keys.data(), kBatch, values.data(),
                    reinterpret_cast<bool*>(found.data()));
  const nvm::StatsSnapshot s = nvm::Stats::snapshot();
  EXPECT_GT(s.nvm_prefetch_issued, 0u);
  EXPECT_GT(s.nvm_read_blocks_overlapped, 0u);
  // The split classifies latency; it never invents or loses traffic.
  EXPECT_EQ(s.nvm_read_blocks_overlapped + s.nvm_read_blocks_stalled,
            s.nvm_read_blocks);
  // Most positive probes should ride a read-ahead issued in phase C.
  EXPECT_GT(s.nvm_read_blocks_overlapped, s.nvm_read_blocks / 2);
}

TEST(HdnhMultigetPipeline, TrafficMatchesSerialGets) {
  HdnhPack p(64 << 20, nohot_config(8192));
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));

  constexpr size_t kBatch = 256;
  std::vector<Key> keys;  // unique keys, hits and misses mixed
  for (size_t i = 0; i < kBatch; ++i)
    keys.push_back(make_key(i % 3 ? i * 17 % kN : (1ull << 41) + i));

  std::vector<Value> values(kBatch);
  std::vector<uint8_t> found(kBatch);

  nvm::Stats::reset();
  size_t serial_hits = 0;
  for (size_t i = 0; i < kBatch; ++i) {
    serial_hits += p.table->search(keys[i], &values[i]) ? 1 : 0;
  }
  const nvm::StatsSnapshot serial = nvm::Stats::snapshot();

  nvm::Stats::reset();
  const size_t batch_hits =
      p.table->multiget(keys.data(), kBatch, values.data(),
                        reinterpret_cast<bool*>(found.data()));
  const nvm::StatsSnapshot batched = nvm::Stats::snapshot();

  EXPECT_EQ(batch_hits, serial_hits);
  // Pipelining overlaps latency; the media sees the exact same accesses.
  EXPECT_EQ(batched.nvm_read_ops, serial.nvm_read_ops);
  EXPECT_EQ(batched.nvm_read_blocks, serial.nvm_read_blocks);
  EXPECT_EQ(batched.nvm_write_ops, serial.nvm_write_ops);
  EXPECT_EQ(batched.nvm_write_lines, serial.nvm_write_lines);
}

TEST(HdnhMultigetPipeline, DuplicatesProbeOnce) {
  HdnhPack p(64 << 20, nohot_config(4096));
  for (uint64_t i = 0; i < 2000; ++i)
    p.table->insert(make_key(i), make_value(i));

  Value v;
  nvm::Stats::reset();
  ASSERT_TRUE(p.table->search(make_key(42), &v));
  const uint64_t single_reads = nvm::Stats::snapshot().nvm_read_ops;

  constexpr size_t kBatch = 32;
  std::vector<Key> keys(kBatch, make_key(42));
  std::vector<Value> values(kBatch);
  std::vector<uint8_t> found(kBatch);
  nvm::Stats::reset();
  const size_t hits =
      p.table->multiget(keys.data(), kBatch, values.data(),
                        reinterpret_cast<bool*>(found.data()));
  EXPECT_EQ(hits, kBatch);  // every duplicate position counts its own hit
  for (size_t i = 0; i < kBatch; ++i) {
    EXPECT_TRUE(found[i]);
    EXPECT_TRUE(values[i] == make_value(42));
  }
  // ...but the key is resolved once: same NVM reads as one serial get.
  EXPECT_EQ(nvm::Stats::snapshot().nvm_read_ops, single_reads);
}

TEST(HdnhMultigetPipeline, ShardedFacadeDedupsAndFansOut) {
  nvm::PmemPool pool(pool_bytes_hint("hdnh@4", 20000));
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = 1 << 14;
  opts.hdnh = small_config(1 << 14);
  opts.hdnh.enable_hot_table = false;
  auto table = create_table("hdnh@4", alloc, opts);
  constexpr uint64_t kN = 4000;
  for (uint64_t i = 0; i < kN; ++i)
    table->insert(make_key(i), make_value(i));

  // A batch whose keys repeat across and within shards, plus misses.
  std::vector<Key> keys;
  for (int rep = 0; rep < 8; ++rep) {
    for (uint64_t i = 0; i < 16; ++i) keys.push_back(make_key(i * 131 % kN));
    keys.push_back(make_key((1ull << 42) + rep));  // miss, also repeated
    keys.push_back(make_key((1ull << 42)));
  }
  std::vector<Value> values(keys.size());
  std::vector<uint8_t> found(keys.size());

  nvm::Stats::reset();
  const size_t hits =
      table->multiget(keys.data(), keys.size(), values.data(),
                      reinterpret_cast<bool*>(found.data()));
  const uint64_t batch_reads = nvm::Stats::snapshot().nvm_read_ops;

  size_t expect_hits = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    Value v;
    const bool single = table->search(keys[i], &v);
    ASSERT_EQ(found[i] != 0, single) << i;
    if (single) {
      ++expect_hits;
      ASSERT_TRUE(values[i] == v) << i;
    }
  }
  EXPECT_EQ(hits, expect_hits);

  // Dedup across the facade: resolving just the unique keys serially must
  // cost at least as much NVM traffic as the whole 144-position batch.
  nvm::Stats::reset();
  Value v;
  for (uint64_t i = 0; i < 16; ++i) table->search(make_key(i * 131 % kN), &v);
  for (int rep = 0; rep < 8; ++rep)
    table->search(make_key((1ull << 42) + rep), &v);
  table->search(make_key(1ull << 42), &v);
  EXPECT_GE(nvm::Stats::snapshot().nvm_read_ops, batch_reads);
}

TEST(HdnhMultigetPipeline, LargeBatchUnderConcurrentWriters) {
  HdnhPack p(128 << 20, small_config(1 << 14));
  constexpr uint64_t kN = 4000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(5);
    uint64_t vid = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      p.table->update(make_key(rng.next_below(kN)), make_value(++vid));
    }
  });

  constexpr size_t kBatch = 512;
  std::vector<Key> keys;
  for (size_t i = 0; i < kBatch; ++i)
    keys.push_back(make_key(i * 3 % kN));  // repeats included
  std::vector<Value> values(kBatch);
  std::vector<uint8_t> found(kBatch);
  for (int round = 0; round < 200; ++round) {
    const size_t hits =
        p.table->multiget(keys.data(), kBatch, values.data(),
                          reinterpret_cast<bool*>(found.data()));
    ASSERT_EQ(hits, kBatch) << "round " << round;
  }
  stop.store(true);
  writer.join();
  EXPECT_TRUE(p.table->check_integrity().ok());
}

// A power loss in the middle of a batched-read storm must leave nothing to
// recover but the writes: readers don't touch NVM state, so the reattached
// table must pass integrity and serve every preloaded key.
TEST(HdnhMultigetPipeline, CrashDuringBatchedReadsRecovers) {
  HdnhPack p(64 << 20, small_config(8192), /*crash_sim=*/true);
  constexpr uint64_t kN = 3000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      std::vector<Key> keys(48);
      std::vector<Value> values(48);
      std::vector<uint8_t> found(48);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& k : keys) k = make_key(rng.next_below(2 * kN));
        // Results mid-crash are unspecified (the media image is being
        // copied over the live region); only absence of crashes matters.
        p.table->multiget(keys.data(), keys.size(), values.data(),
                          reinterpret_cast<bool*>(found.data()));
      }
    });
  }
  // Let the readers spin up, then pull the plug mid-batch.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  p.pool.simulate_crash();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop.store(true);
  for (auto& r : readers) r.join();

  p.reattach(small_config(8192));
  EXPECT_TRUE(p.table->check_integrity().ok());
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
}

}  // namespace
}  // namespace hdnh
