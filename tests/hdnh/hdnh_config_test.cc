// Configuration-space edges: extreme knob settings must degrade gracefully,
// never corrupt.
#include <gtest/gtest.h>

#include "../test_util.h"
#include "hdnh/hdnh.h"
#include "nvm/stats.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;

TEST(HdnhConfigEdge, TinyInitialCapacity) {
  HdnhConfig cfg;
  cfg.initial_capacity = 1;  // minimum structure
  cfg.segment_bytes = 256;   // one bucket per segment
  HdnhPack p(64 << 20, cfg);
  for (uint64_t i = 0; i < 2000; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i))) << i;
  EXPECT_GT(p.table->resize_count(), 3u);
  Value v;
  for (uint64_t i = 0; i < 2000; ++i) ASSERT_TRUE(p.table->search(make_key(i), &v));
}

TEST(HdnhConfigEdge, HugeSegments) {
  HdnhConfig cfg;
  cfg.initial_capacity = 4096;
  cfg.segment_bytes = 1 << 20;  // 1 MiB segments: one segment per level
  HdnhPack p(128 << 20, cfg);
  for (uint64_t i = 0; i < 3000; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
  Value v;
  for (uint64_t i = 0; i < 3000; ++i) ASSERT_TRUE(p.table->search(make_key(i), &v));
}

TEST(HdnhConfigEdge, ZeroHotRatioBehavesLikeNoHot) {
  HdnhConfig cfg = testutil::small_config();
  cfg.hot_capacity_ratio = 0.0;  // hot table exists but is minimal
  HdnhPack p(32 << 20, cfg);
  for (uint64_t i = 0; i < 1000; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
  Value v;
  for (uint64_t i = 0; i < 1000; ++i) ASSERT_TRUE(p.table->search(make_key(i), &v));
}

TEST(HdnhConfigEdge, FullHotRatioServesEverythingFromDram) {
  HdnhConfig cfg = testutil::small_config(4096);
  cfg.hot_capacity_ratio = 2.0;  // cache bigger than the table
  HdnhPack p(64 << 20, cfg);
  constexpr uint64_t kN = 2000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));
  nvm::Stats::reset();
  Value v;
  for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(p.table->search(make_key(i), &v));
  auto s = nvm::Stats::snapshot();
  // §3.5 "hot table has not been overflowed": essentially every read is a
  // DRAM hit and NVM stays idle.
  EXPECT_GT(s.dram_hot_hits, kN * 9 / 10);
  EXPECT_LT(s.nvm_read_ops, kN / 5);
}

TEST(HdnhConfigEdge, PromotionDisabled) {
  HdnhConfig cfg = testutil::small_config(4096);
  cfg.promote_on_search = false;
  cfg.hot_capacity_ratio = 0.001;  // keep writes from covering everything
  HdnhPack p(64 << 20, cfg);
  for (uint64_t i = 0; i < 2000; ++i)
    p.table->insert(make_key(i), make_value(i));
  Value v;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < 2000; ++i)
      ASSERT_TRUE(p.table->search(make_key(i), &v));
  }
  SUCCEED();  // correctness under no-promotion; perf impact is bench domain
}

TEST(HdnhConfigEdge, ManyRecoveryThreads) {
  HdnhConfig cfg = testutil::small_config(8192);
  cfg.recovery_threads = 16;
  HdnhPack p(64 << 20, cfg);
  for (uint64_t i = 0; i < 5000; ++i)
    p.table->insert(make_key(i), make_value(i));
  p.table.reset();
  Hdnh t2(p.alloc, cfg);
  EXPECT_EQ(t2.size(), 5000u);
}

TEST(HdnhConfigEdge, AggressiveSizingLoadTarget) {
  HdnhConfig cfg;
  cfg.initial_capacity = 4096;
  cfg.segment_bytes = 1024;
  cfg.sizing_load_target = 0.95;  // deliberately undersized: resizes early
  HdnhPack p(128 << 20, cfg);
  for (uint64_t i = 0; i < 8000; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
  Value v;
  for (uint64_t i = 0; i < 8000; ++i) ASSERT_TRUE(p.table->search(make_key(i), &v));
}

TEST(HdnhConfigEdge, BgWorkersScale) {
  for (uint32_t workers : {1u, 2u, 4u}) {
    HdnhConfig cfg = testutil::small_config(4096);
    cfg.sync_mode = HdnhConfig::SyncMode::kBackground;
    cfg.bg_workers = workers;
    HdnhPack p(64 << 20, cfg);
    for (uint64_t i = 0; i < 1500; ++i)
      ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
    Value v;
    for (uint64_t i = 0; i < 1500; ++i)
      ASSERT_TRUE(p.table->search(make_key(i), &v)) << workers;
  }
}

}  // namespace
}  // namespace hdnh
