// Regression tests for the key-movement race: an out-of-place update can
// relocate a key to a candidate slot a concurrent reader has already
// scanned; without the movement-sequence rescan the reader reports a
// present key as missing. Caught originally as a 1-in-20000 miss under
// YCSB-A; these tests hammer exactly that interleaving.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "baselines/level_hashing.h"
#include "common/random.h"
#include "hdnh/hdnh.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

TEST(HdnhMovementRace, SearchNeverMissesUnderUpdateStorm) {
  // Dense small table: out-of-place updates relocate keys constantly.
  HdnhPack p(128 << 20, small_config(512));
  constexpr uint64_t kKeys = 4000;
  for (uint64_t i = 0; i < kKeys; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> updates{0};
  std::thread updater([&] {
    Rng rng(1);
    uint64_t vid = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      p.table->update(make_key(rng.next_below(kKeys)), make_value(++vid));
      updates.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      Value v;
      for (int i = 0; i < 150000; ++i) {
        const uint64_t k = rng.next_below(kKeys);
        // Keys are never erased: a miss is ALWAYS a bug.
        ASSERT_TRUE(p.table->search(make_key(k), &v))
            << "reader " << r << " lost key " << k << " at iter " << i;
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  updater.join();
  EXPECT_GT(updates.load(), 1000u) << "updater barely ran; weak test";
  EXPECT_TRUE(p.table->check_integrity().ok());
}

TEST(HdnhMovementRace, UpdateAlwaysFindsItsKeyUnderContention) {
  // Two updaters fight over the same keys: update() internally probes, so
  // it is exposed to the same race; it must never return false for a
  // present key.
  HdnhPack p(128 << 20, small_config(512));
  constexpr uint64_t kKeys = 3000;
  for (uint64_t i = 0; i < kKeys; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));

  std::vector<std::thread> updaters;
  for (int t = 0; t < 3; ++t) {
    updaters.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < 60000; ++i) {
        const uint64_t k = rng.next_below(kKeys);
        ASSERT_TRUE(p.table->update(make_key(k), make_value(i)))
            << "updater " << t << " lost key " << k;
      }
    });
  }
  for (auto& th : updaters) th.join();
  EXPECT_EQ(p.table->size(), kKeys);
  EXPECT_TRUE(p.table->check_integrity().ok());
}

TEST(LevelMovementRace, SearchNeverMissesDuringDisplacements) {
  // Level hashing's bottom-to-top cuckoo displacement has the same race;
  // verify its movement-sequence rescan too. A dense table + insert storm
  // forces displacements while readers check a fixed key set.
  nvm::PmemPool pool(512ull << 20);
  nvm::PmemAllocator alloc(pool);
  LevelHashing table(alloc, 2048);
  constexpr uint64_t kStable = 1500;
  for (uint64_t i = 0; i < kStable; ++i)
    ASSERT_TRUE(table.insert(make_key(i), make_value(i)));

  std::atomic<bool> stop{false};
  std::thread inserter([&] {
    uint64_t id = 1 << 20;
    Rng rng(3);
    while (!stop.load(std::memory_order_relaxed)) {
      table.insert(make_key(id++), make_value(1));
      if (id % 2000 == 0) {
        // Churn: erase a band so displacement keeps happening instead of
        // the table just resizing ever larger.
        for (uint64_t k = id - 2000; k < id - 1000; ++k)
          table.erase(make_key(k));
      }
    }
  });

  Value v;
  Rng rng(9);
  for (int i = 0; i < 200000; ++i) {
    const uint64_t k = rng.next_below(kStable);
    ASSERT_TRUE(table.search(make_key(k), &v)) << "lost stable key " << k;
  }
  stop.store(true);
  inserter.join();
}

}  // namespace
}  // namespace hdnh
