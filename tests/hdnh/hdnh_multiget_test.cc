#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "../test_util.h"
#include "common/random.h"
#include "hdnh/hdnh.h"
#include "nvm/stats.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

TEST(HdnhMultiget, MatchesSingleSearch) {
  HdnhPack p(64 << 20, small_config(8192));
  constexpr uint64_t kN = 3000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));

  constexpr size_t kBatch = 512;
  std::vector<Key> keys;
  for (size_t i = 0; i < kBatch; ++i) {
    // Mix of present and absent keys.
    keys.push_back(make_key(i % 2 ? i : 1000000 + i));
  }
  std::vector<Value> values(kBatch);
  std::vector<uint8_t> found_raw(kBatch);
  bool* found = reinterpret_cast<bool*>(found_raw.data());
  const size_t hits =
      p.table->multiget(keys.data(), kBatch, values.data(), found);

  size_t expected_hits = 0;
  for (size_t i = 0; i < kBatch; ++i) {
    Value v;
    const bool single = p.table->search(keys[i], &v);
    ASSERT_EQ(found[i], single) << i;
    if (single) {
      ASSERT_TRUE(values[i] == v) << i;
      ++expected_hits;
    }
  }
  EXPECT_EQ(hits, expected_hits);
}

TEST(HdnhMultiget, EmptyAndSingletonBatches) {
  HdnhPack p(32 << 20, small_config());
  p.table->insert(make_key(1), make_value(1));
  Value v;
  bool f = false;
  EXPECT_EQ(p.table->multiget(nullptr, 0, nullptr, nullptr), 0u);
  Key k = make_key(1);
  EXPECT_EQ(p.table->multiget(&k, 1, &v, &f), 1u);
  EXPECT_TRUE(f);
  EXPECT_TRUE(v == make_value(1));
  k = make_key(2);
  EXPECT_EQ(p.table->multiget(&k, 1, &v, &f), 0u);
  EXPECT_FALSE(f);
}

TEST(HdnhMultiget, DuplicateKeysInBatch) {
  HdnhPack p(32 << 20, small_config());
  p.table->insert(make_key(5), make_value(55));
  p.table->insert(make_key(9), make_value(99));
  std::vector<Key> keys = {make_key(5), make_key(5), make_key(777),
                           make_key(9), make_key(5)};
  std::vector<Value> values(keys.size());
  std::vector<uint8_t> found(keys.size());
  const size_t hits =
      p.table->multiget(keys.data(), keys.size(), values.data(),
                        reinterpret_cast<bool*>(found.data()));
  EXPECT_EQ(hits, 4u);  // each duplicate occurrence counts
  EXPECT_TRUE(found[0] && found[1] && found[3] && found[4]);
  EXPECT_FALSE(found[2]);
  EXPECT_TRUE(values[0] == make_value(55));
  EXPECT_TRUE(values[1] == make_value(55));
  EXPECT_TRUE(values[3] == make_value(99));
  EXPECT_TRUE(values[4] == make_value(55));
}

TEST(HdnhMultiget, AllMissBatch) {
  HdnhPack p(32 << 20, small_config());
  for (uint64_t i = 0; i < 100; ++i)
    p.table->insert(make_key(i), make_value(i));
  constexpr size_t kBatch = 300;
  std::vector<Key> keys;
  for (size_t i = 0; i < kBatch; ++i) keys.push_back(make_key((1ull << 40) + i));
  std::vector<Value> values(kBatch);
  std::vector<uint8_t> found(kBatch, 1);
  EXPECT_EQ(p.table->multiget(keys.data(), kBatch, values.data(),
                              reinterpret_cast<bool*>(found.data())),
            0u);
  for (size_t i = 0; i < kBatch; ++i) EXPECT_FALSE(found[i]) << i;
}

TEST(HdnhMultiget, PromotesIntoHotTable) {
  HdnhConfig cfg = small_config(4096);
  cfg.hot_capacity_ratio = 1.0;
  HdnhPack p(64 << 20, cfg);
  constexpr uint64_t kN = 500;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));
  // Clear the hot table by rebuilding OCF only, then warm via multiget.
  p.table->rebuild_volatile(1, true);  // hot table repopulated; reset stats
  std::vector<Key> keys;
  std::vector<Value> values(kN);
  std::vector<uint8_t> found(kN);
  for (uint64_t i = 0; i < kN; ++i) keys.push_back(make_key(i));
  p.table->multiget(keys.data(), kN, values.data(),
                    reinterpret_cast<bool*>(found.data()));
  nvm::Stats::reset();
  p.table->multiget(keys.data(), kN, values.data(),
                    reinterpret_cast<bool*>(found.data()));
  // Second batch should be served almost entirely from DRAM.
  EXPECT_GT(nvm::Stats::snapshot().dram_hot_hits, kN * 9 / 10);
}

TEST(HdnhMultiget, SafeUnderConcurrentWrites) {
  HdnhPack p(128 << 20, small_config(1 << 14));
  constexpr uint64_t kN = 4000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(3);
    uint64_t vid = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      p.table->update(make_key(rng.next_below(kN)), make_value(++vid % 1000));
    }
  });

  std::vector<Key> keys;
  for (uint64_t i = 0; i < 256; ++i) keys.push_back(make_key(i * 7 % kN));
  std::vector<Value> values(256);
  std::vector<uint8_t> found(256);
  for (int round = 0; round < 500; ++round) {
    const size_t hits = p.table->multiget(
        keys.data(), 256, values.data(),
        reinterpret_cast<bool*>(found.data()));
    // Keys are never erased: every one must be found.
    ASSERT_EQ(hits, 256u) << "round " << round;
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace hdnh
