// hdnh_doctor against crash images (file-backed pools). The doctor must
// never crash or hang on any media image a simulated crash can produce:
// exit 0 on images its own attach can recover (it runs recovery, so a
// mid-resize image comes back clean), exit 3/4 on images without a usable
// superblock. HDNH_DOCTOR_BIN is injected by the build.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "hdnh/hdnh.h"
#include "nvm/alloc.h"
#include "nvm/fault.h"
#include "nvm/pmem.h"

namespace hdnh {
namespace {

int run_doctor(const std::string& pool_path) {
  const std::string cmd = std::string(HDNH_DOCTOR_BIN) + " --pool=" +
                          pool_path +
                          " --pool_mb=8 --deep > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(rc)) << "doctor died on a signal for " << pool_path;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

std::string pool_path(const char* tag) {
  return ::testing::TempDir() + "doctor_crash_" + tag + ".pool";
}

HdnhConfig small_cfg() {
  HdnhConfig cfg;
  cfg.initial_capacity = 256;
  cfg.segment_bytes = 4096;
  return cfg;
}

TEST(DoctorCrashImageTest, MidResizeCrashImageRecoversToExitZero) {
  const std::string path = pool_path("midresize");
  std::remove(path.c_str());
  {
    nvm::PmemPool pool(8ull << 20, {}, path);
    pool.enable_crash_sim();
    nvm::PmemAllocator alloc(pool);
    auto table = std::make_unique<Hdnh>(alloc, small_cfg());
    for (uint64_t id = 1; id <= 250; ++id) {
      ASSERT_TRUE(table->insert(make_key(id), make_value(id)));
    }

    nvm::FaultPlan plan;
    plan.mask = nvm::kFaultRehash;
    plan.crash_at = 20;  // mid old-bottom-level drain
    pool.set_fault_plan(&plan);
    bool crashed = false;
    try {
      const uint64_t before = table->resize_count();
      for (uint64_t i = 0; table->resize_count() == before; ++i) {
        ASSERT_LT(i, 20000u) << "resize never triggered";
        table->insert(make_key(100000 + i), make_value(100000 + i));
      }
    } catch (const nvm::InjectedCrash&) {
      crashed = true;
    }
    pool.set_fault_plan(nullptr);
    ASSERT_TRUE(crashed);
    table->abandon_after_crash();
    // Destructors unmap; the MAP_SHARED file now holds the crash image.
  }

  // Doctor attaches, which resumes the interrupted resize, and the deep
  // check must then be clean. A second run sees the repaired pool.
  EXPECT_EQ(run_doctor(path), 0);
  EXPECT_EQ(run_doctor(path), 0);
  std::remove(path.c_str());
}

TEST(DoctorCrashImageTest, CreationCrashImagesNeverKillTheDoctor) {
  // Crash at assorted points of pool format + table creation + first
  // inserts. Whatever the image holds — no allocator header, header
  // without roots, torn table bring-up — the doctor must exit with a
  // defined code, never a signal or a hang.
  for (const uint64_t k : {0ull, 1ull, 2ull, 3ull, 5ull, 8ull, 13ull, 21ull,
                           34ull, 55ull}) {
    SCOPED_TRACE("crash_at=" + std::to_string(k));
    const std::string path = pool_path("creation");
    std::remove(path.c_str());
    {
      nvm::PmemPool pool(8ull << 20, {}, path);
      pool.enable_crash_sim();
      nvm::FaultPlan plan;
      plan.crash_at = k;
      pool.set_fault_plan(&plan);
      std::unique_ptr<nvm::PmemAllocator> alloc;
      std::unique_ptr<Hdnh> table;
      bool crashed = false;
      try {
        alloc = std::make_unique<nvm::PmemAllocator>(pool);
        table = std::make_unique<Hdnh>(*alloc, small_cfg());
        for (uint64_t id = 1; id <= 50; ++id) {
          table->insert(make_key(id), make_value(id));
        }
      } catch (const nvm::InjectedCrash&) {
        crashed = true;
      }
      pool.set_fault_plan(nullptr);
      ASSERT_TRUE(crashed);
      if (table) table->abandon_after_crash();
    }
    const int rc = run_doctor(path);
    EXPECT_TRUE(rc == 0 || rc == 3 || rc == 4) << "unexpected exit " << rc;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace hdnh
