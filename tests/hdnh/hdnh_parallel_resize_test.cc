// Parallel rehash (resize_threads > 1): correctness, equivalence with the
// single-threaded drain, and crash-consistency of the batched progress
// mark.
#include <gtest/gtest.h>

#include <string>

#include "../test_util.h"
#include "hdnh/hdnh.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

class ParallelResize : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParallelResize, AllItemsSurviveManyResizes) {
  HdnhConfig cfg = small_config(512);
  cfg.resize_threads = GetParam();
  HdnhPack p(256 << 20, cfg);
  constexpr uint64_t kN = 40000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i))) << i;
  }
  ASSERT_GT(p.table->resize_count(), 2u);
  EXPECT_EQ(p.table->size(), kN);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
  auto rep = p.table->check_integrity();
  EXPECT_TRUE(rep.ok()) << "dups=" << rep.duplicate_keys;
  EXPECT_EQ(rep.items, kN);
}

TEST_P(ParallelResize, MixedOpsAcrossResizes) {
  HdnhConfig cfg = small_config(512);
  cfg.resize_threads = GetParam();
  HdnhPack p(256 << 20, cfg);
  Value v;
  uint64_t next = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 4000; ++i) {
      ASSERT_TRUE(p.table->insert(make_key(next), make_value(next)));
      ++next;
    }
    for (uint64_t k = round * 100; k < round * 100 + 50; ++k) {
      ASSERT_TRUE(p.table->update(make_key(k), make_value(k + 1)));
    }
    for (uint64_t k = round * 1000; k < round * 1000 + 20; ++k) {
      p.table->erase(make_key(k));
    }
  }
  EXPECT_GT(p.table->resize_count(), 1u);
  EXPECT_TRUE(p.table->check_integrity().ok());
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelResize,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(ParallelResizeCrash, CrashMidParallelRehashRecovers) {
  struct CrashInjected {};
  for (int nth : {1, 2, 4}) {
    HdnhConfig cfg = small_config(512);
    cfg.resize_threads = 4;
    HdnhPack p(256 << 20, cfg, /*crash_sim=*/true);
    constexpr uint64_t kBase = 3000;
    for (uint64_t i = 0; i < kBase; ++i)
      ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));

    int count = 0;
    p.table->test_hook = [&](const char* at) {
      // Fires after a BATCH of buckets was drained by 4 workers.
      if (std::string(at) == "rehash-bucket" && ++count == nth) {
        p.pool.simulate_crash();
        throw CrashInjected{};
      }
    };
    uint64_t id = 1 << 20;
    uint64_t failed_id = 0;
    try {
      for (;; ++id) p.table->insert(make_key(id), make_value(id));
    } catch (const CrashInjected&) {
      failed_id = id;
    }

    p.reattach(cfg);
    Value v;
    for (uint64_t i = 0; i < kBase; ++i) {
      ASSERT_TRUE(p.table->search(make_key(i), &v))
          << "nth=" << nth << " lost " << i;
      ASSERT_TRUE(v == make_value(i)) << i;
    }
    for (uint64_t k = 1 << 20; k < failed_id; ++k) {
      ASSERT_TRUE(p.table->search(make_key(k), &v)) << "nth=" << nth << " " << k;
    }
    auto rep = p.table->check_integrity();
    ASSERT_TRUE(rep.ok()) << "nth=" << nth << " dups=" << rep.duplicate_keys;
    // Exactly-once despite batch replay: erase each preload key once.
    for (uint64_t i = 0; i < kBase; i += 13) {
      ASSERT_TRUE(p.table->erase(make_key(i)));
      ASSERT_FALSE(p.table->erase(make_key(i)));
    }
  }
}

}  // namespace
}  // namespace hdnh
