// Crash-consistency tests: power loss is simulated with the pool's shadow
// "media" image (only CLWB'd+fenced lines survive), injected at precise
// points via Hdnh::test_hook. After each crash a fresh Hdnh attaches to the
// pool and §3.7 recovery must restore an exactly-consistent table.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "../test_util.h"
#include "hdnh/hdnh.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

struct CrashInjected : std::runtime_error {
  CrashInjected() : std::runtime_error("injected crash") {}
};

// Arms `pack.table` to crash at the `nth` occurrence of hook point `point`.
void arm_crash(HdnhPack& pack, const char* point, int nth = 1) {
  auto counter = std::make_shared<int>(0);
  pack.table->test_hook = [&pack, point, nth, counter](const char* at) {
    if (std::string(at) == point && ++*counter == nth) {
      pack.pool.simulate_crash();
      throw CrashInjected();
    }
  };
}

TEST(HdnhCrash, CompletedOpsSurviveCrash) {
  HdnhPack p(64 << 20, small_config(8192), /*crash_sim=*/true);
  constexpr uint64_t kN = 3000;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
  for (uint64_t i = 0; i < 100; ++i)
    ASSERT_TRUE(p.table->update(make_key(i), make_value(i + 5000)));
  for (uint64_t i = 100; i < 200; ++i) ASSERT_TRUE(p.table->erase(make_key(i)));

  p.pool.simulate_crash();  // power loss at a quiescent point
  p.reattach(small_config(8192));

  EXPECT_EQ(p.table->size(), kN - 100);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    if (i < 100) {
      ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
      ASSERT_TRUE(v == make_value(i + 5000)) << i;
    } else if (i < 200) {
      ASSERT_FALSE(p.table->search(make_key(i), &v)) << i;
    } else {
      ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
      ASSERT_TRUE(v == make_value(i)) << i;
    }
  }
}

TEST(HdnhCrash, RandomCacheEvictionsNeverHurt) {
  // Real caches may write back any dirty line at any time; extra
  // persistence must never break recovery.
  HdnhPack p(64 << 20, small_config(8192), /*crash_sim=*/true);
  constexpr uint64_t kN = 2000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
    if (i % 64 == 0) p.pool.evict_random_lines(256, i);
  }
  p.pool.evict_random_lines(10000, 999);
  p.pool.simulate_crash();
  p.reattach(small_config(8192));
  EXPECT_EQ(p.table->size(), kN);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(p.table->search(make_key(i), &v));
}

TEST(HdnhCrash, TornInsertIsInvisibleAfterCrash) {
  HdnhPack p(64 << 20, small_config(8192), /*crash_sim=*/true);
  for (uint64_t i = 0; i < 500; ++i)
    p.table->insert(make_key(i), make_value(i));

  arm_crash(p, "insert-slot-persisted");  // slot written, bitmap bit not set
  EXPECT_THROW(p.table->insert(make_key(9999), make_value(9999)),
               CrashInjected);
  p.reattach(small_config(8192));

  Value v;
  EXPECT_FALSE(p.table->search(make_key(9999), &v));  // atomically absent
  EXPECT_EQ(p.table->size(), 500u);
  // The orphaned slot is reusable: the same key inserts cleanly.
  EXPECT_TRUE(p.table->insert(make_key(9999), make_value(1)));
  EXPECT_TRUE(p.table->search(make_key(9999), &v));
}

// Force the cross-bucket update path by filling the key's entire home
// bucket first. Returns a key whose updates must go cross-bucket... too
// structure-dependent to force deterministically, so instead run many
// updates at high bucket occupancy and crash at the cross-bucket hooks.
TEST(HdnhCrash, UpdateCrashAfterLogArmedRecoversNewValue) {
  HdnhPack p(256 << 20, small_config(512), /*crash_sim=*/true);
  // High load ⇒ full buckets ⇒ cross-bucket updates occur.
  constexpr uint64_t kN = 12000;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));

  arm_crash(p, "update-log-armed");
  uint64_t crashed_key = UINT64_MAX;
  for (uint64_t i = 0; i < kN; ++i) {
    try {
      ASSERT_TRUE(p.table->update(make_key(i), make_value(i + 100000)));
    } catch (const CrashInjected&) {
      crashed_key = i;
      break;
    }
  }
  ASSERT_NE(crashed_key, UINT64_MAX)
      << "no cross-bucket update occurred; densify the table";

  p.reattach(small_config(512));
  // The log was armed, so recovery completes the flip: the NEW value wins
  // and the key exists exactly once.
  Value v;
  ASSERT_TRUE(p.table->search(make_key(crashed_key), &v));
  EXPECT_TRUE(v == make_value(crashed_key + 100000));
  // Exactly once: erase it, then it must be gone.
  ASSERT_TRUE(p.table->erase(make_key(crashed_key)));
  EXPECT_FALSE(p.table->search(make_key(crashed_key), &v));
  EXPECT_FALSE(p.table->erase(make_key(crashed_key)));
}

TEST(HdnhCrash, UpdateCrashAfterNewBitSetRecoversExactlyOnce) {
  HdnhPack p(256 << 20, small_config(512), /*crash_sim=*/true);
  constexpr uint64_t kN = 12000;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));

  arm_crash(p, "update-new-set");  // both bits momentarily valid on media
  uint64_t crashed_key = UINT64_MAX;
  for (uint64_t i = 0; i < kN; ++i) {
    try {
      ASSERT_TRUE(p.table->update(make_key(i), make_value(i + 100000)));
    } catch (const CrashInjected&) {
      crashed_key = i;
      break;
    }
  }
  ASSERT_NE(crashed_key, UINT64_MAX);

  p.reattach(small_config(512));
  Value v;
  ASSERT_TRUE(p.table->search(make_key(crashed_key), &v));
  EXPECT_TRUE(v == make_value(crashed_key + 100000));
  ASSERT_TRUE(p.table->erase(make_key(crashed_key)));
  EXPECT_FALSE(p.table->search(make_key(crashed_key), &v));  // no duplicate
}

uint64_t fill_until_resize_crash(HdnhPack& p, const char* point, int nth = 1) {
  arm_crash(p, point, nth);
  uint64_t id = 1 << 20;
  for (;;) {
    try {
      p.table->insert(make_key(id), make_value(id));
      ++id;
    } catch (const CrashInjected&) {
      return id;  // id itself did NOT complete
    }
  }
}

class HdnhResizeCrashParam
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(HdnhResizeCrashParam, CrashDuringResizeRecoversAllItems) {
  const auto [point, nth] = GetParam();
  HdnhPack p(256 << 20, small_config(512), /*crash_sim=*/true);
  constexpr uint64_t kBase = 2000;
  for (uint64_t i = 0; i < kBase; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));

  const uint64_t failed_id = fill_until_resize_crash(p, point, nth);
  p.reattach(small_config(512));

  // Every insert that returned must be present; the one that crashed
  // mid-resize must be absent (it never completed).
  Value v;
  for (uint64_t i = 0; i < kBase; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << "lost preload key " << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
  for (uint64_t id = 1 << 20; id < failed_id; ++id) {
    ASSERT_TRUE(p.table->search(make_key(id), &v)) << "lost key " << id;
  }
  EXPECT_FALSE(p.table->search(make_key(failed_id), &v));

  // And the table keeps working (the interrupted resize completed during
  // recovery, so there is room again).
  ASSERT_TRUE(p.table->insert(make_key(failed_id), make_value(failed_id)));
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(p.table->insert(make_key(2 << 20 | i), make_value(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ResizePoints, HdnhResizeCrashParam,
    ::testing::Values(std::make_pair("resize-ln2", 1),
                      std::make_pair("resize-ln3", 1),
                      std::make_pair("rehash-bucket", 1),
                      std::make_pair("rehash-bucket", 7),
                      std::make_pair("rehash-bucket", 40)));

TEST(HdnhCrash, CrashAgainRightAfterRecoveryConverges) {
  // Crash during resize, recover, then lose power again immediately (before
  // any new persist beyond recovery's own) — the second recovery must see a
  // fully consistent steady-state table.
  HdnhPack p(256 << 20, small_config(512), /*crash_sim=*/true);
  constexpr uint64_t kBase = 3000;
  for (uint64_t i = 0; i < kBase; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
  const uint64_t failed_id = fill_until_resize_crash(p, "rehash-bucket", 3);

  p.reattach(small_config(512));  // first recovery resumes the rehash
  p.pool.simulate_crash();        // immediate second power loss
  p.reattach(small_config(512));  // second recovery

  Value v;
  for (uint64_t i = 0; i < kBase; ++i)
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
  for (uint64_t id = 1 << 20; id < failed_id; ++id)
    ASSERT_TRUE(p.table->search(make_key(id), &v)) << id;
  // Exactly-once: each recovered key erases exactly once (no duplicates
  // introduced by the twice-recovered rehash).
  for (uint64_t i = 0; i < kBase; ++i) {
    ASSERT_TRUE(p.table->erase(make_key(i))) << i;
    ASSERT_FALSE(p.table->search(make_key(i), &v)) << i;
  }
}

TEST(HdnhCrash, CrashRightAfterCreationAttaches) {
  HdnhPack p(32 << 20, small_config(), /*crash_sim=*/true);
  p.pool.simulate_crash();
  p.reattach(small_config());
  EXPECT_EQ(p.table->size(), 0u);
  ASSERT_TRUE(p.table->insert(make_key(1), make_value(1)));
}

TEST(HdnhCrash, RepeatedCrashRecoverCycles) {
  HdnhPack p(128 << 20, small_config(4096), /*crash_sim=*/true);
  uint64_t next = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (uint64_t i = 0; i < 1000; ++i) {
      ASSERT_TRUE(p.table->insert(make_key(next), make_value(next)));
      ++next;
    }
    p.pool.simulate_crash();
    p.reattach(small_config(4096));
    EXPECT_EQ(p.table->size(), next);
    Value v;
    for (uint64_t i = 0; i < next; i += 37)
      ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
  }
}

}  // namespace
}  // namespace hdnh
