// Tests of the Optimistic Compression Filter's observable effect: the OCF
// exists to turn NVM probes into DRAM fingerprint comparisons, so these
// tests assert on the emulated device's traffic counters.
#include <gtest/gtest.h>

#include "../test_util.h"
#include "hdnh/hdnh.h"
#include "nvm/stats.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

nvm::StatsSnapshot run_counted(const std::function<void()>& fn) {
  const auto before = nvm::Stats::snapshot();
  fn();
  auto after = nvm::Stats::snapshot();
  after -= before;
  return after;
}

TEST(HdnhOcf, NegativeSearchDoesAlmostNoNvmReads) {
  HdnhConfig cfg = small_config(8192);
  cfg.enable_hot_table = false;  // isolate the OCF
  HdnhPack p(64 << 20, cfg);
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));

  constexpr uint64_t kProbes = 5000;
  const auto delta = run_counted([&] {
    Value v;
    for (uint64_t i = 0; i < kProbes; ++i) {
      ASSERT_FALSE(p.table->search(make_key(1000000 + i), &v));
    }
  });
  // A negative search reads NVM only on a fingerprint false positive
  // (probability ~ valid-slots-per-candidate-set / 256 ≈ a few %).
  EXPECT_LT(delta.nvm_read_ops, kProbes / 4);
  EXPECT_GT(delta.ocf_filtered, 0u);
  // Every NVM read that did happen was a counted false positive.
  EXPECT_EQ(delta.nvm_read_ops, delta.ocf_false_positive);
}

TEST(HdnhOcf, PositiveSearchReadsAboutOneSlot) {
  HdnhConfig cfg = small_config(8192);
  cfg.enable_hot_table = false;
  HdnhPack p(64 << 20, cfg);
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));

  const auto delta = run_counted([&] {
    Value v;
    for (uint64_t i = 0; i < kN; ++i)
      ASSERT_TRUE(p.table->search(make_key(i), &v));
  });
  // One true-positive slot read per lookup plus rare false positives.
  EXPECT_GE(delta.nvm_read_ops, kN);
  EXPECT_LT(delta.nvm_read_ops, kN * 5 / 4);
}

TEST(HdnhOcf, DisablingFilterMultipliesNvmReads) {
  constexpr uint64_t kN = 4000;
  auto measure = [&](bool enable_ocf) {
    HdnhConfig cfg = small_config(8192);
    cfg.enable_hot_table = false;
    cfg.enable_ocf = enable_ocf;
    HdnhPack p(64 << 20, cfg);
    for (uint64_t i = 0; i < kN; ++i)
      p.table->insert(make_key(i), make_value(i));
    return run_counted([&] {
      Value v;
      for (uint64_t i = 0; i < kN; ++i) {
        p.table->search(make_key(1000000 + i), &v);  // negative probes
      }
    });
  };
  const auto with_ocf = measure(true);
  const auto without_ocf = measure(false);
  // Without fingerprints every valid slot in all 8 candidate buckets is
  // probed in NVM; with them, almost none are.
  EXPECT_GT(without_ocf.nvm_read_ops, with_ocf.nvm_read_ops * 10);
}

TEST(HdnhOcf, HotTableAbsorbsSkewedReads) {
  HdnhConfig cfg = small_config(8192);
  cfg.hot_capacity_ratio = 0.5;
  HdnhPack p(64 << 20, cfg);
  constexpr uint64_t kN = 2000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));

  // Hammer a tiny hot set: after the first touches, reads must be served
  // from DRAM (dram_hot_hits) with almost no NVM traffic.
  Value v;
  for (uint64_t i = 0; i < 16; ++i) p.table->search(make_key(i), &v);
  const auto delta = run_counted([&] {
    for (int round = 0; round < 1000; ++round) {
      for (uint64_t i = 0; i < 16; ++i) {
        ASSERT_TRUE(p.table->search(make_key(i), &v));
      }
    }
  });
  EXPECT_GT(delta.dram_hot_hits, 15000u);
  EXPECT_LT(delta.nvm_read_ops, 1000u);
}

TEST(HdnhOcf, InsertTrafficIsBounded) {
  HdnhConfig cfg = small_config(8192);
  cfg.enable_hot_table = false;
  HdnhPack p(64 << 20, cfg);
  constexpr uint64_t kN = 4000;
  const auto delta = run_counted([&] {
    for (uint64_t i = 0; i < kN; ++i)
      p.table->insert(make_key(i), make_value(i));
  });
  // Insert = slot write + bitmap write (plus resize traffic if any):
  // ~2 write ops and ~2-3 persisted lines per insert; the dup-check probe
  // is filtered by the OCF so reads stay far below one bucket per insert.
  EXPECT_GE(delta.nvm_write_ops, kN * 2);
  EXPECT_LT(delta.nvm_read_ops, kN);
  EXPECT_GE(delta.fences, kN * 2);
}

TEST(HdnhOcf, FalsePositivesAreRareAndCounted) {
  HdnhConfig cfg = small_config(8192);
  cfg.enable_hot_table = false;
  HdnhPack p(64 << 20, cfg);
  for (uint64_t i = 0; i < 5000; ++i)
    p.table->insert(make_key(i), make_value(i));
  const auto delta = run_counted([&] {
    Value v;
    for (uint64_t i = 0; i < 20000; ++i)
      p.table->search(make_key(500000 + i), &v);
  });
  // With ~10 valid slots across the candidate sets and 1/256 collision
  // odds, expect a low-single-digit percent false-positive rate.
  EXPECT_LT(delta.ocf_false_positive, 20000u / 10);
}

}  // namespace
}  // namespace hdnh
