// Randomized crash matrix: run a random op sequence against a reference
// model with crash simulation armed, pull the power at a random op
// boundary (with random cache evictions sprinkled throughout), recover,
// and require the table to exactly equal the model of COMPLETED ops.
// Parameterized over seeds for breadth with deterministic repro.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "../test_util.h"
#include "common/random.h"
#include "hdnh/hdnh.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

class CrashMatrix : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashMatrix, RecoveredStateEqualsCompletedOps) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  HdnhPack p(128 << 20, small_config(2048), /*crash_sim=*/true);

  std::unordered_map<uint64_t, uint64_t> model;
  constexpr uint64_t kKeySpace = 4000;

  // Several crash/recover cycles per seed, each at a random op count.
  for (int cycle = 0; cycle < 4; ++cycle) {
    const uint64_t ops_this_cycle = 1000 + rng.next_below(4000);
    for (uint64_t op = 0; op < ops_this_cycle; ++op) {
      const uint64_t k = rng.next_below(kKeySpace);
      const uint64_t vid = rng.next_below(1 << 16);
      switch (rng.next_below(4)) {
        case 0:
        case 1:
          if (p.table->insert(make_key(k), make_value(vid)) ==
              (model.find(k) == model.end())) {
            if (!model.count(k)) model[k] = vid;
          } else {
            FAIL() << "insert divergence at cycle " << cycle << " op " << op;
          }
          break;
        case 2:
          if (p.table->update(make_key(k), make_value(vid))) model[k] = vid;
          break;
        case 3:
          ASSERT_EQ(p.table->erase(make_key(k)), model.erase(k) == 1);
          break;
      }
      // Occasionally the cache spontaneously writes back random lines.
      if (rng.next_below(512) == 0) {
        p.pool.evict_random_lines(64, rng.next());
      }
    }

    p.pool.simulate_crash();
    p.reattach(small_config(2048));

    // Every completed op is durable: the table must equal the model.
    ASSERT_EQ(p.table->size(), model.size()) << "cycle " << cycle;
    Value v;
    for (const auto& [k, vid] : model) {
      ASSERT_TRUE(p.table->search(make_key(k), &v))
          << "cycle " << cycle << ": lost key " << k;
      ASSERT_TRUE(v == make_value(vid))
          << "cycle " << cycle << ": stale value for key " << k;
    }
    auto rep = p.table->check_integrity();
    ASSERT_TRUE(rep.ok()) << "cycle " << cycle << ": dup=" << rep.duplicate_keys
                          << " ocf=" << rep.ocf_valid_mismatches
                          << " stale-hot=" << rep.hot_table_stale;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashMatrix,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

// Same discipline but crashes are injected INSIDE operations (at the
// cross-bucket update hooks), in a loop: the interrupted op is allowed to
// be either fully applied or fully absent; everything else must be exact.
class TornOpMatrix : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TornOpMatrix, TornUpdatesAtomicAcrossManyCrashes) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  HdnhPack p(128 << 20, small_config(512), /*crash_sim=*/true);

  // Dense table: cross-bucket updates become common.
  std::unordered_map<uint64_t, uint64_t> model;
  constexpr uint64_t kKeys = 9000;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
    model[i] = i;
  }

  struct CrashInjected {};
  const char* points[] = {"update-log-armed", "update-new-set",
                          "insert-slot-persisted"};

  for (int round = 0; round < 8; ++round) {
    // Arm a crash at a random point on a random future hook hit.
    const char* point = points[rng.next_below(3)];
    const int nth = 1 + static_cast<int>(rng.next_below(3));
    int count = 0;
    p.table->test_hook = [&, point, nth](const char* at) {
      if (std::string(at) == point && ++count == nth) {
        p.pool.simulate_crash();
        throw CrashInjected{};
      }
    };

    uint64_t torn_key = UINT64_MAX;
    uint64_t torn_new_vid = 0;
    bool torn_was_insert = false;
    try {
      for (int op = 0; op < 20000; ++op) {
        const uint64_t k = rng.next_below(kKeys + 200);
        const uint64_t vid = rng.next_below(1 << 16);
        torn_key = k;
        torn_new_vid = vid;
        if (model.count(k)) {
          torn_was_insert = false;
          ASSERT_TRUE(p.table->update(make_key(k), make_value(vid)));
          model[k] = vid;
        } else {
          torn_was_insert = true;
          ASSERT_TRUE(p.table->insert(make_key(k), make_value(vid)));
          model[k] = vid;
        }
      }
      // Hook never fired this round (point not reached): disarm and move on.
      p.table->test_hook = nullptr;
      continue;
    } catch (const CrashInjected&) {
    }

    p.reattach(small_config(512));

    // The torn op may have landed or not — both are legal; the model is
    // corrected to whatever the table decided.
    Value v;
    const bool present = p.table->search(make_key(torn_key), &v);
    if (torn_was_insert) {
      if (present) {
        ASSERT_TRUE(v == make_value(torn_new_vid));
        model[torn_key] = torn_new_vid;
      } else {
        model.erase(torn_key);
      }
    } else {
      ASSERT_TRUE(present) << "update lost the key entirely";
      const uint64_t old_vid = model[torn_key];
      // Log replay rolls FORWARD, so after a cross-bucket crash the new
      // value should win; a same-bucket crash before the atomic flip keeps
      // the old one. Either value is atomic and acceptable.
      ASSERT_TRUE(v == make_value(torn_new_vid) || v == make_value(old_vid))
          << "torn update produced a third value";
      model[torn_key] = v == make_value(torn_new_vid) ? torn_new_vid : old_vid;
    }

    // Everything else must be exact.
    ASSERT_EQ(p.table->size(), model.size()) << "round " << round;
    uint64_t checked = 0;
    for (const auto& [k, vid] : model) {
      if (++checked % 7 != 0 && k != torn_key) continue;  // sample 1/7 + torn
      ASSERT_TRUE(p.table->search(make_key(k), &v)) << k;
      ASSERT_TRUE(v == make_value(vid)) << k;
    }
    ASSERT_TRUE(p.table->check_integrity().ok()) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TornOpMatrix,
                         ::testing::Values(7u, 77u, 777u));

}  // namespace
}  // namespace hdnh
