// Structural invariant checks via Hdnh::check_integrity(): the OCF must
// mirror the non-volatile table exactly, the hot table must never disagree
// with durable data, no busy bit or armed log entry may leak.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "../test_util.h"
#include "common/random.h"
#include "hdnh/hdnh.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

void expect_clean(Hdnh& t, const char* when) {
  auto rep = t.check_integrity();
  EXPECT_EQ(rep.ocf_valid_mismatches, 0u) << when;
  EXPECT_EQ(rep.fingerprint_mismatches, 0u) << when;
  EXPECT_EQ(rep.stuck_busy_entries, 0u) << when;
  EXPECT_EQ(rep.duplicate_keys, 0u) << when;
  EXPECT_EQ(rep.hot_table_stale, 0u) << when;
  EXPECT_EQ(rep.armed_log_entries, 0u) << when;
  EXPECT_TRUE(rep.ok()) << when;
}

TEST(HdnhIntegrity, CleanAfterBulkInserts) {
  HdnhPack p(64 << 20, small_config(8192));
  for (uint64_t i = 0; i < 6000; ++i)
    p.table->insert(make_key(i), make_value(i));
  auto rep = p.table->check_integrity();
  EXPECT_EQ(rep.items, 6000u);
  expect_clean(*p.table, "after inserts");
}

TEST(HdnhIntegrity, CleanAfterChurn) {
  HdnhPack p(64 << 20, small_config(8192));
  Rng rng(5);
  for (int op = 0; op < 50000; ++op) {
    const uint64_t k = rng.next_below(3000);
    switch (rng.next_below(3)) {
      case 0:
        p.table->insert(make_key(k), make_value(k));
        break;
      case 1:
        p.table->update(make_key(k), make_value(op));
        break;
      case 2:
        p.table->erase(make_key(k));
        break;
    }
  }
  expect_clean(*p.table, "after churn");
}

TEST(HdnhIntegrity, CleanAcrossResizes) {
  HdnhPack p(256 << 20, small_config(512));
  for (uint64_t i = 0; i < 40000; ++i)
    p.table->insert(make_key(i), make_value(i));
  ASSERT_GT(p.table->resize_count(), 1u);
  auto rep = p.table->check_integrity();
  EXPECT_EQ(rep.items, 40000u);
  expect_clean(*p.table, "after resizes");
}

TEST(HdnhIntegrity, CleanAfterConcurrentStorm) {
  HdnhPack p(256 << 20, small_config(1 << 14));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 100);
      Value v;
      for (int op = 0; op < 20000; ++op) {
        const uint64_t k = t * 100000 + rng.next_below(3000);
        switch (rng.next_below(4)) {
          case 0:
            p.table->insert(make_key(k), make_value(k));
            break;
          case 1:
            p.table->update(make_key(k), make_value(op));
            break;
          case 2:
            p.table->erase(make_key(k));
            break;
          case 3:
            p.table->search(make_key(k), &v);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  expect_clean(*p.table, "after concurrent storm");
}

TEST(HdnhIntegrity, CleanAfterRecovery) {
  HdnhPack p(64 << 20, small_config(8192), /*crash_sim=*/true);
  for (uint64_t i = 0; i < 5000; ++i)
    p.table->insert(make_key(i), make_value(i));
  for (uint64_t i = 0; i < 1000; ++i)
    p.table->update(make_key(i), make_value(i + 1));
  p.pool.simulate_crash();
  p.reattach(small_config(8192));
  auto rep = p.table->check_integrity();
  EXPECT_EQ(rep.items, 5000u);
  expect_clean(*p.table, "after crash recovery");
}

TEST(HdnhIntegrity, ForEachVisitsExactlyLiveRecords) {
  HdnhPack p(64 << 20, small_config(8192));
  constexpr uint64_t kN = 4000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));
  for (uint64_t i = 0; i < kN; i += 2) p.table->erase(make_key(i));

  std::vector<bool> seen(kN, false);
  uint64_t visits = 0;
  p.table->for_each([&](const KVPair& kv) {
    const uint64_t id = key_id(kv.key);
    ASSERT_LT(id, kN);
    ASSERT_TRUE(id % 2 == 1) << "visited erased key " << id;
    ASSERT_FALSE(seen[id]) << "double visit " << id;
    ASSERT_TRUE(kv.value == make_value(id));
    seen[id] = true;
    ++visits;
  });
  EXPECT_EQ(visits, kN / 2);
}

TEST(HdnhIntegrity, ReportFlagsInjectedCorruption) {
  // Sanity-check the checker itself: corrupt a persisted bitmap bit behind
  // the OCF's back and expect a mismatch report.
  HdnhPack p(64 << 20, small_config(8192));
  for (uint64_t i = 0; i < 100; ++i)
    p.table->insert(make_key(i), make_value(i));
  expect_clean(*p.table, "before corruption");

  // Erase via the public API updates both sides; flipping an NVT bitmap
  // directly leaves the OCF stale.
  struct Finder {
    static const NvBucket* find_nonempty(nvm::PmemPool& pool, uint64_t off,
                                         uint64_t buckets) {
      auto* arr = pool.to_ptr<NvBucket>(off);
      for (uint64_t b = 0; b < buckets; ++b) {
        if (arr[b].bitmap.load() != 0) return &arr[b];
      }
      return nullptr;
    }
  };
  // The superblock is at root 0.
  auto* super = p.pool.to_ptr<HdnhSuper>(p.alloc.root(Hdnh::kSuperRoot));
  const NvBucket* victim = Finder::find_nonempty(
      p.pool, super->level_off[0],
      super->level_segs[0] * super->buckets_per_seg);
  if (victim == nullptr) {
    victim = Finder::find_nonempty(
        p.pool, super->level_off[1],
        super->level_segs[1] * super->buckets_per_seg);
  }
  ASSERT_NE(victim, nullptr);
  const_cast<NvBucket*>(victim)->bitmap.fetch_xor(0xFF);

  auto rep = p.table->check_integrity();
  EXPECT_FALSE(rep.ok());
  EXPECT_GT(rep.ocf_valid_mismatches, 0u);
}

}  // namespace
}  // namespace hdnh
