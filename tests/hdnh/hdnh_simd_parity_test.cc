// End-to-end parity of the scalar and vector probe paths: the same
// deterministic operation stream must produce bit-identical results and
// leave bit-identical non-volatile contents whichever ISA tier answers the
// bucket scans. Labelled tsan: the concurrent section exercises the wide
// racy pre-filter loads under ThreadSanitizer (the kernels are excluded
// from instrumentation; everything around them is checked).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "common/random.h"
#include "common/simd.h"
#include "hdnh/hdnh.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

struct LevelGuard {
  ~LevelGuard() { simd::force_level(simd::compiled_level()); }
};

struct StreamOutcome {
  std::vector<uint8_t> results;          // one byte per op (hit/success bit)
  std::vector<std::pair<std::vector<uint8_t>, std::vector<uint8_t>>> contents;
};

// A mixed single-threaded op stream: inserts, searches (hits and misses),
// updates, erases, and phased multigets, heavy enough to trigger at least
// one structural resize at the small test capacity.
StreamOutcome run_stream(simd::IsaLevel level) {
  simd::force_level(level);
  StreamOutcome out;
  HdnhPack p(64 << 20, small_config(4096));
  Rng rng(99);
  constexpr uint64_t kSpace = 6000;
  for (int op = 0; op < 20000; ++op) {
    const uint64_t id = rng.next_below(kSpace);
    switch (rng.next_below(10)) {
      case 0:
      case 1:
      case 2:
      case 3:
        out.results.push_back(p.table->insert(make_key(id), make_value(id)));
        break;
      case 4:
      case 5: {
        Value v;
        const bool hit = p.table->search(make_key(id), &v);
        out.results.push_back(hit);
        if (hit) out.results.push_back(v == make_value(key_id(make_key(id))));
        break;
      }
      case 6:
        out.results.push_back(
            p.table->update(make_key(id), make_value(id ^ 0x5555)));
        break;
      case 7:
        out.results.push_back(p.table->erase(make_key(id)));
        break;
      default: {
        std::vector<Key> keys;
        for (int i = 0; i < 24; ++i)
          keys.push_back(make_key(rng.next_below(kSpace)));
        keys.push_back(keys[0]);  // guaranteed duplicate
        std::vector<Value> values(keys.size());
        std::vector<uint8_t> found(keys.size());
        const size_t hits =
            p.table->multiget(keys.data(), keys.size(), values.data(),
                              reinterpret_cast<bool*>(found.data()));
        out.results.push_back(static_cast<uint8_t>(hits));
        for (uint8_t f : found) out.results.push_back(f);
        break;
      }
    }
  }
  EXPECT_TRUE(p.table->check_integrity().ok())
      << "level " << simd::level_name(level);
  p.table->for_each([&](const KVPair& kv) {
    out.contents.emplace_back(
        std::vector<uint8_t>(kv.key.b, kv.key.b + kKeyBytes),
        std::vector<uint8_t>(kv.value.b, kv.value.b + kValueBytes));
  });
  std::sort(out.contents.begin(), out.contents.end());
  return out;
}

TEST(HdnhSimdParity, DeterministicStreamMatchesScalar) {
  LevelGuard g;
  const StreamOutcome scalar = run_stream(simd::IsaLevel::kScalar);
  const StreamOutcome vec = run_stream(simd::compiled_level());
  ASSERT_EQ(scalar.results.size(), vec.results.size());
  EXPECT_EQ(scalar.results, vec.results);
  ASSERT_EQ(scalar.contents.size(), vec.contents.size());
  EXPECT_EQ(scalar.contents, vec.contents);
}

// Same workload under both tiers with real concurrency: correctness here
// means every preloaded key stays findable and the structure passes the
// deep integrity check afterwards (results are timing-dependent, so no
// cross-tier comparison).
TEST(HdnhSimdParity, ConcurrentReadersWritersBothTiers) {
  LevelGuard g;
  for (simd::IsaLevel level :
       {simd::IsaLevel::kScalar, simd::compiled_level()}) {
    simd::force_level(level);
    HdnhPack p(128 << 20, small_config(1 << 14));
    constexpr uint64_t kN = 3000;
    for (uint64_t i = 0; i < kN; ++i)
      p.table->insert(make_key(i), make_value(i));

    std::atomic<bool> stop{false};
    std::thread writer([&] {
      Rng rng(11);
      uint64_t vid = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t id = rng.next_below(kN);
        p.table->update(make_key(id), make_value(++vid));
        p.table->insert(make_key(kN + rng.next_below(kN)),
                        make_value(vid));
      }
    });
    std::thread reader([&] {
      Rng rng(22);
      std::vector<Key> keys(64);
      std::vector<Value> values(64);
      std::vector<uint8_t> found(64);
      for (int round = 0; round < 300; ++round) {
        for (auto& k : keys) k = make_key(rng.next_below(kN));
        const size_t hits = p.table->multiget(
            keys.data(), keys.size(), values.data(),
            reinterpret_cast<bool*>(found.data()));
        ASSERT_EQ(hits, keys.size()) << "level " << simd::level_name(level);
      }
    });
    reader.join();
    stop.store(true);
    writer.join();
    EXPECT_TRUE(p.table->check_integrity().ok())
        << "level " << simd::level_name(level);
  }
}

}  // namespace
}  // namespace hdnh
