// Edge semantics: version wraparound, erase/reinsert slot reuse (ABA),
// adversarial key patterns, and counter sanity on exotic op sequences.
#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/random.h"
#include "hdnh/hdnh.h"

namespace hdnh {
namespace {

using testutil::HdnhPack;
using testutil::small_config;

TEST(HdnhEdge, VersionWrapsAfter64WritesWithoutCorruption) {
  // The OCF version field is 6 bits; >64 writes to one slot wrap it.
  HdnhPack p(32 << 20, small_config());
  p.table->insert(make_key(1), make_value(0));
  Value v;
  for (uint64_t i = 1; i <= 300; ++i) {  // several full wraps
    ASSERT_TRUE(p.table->update(make_key(1), make_value(i)));
    ASSERT_TRUE(p.table->search(make_key(1), &v));
    ASSERT_TRUE(v == make_value(i)) << i;
  }
  EXPECT_TRUE(p.table->check_integrity().ok());
}

TEST(HdnhEdge, SlotReuseAbaAcrossEraseReinsert) {
  // Erase a key and insert a DIFFERENT key that lands in the same bucket
  // set repeatedly; readers must never resolve the old key to the new
  // key's value.
  HdnhPack p(32 << 20, small_config());
  Value v;
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(p.table->insert(make_key(7), make_value(round)));
    ASSERT_TRUE(p.table->search(make_key(7), &v));
    ASSERT_TRUE(v == make_value(round));
    ASSERT_TRUE(p.table->erase(make_key(7)));
    ASSERT_FALSE(p.table->search(make_key(7), &v)) << round;
  }
  EXPECT_EQ(p.table->size(), 0u);
}

TEST(HdnhEdge, AdversarialSameFingerprintKeys) {
  // Keys chosen so their fingerprints collide (same low byte of h1): the
  // OCF filters nothing among them, forcing the NVM verify path; values
  // must still resolve correctly.
  HdnhPack p(64 << 20, small_config(8192));
  std::vector<uint64_t> ids;
  const uint8_t target = fingerprint(key_hash1(make_key(0)));
  for (uint64_t i = 0; ids.size() < 600; ++i) {
    if (fingerprint(key_hash1(make_key(i))) == target) ids.push_back(i);
  }
  for (uint64_t id : ids)
    ASSERT_TRUE(p.table->insert(make_key(id), make_value(id)));
  Value v;
  for (uint64_t id : ids) {
    ASSERT_TRUE(p.table->search(make_key(id), &v)) << id;
    ASSERT_TRUE(v == make_value(id)) << id;
  }
  // Negative probes with the same fingerprint: pure false-positive storm,
  // still correct.
  uint64_t misses = 0;
  for (uint64_t i = 1 << 24; misses < 200; ++i) {
    if (fingerprint(key_hash1(make_key(i))) == target) {
      ASSERT_FALSE(p.table->search(make_key(i), &v)) << i;
      ++misses;
    }
  }
}

TEST(HdnhEdge, InterleavedInsertEraseKeepsCountExact) {
  HdnhPack p(64 << 20, small_config(4096));
  Rng rng(55);
  int64_t live = 0;
  std::vector<bool> present(3000, false);
  for (int op = 0; op < 30000; ++op) {
    const uint64_t k = rng.next_below(3000);
    if (rng.next_below(2)) {
      if (p.table->insert(make_key(k), make_value(k))) {
        ASSERT_FALSE(present[k]);
        present[k] = true;
        ++live;
      } else {
        ASSERT_TRUE(present[k]);
      }
    } else {
      if (p.table->erase(make_key(k))) {
        ASSERT_TRUE(present[k]);
        present[k] = false;
        --live;
      } else {
        ASSERT_FALSE(present[k]);
      }
    }
    ASSERT_EQ(p.table->size(), static_cast<uint64_t>(live));
  }
}

TEST(HdnhEdge, SearchWithNullOutStillReportsPresence) {
  HdnhPack p(32 << 20, small_config());
  p.table->insert(make_key(3), make_value(3));
  Value sink;
  EXPECT_TRUE(p.table->search(make_key(3), &sink));
  EXPECT_FALSE(p.table->search(make_key(4), &sink));
}

TEST(HdnhEdge, ZeroedKeyIsAnOrdinaryKey) {
  // A key of all zero bytes must not be confused with an empty slot.
  HdnhPack p(32 << 20, small_config());
  Key zero{};
  ASSERT_TRUE(p.table->insert(zero, make_value(99)));
  Value v;
  ASSERT_TRUE(p.table->search(zero, &v));
  EXPECT_TRUE(v == make_value(99));
  ASSERT_TRUE(p.table->erase(zero));
  EXPECT_FALSE(p.table->search(zero, &v));
}

TEST(HdnhEdge, ForEachDuringConcurrentReadsIsSafe) {
  HdnhPack p(64 << 20, small_config(4096));
  for (uint64_t i = 0; i < 2000; ++i)
    p.table->insert(make_key(i), make_value(i));
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    Value v;
    Rng rng(1);
    while (!stop.load(std::memory_order_relaxed)) {
      p.table->search(make_key(rng.next_below(2000)), &v);
    }
  });
  for (int round = 0; round < 20; ++round) {
    uint64_t seen = 0;
    p.table->for_each([&](const KVPair&) { ++seen; });
    EXPECT_EQ(seen, 2000u);
  }
  stop.store(true);
  reader.join();
}

}  // namespace
}  // namespace hdnh
