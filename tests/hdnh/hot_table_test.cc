#include "hdnh/hot_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace hdnh {
namespace {

using HotPolicy = HdnhConfig::HotPolicy;

KVPair kv(uint64_t id) { return KVPair{make_key(id), make_value(id)}; }
KVPair kv(uint64_t id, uint64_t val_id) {
  return KVPair{make_key(id), make_value(val_id)};
}

TEST(HotTable, PutThenSearch) {
  HotTable hot(256, 4, HotPolicy::kRafl);
  hot.put(kv(1));
  Value v;
  ASSERT_TRUE(hot.search(make_key(1), &v));
  EXPECT_TRUE(v == make_value(1));
  EXPECT_FALSE(hot.search(make_key(2), &v));
}

TEST(HotTable, PutIsUpsert) {
  HotTable hot(256, 4, HotPolicy::kRafl);
  hot.put(kv(1));
  hot.put(kv(1, 99));
  Value v;
  ASSERT_TRUE(hot.search(make_key(1), &v));
  EXPECT_TRUE(v == make_value(99));
  EXPECT_EQ(hot.occupied(), 1u);
}

TEST(HotTable, EraseRemoves) {
  HotTable hot(256, 4, HotPolicy::kRafl);
  hot.put(kv(1));
  hot.put(kv(2));
  hot.erase(make_key(1));
  Value v;
  EXPECT_FALSE(hot.search(make_key(1), &v));
  EXPECT_TRUE(hot.search(make_key(2), &v));
  EXPECT_EQ(hot.occupied(), 1u);
}

TEST(HotTable, EraseMissingIsNoop) {
  HotTable hot(256, 4, HotPolicy::kRafl);
  hot.put(kv(1));
  hot.erase(make_key(42));
  EXPECT_EQ(hot.occupied(), 1u);
}

TEST(HotTable, CapacitySplitTwoToOne) {
  HotTable hot(3000, 4, HotPolicy::kRafl);
  // Total slots allocated is a multiple of the bucket split, close to ask.
  EXPECT_GE(hot.total_slots(), 2900u);
  EXPECT_LE(hot.total_slots(), 3100u);
  EXPECT_EQ(hot.slots_per_bucket(), 4u);
}

TEST(HotTable, EvictionKeepsWorking) {
  // Insert far more than capacity; the cache must keep serving puts and
  // never exceed its slot count.
  HotTable hot(64, 4, HotPolicy::kRafl);
  for (uint64_t i = 0; i < 10000; ++i) hot.put(kv(i));
  EXPECT_LE(hot.occupied(), hot.total_slots());
  EXPECT_GT(hot.occupied(), 0u);
}

// RAFL Fig 6(a): a searched (hot) item survives eviction pressure while
// cold items around it are evicted first.
TEST(HotTable, RaflEvictsColdBeforeHot) {
  HotTable hot(3 * 4, 4, HotPolicy::kRafl);  // tiny: 1+2 buckets
  // Fill the cache with items, find one that landed somewhere, make it hot.
  for (uint64_t i = 0; i < 12; ++i) hot.put(kv(i));
  uint64_t hot_id = UINT64_MAX;
  Value v;
  for (uint64_t i = 0; i < 12; ++i) {
    if (hot.search(make_key(i), &v)) {
      hot_id = i;
      break;
    }
  }
  ASSERT_NE(hot_id, UINT64_MAX);
  // The searched item is now hot. Keep touching it while inserting a wave
  // of cold items; it must survive far longer than chance.
  int survived = 0;
  for (int round = 0; round < 50; ++round) {
    for (uint64_t j = 0; j < 4; ++j) hot.put(kv(1000 + round * 4 + j));
    if (hot.search(make_key(hot_id), &v)) {
      ++survived;
    } else {
      hot.put(kv(hot_id));  // re-promote, as a real workload would
    }
  }
  EXPECT_GT(survived, 25);
}

// RAFL Fig 6(b): when every slot is hot, a random eviction happens and all
// hotmap bits reset, so the bucket cannot be squatted forever.
TEST(HotTable, RaflAllHotResetsHotmap) {
  HotTable hot(3 * 2, 2, HotPolicy::kRafl);
  // Occupy and heat everything reachable.
  for (uint64_t i = 0; i < 100; ++i) hot.put(kv(i));
  Value v;
  for (uint64_t i = 0; i < 100; ++i) hot.search(make_key(i), &v);
  const uint64_t before = hot.occupied();
  // New inserts must still land (random eviction path).
  for (uint64_t i = 1000; i < 1100; ++i) hot.put(kv(i));
  uint64_t found_new = 0;
  for (uint64_t i = 1000; i < 1100; ++i) {
    if (hot.search(make_key(i), &v)) ++found_new;
  }
  EXPECT_GT(found_new, 0u);
  EXPECT_LE(hot.occupied(), hot.total_slots());
  EXPECT_GE(hot.occupied(), before / 2);
}

TEST(HotTable, LruEvictsLeastRecentlyUsed) {
  HotTable hot(3 * 4, 4, HotPolicy::kLru);
  for (uint64_t i = 0; i < 200; ++i) hot.put(kv(i));
  // Touch a currently-cached item repeatedly, flood with new ones, and
  // check the touched item tends to survive.
  Value v;
  uint64_t kept = UINT64_MAX;
  for (uint64_t i = 0; i < 200; ++i) {
    if (hot.search(make_key(i), &v)) {
      kept = i;
      break;
    }
  }
  ASSERT_NE(kept, UINT64_MAX);
  int survived = 0;
  for (int round = 0; round < 50; ++round) {
    hot.search(make_key(kept), &v);  // refresh recency
    hot.put(kv(5000 + round));
    if (hot.search(make_key(kept), &v)) ++survived;
  }
  EXPECT_GT(survived, 40);
}

TEST(HotTable, ResetClearsAndResizes) {
  HotTable hot(256, 4, HotPolicy::kRafl);
  for (uint64_t i = 0; i < 100; ++i) hot.put(kv(i));
  EXPECT_GT(hot.occupied(), 0u);
  hot.reset(1024);
  EXPECT_EQ(hot.occupied(), 0u);
  EXPECT_GE(hot.total_slots(), 900u);
  Value v;
  EXPECT_FALSE(hot.search(make_key(1), &v));
  hot.put(kv(1));
  EXPECT_TRUE(hot.search(make_key(1), &v));
}

TEST(HotTable, SearchReturnsConsistentValueUnderConcurrentPuts) {
  HotTable hot(1024, 4, HotPolicy::kRafl);
  constexpr uint64_t kKey = 7;
  hot.put(kv(kKey, 0));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t v = 0;
    while (!stop.load()) hot.put(kv(kKey, ++v % 64));
  });
  // Readers must always observe one of the written values, never a torn mix.
  std::set<uint64_t> valid;
  for (uint64_t v = 0; v < 64; ++v) {
    Value val = make_value(v);
    uint64_t first8;
    std::memcpy(&first8, val.b, 8);
    valid.insert(first8);
  }
  for (int i = 0; i < 200000; ++i) {
    Value v;
    if (hot.search(make_key(kKey), &v)) {
      uint64_t first8;
      std::memcpy(&first8, v.b, 8);
      ASSERT_TRUE(valid.count(first8)) << "torn read";
    }
  }
  stop.store(true);
  writer.join();
}

TEST(HotTable, ConcurrentMixedOpsDoNotCorrupt) {
  HotTable hot(2048, 4, HotPolicy::kRafl);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Value v;
      for (uint64_t i = 0; i < 20000; ++i) {
        const uint64_t id = (i * 7 + t * 13) % 1000;
        switch (i % 3) {
          case 0:
            hot.put(kv(id));
            break;
          case 1:
            if (hot.search(make_key(id), &v)) {
              // Value must correspond to the key's generator.
              EXPECT_TRUE(v == make_value(id));
            }
            break;
          case 2:
            hot.erase(make_key(id));
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(hot.occupied(), hot.total_slots());
}

class HotTableSlotsParam : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HotTableSlotsParam, WorksAcrossSlotCounts) {
  const uint32_t spb = GetParam();
  HotTable hot(spb * 12, spb, HotPolicy::kRafl);
  for (uint64_t i = 0; i < 500; ++i) hot.put(kv(i));
  EXPECT_LE(hot.occupied(), hot.total_slots());
  // Everything cached must read back correctly.
  Value v;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    if (hot.search(make_key(i), &v)) {
      EXPECT_TRUE(v == make_value(i));
      ++hits;
    }
  }
  EXPECT_GT(hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(SlotSweep, HotTableSlotsParam,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace hdnh
