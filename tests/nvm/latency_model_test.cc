// The AEP latency model itself: proportionality to blocks/lines, the
// read/write asymmetry, the scale knob, and the read-amplification
// accounting that underpins every bench comparison.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/clock.h"
#include "nvm/pmem.h"

namespace hdnh::nvm {
namespace {

uint64_t time_ns(const std::function<void()>& fn) {
  const uint64_t t0 = now_ns();
  fn();
  return now_ns() - t0;
}

// Median of repeated timings: robust against multi-millisecond scheduler
// preemptions on a loaded single-core host (sums are not).
uint64_t median_time_ns(int reps, const std::function<void()>& fn) {
  std::vector<uint64_t> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; ++i) samples.push_back(time_ns(fn));
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

TEST(LatencyModel, ReadCostProportionalToBlocks) {
  // Interleave the two measurements so scheduler noise (this may run on a
  // loaded single-core box) hits both sides roughly equally, and use a
  // spin long enough to dominate call overhead.
  NvmConfig cfg;
  cfg.emulate_latency = true;
  cfg.read_ns_per_block = 50000;
  PmemPool p(1 << 20, cfg);
  const uint64_t one = median_time_ns(41, [&] { p.on_read(p.base(), 64); });
  const uint64_t four =
      median_time_ns(41, [&] { p.on_read(p.base(), 1024); });
  EXPECT_GT(four, one * 2);  // nominally 4x; accept >2x under load
  EXPECT_LT(four, one * 12);
}

TEST(LatencyModel, WriteCostProportionalToLines) {
  NvmConfig cfg;
  cfg.emulate_latency = true;
  cfg.write_ns_per_line = 50000;
  PmemPool p(1 << 20, cfg);
  const uint64_t one = median_time_ns(41, [&] { p.persist(p.base(), 8); });
  const uint64_t four =
      median_time_ns(41, [&] { p.persist(p.base(), 256); });
  EXPECT_GT(four, one * 2);
  EXPECT_LT(four, one * 12);
}

TEST(LatencyModel, DefaultAsymmetryReadSlowerThanWrite) {
  // The §2.1 premise: software-visible read latency (media) exceeds write
  // latency (ADR). A 256 B block read must cost ~3x a line persist.
  NvmConfig cfg;
  cfg.emulate_latency = true;  // 3x asymmetry, scaled up for timing margin
  cfg.read_ns_per_block = 30000;
  cfg.write_ns_per_line = 10000;
  PmemPool p(1 << 20, cfg);
  const uint64_t reads = median_time_ns(41, [&] { p.on_read(p.base(), 64); });
  const uint64_t writes = median_time_ns(41, [&] { p.persist(p.base(), 8); });
  EXPECT_GT(reads, writes * 3 / 2);
}

TEST(LatencyModel, ScaleKnobScalesCost) {
  NvmConfig cfg;
  cfg.emulate_latency = true;
  cfg.read_ns_per_block = 40000;
  PmemPool p(1 << 20, cfg);
  p.set_latency_scale(1.0);
  const uint64_t full = median_time_ns(41, [&] { p.on_read(p.base(), 64); });
  p.set_latency_scale(0.25);
  const uint64_t quarter =
      median_time_ns(41, [&] { p.on_read(p.base(), 64); });
  EXPECT_LT(quarter, full * 3 / 4);
}

TEST(LatencyModel, ZeroScaleIsEffectivelyFree) {
  NvmConfig cfg;
  cfg.emulate_latency = true;
  cfg.read_ns_per_block = 100000;
  PmemPool p(1 << 20, cfg);
  p.set_latency_scale(0.0);
  const uint64_t t = time_ns([&] {
    for (int i = 0; i < 10000; ++i) p.on_read(p.base(), 64);
  });
  EXPECT_LT(t, 50ull * 1000 * 1000);
}

TEST(ReadAmplification, SmallRecordsPayWholeBlocks) {
  // A 31-byte record read counts a whole 256 B block — 8.3x amplification,
  // the §2.1 motivation for making buckets exactly one block.
  PmemPool p(1 << 20);
  Stats::reset();
  for (int i = 0; i < 100; ++i) {
    p.on_read(p.base() + 256 * i, 31);  // block-aligned records
  }
  auto s = Stats::snapshot();
  EXPECT_EQ(s.nvm_read_blocks, 100u);

  // An unaligned record can straddle two blocks — worse.
  Stats::reset();
  p.on_read(p.base() + 240, 31);
  EXPECT_EQ(Stats::snapshot().nvm_read_blocks, 2u);
}

TEST(ReadAmplification, HdnhBucketIsExactlyOneBlock) {
  PmemPool p(1 << 20);
  Stats::reset();
  p.on_read(p.base(), 256);
  EXPECT_EQ(Stats::snapshot().nvm_read_blocks, 1u);
}

}  // namespace
}  // namespace hdnh::nvm
