// nvm::Stats: per-thread counter blocks, aggregation across thread churn
// (threads registering, counting, and exiting while snapshots are taken),
// the baseline-swap reset(), and the ScopedStatsDelta RAII helper.
#include "nvm/stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hdnh::nvm {
namespace {

TEST(Stats, LocalIncrementsVisibleInSnapshot) {
  Stats::reset();
  Stats::local().nvm_read_ops += 3;
  Stats::local().fences += 1;
  const StatsSnapshot s = Stats::snapshot();
  EXPECT_EQ(s.nvm_read_ops, 3u);
  EXPECT_EQ(s.fences, 1u);
}

TEST(Stats, ExitedThreadsFinalValuesRetained) {
  Stats::reset();
  std::thread([] { Stats::local().nvm_write_ops += 42; }).join();
  EXPECT_EQ(Stats::snapshot().nvm_write_ops, 42u);
}

TEST(Stats, SnapshotUnderConcurrentThreadChurn) {
  Stats::reset();
  // Waves of short-lived threads register fresh counter blocks, bump them,
  // and exit while the main thread keeps snapshotting: no snapshot may ever
  // run backwards (counters only grow) and the final total must be exact
  // once every thread has joined.
  constexpr int kWaves = 8;
  constexpr int kThreadsPerWave = 4;
  constexpr uint64_t kPerThread = 5000;
  uint64_t floor_seen = 0;
  for (int w = 0; w < kWaves; ++w) {
    std::vector<std::thread> wave;
    for (int t = 0; t < kThreadsPerWave; ++t) {
      wave.emplace_back([] {
        Stats::Counters& c = Stats::local();
        for (uint64_t i = 0; i < kPerThread; ++i) c.ocf_filtered += 1;
      });
    }
    for (int probe = 0; probe < 50; ++probe) {
      const uint64_t now = Stats::snapshot().ocf_filtered;
      EXPECT_GE(now, floor_seen);
      floor_seen = now;
    }
    for (auto& t : wave) t.join();
    // Post-join, this wave's full contribution is visible.
    const uint64_t settled = Stats::snapshot().ocf_filtered;
    EXPECT_EQ(settled,
              static_cast<uint64_t>(w + 1) * kThreadsPerWave * kPerThread);
    floor_seen = settled;
  }
}

TEST(Stats, PerDimmArraysAggregateAcrossThreads) {
  Stats::reset();
  Stats::local().nvm_dimm_write_bytes[0] += 100;
  Stats::local().nvm_dimm_write_stall_ns[3] += 7;
  std::thread([] {
    Stats::local().nvm_dimm_write_bytes[0] += 23;
    Stats::local().nvm_dimm_read_bytes[5] += 11;
    Stats::local().nvm_dimm_queue_depth[2] += 4;
  }).join();
  const StatsSnapshot s = Stats::snapshot();
  EXPECT_EQ(s.nvm_dimm_write_bytes[0], 123u);
  EXPECT_EQ(s.nvm_dimm_read_bytes[5], 11u);
  EXPECT_EQ(s.nvm_dimm_write_stall_ns[3], 7u);
  EXPECT_EQ(s.nvm_dimm_queue_depth[2], 4u);
  EXPECT_EQ(s.nvm_dimm_write_bytes[1], 0u);
}

TEST(Stats, ResetCoversPerDimmArraysAndAllocCounters) {
  Stats::reset();
  Stats::local().nvm_dimm_write_bytes[4] += 50;
  Stats::local().nvm_dimm_read_stall_ns[4] += 9;
  Stats::local().alloc_chunks_claimed += 3;
  Stats::local().alloc_chunk_bytes += 4096;
  Stats::local().alloc_shared_fallbacks += 1;
  Stats::reset();
  const StatsSnapshot z = Stats::snapshot();
  EXPECT_EQ(z.nvm_dimm_write_bytes[4], 0u);
  EXPECT_EQ(z.nvm_dimm_read_stall_ns[4], 0u);
  EXPECT_EQ(z.alloc_chunks_claimed, 0u);
  EXPECT_EQ(z.alloc_chunk_bytes, 0u);
  EXPECT_EQ(z.alloc_shared_fallbacks, 0u);
  // Deltas after the reset are exact, per array slot.
  Stats::local().nvm_dimm_write_bytes[4] += 6;
  Stats::local().alloc_chunks_claimed += 2;
  const StatsSnapshot s = Stats::snapshot();
  EXPECT_EQ(s.nvm_dimm_write_bytes[4], 6u);
  EXPECT_EQ(s.alloc_chunks_claimed, 2u);
}

TEST(Stats, ScopedDeltaCoversPerDimmArrays) {
  Stats::reset();
  Stats::local().nvm_dimm_write_bytes[1] += 1000;
  ScopedStatsDelta d;
  Stats::local().nvm_dimm_write_bytes[1] += 64;
  Stats::local().nvm_dimm_queue_depth[1] += 2;
  const StatsSnapshot s = d.delta();
  EXPECT_EQ(s.nvm_dimm_write_bytes[1], 64u);
  EXPECT_EQ(s.nvm_dimm_queue_depth[1], 2u);
}

TEST(Stats, ResetSwapsBaselineWithoutTouchingBlocks) {
  Stats::reset();
  Stats::local().nvm_read_blocks += 10;
  EXPECT_EQ(Stats::snapshot().nvm_read_blocks, 10u);
  Stats::reset();
  EXPECT_EQ(Stats::snapshot().nvm_read_blocks, 0u);
  // Counting continues from the new baseline.
  Stats::local().nvm_read_blocks += 4;
  EXPECT_EQ(Stats::snapshot().nvm_read_blocks, 4u);
  // The raw per-thread block kept growing (reset never wrote to it):
  // a second reset + increment still yields exact deltas.
  Stats::reset();
  Stats::local().nvm_read_blocks += 2;
  EXPECT_EQ(Stats::snapshot().nvm_read_blocks, 2u);
}

TEST(Stats, ResetIsSafeWhileOtherThreadsCount) {
  Stats::reset();
  std::atomic<bool> stop{false};
  std::thread counter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      Stats::local().lock_waits += 1;
    }
  });
  for (int i = 0; i < 100; ++i) Stats::reset();
  stop.store(true);
  counter.join();
  // No crash/corruption; the post-join snapshot only covers what accrued
  // after the last reset, so it is far below the thread's raw total.
  Stats::reset();
  EXPECT_EQ(Stats::snapshot().lock_waits, 0u);
}

TEST(ScopedStatsDelta, DeltaCoversOnlyTheScope) {
  Stats::local().dram_hot_hits += 100;  // pre-existing traffic
  ScopedStatsDelta d;
  Stats::local().dram_hot_hits += 7;
  Stats::local().nvm_write_lines += 3;
  const StatsSnapshot used = d.delta();
  EXPECT_EQ(used.dram_hot_hits, 7u);
  EXPECT_EQ(used.nvm_write_lines, 3u);
  EXPECT_EQ(used.nvm_read_ops, 0u);
}

TEST(ScopedStatsDelta, RebaseStartsANewPhase) {
  ScopedStatsDelta d;
  Stats::local().fences += 5;
  EXPECT_EQ(d.delta().fences, 5u);
  d.rebase();
  EXPECT_EQ(d.delta().fences, 0u);
  Stats::local().fences += 2;
  EXPECT_EQ(d.delta().fences, 2u);
}

TEST(ScopedStatsDelta, SeesOtherThreadsWork) {
  ScopedStatsDelta d;
  std::thread([] { Stats::local().nvm_prefetch_issued += 9; }).join();
  EXPECT_EQ(d.delta().nvm_prefetch_issued, 9u);
}

}  // namespace
}  // namespace hdnh::nvm
