// FaultPlan unit tests: event counting, kind/scope masks, address-range
// filtering, exact-index crash firing, fire-once, and determinism.
#include <gtest/gtest.h>

#include "nvm/fault.h"
#include "nvm/pmem.h"

namespace hdnh::nvm {
namespace {

TEST(FaultPlanTest, CountsPersistAndFenceEvents) {
  PmemPool pool(1 << 20);
  char* p = pool.to_ptr<char>(4096);
  FaultPlan plan;  // crash_at = kNever: probe mode
  pool.set_fault_plan(&plan);
  p[0] = 1;
  pool.persist(p, 64);        // event 0
  pool.fence();               // event 1
  pool.persist_fence(p, 64);  // events 2 (persist) + 3 (fence)
  pool.set_fault_plan(nullptr);
  EXPECT_EQ(plan.events(), 4u);
  pool.persist_fence(p, 64);  // disarmed: not counted
  EXPECT_EQ(plan.events(), 4u);
}

TEST(FaultPlanTest, MaskSelectsMechanicalKinds) {
  PmemPool pool(1 << 20);
  char* p = pool.to_ptr<char>(4096);
  FaultPlan plan;
  plan.mask = kFaultFence;
  pool.set_fault_plan(&plan);
  pool.persist(p, 64);  // persist: filtered out
  pool.fence();         // counted
  pool.fence();         // counted
  pool.set_fault_plan(nullptr);
  EXPECT_EQ(plan.events(), 2u);
}

TEST(FaultPlanTest, ScopeBitsTagEvents) {
  PmemPool pool(1 << 20);
  char* p = pool.to_ptr<char>(4096);
  FaultPlan plan;
  plan.mask = kFaultRehash;  // only events inside a rehash scope
  pool.set_fault_plan(&plan);
  pool.persist_fence(p, 64);  // untagged: filtered
  {
    FaultScope tag(kFaultRehash);
    pool.persist_fence(p, 64);  // 2 events
    {
      // Nested scopes OR together; the outer bit still matches.
      FaultScope inner(kFaultAllocCommit);
      pool.persist(p, 64);  // 1 event
    }
  }
  pool.persist_fence(p, 64);  // scope closed: filtered
  pool.set_fault_plan(nullptr);
  EXPECT_EQ(plan.events(), 3u);
}

TEST(FaultPlanTest, RangeFilterMatchesOverlappingPersistsOnly) {
  PmemPool pool(1 << 20);
  FaultPlan plan;
  plan.range_off = 4096;
  plan.range_len = 64;
  pool.set_fault_plan(&plan);
  pool.persist(pool.to_ptr<char>(4096), 64);  // inside: counted
  pool.persist(pool.to_ptr<char>(4064), 64);  // straddles the start: counted
  pool.persist(pool.to_ptr<char>(8192), 64);  // outside: filtered
  pool.persist(pool.to_ptr<char>(4160), 64);  // just past the end: filtered
  pool.fence();  // fences carry no address: filtered under a range
  pool.set_fault_plan(nullptr);
  EXPECT_EQ(plan.events(), 2u);
}

TEST(FaultPlanTest, CrashFiresAtExactIndexBeforeReachingMedia) {
  PmemPool pool(1 << 20);
  pool.enable_crash_sim();
  char* p = pool.to_ptr<char>(4096);
  p[0] = 1;
  pool.persist_fence(p, 64);  // durable baseline, plan not yet armed

  FaultPlan plan;
  plan.crash_at = 2;
  pool.set_fault_plan(&plan);
  p[0] = 2;
  pool.persist(p, 64);  // event 0: reaches media
  pool.fence();         // event 1
  p[0] = 3;
  // Event 2 fires at the ENTRY of persist(): the write must NOT reach media.
  EXPECT_THROW(pool.persist(p, 64), InjectedCrash);
  EXPECT_TRUE(plan.fired.load());
  // simulate_crash() already rolled the pool back to the media image.
  EXPECT_EQ(p[0], 2);

  // The plan fires exactly once: further events count but never re-crash.
  p[0] = 4;
  EXPECT_NO_THROW(pool.persist_fence(p, 64));
  pool.set_fault_plan(nullptr);
  EXPECT_EQ(plan.events(), 5u);
}

TEST(FaultPlanTest, ProbeThenSweepCountsAgree) {
  auto workload = [](PmemPool& pool) {
    char* p = pool.to_ptr<char>(8192);
    for (int i = 0; i < 7; ++i) {
      p[i] = static_cast<char>(i);
      pool.persist_fence(&p[i], 1);
    }
  };
  uint64_t probe_count;
  {
    PmemPool pool(1 << 20);
    FaultPlan plan;
    pool.set_fault_plan(&plan);
    workload(pool);
    pool.set_fault_plan(nullptr);
    probe_count = plan.events();
  }
  EXPECT_EQ(probe_count, 14u);
  // Every index below the probe count crashes; the index at the count does
  // not (determinism of the event stream across runs).
  for (uint64_t k : {uint64_t{0}, probe_count - 1, probe_count}) {
    PmemPool pool(1 << 20);
    pool.enable_crash_sim();
    FaultPlan plan;
    plan.crash_at = k;
    pool.set_fault_plan(&plan);
    bool crashed = false;
    try {
      workload(pool);
    } catch (const InjectedCrash&) {
      crashed = true;
    }
    pool.set_fault_plan(nullptr);
    EXPECT_EQ(crashed, k < probe_count) << "k=" << k;
  }
}

TEST(FaultPlanTest, PeriodicEvictionBurstsAreLegalWritebacks) {
  PmemPool pool(1 << 20);
  pool.enable_crash_sim();
  char* p = pool.to_ptr<char>(4096);
  p[0] = 7;
  pool.persist_fence(p, 64);

  FaultPlan plan;
  plan.evict_every = 2;
  plan.evict_lines = 16;
  plan.seed = 42;
  pool.set_fault_plan(&plan);
  char* q = pool.to_ptr<char>(16384);
  for (int i = 0; i < 10; ++i) {
    q[i] = static_cast<char>(i);
    pool.persist_fence(&q[i], 1);
  }
  pool.set_fault_plan(nullptr);
  EXPECT_EQ(plan.events(), 20u);
  // Spontaneous evictions only push already-written lines to media; a
  // simulated crash afterwards must still land on a legal state.
  pool.simulate_crash();
  EXPECT_EQ(p[0], 7);
}

}  // namespace
}  // namespace hdnh::nvm
