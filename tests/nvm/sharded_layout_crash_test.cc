// Crash-point sweep of the ShardedPmemLayout carve (the root-slot-last
// protocol): at EVERY durability event of a fresh carve, a crash must leave
// the pool in one of exactly two recoverable states — a complete shard map
// (root slot set, magic valid, every region's allocator header intact) or
// no shard map at all (root slot still empty; the next construction
// re-formats and the partial carve leaks, which is the documented
// crash-leak semantics). A half-published map is never observable.
#include <gtest/gtest.h>

#include "nvm/alloc.h"
#include "nvm/fault.h"
#include "nvm/pmem.h"
#include "nvm/sharded_layout.h"

namespace hdnh::nvm {
namespace {

constexpr uint64_t kPoolBytes = 16ull << 20;
constexpr uint32_t kShards = 4;
constexpr uint64_t kBytesPerShard = 256 * 1024;

TEST(ShardedLayoutCrashTest, RootSlotLastHoldsAtEveryCrashPoint) {
  // Probe: count the carve's durability events.
  uint64_t events;
  {
    PmemPool pool(kPoolBytes);
    PmemAllocator parent(pool);
    FaultPlan plan;
    pool.set_fault_plan(&plan);
    ShardedPmemLayout layout(parent, kShards, kBytesPerShard);
    pool.set_fault_plan(nullptr);
    events = plan.events();
  }
  ASSERT_GT(events, 10u);

  for (uint64_t k = 0; k < events; ++k) {
    SCOPED_TRACE("event_index=" + std::to_string(k));
    PmemPool pool(kPoolBytes);
    pool.enable_crash_sim();
    {
      PmemAllocator parent(pool);  // formatted before the plan is armed
      FaultPlan plan;
      plan.crash_at = k;
      pool.set_fault_plan(&plan);
      bool crashed = false;
      try {
        ShardedPmemLayout layout(parent, kShards, kBytesPerShard);
      } catch (const InjectedCrash&) {
        crashed = true;
      }
      pool.set_fault_plan(nullptr);
      ASSERT_TRUE(crashed);
    }

    // Post-crash: a fresh parent allocator over the rolled-back image.
    PmemAllocator parent(pool);
    ASSERT_TRUE(parent.attached_existing());
    const bool present = ShardedPmemLayout::present(parent);

    // Either way, constructing the layout again must succeed: attach to the
    // complete persisted carve, or re-format from scratch.
    ShardedPmemLayout layout(parent, kShards, kBytesPerShard);
    EXPECT_EQ(layout.attached_existing(), present);
    ASSERT_EQ(layout.shards(), kShards);
    for (uint32_t s = 0; s < kShards; ++s) {
      // Every shard region must be a fully usable allocation domain. On the
      // attach path the regions must carry their persisted headers; on the
      // re-format path they are freshly formatted (the partial carve leaks).
      if (present) EXPECT_TRUE(layout.shard_alloc(s).attached_existing());
      EXPECT_GE(layout.shard_bytes(s), kBytesPerShard);
      EXPECT_NO_THROW((void)layout.shard_alloc(s).alloc(256));
    }
  }
}

}  // namespace
}  // namespace hdnh::nvm
