#include "nvm/sharded_layout.h"

#include <gtest/gtest.h>

#include <new>

#include "nvm/pmem.h"

namespace hdnh::nvm {
namespace {

TEST(ShardedLayout, CarvesDisjointRegions) {
  PmemPool pool(64ull << 20);
  PmemAllocator parent(pool);
  ShardedPmemLayout layout(parent, 4);
  ASSERT_EQ(layout.shards(), 4u);
  EXPECT_FALSE(layout.attached_existing());

  for (uint32_t s = 0; s < 4; ++s) {
    const uint64_t off = layout.shard_off(s);
    const uint64_t bytes = layout.shard_bytes(s);
    EXPECT_EQ(off % kNvmBlock, 0u) << s;
    EXPECT_GT(bytes, 0u) << s;
    EXPECT_LE(off + bytes, pool.size()) << s;
    for (uint32_t t = s + 1; t < 4; ++t) {
      const bool disjoint = off + bytes <= layout.shard_off(t) ||
                            layout.shard_off(t) + layout.shard_bytes(t) <= off;
      EXPECT_TRUE(disjoint) << s << " vs " << t;
    }
  }
}

TEST(ShardedLayout, ShardAllocatorsAreIndependent) {
  PmemPool pool(32ull << 20);
  PmemAllocator parent(pool);
  ShardedPmemLayout layout(parent, 2);

  // Each shard has its own root directory.
  layout.shard_alloc(0).set_root(0, 1234, 8);
  EXPECT_EQ(layout.shard_alloc(0).root(0), 1234u);
  EXPECT_EQ(layout.shard_alloc(1).root(0), 0u);

  // Offsets handed out are absolute and stay inside the shard's region.
  const uint64_t off = layout.shard_alloc(1).alloc(kNvmBlock);
  EXPECT_GE(off, layout.shard_off(1));
  EXPECT_LT(off, layout.shard_off(1) + layout.shard_bytes(1));
}

TEST(ShardedLayout, ExhaustingOneShardThrowsWithoutTouchingOthers) {
  PmemPool pool(16ull << 20);
  PmemAllocator parent(pool);
  ShardedPmemLayout layout(parent, 4);

  auto& a0 = layout.shard_alloc(0);
  EXPECT_THROW(
      {
        for (;;) a0.alloc(1 << 20);
      },
      std::bad_alloc);
  // Shard 3 still has its full region available.
  EXPECT_NO_THROW(layout.shard_alloc(3).alloc(1 << 20));
}

TEST(ShardedLayout, AttachRestoresPersistedCarve) {
  PmemPool pool(32ull << 20);
  uint64_t offs[3];
  {
    PmemAllocator parent(pool);
    ShardedPmemLayout layout(parent, 3);
    for (uint32_t s = 0; s < 3; ++s) {
      offs[s] = layout.shard_off(s);
      layout.shard_alloc(s).set_root(0, 100 + s, 8);
    }
  }
  // Fresh allocator objects over the same pool: persisted carve wins, even
  // when the caller asks for a different shard count.
  PmemAllocator parent(pool);
  ASSERT_TRUE(parent.attached_existing());
  ASSERT_TRUE(ShardedPmemLayout::present(parent));
  ShardedPmemLayout layout(parent, 8);
  EXPECT_TRUE(layout.attached_existing());
  ASSERT_EQ(layout.shards(), 3u);
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(layout.shard_off(s), offs[s]) << s;
    EXPECT_EQ(layout.shard_alloc(s).root(0), 100 + s) << s;
  }
}

TEST(ShardedLayout, RejectsBadShardCounts) {
  PmemPool pool(16ull << 20);
  PmemAllocator parent(pool);
  EXPECT_THROW(ShardedPmemLayout(parent, 0), std::invalid_argument);
  EXPECT_THROW(ShardedPmemLayout(parent, ShardMapSuper::kMaxShards + 1),
               std::invalid_argument);
}

TEST(ShardedLayout, OverheadHintCoversMetadata) {
  // A pool sized as N * region + overhead must successfully carve regions
  // of at least `region` bytes each.
  const uint64_t region = 4ull << 20;
  for (uint32_t shards : {1u, 8u, 64u}) {
    const uint64_t bytes = shards * region +
                           ShardedPmemLayout::overhead_bytes(shards) +
                           PmemAllocator::header_bytes();
    PmemPool pool(bytes);
    PmemAllocator parent(pool);
    ShardedPmemLayout layout(parent, shards);
    for (uint32_t s = 0; s < shards; ++s) {
      EXPECT_GE(layout.shard_bytes(s), region - kNvmBlock) << shards;
    }
  }
}

TEST(RegionAllocator, WholePoolBehaviourUnchanged) {
  PmemPool pool(8ull << 20);
  PmemAllocator alloc(pool);
  EXPECT_EQ(alloc.region_off(), 0u);
  EXPECT_EQ(alloc.region_bytes(), pool.size());
  const uint64_t before = alloc.remaining();
  alloc.alloc(kNvmBlock);
  EXPECT_EQ(alloc.remaining(), before - kNvmBlock);
}

TEST(RegionAllocator, RejectsMisalignedOrOversizedRegions) {
  PmemPool pool(8ull << 20);
  EXPECT_THROW(PmemAllocator(pool, 100, 1 << 20), std::invalid_argument);
  EXPECT_THROW(PmemAllocator(pool, 0, pool.size() + kNvmBlock),
               std::invalid_argument);
}

}  // namespace
}  // namespace hdnh::nvm
