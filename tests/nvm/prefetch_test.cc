// The read-ahead window of the emulated device (PmemPool::prefetch_block):
// counter semantics of the overlapped/stalled latency split, and the
// invariant that prefetching never changes read traffic.
#include <gtest/gtest.h>

#include "nvm/pmem.h"
#include "nvm/stats.h"

namespace hdnh::nvm {
namespace {

// The prefetch window is per-thread and keyed by absolute block address, so
// entries left over from earlier tests (whose pools may have been mapped at
// a now-reused address) could skew the overlapped/stalled split. Flush the
// window by prefetching one fresh block of our own pool per direct-mapped
// slot and consuming them.
void drain_window(PmemPool& pool) {
  const uint64_t blocks = pool.size() / kNvmBlock;
  ASSERT_GE(blocks, kPrefetchWindowBlocks);
  for (uint64_t b = 0; b < kPrefetchWindowBlocks; ++b)
    pool.prefetch_block(pool.base() + b * kNvmBlock, 1);
  for (uint64_t b = 0; b < kPrefetchWindowBlocks; ++b)
    pool.on_read(pool.base() + b * kNvmBlock, 1);
}

TEST(PmemPrefetch, OverlappedVsStalledAccounting) {
  PmemPool pool(1 << 20);
  drain_window(pool);
  char* p = pool.base() + 100 * kNvmBlock;

  // Cold read: full stall, normal traffic.
  Stats::reset();
  pool.on_read(p, 1);
  StatsSnapshot s = Stats::snapshot();
  EXPECT_EQ(s.nvm_read_ops, 1u);
  EXPECT_EQ(s.nvm_read_blocks, 1u);
  EXPECT_EQ(s.nvm_read_blocks_stalled, 1u);
  EXPECT_EQ(s.nvm_read_blocks_overlapped, 0u);

  // Prefetch alone: no traffic, only the issue counter.
  Stats::reset();
  pool.prefetch_block(p, 1);
  s = Stats::snapshot();
  EXPECT_EQ(s.nvm_prefetch_issued, 1u);
  EXPECT_EQ(s.nvm_read_ops, 0u);
  EXPECT_EQ(s.nvm_read_blocks, 0u);
  EXPECT_EQ(s.nvm_read_blocks_stalled, 0u);
  EXPECT_EQ(s.nvm_read_blocks_overlapped, 0u);

  // The read riding that prefetch: same traffic, classified overlapped.
  Stats::reset();
  pool.on_read(p, 1);
  s = Stats::snapshot();
  EXPECT_EQ(s.nvm_read_ops, 1u);
  EXPECT_EQ(s.nvm_read_blocks, 1u);
  EXPECT_EQ(s.nvm_read_blocks_overlapped, 1u);
  EXPECT_EQ(s.nvm_read_blocks_stalled, 0u);

  // The prefetch was consumed: a re-read stalls again.
  Stats::reset();
  pool.on_read(p, 1);
  s = Stats::snapshot();
  EXPECT_EQ(s.nvm_read_blocks_overlapped, 0u);
  EXPECT_EQ(s.nvm_read_blocks_stalled, 1u);
}

TEST(PmemPrefetch, MultiBlockSpansAndDedup) {
  PmemPool pool(1 << 20);
  drain_window(pool);
  char* p = pool.base() + 200 * kNvmBlock;

  // A 3-block span prefetched twice: 6 issues, but one window entry per
  // block — the later read overlaps each block exactly once.
  Stats::reset();
  pool.prefetch_block(p, 3 * kNvmBlock);
  pool.prefetch_block(p, 3 * kNvmBlock);
  StatsSnapshot s = Stats::snapshot();
  EXPECT_EQ(s.nvm_prefetch_issued, 6u);

  Stats::reset();
  pool.on_read(p, 3 * kNvmBlock);
  s = Stats::snapshot();
  EXPECT_EQ(s.nvm_read_blocks, 3u);
  EXPECT_EQ(s.nvm_read_blocks_overlapped, 3u);
  EXPECT_EQ(s.nvm_read_blocks_stalled, 0u);

  // Partial coverage: prefetch one block, read two — one of each class.
  Stats::reset();
  pool.prefetch_block(p, 1);
  pool.on_read(p, 2 * kNvmBlock);
  s = Stats::snapshot();
  EXPECT_EQ(s.nvm_read_blocks, 2u);
  EXPECT_EQ(s.nvm_read_blocks_overlapped, 1u);
  EXPECT_EQ(s.nvm_read_blocks_stalled, 1u);
}

TEST(PmemPrefetch, WindowIsBounded) {
  PmemPool pool(64 << 20);
  drain_window(pool);
  // Issue kCap+16 distinct block prefetches: the direct-mapped window keeps
  // only the last occupant of each slot, so for a sequential run the first
  // 16 blocks are evicted and stall when read back.
  const uint64_t kN = kPrefetchWindowBlocks + 16;
  Stats::reset();
  for (uint64_t b = 0; b < kN; ++b)
    pool.prefetch_block(pool.base() + b * kNvmBlock, 1);
  for (uint64_t b = 0; b < kN; ++b)
    pool.on_read(pool.base() + b * kNvmBlock, 1);
  const StatsSnapshot s = Stats::snapshot();
  EXPECT_EQ(s.nvm_read_blocks, kN);
  EXPECT_EQ(s.nvm_read_blocks_overlapped, kPrefetchWindowBlocks);
  EXPECT_EQ(s.nvm_read_blocks_stalled, 16u);
}

// With emulation on, a window of prefetched blocks costs roughly one block
// latency instead of K: issue K reads-ahead, then consume them — the spins
// only cover each block's residual, which a serial loop pays in full.
TEST(PmemPrefetch, OverlappedWindowIsCheaperThanSerial) {
  NvmConfig cfg;
  cfg.emulate_latency = true;
  cfg.read_ns_per_block = 20000;  // big enough to dominate test noise
  PmemPool pool(1 << 20, cfg);
  drain_window(pool);
  constexpr uint64_t kK = 16;

  const uint64_t serial_t0 = now_ns();
  for (uint64_t b = 0; b < kK; ++b)
    pool.on_read(pool.base() + (300 + b) * kNvmBlock, 1);
  const uint64_t serial_ns = now_ns() - serial_t0;

  const uint64_t piped_t0 = now_ns();
  for (uint64_t b = 0; b < kK; ++b)
    pool.prefetch_block(pool.base() + (400 + b) * kNvmBlock, 1);
  for (uint64_t b = 0; b < kK; ++b)
    pool.on_read(pool.base() + (400 + b) * kNvmBlock, 1);
  const uint64_t piped_ns = now_ns() - piped_t0;

  // Serial pays K full block latencies; the pipelined window pays ~1 plus
  // bookkeeping. Require a conservative 3x to keep the test robust.
  EXPECT_LT(piped_ns * 3, serial_ns)
      << "serial " << serial_ns << "ns, pipelined " << piped_ns << "ns";
}

}  // namespace
}  // namespace hdnh::nvm
