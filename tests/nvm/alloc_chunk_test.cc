// Chunked (per-thread) allocation mode of PmemAllocator: claim protocol,
// persist-free small-alloc hot path, whole-chunk requests, shared-path
// fallbacks, DIMM-affine claiming, exact chunk-table rebuild on attach,
// and crash safety of the claim persist itself.
#include "nvm/alloc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "nvm/fault.h"
#include "nvm/stats.h"

namespace hdnh::nvm {
namespace {

PmemAllocator::ChunkConfig tiny_chunks(uint64_t chunk_bytes = 64 * 1024) {
  PmemAllocator::ChunkConfig cc;
  cc.chunk_bytes = chunk_bytes;
  return cc;
}

TEST(ChunkedAlloc, FormatPublishesTableAndStats) {
  PmemPool pool(16 << 20);
  PmemAllocator a(pool);
  EXPECT_FALSE(a.chunked());
  PmemAllocator::ChunkStats cs;
  EXPECT_FALSE(a.chunk_stats(&cs));

  a.enable_chunked(tiny_chunks());
  EXPECT_TRUE(a.chunked());
  ASSERT_TRUE(a.chunk_stats(&cs));
  EXPECT_EQ(cs.chunk_bytes, 64u * 1024);
  EXPECT_GT(cs.chunk_count, 100u);  // most of a 16 MiB pool
  EXPECT_EQ(cs.claimed, 0u);
  EXPECT_EQ(cs.small_max, 64u * 1024 / 8);
  EXPECT_EQ(cs.arena_off % cs.chunk_bytes, 0u);
  EXPECT_EQ(a.root(PmemAllocator::kChunkTableRoot), cs.table_off);
  // Enabling again is a no-op, not a re-format.
  a.enable_chunked(tiny_chunks(128 * 1024));
  ASSERT_TRUE(a.chunk_stats(&cs));
  EXPECT_EQ(cs.chunk_bytes, 64u * 1024);
}

TEST(ChunkedAlloc, RejectsBadGeometry) {
  PmemPool pool(16 << 20);
  PmemAllocator a(pool);
  EXPECT_THROW(a.enable_chunked(tiny_chunks(3000)), std::invalid_argument);
  EXPECT_THROW(a.enable_chunked(tiny_chunks(1024)), std::invalid_argument);
  EXPECT_FALSE(a.chunked());
}

TEST(ChunkedAlloc, SmallAllocsBumpWithoutPersists) {
  PmemPool pool(16 << 20);
  PmemAllocator a(pool);
  a.enable_chunked(tiny_chunks());

  Stats::reset();
  // First small alloc claims a chunk: exactly one persisted table entry.
  const uint64_t first = a.alloc(4096, 64);
  ASSERT_NE(first, 0u);
  const StatsSnapshot after_claim = Stats::snapshot();
  EXPECT_EQ(after_claim.alloc_chunks_claimed, 1u);
  EXPECT_GT(after_claim.nvm_write_lines, 0u);

  // Subsequent bump allocations persist NOTHING — that is the point of the
  // chunked hot path (the shared path persists its bump every call).
  ScopedStatsDelta d;
  std::set<uint64_t> offs;
  uint64_t bumped = 0;
  for (int i = 0; i < 8; ++i) {
    const uint64_t off = a.alloc(1024, 64);
    EXPECT_TRUE(offs.insert(off).second);
    bumped += 1024;
  }
  const StatsSnapshot hot = d.delta();
  EXPECT_EQ(hot.nvm_write_lines, 0u);
  EXPECT_EQ(hot.fences, 0u);
  EXPECT_EQ(hot.alloc_chunks_claimed, 0u);
  EXPECT_GE(hot.alloc_chunk_bytes, bumped);

  // All offsets land inside the claimed chunk's [start, end) range.
  PmemAllocator::ChunkStats cs;
  ASSERT_TRUE(a.chunk_stats(&cs));
  EXPECT_EQ(cs.claimed, 1u);
  for (const uint64_t off : offs) {
    EXPECT_GE(off, cs.arena_off);
    EXPECT_LT(off, cs.arena_off + cs.chunk_count * cs.chunk_bytes);
  }
}

TEST(ChunkedAlloc, WholeChunkClaimFreeReclaim) {
  PmemPool pool(16 << 20);
  PmemAllocator a(pool);
  a.enable_chunked(tiny_chunks());
  PmemAllocator::ChunkStats cs;

  // A chunk-sized request takes a whole chunk, chunk-aligned in the arena.
  const uint64_t off = a.alloc(64 * 1024, 64 * 1024);
  ASSERT_TRUE(a.chunk_stats(&cs));
  EXPECT_EQ(cs.claimed, 1u);
  EXPECT_GE(off, cs.arena_off);
  EXPECT_EQ((off - cs.arena_off) % cs.chunk_bytes, 0u);

  // free_block returns it to the *persisted* chunk table (not the volatile
  // free list): the table entry reverts to free and the chunk is claimable
  // again. The claim scan rotates, so reuse is eventual, not LIFO.
  a.free_block(off, 64 * 1024);
  ASSERT_TRUE(a.chunk_stats(&cs));
  EXPECT_EQ(cs.claimed, 0u);
  EXPECT_FALSE(a.chunk_claimed((off - cs.arena_off) / cs.chunk_bytes));
  bool reclaimed = false;
  for (uint64_t i = 0; i <= cs.chunk_count && !reclaimed; ++i) {
    reclaimed = a.alloc(64 * 1024, 64 * 1024) == off;
  }
  EXPECT_TRUE(reclaimed);
}

TEST(ChunkedAlloc, MidSizeAndOversizeFallBackToSharedPath) {
  PmemPool pool(16 << 20);
  PmemAllocator a(pool);
  a.enable_chunked(tiny_chunks());
  PmemAllocator::ChunkStats cs;
  ASSERT_TRUE(a.chunk_stats(&cs));

  Stats::reset();
  // (small_max, chunk_bytes/2]: too big to bump, too small to justify a
  // whole chunk — shared path.
  const uint64_t mid = a.alloc(16 * 1024);
  // > chunk_bytes: cannot fit any chunk — shared path.
  const uint64_t big = a.alloc(256 * 1024);
  EXPECT_NE(mid, 0u);
  EXPECT_NE(big, 0u);
  EXPECT_EQ(Stats::snapshot().alloc_shared_fallbacks, 2u);
  ASSERT_TRUE(a.chunk_stats(&cs));
  EXPECT_EQ(cs.claimed, 0u);
  // Shared-path blocks never land inside the chunk arena.
  const uint64_t arena_end = cs.arena_off + cs.chunk_count * cs.chunk_bytes;
  EXPECT_TRUE(mid < cs.arena_off || mid >= arena_end);
  EXPECT_TRUE(big < cs.arena_off || big >= arena_end);
}

TEST(ChunkedAlloc, AttachRebuildsClaimStateExactly) {
  PmemPool pool(16 << 20);
  std::set<uint64_t> claimed_before;
  uint64_t count = 0, cb = 0, arena = 0;
  {
    PmemAllocator a(pool);
    a.enable_chunked(tiny_chunks());
    a.alloc(4096, 64);                    // bump chunk for this thread
    const uint64_t whole = a.alloc(64 * 1024, 64 * 1024);
    (void)whole;
    PmemAllocator::ChunkStats cs;
    ASSERT_TRUE(a.chunk_stats(&cs));
    EXPECT_EQ(cs.claimed, 2u);
    count = cs.chunk_count;
    cb = cs.chunk_bytes;
    arena = cs.arena_off;
    for (uint64_t i = 0; i < count; ++i) {
      if (a.chunk_claimed(i)) claimed_before.insert(i);
    }
  }

  // Fresh allocator: attach re-enters chunked mode automatically and the
  // rebuilt claim state matches the persisted table bit-for-bit.
  PmemAllocator b(pool);
  EXPECT_TRUE(b.attached_existing());
  EXPECT_TRUE(b.chunked());
  PmemAllocator::ChunkStats cs;
  ASSERT_TRUE(b.chunk_stats(&cs));
  EXPECT_EQ(cs.chunk_count, count);
  EXPECT_EQ(cs.chunk_bytes, cb);
  EXPECT_EQ(cs.arena_off, arena);
  EXPECT_EQ(cs.claimed, claimed_before.size());
  for (uint64_t i = 0; i < count; ++i) {
    EXPECT_EQ(b.chunk_claimed(i), claimed_before.count(i) == 1) << i;
  }

  // New claims after attach never re-hand space the old instance consumed.
  const uint64_t fresh = b.alloc(64 * 1024, 64 * 1024);
  const uint64_t fresh_idx = (fresh - arena) / cb;
  EXPECT_EQ(claimed_before.count(fresh_idx), 0u);
}

TEST(ChunkedAlloc, CrashAtClaimPersistLeavesChunkFree) {
  PmemPool pool(16 << 20);
  pool.enable_crash_sim();
  PmemAllocator a(pool);
  a.enable_chunked(tiny_chunks());

  // Crash exactly at the chunk-claim persist: the claim has not reached
  // media, nothing references the chunk, so after reattach it must be free
  // again — claimed-but-unreferenced leaks only happen at later points.
  FaultPlan plan;
  plan.crash_at = 0;
  plan.mask = kFaultAllocChunk;
  pool.set_fault_plan(&plan);
  EXPECT_THROW(a.alloc(4096, 64), InjectedCrash);
  pool.set_fault_plan(nullptr);

  PmemAllocator b(pool);
  EXPECT_TRUE(b.chunked());
  PmemAllocator::ChunkStats cs;
  ASSERT_TRUE(b.chunk_stats(&cs));
  EXPECT_EQ(cs.claimed, 0u);
  EXPECT_NE(b.alloc(4096, 64), 0u);
}

TEST(ChunkedAlloc, DimmAffineClaiming) {
  NvmConfig cfg;
  cfg.dimm.dimms = 4;
  cfg.dimm.interleave_bytes = 1 << 20;
  PmemPool pool(64 << 20, cfg);
  PmemAllocator a(pool);
  a.enable_chunked(tiny_chunks(256 * 1024));
  PmemAllocator::ChunkStats cs;
  ASSERT_TRUE(a.chunk_stats(&cs));
  EXPECT_EQ(cs.dimms, 4u);
  EXPECT_EQ(cs.interleave_bytes, 1u << 20);

  // One thread = one home DIMM. Exhaust several bump chunks; every chunk
  // this thread claims must sit on its home DIMM while that DIMM still has
  // free chunks (pass-0 affinity before the anything-goes pass).
  for (int i = 0; i < 3 * 8; ++i) a.alloc(32 * 1024, 64);  // 3 chunks' worth
  ASSERT_TRUE(a.chunk_stats(&cs));
  EXPECT_GE(cs.claimed, 3u);
  uint32_t home = UINT32_MAX;
  for (uint64_t i = 0; i < cs.chunk_count; ++i) {
    if (!a.chunk_claimed(i)) continue;
    const uint32_t d = pool.dimm_of(cs.arena_off + i * cs.chunk_bytes);
    if (home == UINT32_MAX) home = d;
    EXPECT_EQ(d, home) << "chunk " << i << " strayed off the home DIMM";
  }
}

TEST(ChunkedAlloc, ExhaustedTableFallsBackAndRecovers) {
  PmemPool pool(4 << 20);
  PmemAllocator a(pool);
  PmemAllocator::ChunkConfig cc = tiny_chunks();
  cc.chunk_count = 2;
  cc.reserve_bytes = 1 << 20;
  a.enable_chunked(cc);

  const uint64_t c0 = a.alloc(64 * 1024, 64 * 1024);
  const uint64_t c1 = a.alloc(64 * 1024, 64 * 1024);
  ASSERT_NE(c0, 0u);
  ASSERT_NE(c1, 0u);
  Stats::reset();
  // Table empty: whole-chunk requests fall back to the shared path rather
  // than failing.
  EXPECT_NE(a.alloc(64 * 1024, 64 * 1024), 0u);
  EXPECT_EQ(Stats::snapshot().alloc_shared_fallbacks, 1u);
  // Returning a chunk makes the table serve again.
  a.free_block(c0, 64 * 1024);
  EXPECT_EQ(a.alloc(64 * 1024, 64 * 1024), c0);
}

TEST(ChunkedAlloc, ConcurrentClaimsDisjoint) {
  PmemPool pool(32 << 20);
  PmemAllocator a(pool);
  a.enable_chunked(tiny_chunks());

  // Hammer the bump path from several threads; every handed-out range must
  // be globally disjoint (chunks are CAS-claimed, interiors thread-owned).
  constexpr int kThreads = 4;
  constexpr int kAllocs = 200;
  constexpr uint64_t kSize = 2048;
  std::vector<std::vector<uint64_t>> got(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      got[t].reserve(kAllocs);
      for (int i = 0; i < kAllocs; ++i) got[t].push_back(a.alloc(kSize, 64));
    });
  }
  for (auto& th : ts) th.join();

  std::vector<uint64_t> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads) * kAllocs);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i], all[i - 1] + kSize) << "overlapping allocations";
  }
}

}  // namespace
}  // namespace hdnh::nvm
