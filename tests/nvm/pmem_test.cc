#include "nvm/pmem.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>

namespace hdnh::nvm {
namespace {

TEST(PmemPool, SizeRoundedToBlock) {
  PmemPool p(1000);
  EXPECT_EQ(p.size() % kNvmBlock, 0u);
  EXPECT_GE(p.size(), 1000u);
}

TEST(PmemPool, OffsetPointerRoundTrip) {
  PmemPool p(1 << 20);
  char* ptr = p.base() + 4096;
  EXPECT_EQ(p.to_off(ptr), 4096u);
  EXPECT_EQ(p.to_ptr<char>(4096), ptr);
  EXPECT_TRUE(p.contains(ptr));
  EXPECT_FALSE(p.contains(reinterpret_cast<char*>(&p)));
}

TEST(PmemPool, ReadAccountingBlockGranular) {
  PmemPool p(1 << 20);
  Stats::reset();
  // One byte still touches one 256 B block (AEP read amplification).
  p.on_read(p.base(), 1);
  auto s = Stats::snapshot();
  EXPECT_EQ(s.nvm_read_ops, 1u);
  EXPECT_EQ(s.nvm_read_blocks, 1u);

  // A read spanning a block boundary touches two blocks.
  Stats::reset();
  p.on_read(p.base() + kNvmBlock - 8, 16);
  s = Stats::snapshot();
  EXPECT_EQ(s.nvm_read_blocks, 2u);

  // 1 KiB aligned read = 4 blocks.
  Stats::reset();
  p.on_read(p.base(), 1024);
  EXPECT_EQ(Stats::snapshot().nvm_read_blocks, 4u);
}

TEST(PmemPool, PersistAccountingLineGranular) {
  PmemPool p(1 << 20);
  Stats::reset();
  p.persist(p.base(), 1);
  EXPECT_EQ(Stats::snapshot().nvm_write_lines, 1u);

  Stats::reset();
  p.persist(p.base() + kCacheLine - 2, 4);  // straddles a line boundary
  EXPECT_EQ(Stats::snapshot().nvm_write_lines, 2u);

  Stats::reset();
  p.persist(p.base(), 1024);
  EXPECT_EQ(Stats::snapshot().nvm_write_lines, 16u);
}

TEST(PmemPool, FenceCounted) {
  PmemPool p(1 << 20);
  Stats::reset();
  p.fence();
  p.fence();
  EXPECT_EQ(Stats::snapshot().fences, 2u);
}

TEST(PmemPool, LockRmwChargesLineWriteback) {
  PmemPool p(1 << 20);
  Stats::reset();
  p.on_lock_rmw(p.base());
  auto s = Stats::snapshot();
  EXPECT_EQ(s.nvm_read_blocks, 0u);  // lock word is cache-resident
  EXPECT_EQ(s.nvm_write_lines, 1u);  // but its writeback costs bandwidth
}

TEST(CrashSim, UnpersistedStoresAreLost) {
  PmemPool p(1 << 20);
  p.enable_crash_sim();
  int* a = p.to_ptr<int>(0);
  int* b = p.to_ptr<int>(512);
  *a = 111;
  *b = 222;
  p.persist_fence(a, sizeof(int));  // only `a` reaches media
  p.simulate_crash();
  EXPECT_EQ(*a, 111);
  EXPECT_EQ(*b, 0);  // never flushed: gone
}

TEST(CrashSim, PersistIsCachelineGranular) {
  PmemPool p(1 << 20);
  p.enable_crash_sim();
  char* line = p.base();
  line[0] = 'x';
  line[63] = 'y';   // same cacheline
  line[64] = 'z';   // next cacheline, never persisted
  p.persist_fence(line, 1);  // flushing byte 0 carries the whole line
  p.simulate_crash();
  EXPECT_EQ(line[0], 'x');
  EXPECT_EQ(line[63], 'y');
  EXPECT_EQ(line[64], '\0');
}

TEST(CrashSim, EnableSnapshotsCurrentContents) {
  PmemPool p(1 << 20);
  int* a = p.to_ptr<int>(128);
  *a = 42;  // written before tracking starts
  p.enable_crash_sim();
  *a = 43;  // not persisted
  p.simulate_crash();
  EXPECT_EQ(*a, 42);
}

TEST(CrashSim, RandomEvictionMayPersistDirtyLines) {
  PmemPool p(1 << 16);
  p.enable_crash_sim();
  // Dirty every line, evict all lines (n much larger than line count so the
  // random walk covers everything with overwhelming probability).
  for (uint64_t i = 0; i < p.size(); i += sizeof(uint64_t)) {
    *p.to_ptr<uint64_t>(i) = i + 1;
  }
  p.evict_random_lines(p.size() / kCacheLine * 64, 7);
  p.simulate_crash();
  uint64_t survived = 0;
  for (uint64_t i = 0; i < p.size(); i += sizeof(uint64_t)) {
    if (*p.to_ptr<uint64_t>(i) == i + 1) ++survived;
  }
  // Eviction is *allowed* to persist anything; with 64x oversampling nearly
  // everything lands.
  EXPECT_GT(survived, p.size() / sizeof(uint64_t) * 9 / 10);
}

TEST(CrashSim, SurvivesMultipleCrashes) {
  PmemPool p(1 << 20);
  p.enable_crash_sim();
  int* a = p.to_ptr<int>(0);
  *a = 1;
  p.persist_fence(a, sizeof(int));
  p.simulate_crash();
  EXPECT_EQ(*a, 1);
  *a = 2;  // not persisted
  p.simulate_crash();
  EXPECT_EQ(*a, 1);
  *a = 3;
  p.persist_fence(a, sizeof(int));
  p.simulate_crash();
  EXPECT_EQ(*a, 3);
}

TEST(FileBacked, ContentsSurviveRemap) {
  const std::string path = ::testing::TempDir() + "/pmem_test.pool";
  std::remove(path.c_str());
  {
    PmemPool p(1 << 16, NvmConfig{}, path);
    EXPECT_FALSE(p.recovered());
    *p.to_ptr<uint64_t>(64) = 0xDEADBEEF;
    p.persist_fence(p.to_ptr<uint64_t>(64), 8);
  }
  {
    PmemPool p(1 << 16, NvmConfig{}, path);
    EXPECT_TRUE(p.recovered());
    EXPECT_EQ(*p.to_ptr<uint64_t>(64), 0xDEADBEEFu);
  }
  std::remove(path.c_str());
}

TEST(LatencyModel, EmulationSlowsAccesses) {
  NvmConfig cfg;
  cfg.emulate_latency = true;
  cfg.read_ns_per_block = 20000;  // exaggerated for a robust timing test
  PmemPool p(1 << 20, cfg);
  const uint64_t t0 = now_ns();
  for (int i = 0; i < 100; ++i) p.on_read(p.base(), 1);
  const uint64_t elapsed = now_ns() - t0;
  EXPECT_GE(elapsed, 100ull * 20000 * 9 / 10);
}

TEST(LatencyModel, DisabledIsFast) {
  PmemPool p(1 << 20);  // emulate_latency defaults off
  const uint64_t t0 = now_ns();
  for (int i = 0; i < 100000; ++i) p.on_read(p.base(), 1);
  EXPECT_LT(now_ns() - t0, 1000ull * 1000 * 500);  // well under 0.5 s
}

TEST(Stats, PerThreadCountersAggregate) {
  PmemPool p(1 << 20);
  Stats::reset();
  std::thread t1([&] { p.on_read(p.base(), 1); });
  std::thread t2([&] { p.on_read(p.base(), 1); });
  t1.join();
  t2.join();
  p.on_read(p.base(), 1);
  EXPECT_EQ(Stats::snapshot().nvm_read_ops, 3u);
}

}  // namespace
}  // namespace hdnh::nvm
