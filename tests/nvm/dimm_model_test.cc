// Per-DIMM emulation model of PmemPool: offset→DIMM mapping (interleaved
// and sliced layouts), byte attribution against the flat traffic counters,
// token-bucket stalls under a bandwidth cap, and the D=1 / uncapped
// neutrality guarantees the CI smoke relies on.
#include <gtest/gtest.h>

#include <cstring>

#include "nvm/pmem.h"
#include "nvm/stats.h"

namespace hdnh::nvm {
namespace {

TEST(DimmModel, InterleavedMapping) {
  NvmConfig cfg;
  cfg.dimm.dimms = 4;
  cfg.dimm.interleave_bytes = 1 << 20;
  PmemPool pool(16 << 20, cfg);
  EXPECT_EQ(pool.dimm_count(), 4u);
  EXPECT_EQ(pool.dimm_of(0), 0u);
  EXPECT_EQ(pool.dimm_of((1 << 20) - 1), 0u);
  EXPECT_EQ(pool.dimm_of(1 << 20), 1u);
  EXPECT_EQ(pool.dimm_of(3ull << 20), 3u);
  EXPECT_EQ(pool.dimm_of(4ull << 20), 0u);  // stripe wraps
  EXPECT_EQ(pool.dimm_of((9ull << 20) + 123), 1u);
}

TEST(DimmModel, SlicedMapping) {
  NvmConfig cfg;
  cfg.dimm.dimms = 4;
  cfg.dimm.interleave_bytes = 0;  // dedicated per-DIMM slices
  PmemPool pool(16 << 20, cfg);
  const uint64_t slice = (16ull << 20) / 4;
  EXPECT_EQ(pool.dimm_of(0), 0u);
  EXPECT_EQ(pool.dimm_of(slice - 1), 0u);
  EXPECT_EQ(pool.dimm_of(slice), 1u);
  EXPECT_EQ(pool.dimm_of(3 * slice), 3u);
  // Tail clamps to the last DIMM instead of wrapping.
  EXPECT_EQ(pool.dimm_of((16ull << 20) - 1), 3u);
}

TEST(DimmModel, RejectsTooManyDimms) {
  NvmConfig cfg;
  cfg.dimm.dimms = kMaxDimms + 1;
  EXPECT_THROW(PmemPool(1 << 20, cfg), std::invalid_argument);
}

TEST(DimmModel, AttributionMatchesFlatTraffic) {
  NvmConfig cfg;
  cfg.dimm.dimms = 3;
  cfg.dimm.interleave_bytes = 4096;  // small stripes: persists straddle them
  PmemPool pool(4 << 20, cfg);

  Stats::reset();
  char buf[1024];
  std::memset(buf, 7, sizeof(buf));
  // Persists of assorted sizes and alignments, including stripe-straddling.
  for (uint64_t off = 100; off < (1 << 20); off += 37 * 1024) {
    std::memcpy(pool.to_ptr<char>(off), buf, sizeof(buf));
    pool.persist(pool.to_ptr<char>(off), sizeof(buf));
  }
  StatsSnapshot s = Stats::snapshot();
  uint64_t dimm_w = 0, active = 0;
  for (uint32_t d = 0; d < kMaxDimms; ++d) {
    dimm_w += s.nvm_dimm_write_bytes[d];
    active += s.nvm_dimm_write_bytes[d] != 0 ? 1 : 0;
  }
  // Every persisted line is attributed to exactly one DIMM: the per-DIMM
  // bytes sum to lines x 64, and the traffic actually spread out.
  EXPECT_EQ(dimm_w, s.nvm_write_lines * kCacheLine);
  EXPECT_EQ(active, 3u);

  // Same for reads, in 256 B block units.
  Stats::reset();
  for (uint64_t off = 0; off < (1 << 20); off += 53 * 1024) {
    pool.on_read(pool.to_ptr<char>(off), 700);
  }
  s = Stats::snapshot();
  uint64_t dimm_r = 0;
  for (uint32_t d = 0; d < kMaxDimms; ++d) dimm_r += s.nvm_dimm_read_bytes[d];
  EXPECT_EQ(dimm_r, s.nvm_read_blocks * kNvmBlock);
}

TEST(DimmModel, FlatPoolTouchesNoDimmCounters) {
  PmemPool pool(1 << 20);  // defaults: dimms = 1
  Stats::reset();
  char buf[256];
  std::memset(buf, 1, sizeof(buf));
  std::memcpy(pool.to_ptr<char>(0), buf, sizeof(buf));
  pool.persist(pool.to_ptr<char>(0), sizeof(buf));
  pool.on_read(pool.to_ptr<char>(4096), 256);
  const StatsSnapshot s = Stats::snapshot();
  EXPECT_GT(s.nvm_write_lines, 0u);
  EXPECT_GT(s.nvm_read_blocks, 0u);
  for (uint32_t d = 0; d < kMaxDimms; ++d) {
    EXPECT_EQ(s.nvm_dimm_write_bytes[d], 0u);
    EXPECT_EQ(s.nvm_dimm_read_bytes[d], 0u);
    EXPECT_EQ(s.nvm_dimm_write_stall_ns[d], 0u);
  }
}

TEST(DimmModel, UncappedNeverStalls) {
  NvmConfig cfg;
  cfg.emulate_latency = true;
  cfg.latency_scale = 0.01;  // keep the flat charges cheap
  cfg.dimm.dimms = 2;
  cfg.dimm.interleave_bytes = 4096;
  // write_mbps / read_mbps left 0: attribution only.
  PmemPool pool(1 << 20, cfg);
  Stats::reset();
  char buf[4096];
  std::memset(buf, 2, sizeof(buf));
  for (int i = 0; i < 16; ++i) {
    std::memcpy(pool.to_ptr<char>(i * 8192), buf, sizeof(buf));
    pool.persist(pool.to_ptr<char>(i * 8192), sizeof(buf));
  }
  const StatsSnapshot s = Stats::snapshot();
  uint64_t w = 0;
  for (uint32_t d = 0; d < kMaxDimms; ++d) {
    w += s.nvm_dimm_write_bytes[d];
    EXPECT_EQ(s.nvm_dimm_write_stall_ns[d], 0u);
    EXPECT_EQ(s.nvm_dimm_queue_depth[d], 0u);
  }
  EXPECT_GT(w, 0u);
}

TEST(DimmModel, CapConvertsOversubscriptionIntoStall) {
  NvmConfig cfg;
  cfg.emulate_latency = true;
  cfg.latency_scale = 1.0;
  cfg.write_ns_per_line = 0;  // isolate the bandwidth term
  cfg.fence_ns = 0;
  cfg.dimm.dimms = 2;
  cfg.dimm.interleave_bytes = 4096;
  cfg.dimm.write_mbps = 100;  // 100 B/us: 4 KiB costs ~41 us of service
  PmemPool pool(1 << 20, cfg);

  Stats::reset();
  char buf[4096];
  std::memset(buf, 3, sizeof(buf));
  // Back-to-back persists to the SAME stripe: demand far above 100 MB/s, so
  // the token bucket must push back. Every persist after the first finds
  // the bucket busy.
  for (int i = 0; i < 8; ++i) {
    std::memcpy(pool.to_ptr<char>(0), buf, sizeof(buf));
    pool.persist(pool.to_ptr<char>(0), sizeof(buf));
  }
  const StatsSnapshot s = Stats::snapshot();
  const uint32_t d0 = pool.dimm_of(0);
  EXPECT_GT(s.nvm_dimm_write_stall_ns[d0], 0u);
  EXPECT_GT(s.nvm_dimm_queue_depth[d0], 0u);
  // The other DIMM saw no traffic and no stalls.
  EXPECT_EQ(s.nvm_dimm_write_stall_ns[1 - d0], 0u);
}

}  // namespace
}  // namespace hdnh::nvm
