#include "nvm/alloc.h"

#include <gtest/gtest.h>

#include <new>
#include <set>
#include <thread>
#include <vector>

namespace hdnh::nvm {
namespace {

TEST(PmemAllocator, FormatsFreshPool) {
  PmemPool pool(1 << 20);
  PmemAllocator a(pool);
  EXPECT_FALSE(a.attached_existing());
  EXPECT_EQ(a.used(), 0u);
  for (int i = 0; i < PmemAllocator::kRoots; ++i) EXPECT_EQ(a.root(i), 0u);
}

TEST(PmemAllocator, AllocationsAlignedAndDisjoint) {
  PmemPool pool(4 << 20);
  PmemAllocator a(pool);
  std::set<uint64_t> offs;
  uint64_t prev_end = 0;
  for (int i = 0; i < 32; ++i) {
    const uint64_t off = a.alloc(1000);
    EXPECT_EQ(off % kNvmBlock, 0u);
    EXPECT_GE(off, prev_end);
    prev_end = off + 1024;
    EXPECT_TRUE(offs.insert(off).second);
  }
  EXPECT_GE(a.used(), 32u * 1024);
}

TEST(PmemAllocator, CustomAlignmentRespected) {
  PmemPool pool(4 << 20);
  PmemAllocator a(pool);
  EXPECT_EQ(a.alloc(100, 4096) % 4096, 0u);
  EXPECT_EQ(a.alloc(100, 64) % 64, 0u);
}

TEST(PmemAllocator, ExhaustionThrowsBadAlloc) {
  PmemPool pool(1 << 20);
  PmemAllocator a(pool);
  EXPECT_THROW(a.alloc(2 << 20), std::bad_alloc);
  // And a small allocation still succeeds afterwards.
  EXPECT_NO_THROW(a.alloc(256));
}

TEST(PmemAllocator, FreeListReusesSameSize) {
  PmemPool pool(4 << 20);
  PmemAllocator a(pool);
  const uint64_t off = a.alloc(8192);
  a.free_block(off, 8192);
  EXPECT_EQ(a.alloc(8192), off);       // exact-size reuse
  EXPECT_NE(a.alloc(8192), off);       // only once
}

TEST(PmemAllocator, RootsPersistAcrossAttach) {
  PmemPool pool(1 << 20);
  {
    PmemAllocator a(pool);
    const uint64_t off = a.alloc(512);
    a.set_root(3, off, 512);
  }
  PmemAllocator b(pool);  // attach to the already-formatted pool
  EXPECT_TRUE(b.attached_existing());
  EXPECT_NE(b.root(3), 0u);
  EXPECT_EQ(b.root_size(3), 512u);
  // Bump pointer also persisted: new allocations do not overlap old ones.
  EXPECT_GE(b.alloc(256), b.root(3) + 512);
}

TEST(PmemAllocator, AttachAcrossFileBackedRemap) {
  const std::string path = ::testing::TempDir() + "/alloc_test.pool";
  std::remove(path.c_str());
  uint64_t off;
  {
    PmemPool pool(1 << 20, NvmConfig{}, path);
    PmemAllocator a(pool);
    off = a.alloc(1024);
    *pool.to_ptr<uint64_t>(off) = 77;
    pool.persist_fence(pool.to_ptr<uint64_t>(off), 8);
    a.set_root(0, off, 1024);
  }
  {
    PmemPool pool(1 << 20, NvmConfig{}, path);
    PmemAllocator a(pool);
    EXPECT_TRUE(a.attached_existing());
    EXPECT_EQ(a.root(0), off);
    EXPECT_EQ(*pool.to_ptr<uint64_t>(off), 77u);
  }
  std::remove(path.c_str());
}

TEST(PmemAllocator, ConcurrentAllocsDisjoint) {
  PmemPool pool(16 << 20);
  PmemAllocator a(pool);
  constexpr int kThreads = 4;
  constexpr int kPer = 200;
  std::vector<std::vector<uint64_t>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) got[t].push_back(a.alloc(300));
    });
  }
  for (auto& th : threads) th.join();
  std::set<uint64_t> all;
  for (auto& v : got) {
    for (uint64_t off : v) EXPECT_TRUE(all.insert(off).second);
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPer));
}

TEST(PmemAllocator, CrashAfterAllocDoesNotReuseSpace) {
  // Even if the caller crashed before linking the allocation anywhere, a
  // re-attach must not hand the same range out again (the bump pointer is
  // persisted as part of alloc()).
  PmemPool pool(1 << 20, NvmConfig{});
  pool.enable_crash_sim();
  PmemAllocator a(pool);
  const uint64_t off1 = a.alloc(512);
  pool.simulate_crash();
  PmemAllocator b(pool);
  EXPECT_TRUE(b.attached_existing());
  EXPECT_GE(b.alloc(512), off1 + 512);
}

}  // namespace
}  // namespace hdnh::nvm
