// net::Client robustness: the errno a failed connect reports survives the
// ::close that follows it, send/recv deadlines fire as TimeoutError
// instead of hanging, and a server killed mid-pipelined-MGET surfaces as a
// prompt error on the client — the dead-peer holes the replication channel
// cannot afford.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.h"
#include "common/clock.h"
#include "net/client.h"
#include "net/server.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh::net {
namespace {

// A listener that accepts connections but never replies (and never reads),
// on an ephemeral port. The sink for every timeout test.
class SilentListener {
 public:
  SilentListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    sockaddr_in actual{};
    socklen_t alen = sizeof(actual);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&actual), &alen);
    port_ = ntohs(actual.sin_port);
    accepter_ = std::thread([this] {
      for (;;) {
        const int c = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (c < 0) return;  // listener closed: drain
        std::lock_guard<std::mutex> lk(mu_);
        accepted_.push_back(c);
      }
    });
  }
  ~SilentListener() {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    accepter_.join();
    for (const int c : accepted_) ::close(c);
  }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
  std::thread accepter_;
  std::mutex mu_;
  std::vector<int> accepted_;
};

// An ephemeral port with nothing listening on it: bind, read the port,
// close. A tiny race window (something else could claim it), but connect
// then fails with ECONNREFUSED in practice.
uint16_t dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  sockaddr_in actual{};
  socklen_t alen = sizeof(actual);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &alen);
  ::close(fd);
  return ntohs(actual.sin_port);
}

// The connect-errno bugfix: ::close(fd) after the failed ::connect must
// not clobber what gets reported — the thrown message carries the real
// refusal, not close's errno or stale garbage.
TEST(ClientRobustness, ConnectRefusedReportsRealErrno) {
  Client c;
  try {
    c.connect("127.0.0.1", dead_port());
    FAIL() << "connect to a dead port unexpectedly succeeded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("Connection refused"),
              std::string::npos)
        << "reported: " << e.what();
  }
}

TEST(ClientRobustness, ConnectRefusedReportsRealErrnoWithDeadline) {
  Client c;
  c.set_timeouts({2000, 0, 0});  // the non-blocking connect path
  try {
    c.connect("127.0.0.1", dead_port());
    FAIL() << "connect to a dead port unexpectedly succeeded";
  } catch (const TimeoutError&) {
    FAIL() << "refusal misreported as a timeout";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("Connection refused"),
              std::string::npos)
        << "reported: " << e.what();
  }
}

TEST(ClientRobustness, RecvDeadlineFiresOnSilentPeer) {
  SilentListener peer;
  Client c;
  c.set_timeouts({1000, 200, 0});
  c.connect("127.0.0.1", peer.port());
  c.pipeline({"PING"});
  c.flush();  // the peer never answers
  const uint64_t t0 = now_ns();
  EXPECT_THROW(c.read_reply(), TimeoutError);
  const uint64_t elapsed_ms = (now_ns() - t0) / 1'000'000;
  EXPECT_GE(elapsed_ms, 150u);
  EXPECT_LT(elapsed_ms, 5000u) << "deadline wildly overshot";
}

TEST(ClientRobustness, SendDeadlineFiresWhenPeerStopsReading) {
  SilentListener peer;
  Client c;
  c.set_timeouts({1000, 0, 200});
  c.connect("127.0.0.1", peer.port());
  // The peer never reads: once its receive window and our send buffer
  // fill, flush() must fail within the deadline instead of blocking.
  const std::string big(256 * 1024, 'x');
  const uint64_t t0 = now_ns();
  const uint64_t give_up = t0 + 20ull * 1'000'000'000;
  try {
    for (;;) {
      c.pipeline({"SET", "k", big});
      c.flush();
      ASSERT_LT(now_ns(), give_up) << "send never hit the deadline";
    }
  } catch (const TimeoutError&) {
  }
  EXPECT_LT((now_ns() - t0) / 1'000'000, 15000u);
}

TEST(ClientRobustness, FlushAfterPeerCloseErrorsOut) {
  auto listener = std::make_unique<SilentListener>();
  Client c;
  c.set_timeouts({1000, 500, 500});
  c.connect("127.0.0.1", listener->port());
  listener.reset();  // peer gone: every accepted fd closed
  // The first flush may succeed (bytes land in the kernel before the RST
  // propagates); looping must surface an error, never spin forever on a
  // stale errno.
  const uint64_t give_up = now_ns() + 10ull * 1'000'000'000;
  EXPECT_THROW(
      {
        while (now_ns() < give_up) {
          c.pipeline({"PING"});
          c.flush();
        }
      },
      std::runtime_error);
}

// The e2e hole: a real server dying mid-pipelined-MGET must error the
// client within its deadline instead of hanging read_reply forever.
TEST(ClientRobustness, KillServerMidPipelinedMget) {
  auto pool = std::make_unique<nvm::PmemPool>(
      pool_bytes_hint("hdnh@2", 1 << 15, ShardingOptions{}));
  auto alloc = std::make_unique<nvm::PmemAllocator>(*pool);
  TableOptions topts;
  topts.capacity = 1 << 14;
  auto kv = std::make_unique<FixedTableKv>(create_table("hdnh@2", *alloc, topts));
  ServerOptions sopts;
  sopts.port = 0;
  sopts.threads = 2;
  auto server = std::make_unique<Server>(*kv, sopts);
  server->start();

  Client c;
  c.set_timeouts({2000, 1000, 1000});
  c.connect("127.0.0.1", server->port());
  for (int i = 0; i < 64; ++i) {
    c.set("mk" + std::to_string(i), "v" + std::to_string(i));
  }

  // Keep a deep MGET pipeline in flight and kill the server under it.
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server->stop();
  });

  const uint64_t t0 = now_ns();
  bool errored = false;
  try {
    std::vector<std::string> mget = {"MGET"};
    for (int i = 0; i < 64; ++i) mget.push_back("mk" + std::to_string(i));
    while (now_ns() < t0 + 30ull * 1'000'000'000) {
      for (int d = 0; d < 16; ++d) c.pipeline(mget);
      c.flush();
      for (int d = 0; d < 16; ++d) (void)c.read_reply();
    }
  } catch (const std::exception&) {
    errored = true;  // connection loss or TimeoutError — both are prompt
  }
  killer.join();
  EXPECT_TRUE(errored) << "client never noticed the dead server";
  EXPECT_LT((now_ns() - t0) / 1'000'000'000, 20u)
      << "client noticed, but far too slowly";
}

}  // namespace
}  // namespace hdnh::net
