// RESP2 framing tests: serialize→parse round-trips, incremental feeding
// with frames split at every possible byte boundary, and rejection of
// malformed or oversized input without over-allocation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/resp.h"

namespace hdnh::net {
namespace {

RespValue must_parse(const std::string& wire) {
  RespValue v;
  size_t consumed = 0;
  std::string err;
  EXPECT_EQ(parse_value(wire.data(), wire.size(), &consumed, &v, &err),
            ParseResult::kOk)
      << err;
  EXPECT_EQ(consumed, wire.size());
  return v;
}

TEST(RespParse, SimpleString) {
  RespValue v = must_parse("+OK\r\n");
  EXPECT_EQ(v.type, RespValue::Type::kSimple);
  EXPECT_EQ(v.str, "OK");
}

TEST(RespParse, Error) {
  RespValue v = must_parse("-ERR table full\r\n");
  EXPECT_TRUE(v.is_error());
  EXPECT_EQ(v.str, "ERR table full");
}

TEST(RespParse, Integer) {
  EXPECT_EQ(must_parse(":0\r\n").integer, 0);
  EXPECT_EQ(must_parse(":42\r\n").integer, 42);
  EXPECT_EQ(must_parse(":-7\r\n").integer, -7);
}

TEST(RespParse, Bulk) {
  RespValue v = must_parse("$5\r\nhello\r\n");
  EXPECT_EQ(v.type, RespValue::Type::kBulk);
  EXPECT_EQ(v.str, "hello");
  // Empty bulk is a value, not nil.
  RespValue e = must_parse("$0\r\n\r\n");
  EXPECT_EQ(e.type, RespValue::Type::kBulk);
  EXPECT_TRUE(e.str.empty());
  EXPECT_FALSE(e.is_nil());
}

TEST(RespParse, BulkWithBinaryPayload) {
  std::string payload("a\r\nb\0c", 6);
  std::string wire = "$6\r\n" + payload + "\r\n";
  RespValue v = must_parse(wire);
  EXPECT_EQ(v.str, payload);
}

TEST(RespParse, NilBulkAndNilArray) {
  EXPECT_TRUE(must_parse("$-1\r\n").is_nil());
  EXPECT_TRUE(must_parse("*-1\r\n").is_nil());
}

TEST(RespParse, Array) {
  RespValue v = must_parse("*3\r\n$3\r\nGET\r\n:5\r\n$-1\r\n");
  ASSERT_EQ(v.type, RespValue::Type::kArray);
  ASSERT_EQ(v.elems.size(), 3u);
  EXPECT_EQ(v.elems[0].str, "GET");
  EXPECT_EQ(v.elems[1].integer, 5);
  EXPECT_TRUE(v.elems[2].is_nil());
}

TEST(RespParse, NestedArray) {
  RespValue v = must_parse("*2\r\n*1\r\n+a\r\n*0\r\n");
  ASSERT_EQ(v.elems.size(), 2u);
  EXPECT_EQ(v.elems[0].elems[0].str, "a");
  EXPECT_TRUE(v.elems[1].elems.empty());
}

// The property that makes the server's partial-read handling correct:
// for every split point of a valid frame, the prefix reports kNeedMore
// with nothing consumed, and prefix+suffix parses identically to the
// whole. Exercised byte-at-a-time over several frame shapes.
TEST(RespParse, EverySplitBoundary) {
  const std::string frames[] = {
      "+OK\r\n",
      "-ERR nope\r\n",
      ":12345\r\n",
      "$11\r\nhello world\r\n",
      "$-1\r\n",
      "*2\r\n$3\r\nSET\r\n$2\r\nk1\r\n",
      "*3\r\n*1\r\n:1\r\n$0\r\n\r\n+x\r\n",
  };
  for (const std::string& wire : frames) {
    RespValue whole = must_parse(wire);
    for (size_t cut = 0; cut < wire.size(); ++cut) {
      size_t consumed = 999;
      RespValue v;
      EXPECT_EQ(parse_value(wire.data(), cut, &consumed, &v),
                ParseResult::kNeedMore)
          << "frame " << wire << " cut at " << cut;
      RespValue full;
      consumed = 0;
      ASSERT_EQ(parse_value(wire.data(), wire.size(), &consumed, &full),
                ParseResult::kOk);
      EXPECT_EQ(consumed, wire.size());
      EXPECT_EQ(full.type, whole.type);
      EXPECT_EQ(full.str, whole.str);
    }
  }
}

TEST(RespParse, ConsumesExactlyOneFrame) {
  std::string two = "+first\r\n+second\r\n";
  size_t consumed = 0;
  RespValue v;
  ASSERT_EQ(parse_value(two.data(), two.size(), &consumed, &v),
            ParseResult::kOk);
  EXPECT_EQ(v.str, "first");
  EXPECT_EQ(consumed, 8u);
  ASSERT_EQ(parse_value(two.data() + consumed, two.size() - consumed,
                        &consumed, &v),
            ParseResult::kOk);
  EXPECT_EQ(v.str, "second");
}

void expect_reject(const std::string& wire) {
  size_t consumed = 0;
  RespValue v;
  std::string err;
  EXPECT_EQ(parse_value(wire.data(), wire.size(), &consumed, &v, &err),
            ParseResult::kError)
      << "accepted: " << wire;
  EXPECT_FALSE(err.empty());
}

TEST(RespParse, RejectsMalformed) {
  expect_reject("?weird\r\n");          // unknown type byte
  expect_reject(":12a\r\n");            // non-digit in integer
  expect_reject(":\r\n");               // empty integer
  expect_reject("$5\r\nhelloXX");       // bulk not CRLF-terminated
  expect_reject("$-2\r\n");             // negative length other than -1
  expect_reject("*-2\r\n");
  expect_reject(":99999999999999999999999\r\n");  // integer overflow
}

TEST(RespParse, RejectsOversizedBeforeAllocating) {
  // Declared lengths beyond the limits must be rejected from the header
  // alone — the payload bytes never arrive.
  expect_reject("$1073741824\r\n");     // 1 GiB bulk
  expect_reject("*1000000\r\n");        // 1M-element array
  std::string deep;
  for (int i = 0; i < kMaxParseDepth + 1; ++i) deep += "*1\r\n";
  expect_reject(deep + ":1\r\n");       // nesting bomb
}

TEST(RespRequest, ArrayOfBulks) {
  std::string wire = "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n";
  std::vector<std::string> args;
  size_t consumed = 0;
  ASSERT_EQ(parse_request(wire.data(), wire.size(), &consumed, &args),
            ParseResult::kOk);
  EXPECT_EQ(consumed, wire.size());
  ASSERT_EQ(args.size(), 3u);
  EXPECT_EQ(args[0], "SET");
  EXPECT_EQ(args[2], "v");
}

TEST(RespRequest, InlineFallback) {
  std::string wire = "PING\r\n";
  std::vector<std::string> args;
  size_t consumed = 0;
  ASSERT_EQ(parse_request(wire.data(), wire.size(), &consumed, &args),
            ParseResult::kOk);
  ASSERT_EQ(args.size(), 1u);
  EXPECT_EQ(args[0], "PING");

  // Empty inline line: consumed, zero args — caller skips it.
  wire = "\r\nPING\r\n";
  ASSERT_EQ(parse_request(wire.data(), wire.size(), &consumed, &args),
            ParseResult::kOk);
  EXPECT_TRUE(args.empty());
  EXPECT_EQ(consumed, 2u);
}

TEST(RespRequest, RejectsNonBulkElements) {
  std::string wire = "*1\r\n:5\r\n";  // requests must be arrays of bulks
  std::vector<std::string> args;
  size_t consumed = 0;
  std::string err;
  EXPECT_EQ(parse_request(wire.data(), wire.size(), &consumed, &args, &err),
            ParseResult::kError);
}

TEST(RespRoundTrip, SerializersParseBack) {
  std::string out;
  append_simple(&out, "PONG");
  append_error(&out, "ERR boom");
  append_integer(&out, -3);
  append_bulk(&out, std::string("bin\r\n\0", 6));
  append_nil(&out);
  append_array_header(&out, 2);
  append_bulk(&out, "a");
  append_bulk(&out, "b");

  const char* p = out.data();
  size_t left = out.size(), consumed = 0;
  RespValue v;
  auto next = [&] {
    EXPECT_EQ(parse_value(p, left, &consumed, &v), ParseResult::kOk);
    p += consumed;
    left -= consumed;
    return v;
  };
  EXPECT_EQ(next().str, "PONG");
  EXPECT_TRUE(next().is_error());
  EXPECT_EQ(next().integer, -3);
  EXPECT_EQ(next().str, std::string("bin\r\n\0", 6));
  EXPECT_TRUE(next().is_nil());
  RespValue arr = next();
  ASSERT_EQ(arr.elems.size(), 2u);
  EXPECT_EQ(arr.elems[1].str, "b");
  EXPECT_EQ(left, 0u);
}

TEST(RespRoundTrip, CommandFraming) {
  std::string out;
  append_command(&out, {"MGET", "k1", "k2"});
  std::vector<std::string> args;
  size_t consumed = 0;
  ASSERT_EQ(parse_request(out.data(), out.size(), &consumed, &args),
            ParseResult::kOk);
  EXPECT_EQ(consumed, out.size());
  EXPECT_EQ(args, (std::vector<std::string>{"MGET", "k1", "k2"}));
}

}  // namespace
}  // namespace hdnh::net
