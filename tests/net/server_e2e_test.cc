// Loopback end-to-end tests for the epoll server: a real Server on an
// ephemeral port over a real sharded store, driven by net::Client over
// TCP. Covers the command surface, concurrent pipelined clients, MGET
// routing through the store's phased multiget (the NVM prefetch counters
// move), INFO/counter accounting, and the table-full fault firewall
// (a throwing store surfaces as Status::kTableFull locally and
// "-ERR table full" on the wire — never as an escaped exception).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.h"
#include "net/client.h"
#include "net/kv_codec.h"
#include "net/server.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "nvm/stats.h"

namespace hdnh::net {
namespace {

// Pool + sharded table + running server on an ephemeral port.
struct ServerPack {
  explicit ServerPack(const std::string& scheme = "hdnh@4",
                      uint64_t capacity = 1 << 16, uint32_t threads = 2,
                      uint32_t max_shards = 0)
      : pool(pool_bytes_hint(scheme, capacity * 2,
                             ShardingOptions{1, max_shards})),
        alloc(pool) {
    TableOptions topts;
    topts.capacity = capacity;
    topts.sharding.max_shards = max_shards;
    table = create_table(scheme, alloc, topts);
    ServerOptions sopts;
    sopts.port = 0;  // ephemeral
    sopts.threads = threads;
    server = std::make_unique<Server>(*table, sopts);
    server->start();
  }
  ~ServerPack() { server->stop(); }

  Client client() {
    Client c;
    c.connect("127.0.0.1", server->port());
    return c;
  }

  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  std::unique_ptr<HashTable> table;
  std::unique_ptr<Server> server;
};

TEST(ServerE2E, CommandSurface) {
  ServerPack pack;
  Client c = pack.client();

  EXPECT_TRUE(c.ping());
  EXPECT_EQ(c.dbsize(), 0);

  c.set("alpha", "1");
  std::string v;
  ASSERT_TRUE(c.get("alpha", &v));
  EXPECT_EQ(v, "1");
  EXPECT_FALSE(c.get("missing", &v));

  c.set("alpha", "2");  // overwrite through put_s
  ASSERT_TRUE(c.get("alpha", &v));
  EXPECT_EQ(v, "2");

  EXPECT_TRUE(c.setnx("beta", "b"));
  EXPECT_FALSE(c.setnx("beta", "ignored"));
  ASSERT_TRUE(c.get("beta", &v));
  EXPECT_EQ(v, "b");

  EXPECT_EQ(c.exists("alpha"), 1);
  EXPECT_EQ(c.dbsize(), 2);
  EXPECT_EQ(c.del("alpha"), 1);
  EXPECT_EQ(c.del("alpha"), 0);
  EXPECT_EQ(c.exists("alpha"), 0);
  EXPECT_EQ(c.dbsize(), 1);
  EXPECT_EQ(pack.table->size(), 1u);

  // Store state is shared across connections.
  Client c2 = pack.client();
  ASSERT_TRUE(c2.get("beta", &v));
  EXPECT_EQ(v, "b");

  RespValue info = c.command({"INFO"});
  EXPECT_EQ(info.type, RespValue::Type::kBulk);
  EXPECT_NE(info.str.find("# Stats"), std::string::npos);
  RespValue cmds = c.command({"COMMAND"});
  EXPECT_EQ(cmds.type, RespValue::Type::kArray);
}

TEST(ServerE2E, WireLimitsAndErrors) {
  ServerPack pack;
  Client c = pack.client();

  const std::string long_key(kMaxWireKeyLen + 1, 'k');
  const std::string long_val(kMaxWireValueLen + 1, 'v');

  // Oversized key/value on SET: a RESP error, connection stays usable.
  EXPECT_TRUE(c.command({"SET", long_key, "v"}).is_error());
  EXPECT_TRUE(c.command({"SET", "k", long_val}).is_error());
  // Oversized key on GET: structurally a miss.
  EXPECT_TRUE(c.command({"GET", long_key}).is_nil());

  // Arity and unknown-command errors.
  EXPECT_TRUE(c.command({"SET", "only-key"}).is_error());
  EXPECT_TRUE(c.command({"GET"}).is_error());
  EXPECT_TRUE(c.command({"FLUSHALL"}).is_error());

  // Max-size key and value round-trip fine.
  const std::string max_key(kMaxWireKeyLen, 'K');
  const std::string max_val(kMaxWireValueLen, 'V');
  c.set(max_key, max_val);
  std::string v;
  ASSERT_TRUE(c.get(max_key, &v));
  EXPECT_EQ(v, max_val);
  EXPECT_TRUE(c.ping());  // still alive after all the errors
}

TEST(ServerE2E, MgetRoutesThroughPhasedMultiget) {
  ServerPack pack("hdnh@4", 1 << 16);
  Client c = pack.client();

  // Load well past the hot table's reach (hot_capacity_ratio covers ~25%
  // of slots) so MGET must read NVM — that is what makes the prefetch /
  // overlapped-read counters observable.
  constexpr int kKeys = 8192;
  for (int i = 0; i < kKeys; ++i) {
    c.pipeline({"SET", "k" + std::to_string(i), "v" + std::to_string(i)});
    if (i % 256 == 255) {
      c.flush();
      for (int j = 0; j < 256; ++j) ASSERT_FALSE(c.read_reply().is_error());
    }
  }

  nvm::ScopedStatsDelta d;
  int hits = 0;
  for (int base = 0; base < kKeys; base += 64) {
    std::vector<std::string> keys;
    for (int j = 0; j < 64; ++j) keys.push_back("k" + std::to_string(base + j));
    keys.push_back("nope" + std::to_string(base));  // one guaranteed miss
    auto vals = c.mget(keys);
    ASSERT_EQ(vals.size(), keys.size());
    for (int j = 0; j < 64; ++j) {
      ASSERT_TRUE(vals[j].has_value()) << keys[j];
      EXPECT_EQ(*vals[j], "v" + std::to_string(base + j));
      ++hits;
    }
    EXPECT_FALSE(vals.back().has_value());
  }
  EXPECT_EQ(hits, kKeys);

  // The acceptance check: batched network reads reach the store's phased
  // pipeline, visible as issued prefetches and overlapped block reads.
  const nvm::StatsSnapshot used = d.delta();
  EXPECT_GT(used.nvm_prefetch_issued, 0u);
  EXPECT_GT(used.nvm_read_blocks_overlapped, 0u);

  const Server::Counters sc = pack.server->counters();
  EXPECT_EQ(sc.per_command[static_cast<size_t>(Cmd::kMget)], kKeys / 64);
}

TEST(ServerE2E, ConcurrentPipelinedClients) {
  ServerPack pack("hdnh@4", 1 << 16, /*threads=*/3);
  constexpr int kThreads = 6;
  constexpr int kOpsPer = 500;
  std::atomic<int> failures{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      try {
        Client c;
        c.connect("127.0.0.1", pack.server->port());
        // Disjoint key ranges per thread: every GET-after-SET must hit.
        for (int i = 0; i < kOpsPer; ++i) {
          const std::string key = "t" + std::to_string(t) + "-" +
                                  std::to_string(i % 97);
          c.pipeline({"SET", key, std::to_string(i)});
          c.pipeline({"GET", key});
          c.pipeline({"MGET", key, "absent"});
          c.flush();
          const RespValue set_r = c.read_reply();
          const RespValue get_r = c.read_reply();
          const RespValue mget_r = c.read_reply();
          if (set_r.is_error() || get_r.is_nil() ||
              get_r.str != std::to_string(i) ||
              mget_r.elems.size() != 2 || mget_r.elems[0].is_nil() ||
              !mget_r.elems[1].is_nil()) {
            ++failures;
            return;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  const Server::Counters sc = pack.server->counters();
  EXPECT_EQ(sc.connections_accepted, kThreads);
  EXPECT_EQ(sc.protocol_errors, 0u);
  EXPECT_EQ(sc.per_command[static_cast<size_t>(Cmd::kSet)],
            uint64_t{kThreads} * kOpsPer);
  EXPECT_EQ(sc.per_command[static_cast<size_t>(Cmd::kGet)],
            uint64_t{kThreads} * kOpsPer);
  EXPECT_EQ(sc.commands_processed, uint64_t{kThreads} * kOpsPer * 3);

  // INFO carries the same accounting over the wire.
  Client c = pack.client();
  const std::string info = c.info();
  EXPECT_NE(info.find("cmd_set:calls=" +
                      std::to_string(uint64_t{kThreads} * kOpsPer)),
            std::string::npos)
      << info;
  EXPECT_NE(info.find("connected_clients"), std::string::npos);
}

// Raw TCP helper for sending deliberately malformed bytes the Client's
// typed surface cannot produce.
struct RawConn {
  explicit RawConn(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  void send_all(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  }
  // Read until EOF; returns everything the server said before closing.
  std::string drain() {
    std::string all;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      all.append(buf, static_cast<size_t>(n));
    }
    return all;
  }
  int fd = -1;
};

TEST(ServerE2E, ProtocolErrorsCountedAndConnectionDropped) {
  ServerPack pack;

  // A declared 1 GiB bulk: rejected from the header alone — the server
  // answers with a RESP error and closes the connection (EOF follows the
  // error, never a hang or an allocation).
  {
    RawConn raw(pack.server->port());
    raw.send_all("*1\r\n$1073741824\r\n");
    const std::string reply = raw.drain();
    ASSERT_FALSE(reply.empty());
    EXPECT_EQ(reply[0], '-') << reply;
  }
  // Garbage type byte.
  {
    RawConn raw(pack.server->port());
    raw.send_all("*1\r\n?boom\r\n");
    const std::string reply = raw.drain();
    ASSERT_FALSE(reply.empty());
    EXPECT_EQ(reply[0], '-') << reply;
  }

  EXPECT_GE(pack.server->counters().protocol_errors, 2u);

  // A well-behaved client is unaffected by its neighbours' garbage.
  Client c = pack.client();
  EXPECT_TRUE(c.ping());
}

TEST(ServerE2E, ShutdownCommandStopsServer) {
  ServerPack pack;
  Client c = pack.client();
  c.set("persist", "1");
  c.pipeline({"SHUTDOWN"});
  c.flush();
  // Server leaves the running state; wait() returns.
  pack.server->wait();
  EXPECT_FALSE(pack.server->running());
  pack.server->stop();  // join threads; idempotent
  EXPECT_EQ(pack.table->size(), 1u);  // store unaffected by shutdown
}

// ---- table-full fault firewall ----

// A store whose writes always throw TableFullError: models a full pmem
// pool. Inherits the default Status shims, so this also proves guard()
// catches at the API boundary (no override involved).
class FullTable final : public HashTable {
 public:
  bool insert(const Key&, const Value&) override {
    throw TableFullError("stub table is always full");
  }
  bool search(const Key&, Value*) override { return false; }
  bool update(const Key&, const Value&) override {
    throw TableFullError("stub table is always full");
  }
  bool erase(const Key&) override { return false; }
  uint64_t size() const override { return 0; }
  double load_factor() const override { return 1.0; }
  const char* name() const override { return "full-stub"; }
};

TEST(ServerE2E, TableFullStatusLocallyAndOverTheWire) {
  FullTable full;

  // Locally: the exception is converted, not propagated.
  Status s = full.insert_s(make_key(1), make_value(1));
  EXPECT_EQ(s, StatusCode::kTableFull);
  EXPECT_EQ(full.put_s(make_key(1), make_value(1)), StatusCode::kTableFull);

  // Over the wire: "-ERR table full", connection survives, counter moves.
  ServerOptions sopts;
  sopts.port = 0;
  sopts.threads = 1;
  Server server(full, sopts);
  server.start();
  Client c;
  c.connect("127.0.0.1", server.port());

  RespValue r = c.command({"SET", "k", "v"});
  ASSERT_TRUE(r.is_error());
  EXPECT_EQ(r.str, "ERR table full");
  r = c.command({"SETNX", "k", "v"});
  ASSERT_TRUE(r.is_error());
  EXPECT_EQ(r.str, "ERR table full");
  EXPECT_TRUE(c.ping());  // the reactor thread survived the exception path

  const Server::Counters sc = server.counters();
  EXPECT_EQ(sc.table_full_errors, 2u);
  server.stop();
}

TEST(ServerE2E, ShardsAndReshardConserveKeysAcrossSplit) {
  ServerPack pack("hdnh@2", 1 << 14, 2, /*max_shards=*/4);
  Client c = pack.client();
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    c.set("key-" + std::to_string(i), std::to_string(i));
  }
  EXPECT_EQ(c.dbsize(), kN);

  // SHARDS: [meta, entries, per-shard rows].
  RespValue dir = c.command({"SHARDS"});
  ASSERT_EQ(dir.type, RespValue::Type::kArray);
  ASSERT_EQ(dir.elems.size(), 3u);
  ASSERT_EQ(dir.elems[0].elems.size(), 5u);
  EXPECT_EQ(dir.elems[0].elems[2].integer, 2);  // shard_count
  EXPECT_EQ(dir.elems[0].elems[3].integer, 4);  // max_shards
  EXPECT_EQ(dir.elems[0].elems[4].integer, 0);  // no split in flight
  const int64_t epoch_before = dir.elems[0].elems[1].integer;
  ASSERT_EQ(dir.elems[2].elems.size(), 2u);
  int64_t items_before = 0;
  for (const auto& row : dir.elems[2].elems) {
    ASSERT_EQ(row.elems.size(), 4u);
    items_before += row.elems[2].integer;
  }
  EXPECT_EQ(items_before, kN);

  // Bad arguments are refusals, not crashes.
  EXPECT_TRUE(c.command({"RESHARD"}).is_error());
  EXPECT_TRUE(c.command({"RESHARD", "notanumber"}).is_error());
  EXPECT_TRUE(c.command({"RESHARD", "9"}).is_error());
  // Out-of-range ids must be rejected, not truncated: 2^32 would wrap to
  // shard 0 under a naive uint32_t cast; a sign would wrap under strtoull.
  EXPECT_TRUE(c.command({"RESHARD", "4294967296"}).is_error());
  EXPECT_TRUE(c.command({"RESHARD", "-1"}).is_error());
  EXPECT_TRUE(c.command({"RESHARD", "+0"}).is_error());

  // A real online split over the wire.
  RespValue ok = c.command({"RESHARD", "0"});
  ASSERT_EQ(ok.type, RespValue::Type::kSimple) << ok.str;
  EXPECT_EQ(ok.str, "OK");

  dir = c.command({"SHARDS"});
  ASSERT_EQ(dir.type, RespValue::Type::kArray);
  EXPECT_EQ(dir.elems[0].elems[2].integer, 3);
  EXPECT_GT(dir.elems[0].elems[1].integer, epoch_before);
  // Key-count conservation: the per-shard items still sum to every SET.
  int64_t items_after = 0;
  for (const auto& row : dir.elems[2].elems) {
    items_after += row.elems[2].integer;
  }
  EXPECT_EQ(items_after, kN);
  EXPECT_EQ(c.dbsize(), kN);
  std::string v;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(c.get("key-" + std::to_string(i), &v)) << i;
    EXPECT_EQ(v, std::to_string(i)) << i;
  }

  // A single-table store refuses the shard verbs cleanly.
  ServerPack flat("hdnh", 1 << 12, 1);
  Client fc = flat.client();
  EXPECT_TRUE(fc.command({"SHARDS"}).is_error());
  EXPECT_TRUE(fc.command({"RESHARD", "0"}).is_error());
}

}  // namespace
}  // namespace hdnh::net
