// Loopback end-to-end tests for the server over the value-log store: the
// acceptance path for variable-length KV is a RESP client SETting and
// GETting a 64 KiB value through a live hdnh_server — codec v2 framing,
// KvStore dispatch, and the vkv read/write paths all in one round trip.
// Also checks that the wire limits are the *store's* limits (64 KiB keys /
// 16 MiB values, not the fixed-record 15 B/14 B) and that the error
// strings carry the derived bounds.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.h"
#include "net/client.h"
#include "net/server.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "vkv/log_store.h"

namespace hdnh::net {
namespace {

struct VkvServerPack {
  explicit VkvServerPack(const std::string& scheme = "vkv@2",
                         uint64_t capacity = 1 << 14,
                         uint64_t avg_value_bytes = 4096,
                         uint32_t threads = 2)
      : pool(kv_pool_bytes_hint(scheme, capacity, avg_value_bytes)),
        alloc(pool) {
    TableOptions topts;
    topts.capacity = capacity;
    topts.log_bytes = 2 * capacity * avg_value_bytes + (64ull << 20);
    store = create_kv_store(scheme, alloc, topts);
    ServerOptions sopts;
    sopts.port = 0;  // ephemeral
    sopts.threads = threads;
    server = std::make_unique<Server>(*store, sopts);
    server->start();
  }
  ~VkvServerPack() { server->stop(); }

  Client client() {
    Client c;
    c.connect("127.0.0.1", server->port());
    return c;
  }

  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  std::unique_ptr<KvStore> store;
  std::unique_ptr<Server> server;
};

std::string patterned(size_t n, char seed) {
  std::string s(n, ' ');
  for (size_t i = 0; i < n; ++i) s[i] = static_cast<char>(seed + i % 23);
  return s;
}

// The PR's acceptance check: a 64 KiB value set and read back byte-exact
// over TCP, alone and inside an MGET batch.
TEST(ServerVkvE2E, LargeValueRoundTrip64KiB) {
  VkvServerPack pack("vkv@2", 1 << 12, /*avg_value_bytes=*/64 * 1024);
  Client c = pack.client();

  const std::string big = patterned(64 * 1024, 'A');
  c.set("big", big);
  std::string v;
  ASSERT_TRUE(c.get("big", &v));
  EXPECT_EQ(v, big);

  // Mixed sizes in one MGET: inline (<= 14 B), a few KiB, and 64 KiB.
  c.set("tiny", "v");
  c.set("mid", patterned(3000, 'm'));
  auto vals = c.mget({"tiny", "missing", "mid", "big"});
  ASSERT_EQ(vals.size(), 4u);
  ASSERT_TRUE(vals[0].has_value());
  EXPECT_EQ(*vals[0], "v");
  EXPECT_FALSE(vals[1].has_value());
  ASSERT_TRUE(vals[2].has_value());
  EXPECT_EQ(*vals[2], patterned(3000, 'm'));
  ASSERT_TRUE(vals[3].has_value());
  EXPECT_EQ(*vals[3], big);

  // Overwrite with a different large value; the old record dies in the log.
  const std::string big2 = patterned(70 * 1024, 'B');
  c.set("big", big2);
  ASSERT_TRUE(c.get("big", &v));
  EXPECT_EQ(v, big2);
  EXPECT_EQ(c.del("big"), 1);
  EXPECT_FALSE(c.get("big", &v));
}

TEST(ServerVkvE2E, WireLimitsAreTheStoreLimits) {
  VkvServerPack pack;
  Client c = pack.client();

  // Max-size key round-trips (the fixed-record server caps keys at 15 B).
  const std::string max_key(vkv::LogStore::kMaxKey, 'K');
  c.set(max_key, "long-key-value");
  std::string v;
  ASSERT_TRUE(c.get(max_key, &v));
  EXPECT_EQ(v, "long-key-value");

  // One byte over: a RESP error whose message carries the derived bound.
  const std::string long_key(vkv::LogStore::kMaxKey + 1, 'k');
  RespValue r = c.command({"SET", long_key, "v"});
  ASSERT_TRUE(r.is_error());
  EXPECT_NE(r.str.find("key too long"), std::string::npos) << r.str;
  EXPECT_NE(r.str.find(std::to_string(vkv::LogStore::kMaxKey)),
            std::string::npos)
      << r.str;
  // Oversized key on GET is structurally a miss.
  EXPECT_TRUE(c.command({"GET", long_key}).is_nil());

  // A 1 MiB value — far past the fixed-record cap — is just a normal
  // write here. (kMaxValue itself equals the RESP parser's per-bulk cap, so an
  // over-limit value can never reach the store check on a vkv server; the
  // parser rejects the frame first.)
  const std::string mib = patterned(1 << 20, 'M');
  c.set("mib", mib);
  ASSERT_TRUE(c.get("mib", &v));
  EXPECT_EQ(v, mib);
  EXPECT_TRUE(c.ping());
}

// The limits (and the numbers in the error strings) come from the store
// behind the server, not from wire constants: the same server code over a
// fixed-record KvStore enforces 15 B keys / 14 B values.
TEST(ServerVkvE2E, LimitsFollowTheStoreNotTheWire) {
  nvm::PmemPool pool(kv_pool_bytes_hint("hdnh@2", 1 << 12, 14));
  nvm::PmemAllocator alloc(pool);
  TableOptions topts;
  topts.capacity = 1 << 12;
  auto fixed = create_kv_store("hdnh@2", alloc, topts);
  ServerOptions sopts;
  sopts.port = 0;
  sopts.threads = 1;
  Server server(*fixed, sopts);
  server.start();
  Client c;
  c.connect("127.0.0.1", server.port());

  RespValue r = c.command({"SET", "k", std::string(fixed->max_value_len() + 1, 'v')});
  ASSERT_TRUE(r.is_error());
  EXPECT_NE(r.str.find("value too long"), std::string::npos) << r.str;
  EXPECT_NE(r.str.find(std::to_string(fixed->max_value_len())),
            std::string::npos)
      << r.str;
  r = c.command({"SET", std::string(fixed->max_key_len() + 1, 'k'), "v"});
  ASSERT_TRUE(r.is_error());
  EXPECT_NE(r.str.find("key too long"), std::string::npos) << r.str;
  EXPECT_TRUE(c.ping());
  server.stop();
}

TEST(ServerVkvE2E, ConcurrentPipelinedLargeValues) {
  VkvServerPack pack("vkv@2", 1 << 12, /*avg_value_bytes=*/16 * 1024,
                     /*threads=*/3);
  constexpr int kThreads = 4;
  constexpr int kOpsPer = 60;
  std::atomic<int> failures{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      try {
        Client c;
        c.connect("127.0.0.1", pack.server->port());
        // Disjoint keys; every GET-after-SET must return the exact bytes.
        for (int i = 0; i < kOpsPer; ++i) {
          const std::string key =
              "t" + std::to_string(t) + "-" + std::to_string(i % 13);
          const std::string val =
              patterned(8 * 1024 + 512 * t + i, static_cast<char>('a' + t));
          c.pipeline({"SET", key, val});
          c.pipeline({"GET", key});
          c.flush();
          const RespValue set_r = c.read_reply();
          const RespValue get_r = c.read_reply();
          if (set_r.is_error() || get_r.is_nil() || get_r.str != val) {
            ++failures;
            return;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pack.server->counters().protocol_errors, 0u);
  EXPECT_EQ(pack.store->size(), uint64_t{kThreads} * 13);
}

}  // namespace
}  // namespace hdnh::net
