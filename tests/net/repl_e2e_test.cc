// End-to-end replication over loopback: a primary server with a ReplLog
// and a replica server with a ReplicaSession, both real epoll servers on
// ephemeral ports. Covers stream apply, REPLSEQ/GETAT semantics, the
// read-only gate and PROMOTE, read-your-writes under a concurrent
// pipelined writer, the RESHARD barrier, and the truncated-ring refusal.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.h"
#include "common/clock.h"
#include "net/client.h"
#include "net/repl.h"
#include "net/server.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh::net {
namespace {

struct Node {
  explicit Node(const std::string& scheme = "hdnh@2",
                uint64_t capacity = 1 << 14, uint32_t max_shards = 0)
      : pool(pool_bytes_hint(scheme, capacity * 2,
                             ShardingOptions{1, max_shards})),
        alloc(pool) {
    TableOptions topts;
    topts.capacity = capacity;
    topts.sharding.max_shards = max_shards;
    kv = std::make_unique<FixedTableKv>(create_table(scheme, alloc, topts));
    ServerOptions sopts;
    sopts.port = 0;
    sopts.threads = 2;
    server = std::make_unique<Server>(*kv, sopts);
  }
  ~Node() { server->stop(); }

  Client client() {
    Client c;
    c.set_timeouts({2000, 2000, 2000});
    c.connect("127.0.0.1", server->port());
    return c;
  }

  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  std::unique_ptr<FixedTableKv> kv;
  std::unique_ptr<Server> server;
};

// Primary (with log) + replica (with session), both running.
struct ReplPair {
  explicit ReplPair(ReplLogOptions lopts = {}, uint32_t ack_every = 8,
                    uint32_t max_shards = 0)
      : primary("hdnh@2", 1 << 14, max_shards) {
    log = std::make_unique<ReplLog>(lopts);
    log->start();
    primary.server->set_repl_log(log.get());
    primary.server->start();

    replica = std::make_unique<Node>();
    ReplicaOptions ropts;
    ropts.host = "127.0.0.1";
    ropts.port = primary.server->port();
    ropts.recv_timeout_ms = 100;
    ropts.ack_every = ack_every;
    session = std::make_unique<ReplicaSession>(*replica->kv, ropts);
    replica->server->set_replica(session.get());
    replica->server->start();
    session->start();
  }
  ~ReplPair() {
    session->stop();
    log->stop();
  }

  bool wait_sink(uint32_t ms = 5000) {
    const uint64_t deadline = now_ns() + ms * 1'000'000ull;
    while (log->sink_count() == 0) {
      if (now_ns() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }
  bool wait_applied(uint64_t seq, uint32_t ms = 5000) {
    const uint64_t deadline = now_ns() + ms * 1'000'000ull;
    while (session->applied_seq() < seq) {
      if (now_ns() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }

  Node primary;
  std::unique_ptr<Node> replica;
  std::unique_ptr<ReplLog> log;
  std::unique_ptr<ReplicaSession> session;
};

TEST(ReplE2E, StreamAppliesToReplica) {
  ReplPair pair;
  ASSERT_TRUE(pair.wait_sink());

  Client p = pair.primary.client();
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    p.pipeline({"SET", "k" + std::to_string(i), "v" + std::to_string(i)});
  }
  p.flush();
  for (int i = 0; i < n; ++i) {
    ASSERT_FALSE(p.read_reply().is_error());
  }
  // A delete and an overwrite ride the same stream.
  EXPECT_EQ(p.del("k0"), 1);
  p.set("k1", "v1b");

  ASSERT_TRUE(pair.wait_applied(pair.log->last_seq()));
  Client r = pair.replica->client();
  EXPECT_EQ(r.dbsize(), n - 1);
  std::string v;
  EXPECT_FALSE(r.get("k0", &v));
  ASSERT_TRUE(r.get("k1", &v));
  EXPECT_EQ(v, "v1b");
  ASSERT_TRUE(r.get("k999", &v));
  EXPECT_EQ(v, "v999");
  EXPECT_EQ(pair.session->apply_errors(), 0u);
}

TEST(ReplE2E, SetnxReplicatesTheWinningWrite) {
  ReplPair pair;
  ASSERT_TRUE(pair.wait_sink());
  Client p = pair.primary.client();
  EXPECT_TRUE(p.setnx("nx", "first"));
  EXPECT_FALSE(p.setnx("nx", "second"));  // lost: nothing to replicate
  ASSERT_TRUE(pair.wait_applied(pair.log->last_seq()));
  std::string v;
  Client r = pair.replica->client();
  ASSERT_TRUE(r.get("nx", &v));
  EXPECT_EQ(v, "first");
}

TEST(ReplE2E, ReplseqReportsRolesAndLag) {
  ReplPair pair;
  ASSERT_TRUE(pair.wait_sink());
  Client p = pair.primary.client();
  p.set("a", "1");
  ASSERT_TRUE(pair.wait_applied(pair.log->last_seq()));

  const RespValue ps = p.command({"REPLSEQ"});
  ASSERT_EQ(ps.type, RespValue::Type::kArray);
  ASSERT_EQ(ps.elems.size(), 6u);
  EXPECT_EQ(ps.elems[0].str, "primary");
  EXPECT_EQ(ps.elems[1].integer, 1);  // last_seq
  EXPECT_EQ(ps.elems[4].integer, 1);  // sinks

  Client r = pair.replica->client();
  const RespValue rs = r.command({"REPLSEQ"});
  ASSERT_EQ(rs.type, RespValue::Type::kArray);
  EXPECT_EQ(rs.elems[0].str, "replica");
  EXPECT_EQ(rs.elems[2].integer, 1);  // applied_seq
  EXPECT_EQ(rs.elems[3].integer, 0);  // lag
  EXPECT_EQ(rs.elems[5].integer, 1);  // connected

  // INFO mirrors the same numbers.
  const std::string info = r.info();
  EXPECT_NE(info.find("role:replica"), std::string::npos);
  EXPECT_NE(info.find("repl_applied_seq:1"), std::string::npos);
}

TEST(ReplE2E, GetatGatesOnAppliedSeq) {
  ReplPair pair;
  ASSERT_TRUE(pair.wait_sink());
  Client p = pair.primary.client();
  p.set("g", "gv");
  const uint64_t seq = pair.log->last_seq();
  ASSERT_TRUE(pair.wait_applied(seq));

  Client r = pair.replica->client();
  const RespValue ok = r.command({"GETAT", std::to_string(seq), "g"});
  ASSERT_EQ(ok.type, RespValue::Type::kBulk);
  EXPECT_EQ(ok.str, "gv");

  // A seq the replica has not applied yet answers LAGGING, not a stale nil.
  const RespValue lag = r.command({"GETAT", std::to_string(seq + 50), "g"});
  ASSERT_TRUE(lag.is_error());
  EXPECT_NE(lag.str.find("LAGGING"), std::string::npos);

  // On the primary GETAT serves directly (last_seq is the bound).
  const RespValue pok = p.command({"GETAT", std::to_string(seq), "g"});
  ASSERT_EQ(pok.type, RespValue::Type::kBulk);
}

TEST(ReplE2E, ReplicaReadOnlyUntilPromote) {
  ReplPair pair;
  ASSERT_TRUE(pair.wait_sink());
  Client r = pair.replica->client();
  const RespValue rej = r.command({"SET", "x", "y"});
  ASSERT_TRUE(rej.is_error());
  EXPECT_NE(rej.str.find("READONLY"), std::string::npos);
  EXPECT_TRUE(r.command({"DEL", "x"}).is_error());

  Client p = pair.primary.client();
  p.set("pre", "1");
  ASSERT_TRUE(pair.wait_applied(pair.log->last_seq()));

  const RespValue promoted = r.command({"PROMOTE"});
  ASSERT_EQ(promoted.type, RespValue::Type::kInteger) << promoted.str;
  EXPECT_EQ(promoted.integer, 1);  // the applied seq at promotion
  EXPECT_TRUE(pair.session->promoted());

  // Writable now, and the pre-promotion data survived.
  r.set("x", "y");
  std::string v;
  ASSERT_TRUE(r.get("x", &v));
  EXPECT_EQ(v, "y");
  ASSERT_TRUE(r.get("pre", &v));
  EXPECT_EQ(v, "1");

  // Idempotent: a second PROMOTE answers ALREADY.
  const RespValue again = r.command({"PROMOTE"});
  EXPECT_EQ(again.type, RespValue::Type::kSimple);
  EXPECT_EQ(again.str, "ALREADY");

  // A server with neither log nor session (the replica's primary-side
  // refusal): PROMOTE on the primary is an error.
  const RespValue np = pair.primary.client().command({"PROMOTE"});
  ASSERT_TRUE(np.is_error());
  EXPECT_NE(np.str.find("not a replica"), std::string::npos);
}

// Read-your-writes under a concurrent pipelined writer: a client that
// wrote through the primary at seq S and reads from the replica with
// GETAT S either sees its value or an explicit LAGGING error — never a
// stale miss served as truth.
TEST(ReplE2E, ReadYourWritesUnderConcurrentWriter) {
  ReplPair pair;
  ASSERT_TRUE(pair.wait_sink());

  constexpr int kWrites = 400;
  std::atomic<int> published{-1};
  std::atomic<uint64_t> published_seq[kWrites];
  for (auto& s : published_seq) s.store(0);

  std::thread writer([&] {
    Client p = pair.primary.client();
    for (int i = 0; i < kWrites; ++i) {
      p.set("ryw" + std::to_string(i), "val" + std::to_string(i));
      // The seq of this write is <= last_seq at publication time; GETAT
      // with that bound therefore covers it.
      published_seq[i].store(pair.log->last_seq());
      published.store(i);
    }
  });

  Client r = pair.replica->client();
  std::string v;
  int verified = 0;
  const uint64_t deadline = now_ns() + 30ull * 1'000'000'000;
  while (verified < kWrites && now_ns() < deadline) {
    const int latest = published.load();
    if (latest < verified) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    const uint64_t seq = published_seq[verified].load();
    const RespValue got =
        r.command({"GETAT", std::to_string(seq), "ryw" + std::to_string(verified)});
    if (got.is_error()) {
      ASSERT_NE(got.str.find("LAGGING"), std::string::npos) << got.str;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;  // honest lag: retry the same key
    }
    // Applied far enough: the value MUST be there and correct.
    ASSERT_EQ(got.type, RespValue::Type::kBulk)
        << "stale miss at i=" << verified;
    EXPECT_EQ(got.str, "val" + std::to_string(verified));
    ++verified;
  }
  writer.join();
  EXPECT_EQ(verified, kWrites) << "read-your-writes loop timed out";
}

TEST(ReplE2E, ReshardAppendsBarrier) {
  ReplPair pair({}, /*ack_every=*/8, /*max_shards=*/4);
  ASSERT_TRUE(pair.wait_sink());
  Client p = pair.primary.client();
  for (int i = 0; i < 64; ++i) {
    p.set("rk" + std::to_string(i), "v");
  }
  const uint64_t before = pair.log->last_seq();
  const RespValue ok = p.command({"RESHARD", "0"});
  ASSERT_EQ(ok.type, RespValue::Type::kSimple) << ok.str;
  EXPECT_EQ(pair.log->last_seq(), before + 1);  // the barrier entry
  // The barrier applies as a no-op; the replica keeps tracking the stream.
  ASSERT_TRUE(pair.wait_applied(before + 1));
  EXPECT_EQ(pair.session->apply_errors(), 0u);
  Client r = pair.replica->client();
  EXPECT_EQ(r.dbsize(), 64);
}

TEST(ReplE2E, TruncatedBacklogIsRefused) {
  ReplLogOptions lopts;
  lopts.ring_entries = 16;
  Node primary;
  ReplLog log(lopts);
  log.start();
  primary.server->set_repl_log(&log);
  primary.server->start();

  Client p = primary.client();
  for (int i = 0; i < 64; ++i) {
    p.set("t" + std::to_string(i), "v");  // ring wraps: seq 1 evicted
  }
  const RespValue refused = p.command({"REPLSTREAM", "1"});
  ASSERT_TRUE(refused.is_error());
  EXPECT_NE(refused.str.find("truncated"), std::string::npos);

  // From a retained seq the stream attaches fine.
  const RespValue ok = p.command({"REPLSTREAM", std::to_string(64 - 10)});
  EXPECT_EQ(ok.type, RespValue::Type::kSimple);
  const uint64_t deadline = now_ns() + 5ull * 1'000'000'000;
  while (log.sink_count() == 0 && now_ns() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(log.sink_count(), 1u);
  log.stop();
}

}  // namespace
}  // namespace hdnh::net
