// Loopback e2e for the telemetry command surface: SLOWLOG / HOTKEYS /
// LATENCY / METRICS against a live server over TCP. The server runs
// in-process, so tests can steer the obs runtime (sampling periods,
// thresholds, manual window rotation) around the wire-level assertions.
// The commands themselves exist in every build; assertions that need the
// instrumentation macros are gated on obs::kCompiledIn.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/factory.h"
#include "net/client.h"
#include "net/server.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "obs/obs.h"
#include "obs/sample.h"

namespace hdnh::net {
namespace {

struct ServerPack {
  explicit ServerPack(const std::string& scheme = "hdnh@4",
                      uint64_t capacity = 1 << 16)
      : pool(pool_bytes_hint(scheme, capacity * 2)), alloc(pool) {
    TableOptions topts;
    topts.capacity = capacity;
    table = create_table(scheme, alloc, topts);
    ServerOptions sopts;
    sopts.port = 0;  // ephemeral
    sopts.threads = 2;
    server = std::make_unique<Server>(*table, sopts);
    server->start();
  }
  ~ServerPack() { server->stop(); }

  Client client() {
    Client c;
    c.connect("127.0.0.1", server->port());
    return c;
  }

  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  std::unique_ptr<HashTable> table;
  std::unique_ptr<Server> server;
};

// Exhaustive-capture fixture: sampling periods and slowlog threshold are
// global, so tests save/restore them to stay order-independent.
class ObsCmds : public ::testing::Test {
 protected:
  void SetUp() override {
    latency_was_ = obs::Metrics::latency_enabled();
    threshold_was_ = obs::SlowLog::threshold_ns();
    obs::Sampling::set_latency_every(1);
    obs::Sampling::set_hotkey_every(1);
    obs::SlowLog::reset();
    obs::HeavyHitters::reset();
    obs::Windows::reset();
  }
  void TearDown() override {
    obs::Sampling::set_latency_every(obs::Sampling::kLatencyEvery);
    obs::Sampling::set_hotkey_every(obs::Sampling::kHotkeyEvery);
    obs::SlowLog::set_threshold_ns(threshold_was_);
    obs::Metrics::set_latency_enabled(latency_was_);
    obs::SlowLog::reset();
    obs::HeavyHitters::reset();
  }
  bool latency_was_ = false;
  uint64_t threshold_was_ = 0;
};

TEST_F(ObsCmds, SlowlogGetResetLenOverTheWire) {
  ServerPack pack;
  Client c = pack.client();

  // Empty log: LEN 0, GET [].
  RespValue len = c.command({"SLOWLOG", "LEN"});
  ASSERT_EQ(len.type, RespValue::Type::kInteger);
  EXPECT_EQ(len.integer, 0);
  RespValue get = c.command({"SLOWLOG", "GET"});
  ASSERT_EQ(get.type, RespValue::Type::kArray);
  EXPECT_TRUE(get.elems.empty());

  if (obs::kCompiledIn) {
    // Threshold 0 admits every sampled op; exhaustive sampling is set by
    // the fixture, so each SET/GET lands one entry.
    obs::Metrics::set_latency_enabled(true);
    obs::SlowLog::set_threshold_ns(0);
    c.set("k1", "v1");
    std::string v;
    c.get("k1", &v);

    len = c.command({"SLOWLOG", "LEN"});
    ASSERT_EQ(len.type, RespValue::Type::kInteger);
    EXPECT_GE(len.integer, 2);

    get = c.command({"SLOWLOG", "GET", "1"});
    ASSERT_EQ(get.type, RespValue::Type::kArray);
    ASSERT_EQ(get.elems.size(), 1u);
    const RespValue& e = get.elems[0];
    ASSERT_EQ(e.type, RespValue::Type::kArray);
    ASSERT_EQ(e.elems.size(), 6u);  // id, ts, latency, op, digest, shard
    EXPECT_EQ(e.elems[0].type, RespValue::Type::kInteger);
    EXPECT_EQ(e.elems[3].type, RespValue::Type::kBulk);
    EXPECT_EQ(e.elems[4].str.size(), 32u);  // 16 B digest as hex
  }

  EXPECT_EQ(c.command({"SLOWLOG", "RESET"}).type, RespValue::Type::kSimple);
  len = c.command({"SLOWLOG", "LEN"});
  EXPECT_EQ(len.integer, 0);

  EXPECT_TRUE(c.command({"SLOWLOG", "BOGUS"}).is_error());
  EXPECT_TRUE(c.command({"SLOWLOG", "GET", "-3"}).is_error());
}

TEST_F(ObsCmds, HotkeysReturnsHottestFirst) {
  ServerPack pack;
  Client c = pack.client();

  // One flooded key against background singles.
  std::string v;
  for (int i = 0; i < 200; ++i) c.get("hotkey", &v);
  for (int i = 0; i < 5; ++i) c.get("cold" + std::to_string(i), &v);

  RespValue hot = c.command({"HOTKEYS", "4"});
  ASSERT_EQ(hot.type, RespValue::Type::kArray);
  if (obs::kCompiledIn) {
    ASSERT_FALSE(hot.elems.empty());
    const RespValue& top = hot.elems[0];
    ASSERT_EQ(top.elems.size(), 2u);  // [digest, count]
    EXPECT_EQ(top.elems[0].str.size(), 32u);
    EXPECT_GE(top.elems[1].integer, 200);
    // Counts are non-increasing down the ranking.
    for (size_t i = 1; i < hot.elems.size(); ++i) {
      EXPECT_GE(hot.elems[i - 1].elems[1].integer,
                hot.elems[i].elems[1].integer);
    }
  } else {
    EXPECT_TRUE(hot.elems.empty());
  }

  EXPECT_TRUE(c.command({"HOTKEYS", "0"}).is_error());
  EXPECT_TRUE(c.command({"HOTKEYS", "9999"}).is_error());
}

TEST_F(ObsCmds, LatencyReportsWindowedPercentilesAndIdleZero) {
  ServerPack pack;
  Client c = pack.client();

  // Idle window first: every op row reads zero (no lifetime bleed).
  RespValue lat = c.command({"LATENCY"});
  ASSERT_EQ(lat.type, RespValue::Type::kArray);
  ASSERT_EQ(lat.elems.size(), size_t{obs::kOpCount});
  for (const RespValue& row : lat.elems) {
    ASSERT_EQ(row.elems.size(), 5u);  // op, count, p50, p99, p999
    EXPECT_EQ(row.elems[1].integer, 0);
    EXPECT_EQ(row.elems[3].integer, 0);
  }

  if (!obs::kCompiledIn) return;
  obs::Metrics::set_latency_enabled(true);
  std::string v;
  c.set("a", "1");
  for (int i = 0; i < 50; ++i) c.get("a", &v);
  obs::Windows::rotate();  // close the epoch the ops landed in

  lat = c.command({"LATENCY"});
  bool saw_get = false;
  for (const RespValue& row : lat.elems) {
    if (row.elems[0].str == "get") {
      saw_get = true;
      EXPECT_GE(row.elems[1].integer, 50);
      EXPECT_GT(row.elems[3].integer, 0);  // windowed p99
    }
  }
  EXPECT_TRUE(saw_get);
}

TEST_F(ObsCmds, MetricsReturnsPrometheusAndInfoStaysCompact) {
  ServerPack pack;
  Client c = pack.client();
  c.set("k", "v");
  std::string v;
  c.get("k", &v);

  RespValue m = c.command({"METRICS"});
  ASSERT_EQ(m.type, RespValue::Type::kBulk);
  EXPECT_NE(m.str.find("# TYPE hdnh_ops_total counter"), std::string::npos);
  if (obs::kCompiledIn) {
    EXPECT_NE(m.str.find("hdnh_window_seconds"), std::string::npos);
    EXPECT_NE(m.str.find("hdnh_slowlog_len"), std::string::npos);
  }

  // INFO no longer embeds the scrape — METRICS carries it.
  const std::string info = c.info();
  EXPECT_EQ(info.find("# TYPE hdnh_ops_total"), std::string::npos);
  EXPECT_NE(info.find("# Stats"), std::string::npos);

  // COMMAND advertises the new verbs.
  RespValue cmds = c.command({"COMMAND"});
  ASSERT_EQ(cmds.type, RespValue::Type::kArray);
  for (const char* verb : {"slowlog", "hotkeys", "latency", "metrics"}) {
    bool saw = false;
    for (const RespValue& e : cmds.elems) saw = saw || e.str == verb;
    EXPECT_TRUE(saw) << verb;
  }
}

}  // namespace
}  // namespace hdnh::net
