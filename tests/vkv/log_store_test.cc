// Segmented value log: Status-based appends, CRC-verified reads, per-thread
// heads, persisted directory reattach, torn-tail recovery, GC surface.
#include "vkv/log_store.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "nvm/pmem.h"

namespace hdnh::vkv {
namespace {

struct LogPack {
  explicit LogPack(uint64_t max_total = 0, uint64_t segment_bytes = 1 << 20)
      : pool(64ull << 20), alloc(pool),
        log(alloc, 0, make_opts(segment_bytes, max_total)) {}
  static LogStore::Options make_opts(uint64_t seg, uint64_t total) {
    LogStore::Options o;
    o.segment_bytes = seg;
    o.max_total_bytes = total;
    return o;
  }
  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  LogStore log;
};

Handle must_append(LogStore& log, std::string_view k, std::string_view v) {
  Handle h;
  EXPECT_TRUE(log.append(k, v, &h).ok());
  return h;
}

TEST(LogStore, AppendAndReadBack) {
  LogPack p;
  const Handle h = must_append(p.log, "key", "value-bytes");
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(h.klen, 3u);
  EXPECT_EQ(h.vlen, 11u);
  EXPECT_EQ(p.log.key_of(h), "key");
  EXPECT_EQ(p.log.value_of(h), "value-bytes");
  std::string_view k, v;
  ASSERT_TRUE(p.log.read(h, &k, &v));  // CRC-verified path
  EXPECT_EQ(k, "key");
  EXPECT_EQ(v, "value-bytes");
}

TEST(LogStore, EmptyKeyAndValue) {
  LogPack p;
  const Handle h = must_append(p.log, "", "");
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(p.log.key_of(h), "");
  EXPECT_EQ(p.log.value_of(h), "");
  std::string_view k, v;
  EXPECT_TRUE(p.log.read(h, &k, &v));
}

TEST(LogStore, RecordsAreIndependent) {
  LogPack p;
  std::vector<Handle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(must_append(p.log, "k" + std::to_string(i),
                                  std::string(i % 97, 'a' + i % 26)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(p.log.key_of(handles[i]), "k" + std::to_string(i));
    EXPECT_EQ(p.log.value_of(handles[i]), std::string(i % 97, 'a' + i % 26));
  }
}

TEST(LogStore, FullReturnsLogFull) {
  // Tiny byte budget: appends must surface kLogFull as a Status, not throw.
  LogPack p(/*max_total=*/64 * 1024, /*segment_bytes=*/16 * 1024);
  Handle first{};
  Status s = Status::Ok();
  int appended = 0;
  for (int i = 0; i < 10000; ++i) {
    Handle h;
    s = p.log.append("k", std::string(1000, 'x'), &h);
    if (!s.ok()) break;
    if (appended++ == 0) first = h;
  }
  ASSERT_EQ(s.code(), StatusCode::kLogFull);
  EXPECT_GT(appended, 0);
  // Earlier records still readable after the failed append.
  EXPECT_EQ(p.log.value_of(first), std::string(1000, 'x'));
}

TEST(LogStore, OversizeRecordRejected) {
  LogPack p;
  Handle h;
  EXPECT_EQ(p.log.append(std::string(LogStore::kMaxKey + 1, 'k'), "v", &h)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      p.log.append("k", std::string(LogStore::kMaxValue + 1, 'v'), &h).code(),
      StatusCode::kInvalidArgument);
}

TEST(LogStore, DeadByteAccounting) {
  LogPack p;
  const Handle a = must_append(p.log, "k1", std::string(100, 'v'));
  const Handle b = must_append(p.log, "k2", std::string(200, 'v'));
  EXPECT_EQ(p.log.dead_bytes(), 0u);
  p.log.note_dead(a);
  EXPECT_GT(p.log.dead_bytes(), 100u);
  p.log.note_dead(b);
  EXPECT_GT(p.log.dead_bytes(), 300u);
  EXPECT_LE(p.log.dead_bytes(), p.log.used_bytes());
}

TEST(LogStore, ReattachByOffsetPreservesRecords) {
  nvm::PmemPool pool(64ull << 20);
  nvm::PmemAllocator alloc(pool);
  uint64_t super_off;
  Handle h;
  {
    LogStore log(alloc, 0);
    h = must_append(log, "persist-me", "across-reattach");
    super_off = log.super_off();
  }
  LogStore again(alloc, super_off);
  EXPECT_EQ(again.key_of(h), "persist-me");
  EXPECT_EQ(again.value_of(h), "across-reattach");
  std::string_view k, v;
  EXPECT_TRUE(again.read(h, &k, &v));  // CRC survives reattach
  // Tail persisted: new appends land after the old record, not over it.
  const Handle h2 = must_append(again, "new", "entry");
  EXPECT_NE(h2.off, h.off);
  EXPECT_EQ(again.key_of(h), "persist-me");
}

TEST(LogStore, AttachToGarbageOffsetThrows) {
  nvm::PmemPool pool(8 << 20);
  nvm::PmemAllocator alloc(pool);
  const uint64_t junk = alloc.alloc(1024);
  EXPECT_THROW(LogStore(alloc, junk), std::runtime_error);
}

TEST(LogStore, SegmentsSealAndRotate) {
  // 4 KiB segments, ~1 KiB records: appends roll through many segments.
  LogPack p(/*max_total=*/0, /*segment_bytes=*/4 * 1024);
  std::vector<Handle> hs;
  for (int i = 0; i < 40; ++i) {
    hs.push_back(must_append(p.log, "k" + std::to_string(i),
                             std::string(1000, 'a' + i % 26)));
  }
  EXPECT_GT(p.log.segments_in_use(), 5u);
  for (int i = 0; i < 40; ++i) {
    std::string_view k, v;
    ASSERT_TRUE(p.log.read(hs[i], &k, &v)) << i;
    EXPECT_EQ(k, "k" + std::to_string(i));
  }
}

TEST(LogStore, GcRelocateAndFreeSegment) {
  LogPack p(/*max_total=*/0, /*segment_bytes=*/4 * 1024);
  std::vector<Handle> hs;
  for (int i = 0; i < 20; ++i) {
    hs.push_back(must_append(p.log, "k" + std::to_string(i),
                             std::string(1000, 'v')));
  }
  // Kill every record of the first sealed segment except one.
  for (int i = 0; i < 2; ++i) p.log.note_dead(hs[i]);
  const int victim = p.log.pick_victim(/*min_dead_fraction=*/0.25);
  ASSERT_GE(victim, 0);
  // Relocate survivors, then retire the victim.
  std::vector<std::string> live_keys;
  p.log.scan_segment(victim, [&](const Handle&, std::string_view k,
                                 std::string_view v) {
    Handle nh;
    ASSERT_TRUE(p.log.append(k, v, &nh).ok());
    live_keys.emplace_back(k);
    EXPECT_EQ(p.log.value_of(nh), v);
  });
  const uint64_t before = p.log.capacity_bytes();
  EXPECT_GT(p.log.free_segment(victim), 0u);
  EXPECT_LT(p.log.capacity_bytes(), before);
  // Untouched segments unaffected.
  EXPECT_EQ(p.log.key_of(hs[19]), "k19");
}

TEST(LogStore, ConcurrentAppendsGetDisjointRecords) {
  LogPack p;
  constexpr int kThreads = 4;
  constexpr int kPer = 2000;
  std::vector<std::vector<Handle>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        Handle h;
        ASSERT_TRUE(p.log
                        .append("t" + std::to_string(t) + "-" +
                                    std::to_string(i),
                                std::string(10 + (t * kPer + i) % 50, 'z'), &h)
                        .ok());
        got[t].push_back(h);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPer; ++i) {
      EXPECT_EQ(p.log.key_of(got[t][i]),
                "t" + std::to_string(t) + "-" + std::to_string(i));
    }
  }
}

TEST(LogStore, UnpersistedAppendLostOnCrashButTailSafe) {
  nvm::PmemPool pool(64ull << 20);
  pool.enable_crash_sim();
  nvm::PmemAllocator alloc(pool);
  LogStore log(alloc, 0);
  const uint64_t super_off = log.super_off();
  const Handle h = must_append(log, "durable", "yes");  // persisted by append
  pool.simulate_crash();

  LogStore again(alloc, super_off);
  EXPECT_EQ(again.key_of(h), "durable");
  EXPECT_EQ(again.value_of(h), "yes");
  // Post-crash appends must not overwrite the durable record.
  const Handle h2 = must_append(again, "after", "crash");
  EXPECT_NE(h2.off, h.off);
  EXPECT_EQ(again.key_of(h), "durable");
}

TEST(LogStore, TornFinalRecordDiscardedOnRecovery) {
  nvm::PmemPool pool(64ull << 20);
  pool.enable_crash_sim();
  nvm::PmemAllocator alloc(pool);
  LogStore log(alloc, 0);
  const uint64_t super_off = log.super_off();
  const Handle good = must_append(log, "good-key", "good-value");

  // Forge a torn record directly after the last acknowledged one: plausible
  // header and key bytes, garbage checksum — exactly what a crash mid-append
  // leaves when the header line hit media but the CRC computation didn't.
  struct {
    uint32_t crc;
    uint16_t klen;
    uint32_t vlen;
  } __attribute__((packed)) torn{0xDEADBEEFu, 4, 5};
  const uint64_t torn_off = good.off + sizeof(torn) + good.klen + good.vlen;
  char* dst = pool.to_ptr<char>(torn_off);
  std::memcpy(dst, &torn, sizeof(torn));
  std::memcpy(dst + sizeof(torn), "tornvalue", 9);
  pool.persist_fence(dst, sizeof(torn) + 9);
  pool.simulate_crash();

  // Recovery checksum-scans the active segment: the good record survives,
  // the torn one is discarded and its space is never resurfaced as data.
  LogStore again(alloc, super_off);
  std::string_view k, v;
  ASSERT_TRUE(again.read(good, &k, &v));
  EXPECT_EQ(k, "good-key");
  EXPECT_EQ(v, "good-value");
  Handle torn_h;
  torn_h.off = torn_off;
  torn_h.klen = 4;
  torn_h.vlen = 5;
  EXPECT_FALSE(again.read(torn_h, &k, &v));  // CRC rejects the torn bytes
  // New appends go *over* the discarded tail (space reclaimed, sealed
  // prefix intact) or into a fresh segment — either way the good record
  // stays readable and the log keeps accepting writes.
  const Handle h2 = must_append(again, "after-torn", "ok");
  EXPECT_EQ(again.key_of(h2), "after-torn");
  ASSERT_TRUE(again.read(good, &k, &v));
  EXPECT_EQ(v, "good-value");
}

TEST(LogStore, RecycledSegmentRejectsStaleHandles) {
  // A handle into a freed-and-reused segment must fail its CRC (salt mix),
  // not return the new occupant's bytes.
  LogPack p(/*max_total=*/0, /*segment_bytes=*/4 * 1024);
  std::vector<Handle> hs;
  for (int i = 0; i < 8; ++i) {
    hs.push_back(must_append(p.log, "k" + std::to_string(i),
                             std::string(1000, 'v')));
  }
  for (int i = 0; i < 3; ++i) p.log.note_dead(hs[i]);
  const int victim = p.log.pick_victim(0.5);
  ASSERT_GE(victim, 0);
  ASSERT_GT(p.log.free_segment(victim), 0u);
  // Refill until the freed slot is recycled with a fresh salt.
  for (int i = 0; i < 8; ++i) {
    must_append(p.log, "new" + std::to_string(i), std::string(1000, 'n'));
  }
  std::string_view k, v;
  EXPECT_FALSE(p.log.read(hs[0], &k, &v));
}

}  // namespace
}  // namespace hdnh::vkv
