#include "vkv/log_store.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "nvm/pmem.h"

namespace hdnh::vkv {
namespace {

struct LogPack {
  explicit LogPack(uint64_t log_bytes = 8 << 20)
      : pool(64ull << 20), alloc(pool), log(alloc, 0, log_bytes) {}
  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  LogStore log;
};

TEST(LogStore, AppendAndReadBack) {
  LogPack p;
  Handle h = p.log.append("key", "value-bytes");
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(p.log.key_of(h), "key");
  EXPECT_EQ(p.log.value_of(h), "value-bytes");
  EXPECT_EQ(h.klen, 3u);
  EXPECT_EQ(h.vlen, 11u);
}

TEST(LogStore, EmptyKeyAndValue) {
  LogPack p;
  Handle h = p.log.append("", "");
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(p.log.key_of(h), "");
  EXPECT_EQ(p.log.value_of(h), "");
}

TEST(LogStore, RecordsAreIndependent) {
  LogPack p;
  std::vector<Handle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(p.log.append("k" + std::to_string(i),
                                   std::string(i % 97, 'a' + i % 26)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(p.log.key_of(handles[i]), "k" + std::to_string(i));
    EXPECT_EQ(p.log.value_of(handles[i]),
              std::string(i % 97, 'a' + i % 26));
  }
}

TEST(LogStore, FullThrowsBadAlloc) {
  LogPack p(64 * 1024);
  EXPECT_THROW(
      {
        for (;;) p.log.append("k", std::string(1000, 'x'));
      },
      std::bad_alloc);
  // Earlier records still readable after the failed append.
  Handle h = p.log.append("tiny", "v");
  EXPECT_EQ(p.log.value_of(h), "v");
}

TEST(LogStore, OversizeRecordRejected) {
  LogPack p;
  EXPECT_THROW(p.log.append(std::string(LogStore::kMaxKey + 1, 'k'), "v"),
               std::invalid_argument);
}

TEST(LogStore, DeadByteAccounting) {
  LogPack p;
  Handle a = p.log.append("k1", std::string(100, 'v'));
  Handle b = p.log.append("k2", std::string(200, 'v'));
  EXPECT_EQ(p.log.dead_bytes(), 0u);
  p.log.note_dead(a);
  EXPECT_GT(p.log.dead_bytes(), 100u);
  p.log.note_dead(b);
  EXPECT_GT(p.log.dead_bytes(), 300u);
  EXPECT_LE(p.log.dead_bytes(), p.log.used_bytes());
}

TEST(LogStore, ReattachByOffsetPreservesRecords) {
  nvm::PmemPool pool(64ull << 20);
  nvm::PmemAllocator alloc(pool);
  uint64_t super_off;
  Handle h;
  {
    LogStore log(alloc, 0, 4 << 20);
    h = log.append("persist-me", "across-reattach");
    super_off = log.super_off();
  }
  LogStore again(alloc, super_off, 0);
  EXPECT_EQ(again.key_of(h), "persist-me");
  EXPECT_EQ(again.value_of(h), "across-reattach");
  // Tail persisted: new appends land after the old record.
  Handle h2 = again.append("new", "entry");
  EXPECT_GT(h2.off, h.off);
}

TEST(LogStore, AttachToGarbageOffsetThrows) {
  nvm::PmemPool pool(8 << 20);
  nvm::PmemAllocator alloc(pool);
  const uint64_t junk = alloc.alloc(1024);
  EXPECT_THROW(LogStore(alloc, junk, 0), std::runtime_error);
}

TEST(LogStore, ConcurrentAppendsGetDisjointRecords) {
  LogPack p(32 << 20);
  constexpr int kThreads = 4;
  constexpr int kPer = 2000;
  std::vector<std::vector<Handle>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        got[t].push_back(p.log.append(
            "t" + std::to_string(t) + "-" + std::to_string(i),
            std::string(10 + (t * kPer + i) % 50, 'z')));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPer; ++i) {
      EXPECT_EQ(p.log.key_of(got[t][i]),
                "t" + std::to_string(t) + "-" + std::to_string(i));
    }
  }
}

TEST(LogStore, UnpersistedAppendLostOnCrashButTailSafe) {
  nvm::PmemPool pool(64ull << 20);
  pool.enable_crash_sim();
  nvm::PmemAllocator alloc(pool);
  LogStore log(alloc, 0, 4 << 20);
  const uint64_t super_off = log.super_off();
  Handle h = log.append("durable", "yes");  // fully persisted by append()
  pool.simulate_crash();

  LogStore again(alloc, super_off, 0);
  EXPECT_EQ(again.key_of(h), "durable");
  EXPECT_EQ(again.value_of(h), "yes");
  // Post-crash appends must not overwrite the durable record.
  Handle h2 = again.append("after", "crash");
  EXPECT_GT(h2.off, h.off);
  EXPECT_EQ(again.key_of(h), "durable");
}

}  // namespace
}  // namespace hdnh::vkv
