// Concurrent use of VkvStore (inherits HDNH's per-key linearizability;
// the value log's append reservation is a CAS).
#include "vkv/vkv_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "nvm/pmem.h"

namespace hdnh::vkv {
namespace {

TEST(VkvConcurrency, DisjointWritersAllVisible) {
  nvm::PmemPool pool(1024ull << 20);
  nvm::PmemAllocator alloc(pool);
  VkvStore::Options opts;
  opts.expected_records = 1 << 15;
  opts.log_bytes = 256ull << 20;
  VkvStore store(alloc, opts);

  constexpr int kThreads = 4;
  constexpr int kPer = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-k" + std::to_string(i);
        ASSERT_TRUE(store.put(key, "value-" + key));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.size(), uint64_t{kThreads} * kPer);
  std::string v;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPer; ++i) {
      const std::string key =
          "t" + std::to_string(t) + "-k" + std::to_string(i);
      ASSERT_TRUE(store.get(key, &v)) << key;
      ASSERT_EQ(v, "value-" + key);
    }
  }
}

TEST(VkvConcurrency, ReadersSeeSomeCompleteValueDuringOverwrites) {
  nvm::PmemPool pool(1024ull << 20);
  nvm::PmemAllocator alloc(pool);
  VkvStore::Options opts;
  opts.log_bytes = 512ull << 20;
  VkvStore store(alloc, opts);
  store.put("hot", "v-0");

  std::set<std::string> legal;
  for (int i = 0; i < 512; ++i) legal.insert("v-" + std::to_string(i % 64));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      store.put("hot", "v-" + std::to_string(i++ % 64));
    }
  });
  std::string v;
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(store.get("hot", &v)) << i;
    ASSERT_TRUE(legal.count(v)) << "torn/corrupt value: " << v;
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(store.size(), 1u);
}

TEST(VkvConcurrency, MixedOpsOnSharedKeyspace) {
  nvm::PmemPool pool(1024ull << 20);
  nvm::PmemAllocator alloc(pool);
  VkvStore::Options opts;
  opts.log_bytes = 512ull << 20;
  VkvStore store(alloc, opts);

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      std::string v;
      for (int op = 0; op < 6000; ++op) {
        const std::string key = "k" + std::to_string(rng.next_below(500));
        switch (rng.next_below(3)) {
          case 0:
            store.put(key, key + "-payload-" + std::to_string(op));
            break;
          case 1:
            if (store.get(key, &v)) {
              // Any observed value must be for this key.
              ASSERT_EQ(v.rfind(key + "-payload-", 0), 0u) << v;
            }
            break;
          case 2:
            store.erase(key);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(store.index().check_integrity().ok());
}

}  // namespace
}  // namespace hdnh::vkv
