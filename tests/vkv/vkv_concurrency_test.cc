// VkvStore under concurrency: disjoint writers, readers racing overwrites,
// mixed ops on a shared keyspace, and — the interesting one — GC relocating
// and retiring segments while writers keep appending. Registered under the
// tsan label so the TSan preset exercises the epoch/stripe protocol.
#include "vkv/vkv_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "nvm/pmem.h"

namespace hdnh::vkv {
namespace {

std::string val_for(uint32_t writer, int i, size_t len) {
  std::string v = "w" + std::to_string(writer) + "-" + std::to_string(i) + "-";
  v.resize(len, static_cast<char>('a' + (writer + i) % 26));
  return v;
}

TEST(VkvConcurrency, DisjointWritersAllVisible) {
  nvm::PmemPool pool(1024ull << 20);
  nvm::PmemAllocator alloc(pool);
  VkvStore::Options opts;
  opts.expected_records = 1 << 15;
  opts.log_bytes = 256ull << 20;
  opts.shards = 4;
  VkvStore store(alloc, opts);

  constexpr int kThreads = 4;
  constexpr int kPer = 3000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-k" + std::to_string(i);
        if (!store.put(key, val_for(t, i, 40 + i % 200)).ok())
          failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(store.size(), uint64_t{kThreads} * kPer);
  std::string v;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPer; ++i) {
      const std::string key =
          "t" + std::to_string(t) + "-k" + std::to_string(i);
      ASSERT_TRUE(store.get(key, &v).ok()) << key;
      ASSERT_EQ(v, val_for(t, i, 40 + i % 200)) << key;
    }
  }
  EXPECT_TRUE(store.check_index_integrity());
}

TEST(VkvConcurrency, ReadersSeeSomeCompleteValueDuringOverwrites) {
  nvm::PmemPool pool(1024ull << 20);
  nvm::PmemAllocator alloc(pool);
  VkvStore::Options opts;
  opts.log_bytes = 512ull << 20;
  VkvStore store(alloc, opts);

  // One hot key overwritten with values from a known legal set; readers
  // must only ever observe a byte-exact member of that set (no torn or
  // stale-freed bytes). 700 B values keep every version in the log, not
  // inlined, so this exercises the handle read path.
  std::vector<std::string> versions;
  for (int i = 0; i < 64; ++i) versions.push_back(val_for(9, i, 700));
  const std::set<std::string> legal(versions.begin(), versions.end());
  ASSERT_TRUE(store.put("hot", versions[0]).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> put_failures{0};
  std::thread writer([&] {
    int i = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!store.put("hot", versions[i++ % 64]).ok())
        put_failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::string v;
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(store.get("hot", &v).ok()) << i;
    ASSERT_TRUE(legal.count(v)) << "torn/corrupt value at read " << i;
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(put_failures.load(), 0);
  EXPECT_EQ(store.size(), 1u);
}

TEST(VkvConcurrency, MixedOpsOnSharedKeyspace) {
  nvm::PmemPool pool(1024ull << 20);
  nvm::PmemAllocator alloc(pool);
  VkvStore::Options opts;
  opts.log_bytes = 512ull << 20;
  VkvStore store(alloc, opts);

  constexpr int kThreads = 4;
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      std::string v;
      for (int op = 0; op < 6000; ++op) {
        const std::string key = "k" + std::to_string(rng.next_below(500));
        switch (rng.next_below(4)) {
          case 0:
            if (!store.put(key, key + "-payload-" + std::to_string(op)).ok())
              violations.fetch_add(1, std::memory_order_relaxed);
            break;
          case 1: {
            const Status s = store.get(key, &v);
            if (s.ok()) {
              // Any observed value must belong to this key: either a put's
              // payload for this key or an insert's marker.
              if (v != "tiny" && v.rfind(key + "-payload-", 0) != 0)
                violations.fetch_add(1, std::memory_order_relaxed);
            } else if (s.code() != StatusCode::kNotFound) {
              violations.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case 2: {
            const Status s = store.erase(key);
            if (!s.ok() && s.code() != StatusCode::kNotFound)
              violations.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          case 3: {
            const Status s = store.insert(key, "tiny");
            if (!s.ok() && s.code() != StatusCode::kExists)
              violations.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_TRUE(store.check_index_integrity());
}

// The PR's acceptance test: writers keep appending while a GC thread
// relocates live records and retires segments under epoch reclamation.
// Small segments force constant seal/GC traffic.
TEST(VkvConcurrency, ConcurrentGcWhileWriting) {
  nvm::PmemPool pool(1ull << 30);
  nvm::PmemAllocator alloc(pool);
  VkvStore::Options opts;
  opts.expected_records = 1 << 15;
  opts.log_bytes = 256ull << 20;
  opts.segment_bytes = 64 * 1024;
  opts.auto_gc = true;
  VkvStore store(alloc, opts);

  constexpr int kWriters = 3;
  constexpr int kPerWriter = 4000;
  constexpr int kKeys = 300;  // heavy overwrite -> lots of dead bytes
  std::atomic<bool> writers_done{false};
  std::atomic<int> op_failures{0};
  std::atomic<uint64_t> reclaimed_total{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::string v;
      for (int i = 0; i < kPerWriter; ++i) {
        const std::string key = "k" + std::to_string((w * 7 + i) % kKeys);
        if (!store.put(key, val_for(w, i, 600)).ok())
          op_failures.fetch_add(1, std::memory_order_relaxed);
        // Read something back mid-churn: must be complete bytes even while
        // GC is moving records out from under us.
        if (i % 16 == 0) {
          const Status s = store.get("k" + std::to_string(i % kKeys), &v);
          if (!s.ok() && s.code() != StatusCode::kNotFound)
            op_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread gc_thread([&] {
    while (!writers_done.load(std::memory_order_acquire)) {
      reclaimed_total.fetch_add(store.gc(4, 0.2), std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });
  for (auto& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  gc_thread.join();

  EXPECT_EQ(op_failures.load(), 0);
  // With 600 B values churning over 300 keys in 64 KiB segments, GC had
  // plenty of mostly-dead segments to reclaim.
  EXPECT_GT(reclaimed_total.load(), 0u);
  EXPECT_TRUE(store.check_index_integrity());
  EXPECT_EQ(store.size(), uint64_t{kKeys});

  // Final state: every key holds a byte-complete value from some writer.
  std::string v;
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(store.get("k" + std::to_string(k), &v).ok()) << k;
    ASSERT_EQ(v.size(), 600u) << k;
  }
  // And the log is still writable after all that GC.
  ASSERT_TRUE(store.put("post", std::string(600, 'p')).ok());
}

}  // namespace
}  // namespace hdnh::vkv
