// Stride-sampled crash-point sweep over the value-log scenarios
// (tools/hdnh_crashpoint runs the exhaustive version). Each sampled point
// injects a crash at one tagged vkv durability event (append persist, seal,
// GC relocate/retire), reattaches the store, and checks the variable-length
// oracle: every key byte-exact against the fold-forward model, torn records
// never surfacing as values. A failure prints the (scenario, event_index,
// seed) triple, which reproduces standalone via
//   hdnh_crashpoint --scenario=<name> --seed=<seed> --only=<event_index>
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "testing/crash_scenarios.h"

namespace hdnh::crashtest {
namespace {

class VkvCrashpointTest : public ::testing::TestWithParam<const char*> {};

void sweep(const char* name, uint64_t seed, uint64_t samples,
           uint64_t evict_lines) {
  const VkvScenario* s = find_vkv_scenario(name);
  ASSERT_NE(s, nullptr) << name;
  const uint64_t n = probe_vkv_events(*s, seed);
  ASSERT_GT(n, 0u) << "scenario emitted no vkv durability events";
  const uint64_t stride = std::max<uint64_t>(1, n / samples);
  for (uint64_t k = 0; k < n; k += stride) {
    const PointResult r = run_vkv_crash_point(*s, seed, k, evict_lines);
    EXPECT_TRUE(r.crashed) << "plan never fired at k=" << k << " (of " << n
                           << " probed events)";
    EXPECT_EQ(r.failure, "")
        << "scenario=" << s->name << " event_index=" << k << " seed=" << seed;
    if (!r.failure.empty()) break;  // one triple is enough to debug
  }
}

TEST_P(VkvCrashpointTest, StridedSweepPasses) {
  sweep(GetParam(), /*seed=*/1, /*samples=*/24, /*evict_lines=*/0);
}

// Adversarial random-line evictions (legal spontaneous writebacks) every
// 7th event and at the crash itself: an un-fenced record header or segment
// directory entry reaching media early must still never decode as data.
TEST_P(VkvCrashpointTest, EvictionBurstSweepPasses) {
  sweep(GetParam(), /*seed=*/3, /*samples=*/10, /*evict_lines=*/8);
}

// Crash points at or past the event count never fire: the workload runs to
// completion and the oracle holds on the live store.
TEST_P(VkvCrashpointTest, PastEndPointDoesNotCrash) {
  const VkvScenario* s = find_vkv_scenario(GetParam());
  ASSERT_NE(s, nullptr);
  const uint64_t n = probe_vkv_events(*s, 1);
  const PointResult r = run_vkv_crash_point(*s, 1, n, 0);
  EXPECT_FALSE(r.crashed);
  EXPECT_EQ(r.failure, "");
}

INSTANTIATE_TEST_SUITE_P(
    All, VkvCrashpointTest,
    ::testing::Values("vkv_append", "vkv_seal", "vkv_gc", "vkv_chunked"),
    [](const ::testing::TestParamInfo<const char*>& pi) {
      return std::string(pi.param);
    });

}  // namespace
}  // namespace hdnh::crashtest
