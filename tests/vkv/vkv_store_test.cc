// VkvStore: variable-length KV on the HDNH index + segmented value log.
#include "vkv/vkv_store.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "nvm/pmem.h"

namespace hdnh::vkv {
namespace {

struct VkvPack {
  explicit VkvPack(uint64_t pool_bytes = 512ull << 20,
                   VkvStore::Options opts = {}) {
    pool = std::make_unique<nvm::PmemPool>(pool_bytes);
    alloc = std::make_unique<nvm::PmemAllocator>(*pool);
    store = std::make_unique<VkvStore>(*alloc, opts);
  }
  std::unique_ptr<nvm::PmemPool> pool;
  std::unique_ptr<nvm::PmemAllocator> alloc;
  std::unique_ptr<VkvStore> store;
};

std::string big_value(size_t n, char seed) {
  std::string s(n, ' ');
  for (size_t i = 0; i < n; ++i) s[i] = static_cast<char>(seed + i % 23);
  return s;
}

TEST(VkvStore, PutGetRoundTripVariableSizes) {
  VkvPack p;
  ASSERT_TRUE(p.store->put("alpha", "1").ok());
  ASSERT_TRUE(p.store->put("a-much-longer-key-than-16-bytes-indeed",
                           big_value(10000, 'x'))
                  .ok());
  ASSERT_TRUE(p.store->put("", "empty-key-record").ok());
  ASSERT_TRUE(p.store->put("empty-value", "").ok());

  std::string v;
  ASSERT_TRUE(p.store->get("alpha", &v).ok());
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(p.store->get("a-much-longer-key-than-16-bytes-indeed", &v).ok());
  EXPECT_EQ(v, big_value(10000, 'x'));
  ASSERT_TRUE(p.store->get("", &v).ok());
  EXPECT_EQ(v, "empty-key-record");
  ASSERT_TRUE(p.store->get("empty-value", &v).ok());
  EXPECT_EQ(v, "");
  EXPECT_EQ(p.store->get("absent", &v).code(), StatusCode::kNotFound);
  EXPECT_EQ(p.store->size(), 4u);
}

TEST(VkvStore, SmallValuesAreInlinedInTheIndexRecord) {
  VkvPack p;
  // Up to kInlineMax (14) bytes: the paper's exact read path, no log bytes.
  for (int i = 0; i <= static_cast<int>(VkvStore::kInlineMax); ++i) {
    ASSERT_TRUE(
        p.store->put("inline-" + std::to_string(i), std::string(i, 'i')).ok());
  }
  EXPECT_EQ(p.store->log().used_bytes(), 0u);

  std::string v;
  for (int i = 0; i <= static_cast<int>(VkvStore::kInlineMax); ++i) {
    ASSERT_TRUE(p.store->get("inline-" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ(v, std::string(i, 'i'));
  }
  // One byte past the inline bound goes to the log.
  ASSERT_TRUE(
      p.store->put("spill", std::string(VkvStore::kInlineMax + 1, 's')).ok());
  EXPECT_GT(p.store->log().used_bytes(), 0u);
  ASSERT_TRUE(p.store->get("spill", &v).ok());
  EXPECT_EQ(v, std::string(VkvStore::kInlineMax + 1, 's'));
}

TEST(VkvStore, PutIsUpsertInsertIsNot) {
  VkvPack p;
  EXPECT_TRUE(p.store->put("k", "v1-much-longer-than-inline").ok());
  EXPECT_TRUE(p.store->put("k", "v2-longer-than-before-too").ok());
  std::string v;
  ASSERT_TRUE(p.store->get("k", &v).ok());
  EXPECT_EQ(v, "v2-longer-than-before-too");
  EXPECT_EQ(p.store->size(), 1u);
  // The superseded record is accounted dead.
  EXPECT_LT(p.store->log_utilization(), 1.0);
  // insert refuses to overwrite.
  EXPECT_EQ(p.store->insert("k", "v3").code(), StatusCode::kExists);
  ASSERT_TRUE(p.store->get("k", &v).ok());
  EXPECT_EQ(v, "v2-longer-than-before-too");
  EXPECT_TRUE(p.store->insert("fresh", "v").ok());
}

TEST(VkvStore, EraseSemantics) {
  VkvPack p;
  EXPECT_EQ(p.store->erase("k").code(), StatusCode::kNotFound);
  ASSERT_TRUE(p.store->put("k", "v").ok());
  EXPECT_TRUE(p.store->erase("k").ok());
  std::string v;
  EXPECT_EQ(p.store->get("k", &v).code(), StatusCode::kNotFound);
  EXPECT_EQ(p.store->erase("k").code(), StatusCode::kNotFound);
  EXPECT_EQ(p.store->size(), 0u);
}

TEST(VkvStore, MultigetMixedInlineAndLogged) {
  VkvPack p;
  ASSERT_TRUE(p.store->put("tiny", "v").ok());
  ASSERT_TRUE(p.store->put("big", big_value(5000, 'b')).ok());
  const std::string_view keys[] = {"tiny", "missing", "big"};
  std::string vals[3];
  uint8_t found[3];
  EXPECT_EQ(p.store->multiget(keys, 3, vals, found), 2u);
  EXPECT_TRUE(found[0]);
  EXPECT_FALSE(found[1]);
  EXPECT_TRUE(found[2]);
  EXPECT_EQ(vals[0], "v");
  EXPECT_EQ(vals[2], big_value(5000, 'b'));
}

TEST(VkvStore, ManyRecordsWithChurn) {
  VkvPack p;
  std::map<std::string, std::string> model;
  Rng rng(3);
  for (int op = 0; op < 20000; ++op) {
    const std::string key = "key-" + std::to_string(rng.next_below(2000));
    switch (rng.next_below(3)) {
      case 0: {
        const std::string val = big_value(1 + rng.next_below(500),
                                          static_cast<char>('a' + op % 20));
        ASSERT_TRUE(p.store->put(key, val).ok());
        model[key] = val;
        break;
      }
      case 1: {
        std::string v;
        const bool hit = p.store->get(key, &v).ok();
        ASSERT_EQ(hit, model.count(key) == 1) << key;
        if (hit) {
          ASSERT_EQ(v, model[key]);
        }
        break;
      }
      case 2:
        ASSERT_EQ(p.store->erase(key).ok(), model.erase(key) == 1);
        break;
    }
  }
  EXPECT_EQ(p.store->size(), model.size());
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(p.store->get(k, &got).ok()) << k;
    ASSERT_EQ(got, v) << k;
  }
}

TEST(VkvStore, GcReclaimsDeadBytes) {
  VkvStore::Options opts;
  opts.log_bytes = 8ull << 20;
  opts.segment_bytes = 256 * 1024;
  opts.auto_gc = false;
  VkvPack p(512ull << 20, opts);
  // Overwrite the same keys repeatedly: mostly dead bytes.
  for (int round = 0; round < 20; ++round) {
    for (int k = 0; k < 100; ++k) {
      ASSERT_TRUE(p.store
                      ->put("key-" + std::to_string(k),
                            big_value(1000, static_cast<char>('A' + round)))
                      .ok());
    }
  }
  const double before = p.store->log_utilization();
  EXPECT_LT(before, 0.2);
  const uint64_t reclaimed = p.store->compact();
  EXPECT_GT(reclaimed, 0u);
  // All sealed segments are clean afterwards; only the active segment may
  // still carry dead bytes (concurrent GC never relocates the open head,
  // unlike the quiescent compact() this replaced).
  EXPECT_GT(p.store->log_utilization(), 0.4);
  EXPECT_GT(p.store->log_utilization(), 4 * before);

  // Every record survives with its latest value.
  std::string v;
  for (int k = 0; k < 100; ++k) {
    ASSERT_TRUE(p.store->get("key-" + std::to_string(k), &v).ok()) << k;
    ASSERT_EQ(v, big_value(1000, static_cast<char>('A' + 19)));
  }
  // And the store continues to accept writes afterwards.
  ASSERT_TRUE(p.store->put("post-compact", "ok-and-long-enough-to-log").ok());
  ASSERT_TRUE(p.store->get("post-compact", &v).ok());
}

TEST(VkvStore, LogFullStatusAndGcRecovers) {
  VkvStore::Options opts;
  opts.log_bytes = 1 << 20;
  opts.segment_bytes = 64 * 1024;
  opts.auto_gc = false;  // surface kLogFull instead of self-healing
  VkvPack p(256ull << 20, opts);
  Status s = Status::Ok();
  for (int i = 0; i < 100000 && s.ok(); ++i) {
    s = p.store->put("k", big_value(4000, static_cast<char>(' ' + i % 90)));
  }
  ASSERT_EQ(s.code(), StatusCode::kLogFull);
  // Almost everything is dead (one live record): GC frees space.
  EXPECT_GT(p.store->gc(LogStore::kMaxSegments, 0.0), 0u);
  ASSERT_TRUE(p.store->put("k2", big_value(100, 'f')).ok());
  std::string v;
  ASSERT_TRUE(p.store->get("k", &v).ok());  // latest successful put survived
  ASSERT_TRUE(p.store->get("k2", &v).ok());
}

TEST(VkvStore, AutoGcMasksLogFull) {
  VkvStore::Options opts;
  opts.log_bytes = 1 << 20;
  opts.segment_bytes = 64 * 1024;
  opts.auto_gc = true;
  VkvPack p(256ull << 20, opts);
  // Far more churn than the log holds: every put must still succeed.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        p.store->put("k", big_value(4000, static_cast<char>(' ' + i % 90)))
            .ok())
        << i;
  }
  std::string v;
  ASSERT_TRUE(p.store->get("k", &v).ok());
  EXPECT_EQ(v, big_value(4000, static_cast<char>(' ' + 1999 % 90)));
}

TEST(VkvStore, SurvivesReattachWithRecovery) {
  nvm::PmemPool pool(512ull << 20);
  nvm::PmemAllocator alloc(pool);
  {
    VkvStore store(alloc);
    for (int k = 0; k < 500; ++k) {
      ASSERT_TRUE(
          store.put("key-" + std::to_string(k), big_value(100 + k, 'r')).ok());
    }
    ASSERT_TRUE(store.erase("key-7").ok());
  }
  VkvStore again(alloc);
  EXPECT_EQ(again.size(), 499u);
  std::string v;
  for (int k = 0; k < 500; ++k) {
    const std::string key = "key-" + std::to_string(k);
    if (k == 7) {
      EXPECT_EQ(again.get(key, &v).code(), StatusCode::kNotFound);
    } else {
      ASSERT_TRUE(again.get(key, &v).ok()) << k;
      ASSERT_EQ(v, big_value(100 + k, 'r'));
    }
  }
  // Dead-byte accounting was rebuilt: GC still functions after reattach.
  for (int k = 0; k < 500; ++k) {
    ASSERT_TRUE(
        again.put("key-" + std::to_string(k), big_value(100, 'n')).ok());
  }
  EXPECT_GT(again.compact(), 0u);
}

TEST(VkvStore, CrashAfterPutsIsDurable) {
  nvm::PmemPool pool(512ull << 20);
  pool.enable_crash_sim();
  nvm::PmemAllocator alloc(pool);
  auto* store = new VkvStore(alloc);
  for (int k = 0; k < 300; ++k) {
    ASSERT_TRUE(
        store->put("key-" + std::to_string(k), big_value(64, 'c')).ok());
  }
  pool.simulate_crash();
  store->abandon_after_crash();
  delete store;

  VkvStore recovered(alloc);
  EXPECT_EQ(recovered.size(), 300u);
  std::string v;
  for (int k = 0; k < 300; ++k) {
    ASSERT_TRUE(recovered.get("key-" + std::to_string(k), &v).ok()) << k;
    ASSERT_EQ(v, big_value(64, 'c'));
  }
  // New appends continue beyond the persisted tail (no overwrites).
  ASSERT_TRUE(recovered.put("after-crash", "yes").ok());
  ASSERT_TRUE(recovered.get("after-crash", &v).ok());
}

TEST(VkvStore, RecordSizeLimitsEnforced) {
  VkvPack p;
  EXPECT_EQ(p.store->put(std::string(LogStore::kMaxKey + 1, 'k'), "v").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      p.store->put("k", std::string(LogStore::kMaxValue + 1, 'v')).code(),
      StatusCode::kInvalidArgument);
  EXPECT_TRUE(p.store->put("k", big_value(1 << 20, 'v')).ok());
  EXPECT_EQ(p.store->max_key_len(), LogStore::kMaxKey);
  EXPECT_EQ(p.store->max_value_len(), LogStore::kMaxValue);
}

TEST(VkvStore, ShardedIndexRoundTripAndReattach) {
  nvm::PmemPool pool(512ull << 20);
  nvm::PmemAllocator alloc(pool);
  VkvStore::Options opts;
  opts.shards = 4;
  {
    VkvStore store(alloc, opts);
    EXPECT_NE(std::string(store.name()).find("@4"), std::string::npos);
    for (int k = 0; k < 2000; ++k) {
      ASSERT_TRUE(
          store.put("key-" + std::to_string(k), big_value(50 + k % 100, 's'))
              .ok());
    }
  }
  VkvStore again(alloc, opts);
  EXPECT_EQ(again.size(), 2000u);
  std::string v;
  for (int k = 0; k < 2000; ++k) {
    ASSERT_TRUE(again.get("key-" + std::to_string(k), &v).ok()) << k;
    ASSERT_EQ(v, big_value(50 + k % 100, 's'));
  }
}

}  // namespace
}  // namespace hdnh::vkv
