// VkvStore: variable-length KV on the HDNH index + value log.
#include "vkv/vkv_store.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "nvm/pmem.h"

namespace hdnh::vkv {
namespace {

struct VkvPack {
  explicit VkvPack(uint64_t pool_bytes = 512ull << 20,
                   VkvStore::Options opts = {}) {
    pool = std::make_unique<nvm::PmemPool>(pool_bytes);
    alloc = std::make_unique<nvm::PmemAllocator>(*pool);
    store = std::make_unique<VkvStore>(*alloc, opts);
  }
  std::unique_ptr<nvm::PmemPool> pool;
  std::unique_ptr<nvm::PmemAllocator> alloc;
  std::unique_ptr<VkvStore> store;
};

std::string big_value(size_t n, char seed) {
  std::string s(n, ' ');
  for (size_t i = 0; i < n; ++i) s[i] = static_cast<char>(seed + i % 23);
  return s;
}

TEST(VkvStore, PutGetRoundTripVariableSizes) {
  VkvPack p;
  ASSERT_TRUE(p.store->put("alpha", "1"));
  ASSERT_TRUE(p.store->put("a-much-longer-key-than-16-bytes-indeed",
                           big_value(10000, 'x')));
  ASSERT_TRUE(p.store->put("", "empty-key-record"));
  ASSERT_TRUE(p.store->put("empty-value", ""));

  std::string v;
  ASSERT_TRUE(p.store->get("alpha", &v));
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(p.store->get("a-much-longer-key-than-16-bytes-indeed", &v));
  EXPECT_EQ(v, big_value(10000, 'x'));
  ASSERT_TRUE(p.store->get("", &v));
  EXPECT_EQ(v, "empty-key-record");
  ASSERT_TRUE(p.store->get("empty-value", &v));
  EXPECT_EQ(v, "");
  EXPECT_FALSE(p.store->get("absent", &v));
  EXPECT_EQ(p.store->size(), 4u);
}

TEST(VkvStore, PutIsUpsert) {
  VkvPack p;
  EXPECT_TRUE(p.store->put("k", "v1"));
  EXPECT_FALSE(p.store->put("k", "v2-longer-than-before"));
  std::string v;
  ASSERT_TRUE(p.store->get("k", &v));
  EXPECT_EQ(v, "v2-longer-than-before");
  EXPECT_EQ(p.store->size(), 1u);
  // The superseded record is accounted dead.
  EXPECT_LT(p.store->log_utilization(), 1.0);
}

TEST(VkvStore, EraseSemantics) {
  VkvPack p;
  EXPECT_FALSE(p.store->erase("k"));
  p.store->put("k", "v");
  EXPECT_TRUE(p.store->erase("k"));
  std::string v;
  EXPECT_FALSE(p.store->get("k", &v));
  EXPECT_FALSE(p.store->erase("k"));
  EXPECT_EQ(p.store->size(), 0u);
}

TEST(VkvStore, ManyRecordsWithChurn) {
  VkvPack p;
  std::map<std::string, std::string> model;
  Rng rng(3);
  for (int op = 0; op < 20000; ++op) {
    const std::string key = "key-" + std::to_string(rng.next_below(2000));
    switch (rng.next_below(3)) {
      case 0: {
        const std::string val = big_value(1 + rng.next_below(500),
                                          static_cast<char>('a' + op % 20));
        p.store->put(key, val);
        model[key] = val;
        break;
      }
      case 1: {
        std::string v;
        const bool hit = p.store->get(key, &v);
        ASSERT_EQ(hit, model.count(key) == 1) << key;
        if (hit) ASSERT_EQ(v, model[key]);
        break;
      }
      case 2:
        ASSERT_EQ(p.store->erase(key), model.erase(key) == 1);
        break;
    }
  }
  EXPECT_EQ(p.store->size(), model.size());
  for (const auto& [k, v] : model) {
    std::string got;
    ASSERT_TRUE(p.store->get(k, &got)) << k;
    ASSERT_EQ(got, v) << k;
  }
}

TEST(VkvStore, CompactionReclaimsDeadBytes) {
  VkvStore::Options opts;
  opts.log_bytes = 8ull << 20;
  VkvPack p(512ull << 20, opts);
  // Overwrite the same keys repeatedly: mostly dead bytes.
  for (int round = 0; round < 20; ++round) {
    for (int k = 0; k < 100; ++k) {
      p.store->put("key-" + std::to_string(k),
                   big_value(1000, static_cast<char>('A' + round)));
    }
  }
  EXPECT_LT(p.store->log_utilization(), 0.2);
  const uint64_t used_before = p.store->log().used_bytes();
  const uint64_t reclaimed = p.store->compact();
  EXPECT_GT(reclaimed, used_before / 2);
  EXPECT_GT(p.store->log_utilization(), 0.99);

  // Every record survives with its latest value.
  std::string v;
  for (int k = 0; k < 100; ++k) {
    ASSERT_TRUE(p.store->get("key-" + std::to_string(k), &v)) << k;
    ASSERT_EQ(v, big_value(1000, static_cast<char>('A' + 19)));
  }
  // And the store continues to accept writes after the swap.
  ASSERT_TRUE(p.store->put("post-compact", "ok"));
  ASSERT_TRUE(p.store->get("post-compact", &v));
}

TEST(VkvStore, LogFullThrowsAndCompactionRecovers) {
  VkvStore::Options opts;
  opts.log_bytes = 1 << 20;
  VkvPack p(256ull << 20, opts);
  // Fill with overwrites of one key until the log bursts.
  bool threw = false;
  try {
    for (int i = 0; i < 100000; ++i) {
      p.store->put("k", big_value(4000, static_cast<char>(i % 90)));
    }
  } catch (const std::bad_alloc&) {
    threw = true;
  }
  ASSERT_TRUE(threw);
  // Almost everything is dead (one live record): compaction frees space.
  p.store->compact();
  ASSERT_TRUE(p.store->put("k2", "fits-now"));
  std::string v;
  ASSERT_TRUE(p.store->get("k", &v));  // latest successful put survived
  ASSERT_TRUE(p.store->get("k2", &v));
}

TEST(VkvStore, SurvivesReattachWithRecovery) {
  nvm::PmemPool pool(512ull << 20);
  nvm::PmemAllocator alloc(pool);
  {
    VkvStore store(alloc);
    for (int k = 0; k < 500; ++k) {
      store.put("key-" + std::to_string(k), big_value(100 + k, 'r'));
    }
    store.erase("key-7");
  }
  VkvStore again(alloc);
  EXPECT_EQ(again.size(), 499u);
  std::string v;
  for (int k = 0; k < 500; ++k) {
    const std::string key = "key-" + std::to_string(k);
    if (k == 7) {
      EXPECT_FALSE(again.get(key, &v));
    } else {
      ASSERT_TRUE(again.get(key, &v)) << k;
      ASSERT_EQ(v, big_value(100 + k, 'r'));
    }
  }
}

TEST(VkvStore, CrashAfterPutsIsDurable) {
  nvm::PmemPool pool(512ull << 20);
  pool.enable_crash_sim();
  nvm::PmemAllocator alloc(pool);
  auto* store = new VkvStore(alloc);
  for (int k = 0; k < 300; ++k) {
    store->put("key-" + std::to_string(k), big_value(64, 'c'));
  }
  pool.simulate_crash();
  (void)store;  // crashed process: destructor never runs

  VkvStore recovered(alloc);
  EXPECT_EQ(recovered.size(), 300u);
  std::string v;
  for (int k = 0; k < 300; ++k) {
    ASSERT_TRUE(recovered.get("key-" + std::to_string(k), &v)) << k;
    ASSERT_EQ(v, big_value(64, 'c'));
  }
  // New appends continue beyond the persisted tail (no overwrites).
  ASSERT_TRUE(recovered.put("after-crash", "yes"));
  ASSERT_TRUE(recovered.get("after-crash", &v));
}

TEST(VkvStore, RecordSizeLimitsEnforced) {
  VkvPack p;
  EXPECT_THROW(p.store->put(std::string(LogStore::kMaxKey + 1, 'k'), "v"),
               std::invalid_argument);
  EXPECT_NO_THROW(p.store->put("k", big_value(1 << 20, 'v')));
}

}  // namespace
}  // namespace hdnh::vkv
