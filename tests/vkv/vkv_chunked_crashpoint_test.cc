// Crash-point coverage specific to the chunked allocator under the value
// log (the vkv_chunked scenario: 4 KiB segments over 4 KiB chunks, so every
// segment activation CAS-claims a chunk from the persisted chunk table).
// Beyond the strided sweep shared with the other vkv scenarios, this file
// checks the chunk-table invariants across the crash:
//   - the rebuilt table never hands out space the rolled-back image still
//     references (oracle would see torn values otherwise);
//   - a *second* crash during the post-recovery workload — while the store
//     is running on a freshly rebuilt chunk table — recovers just as
//     cleanly (the rebuild itself leaves no half-state behind);
//   - claimed-chunk accounting after reattach matches the persisted table.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "nvm/fault.h"
#include "testing/crash_scenarios.h"

namespace hdnh::crashtest {
namespace {

const VkvScenario& chunked_scenario() {
  const VkvScenario* s = find_vkv_scenario("vkv_chunked");
  EXPECT_NE(s, nullptr);
  return *s;
}

TEST(VkvChunkedCrashpoint, StridedSweepEveryPhase) {
  // Denser than the shared suite: the chunk-claim persists are a small
  // fraction of the event stream and a coarse stride can skip them all.
  const VkvScenario& s = chunked_scenario();
  const uint64_t seed = 11;
  const uint64_t n = probe_vkv_events(s, seed);
  ASSERT_GT(n, 0u);
  const uint64_t stride = std::max<uint64_t>(1, n / 48);
  for (uint64_t k = 0; k < n; k += stride) {
    const PointResult r = run_vkv_crash_point(s, seed, k, 0);
    EXPECT_TRUE(r.crashed) << "k=" << k;
    ASSERT_EQ(r.failure, "")
        << "scenario=vkv_chunked event_index=" << k << " seed=" << seed;
  }
}

TEST(VkvChunkedCrashpoint, ChunkAccountingMatchesTableAfterCrash) {
  const VkvScenario& s = chunked_scenario();
  const uint64_t seed = 5;
  const uint64_t n = probe_vkv_events(s, seed);
  ASSERT_GT(n, 0u);
  for (uint64_t k = 0; k < n; k += std::max<uint64_t>(1, n / 12)) {
    VkvScenarioEnv env = make_vkv_env(s, seed);
    nvm::FaultPlan plan;
    plan.crash_at = k;
    plan.mask = s.mask;
    plan.seed = seed;
    env.pool->set_fault_plan(&plan);
    try {
      s.ops(env, seed);
    } catch (const nvm::InjectedCrash&) {
    }
    env.pool->set_fault_plan(nullptr);
    env.crash_reattach();

    ASSERT_TRUE(env.alloc->chunked()) << "attach lost chunked mode, k=" << k;
    nvm::PmemAllocator::ChunkStats cs;
    ASSERT_TRUE(env.alloc->chunk_stats(&cs));
    uint64_t claimed = 0;
    for (uint64_t i = 0; i < cs.chunk_count; ++i) {
      claimed += env.alloc->chunk_claimed(i) ? 1 : 0;
    }
    EXPECT_EQ(claimed, cs.claimed) << "k=" << k;
    // The recovered store's segments all live in claimed chunks: no
    // directory entry may point into a chunk the table says is free.
    EXPECT_EQ(check_vkv_oracle(env), "") << "k=" << k;
  }
}

TEST(VkvChunkedCrashpoint, DoubleCrashOnRebuiltTable) {
  // Crash once mid-workload, recover (chunk table rebuilt from media),
  // then crash again during a fresh armed workload on the rebuilt table,
  // and recover again. Both recoveries must satisfy the oracle — this is
  // the "crash while running on a mid-rebuilt table" coverage: any
  // half-state the first rebuild left behind becomes a durability hole
  // under the second crash.
  const VkvScenario& s = chunked_scenario();
  const uint64_t seed = 23;
  const uint64_t n = probe_vkv_events(s, seed);
  ASSERT_GT(n, 8u);

  for (const uint64_t k1 : {n / 5, n / 2, n - 2}) {
    VkvScenarioEnv env = make_vkv_env(s, seed);
    nvm::FaultPlan plan1;
    plan1.crash_at = k1;
    plan1.mask = s.mask;
    plan1.seed = seed;
    env.pool->set_fault_plan(&plan1);
    try {
      s.ops(env, seed);
    } catch (const nvm::InjectedCrash&) {
    }
    env.pool->set_fault_plan(nullptr);
    env.crash_reattach();
    ASSERT_EQ(check_vkv_oracle(env), "") << "first crash k1=" << k1;

    // Second armed stage over the recovered store: more seal-heavy puts,
    // claiming fresh chunks from the rebuilt table.
    nvm::FaultPlan plan2;
    plan2.crash_at = 6;  // early: lands in the first few claims/appends
    plan2.mask = s.mask;
    plan2.seed = seed + 1;
    env.pool->set_fault_plan(&plan2);
    bool crashed2 = false;
    try {
      for (uint64_t i = 0; i < 20; ++i) {
        env.put("again_" + std::to_string(i), std::string(700, 'z'));
      }
    } catch (const nvm::InjectedCrash&) {
      crashed2 = true;
    }
    env.pool->set_fault_plan(nullptr);
    ASSERT_TRUE(crashed2) << "second plan never fired, k1=" << k1;
    env.crash_reattach();
    EXPECT_EQ(check_vkv_oracle(env), "") << "second crash after k1=" << k1;
  }
}

}  // namespace
}  // namespace hdnh::crashtest
