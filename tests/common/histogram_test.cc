#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hdnh {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
}

TEST(Histogram, PercentilesWithinResolution) {
  Histogram h;
  for (uint64_t v = 0; v < 10000; ++v) h.record(v);
  // ~1.6% bucket resolution.
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 5000, 5000 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.9)), 9000, 9000 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.99)), 9900, 9900 * 0.05);
  EXPECT_EQ(h.percentile(0.0), h.min());
  EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(Histogram, PercentileMonotone) {
  Histogram h;
  Rng r(5);
  for (int i = 0; i < 100000; ++i) h.record(r.next_below(1000000) + 1);
  uint64_t prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const uint64_t v = h.percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(Histogram, LargeValuesDoNotOverflowIndex) {
  Histogram h;
  h.record(UINT64_MAX);
  h.record(1ULL << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST(Histogram, CdfMonotoneAndEndsAtOne) {
  Histogram h;
  Rng r(9);
  for (int i = 0; i < 50000; ++i) h.record(r.next_below(100000));
  auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  double prev_frac = 0;
  uint64_t prev_val = 0;
  for (auto& [val, frac] : cdf) {
    EXPECT_GE(val, prev_val);
    EXPECT_GT(frac, prev_frac);
    prev_val = val;
    prev_frac = frac;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, SingleSamplePercentilesAllCollapse) {
  Histogram h;
  h.record(777);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 777u);
  EXPECT_EQ(h.max(), 777u);
  EXPECT_DOUBLE_EQ(h.mean(), 777.0);
  // q=0/q=1 report exact min/max; mid quantiles all land in the single
  // occupied bucket (~1.6% representative-value resolution).
  EXPECT_EQ(h.percentile(0.0), 777u);
  EXPECT_EQ(h.percentile(1.0), 777u);
  for (double q : {0.25, 0.5, 0.99, 0.999}) {
    EXPECT_NEAR(static_cast<double>(h.percentile(q)), 777.0, 777.0 * 0.02)
        << "q=" << q;
  }
}

TEST(Histogram, MergeWithEmptyIsIdentityBothWays) {
  Histogram a, empty;
  for (uint64_t v = 1; v <= 50; ++v) a.record(v);
  const uint64_t p50_before = a.percentile(0.5);
  a.merge(empty);  // rhs empty: nothing changes
  EXPECT_EQ(a.count(), 50u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 50u);
  EXPECT_EQ(a.percentile(0.5), p50_before);

  Histogram b;  // lhs empty: adopts rhs wholesale
  b.merge(a);
  EXPECT_EQ(b.count(), 50u);
  EXPECT_EQ(b.min(), 1u);
  EXPECT_EQ(b.max(), 50u);
  EXPECT_DOUBLE_EQ(b.mean(), a.mean());
}

TEST(Histogram, MergeTwoEmptiesStaysEmpty) {
  Histogram a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.percentile(0.5), 0u);
}

TEST(Histogram, OverflowBucketStillRanksPercentiles) {
  // Values past the last bucket boundary clamp into the overflow bucket;
  // exact max/min must survive and high quantiles must land there.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(10);  // bulk at the bottom
  h.record(UINT64_MAX);
  h.record(UINT64_MAX - 1);
  EXPECT_EQ(h.count(), 102u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_EQ(h.percentile(1.0), UINT64_MAX);
  EXPECT_LE(h.percentile(0.5), 11u);
  EXPECT_GT(h.percentile(0.999), 1ULL << 62);
}

TEST(Histogram, MergePropagatesOverflowBucketAndExtremes) {
  Histogram a, b;
  a.record(5);
  b.record(UINT64_MAX);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), UINT64_MAX);
  EXPECT_EQ(a.percentile(1.0), UINT64_MAX);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Histogram a, b, combined;
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = r.next_below(1 << 20);
    (i % 2 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.percentile(q), combined.percentile(q));
  }
}

}  // namespace
}  // namespace hdnh
