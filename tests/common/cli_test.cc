#include "common/cli.h"

#include <gtest/gtest.h>

#include <vector>

namespace hdnh {
namespace {

Cli make_cli(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsWhenAbsent) {
  Cli cli = make_cli({});
  EXPECT_EQ(cli.get_str("name", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("d", 1.5), 1.5);
  EXPECT_TRUE(cli.get_bool("b", true));
  EXPECT_FALSE(cli.get_bool("b2", false));
  cli.finish();
}

TEST(Cli, ParsesKeyValueForms) {
  Cli cli = make_cli({"--name=xyz", "--n=17", "--d=2.25", "--flag"});
  EXPECT_EQ(cli.get_str("name", ""), "xyz");
  EXPECT_EQ(cli.get_int("n", 0), 17);
  EXPECT_DOUBLE_EQ(cli.get_double("d", 0), 2.25);
  EXPECT_TRUE(cli.get_bool("flag", false));  // bare flag means true
  cli.finish();
}

TEST(Cli, BoolSpellings) {
  Cli cli = make_cli({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_TRUE(cli.get_bool("b", false));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
  EXPECT_FALSE(cli.get_bool("e", true));
  cli.finish();
}

TEST(Cli, NegativeAndLargeInts) {
  Cli cli = make_cli({"--a=-5", "--b=123456789012"});
  EXPECT_EQ(cli.get_int("a", 0), -5);
  EXPECT_EQ(cli.get_int("b", 0), 123456789012LL);
  cli.finish();
}

// finish() exits on unknown flags / positional args; exercised via death
// tests so the exit does not kill the test binary.
TEST(CliDeath, UnknownFlagExits) {
  EXPECT_EXIT(
      {
        Cli cli = make_cli({"--nosuch=1"});
        cli.get_int("known", 0);
        cli.finish();
      },
      ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(CliDeath, PositionalArgExits) {
  EXPECT_EXIT({ Cli cli = make_cli({"positional"}); (void)cli; },
              ::testing::ExitedWithCode(2), "unexpected positional");
}

}  // namespace
}  // namespace hdnh
