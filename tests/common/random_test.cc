#include "common/random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace hdnh {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c;
  }
  Rng d(8);
  bool any_diff = false;
  Rng e(7);
  for (int i = 0; i < 100; ++i) any_diff |= (d.next() != e.next());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowInRange) {
  Rng r(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng r(99);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) counts[r.next_below(kBuckets)]++;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_GT(counts[b], kDraws / kBuckets * 0.9);
    EXPECT_LT(counts[b], kDraws / kBuckets * 1.1);
  }
}

TEST(Uniform, CoversRange) {
  UniformChooser u(100, 3);
  std::vector<int> seen(100, 0);
  for (int i = 0; i < 20000; ++i) seen[u.next()]++;
  for (int i = 0; i < 100; ++i) EXPECT_GT(seen[i], 0) << i;
}

// Zipfian invariants from Gray et al.: item 0 most popular, frequency
// decreasing in rank, and skew increasing with theta.
TEST(Zipfian, RankZeroIsMostPopular) {
  ZipfianChooser z(1000, 0.99, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[z.next()]++;
  int max_count = 0;
  uint64_t max_key = 0;
  for (auto& [k, c] : counts) {
    if (c > max_count) {
      max_count = c;
      max_key = k;
    }
  }
  EXPECT_EQ(max_key, 0u);
}

TEST(Zipfian, FrequencyDecaysWithRank) {
  ZipfianChooser z(10000, 0.99, 11);
  std::vector<int> counts(10000, 0);
  for (int i = 0; i < 500000; ++i) counts[z.next()]++;
  // Aggregate into rank bands to smooth noise.
  auto band = [&](int lo, int hi) {
    long s = 0;
    for (int i = lo; i < hi; ++i) s += counts[i];
    return s;
  };
  EXPECT_GT(band(0, 10), band(10, 100) / 3);
  EXPECT_GT(band(0, 100), band(100, 1000) / 2);
  EXPECT_GT(band(0, 1000), band(1000, 10000));
}

TEST(Zipfian, HigherThetaIsMoreSkewed) {
  auto top1_share = [](double theta) {
    ZipfianChooser z(100000, theta, 17);
    int hot = 0;
    constexpr int kDraws = 200000;
    for (int i = 0; i < kDraws; ++i) {
      if (z.next() < 1000) ++hot;  // top 1% of the keyspace
    }
    return static_cast<double>(hot) / kDraws;
  };
  const double s05 = top1_share(0.5);
  const double s099 = top1_share(0.99);
  const double s122 = top1_share(1.22);
  EXPECT_LT(s05, s099);
  EXPECT_LT(s099, s122);
  // The paper's motivating observation (Alibaba): with severe skew the top
  // 1% absorbs the majority of accesses.
  EXPECT_GT(s122, 0.5);
}

TEST(Zipfian, StaysInRange) {
  ZipfianChooser z(123, 1.22, 23);
  for (int i = 0; i < 50000; ++i) EXPECT_LT(z.next(), 123u);
}

TEST(ScrambledZipfian, SpreadsHotKeysAcrossKeyspace) {
  ScrambledZipfianChooser z(100000, 0.99, 29);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 300000; ++i) counts[z.next()]++;
  // Find the 10 hottest keys; they should NOT be clustered near 0.
  std::vector<std::pair<int, uint64_t>> by_count;
  for (auto& [k, c] : counts) by_count.emplace_back(c, k);
  std::sort(by_count.rbegin(), by_count.rend());
  uint64_t above_half = 0;
  for (int i = 0; i < 10; ++i) {
    if (by_count[i].second > 50000) ++above_half;
  }
  EXPECT_GE(above_half, 2u);  // scrambling pushes some hot keys high
  EXPECT_LT(by_count[10].first, by_count[0].first);
}

TEST(Latest, SkewsTowardNewestKeys) {
  LatestChooser l(10000, 0.99, 31);
  l.set_max(10000);
  int newest_quarter = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (l.next() >= 7500) ++newest_quarter;
  }
  EXPECT_GT(newest_quarter, kDraws / 2);
}

TEST(Latest, RespectsMax) {
  LatestChooser l(10000, 0.99, 37);
  l.set_max(100);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(l.next(), 100u);
}

}  // namespace
}  // namespace hdnh
