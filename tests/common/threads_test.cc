#include "common/threads.h"

#include <gtest/gtest.h>

#include <numeric>

namespace hdnh {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  constexpr uint64_t kN = 100001;
  std::vector<std::atomic<int>> touched(kN);
  parallel_for(kN, 4, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SingleWorkerRunsInline) {
  uint64_t sum = 0;  // non-atomic: must be safe with 1 worker
  parallel_for(1000, 1, [&](uint32_t w, uint64_t b, uint64_t e) {
    EXPECT_EQ(w, 0u);
    for (uint64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 999ull * 1000 / 2);
}

TEST(ParallelFor, EmptyRange) {
  bool called_nonzero = false;
  parallel_for(0, 4, [&](uint32_t, uint64_t b, uint64_t e) {
    if (b != e) called_nonzero = true;
  });
  EXPECT_FALSE(called_nonzero);
}

TEST(ParallelFor, MoreWorkersThanItems) {
  std::atomic<uint64_t> count{0};
  parallel_for(3, 8, [&](uint32_t, uint64_t b, uint64_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 3u);
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counts[kPhases];
  for (auto& p : phase_counts) p.store(0);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counts[p].fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, every thread must have bumped this phase.
        EXPECT_EQ(phase_counts[p].load(), kThreads);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(PinToCore, DoesNotCrash) {
  // Advisory on constrained hosts; only verify it returns.
  (void)pin_to_core(0);
  SUCCEED();
}

}  // namespace
}  // namespace hdnh
