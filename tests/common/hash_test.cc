#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "api/types.h"

namespace hdnh {
namespace {

TEST(Hash64, DeterministicAcrossCalls) {
  const std::string data = "hello persistent world";
  EXPECT_EQ(hash64(data), hash64(data));
  EXPECT_EQ(hash64(data, 7), hash64(data, 7));
}

TEST(Hash64, SeedChangesResult) {
  const std::string data = "key-material";
  EXPECT_NE(hash64(data, kSeed1), hash64(data, kSeed2));
  EXPECT_NE(hash64(data, 0), hash64(data, 1));
}

TEST(Hash64, LengthSensitive) {
  const char buf[32] = {0};
  std::set<uint64_t> seen;
  for (size_t len = 0; len <= sizeof(buf); ++len) {
    seen.insert(hash64(buf, len));
  }
  // All-zero inputs of different lengths must not collide.
  EXPECT_EQ(seen.size(), sizeof(buf) + 1);
}

TEST(Hash64, SingleBitFlipsChangeHash) {
  uint8_t buf[16] = {};
  const uint64_t base = hash64(buf, sizeof(buf));
  for (int byte = 0; byte < 16; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= (1u << bit);
      EXPECT_NE(hash64(buf, sizeof(buf)), base)
          << "byte " << byte << " bit " << bit;
      buf[byte] ^= (1u << bit);
    }
  }
}

TEST(Hash64, CoversLongInputPaths) {
  // Exercise the >=32-byte block loop and every tail length.
  std::vector<uint8_t> data(257);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  std::set<uint64_t> seen;
  for (size_t len = 0; len < data.size(); ++len) {
    seen.insert(hash64(data.data(), len));
  }
  EXPECT_EQ(seen.size(), data.size());
}

TEST(Hash64, ReasonableBucketSpread) {
  // Hashing sequential ids must spread ~uniformly over a bucket range.
  constexpr int kBuckets = 64;
  constexpr int kKeys = 64000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kKeys; ++i) {
    Key k = make_key(static_cast<uint64_t>(i));
    counts[hash64(k.b, sizeof(k.b), kSeed1) % kBuckets]++;
  }
  const double expected = static_cast<double>(kKeys) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_GT(counts[b], expected * 0.8) << "bucket " << b;
    EXPECT_LT(counts[b], expected * 1.2) << "bucket " << b;
  }
}

TEST(Fingerprint, IsLowByte) {
  EXPECT_EQ(fingerprint(0x1234567890ABCDEFULL), 0xEF);
  EXPECT_EQ(fingerprint(0xFF00), 0x00);
}

TEST(Fingerprint, NearUniformOverKeys) {
  int counts[256] = {};
  constexpr int kKeys = 256000;
  for (int i = 0; i < kKeys; ++i) {
    Key k = make_key(static_cast<uint64_t>(i));
    counts[fingerprint(key_hash1(k))]++;
  }
  for (int f = 0; f < 256; ++f) {
    EXPECT_GT(counts[f], 700) << "fp " << f;  // expected 1000
    EXPECT_LT(counts[f], 1300) << "fp " << f;
  }
}

TEST(Mix64, BijectiveOnSample) {
  std::set<uint64_t> out;
  for (uint64_t i = 0; i < 100000; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 100000u);
}

TEST(KeyTypes, MakeKeyRoundTripsId) {
  for (uint64_t id : {uint64_t{0}, uint64_t{1}, uint64_t{123456789},
                      UINT64_MAX}) {
    EXPECT_EQ(key_id(make_key(id)), id);
  }
}

TEST(KeyTypes, DistinctIdsGiveDistinctKeysAndValues) {
  EXPECT_FALSE(make_key(1) == make_key(2));
  EXPECT_FALSE(make_value(1) == make_value(2));
  EXPECT_TRUE(make_key(7) == make_key(7));
  EXPECT_TRUE(make_value(7) == make_value(7));
}

TEST(KeyTypes, HashesIndependent) {
  const Key k = make_key(42);
  EXPECT_NE(key_hash1(k), key_hash2(k));
}

}  // namespace
}  // namespace hdnh
