#include "common/simd.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/random.h"

namespace hdnh::simd {
namespace {

// Every test that forces a level restores the compiled default on exit so
// test order never leaks a slow (or fast) path into unrelated tests.
struct LevelGuard {
  ~LevelGuard() { force_level(compiled_level()); }
};

uint32_t ref_match(const uint16_t* w, uint32_t n, uint16_t mask,
                   uint16_t pattern) {
  uint32_t m = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if ((w[i] & mask) == pattern) m |= 1u << i;
  }
  return m;
}

TEST(Simd, ForceLevelClampsToCompiled) {
  LevelGuard g;
  force_level(IsaLevel::kAvx2);
  EXPECT_LE(static_cast<int>(active_level()),
            static_cast<int>(compiled_level()));
  force_level(IsaLevel::kScalar);
  EXPECT_EQ(active_level(), IsaLevel::kScalar);
  force_level(compiled_level());
  EXPECT_EQ(active_level(), compiled_level());
}

TEST(Simd, LevelNamesAreStable) {
  EXPECT_STREQ(level_name(IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(level_name(IsaLevel::kSse2), "sse2");
  EXPECT_STREQ(level_name(IsaLevel::kAvx2), "avx2");
}

TEST(Simd, RandomizedMatchParityAcrossLevels) {
  LevelGuard g;
  Rng rng(0x51D0u ^ 42);
  const IsaLevel levels[] = {IsaLevel::kScalar, IsaLevel::kSse2,
                             IsaLevel::kAvx2};
  for (int iter = 0; iter < 50000; ++iter) {
    alignas(32) uint16_t w[16];
    for (auto& x : w) x = static_cast<uint16_t>(rng.next());
    const uint16_t mask = static_cast<uint16_t>(rng.next());
    // Half the time pick a pattern reachable under the mask and plant it in
    // a few lanes so matches actually occur; otherwise leave it arbitrary
    // (often unreachable -> both paths must agree on "no match" too).
    uint16_t pattern = static_cast<uint16_t>(rng.next());
    if (iter & 1) {
      pattern &= mask;
      for (int p = 0; p < 3; ++p) {
        uint16_t& lane = w[rng.next_below(16)];
        lane = static_cast<uint16_t>((lane & ~mask) | pattern);
      }
    }
    const uint32_t n = 1 + static_cast<uint32_t>(rng.next_below(8));
    const uint32_t want_n = ref_match(w, n, mask, pattern);
    const uint32_t want_16 = ref_match(w, 16, mask, pattern);
    for (IsaLevel l : levels) {
      force_level(l);
      ASSERT_EQ(match8x16_prefix(w, n, mask, pattern), want_n)
          << "iter " << iter << " level " << level_name(active_level());
      ASSERT_EQ(match8x16_prefix(w, 8, mask, pattern), want_16 & 0xFFu)
          << "iter " << iter << " level " << level_name(active_level());
      ASSERT_EQ(match16x16(w, mask, pattern), want_16)
          << "iter " << iter << " level " << level_name(active_level());
    }
  }
}

TEST(Simd, PrefixMasksLanesAtAndBeyondN) {
  LevelGuard g;
  alignas(16) uint16_t w[8];
  for (auto& x : w) x = 0x8001;  // every lane matches
  for (IsaLevel l : {IsaLevel::kScalar, compiled_level()}) {
    force_level(l);
    for (uint32_t n = 1; n <= 8; ++n) {
      EXPECT_EQ(match8x16_prefix(w, n, 0x8001, 0x8001), (1u << n) - 1) << n;
    }
  }
}

TEST(Simd, RandomizedOcfPrefilterParity) {
  LevelGuard g;
  Rng rng(1234);
  // The real OCF layout's bits, plus fully random ones.
  const uint16_t kValid = 0x8000, kBusy = 0x4000, kFpMask = 0x00FF;
  for (int iter = 0; iter < 50000; ++iter) {
    alignas(16) uint16_t w[8];
    for (auto& x : w) x = static_cast<uint16_t>(rng.next());
    uint16_t cand_mask, cand_pattern, busy_bit, valid_bit;
    if (iter & 1) {
      const uint16_t fp = static_cast<uint16_t>(rng.next()) & kFpMask;
      cand_mask = kValid | kBusy | kFpMask;
      cand_pattern = kValid | fp;
      busy_bit = kBusy;
      valid_bit = kValid;
      // Plant a guaranteed candidate and a busy lane.
      w[rng.next_below(8)] = static_cast<uint16_t>(kValid | fp);
      w[rng.next_below(8)] |= kBusy;
    } else {
      cand_mask = static_cast<uint16_t>(rng.next());
      cand_pattern = static_cast<uint16_t>(rng.next()) & cand_mask;
      busy_bit = static_cast<uint16_t>(1u << rng.next_below(16));
      valid_bit = static_cast<uint16_t>(1u << rng.next_below(16));
    }
    OcfMasks want{0, 0, 0};
    for (uint32_t i = 0; i < 8; ++i) {
      if ((w[i] & cand_mask) == cand_pattern) want.candidate |= 1u << i;
      if (w[i] & busy_bit) want.busy |= 1u << i;
      if (w[i] & valid_bit) want.valid |= 1u << i;
    }
    for (IsaLevel l : {IsaLevel::kScalar, compiled_level()}) {
      force_level(l);
      const OcfMasks got =
          ocf_prefilter8(w, cand_mask, cand_pattern, busy_bit, valid_bit);
      ASSERT_EQ(got.candidate, want.candidate) << iter;
      ASSERT_EQ(got.busy, want.busy) << iter;
      ASSERT_EQ(got.valid, want.valid) << iter;
    }
  }
}

}  // namespace
}  // namespace hdnh::simd
