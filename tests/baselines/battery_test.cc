// One functional battery run against EVERY scheme in the repository via the
// factory — the uniform-semantics contract that lets the bench harness
// compare them fairly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.h"
#include "common/random.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh {
namespace {

class SchemeBattery : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    scheme_ = GetParam();
    opts_.capacity = 1 << 14;
    pool_ = std::make_unique<nvm::PmemPool>(512ull << 20);
    alloc_ = std::make_unique<nvm::PmemAllocator>(*pool_);
    table_ = create_table(scheme_, *alloc_, opts_);
  }

  std::string scheme_;
  TableOptions opts_;
  std::unique_ptr<nvm::PmemPool> pool_;
  std::unique_ptr<nvm::PmemAllocator> alloc_;
  std::unique_ptr<HashTable> table_;
};

TEST_P(SchemeBattery, InsertSearchRoundTrip) {
  constexpr uint64_t kN = 3000;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(table_->insert(make_key(i), make_value(i))) << i;
  EXPECT_EQ(table_->size(), kN);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(table_->search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
}

TEST_P(SchemeBattery, NegativeSearchMisses) {
  for (uint64_t i = 0; i < 1000; ++i)
    table_->insert(make_key(i), make_value(i));
  Value v;
  for (uint64_t i = 1ull << 30; i < (1ull << 30) + 2000; ++i)
    ASSERT_FALSE(table_->search(make_key(i), &v)) << i;
}

TEST_P(SchemeBattery, DuplicateInsertRejectedEverywhere) {
  ASSERT_TRUE(table_->insert(make_key(7), make_value(7)));
  EXPECT_FALSE(table_->insert(make_key(7), make_value(8)));
  Value v;
  ASSERT_TRUE(table_->search(make_key(7), &v));
  EXPECT_TRUE(v == make_value(7));
}

TEST_P(SchemeBattery, UpdateSemantics) {
  EXPECT_FALSE(table_->update(make_key(1), make_value(2)));  // absent
  table_->insert(make_key(1), make_value(1));
  EXPECT_TRUE(table_->update(make_key(1), make_value(2)));
  Value v;
  ASSERT_TRUE(table_->search(make_key(1), &v));
  EXPECT_TRUE(v == make_value(2));
  EXPECT_EQ(table_->size(), 1u);
}

TEST_P(SchemeBattery, EraseSemantics) {
  EXPECT_FALSE(table_->erase(make_key(1)));
  table_->insert(make_key(1), make_value(1));
  EXPECT_TRUE(table_->erase(make_key(1)));
  Value v;
  EXPECT_FALSE(table_->search(make_key(1), &v));
  EXPECT_FALSE(table_->erase(make_key(1)));
  EXPECT_EQ(table_->size(), 0u);
  // Reinsert after erase.
  EXPECT_TRUE(table_->insert(make_key(1), make_value(11)));
  ASSERT_TRUE(table_->search(make_key(1), &v));
  EXPECT_TRUE(v == make_value(11));
}

TEST_P(SchemeBattery, MixedChurnKeepsIntegrity) {
  Rng rng(77);
  std::vector<bool> present(4000, false);
  std::vector<uint64_t> val(4000, 0);
  Value v;
  for (int op = 0; op < 40000; ++op) {
    const uint64_t i = rng.next_below(4000);
    switch (rng.next_below(4)) {
      case 0:
        ASSERT_EQ(table_->search(make_key(i), &v), present[i]) << i;
        if (present[i]) ASSERT_TRUE(v == make_value(val[i])) << i;
        break;
      case 1:
        ASSERT_EQ(table_->insert(make_key(i), make_value(i)), !present[i]);
        if (!present[i]) {
          present[i] = true;
          val[i] = i;
        }
        break;
      case 2:
        ASSERT_EQ(table_->update(make_key(i), make_value(op)), present[i]);
        if (present[i]) val[i] = op;
        break;
      case 3:
        ASSERT_EQ(table_->erase(make_key(i)), present[i]);
        present[i] = false;
        break;
    }
  }
}

TEST_P(SchemeBattery, MultigetMatchesSearch) {
  constexpr uint64_t kN = 2500;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(table_->insert(make_key(i), make_value(i)));
  std::vector<Key> keys;
  for (uint64_t i = 0; i < 400; ++i) {
    // Hits, misses, and a duplicate every 16 positions.
    keys.push_back(make_key(i % 16 == 0 ? 3 : (i % 3 ? i : (1ull << 32) + i)));
  }
  std::vector<Value> values(keys.size());
  std::vector<uint8_t> found(keys.size());
  const size_t hits =
      table_->multiget(keys.data(), keys.size(), values.data(),
                       reinterpret_cast<bool*>(found.data()));
  size_t expect = 0;
  Value v;
  for (size_t i = 0; i < keys.size(); ++i) {
    const bool single = table_->search(keys[i], &v);
    ASSERT_EQ(found[i] != 0, single) << i;
    if (single) {
      ASSERT_TRUE(values[i] == v) << i;
      ++expect;
    }
  }
  EXPECT_EQ(hits, expect);
}

TEST_P(SchemeBattery, GrowsBeyondInitialCapacity) {
  if (parse_scheme(scheme_).base == "path") {
    // PATH is static by design: it must keep working up to its sizing
    // target and throw TableFullError beyond structural exhaustion.
    uint64_t inserted = 0;
    try {
      for (uint64_t i = 0;; ++i) {
        if (table_->insert(make_key(i), make_value(i))) ++inserted;
      }
    } catch (const TableFullError&) {
    }
    EXPECT_GT(inserted, opts_.capacity / 2);
    return;
  }
  const uint64_t kN = opts_.capacity * 4;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(table_->insert(make_key(i), make_value(i))) << i;
  EXPECT_EQ(table_->size(), kN);
  Value v;
  for (uint64_t i = 0; i < kN; i += 11)
    ASSERT_TRUE(table_->search(make_key(i), &v)) << i;
}

TEST_P(SchemeBattery, LoadFactorSane) {
  for (uint64_t i = 0; i < 2000; ++i)
    table_->insert(make_key(i), make_value(i));
  EXPECT_GT(table_->load_factor(), 0.0);
  EXPECT_LE(table_->load_factor(), 1.0);
}

TEST_P(SchemeBattery, ConcurrentDisjointInserts) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPer = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPer; ++i) {
        const uint64_t id = t * kPer + i;
        ASSERT_TRUE(table_->insert(make_key(id), make_value(id)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table_->size(), kThreads * kPer);
  Value v;
  for (uint64_t id = 0; id < kThreads * kPer; ++id)
    ASSERT_TRUE(table_->search(make_key(id), &v)) << id;
}

TEST_P(SchemeBattery, ConcurrentReadersDuringWrites) {
  for (uint64_t i = 0; i < 2000; ++i)
    table_->insert(make_key(i), make_value(i));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t id = 1 << 22;
    try {
      while (!stop.load()) table_->insert(make_key(id++), make_value(1));
    } catch (const TableFullError&) {
      // PATH is static; stopping the write storm early is fine.
    }
  });
  Value v;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t id = i % 2000;
    ASSERT_TRUE(table_->search(make_key(id), &v)) << id;
    ASSERT_TRUE(v == make_value(id)) << id;
  }
  stop.store(true);
  writer.join();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeBattery,
                         ::testing::Values("hdnh", "hdnh-lru", "hdnh-noocf",
                                           "hdnh-nohot", "hdnh-bg", "level",
                                           "cceh", "path",
                                           // the sharded store runtime must
                                           // honour the same contract
                                           "hdnh@4", "level@2"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (c == '-' || c == '@') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace hdnh
