// CCEH specifics: segment splits, directory doubling, linear probing, and
// the segment-lock NVM traffic.
#include "baselines/cceh.h"

#include <gtest/gtest.h>

#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh {
namespace {

struct CcehPack {
  explicit CcehPack(uint64_t capacity, uint64_t seg_bytes = 16 * 1024,
                    uint64_t pool_bytes = 512ull << 20)
      : pool(pool_bytes), alloc(pool), table(alloc, capacity, seg_bytes) {}
  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  Cceh table;
};

TEST(Cceh, RejectsNonPowerOfTwoSegment) {
  nvm::PmemPool pool(16 << 20);
  nvm::PmemAllocator alloc(pool);
  EXPECT_THROW(Cceh t(alloc, 100, 3 * 1000), std::invalid_argument);
}

TEST(Cceh, SplitsGrowDirectory) {
  CcehPack p(512);
  const uint32_t depth_before = p.table.global_depth();
  const uint64_t segs_before = p.table.segment_count();
  constexpr uint64_t kN = 60000;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table.insert(make_key(i), make_value(i))) << i;
  EXPECT_GT(p.table.segment_count(), segs_before);
  EXPECT_GE(p.table.global_depth(), depth_before);
  EXPECT_EQ(p.table.size(), kN);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table.search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
  // Splits redistribute, never duplicate: erase each key exactly once.
  for (uint64_t i = 0; i < kN; i += 17) {
    ASSERT_TRUE(p.table.erase(make_key(i))) << i;
    ASSERT_FALSE(p.table.erase(make_key(i))) << i;
  }
}

TEST(Cceh, NegativeSearchBoundedProbes) {
  CcehPack p(1 << 14);
  for (uint64_t i = 0; i < 8000; ++i)
    p.table.insert(make_key(i), make_value(i));
  const auto before = nvm::Stats::snapshot();
  Value v;
  constexpr uint64_t kProbes = 1000;
  for (uint64_t i = 1 << 24; i < (1 << 24) + kProbes; ++i)
    ASSERT_FALSE(p.table.search(make_key(i), &v));
  auto delta = nvm::Stats::snapshot();
  delta -= before;
  // Linear probing distance 4 ⇒ exactly 4 bucket reads + 2 lock RMWs.
  EXPECT_GE(delta.nvm_read_ops, kProbes * 4);
  EXPECT_LE(delta.nvm_read_ops, kProbes * 7);
}

TEST(Cceh, ReadLocksCostNvmWrites) {
  CcehPack p(1 << 14);
  for (uint64_t i = 0; i < 1000; ++i)
    p.table.insert(make_key(i), make_value(i));
  const auto before = nvm::Stats::snapshot();
  Value v;
  for (uint64_t i = 0; i < 1000; ++i) p.table.search(make_key(i), &v);
  auto delta = nvm::Stats::snapshot();
  delta -= before;
  EXPECT_GE(delta.nvm_write_lines, 2000u);  // lock + unlock per search
}

TEST(Cceh, SmallSegmentsStressSplitPath) {
  CcehPack p(64, /*seg_bytes=*/1024);  // 16 buckets/segment
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table.insert(make_key(i), make_value(i))) << i;
  Value v;
  for (uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(p.table.search(make_key(i), &v));
  EXPECT_GT(p.table.global_depth(), 5u);
}

TEST(Cceh, UpdateAfterSplitsFindsRelocatedKeys) {
  CcehPack p(256);
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table.insert(make_key(i), make_value(i));
  for (uint64_t i = 0; i < kN; i += 5)
    ASSERT_TRUE(p.table.update(make_key(i), make_value(i + 1))) << i;
  Value v;
  for (uint64_t i = 0; i < kN; i += 5) {
    ASSERT_TRUE(p.table.search(make_key(i), &v));
    ASSERT_TRUE(v == make_value(i + 1));
  }
}

TEST(Cceh, LoadFactorReasonable) {
  CcehPack p(1 << 14);
  for (uint64_t i = 0; i < 40000; ++i)
    p.table.insert(make_key(i), make_value(i));
  // Extendible hashing with probe-4: load factor typically 0.35..0.9.
  EXPECT_GT(p.table.load_factor(), 0.2);
  EXPECT_LE(p.table.load_factor(), 1.0);
}

}  // namespace
}  // namespace hdnh
