// Level hashing specifics: cost-sharing resize, bottom-to-top cuckoo
// displacement, and the in-NVM lock traffic the HDNH paper measures.
#include "baselines/level_hashing.h"

#include <gtest/gtest.h>

#include <memory>

#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh {
namespace {

struct LevelPack {
  explicit LevelPack(uint64_t capacity, uint64_t pool_bytes = 512ull << 20)
      : pool(pool_bytes), alloc(pool), table(alloc, capacity) {}
  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  LevelHashing table;
};

TEST(LevelHashing, ResizeTriggersAndPreservesData) {
  LevelPack p(256);
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table.insert(make_key(i), make_value(i))) << i;
  EXPECT_GT(p.table.resize_count(), 0u);
  EXPECT_EQ(p.table.size(), kN);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table.search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
}

TEST(LevelHashing, DisplacementDelaysResize) {
  // With one-step bottom-to-top cuckoo eviction the table should absorb
  // noticeably more than it could without displacement before resizing.
  LevelPack p(4096);
  uint64_t i = 0;
  while (p.table.resize_count() == 0 && i < 100000) {
    p.table.insert(make_key(i), make_value(i));
    ++i;
  }
  // Sizing gives total slots = 1.5 * (cap/4 + 2) * 4 ≈ 1.5 * cap;
  // displacement should push the fill at first resize past ~55%.
  EXPECT_GT(p.table.load_factor() /* just before resize finished */, 0.0);
  EXPECT_GT(i, 4096u / 2);
  Value v;
  for (uint64_t k = 0; k < i; ++k)
    ASSERT_TRUE(p.table.search(make_key(k), &v)) << k;
}

TEST(LevelHashing, ReadLocksCostNvmWrites) {
  // The paper's point: even pure searches dirty NVM lock words.
  LevelPack p(8192);
  for (uint64_t i = 0; i < 1000; ++i)
    p.table.insert(make_key(i), make_value(i));
  const auto before = nvm::Stats::snapshot();
  Value v;
  for (uint64_t i = 0; i < 1000; ++i) p.table.search(make_key(i), &v);
  auto delta = nvm::Stats::snapshot();
  delta -= before;
  // Each probed bucket pays lock+unlock = 2 line writes.
  EXPECT_GE(delta.nvm_write_lines, 2000u);
}

TEST(LevelHashing, SearchScansUpToFourBuckets) {
  LevelPack p(8192);
  for (uint64_t i = 0; i < 2000; ++i)
    p.table.insert(make_key(i), make_value(i));
  const auto before = nvm::Stats::snapshot();
  Value v;
  constexpr uint64_t kProbes = 1000;
  for (uint64_t i = 1 << 20; i < (1 << 20) + kProbes; ++i)
    p.table.search(make_key(i), &v);
  auto delta = nvm::Stats::snapshot();
  delta -= before;
  // Negative search probes all (up to 4) candidate buckets in NVM — this is
  // the read overhead HDNH's OCF eliminates. Lock RMWs add 1 block read per
  // probed bucket as well.
  EXPECT_GE(delta.nvm_read_ops, kProbes * 4);
}

TEST(LevelHashing, UpdateInPlace) {
  LevelPack p(4096);
  p.table.insert(make_key(5), make_value(5));
  const uint64_t slots_before = p.table.size();
  for (int round = 0; round < 50; ++round)
    ASSERT_TRUE(p.table.update(make_key(5), make_value(round)));
  Value v;
  ASSERT_TRUE(p.table.search(make_key(5), &v));
  EXPECT_TRUE(v == make_value(49));
  EXPECT_EQ(p.table.size(), slots_before);
}

TEST(LevelHashing, PoolHintSufficient) {
  const uint64_t hint = LevelHashing::pool_bytes_hint(50000);
  nvm::PmemPool pool(hint);
  nvm::PmemAllocator alloc(pool);
  LevelHashing t(alloc, 1024);
  for (uint64_t i = 0; i < 50000; ++i)
    ASSERT_TRUE(t.insert(make_key(i), make_value(i))) << i;
}

}  // namespace
}  // namespace hdnh
