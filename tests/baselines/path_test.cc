// Path hashing specifics: inverted-binary-tree stash, O(log B) probe bound,
// static capacity behaviour.
#include "baselines/path_hashing.h"

#include <gtest/gtest.h>

#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh {
namespace {

struct PathPack {
  explicit PathPack(uint64_t capacity, uint64_t pool_bytes = 256ull << 20)
      : pool(pool_bytes), alloc(pool), table(alloc, capacity) {}
  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  PathHashing table;
};

TEST(PathHashing, BasicRoundTrip) {
  PathPack p(10000);
  for (uint64_t i = 0; i < 5000; ++i)
    ASSERT_TRUE(p.table.insert(make_key(i), make_value(i))) << i;
  Value v;
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(p.table.search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
}

TEST(PathHashing, StaticTableThrowsWhenPathsExhaust) {
  PathPack p(2000);
  uint64_t inserted = 0;
  EXPECT_THROW(
      {
        for (uint64_t i = 0;; ++i) {
          p.table.insert(make_key(i), make_value(i));
          ++inserted;
        }
      },
      TableFullError);
  // The inverted-tree stash should let it reach a solid load factor before
  // the first both-paths-full failure (the design's selling point).
  EXPECT_GT(static_cast<double>(inserted) /
                static_cast<double>(p.table.total_cells()),
            0.4);
}

TEST(PathHashing, ProbeCountBoundedByLevels) {
  PathPack p(20000);
  for (uint64_t i = 0; i < 10000; ++i)
    p.table.insert(make_key(i), make_value(i));
  const auto before = nvm::Stats::snapshot();
  Value v;
  constexpr uint64_t kProbes = 1000;
  for (uint64_t i = 1 << 24; i < (1 << 24) + kProbes; ++i)
    ASSERT_FALSE(p.table.search(make_key(i), &v));
  auto delta = nvm::Stats::snapshot();
  delta -= before;
  // Negative search walks both paths fully: <= 2 cells per level x 8
  // levels, plus up to 4 lock RMW reads.
  EXPECT_LE(delta.nvm_read_ops, kProbes * (2 * PathHashing::kLevels + 4));
  EXPECT_GE(delta.nvm_read_ops, kProbes * PathHashing::kLevels);
}

TEST(PathHashing, DeepLevelsAbsorbCollisions) {
  // Keys colliding at level 0 must overflow down the path, not fail.
  PathPack p(4000);
  uint64_t inserted = 0;
  for (uint64_t i = 0; i < 3000; ++i) {
    if (p.table.insert(make_key(i), make_value(i))) ++inserted;
  }
  EXPECT_EQ(inserted, 3000u);
}

TEST(PathHashing, UpdateAndEraseAlongPaths) {
  PathPack p(5000);
  for (uint64_t i = 0; i < 3000; ++i)
    p.table.insert(make_key(i), make_value(i));
  for (uint64_t i = 0; i < 3000; i += 2)
    ASSERT_TRUE(p.table.update(make_key(i), make_value(i + 9)));
  for (uint64_t i = 1; i < 3000; i += 2) ASSERT_TRUE(p.table.erase(make_key(i)));
  Value v;
  for (uint64_t i = 0; i < 3000; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(p.table.search(make_key(i), &v));
      ASSERT_TRUE(v == make_value(i + 9));
    } else {
      ASSERT_FALSE(p.table.search(make_key(i), &v));
    }
  }
  // Freed cells are reusable.
  for (uint64_t i = 1; i < 3000; i += 2)
    ASSERT_TRUE(p.table.insert(make_key(i), make_value(i)));
}

TEST(PathHashing, CoarseLocksCostNvmTraffic) {
  PathPack p(10000);
  for (uint64_t i = 0; i < 1000; ++i)
    p.table.insert(make_key(i), make_value(i));
  const auto before = nvm::Stats::snapshot();
  Value v;
  for (uint64_t i = 0; i < 1000; ++i) p.table.search(make_key(i), &v);
  auto delta = nvm::Stats::snapshot();
  delta -= before;
  // Two stripes locked/unlocked per search (often 2 distinct) = >= 2 RMWs.
  EXPECT_GE(delta.nvm_write_lines, 2000u);
}

}  // namespace
}  // namespace hdnh
