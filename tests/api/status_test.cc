// API v2 Status surface: value semantics of hdnh::Status, the default
// bool→Status shims on HashTable, the guard() exception firewall
// (TableFullError / bad_alloc → kTableFull, nothing escapes), and the
// native overrides on Hdnh and the sharded facade via the factory.
#include <gtest/gtest.h>

#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "api/batch.h"
#include "api/factory.h"
#include "api/types.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "../test_util.h"

namespace hdnh {
namespace {

TEST(Status, ValueSemantics) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_FALSE(Status::NotFound().ok());
  EXPECT_EQ(Status::Ok().code(), StatusCode::kOk);
  EXPECT_EQ(Status::NotFound(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Exists(), StatusCode::kExists);

  // Equality compares codes, not messages.
  EXPECT_EQ(Status::TableFull("a"), Status::TableFull("b"));
  EXPECT_NE(Status::TableFull(), Status::Retry());

  const Status s = Status::TableFull("segment 7 out of space");
  EXPECT_EQ(s.code_name(), std::string("table_full"));
  EXPECT_EQ(s.message(), "segment 7 out of space");
  EXPECT_NE(s.to_string().find("segment 7"), std::string::npos);
  EXPECT_EQ(Status::Ok().to_string(), "ok");

  EXPECT_EQ(std::string(status_code_name(StatusCode::kIOError)), "io_error");
}

// Minimal table with only the bool interface: everything Status-side must
// come from the default shims.
class BoolOnlyTable : public HashTable {
 public:
  bool insert(const Key& key, const Value& value) override {
    for (auto& [k, v] : items_) {
      if (k == key) return false;
    }
    items_.emplace_back(key, value);
    return true;
  }
  bool search(const Key& key, Value* out) override {
    for (auto& [k, v] : items_) {
      if (k == key) {
        *out = v;
        return true;
      }
    }
    return false;
  }
  bool update(const Key& key, const Value& value) override {
    for (auto& [k, v] : items_) {
      if (k == key) {
        v = value;
        return true;
      }
    }
    return false;
  }
  bool erase(const Key& key) override {
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (it->first == key) {
        items_.erase(it);
        return true;
      }
    }
    return false;
  }
  uint64_t size() const override { return items_.size(); }
  double load_factor() const override { return 0; }
  const char* name() const override { return "bool-only"; }

 private:
  std::vector<std::pair<Key, Value>> items_;
};

TEST(Status, DefaultShimSemantics) {
  BoolOnlyTable t;
  const Key k = make_key(7);

  EXPECT_EQ(t.update_s(k, make_value(1)), StatusCode::kNotFound);
  EXPECT_EQ(t.erase_s(k), StatusCode::kNotFound);
  Value out;
  EXPECT_EQ(t.search_s(k, &out), StatusCode::kNotFound);

  EXPECT_TRUE(t.insert_s(k, make_value(1)).ok());
  EXPECT_EQ(t.insert_s(k, make_value(2)), StatusCode::kExists);
  EXPECT_TRUE(t.search_s(k, &out).ok());
  EXPECT_EQ(out, make_value(1));

  EXPECT_TRUE(t.update_s(k, make_value(3)).ok());
  EXPECT_TRUE(t.search_s(k, &out).ok());
  EXPECT_EQ(out, make_value(3));

  // put_s is insert-then-update upsert.
  EXPECT_TRUE(t.put_s(k, make_value(4)).ok());
  EXPECT_TRUE(t.search_s(k, &out).ok());
  EXPECT_EQ(out, make_value(4));
  EXPECT_TRUE(t.put_s(make_key(8), make_value(8)).ok());  // fresh key path
  EXPECT_EQ(t.size(), 2u);

  EXPECT_TRUE(t.erase_s(k).ok());
  EXPECT_EQ(t.erase_s(k), StatusCode::kNotFound);
}

// Tables that throw the two exception shapes the boundary must absorb.
class ThrowingTable : public BoolOnlyTable {
 public:
  enum class Mode { kTableFull, kBadAlloc };
  explicit ThrowingTable(Mode m) : mode_(m) {}
  bool insert(const Key&, const Value&) override { return boom(); }
  bool update(const Key&, const Value&) override { return boom(); }
  const char* name() const override { return "throwing"; }

 private:
  bool boom() {
    if (mode_ == Mode::kTableFull) throw TableFullError("no segment space");
    throw std::bad_alloc();
  }
  Mode mode_;
};

TEST(Status, GuardConvertsExceptionsAtTheBoundary) {
  ThrowingTable full(ThrowingTable::Mode::kTableFull);
  Status s = full.insert_s(make_key(1), make_value(1));
  EXPECT_EQ(s, StatusCode::kTableFull);
  EXPECT_EQ(s.message(), "no segment space");
  EXPECT_EQ(full.update_s(make_key(1), make_value(1)), StatusCode::kTableFull);
  EXPECT_EQ(full.put_s(make_key(1), make_value(1)), StatusCode::kTableFull);

  ThrowingTable oom(ThrowingTable::Mode::kBadAlloc);
  s = oom.insert_s(make_key(1), make_value(1));
  EXPECT_EQ(s, StatusCode::kTableFull);
  EXPECT_FALSE(s.message().empty());
}

// The native overrides (Hdnh directly, and sharded facade routing to
// per-shard overrides) must agree with the shim semantics.
class StatusSchemes : public ::testing::TestWithParam<const char*> {};

TEST_P(StatusSchemes, NativeOverridesMatchShimSemantics) {
  const std::string scheme = GetParam();
  nvm::PmemPool pool(pool_bytes_hint(scheme, 1 << 16));
  nvm::PmemAllocator alloc(pool);
  TableOptions topts;
  topts.capacity = 1 << 14;
  auto table = create_table(scheme, alloc, topts);

  constexpr uint64_t kN = 2000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(table->insert_s(make_key(i), make_value(i)).ok()) << i;
  }
  EXPECT_EQ(table->insert_s(make_key(5), make_value(5)), StatusCode::kExists);
  EXPECT_EQ(table->size(), kN);

  Value out;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(table->search_s(make_key(i), &out).ok()) << i;
    ASSERT_EQ(out, make_value(i));
  }
  EXPECT_EQ(table->search_s(make_key(kN + 1), &out), StatusCode::kNotFound);

  EXPECT_TRUE(table->update_s(make_key(3), make_value(333)).ok());
  ASSERT_TRUE(table->search_s(make_key(3), &out).ok());
  EXPECT_EQ(out, make_value(333));
  EXPECT_EQ(table->update_s(make_key(kN + 1), make_value(1)),
            StatusCode::kNotFound);

  EXPECT_TRUE(table->erase_s(make_key(3)).ok());
  EXPECT_EQ(table->erase_s(make_key(3)), StatusCode::kNotFound);
  EXPECT_EQ(table->search_s(make_key(3), &out), StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(Schemes, StatusSchemes,
                         ::testing::Values("hdnh", "hdnh@4", "cceh", "level"));

TEST(SpanMultiget, DelegatesToPointerMultiget) {
  testutil::HdnhPack pack(64 << 20, testutil::small_config(1 << 14));
  constexpr uint64_t kN = 4000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(pack.table->insert(make_key(i), make_value(i)));
  }

  std::vector<Key> keys;
  for (uint64_t i = 0; i < 128; ++i) keys.push_back(make_key(i * 31));
  keys.push_back(make_key(kN + 99));  // miss
  std::vector<Value> vals(keys.size());
  std::vector<uint8_t> found(keys.size(), 2);  // poison

  const size_t hits = multiget(*pack.table, std::span<const Key>(keys),
                               std::span<Value>(vals),
                               std::span<uint8_t>(found));
  EXPECT_EQ(hits, 128u);
  for (uint64_t i = 0; i < 128; ++i) {
    ASSERT_EQ(found[i], 1) << i;
    EXPECT_EQ(vals[i], make_value(i * 31));
  }
  EXPECT_EQ(found.back(), 0);

  // Undersized output spans are a caller bug, reported loudly.
  std::vector<Value> short_vals(keys.size() - 1);
  EXPECT_THROW(multiget(*pack.table, std::span<const Key>(keys),
                        std::span<Value>(short_vals),
                        std::span<uint8_t>(found)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hdnh
