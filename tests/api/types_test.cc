// Binary-layout guarantees the persistence formats rely on.
#include <gtest/gtest.h>

#include <cstddef>

#include "api/types.h"
#include "hdnh/nv_layout.h"
#include "nvm/config.h"

namespace hdnh {
namespace {

TEST(Layout, RecordSizesMatchPaper) {
  EXPECT_EQ(sizeof(Key), 16u);
  EXPECT_EQ(sizeof(Value), 15u);
  EXPECT_EQ(sizeof(KVPair), 31u);  // packed, no padding
}

TEST(Layout, NvBucketIsOneAepBlock) {
  EXPECT_EQ(sizeof(NvBucket), 256u);
  EXPECT_EQ(sizeof(NvBucket), nvm::kNvmBlock);
  EXPECT_EQ(offsetof(NvBucket, slots), 8u);  // 8-byte persisted header
  // 8 slots x 31 B fill the block exactly.
  EXPECT_EQ(offsetof(NvBucket, slots) + kNvSlots * sizeof(KVPair), 256u);
}

TEST(Layout, OcfEntryEncoding) {
  using namespace ocf;
  // [valid:1][busy:1][version:6][fp:8] in 2 bytes (paper §3.2).
  EXPECT_EQ(kValid & kBusy, 0);
  EXPECT_EQ(kValid & kVerMask, 0);
  EXPECT_EQ(kValid & kFpMask, 0);
  EXPECT_EQ(kBusy & kVerMask, 0);
  EXPECT_EQ(kVerMask & kFpMask, 0);
  EXPECT_EQ(kValid | kBusy | kVerMask | kFpMask, 0xFFFF);

  const uint16_t e = kValid | 0x0500 | 0xAB;  // valid, ver=5, fp=0xAB
  EXPECT_TRUE(valid(e));
  EXPECT_FALSE(busy(e));
  EXPECT_EQ(fp_of(e), 0xAB);

  // release(): clears busy, advances version mod 64, sets validity + fp.
  const uint16_t r = release(e, true, 0xCD);
  EXPECT_TRUE(valid(r));
  EXPECT_FALSE(busy(r));
  EXPECT_EQ(fp_of(r), 0xCD);
  EXPECT_EQ((r & kVerMask) >> 8, 6u);

  // Version wraps at 6 bits.
  const uint16_t max_ver = static_cast<uint16_t>(kValid | kVerMask);
  EXPECT_EQ(release(max_ver, true, 0) & kVerMask, 0u);
}

TEST(Layout, BumpVerWrapsWithoutTouchingOtherFields) {
  using namespace ocf;
  uint16_t e = kValid | kBusy | 0x3F00 | 0x7E;
  const uint16_t b = bump_ver(e);
  EXPECT_TRUE(valid(b));
  EXPECT_TRUE(busy(b));
  EXPECT_EQ(fp_of(b), 0x7E);
  EXPECT_EQ(b & kVerMask, 0u);  // 63 + 1 wraps to 0
}

TEST(Layout, UpdateLogEntryCachelinePadded) {
  EXPECT_EQ(sizeof(UpdateLogEntry) % nvm::kCacheLine, 0u);
  EXPECT_GE(sizeof(UpdateLogEntry), 64u);
}

TEST(Layout, SuperblockHoldsResizeStateMachine) {
  HdnhSuper s{};
  s.level_number.store(3);
  s.rehash_progress.store(42);
  EXPECT_EQ(s.level_number.load(), 3u);
  EXPECT_EQ(s.rehash_progress.load(), 42u);
  EXPECT_LE(sizeof(HdnhSuper), 256u);  // fits one block comfortably
}

TEST(Layout, KeyValueEqualityIsBytewise) {
  Key a = make_key(5), b = make_key(5);
  EXPECT_TRUE(a == b);
  b.b[0] ^= 1;
  EXPECT_FALSE(a == b);

  Value va = make_value(5), vb = make_value(5);
  EXPECT_TRUE(va == vb);
  vb.b[14] ^= 1;
  EXPECT_FALSE(va == vb);
}

}  // namespace
}  // namespace hdnh
