#include "api/factory.h"

#include <gtest/gtest.h>

#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh {
namespace {

TEST(Factory, CreatesEverySchemeWithWorkingOps) {
  for (const std::string scheme :
       {"hdnh", "hdnh-lru", "hdnh-noocf", "hdnh-nohot", "hdnh-bg", "level",
        "cceh", "path"}) {
    nvm::PmemPool pool(128ull << 20);
    nvm::PmemAllocator alloc(pool);
    TableOptions opts;
    opts.capacity = 4096;
    auto t = create_table(scheme, alloc, opts);
    ASSERT_NE(t, nullptr) << scheme;
    EXPECT_TRUE(t->insert(make_key(1), make_value(1))) << scheme;
    Value v;
    EXPECT_TRUE(t->search(make_key(1), &v)) << scheme;
    EXPECT_TRUE(v == make_value(1)) << scheme;
    EXPECT_STRNE(t->name(), "") << scheme;
  }
}

TEST(Factory, UnknownSchemeThrows) {
  nvm::PmemPool pool(8 << 20);
  nvm::PmemAllocator alloc(pool);
  EXPECT_THROW(create_table("nosuch", alloc, TableOptions{}),
               std::invalid_argument);
}

TEST(Factory, UnknownSchemeErrorListsAllKnownSchemes) {
  nvm::PmemPool pool(8 << 20);
  nvm::PmemAllocator alloc(pool);
  try {
    create_table("nosuch", alloc, TableOptions{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nosuch"), std::string::npos) << msg;
    for (const auto& known : known_schemes()) {
      EXPECT_NE(msg.find(known), std::string::npos) << known << ": " << msg;
    }
    EXPECT_NE(msg.find("@N"), std::string::npos) << msg;
  }
  // The unknown-base check fires for sharded spellings too.
  EXPECT_THROW(create_table("nosuch@4", alloc, TableOptions{}),
               std::invalid_argument);
}

TEST(Factory, ParseSchemeSplitsShardSuffix) {
  EXPECT_EQ(parse_scheme("hdnh").base, "hdnh");
  EXPECT_EQ(parse_scheme("hdnh").shards, 0u);
  EXPECT_EQ(parse_scheme("hdnh@8").base, "hdnh");
  EXPECT_EQ(parse_scheme("hdnh@8").shards, 8u);
  EXPECT_EQ(parse_scheme("hdnh-lru@2").base, "hdnh-lru");
  EXPECT_THROW(parse_scheme("hdnh@"), std::invalid_argument);
  EXPECT_THROW(parse_scheme("hdnh@x"), std::invalid_argument);
  EXPECT_THROW(parse_scheme("hdnh@0"), std::invalid_argument);
  EXPECT_THROW(parse_scheme("hdnh@9999"), std::invalid_argument);
}

TEST(Factory, ShardSuffixBuildsShardedTable) {
  nvm::PmemPool pool(512ull << 20);
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = 4096;
  auto t = create_table("hdnh@4", alloc, opts);
  EXPECT_STREQ(t->name(), "HDNH@4");
  for (uint64_t i = 0; i < 2000; ++i)
    ASSERT_TRUE(t->insert(make_key(i), make_value(i))) << i;
  EXPECT_EQ(t->size(), 2000u);
  Value v;
  for (uint64_t i = 0; i < 2000; ++i)
    ASSERT_TRUE(t->search(make_key(i), &v)) << i;
}

TEST(Factory, ReopeningShardedPoolWithPlainSchemeStaysSharded) {
  nvm::PmemPool pool(512ull << 20);
  TableOptions opts;
  opts.capacity = 4096;
  {
    nvm::PmemAllocator alloc(pool);
    auto t = create_table("hdnh@4", alloc, opts);
    for (uint64_t i = 0; i < 500; ++i)
      ASSERT_TRUE(t->insert(make_key(i), make_value(i)));
  }
  // A plain "hdnh" open must adopt the persisted 4-shard carve instead of
  // formatting a second single table over the parent allocator.
  nvm::PmemAllocator alloc(pool);
  auto t = create_table("hdnh", alloc, opts);
  EXPECT_STREQ(t->name(), "HDNH@4");
  Value v;
  for (uint64_t i = 0; i < 500; ++i)
    ASSERT_TRUE(t->search(make_key(i), &v)) << i;
}

TEST(Factory, SuffixOverridesOptionsShards) {
  nvm::PmemPool pool(512ull << 20);
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = 4096;
  opts.sharding.initial_shards = 8;
  auto t = create_table("hdnh@2", alloc, opts);
  EXPECT_STREQ(t->name(), "HDNH@2");
}

TEST(Factory, SchemeVariantsConfigured) {
  nvm::PmemPool pool(256ull << 20);
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = 4096;
  auto lru = create_table("hdnh-lru", alloc, opts);
  EXPECT_STREQ(lru->name(), "HDNH-LRU");
  auto plain = create_table("level", alloc, opts);
  EXPECT_STREQ(plain->name(), "LEVEL");
}

TEST(Factory, PoolHintsArePositiveAndScale) {
  for (const std::string scheme : {"hdnh", "level", "cceh", "path"}) {
    const uint64_t small = pool_bytes_hint(scheme, 10000);
    const uint64_t big = pool_bytes_hint(scheme, 10000000);
    EXPECT_GT(small, 0u) << scheme;
    EXPECT_GT(big, small) << scheme;
  }
}

TEST(Factory, PaperSchemesOrdered) {
  const auto schemes = paper_schemes();
  ASSERT_EQ(schemes.size(), 4u);
  EXPECT_EQ(schemes[0], "path");
  EXPECT_EQ(schemes[3], "hdnh");
}

// ---- create_kv_store: the variable-length surface ----

TEST(Factory, KvStoreVkvSchemeSelectsValueLog) {
  nvm::PmemPool pool(kv_pool_bytes_hint("vkv", 4096, 256));
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = 4096;
  auto kv = create_kv_store("vkv", alloc, opts);
  ASSERT_NE(kv, nullptr);
  EXPECT_EQ(std::string(kv->name()).rfind("vkv(", 0), 0u) << kv->name();
  EXPECT_EQ(kv->max_key_len(), 64u * 1024);
  EXPECT_EQ(kv->max_value_len(), 16u * 1024 * 1024);
  ASSERT_TRUE(kv->put("a-key-longer-than-fixed-records-allow",
                      std::string(5000, 'v'))
                  .ok());
  std::string v;
  ASSERT_TRUE(kv->get("a-key-longer-than-fixed-records-allow", &v).ok());
  EXPECT_EQ(v, std::string(5000, 'v'));
}

TEST(Factory, KvStoreVkvShardSuffixShardsTheIndex) {
  nvm::PmemPool pool(kv_pool_bytes_hint("vkv@2", 4096, 256));
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = 4096;
  auto kv = create_kv_store("vkv@2", alloc, opts);
  ASSERT_NE(kv, nullptr);
  EXPECT_NE(std::string(kv->name()).find("@2"), std::string::npos)
      << kv->name();
  ASSERT_TRUE(kv->put("k", "v").ok());
}

TEST(Factory, KvStoreValueLogFlagSelectsVkvForAnyScheme) {
  nvm::PmemPool pool(kv_pool_bytes_hint("vkv", 4096, 256));
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = 4096;
  opts.value_log = true;
  auto kv = create_kv_store("hdnh", alloc, opts);
  ASSERT_NE(kv, nullptr);
  EXPECT_EQ(std::string(kv->name()).rfind("vkv(", 0), 0u) << kv->name();
  EXPECT_EQ(kv->max_value_len(), 16u * 1024 * 1024);
}

TEST(Factory, KvStoreFixedFallbackKeepsRecordLimits) {
  nvm::PmemPool pool(pool_bytes_hint("hdnh@2", 8192));
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = 4096;
  auto kv = create_kv_store("hdnh@2", alloc, opts);
  ASSERT_NE(kv, nullptr);
  EXPECT_EQ(kv->max_key_len(), kMaxWireKeyLen);
  EXPECT_EQ(kv->max_value_len(), kMaxWireValueLen);
  ASSERT_TRUE(kv->put("short-key", "v").ok());
  std::string v;
  ASSERT_TRUE(kv->get("short-key", &v).ok());
  EXPECT_EQ(v, "v");
  EXPECT_EQ(kv->put("k", std::string(kMaxWireValueLen + 1, 'v')).code(),
            StatusCode::kInvalidArgument);
}

TEST(Factory, KvPoolHintsArePositiveAndScaleWithValueSize) {
  const uint64_t small = kv_pool_bytes_hint("vkv", 10000, 64);
  const uint64_t big_values = kv_pool_bytes_hint("vkv", 10000, 64 * 1024);
  const uint64_t more_items = kv_pool_bytes_hint("vkv", 1000000, 64);
  EXPECT_GT(small, 0u);
  EXPECT_GT(big_values, small);
  EXPECT_GT(more_items, small);
}

}  // namespace
}  // namespace hdnh
