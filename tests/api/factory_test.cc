#include "api/factory.h"

#include <gtest/gtest.h>

#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh {
namespace {

TEST(Factory, CreatesEverySchemeWithWorkingOps) {
  for (const std::string scheme :
       {"hdnh", "hdnh-lru", "hdnh-noocf", "hdnh-nohot", "hdnh-bg", "level",
        "cceh", "path"}) {
    nvm::PmemPool pool(128ull << 20);
    nvm::PmemAllocator alloc(pool);
    TableOptions opts;
    opts.capacity = 4096;
    auto t = create_table(scheme, alloc, opts);
    ASSERT_NE(t, nullptr) << scheme;
    EXPECT_TRUE(t->insert(make_key(1), make_value(1))) << scheme;
    Value v;
    EXPECT_TRUE(t->search(make_key(1), &v)) << scheme;
    EXPECT_TRUE(v == make_value(1)) << scheme;
    EXPECT_STRNE(t->name(), "") << scheme;
  }
}

TEST(Factory, UnknownSchemeThrows) {
  nvm::PmemPool pool(8 << 20);
  nvm::PmemAllocator alloc(pool);
  EXPECT_THROW(create_table("nosuch", alloc, TableOptions{}),
               std::invalid_argument);
}

TEST(Factory, SchemeVariantsConfigured) {
  nvm::PmemPool pool(256ull << 20);
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = 4096;
  auto lru = create_table("hdnh-lru", alloc, opts);
  EXPECT_STREQ(lru->name(), "HDNH-LRU");
  auto plain = create_table("level", alloc, opts);
  EXPECT_STREQ(plain->name(), "LEVEL");
}

TEST(Factory, PoolHintsArePositiveAndScale) {
  for (const std::string scheme : {"hdnh", "level", "cceh", "path"}) {
    const uint64_t small = pool_bytes_hint(scheme, 10000);
    const uint64_t big = pool_bytes_hint(scheme, 10000000);
    EXPECT_GT(small, 0u) << scheme;
    EXPECT_GT(big, small) << scheme;
  }
}

TEST(Factory, PaperSchemesOrdered) {
  const auto schemes = paper_schemes();
  ASSERT_EQ(schemes.size(), 4u);
  EXPECT_EQ(schemes[0], "path");
  EXPECT_EQ(schemes[3], "hdnh");
}

}  // namespace
}  // namespace hdnh
