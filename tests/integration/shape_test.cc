// Shape tests: the paper's comparative claims, asserted on the emulated
// device's per-op traffic counters rather than on wall-clock throughput —
// so they hold on any host and fail if a scheme's cost model regresses.
//
// These are the load-bearing facts behind every figure:
//   Fig 13/14 orderings <- per-op NVM reads/writes below;
//   Fig 12 rise with skew <- hot-table hit counters;
//   §3.6 lock claims <- zero search-path writes for HDNH only.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "api/factory.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "ycsb/runner.h"

namespace hdnh {
namespace {

struct PerOp {
  double reads = 0;
  double read_blocks = 0;
  double writes = 0;
  double write_lines = 0;
  double hot_hits = 0;
};

PerOp measure(const std::string& scheme, const ycsb::WorkloadSpec& spec,
              uint64_t preload = 20000, uint64_t ops = 30000) {
  const bool grows = spec.insert > 0;
  nvm::PmemPool pool(pool_bytes_hint(scheme, preload + (grows ? ops : 0)));
  nvm::PmemAllocator alloc(pool);
  TableOptions topts;
  topts.capacity = scheme == "path" ? preload + ops + 1024 : preload;
  auto table = create_table(scheme, alloc, topts);
  ycsb::preload(*table, preload);
  auto r = ycsb::run(*table, spec, preload, ops);
  const double n = static_cast<double>(r.ops);
  return PerOp{static_cast<double>(r.nvm.nvm_read_ops) / n,
               static_cast<double>(r.nvm.nvm_read_blocks) / n,
               static_cast<double>(r.nvm.nvm_write_ops) / n,
               static_cast<double>(r.nvm.nvm_write_lines) / n,
               static_cast<double>(r.nvm.dram_hot_hits) / n};
}

TEST(Shape, NegativeSearchReadOrdering) {
  auto spec = ycsb::WorkloadSpec::NegativeRead();
  const PerOp hdnh = measure("hdnh", spec);
  const PerOp cceh = measure("cceh", spec);
  const PerOp level = measure("level", spec);
  const PerOp path = measure("path", spec);
  // The OCF claim: misses are resolved in DRAM.
  EXPECT_LT(hdnh.reads, 0.5);
  // CCEH probes exactly its linear-probe distance.
  EXPECT_NEAR(cceh.reads, 4.0, 0.2);
  // Level probes up to 4 (often exactly 4 on a miss), multi-block buckets.
  EXPECT_GE(level.reads, 3.0);
  EXPECT_GT(level.read_blocks, level.reads);  // 132 B buckets span blocks
  // Path walks both paths through its levels: the O(log B) cost.
  EXPECT_GE(path.reads, 8.0);
  // Full ordering.
  EXPECT_LT(hdnh.reads, cceh.reads);
  EXPECT_LE(cceh.reads, level.reads + 0.5);
  EXPECT_LT(level.reads, path.reads);
}

TEST(Shape, SearchPathWritesOnlyForInNvmLocks) {
  auto spec = ycsb::WorkloadSpec::ReadOnly();
  spec.dist = ycsb::Dist::kUniform;
  // §3.6: HDNH's lock state lives in DRAM — zero NVM writes to read.
  EXPECT_DOUBLE_EQ(measure("hdnh", spec).writes, 0.0);
  EXPECT_DOUBLE_EQ(measure("hdnh-nohot", spec).writes, 0.0);
  // Baselines pay lock+unlock per search (>= 2 line writebacks).
  EXPECT_GE(measure("cceh", spec).write_lines, 2.0);
  EXPECT_GE(measure("level", spec).write_lines, 2.0);
  EXPECT_GE(measure("path", spec).write_lines, 2.0);
}

TEST(Shape, PositiveSearchReadOrdering) {
  auto spec = ycsb::WorkloadSpec::ReadOnly();
  spec.dist = ycsb::Dist::kUniform;
  const PerOp hdnh = measure("hdnh-nohot", spec);  // isolate the OCF
  const PerOp cceh = measure("cceh", spec);
  const PerOp level = measure("level", spec);
  // With fingerprints, a hit costs ~1 slot read; baselines scan buckets.
  EXPECT_LT(hdnh.reads, 1.3);
  EXPECT_GT(cceh.reads, 1.0);
  EXPECT_GT(level.read_blocks, hdnh.read_blocks);
}

TEST(Shape, HotTableAbsorbsSkew) {
  // Fig 12's mechanism: hot-hit fraction rises with zipf skew for HDNH.
  const PerOp s05 = measure("hdnh", ycsb::WorkloadSpec::ReadOnly(0.5));
  const PerOp s099 = measure("hdnh", ycsb::WorkloadSpec::ReadOnly(0.99));
  const PerOp s122 = measure("hdnh", ycsb::WorkloadSpec::ReadOnly(1.22));
  EXPECT_LT(s05.hot_hits, s099.hot_hits);
  EXPECT_LT(s099.hot_hits, s122.hot_hits);
  EXPECT_GT(s122.hot_hits, 0.7);
  // And NVM reads fall correspondingly.
  EXPECT_GT(s05.reads, s122.reads);
}

TEST(Shape, InsertReadTrafficOrdering) {
  auto spec = ycsb::WorkloadSpec::InsertOnly();
  const PerOp hdnh = measure("hdnh", spec);
  const PerOp cceh = measure("cceh", spec);
  const PerOp level = measure("level", spec);
  // The OCF resolves the duplicate check in DRAM; baselines probe NVM.
  EXPECT_LT(hdnh.reads, 1.0);
  EXPECT_GT(cceh.reads, 2.0);
  EXPECT_GT(level.reads, 2.0);
}

TEST(Shape, OcfAblationBlowsUpMissReads) {
  auto spec = ycsb::WorkloadSpec::NegativeRead();
  const PerOp with = measure("hdnh-nohot", spec);
  const PerOp without = measure("hdnh-noocf", spec);
  EXPECT_GT(without.reads, with.reads * 10);
}

TEST(Shape, RaflHitRateAtLeastLruUnderHeavySkew) {
  const PerOp rafl = measure("hdnh", ycsb::WorkloadSpec::ReadOnly(1.22));
  const PerOp lru = measure("hdnh-lru", ycsb::WorkloadSpec::ReadOnly(1.22));
  // Both policies cache well; RAFL must not be materially worse, and the
  // Fig 12 advantage comes from its cheaper maintenance (timed elsewhere).
  EXPECT_GT(rafl.hot_hits, lru.hot_hits * 0.9);
}

TEST(Shape, HdnhBucketsAreBlockAligned) {
  // Every HDNH NVT read touches exactly one 256 B block per slot probe /
  // bucket scan (no straddling): blocks/op == reads/op for searches.
  auto spec = ycsb::WorkloadSpec::ReadOnly();
  spec.dist = ycsb::Dist::kUniform;
  const PerOp hdnh = measure("hdnh-nohot", spec);
  EXPECT_DOUBLE_EQ(hdnh.reads, hdnh.read_blocks);
}

}  // namespace
}  // namespace hdnh
