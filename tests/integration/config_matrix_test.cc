// Configuration-matrix golden tests: HDNH's feature switches composed in
// every combination (OCF x hot-table policy x sync mode x promotion), each
// running a randomized golden-model sequence. Catches interactions between
// mechanisms that single-switch ablation tests miss.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/random.h"
#include "hdnh/hdnh.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh {
namespace {

struct MatrixConfig {
  bool ocf;
  bool hot;
  bool lru;
  bool background;
  bool promote;
};

class HdnhConfigMatrix : public ::testing::TestWithParam<MatrixConfig> {};

TEST_P(HdnhConfigMatrix, GoldenModelHolds) {
  const MatrixConfig& m = GetParam();
  HdnhConfig cfg;
  cfg.initial_capacity = 4096;
  cfg.segment_bytes = 4096;
  cfg.enable_ocf = m.ocf;
  cfg.enable_hot_table = m.hot;
  cfg.hot_policy =
      m.lru ? HdnhConfig::HotPolicy::kLru : HdnhConfig::HotPolicy::kRafl;
  cfg.sync_mode = m.background ? HdnhConfig::SyncMode::kBackground
                               : HdnhConfig::SyncMode::kInline;
  cfg.promote_on_search = m.promote;

  nvm::PmemPool pool(256ull << 20);
  nvm::PmemAllocator alloc(pool);
  Hdnh table(alloc, cfg);

  std::unordered_map<uint64_t, uint64_t> model;
  Rng rng(0xC0FFEE ^ (m.ocf << 1) ^ (m.hot << 2) ^ (m.lru << 3) ^
          (m.background << 4) ^ (m.promote << 5));
  constexpr uint64_t kKeySpace = 2000;
  Value v;
  for (int op = 0; op < 25000; ++op) {
    const uint64_t k = rng.next_below(kKeySpace);
    const uint64_t vid = rng.next_below(1 << 18);
    switch (rng.next_below(5)) {
      case 0:
      case 1: {
        const bool hit = table.search(make_key(k), &v);
        ASSERT_EQ(hit, model.count(k) == 1) << "op " << op;
        if (hit) ASSERT_TRUE(v == make_value(model[k])) << "op " << op;
        break;
      }
      case 2:
        if (table.insert(make_key(k), make_value(vid))) model[k] = vid;
        break;
      case 3:
        if (table.update(make_key(k), make_value(vid))) model[k] = vid;
        break;
      case 4:
        ASSERT_EQ(table.erase(make_key(k)), model.erase(k) == 1);
        break;
    }
  }
  ASSERT_EQ(table.size(), model.size());
  for (const auto& [k, vid] : model) {
    ASSERT_TRUE(table.search(make_key(k), &v)) << k;
    ASSERT_TRUE(v == make_value(vid)) << k;
  }
  auto rep = table.check_integrity();
  EXPECT_TRUE(rep.ok());
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixConfig>& info) {
  const MatrixConfig& m = info.param;
  std::string n;
  n += m.ocf ? "ocf_" : "noocf_";
  n += !m.hot ? "nohot" : (m.lru ? "lru" : "rafl");
  n += m.background ? "_bg" : "_inline";
  n += m.promote ? "_promote" : "_nopromote";
  return n;
}

std::vector<MatrixConfig> matrix_cases() {
  std::vector<MatrixConfig> cases;
  for (bool ocf : {true, false}) {
    for (int hotmode = 0; hotmode < 3; ++hotmode) {  // none / rafl / lru
      for (bool bg : {false, true}) {
        for (bool promote : {true, false}) {
          if (hotmode == 0 && (bg || !promote)) continue;  // no hot: collapse
          cases.push_back(MatrixConfig{ocf, hotmode != 0, hotmode == 2, bg,
                                       promote});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, HdnhConfigMatrix,
                         ::testing::ValuesIn(matrix_cases()), matrix_name);

}  // namespace
}  // namespace hdnh
