// Differential ("golden model") testing: every scheme runs long random
// operation sequences in lockstep with std::unordered_map; any divergence
// in return values, looked-up values, or final contents is a bug. The
// scheme x seed matrix gives broad randomized coverage with deterministic
// reproduction (the failing seed is in the test name).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "api/factory.h"
#include "common/random.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh {
namespace {

class GoldenModel
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(GoldenModel, RandomOpsMatchReferenceMap) {
  const auto& [scheme, seed] = GetParam();
  nvm::PmemPool pool(512ull << 20);
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = 1 << 13;
  auto table = create_table(scheme, alloc, opts);

  std::unordered_map<uint64_t, uint64_t> model;  // key id -> value id
  Rng rng(seed);
  constexpr uint64_t kKeySpace = 2500;
  constexpr int kOps = 30000;

  for (int op = 0; op < kOps; ++op) {
    const uint64_t k = rng.next_below(kKeySpace);
    const uint64_t vid = rng.next_below(1 << 20);
    switch (rng.next_below(5)) {
      case 0:
      case 1: {  // search (weighted 2x, like real workloads)
        Value v;
        const bool hit = table->search(make_key(k), &v);
        const auto it = model.find(k);
        ASSERT_EQ(hit, it != model.end()) << "op " << op << " key " << k;
        if (hit) {
          ASSERT_TRUE(v == make_value(it->second))
              << "op " << op << " key " << k << ": wrong value";
        }
        break;
      }
      case 2: {  // insert
        const bool ok = table->insert(make_key(k), make_value(vid));
        ASSERT_EQ(ok, model.find(k) == model.end()) << "op " << op;
        if (ok) model[k] = vid;
        break;
      }
      case 3: {  // update
        const bool ok = table->update(make_key(k), make_value(vid));
        ASSERT_EQ(ok, model.find(k) != model.end()) << "op " << op;
        if (ok) model[k] = vid;
        break;
      }
      case 4: {  // erase
        const bool ok = table->erase(make_key(k));
        ASSERT_EQ(ok, model.erase(k) == 1) << "op " << op;
        break;
      }
    }
    ASSERT_EQ(table->size(), model.size()) << "op " << op;
  }

  // Final sweep: exact content equality in both directions.
  Value v;
  for (const auto& [k, vid] : model) {
    ASSERT_TRUE(table->search(make_key(k), &v)) << "final: lost key " << k;
    ASSERT_TRUE(v == make_value(vid)) << "final: wrong value for " << k;
  }
  for (uint64_t k = 0; k < kKeySpace; ++k) {
    if (!model.count(k)) {
      ASSERT_FALSE(table->search(make_key(k), &v)) << "final: phantom " << k;
    }
  }
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<std::string, uint64_t>>& info) {
  std::string n = std::get<0>(info.param);
  for (auto& c : n)
    if (c == '-') c = '_';
  return n + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, GoldenModel,
    ::testing::Combine(::testing::Values("hdnh", "hdnh-lru", "hdnh-noocf",
                                         "hdnh-nohot", "hdnh-bg", "level",
                                         "cceh", "path"),
                       ::testing::Values(1u, 2u, 3u)),
    param_name);

// Same lockstep discipline, but the HDNH table additionally survives a
// clean-shutdown reattach every few thousand ops — the model must match
// across recoveries too.
class GoldenModelWithRecovery : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GoldenModelWithRecovery, ModelSurvivesReattaches) {
  const uint64_t seed = GetParam();
  nvm::PmemPool pool(512ull << 20);
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = 1 << 12;
  auto table = create_table("hdnh", alloc, opts);

  std::unordered_map<uint64_t, uint64_t> model;
  Rng rng(seed);
  constexpr uint64_t kKeySpace = 2000;

  for (int round = 0; round < 5; ++round) {
    for (int op = 0; op < 5000; ++op) {
      const uint64_t k = rng.next_below(kKeySpace);
      const uint64_t vid = rng.next_below(1 << 20);
      switch (rng.next_below(3)) {
        case 0:
          if (table->insert(make_key(k), make_value(vid)) !=
              (model.find(k) == model.end())) {
            FAIL() << "insert divergence";
          }
          if (!model.count(k)) model[k] = vid;
          break;
        case 1:
          if (table->update(make_key(k), make_value(vid))) model[k] = vid;
          break;
        case 2:
          ASSERT_EQ(table->erase(make_key(k)), model.erase(k) == 1);
          break;
      }
    }
    // Clean shutdown + recovery.
    table.reset();
    table = create_table("hdnh", alloc, opts);
    ASSERT_EQ(table->size(), model.size()) << "round " << round;
    Value v;
    for (const auto& [k, vid] : model) {
      ASSERT_TRUE(table->search(make_key(k), &v)) << k;
      ASSERT_TRUE(v == make_value(vid)) << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenModelWithRecovery,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace hdnh
