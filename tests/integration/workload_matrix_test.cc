// End-to-end workload matrix: every scheme x every canned YCSB workload
// through the multi-threaded runner, verifying hit-count invariants and
// table-state postconditions. This is the same path the bench binaries
// drive, so a green matrix here means bench numbers measure real work.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/factory.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "ycsb/runner.h"

namespace hdnh {
namespace {

struct MatrixCase {
  std::string scheme;
  std::string workload;
};

class WorkloadMatrix : public ::testing::TestWithParam<MatrixCase> {};

ycsb::WorkloadSpec spec_by_name(const std::string& name) {
  if (name == "insert") return ycsb::WorkloadSpec::InsertOnly();
  if (name == "read") return ycsb::WorkloadSpec::ReadOnly();
  if (name == "negread") return ycsb::WorkloadSpec::NegativeRead();
  if (name == "delete") return ycsb::WorkloadSpec::DeleteOnly();
  if (name == "mixed") return ycsb::WorkloadSpec::Mixed5050();
  if (name == "ycsba") return ycsb::WorkloadSpec::YcsbA();
  if (name == "ycsbb") return ycsb::WorkloadSpec::YcsbB();
  return ycsb::WorkloadSpec::YcsbC();
}

TEST_P(WorkloadMatrix, RunsCleanAndCountsAddUp) {
  const auto& [scheme, workload] = GetParam();
  constexpr uint64_t kPreload = 6000;
  constexpr uint64_t kOps = 20000;

  nvm::PmemPool pool(512ull << 20);
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = scheme == "path" ? kPreload + kOps + 1024 : kPreload;
  auto table = create_table(scheme, alloc, opts);
  ycsb::preload(*table, kPreload, 2);
  ASSERT_EQ(table->size(), kPreload);

  const auto spec = spec_by_name(workload);
  ycsb::RunOptions ro;
  ro.threads = 3;
  auto r = ycsb::run(*table, spec, kPreload, kOps, ro);
  EXPECT_EQ(r.ops, kOps);

  if (workload == "insert") {
    EXPECT_EQ(r.hits, kOps);
    EXPECT_EQ(table->size(), kPreload + kOps);
  } else if (workload == "read" || workload == "ycsbc") {
    EXPECT_EQ(r.hits, kOps);  // positive reads all hit
    EXPECT_EQ(table->size(), kPreload);
  } else if (workload == "negread") {
    EXPECT_EQ(r.hits, 0u);
    EXPECT_EQ(table->size(), kPreload);
  } else if (workload == "delete") {
    EXPECT_EQ(r.hits, std::min(kOps, kPreload));
    EXPECT_EQ(table->size(), kPreload - std::min(kOps, kPreload));
  } else if (workload == "ycsba" || workload == "ycsbb") {
    EXPECT_EQ(r.hits, kOps);  // reads and updates over live keys
    EXPECT_EQ(table->size(), kPreload);
  } else if (workload == "mixed") {
    EXPECT_EQ(r.hits, kOps);
    EXPECT_GT(table->size(), kPreload);
  }

  // Values remain verifiable for a sample of surviving keys.
  if (workload != "delete") {
    Value v;
    for (uint64_t i = 0; i < kPreload; i += 997) {
      ASSERT_TRUE(table->search(make_key(i), &v)) << i;
    }
  }
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string n = info.param.scheme + "_" + info.param.workload;
  for (auto& c : n)
    if (c == '-') c = '_';
  return n;
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  for (const char* scheme : {"hdnh", "hdnh-bg", "level", "cceh", "path"}) {
    for (const char* wl :
         {"insert", "read", "negread", "delete", "mixed", "ycsba", "ycsbb"}) {
      // PATH is static: skip workloads that grow the table beyond sizing.
      cases.push_back({scheme, wl});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, WorkloadMatrix,
                         ::testing::ValuesIn(all_cases()), matrix_name);

}  // namespace
}  // namespace hdnh
