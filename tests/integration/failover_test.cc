// Failover sweep: kill the primary at every acknowledgement event in a
// pipelined write stream, PROMOTE the replica, and assert the
// acknowledged-op oracle — no acked write lost, no torn in-flight write,
// no ghost key, survivor writable (docs/crash_testing.md).
#include <gtest/gtest.h>

#include <string>

#include "net/client.h"
#include "net/repl.h"
#include "testing/failover.h"

namespace hdnh::failover {
namespace {

// Every kill point in a 48-write stream. This is the acceptance sweep:
// each point builds a fresh pair, kills at ack k, promotes, and runs the
// oracle; a single lost or ghost write fails the test with the point named.
TEST(Failover, SweepNoAckedWriteLost) {
  PairOptions pair;
  pair.capacity = 1 << 12;
  pair.threads = 1;
  SweepResult res = sweep_failover(/*writes=*/48, /*stride=*/1,
                                   /*seed=*/7001, pair);
  EXPECT_EQ(res.points, 47u);
  for (const std::string& m : res.messages) {
    ADD_FAILURE() << m;
  }
  EXPECT_EQ(res.failures, 0u);
}

// A deep pipeline (depth 32) killed mid-stream: up to 31 writes in flight
// when the primary dies. Exercises the in-flight absent-or-complete arm of
// the oracle much harder than the depth-8 sweep.
TEST(Failover, DeepPipelineMidStreamKill) {
  PointOptions p;
  p.writes = 256;
  p.depth = 32;
  p.kill_after_acks = 100;
  p.seed = 8002;
  p.pair.capacity = 1 << 12;
  p.pair.threads = 1;
  const std::string msg = run_failover_point(p);
  EXPECT_EQ(msg, "");
}

// Kill at the very last ack: everything the writer attempted was
// acknowledged, so the promoted replica must hold the complete set.
TEST(Failover, KillAfterFinalAck) {
  PointOptions p;
  p.writes = 64;
  p.depth = 8;
  p.kill_after_acks = 64;
  p.seed = 8003;
  p.pair.capacity = 1 << 12;
  p.pair.threads = 1;
  const std::string msg = run_failover_point(p);
  EXPECT_EQ(msg, "");
}

// The promoted node is a real primary: it takes sustained pipelined
// writes and serves them back after the failover, not just the oracle's
// single probe.
TEST(Failover, PromotedServesSustainedWrites) {
  PairOptions popts;
  popts.capacity = 1 << 12;
  popts.threads = 1;
  Pair pair(popts);
  ASSERT_TRUE(pair.wait_for_sink());

  {
    net::Client w;
    w.set_timeouts({2000, 2000, 2000});
    w.connect("127.0.0.1", pair.primary_port());
    for (int i = 0; i < 32; ++i) {
      w.set("pre" + std::to_string(i), "v" + std::to_string(i));
    }
    pair.kill_primary();
  }
  pair.promote_replica();
  ASSERT_TRUE(pair.replica_session().promoted());

  net::Client c;
  c.set_timeouts({2000, 2000, 2000});
  c.connect("127.0.0.1", pair.replica_port());
  // Pipelined mixed traffic through the survivor: overwrite the inherited
  // keys and add fresh ones.
  for (int i = 0; i < 32; ++i) {
    c.pipeline({"SET", "pre" + std::to_string(i), "n" + std::to_string(i)});
    c.pipeline({"SET", "post" + std::to_string(i), "p" + std::to_string(i)});
  }
  c.flush();
  for (int i = 0; i < 64; ++i) {
    ASSERT_FALSE(c.read_reply().is_error());
  }
  std::string v;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(c.get("pre" + std::to_string(i), &v));
    EXPECT_EQ(v, "n" + std::to_string(i));
    ASSERT_TRUE(c.get("post" + std::to_string(i), &v));
    EXPECT_EQ(v, "p" + std::to_string(i));
  }
  EXPECT_EQ(c.dbsize(), 64);
}

}  // namespace
}  // namespace hdnh::failover
