// Slow-op ring semantics (obs/slowlog.h): threshold admission, FIFO
// eviction once the 128-entry ring wraps, newest-first read-out, and ids
// that stay monotone across RESET (Redis SLOWLOG behavior: RESET empties
// the log but never reuses an id).
#include "obs/slowlog.h"

#include <gtest/gtest.h>

#include <vector>

namespace hdnh::obs {
namespace {

class SlowLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SlowLog::reset();
    saved_threshold_ = SlowLog::threshold_ns();
  }
  void TearDown() override {
    SlowLog::reset();
    SlowLog::set_threshold_ns(saved_threshold_);
  }
  uint64_t saved_threshold_ = 0;
};

TEST_F(SlowLogTest, ThresholdGatesAdmission) {
  SlowLog::set_threshold_ns(1'000'000);  // 1 ms
  SlowLog::maybe_record(Op::kGet, 999'999, 1, 2, 0);   // under: dropped
  EXPECT_EQ(SlowLog::len(), 0u);
  SlowLog::maybe_record(Op::kGet, 1'000'000, 1, 2, 0);  // at: admitted
  SlowLog::maybe_record(Op::kPut, 5'000'000, 3, 4, 7);
  EXPECT_EQ(SlowLog::len(), 2u);

  const std::vector<SlowLog::Entry> e = SlowLog::entries();
  ASSERT_EQ(e.size(), 2u);
  // Newest first.
  EXPECT_EQ(e[0].op, Op::kPut);
  EXPECT_EQ(e[0].latency_ns, 5'000'000u);
  EXPECT_EQ(e[0].d0, 3u);
  EXPECT_EQ(e[0].d1, 4u);
  EXPECT_EQ(e[0].shard, 7u);
  EXPECT_EQ(e[1].op, Op::kGet);
  EXPECT_GT(e[0].id, e[1].id);
  EXPECT_GE(e[0].ts_ns, e[1].ts_ns);
}

TEST_F(SlowLogTest, RingEvictsOldestFirst) {
  SlowLog::set_threshold_ns(1);
  const uint64_t total0 = SlowLog::total();
  const uint32_t n = SlowLog::kCapacity + 50;
  // latency encodes the admission order so eviction order is observable.
  for (uint32_t i = 0; i < n; ++i) {
    SlowLog::maybe_record(Op::kDelete, 1000 + i, i, 0, 0);
  }
  EXPECT_EQ(SlowLog::len(), uint64_t{SlowLog::kCapacity});
  EXPECT_EQ(SlowLog::total() - total0, uint64_t{n});

  const std::vector<SlowLog::Entry> e = SlowLog::entries();
  ASSERT_EQ(e.size(), size_t{SlowLog::kCapacity});
  // Newest-first walk: entry 0 is the last admitted, the tail is the oldest
  // survivor (the first 50 were evicted).
  EXPECT_EQ(e.front().latency_ns, 1000u + n - 1);
  EXPECT_EQ(e.back().latency_ns, 1000u + n - SlowLog::kCapacity);
  for (size_t i = 1; i < e.size(); ++i) {
    EXPECT_EQ(e[i - 1].id, e[i].id + 1);  // dense, strictly descending
  }

  // Bounded read-out takes the newest max entries.
  const std::vector<SlowLog::Entry> few = SlowLog::entries(10);
  ASSERT_EQ(few.size(), 10u);
  EXPECT_EQ(few.front().id, e.front().id);
}

TEST_F(SlowLogTest, ResetEmptiesButIdsStayMonotone) {
  SlowLog::set_threshold_ns(1);
  SlowLog::maybe_record(Op::kGet, 1000, 0, 0, 0);
  SlowLog::maybe_record(Op::kGet, 1000, 0, 0, 0);
  const uint64_t last_id = SlowLog::entries().front().id;

  SlowLog::reset();
  EXPECT_EQ(SlowLog::len(), 0u);
  EXPECT_TRUE(SlowLog::entries().empty());

  SlowLog::maybe_record(Op::kGet, 1000, 0, 0, 0);
  ASSERT_EQ(SlowLog::len(), 1u);
  EXPECT_GT(SlowLog::entries().front().id, last_id);
}

}  // namespace
}  // namespace hdnh::obs
