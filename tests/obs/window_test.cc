// Windowed-aggregation unit tests (obs/window.h): counts and latency
// percentiles land in the epoch that was current when they were recorded,
// merge correctly across a rotation boundary, an idle window reads exactly
// zero, and — the tsan case — recording threads racing rotate() never lose
// or double-count an operation.
#include "obs/window.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace hdnh::obs {
namespace {

constexpr uint32_t kGet = static_cast<uint32_t>(Op::kGet);
constexpr uint32_t kPut = static_cast<uint32_t>(Op::kPut);

TEST(Window, CountsLandInTheCompletedEpoch) {
  Windows::reset();
  Windows::count(Op::kGet, 10);
  Windows::count(Op::kPut, 3);

  // Not yet rotated: the in-progress epoch is invisible to snapshots.
  Windows::Snapshot s;
  Windows::snapshot(Windows::kEpochs, &s);
  EXPECT_EQ(s.epochs, 0u);
  EXPECT_EQ(s.counts[kGet], 0u);

  Windows::rotate();
  Windows::snapshot(Windows::kEpochs, &s);
  EXPECT_EQ(s.epochs, 1u);
  EXPECT_EQ(s.counts[kGet], 10u);
  EXPECT_EQ(s.counts[kPut], 3u);
  EXPECT_GT(s.window_ns, 0u);
  EXPECT_GT(s.rate(kGet), 0.0);
}

TEST(Window, IdleWindowReadsZero) {
  Windows::reset();
  Windows::count(Op::kGet, 100);
  Windows::record_latency(Op::kGet, 5000);
  Windows::rotate();  // epoch 1: busy
  Windows::rotate();  // epoch 2: idle

  // The newest completed epoch is idle: counts and percentiles are 0, no
  // lifetime bleed-through.
  Windows::Snapshot s;
  Windows::snapshot(1, &s);
  EXPECT_EQ(s.epochs, 1u);
  EXPECT_EQ(s.counts[kGet], 0u);
  EXPECT_EQ(s.latency[kGet].count(), 0u);
  EXPECT_EQ(s.latency[kGet].percentile(0.99), 0u);

  // Widening the window back over the busy epoch recovers the data.
  Windows::snapshot(2, &s);
  EXPECT_EQ(s.counts[kGet], 100u);
  EXPECT_EQ(s.latency[kGet].count(), 1u);
}

TEST(Window, PercentilesMergeAcrossRotationBoundary) {
  Windows::reset();
  // Epoch 1: 99 fast ops at ~1 us.
  for (int i = 0; i < 99; ++i) Windows::record_latency(Op::kGet, 1000);
  Windows::rotate();
  // Epoch 2: one slow op at ~1 ms.
  Windows::record_latency(Op::kGet, 1000000);
  Windows::rotate();

  Windows::Snapshot s;
  Windows::snapshot(Windows::kEpochs, &s);
  ASSERT_EQ(s.latency[kGet].count(), 100u);
  // p50 sits in the fast mode, p999 in the slow op — the merge must span
  // the boundary. Bucket resolution is ~1.6% (kSubBits=6), hence the bands.
  const uint64_t p50 = s.latency[kGet].percentile(0.50);
  const uint64_t p999 = s.latency[kGet].percentile(0.999);
  EXPECT_GE(p50, 900u);
  EXPECT_LE(p50, 1100u);
  EXPECT_GE(p999, 900000u);
  EXPECT_LE(p999, 1100000u);
  EXPECT_EQ(s.latency[kGet].max(), 1000000u);

  // A 1-epoch window sees only the slow op.
  Windows::snapshot(1, &s);
  EXPECT_EQ(s.latency[kGet].count(), 1u);
  EXPECT_GE(s.latency[kGet].percentile(0.50), 900000u);
}

TEST(Window, RingRetainsOnlyLastKEpochs) {
  Windows::reset();
  const uint64_t rot0 = Windows::rotations();  // monotone across reset()
  for (uint32_t e = 0; e < Windows::kEpochs + 4; ++e) {
    Windows::count(Op::kGet, 1);
    Windows::rotate();
  }
  Windows::Snapshot s;
  Windows::snapshot(Windows::kEpochs + 100, &s);  // asks for more than kept
  EXPECT_EQ(s.epochs, Windows::kEpochs);
  EXPECT_EQ(s.counts[kGet], uint64_t{Windows::kEpochs});
  EXPECT_EQ(Windows::rotations() - rot0, uint64_t{Windows::kEpochs} + 4);
}

// tsan: recording threads race rotate(); every op lands in exactly one
// epoch. Total rotations stay below kEpochs so nothing falls off the ring
// and conservation is exact.
TEST(Window, RotationRacingRecordingConservesCounts) {
  Windows::reset();
  constexpr uint32_t kThreads = 4;
  constexpr uint64_t kPerThread = 50000;

  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  for (uint32_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kPerThread; ++i) {
        Windows::count(Op::kGet);
        if ((i & 1023) == 0) Windows::record_latency(Op::kGet, 1000 + i);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int r = 0; r < 6; ++r) {
    Windows::rotate();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& th : pool) th.join();
  Windows::rotate();  // close the tail

  Windows::Snapshot s;
  Windows::snapshot(Windows::kEpochs, &s);
  EXPECT_EQ(s.counts[kGet], uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(s.latency[kGet].count(),
            uint64_t{kThreads} * ((kPerThread + 1023) / 1024));
}

TEST(ShardHeatWindow, AccumulatesAndRotatesPerShard) {
  Windows::reset();
  ShardHeat heat(4, "store=\"t\"");
  heat.record(1, 2000);
  heat.record(1, 4000);
  heat.record(3, 0, 5);  // latency capture off: ops only

  // Nothing completed yet.
  EXPECT_EQ(heat.window()[1].ops, 0u);

  Windows::rotate();
  const std::vector<ShardHeat::Window> w = heat.window();
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w[0].ops, 0u);
  EXPECT_EQ(w[1].ops, 2u);
  EXPECT_EQ(w[1].lat_sum_ns, 6000u);
  EXPECT_EQ(w[1].lat_count, 2u);
  EXPECT_EQ(w[3].ops, 5u);
  EXPECT_EQ(w[3].lat_count, 0u);

  // The heat is visible to scrapers via the registry while alive.
  bool seen = false;
  Windows::visit_heats([&](const ShardHeat& h) {
    if (h.label() == "store=\"t\"") seen = true;
  });
  EXPECT_TRUE(seen);
}

}  // namespace
}  // namespace hdnh::obs
