// Event tracer: ring recording, wrap/dropped accounting, the RAII Span, and
// the Chrome trace_event dump format. All tests clear the (global,
// per-process) rings first; gtest runs them on one thread so the counts
// below are exact.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "json_sanity.h"

namespace hdnh::obs {
namespace {

using testutil::json_well_formed;

TEST(Tracer, RecordClearAndCount) {
  Tracer::clear();
  EXPECT_EQ(Tracer::event_count(), 0u);
  Tracer::record("cat", "ev", 100, 50);
  Tracer::instant("cat", "marker");
  EXPECT_EQ(Tracer::event_count(), 2u);
  Tracer::clear();
  EXPECT_EQ(Tracer::event_count(), 0u);
}

TEST(Tracer, SpanRecordsScopeWithDuration) {
  Tracer::clear();
  Tracer::set_enabled(true);
  { Span s("resize", "unit_span"); }
  EXPECT_EQ(Tracer::event_count(), 1u);
  const std::string dump = Tracer::dump_json();
  EXPECT_NE(dump.find("\"name\":\"unit_span\""), std::string::npos);
  EXPECT_NE(dump.find("\"cat\":\"resize\""), std::string::npos);
  EXPECT_NE(dump.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Tracer, DisabledSpansRecordNothing) {
  Tracer::clear();
  Tracer::set_enabled(false);
  { Span s("cat", "invisible"); }
  EXPECT_EQ(Tracer::event_count(), 0u);
  Tracer::set_enabled(true);
}

TEST(Tracer, RingWrapsKeepingNewestAndReportsDropped) {
  Tracer::clear();
  const uint64_t extra = 100;
  for (uint64_t i = 0; i < Tracer::kRingEvents + extra; ++i) {
    Tracer::record("cat", i < extra ? "old" : "new", i, 1);
  }
  // Capacity retained, oldest overwritten, loss reported — never silent.
  EXPECT_EQ(Tracer::event_count(), Tracer::kRingEvents);
  const std::string dump = Tracer::dump_json();
  EXPECT_EQ(dump.find("\"name\":\"old\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"new\""), std::string::npos);
  EXPECT_NE(dump.find("\"dropped_events\":100"), std::string::npos);
  Tracer::clear();
}

TEST(Tracer, ThreadsGetDistinctTids) {
  Tracer::clear();
  Tracer::record("cat", "main_thread_ev", 1, 1);
  std::thread([] { Tracer::record("cat", "worker_ev", 2, 1); }).join();
  const std::string dump = Tracer::dump_json();
  EXPECT_NE(dump.find("\"name\":\"main_thread_ev\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"worker_ev\""), std::string::npos);
  // Two rings, two tids: the events must not share a tid value.
  const size_t a = dump.find("\"tid\":");
  const size_t b = dump.find("\"tid\":", a + 1);
  ASSERT_NE(b, std::string::npos);
  EXPECT_NE(dump.substr(a, dump.find(',', a) - a),
            dump.substr(b, dump.find(',', b) - b));
  Tracer::clear();
}

TEST(Tracer, DumpIsWellFormedChromeTraceJson) {
  Tracer::clear();
  Tracer::record("resize", "r1", 1000, 2000);
  Tracer::instant("crash_sim", "marker");
  const std::string dump = Tracer::dump_json();
  EXPECT_TRUE(json_well_formed(dump)) << dump;
  EXPECT_NE(dump.find("\"traceEvents\":["), std::string::npos);
  // ts/dur are microseconds: 1000ns span starting at 1000ns -> ts 1, dur 2.
  EXPECT_NE(dump.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(dump.find("\"dur\":2.000"), std::string::npos);
  Tracer::clear();
}

TEST(Tracer, EmptyDumpIsStillValid) {
  Tracer::clear();
  const std::string dump = Tracer::dump_json();
  EXPECT_TRUE(json_well_formed(dump)) << dump;
  EXPECT_NE(dump.find("\"traceEvents\":[]"), std::string::npos);
  EXPECT_NE(dump.find("\"dropped_events\":0"), std::string::npos);
}

}  // namespace
}  // namespace hdnh::obs
