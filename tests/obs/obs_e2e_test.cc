// End-to-end acceptance for the observability layer: a YCSB run against the
// background-sync scheme ("hdnh-bg") that forces at least one resize must
// leave (a) "resize" and "bg_flush" spans in the tracer, (b) a valid
// Prometheus scrape and JSON metrics document with the run's op counts, and
// (c) --metrics-out-style files written by the runner's reporter plumbing.
//
// The wiring (HDNH_OBS_OP_SCOPE / HDNH_OBS_SPAN call sites) compiles to
// nothing under -DHDNH_OBS=OFF, so those assertions are skipped there; the
// registry/tracer APIs themselves are exercised unconditionally by
// metrics_test.cc and trace_test.cc.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "api/factory.h"
#include "hdnh/hdnh.h"
#include "json_sanity.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "obs/obs.h"
#include "ycsb/runner.h"

namespace hdnh {
namespace {

using testutil::json_well_formed;

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

struct BgPack {
  // Small initial capacity so the insert phase below outgrows it — the run
  // must cross at least one resize for the span assertions to mean
  // anything.
  BgPack() : pool(512ull << 20), alloc(pool) {
    TableOptions opts;
    opts.capacity = 1 << 12;
    table = create_table("hdnh-bg", alloc, opts);
  }
  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  std::unique_ptr<HashTable> table;
};

TEST(ObsE2e, YcsbRunProducesSpansMetricsAndFiles) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DHDNH_OBS=OFF";

  BgPack p;
  ycsb::preload(*p.table, 4096);
  obs::Tracer::clear();
  obs::Metrics::reset_ops();

  const std::string json_path = testing::TempDir() + "obs_e2e_metrics.json";
  const std::string prom_path = testing::TempDir() + "obs_e2e_metrics.prom";
  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());

  ycsb::RunOptions opts;
  opts.threads = 2;
  opts.metrics_json_out = json_path;
  opts.metrics_prom_out = prom_path;
  const uint64_t kOps = 20000;
  auto r = ycsb::run(*p.table, ycsb::WorkloadSpec::InsertOnly(), 4096, kOps,
                     opts);
  EXPECT_EQ(r.ops, kOps);

  // The insert volume must have outgrown the 4096-slot initial table.
  auto* h = dynamic_cast<Hdnh*>(p.table.get());
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->resize_count(), 0u);

  // (a) spans: resize from do_resize, bg_flush from the writer's drain.
  const std::string trace = obs::Tracer::dump_json();
  EXPECT_TRUE(json_well_formed(trace));
  EXPECT_NE(trace.find("\"name\":\"resize\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"bg_flush\""), std::string::npos);

  // (b) live scrape: op counts of the run, in both formats.
  const std::string prom = obs::Metrics::prometheus();
  EXPECT_NE(prom.find("hdnh_ops_total{op=\"put\"} " + std::to_string(kOps)),
            std::string::npos);
  const std::string js = obs::Metrics::json();
  EXPECT_TRUE(json_well_formed(js));
  EXPECT_NE(js.find("\"put\":{\"count\":" + std::to_string(kOps)),
            std::string::npos);
  // Setting a metrics path switches latency recording on for the run.
  EXPECT_NE(js.find("\"p99_ns\""), std::string::npos);
  EXPECT_EQ(r.latency.count(), kOps);

  // (c) reporter files: written, atomic, parseable.
  const std::string file_js = slurp(json_path);
  ASSERT_FALSE(file_js.empty());
  EXPECT_TRUE(json_well_formed(file_js));
  EXPECT_NE(file_js.find("\"ops\""), std::string::npos);
  const std::string file_prom = slurp(prom_path);
  EXPECT_NE(file_prom.find("# TYPE hdnh_ops_total counter"),
            std::string::npos);
}

TEST(ObsE2e, TableGaugesRegisterAndUnregisterWithLifetime) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DHDNH_OBS=OFF";

  std::string label;
  {
    BgPack p;
    ycsb::preload(*p.table, 1000);
    const std::string prom = obs::Metrics::prometheus();
    // Per-table occupancy gauges plus the bg writer's backlog gauge.
    for (const char* name :
         {"hdnh_items", "hdnh_load_factor", "hdnh_resize_phase",
          "hdnh_bg_queue_depth"}) {
      const size_t pos = prom.find(std::string(name) + "{");
      EXPECT_NE(pos, std::string::npos) << name;
    }
    // Remember this instance's label so the post-destruction check below
    // can't be satisfied by a table from another test.
    const size_t pos = prom.find("hdnh_items{");
    ASSERT_NE(pos, std::string::npos);
    label = prom.substr(pos, prom.find('}', pos) - pos);
  }
  // Table destroyed: its gauges must be gone (a scrape now would otherwise
  // call into freed memory).
  EXPECT_EQ(obs::Metrics::prometheus().find(label), std::string::npos);
}

TEST(ObsE2e, RecoverySpansOnReattach) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DHDNH_OBS=OFF";

  nvm::PmemPool pool(256ull << 20);
  nvm::PmemAllocator alloc(pool);
  HdnhConfig cfg;
  cfg.initial_capacity = 1 << 12;
  { Hdnh t(alloc, cfg); ycsb::preload(t, 2000); }
  obs::Tracer::clear();
  {
    Hdnh t(alloc, cfg);  // re-attach runs §3.7 recovery
    EXPECT_EQ(t.size(), 2000u);
  }
  const std::string trace = obs::Tracer::dump_json();
  EXPECT_NE(trace.find("\"name\":\"attach_recover\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"rebuild_volatile\""), std::string::npos);
}

}  // namespace
}  // namespace hdnh
