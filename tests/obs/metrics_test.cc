// Metrics registry: op counting across threads, latency gating, gauge
// lifecycle, and both serializers (Prometheus text exposition + JSON).
// These tests exercise the registry API directly — the wiring into the
// store (HDNH_OBS_OP_SCOPE in hdnh.cc etc.) is covered by obs_e2e_test.cc.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <thread>
#include <vector>

#include "json_sanity.h"
#include "obs/json.h"

namespace hdnh::obs {
namespace {

using testutil::json_well_formed;

uint64_t op_count(Op op) {
  std::array<Metrics::OpSnapshot, kOpCount> ops;
  Metrics::op_snapshot(&ops);
  return ops[static_cast<uint32_t>(op)].count;
}

TEST(OpName, CoversEveryOp) {
  for (uint32_t i = 0; i < kOpCount; ++i) {
    EXPECT_STRNE(op_name(static_cast<Op>(i)), "unknown") << i;
  }
}

TEST(Metrics, CountOpAggregatesAcrossThreads) {
  const uint64_t before = op_count(Op::kGet);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 1000; ++i) Metrics::count_op(Op::kGet);
    });
  }
  for (auto& w : workers) w.join();
  Metrics::count_op(Op::kGet, 7);  // the n>1 overload
  EXPECT_EQ(op_count(Op::kGet), before + 4 * 1000 + 7);
}

TEST(Metrics, ExitedThreadsCountsAreRetained) {
  const uint64_t before = op_count(Op::kDelete);
  std::thread([] { Metrics::count_op(Op::kDelete, 13); }).join();
  EXPECT_EQ(op_count(Op::kDelete), before + 13);
}

TEST(Metrics, OpTimerCountsAlwaysTimesOnlyWhenEnabled) {
  Metrics::reset_ops();
  Metrics::set_latency_enabled(false);
  { OpTimer t(Op::kPut); }
  std::array<Metrics::OpSnapshot, kOpCount> ops;
  Metrics::op_snapshot(&ops);
  EXPECT_EQ(ops[static_cast<uint32_t>(Op::kPut)].count, 1u);
  EXPECT_EQ(ops[static_cast<uint32_t>(Op::kPut)].latency.count(), 0u);

  Metrics::set_latency_enabled(true);
  { OpTimer t(Op::kPut); }
  Metrics::set_latency_enabled(false);
  Metrics::op_snapshot(&ops);
  EXPECT_EQ(ops[static_cast<uint32_t>(Op::kPut)].count, 2u);
  EXPECT_EQ(ops[static_cast<uint32_t>(Op::kPut)].latency.count(), 1u);
}

TEST(Metrics, LatencyHistogramsMergeAcrossThreads) {
  Metrics::reset_ops();
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([t] {
      for (int i = 1; i <= 100; ++i) {
        Metrics::record_latency(Op::kGet,
                                static_cast<uint64_t>(t * 1000 + i));
      }
    });
  }
  for (auto& w : workers) w.join();
  std::array<Metrics::OpSnapshot, kOpCount> ops;
  Metrics::op_snapshot(&ops);
  const Histogram& h = ops[static_cast<uint32_t>(Op::kGet)].latency;
  EXPECT_EQ(h.count(), 300u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_GE(h.max(), 2100u);
}

TEST(Metrics, ResetOpsZerosCountsAndHistograms) {
  Metrics::count_op(Op::kUpdate, 5);
  Metrics::record_latency(Op::kUpdate, 42);
  Metrics::reset_ops();
  std::array<Metrics::OpSnapshot, kOpCount> ops;
  Metrics::op_snapshot(&ops);
  for (uint32_t i = 0; i < kOpCount; ++i) {
    EXPECT_EQ(ops[i].count, 0u) << op_name(static_cast<Op>(i));
    EXPECT_EQ(ops[i].latency.count(), 0u);
  }
}

TEST(Metrics, GaugeLifecycleInBothSerializers) {
  const uint64_t id = Metrics::add_gauge(
      "hdnh_test_gauge", "kind=\"unit\"", "a test gauge", [] { return 2.5; });
  std::string prom = Metrics::prometheus();
  EXPECT_NE(prom.find("# TYPE hdnh_test_gauge gauge"), std::string::npos);
  EXPECT_NE(prom.find("hdnh_test_gauge{kind=\"unit\"} 2.5"),
            std::string::npos);
  std::string js = Metrics::json();
  EXPECT_NE(js.find("\"hdnh_test_gauge\""), std::string::npos);

  Metrics::remove_gauge(id);
  prom = Metrics::prometheus();
  EXPECT_EQ(prom.find("hdnh_test_gauge"), std::string::npos);
  EXPECT_EQ(Metrics::json().find("hdnh_test_gauge"), std::string::npos);
}

TEST(Metrics, PrometheusTypeHeaderOncePerMetricName) {
  // Two instances of the same metric name (different labels) must share one
  // TYPE header — Prometheus rejects duplicate metadata lines.
  const uint64_t a = Metrics::add_gauge("hdnh_test_multi", "i=\"0\"", "",
                                        [] { return 1.0; });
  const uint64_t b = Metrics::add_gauge("hdnh_test_multi", "i=\"1\"", "",
                                        [] { return 2.0; });
  const std::string prom = Metrics::prometheus();
  size_t n = 0;
  for (size_t pos = prom.find("# TYPE hdnh_test_multi gauge");
       pos != std::string::npos;
       pos = prom.find("# TYPE hdnh_test_multi gauge", pos + 1)) {
    ++n;
  }
  EXPECT_EQ(n, 1u);
  EXPECT_NE(prom.find("hdnh_test_multi{i=\"0\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("hdnh_test_multi{i=\"1\"} 2"), std::string::npos);
  Metrics::remove_gauge(a);
  Metrics::remove_gauge(b);
}

TEST(Metrics, PrometheusCarriesNvmCountersAndOpCounts) {
  const std::string prom = Metrics::prometheus();
  EXPECT_NE(prom.find("# TYPE hdnh_nvm_read_ops_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE hdnh_ops_total counter"), std::string::npos);
  EXPECT_NE(prom.find("hdnh_ops_total{op=\"get\"}"), std::string::npos);
  EXPECT_NE(prom.find("hdnh_hot_hit_ratio"), std::string::npos);
  EXPECT_NE(prom.find("hdnh_ocf_false_positive_rate"), std::string::npos);
  EXPECT_NE(prom.find("hdnh_overlapped_read_fraction"), std::string::npos);
}

TEST(Metrics, PrometheusSummaryEmittedOnlyWithSamples) {
  Metrics::reset_ops();
  EXPECT_EQ(Metrics::prometheus().find("hdnh_op_latency_ns{"),
            std::string::npos);
  Metrics::record_latency(Op::kGet, 1234);
  const std::string prom = Metrics::prometheus();
  EXPECT_NE(prom.find("hdnh_op_latency_ns{op=\"get\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("hdnh_op_latency_ns_count{op=\"get\"} 1"),
            std::string::npos);
  Metrics::reset_ops();
}

TEST(Metrics, JsonIsWellFormedAndCarriesSections) {
  Metrics::count_op(Op::kGet);
  Metrics::record_latency(Op::kGet, 500);
  const std::string js = Metrics::json();
  EXPECT_TRUE(json_well_formed(js)) << js;
  for (const char* key : {"\"nvm\"", "\"ops\"", "\"gauges\"", "\"derived\"",
                          "\"hot_hit_ratio\"", "\"p99_ns\""}) {
    EXPECT_NE(js.find(key), std::string::npos) << key;
  }
}

TEST(Metrics, InstanceIdsAreMonotone) {
  const uint64_t a = Metrics::next_instance_id();
  const uint64_t b = Metrics::next_instance_id();
  EXPECT_LT(a, b);
}

// ---- JsonWriter --------------------------------------------------------

TEST(JsonWriter, NestedContainersAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.kv("a", static_cast<uint64_t>(1));
  w.key("b").begin_array().value(2).value(3).end_array();
  w.key("c").begin_object().kv("d", true).end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[2,3],\"c\":{\"d\":true}}");
  EXPECT_TRUE(json_well_formed(w.str()));
}

TEST(JsonWriter, EscapesStringsAndMapsNonFiniteToNull) {
  JsonWriter w;
  w.begin_object();
  w.kv("s", std::string("a\"b\\c\nd"));
  w.kv("inf", 1.0 / 0.0);
  w.kv("neg", -1.5);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"inf\":null,\"neg\":-1.5}");
  EXPECT_TRUE(json_well_formed(w.str()));
}

TEST(JsonWriter, RawSplicesNestedDocument) {
  JsonWriter inner;
  inner.begin_object().kv("x", static_cast<uint64_t>(9)).end_object();
  JsonWriter w;
  w.begin_object();
  w.kv("pre", static_cast<uint64_t>(1));
  w.key("inner").raw(inner.str());
  w.kv("post", static_cast<uint64_t>(2));
  w.end_object();
  EXPECT_EQ(w.str(), "{\"pre\":1,\"inner\":{\"x\":9},\"post\":2}");
  EXPECT_TRUE(json_well_formed(w.str()));
}

}  // namespace
}  // namespace hdnh::obs
