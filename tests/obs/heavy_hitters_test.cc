// Heavy-hitter sketch accuracy (obs/heavy_hitters.h): on a zipfian stream
// the merged top-k must match the exact top-k computed with full counts,
// SpaceSaving's overestimate-only guarantee must hold for the heavy keys,
// and merging across recording threads must aggregate.
#include "obs/heavy_hitters.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/random.h"

namespace hdnh::obs {
namespace {

// Stable synthetic digest for item id; mix64 scatters d0 the way the inner
// index's key scrambling does (d0 doubles as the probe hash).
std::pair<uint64_t, uint64_t> digest(uint64_t id) {
  return {mix64(id + 1), id};
}

TEST(HeavyHitters, TopKMatchesExactCountsOnZipfStream) {
  HeavyHitters::reset();
  ASSERT_TRUE(HeavyHitters::enabled());

  // zipf(0.99) over 1000 items, 200k draws — the HOTKEYS acceptance shape.
  ZipfianChooser zipf(1000, 0.99, /*seed=*/7);
  std::map<uint64_t, uint64_t> exact;
  for (int i = 0; i < 200000; ++i) {
    const uint64_t id = zipf.next();
    exact[id]++;
    const auto [d0, d1] = digest(id);
    HeavyHitters::record(d0, d1);
  }

  // Exact top-8 ids by count (count desc, id asc on ties).
  std::vector<std::pair<uint64_t, uint64_t>> ranked(exact.begin(),
                                                    exact.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });

  const std::vector<HeavyHitters::Entry> top = HeavyHitters::top(8);
  ASSERT_EQ(top.size(), 8u);
  // Count-descending output.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].count, top[i].count);
  }
  // The sketch's top-8 digest set is exactly the true top-8.
  std::vector<uint64_t> got, want;
  for (const auto& e : top) got.push_back(e.d1);  // d1 carries the raw id
  for (int i = 0; i < 8; ++i) want.push_back(ranked[i].first);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);

  // SpaceSaving never undercounts a surviving key.
  for (const auto& e : top) {
    EXPECT_GE(e.count, exact[e.d1]) << "id " << e.d1;
  }
}

TEST(HeavyHitters, MergesAcrossThreadSketches) {
  HeavyHitters::reset();
  const auto [d0, d1] = digest(42);
  auto hammer = [&] {
    for (int i = 0; i < 1000; ++i) HeavyHitters::record(d0, d1);
  };
  std::thread a(hammer), b(hammer);
  a.join();
  b.join();

  const std::vector<HeavyHitters::Entry> top = HeavyHitters::top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].d0, d0);
  EXPECT_EQ(top[0].d1, d1);
  EXPECT_EQ(top[0].count, 2000u);
}

TEST(HeavyHitters, DisabledIsAScrapeTimeNoOp) {
  HeavyHitters::reset();
  HeavyHitters::set_enabled(false);
  // The gate lives at the call sites (OpSample checks enabled() before
  // record()); top() on an empty registry returns nothing.
  EXPECT_TRUE(HeavyHitters::top(8).empty());
  HeavyHitters::set_enabled(true);
}

TEST(HeavyHitters, TopTruncatesToDistinctKeys) {
  HeavyHitters::reset();
  for (uint64_t id = 0; id < 3; ++id) {
    const auto [d0, d1] = digest(id);
    for (uint64_t r = 0; r <= id; ++r) HeavyHitters::record(d0, d1);
  }
  const std::vector<HeavyHitters::Entry> top = HeavyHitters::top(100);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].count, 3u);
  EXPECT_EQ(top[2].count, 1u);
}

}  // namespace
}  // namespace hdnh::obs
