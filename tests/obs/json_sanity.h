// Structural JSON sanity checker shared by the obs tests. Not a full
// parser — it verifies what the serializers can realistically get wrong:
// bracket balance, string/escape handling, and that the document is exactly
// one top-level value with no trailing garbage. Semantic checks (key
// presence, values) stay in the tests themselves via substring matching.
#pragma once

#include <string>
#include <vector>

namespace hdnh::testutil {

inline bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  bool seen_root = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control char inside a string
      }
      continue;
    }
    if (seen_root) {  // only whitespace may follow the root container
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        if (stack.empty()) seen_root = true;
        break;
      default: break;
    }
  }
  return seen_root && stack.empty() && !in_string;
}

}  // namespace hdnh::testutil
