// ShardedTable facade: directory routing, grouped multiget, per-shard
// resize independence, online shard splits (correctness under concurrent
// traffic and key conservation), and crash injection through the facade —
// one shard's interrupted resize must recover without disturbing its
// neighbours.
#include "store/sharded_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh {
namespace {

// Pool + parent allocator + factory-built sharded table, rebuildable after
// a simulated crash (mirrors testutil::HdnhPack for the facade).
struct ShardedPack {
  ShardedPack(uint64_t pool_bytes, uint32_t shards, uint64_t capacity,
              bool crash_sim = false, uint32_t max_shards = 0)
      : pool(pool_bytes), scheme("hdnh@" + std::to_string(shards)) {
    if (crash_sim) pool.enable_crash_sim();
    opts.capacity = capacity;
    opts.hdnh.segment_bytes = 4 * 1024;
    opts.sharding.max_shards = max_shards;
    attach();
  }

  void attach() {
    alloc = std::make_unique<nvm::PmemAllocator>(pool);
    table = create_table(scheme, *alloc, opts);
  }

  // Post-crash: abandon the poisoned objects (never run their destructors)
  // and re-attach, running per-shard recovery.
  void reattach() {
    table.release();
    alloc.release();
    attach();
  }

  store::ShardedTable* sharded() {
    return static_cast<store::ShardedTable*>(table.get());
  }
  // Epoch-consistent fixed-index access for inspection, through the visitor
  // (the deprecated shard(i) accessor stays untested on purpose).
  HashTable* shard_table(uint32_t s) {
    HashTable* out = nullptr;
    sharded()->for_each_shard([&](uint32_t id, HashTable& t) {
      if (id == s) out = &t;
    });
    return out;
  }
  Hdnh* shard_hdnh(uint32_t s) { return dynamic_cast<Hdnh*>(shard_table(s)); }

  nvm::PmemPool pool;
  std::string scheme;
  TableOptions opts;
  std::unique_ptr<nvm::PmemAllocator> alloc;
  std::unique_ptr<HashTable> table;
};

// First `n` ids the facade's directory routes to shard `target`, from `from`.
std::vector<uint64_t> ids_for_shard(store::ShardedTable* t, uint32_t target,
                                    size_t n, uint64_t from = 0) {
  std::vector<uint64_t> ids;
  for (uint64_t id = from; ids.size() < n; ++id) {
    if (t->route(make_key(id)).shard == target) ids.push_back(id);
  }
  return ids;
}

TEST(ShardedTable, RoutingUsesEveryShardRoughlyEvenly) {
  constexpr uint32_t kShards = 8;
  ShardedPack p(256ull << 20, kShards, 4096);
  std::vector<uint64_t> counts(kShards, 0);
  constexpr uint64_t kN = 40000;
  for (uint64_t id = 0; id < kN; ++id) {
    const auto r = p.sharded()->route(make_key(id));
    ASSERT_LT(r.shard, kShards);
    ASSERT_NE(r.table, nullptr);
    counts[r.shard]++;
  }
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], kN / kShards / 2) << s;
    EXPECT_LT(counts[s], kN / kShards * 2) << s;
  }
}

TEST(ShardedTable, OpsForwardToOwningShardOnly) {
  ShardedPack p(256ull << 20, 4, 4096);
  ASSERT_EQ(p.sharded()->shards(), 4u);
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i))) << i;
  }
  EXPECT_EQ(p.table->size(), kN);

  // Each record lives in exactly the shard the directory names.
  uint64_t sum = 0;
  p.sharded()->for_each_shard([&](uint32_t s, HashTable& t) {
    EXPECT_GT(t.size(), 0u) << s;
    sum += t.size();
  });
  EXPECT_EQ(sum, kN);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    const auto r = p.sharded()->route(make_key(i));
    ASSERT_TRUE(r.table->search(make_key(i), &v)) << i;
    p.sharded()->for_each_shard([&](uint32_t s, HashTable& t) {
      Value tmp;
      if (s != r.shard) {
        ASSERT_FALSE(t.search(make_key(i), &tmp)) << i;
      }
    });
  }

  // update/erase route the same way.
  ASSERT_TRUE(p.table->update(make_key(3), make_value(99)));
  ASSERT_TRUE(p.table->search(make_key(3), &v));
  EXPECT_TRUE(v == make_value(99));
  ASSERT_TRUE(p.table->erase(make_key(3)));
  EXPECT_FALSE(p.table->search(make_key(3), &v));
  EXPECT_EQ(p.table->size(), kN - 1);
  EXPECT_GT(p.table->load_factor(), 0.0);
  EXPECT_LE(p.table->load_factor(), 1.0);
  EXPECT_STREQ(p.table->name(), "HDNH@4");
}

TEST(ShardedTable, MultigetGroupsByShardAndMatchesSearch) {
  ShardedPack p(256ull << 20, 4, 4096);
  constexpr uint64_t kN = 4000;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));

  constexpr size_t kBatch = 777;
  std::vector<Key> keys;
  for (size_t i = 0; i < kBatch; ++i) {
    keys.push_back(make_key(i % 3 ? i : (1 << 24) + i));  // hits and misses
  }
  std::vector<Value> values(kBatch);
  std::vector<uint8_t> found(kBatch);
  const size_t hits = p.table->multiget(keys.data(), kBatch, values.data(),
                                        reinterpret_cast<bool*>(found.data()));
  size_t expect = 0;
  for (size_t i = 0; i < kBatch; ++i) {
    Value v;
    const bool single = p.table->search(keys[i], &v);
    ASSERT_EQ(found[i] != 0, single) << i;
    if (single) {
      ASSERT_TRUE(values[i] == v) << i;
      ++expect;
    }
  }
  EXPECT_EQ(hits, expect);
}

TEST(ShardedTable, MultigetEdgeCases) {
  ShardedPack p(256ull << 20, 4, 4096);
  for (uint64_t i = 0; i < 100; ++i)
    p.table->insert(make_key(i), make_value(i));

  // Empty batch.
  EXPECT_EQ(p.table->multiget(nullptr, 0, nullptr, nullptr), 0u);

  // Duplicate keys within one batch: every position gets its own answer.
  std::vector<Key> dup(6, make_key(7));
  dup[3] = make_key(1 << 20);  // one absent key amid the duplicates
  std::vector<Value> values(dup.size());
  std::vector<uint8_t> found(dup.size());
  EXPECT_EQ(p.table->multiget(dup.data(), dup.size(), values.data(),
                              reinterpret_cast<bool*>(found.data())),
            5u);
  for (size_t i = 0; i < dup.size(); ++i) {
    if (i == 3) {
      EXPECT_FALSE(found[i]);
    } else {
      EXPECT_TRUE(found[i]) << i;
      EXPECT_TRUE(values[i] == make_value(7)) << i;
    }
  }

  // A batch that is 100% misses.
  std::vector<Key> misses;
  for (uint64_t i = 0; i < 64; ++i) misses.push_back(make_key((1 << 22) + i));
  values.resize(misses.size());
  found.assign(misses.size(), 1);
  EXPECT_EQ(p.table->multiget(misses.data(), misses.size(), values.data(),
                              reinterpret_cast<bool*>(found.data())),
            0u);
  for (size_t i = 0; i < misses.size(); ++i) EXPECT_FALSE(found[i]) << i;
}

TEST(ShardedTable, ResizeDomainsAreIndependent) {
  ShardedPack p(256ull << 20, 4, 2048);
  // Hammer only shard 0's keyspace far past its share of the capacity.
  const auto ids = ids_for_shard(p.sharded(), 0, 6000);
  for (uint64_t id : ids) {
    ASSERT_TRUE(p.table->insert(make_key(id), make_value(id)));
  }
  EXPECT_GT(p.shard_hdnh(0)->resize_count(), 0u);
  for (uint32_t s = 1; s < 4; ++s) {
    EXPECT_EQ(p.shard_hdnh(s)->resize_count(), 0u) << s;
  }
  EXPECT_EQ(p.sharded()->resize_count(), p.shard_hdnh(0)->resize_count());
}

TEST(ShardedTable, ForEachVisitsEveryShard) {
  ShardedPack p(256ull << 20, 4, 4096);
  constexpr uint64_t kN = 2000;
  for (uint64_t i = 0; i < kN; ++i)
    p.table->insert(make_key(i), make_value(i));
  std::vector<bool> seen(kN, false);
  p.sharded()->for_each([&](const KVPair& kv) {
    const uint64_t id = key_id(kv.key);
    ASSERT_LT(id, kN);
    ASSERT_TRUE(kv.value == make_value(id));
    seen[id] = true;
  });
  for (uint64_t i = 0; i < kN; ++i) EXPECT_TRUE(seen[i]) << i;
}

TEST(ShardedTable, CleanReattachRecoversAllShards) {
  ShardedPack p(256ull << 20, 4, 4096, /*crash_sim=*/true);
  constexpr uint64_t kN = 3000;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));

  p.pool.simulate_crash();
  p.reattach();

  EXPECT_EQ(p.table->size(), kN);
  const auto rs = p.sharded()->last_recovery();
  EXPECT_EQ(rs.items, kN);
  EXPECT_FALSE(rs.resumed_resize);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
  EXPECT_TRUE(p.sharded()->check_integrity().ok());
}

TEST(ShardedTable, AttachAdoptsPersistedShardCount) {
  ShardedPack p(256ull << 20, 4, 4096);
  for (uint64_t i = 0; i < 500; ++i)
    p.table->insert(make_key(i), make_value(i));
  p.table.reset();  // clean shutdown of all shards
  p.alloc.reset();

  // Ask for 8 shards over a 4-shard pool: the persisted directory wins.
  p.scheme = "hdnh@8";
  p.attach();
  EXPECT_EQ(p.sharded()->shards(), 4u);
  EXPECT_STREQ(p.table->name(), "HDNH@4");
  EXPECT_EQ(p.table->size(), 500u);
  Value v;
  for (uint64_t i = 0; i < 500; ++i)
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
}

// ---------------------------------------------------------------------------
// Online shard splits
// ---------------------------------------------------------------------------

TEST(ShardedTable, ManualSplitConservesEveryKey) {
  ShardedPack p(512ull << 20, 2, 4096, /*crash_sim=*/false,
                /*max_shards=*/4);
  ASSERT_EQ(p.sharded()->shards(), 2u);
  ASSERT_EQ(p.sharded()->max_shards(), 4u);
  constexpr uint64_t kN = 6000;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));

  const auto before = p.sharded()->shard_directory();
  EXPECT_EQ(before.shard_count, 2u);
  EXPECT_FALSE(before.split_active);

  ASSERT_TRUE(p.sharded()->split_shard(0).ok());

  const auto after = p.sharded()->shard_directory();
  EXPECT_EQ(after.shard_count, 3u);
  EXPECT_EQ(after.epoch, before.epoch + 1);
  EXPECT_EQ(p.sharded()->shards(), 3u);
  EXPECT_EQ(p.sharded()->split_count(), 1u);

  // Directory invariants: every entry names a live shard, each shard owns
  // 2^(G - local_depth) contiguous entries, and the blocks tile the table.
  std::vector<uint64_t> owned(after.shard_count, 0);
  for (uint8_t e : after.entries) {
    ASSERT_LT(e, after.shard_count);
    owned[e]++;
  }
  uint64_t covered = 0;
  for (uint32_t s = 0; s < after.shard_count; ++s) {
    EXPECT_EQ(owned[s],
              uint64_t{1} << (after.global_depth - after.shards[s].local_depth))
        << s;
    covered += owned[s];
  }
  EXPECT_EQ(covered, after.entries.size());

  // Key conservation: every key present, with its value, in exactly the
  // shard the new directory names; aggregate size unchanged.
  EXPECT_EQ(p.table->size(), kN);
  Value v;
  for (uint64_t i = 0; i < kN; ++i) {
    const auto r = p.sharded()->route(make_key(i));
    ASSERT_TRUE(r.table->search(make_key(i), &v)) << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
  std::set<uint64_t> visited;
  p.sharded()->for_each([&](const KVPair& kv) {
    ASSERT_TRUE(visited.insert(key_id(kv.key)).second)
        << "duplicate key after split: " << key_id(kv.key);
  });
  EXPECT_EQ(visited.size(), kN);
  EXPECT_TRUE(p.sharded()->check_integrity().ok());

  // Exhaust the headroom: two more splits fill all 4 regions, the next is
  // rejected cleanly.
  ASSERT_TRUE(p.sharded()->split_shard(1).ok());
  EXPECT_EQ(p.sharded()->shards(), 4u);
  const Status full = p.sharded()->split_shard(0);
  EXPECT_EQ(full.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.table->size(), kN);
}

TEST(ShardedTable, SplitRejectsBadArguments) {
  ShardedPack p(256ull << 20, 2, 4096, /*crash_sim=*/false,
                /*max_shards=*/3);
  EXPECT_EQ(p.sharded()->split_shard(7).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(p.sharded()->split_shard(0).ok());
  // Headroom exhausted.
  EXPECT_EQ(p.sharded()->split_shard(1).code(), StatusCode::kInvalidArgument);
}

TEST(ShardedTable, SplitStatePersistsAcrossReattach) {
  ShardedPack p(512ull << 20, 2, 4096, /*crash_sim=*/false,
                /*max_shards=*/4);
  constexpr uint64_t kN = 4000;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
  ASSERT_TRUE(p.sharded()->split_shard(1).ok());
  const auto dir = p.sharded()->shard_directory();

  p.table.reset();  // clean shutdown
  p.alloc.reset();
  p.attach();

  const auto re = p.sharded()->shard_directory();
  EXPECT_EQ(re.shard_count, dir.shard_count);
  EXPECT_EQ(re.global_depth, dir.global_depth);
  EXPECT_EQ(re.epoch, dir.epoch);
  EXPECT_EQ(re.entries, dir.entries);
  EXPECT_EQ(p.table->size(), kN);
  Value v;
  for (uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << i;
  EXPECT_TRUE(p.sharded()->check_integrity().ok());
}

// tsan acceptance: a split migrates live data while readers and writers
// keep hammering the store from other threads. Every acknowledged write
// must survive, reads must never miss a stable key, and the facade must
// pass a deep integrity check afterwards.
TEST(ShardedTable, SplitWhileServingKeepsEveryAck) {
  ShardedPack p(512ull << 20, 2, 8192, /*crash_sim=*/false,
                /*max_shards=*/4);
  constexpr uint64_t kStable = 4000;   // preloaded, never touched again
  constexpr uint64_t kPerWriter = 3000;
  for (uint64_t i = 0; i < kStable; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_misses{0};
  constexpr int kWriters = 2;
  std::vector<std::vector<uint64_t>> acked(kWriters);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const uint64_t base = (uint64_t{1} << 32) * (w + 1);
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        const uint64_t id = base + i;
        if (p.table->insert_s(make_key(id), make_value(id)).ok()) {
          acked[w].push_back(id);
        }
        if (i % 16 == 0 && !acked[w].empty()) {
          const uint64_t upd = acked[w][i % acked[w].size()];
          p.table->update_s(make_key(upd), make_value(upd + 1));
          p.table->update_s(make_key(upd), make_value(upd));
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      uint64_t i = 0;
      Value v;
      while (!stop.load(std::memory_order_acquire)) {
        if (!p.table->search(make_key(i % kStable), &v)) {
          read_misses.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }

  // Two online splits while all that traffic is in flight.
  ASSERT_TRUE(p.sharded()->split_shard(0).ok());
  ASSERT_TRUE(p.sharded()->split_shard(1).ok());

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(p.sharded()->shards(), 4u);
  EXPECT_EQ(read_misses.load(), 0u);
  Value v;
  for (uint64_t i = 0; i < kStable; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << "lost stable key " << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
  uint64_t acked_total = 0;
  for (int w = 0; w < kWriters; ++w) {
    acked_total += acked[w].size();
    for (const uint64_t id : acked[w]) {
      ASSERT_TRUE(p.table->search(make_key(id), &v)) << "lost acked " << id;
      ASSERT_TRUE(v == make_value(id)) << id;
    }
  }
  EXPECT_EQ(p.table->size(), kStable + acked_total);
  std::set<uint64_t> visited;
  p.sharded()->for_each([&](const KVPair& kv) {
    ASSERT_TRUE(visited.insert(key_id(kv.key)).second)
        << "duplicate after concurrent split";
  });
  EXPECT_TRUE(p.sharded()->check_integrity().ok());
}

struct CrashInjected : std::runtime_error {
  CrashInjected() : std::runtime_error("injected crash") {}
};

// The acceptance scenario: a crash in the middle of ONE shard's resize.
// Recovery must resume exactly that shard's rehash and leave every other
// shard's data verified intact.
TEST(ShardedTable, CrashDuringOneShardResizeRecoversThatShardOnly) {
  constexpr uint32_t kShards = 4;
  constexpr uint32_t kVictim = 2;
  ShardedPack p(512ull << 20, kShards, 2048, /*crash_sim=*/true);

  // Spread a base population over all shards.
  constexpr uint64_t kBase = 3000;
  for (uint64_t i = 0; i < kBase; ++i)
    ASSERT_TRUE(p.table->insert(make_key(i), make_value(i)));
  uint64_t pre_crash_sizes[kShards];
  for (uint32_t s = 0; s < kShards; ++s)
    pre_crash_sizes[s] = p.shard_table(s)->size();

  // Arm a crash inside the victim shard's rehash loop, then pour keys into
  // ONLY that shard until its resize trips.
  p.shard_hdnh(kVictim)->test_hook = [&p](const char* at) {
    if (std::string(at) == "rehash-bucket") {
      p.pool.simulate_crash();
      throw CrashInjected();
    }
  };
  const auto victim_ids = ids_for_shard(p.sharded(), kVictim, 8000, 1 << 20);
  uint64_t crashed_at = UINT64_MAX;
  std::vector<uint64_t> completed;
  for (uint64_t id : victim_ids) {
    try {
      ASSERT_TRUE(p.table->insert(make_key(id), make_value(id)));
      completed.push_back(id);
    } catch (const CrashInjected&) {
      crashed_at = id;
      break;
    }
  }
  ASSERT_NE(crashed_at, UINT64_MAX) << "victim shard never resized";

  p.reattach();

  // The victim shard resumed its interrupted resize; nobody else did.
  EXPECT_TRUE(p.shard_hdnh(kVictim)->last_recovery().resumed_resize);
  for (uint32_t s = 0; s < kShards; ++s) {
    if (s != kVictim) {
      EXPECT_FALSE(p.shard_hdnh(s)->last_recovery().resumed_resize) << s;
      EXPECT_EQ(p.shard_table(s)->size(), pre_crash_sizes[s]) << s;
    }
  }
  EXPECT_TRUE(p.sharded()->last_recovery().resumed_resize);

  // Every completed insert survived; the interrupted one is absent.
  Value v;
  for (uint64_t i = 0; i < kBase; ++i) {
    ASSERT_TRUE(p.table->search(make_key(i), &v)) << "lost preload key " << i;
    ASSERT_TRUE(v == make_value(i)) << i;
  }
  for (uint64_t id : completed) {
    ASSERT_TRUE(p.table->search(make_key(id), &v)) << "lost key " << id;
  }
  EXPECT_FALSE(p.table->search(make_key(crashed_at), &v));

  // Per-shard deep integrity: the victim healed, the others were never hurt.
  for (uint32_t s = 0; s < kShards; ++s) {
    const auto rep = p.shard_hdnh(s)->check_integrity();
    EXPECT_TRUE(rep.ok()) << "shard " << s;
  }
  const auto agg = p.sharded()->check_integrity();
  EXPECT_TRUE(agg.ok());
  EXPECT_EQ(agg.items, p.table->size());

  // And the victim shard keeps growing afterwards.
  ASSERT_TRUE(p.table->insert(make_key(crashed_at), make_value(crashed_at)));
  for (uint64_t id : ids_for_shard(p.sharded(), kVictim, 2000, 1 << 22)) {
    ASSERT_TRUE(p.table->insert(make_key(id), make_value(id)));
  }
  EXPECT_TRUE(p.sharded()->check_integrity().ok());
}

TEST(ShardedTable, FactoryBuildsShardedVariants) {
  nvm::PmemPool pool(512ull << 20);
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = 4096;
  opts.sharding.initial_shards = 3;  // options channel, no @ suffix
  auto t = create_table("level", alloc, opts);
  EXPECT_STREQ(t->name(), "LEVEL@3");
  ASSERT_TRUE(t->insert(make_key(1), make_value(1)));
  Value v;
  ASSERT_TRUE(t->search(make_key(1), &v));

  // HDNH-only aggregates refuse non-HDNH shards loudly, and so does an
  // online split (migration needs the HDNH record visitor).
  auto* st = static_cast<store::ShardedTable*>(t.get());
  EXPECT_THROW(st->check_integrity(), std::logic_error);
  EXPECT_THROW(st->resize_count(), std::logic_error);
  opts.sharding.max_shards = 4;
  nvm::PmemPool pool2(512ull << 20);
  nvm::PmemAllocator alloc2(pool2);
  auto lv = create_table("level", alloc2, opts);
  auto* lst = static_cast<store::ShardedTable*>(lv.get());
  EXPECT_EQ(lst->split_shard(0).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hdnh
