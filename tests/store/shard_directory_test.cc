// Extendible shard directory unit tests: the pure split_record transform
// (doubling, retargeting, depth bookkeeping), the layout-level split
// machine (begin/publish/abort, marker recovery), and the routing-function
// invariants the facade depends on (keys never move when the directory
// doubles).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "nvm/sharded_layout.h"
#include "store/sharded_table.h"

namespace hdnh::nvm {
namespace {

ShardDirRecord fresh_record() {
  ShardDirRecord rec;
  std::memset(&rec, 0, sizeof(rec));
  rec.shard_count = 1;  // shard 0 at depth 0 owns the single entry
  return rec;
}

// Directory invariants every record must satisfy: entries name live
// shards, each shard s owns exactly 2^(G - ld(s)) entries forming one
// contiguous block aligned to its own size, and the blocks tile the
// directory.
void check_invariants(const ShardDirRecord& rec) {
  const uint32_t n = 1u << rec.global_depth;
  ASSERT_LE(rec.global_depth, ShardMapSuper::kMaxDepth);
  std::vector<uint32_t> owned(rec.shard_count, 0);
  for (uint32_t e = 0; e < n; ++e) {
    ASSERT_LT(rec.entry[e], rec.shard_count) << "entry " << e;
    owned[rec.entry[e]]++;
  }
  uint64_t covered = 0;
  for (uint32_t s = 0; s < rec.shard_count; ++s) {
    ASSERT_LE(rec.local_depth[s], rec.global_depth) << s;
    const uint32_t block = 1u << (rec.global_depth - rec.local_depth[s]);
    ASSERT_EQ(owned[s], block) << s;
    covered += owned[s];
    // Contiguity + alignment: find the first entry, assert the whole
    // aligned block maps to s.
    uint32_t first = n;
    for (uint32_t e = 0; e < n; ++e) {
      if (rec.entry[e] == s) {
        first = e;
        break;
      }
    }
    ASSERT_LT(first, n) << s;
    ASSERT_EQ(first % block, 0u) << s;
    for (uint32_t e = first; e < first + block; ++e) {
      ASSERT_EQ(rec.entry[e], s) << "shard " << s << " entry " << e;
    }
  }
  ASSERT_EQ(covered, n);
}

TEST(ShardDirRecordTest, RepeatedSplitsKeepInvariants) {
  ShardDirRecord rec = fresh_record();
  check_invariants(rec);
  // Grow 1 -> 64 shards, always splitting the shallowest (lowest id on
  // ties) — the same policy the layout's format path uses.
  for (uint32_t tgt = 1; tgt < ShardMapSuper::kMaxShards; ++tgt) {
    uint32_t src = 0;
    for (uint32_t s = 1; s < rec.shard_count; ++s) {
      if (rec.local_depth[s] < rec.local_depth[src]) src = s;
    }
    ASSERT_TRUE(ShardedPmemLayout::split_record(&rec, src, tgt)) << tgt;
    ASSERT_EQ(rec.shard_count, tgt + 1);
    check_invariants(rec);
  }
  // 64 shards at uniform depth 6 — the directory is full.
  EXPECT_EQ(rec.global_depth, ShardMapSuper::kMaxDepth);
  for (uint32_t s = 0; s < rec.shard_count; ++s) {
    EXPECT_EQ(rec.local_depth[s], ShardMapSuper::kMaxDepth) << s;
  }
}

TEST(ShardDirRecordTest, SkewedSplitsAndDepthCap) {
  ShardDirRecord rec = fresh_record();
  // Split shard 0 over and over: local depth climbs to the cap, then the
  // transform refuses.
  for (uint32_t i = 0; i < ShardMapSuper::kMaxDepth; ++i) {
    ASSERT_TRUE(ShardedPmemLayout::split_record(&rec, 0, i + 1)) << i;
    check_invariants(rec);
    EXPECT_EQ(rec.local_depth[0], i + 1);
    EXPECT_EQ(rec.local_depth[i + 1], i + 1);
  }
  EXPECT_EQ(rec.global_depth, ShardMapSuper::kMaxDepth);
  EXPECT_FALSE(ShardedPmemLayout::split_record(&rec, 0, 7));
}

TEST(ShardDirRecordTest, SplitMovesExactlyTheUpperHalf) {
  ShardDirRecord rec = fresh_record();
  ASSERT_TRUE(ShardedPmemLayout::split_record(&rec, 0, 1));
  ASSERT_TRUE(ShardedPmemLayout::split_record(&rec, 0, 2));
  // G=2 now; shard 0 owns an aligned pair of entries. Splitting it moves
  // the odd (upper) half of that pair and nothing else. (The publish
  // epoch `seq` is bumped by publish_split, not by the pure transform.)
  const ShardDirRecord before = rec;
  ASSERT_TRUE(ShardedPmemLayout::split_record(&rec, 0, 3));
  const uint32_t n = 1u << rec.global_depth;
  for (uint32_t e = 0; e < n; ++e) {
    const uint32_t prev =
        before.entry[rec.global_depth > before.global_depth ? e >> 1 : e];
    if (rec.entry[e] != prev) {
      EXPECT_EQ(prev, 0u) << e;        // only source entries moved
      EXPECT_EQ(rec.entry[e], 3u) << e;  // and only to the target
    }
  }
}

// Routing invariant the facade depends on: doubling the directory never
// moves a key — its entry at depth G+1 is its entry at depth G with one
// more low bit, so new[e] = old[e >> 1] routes it identically.
TEST(ShardDirRecordTest, RouteEntryIsStableUnderDoubling) {
  uint64_t h = 0x243F6A8885A308D3ull;
  for (int i = 0; i < 1000; ++i) {
    h = mix64(h + i);
    for (uint32_t g = 0; g < ShardMapSuper::kMaxDepth; ++g) {
      EXPECT_EQ(store::shard_route_entry(h, g + 1) >> 1,
                store::shard_route_entry(h, g));
    }
    EXPECT_EQ(store::shard_route_entry(h, 0), 0u);
  }
}

// ---------------------------------------------------------------------------
// Layout-level split machine
// ---------------------------------------------------------------------------

struct LayoutPack {
  explicit LayoutPack(uint32_t shards, uint32_t max_shards)
      : pool(128ull << 20) {
    alloc = std::make_unique<PmemAllocator>(pool);
    layout = std::make_unique<ShardedPmemLayout>(
        *alloc, shards, 0, ShardedPmemLayout::kShardMapRoot, max_shards);
  }
  void reattach() {
    layout.reset();
    alloc = std::make_unique<PmemAllocator>(pool);
    layout = std::make_unique<ShardedPmemLayout>(*alloc, 1);
  }
  PmemPool pool;
  std::unique_ptr<PmemAllocator> alloc;
  std::unique_ptr<ShardedPmemLayout> layout;
};

TEST(ShardedLayoutSplitTest, PublishedSplitPersistsAcrossAttach) {
  LayoutPack p(2, 4);
  EXPECT_EQ(p.layout->shards(), 2u);
  EXPECT_EQ(p.layout->regions(), 4u);
  const uint64_t seq0 = p.layout->dir_seq();

  ASSERT_TRUE(p.layout->can_split(0));
  const uint32_t target = p.layout->begin_split(0);
  EXPECT_EQ(target, 2u);
  EXPECT_TRUE(p.layout->split_in_progress());
  EXPECT_FALSE(p.layout->split_cleanup_pending());  // not yet published
  p.layout->publish_split();
  EXPECT_EQ(p.layout->shards(), 3u);
  EXPECT_EQ(p.layout->dir_seq(), seq0 + 1);
  EXPECT_TRUE(p.layout->split_cleanup_pending());
  p.layout->clear_split_state();
  EXPECT_FALSE(p.layout->split_in_progress());

  const uint32_t g = p.layout->global_depth();
  std::vector<uint32_t> entries;
  for (uint32_t e = 0; e < p.layout->dir_entries(); ++e) {
    entries.push_back(p.layout->dir_shard(e));
  }

  p.reattach();
  EXPECT_EQ(p.layout->shards(), 3u);
  EXPECT_EQ(p.layout->global_depth(), g);
  EXPECT_EQ(p.layout->dir_seq(), seq0 + 1);
  ASSERT_EQ(p.layout->dir_entries(), entries.size());
  for (uint32_t e = 0; e < entries.size(); ++e) {
    EXPECT_EQ(p.layout->dir_shard(e), entries[e]) << e;
  }
}

TEST(ShardedLayoutSplitTest, AbortRestoresTheSpare) {
  LayoutPack p(2, 3);
  const uint32_t target = p.layout->begin_split(1);
  EXPECT_EQ(target, 2u);
  p.layout->abort_split();
  EXPECT_FALSE(p.layout->split_in_progress());
  EXPECT_EQ(p.layout->shards(), 2u);
  // The spare is reusable: the next split claims the same region.
  ASSERT_TRUE(p.layout->can_split(0));
  EXPECT_EQ(p.layout->begin_split(0), 2u);
  p.layout->publish_split();
  p.layout->clear_split_state();
  EXPECT_EQ(p.layout->shards(), 3u);
  // Headroom exhausted now.
  EXPECT_FALSE(p.layout->can_split(0));
}

TEST(ShardedLayoutSplitTest, UnpublishedMarkerIsResetOnAttach) {
  LayoutPack p(2, 4);
  p.layout->begin_split(0);  // marker persisted, directory NOT flipped
  // "Crash": drop the volatile objects, reattach from media.
  p.reattach();
  EXPECT_FALSE(p.layout->split_in_progress());
  EXPECT_EQ(p.layout->shards(), 2u);
  // The reset spare is claimable again.
  ASSERT_TRUE(p.layout->can_split(1));
  EXPECT_EQ(p.layout->begin_split(1), 2u);
}

TEST(ShardedLayoutSplitTest, PublishedUncleanMarkerSurvivesAttach) {
  LayoutPack p(2, 4);
  p.layout->begin_split(0);
  p.layout->publish_split();
  // Crash before the facade's cleanup confirmation: the marker must
  // survive the reattach so the facade knows to re-run the cleanup.
  p.reattach();
  EXPECT_EQ(p.layout->shards(), 3u);
  EXPECT_TRUE(p.layout->split_in_progress());
  EXPECT_TRUE(p.layout->split_cleanup_pending());
  p.layout->clear_split_state();
  EXPECT_FALSE(p.layout->split_in_progress());
}

TEST(ShardedLayoutSplitTest, RefusalsAreLoud) {
  LayoutPack p(2, 2);  // no headroom at all
  EXPECT_FALSE(p.layout->can_split(0));
  EXPECT_THROW(p.layout->begin_split(0), std::logic_error);

  LayoutPack q(2, 4);
  q.layout->begin_split(0);
  // One split at a time.
  EXPECT_FALSE(q.layout->can_split(1));
  EXPECT_THROW(q.layout->begin_split(1), std::logic_error);
}

}  // namespace
}  // namespace hdnh::nvm
