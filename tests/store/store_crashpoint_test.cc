// Per-shard crash injection on the sharded store runtime: a FaultPlan with
// an address-range filter covering ONE shard's region makes every crash
// point land inside that shard's persistence stream. The crash must strike
// while an op routed to that shard is in flight, and recovery of the whole
// facade must come back coherent — the other shards untouched, the victim
// shard recovered to acknowledged state.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "api/factory.h"
#include "nvm/fault.h"
#include "nvm/pmem.h"
#include "store/sharded_table.h"

namespace hdnh {
namespace {

TableOptions options() {
  TableOptions opts;
  opts.capacity = 4096;
  opts.hdnh.segment_bytes = 4096;
  return opts;
}

TEST(StoreCrashpointTest, PerShardRangeInjectionRecovers) {
  for (const uint64_t crash_at : {0ull, 7ull, 23ull}) {
    SCOPED_TRACE("crash_at=" + std::to_string(crash_at));
    nvm::PmemPool pool(64ull << 20);
    pool.enable_crash_sim();
    auto alloc = std::make_unique<nvm::PmemAllocator>(pool);
    auto table = create_table("hdnh@4", *alloc, options());
    auto* st = dynamic_cast<store::ShardedTable*>(table.get());
    ASSERT_NE(st, nullptr);

    std::map<uint64_t, uint64_t> model;
    for (uint64_t id = 1; id <= 800; ++id) {
      ASSERT_TRUE(table->insert(make_key(id), make_value(id)));
      model[id] = id;
    }

    const uint32_t target = 0;
    nvm::FaultPlan plan;
    plan.crash_at = crash_at;
    plan.range_off = st->layout().shard_off(target);
    plan.range_len = st->layout().shard_bytes(target);
    pool.set_fault_plan(&plan);

    bool crashed = false;
    uint64_t pend_id = 0, pend_new = 0;
    for (uint64_t i = 0; i < 800 && !crashed; ++i) {
      const uint64_t id = 1 + (i * 13) % 800;
      const uint64_t vid = 5000 + i;
      try {
        pend_id = id;
        pend_new = vid;
        if (table->update(make_key(id), make_value(vid))) model[id] = vid;
      } catch (const nvm::InjectedCrash&) {
        crashed = true;
      }
    }
    pool.set_fault_plan(nullptr);
    ASSERT_TRUE(crashed);
    // The range filter admits only the target shard's persists, so the
    // in-flight op must have been routed there.
    EXPECT_EQ(st->route(make_key(pend_id)).shard, target);

    st->abandon_after_crash();
    table.reset();
    alloc = std::make_unique<nvm::PmemAllocator>(pool);
    table = create_table("hdnh@4", *alloc, options());
    auto* st2 = dynamic_cast<store::ShardedTable*>(table.get());
    ASSERT_NE(st2, nullptr);
    EXPECT_TRUE(st2->check_integrity().ok());

    // In-flight update: entirely-old or entirely-new, never torn.
    Value v{};
    ASSERT_TRUE(table->search(make_key(pend_id), &v));
    if (v == make_value(pend_new)) {
      model[pend_id] = pend_new;
    } else {
      EXPECT_TRUE(v == make_value(model[pend_id]))
          << "torn in-flight update for id " << pend_id;
    }
    EXPECT_EQ(table->size(), model.size());
    for (const auto& [id, vid] : model) {
      Value w{};
      ASSERT_TRUE(table->search(make_key(id), &w)) << "id " << id;
      EXPECT_TRUE(w == make_value(vid)) << "id " << id;
    }
  }
}

TEST(StoreCrashpointTest, RangeFilterOutsideTouchedRegionsCountsNothing) {
  nvm::PmemPool pool(64ull << 20);
  pool.enable_crash_sim();
  nvm::PmemAllocator alloc(pool);
  auto table = create_table("hdnh@4", alloc, options());
  for (uint64_t id = 1; id <= 100; ++id) {
    ASSERT_TRUE(table->insert(make_key(id), make_value(id)));
  }

  nvm::FaultPlan plan;  // probe mode
  plan.range_off = pool.size() - 4096;
  plan.range_len = 4096;
  pool.set_fault_plan(&plan);
  for (uint64_t id = 1; id <= 100; ++id) {
    ASSERT_TRUE(table->update(make_key(id), make_value(1000 + id)));
  }
  pool.set_fault_plan(nullptr);
  EXPECT_EQ(plan.events(), 0u);
}

}  // namespace
}  // namespace hdnh
