// Exhaustive crash-point sweep over the online shard split: every
// kFaultShardSplit durability event — begin marker, target region format,
// each migration persist, the directory flip, each cleanup erase — gets a
// crash injected, the store reattaches, and the acked-op durability oracle
// runs (src/testing/crash_scenarios.h, scenario "shard_split"). A failure
// prints its (scenario, event_index, seed) triple, reproducible standalone:
//   hdnh_crashpoint --scenario=shard_split --seed=<seed> --only=<k>
#include <gtest/gtest.h>

#include <algorithm>

#include "testing/crash_scenarios.h"

namespace hdnh::crashtest {
namespace {

TEST(ShardSplitCrashpoint, ExhaustiveSweepPassesOracle) {
  const StoreScenario* s = find_store_scenario("shard_split");
  ASSERT_NE(s, nullptr);
  const uint64_t n = probe_store_events(*s, 1);
  ASSERT_GT(n, 0u) << "split emitted no durability events";
  for (uint64_t k = 0; k < n; ++k) {
    const PointResult r = run_store_crash_point(*s, 1, k, 0);
    EXPECT_TRUE(r.crashed) << "plan never fired at k=" << k << " (of " << n
                           << " probed events)";
    ASSERT_EQ(r.failure, "")
        << "scenario=shard_split event_index=" << k << " seed=1";
  }
}

// Adversarial random-line evictions (legal spontaneous writebacks) every
// 7th event and at the crash itself must never surface un-fenced split
// state — in particular not between the successor record's persist and the
// dir_active flip.
TEST(ShardSplitCrashpoint, EvictionBurstStridedSweepPasses) {
  const StoreScenario* s = find_store_scenario("shard_split");
  ASSERT_NE(s, nullptr);
  const uint64_t n = probe_store_events(*s, 3);
  ASSERT_GT(n, 0u);
  const uint64_t stride = std::max<uint64_t>(1, n / 32);
  for (uint64_t k = 0; k < n; k += stride) {
    const PointResult r = run_store_crash_point(*s, 3, k, /*evict_lines=*/8);
    EXPECT_TRUE(r.crashed) << k;
    ASSERT_EQ(r.failure, "")
        << "scenario=shard_split event_index=" << k << " seed=3 evict=8";
  }
}

// A crash point at/past the event count never fires: the split runs to
// completion and the oracle holds on the live (post-split) store.
TEST(ShardSplitCrashpoint, PastEndPointDoesNotCrash) {
  const StoreScenario* s = find_store_scenario("shard_split");
  ASSERT_NE(s, nullptr);
  const uint64_t n = probe_store_events(*s, 1);
  const PointResult r = run_store_crash_point(*s, 1, n, 0);
  EXPECT_FALSE(r.crashed);
  EXPECT_EQ(r.failure, "");
}

// Determinism anchor: the event stream is a pure function of (scenario,
// seed) — two probes agree, so (seed, event_index) triples reproduce.
TEST(ShardSplitCrashpoint, ProbeIsDeterministic) {
  const StoreScenario* s = find_store_scenario("shard_split");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(probe_store_events(*s, 7), probe_store_events(*s, 7));
}

}  // namespace
}  // namespace hdnh::crashtest
