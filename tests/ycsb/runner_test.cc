#include "ycsb/runner.h"

#include <gtest/gtest.h>

#include <memory>

#include "api/factory.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh::ycsb {
namespace {

struct RunnerPack {
  RunnerPack() : pool(512ull << 20), alloc(pool) {
    TableOptions opts;
    opts.capacity = 1 << 14;
    table = create_table("hdnh", alloc, opts);
  }
  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  std::unique_ptr<HashTable> table;
};

TEST(Runner, PreloadInsertsExactRange) {
  RunnerPack p;
  preload(*p.table, 5000, 2);
  EXPECT_EQ(p.table->size(), 5000u);
  Value v;
  ASSERT_TRUE(p.table->search(make_key(0), &v));
  ASSERT_TRUE(p.table->search(make_key(4999), &v));
  ASSERT_FALSE(p.table->search(make_key(5000), &v));
}

TEST(Runner, ReadOnlyAllHitsOnPreloadedKeys) {
  RunnerPack p;
  preload(*p.table, 4000);
  auto r = run(*p.table, WorkloadSpec::ReadOnly(), 4000, 10000);
  EXPECT_EQ(r.ops, 10000u);
  EXPECT_EQ(r.hits, 10000u);  // positive search: every op hits
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.mops(), 0.0);
}

TEST(Runner, NegativeReadsAllMiss) {
  RunnerPack p;
  preload(*p.table, 4000);
  auto r = run(*p.table, WorkloadSpec::NegativeRead(), 4000, 10000);
  EXPECT_EQ(r.hits, 0u);
}

TEST(Runner, InsertOnlyAllSucceedAndGrowTable) {
  RunnerPack p;
  preload(*p.table, 2000);
  auto r = run(*p.table, WorkloadSpec::InsertOnly(), 2000, 8000);
  EXPECT_EQ(r.hits, 8000u);  // fresh ids: every insert succeeds
  EXPECT_EQ(p.table->size(), 10000u);
}

TEST(Runner, DeleteOnlyRemovesDistinctKeys) {
  RunnerPack p;
  preload(*p.table, 10000);
  auto r = run(*p.table, WorkloadSpec::DeleteOnly(), 10000, 6000);
  EXPECT_EQ(r.hits, 6000u);  // distinct preloaded ids
  EXPECT_EQ(p.table->size(), 4000u);
}

TEST(Runner, MixedWorkloadCountsConsistent) {
  RunnerPack p;
  preload(*p.table, 5000);
  auto r = run(*p.table, WorkloadSpec::Mixed5050(), 5000, 20000);
  EXPECT_EQ(r.ops, 20000u);
  // Reads all hit (zipf over preloaded keys), inserts all succeed.
  EXPECT_EQ(r.hits, 20000u);
  EXPECT_GT(p.table->size(), 5000u);
}

TEST(Runner, UpdatesHitPreloadedKeys) {
  RunnerPack p;
  preload(*p.table, 5000);
  auto r = run(*p.table, WorkloadSpec::YcsbA(), 5000, 10000);
  EXPECT_EQ(r.hits, 10000u);
}

TEST(Runner, MultiThreadedRunCompletes) {
  RunnerPack p;
  preload(*p.table, 5000);
  RunOptions opts;
  opts.threads = 4;
  auto r = run(*p.table, WorkloadSpec::YcsbA(), 5000, 40000, opts);
  EXPECT_EQ(r.ops, 40000u);
  EXPECT_EQ(r.hits, 40000u);
}

TEST(Runner, LatencyHistogramPopulatedOnDemand) {
  RunnerPack p;
  preload(*p.table, 2000);
  RunOptions opts;
  opts.measure_latency = true;
  auto r = run(*p.table, WorkloadSpec::ReadOnly(), 2000, 5000, opts);
  EXPECT_EQ(r.latency.count(), 5000u);
  EXPECT_GT(r.latency.percentile(0.99), 0u);

  RunOptions no_lat;
  auto r2 = run(*p.table, WorkloadSpec::ReadOnly(), 2000, 1000, no_lat);
  EXPECT_EQ(r2.latency.count(), 0u);
}

TEST(Runner, NvmStatsDeltaOnlyCoversRun) {
  RunnerPack p;
  preload(*p.table, 5000);
  auto r1 = run(*p.table, WorkloadSpec::NegativeRead(), 5000, 1000);
  auto r2 = run(*p.table, WorkloadSpec::NegativeRead(), 5000, 1000);
  // Two identical runs should report similar (small) deltas — i.e. the
  // delta is not cumulative.
  EXPECT_LT(r2.nvm.nvm_read_ops, r1.nvm.nvm_read_ops + 500);
}

}  // namespace
}  // namespace hdnh::ycsb
