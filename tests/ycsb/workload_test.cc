#include "ycsb/workload.h"

#include <gtest/gtest.h>

namespace hdnh::ycsb {
namespace {

TEST(WorkloadSpec, CannedMixesSumToOne) {
  for (const WorkloadSpec& s :
       {WorkloadSpec::InsertOnly(), WorkloadSpec::ReadOnly(),
        WorkloadSpec::NegativeRead(), WorkloadSpec::DeleteOnly(),
        WorkloadSpec::Mixed5050(), WorkloadSpec::YcsbA(), WorkloadSpec::YcsbB(),
        WorkloadSpec::YcsbC()}) {
    EXPECT_NEAR(s.read + s.insert + s.update + s.erase, 1.0, 1e-9) << s.label;
    EXPECT_FALSE(s.label.empty());
  }
}

TEST(WorkloadSpec, YcsbAIsHalfReadHalfUpdate) {
  const auto a = WorkloadSpec::YcsbA();
  EXPECT_DOUBLE_EQ(a.read, 0.5);
  EXPECT_DOUBLE_EQ(a.update, 0.5);
  EXPECT_DOUBLE_EQ(a.theta, 0.99);
}

TEST(MakeChooser, DispatchesAllDistributions) {
  WorkloadSpec s;
  for (Dist d : {Dist::kUniform, Dist::kZipfian, Dist::kScrambledZipfian,
                 Dist::kLatest}) {
    s.dist = d;
    auto c = make_chooser(s, 1000, 42);
    ASSERT_NE(c, nullptr);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(c->next(), 1000u);
  }
}

TEST(MakeChooser, SameSeedSameStream) {
  WorkloadSpec s;
  s.dist = Dist::kScrambledZipfian;
  auto a = make_chooser(s, 10000, 7);
  auto b = make_chooser(s, 10000, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a->next(), b->next());
  auto c = make_chooser(s, 10000, 8);
  bool differs = false;
  auto d = make_chooser(s, 10000, 7);
  for (int i = 0; i < 1000; ++i) differs |= (c->next() != d->next());
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace hdnh::ycsb
