// Shared helpers for constructing pools/tables in tests.
#pragma once

#include <memory>

#include "api/factory.h"
#include "hdnh/hdnh.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh::testutil {

// A pool + allocator + HDNH table bundle with sane test defaults
// (no latency emulation, inline hot-table writes).
struct HdnhPack {
  explicit HdnhPack(uint64_t pool_bytes, HdnhConfig cfg = {},
                    bool crash_sim = false)
      : pool(pool_bytes), alloc(pool) {
    if (crash_sim) pool.enable_crash_sim();
    table = std::make_unique<Hdnh>(alloc, cfg);
  }

  // Abandon the current table object (after an injected crash its volatile
  // state is garbage and its destructor must not write to the pool) and
  // re-attach a fresh one, running recovery.
  void reattach(HdnhConfig cfg = {}) {
    if (table) table->abandon_after_crash();
    table.reset();
    table = std::make_unique<Hdnh>(alloc, cfg);
  }

  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  std::unique_ptr<Hdnh> table;
};

inline HdnhConfig small_config(uint64_t capacity = 4096) {
  HdnhConfig cfg;
  cfg.initial_capacity = capacity;
  cfg.segment_bytes = 4 * 1024;
  return cfg;
}

}  // namespace hdnh::testutil
