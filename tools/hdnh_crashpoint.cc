// hdnh_crashpoint — deterministic crash-point sweep driver.
//
// For each scenario (see src/testing/crash_scenarios.h) the tool counts the
// durability events of the swept stage with a probe run, then enumerates
// crash points 0..N-1 (optionally strided and/or capped): each point builds
// a fresh pool, runs the workload with a FaultPlan armed at that event
// index, recovers from the resulting media image, and checks the durability
// oracle. Any failure is reported as its (scenario, event_index, seed)
// triple, which reproduces it exactly:
//
//   hdnh_crashpoint --scenario=<name> --seed=<seed> --only=<event_index>
//
// Exit status: 0 = all points passed, 1 = at least one oracle failure,
// 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "testing/crash_scenarios.h"

namespace {

using hdnh::crashtest::PointResult;
using hdnh::crashtest::Scenario;
using hdnh::crashtest::StoreScenario;
using hdnh::crashtest::VkvScenario;

// One sweepable scenario from either table (fixed-record HDNH or the
// variable-length value-log store) behind a uniform probe/run surface.
struct SweepEntry {
  const char* name;
  const char* what;
  std::function<uint64_t(uint64_t seed)> probe;
  std::function<PointResult(uint64_t seed, uint64_t crash_at,
                            uint64_t evict_lines)>
      run;
};

std::vector<SweepEntry> all_entries() {
  std::vector<SweepEntry> out;
  for (const Scenario& s : hdnh::crashtest::scenarios()) {
    out.push_back(
        {s.name, s.what,
         [&s](uint64_t seed) { return hdnh::crashtest::probe_events(s, seed); },
         [&s](uint64_t seed, uint64_t k, uint64_t ev) {
           return hdnh::crashtest::run_crash_point(s, seed, k, ev);
         }});
  }
  for (const VkvScenario& s : hdnh::crashtest::vkv_scenarios()) {
    out.push_back({s.name, s.what,
                   [&s](uint64_t seed) {
                     return hdnh::crashtest::probe_vkv_events(s, seed);
                   },
                   [&s](uint64_t seed, uint64_t k, uint64_t ev) {
                     return hdnh::crashtest::run_vkv_crash_point(s, seed, k, ev);
                   }});
  }
  for (const StoreScenario& s : hdnh::crashtest::store_scenarios()) {
    out.push_back(
        {s.name, s.what,
         [&s](uint64_t seed) {
           return hdnh::crashtest::probe_store_events(s, seed);
         },
         [&s](uint64_t seed, uint64_t k, uint64_t ev) {
           return hdnh::crashtest::run_store_crash_point(s, seed, k, ev);
         }});
  }
  return out;
}

struct Options {
  std::vector<std::string> names;  // empty = all
  uint64_t seed = 1;
  uint64_t stride = 1;
  uint64_t max_points = 0;  // 0 = unlimited
  uint64_t evict_lines = 0;
  int64_t only = -1;  // >= 0: run exactly this event index
  bool verbose = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: hdnh_crashpoint [options]\n"
               "  --scenario=NAME[,NAME...]  scenarios to sweep (default: all)\n"
               "  --seed=N                   workload seed (default 1)\n"
               "  --stride=N                 test every Nth crash point\n"
               "  --max_points=N             cap points per scenario (0 = all)\n"
               "  --evict_lines=N            adversarial random-line evictions\n"
               "  --only=N                   run a single event index\n"
               "  --list                     list scenarios and exit\n"
               "  --verbose                  print every point\n");
}

bool parse_u64(const char* s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--scenario=", 0) == 0) {
      std::string rest = val("--scenario=");
      size_t pos = 0;
      while (pos != std::string::npos) {
        const size_t comma = rest.find(',', pos);
        const std::string name = rest.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!name.empty() && name != "all") opt.names.push_back(name);
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!parse_u64(val("--seed="), &opt.seed)) { usage(); return 2; }
    } else if (arg.rfind("--stride=", 0) == 0) {
      if (!parse_u64(val("--stride="), &opt.stride) || opt.stride == 0) {
        usage();
        return 2;
      }
    } else if (arg.rfind("--max_points=", 0) == 0) {
      if (!parse_u64(val("--max_points="), &opt.max_points)) {
        usage();
        return 2;
      }
    } else if (arg.rfind("--evict_lines=", 0) == 0) {
      if (!parse_u64(val("--evict_lines="), &opt.evict_lines)) {
        usage();
        return 2;
      }
    } else if (arg.rfind("--only=", 0) == 0) {
      uint64_t v;
      if (!parse_u64(val("--only="), &v)) { usage(); return 2; }
      opt.only = static_cast<int64_t>(v);
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      usage();
      return 2;
    }
  }

  const std::vector<SweepEntry> entries = all_entries();

  if (list_only) {
    for (const SweepEntry& e : entries) {
      std::printf("%-16s %s\n", e.name, e.what);
    }
    return 0;
  }

  std::vector<const SweepEntry*> selected;
  if (opt.names.empty()) {
    for (const SweepEntry& e : entries) selected.push_back(&e);
  } else {
    for (const std::string& n : opt.names) {
      const SweepEntry* found = nullptr;
      for (const SweepEntry& e : entries) {
        if (n == e.name) { found = &e; break; }
      }
      if (!found) {
        std::fprintf(stderr, "unknown scenario '%s' (see --list)\n", n.c_str());
        return 2;
      }
      selected.push_back(found);
    }
  }

  uint64_t total_points = 0, total_crashed = 0, total_failed = 0;
  auto secs = [] { return static_cast<double>(hdnh::now_ns()) * 1e-9; };
  const double t0 = secs();
  for (const SweepEntry* s : selected) {
    uint64_t n = 0;
    try {
      n = s->probe(opt.seed);
    } catch (const std::exception& e) {
      std::printf("FAIL %s: probe threw: %s\n", s->name, e.what());
      ++total_failed;
      continue;
    }
    uint64_t points = 0, crashed = 0, failed = 0;
    const double s0 = secs();
    for (uint64_t k = (opt.only >= 0 ? static_cast<uint64_t>(opt.only) : 0);
         k < n; k += opt.stride) {
      if (opt.max_points != 0 && points >= opt.max_points) break;
      ++points;
      PointResult r;
      try {
        r = s->run(opt.seed, k, opt.evict_lines);
      } catch (const std::exception& e) {
        r.failure = std::string("exception: ") + e.what();
      }
      if (r.crashed) ++crashed;
      if (!r.failure.empty()) {
        ++failed;
        std::printf("FAIL scenario=%s event_index=%llu seed=%llu: %s\n",
                    s->name, static_cast<unsigned long long>(k),
                    static_cast<unsigned long long>(opt.seed),
                    r.failure.c_str());
      } else if (opt.verbose) {
        std::printf("ok   scenario=%s event_index=%llu crashed=%d\n", s->name,
                    static_cast<unsigned long long>(k), r.crashed ? 1 : 0);
      }
      if (opt.only >= 0) break;
    }
    std::printf(
        "%-16s events=%-6llu points=%-5llu crashed=%-5llu failed=%llu "
        "(%.1fs)\n",
        s->name, static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(points),
        static_cast<unsigned long long>(crashed),
        static_cast<unsigned long long>(failed), secs() - s0);
    total_points += points;
    total_crashed += crashed;
    total_failed += failed;
  }

  std::printf(
      "CRASHPOINT_JSON {\"seed\":%llu,\"stride\":%llu,\"points\":%llu,"
      "\"crashed\":%llu,\"failed\":%llu,\"secs\":%.1f}\n",
      static_cast<unsigned long long>(opt.seed),
      static_cast<unsigned long long>(opt.stride),
      static_cast<unsigned long long>(total_points),
      static_cast<unsigned long long>(total_crashed),
      static_cast<unsigned long long>(total_failed), secs() - t0);
  return total_failed == 0 ? 0 : 1;
}
