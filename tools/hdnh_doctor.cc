// hdnh_doctor: inspect and verify a file-backed HDNH pool.
//
//   $ ./tools/hdnh_doctor --pool=/tmp/store.pool            # inspect + verify
//   $ ./tools/hdnh_doctor --pool=/tmp/store.pool --deep     # + full integrity
//   $ ./tools/hdnh_doctor --pool=/tmp/store.pool --stats --json | jq .
//
// Prints the superblock (level geometry, resize state machine, clean-
// shutdown marker), the update-log occupancy, and — after attaching, which
// itself resumes any interrupted resize and replays armed update logs —
// item counts and recovery timings. --deep additionally runs the full
// OCF/NVT/hot-table coherence check. --stats appends the unified metrics
// scrape (src/obs) of the attached table(s); with --json, stdout carries
// exactly one machine-readable JSON document (all narration moves to
// stderr), so `hdnh_doctor --stats --json | python3 -m json.tool` always
// works.
//
// Sharded pools (created with an "hdnh@N" scheme) are detected via the
// shard-map superblock: the doctor walks every shard region and runs the
// same inspection per shard.
//
// Exit codes: 0 healthy (or fresh/empty pool), 2 usage error, 3 missing or
// corrupt superblock / not an HDNH pool, 4 deep integrity check failed.
#include <algorithm>
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "hdnh/hdnh.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "nvm/sharded_layout.h"
#include "obs/json.h"
#include "obs/obs.h"

using namespace hdnh;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitCorrupt = 3;    // missing/invalid superblock structures
constexpr int kExitIntegrity = 4;  // --deep coherence check found problems

// Narration sink: stdout normally, stderr in --json mode (stdout is then
// reserved for the single JSON document).
FILE* g_out = nullptr;

// Inspect one HDNH instance rooted in `alloc` (the whole pool for the
// single-table layout, one shard region for sharded pools). Returns an exit
// code; when `jw` is non-null, appends one JSON object describing the
// region to the (already-open) array.
int inspect_table(nvm::PmemPool& pool, nvm::PmemAllocator& alloc, bool deep,
                  const char* ind, obs::JsonWriter* jw) {
  const uint64_t super_off = alloc.root(Hdnh::kSuperRoot);
  if (super_off == 0) {
    std::fprintf(g_out,
                 "%sno HDNH superblock root — region holds something else\n",
                 ind);
    if (jw) {
      jw->begin_object();
      jw->kv("status", "no_superblock");
      jw->end_object();
    }
    return kExitCorrupt;
  }
  auto* super = pool.to_ptr<HdnhSuper>(super_off);
  if (super->magic != HdnhSuper::kMagic) {
    std::fprintf(g_out, "%ssuperblock magic mismatch (%016llx) — corrupt?\n",
                 ind, static_cast<unsigned long long>(super->magic));
    if (jw) {
      jw->begin_object();
      jw->kv("status", "corrupt_superblock");
      jw->end_object();
    }
    return kExitCorrupt;
  }

  std::fprintf(g_out, "%ssuperblock (pre-attach, as found on media):\n", ind);
  std::fprintf(g_out, "%s  buckets/segment : %llu (%llu B segments)\n", ind,
               static_cast<unsigned long long>(super->buckets_per_seg),
               static_cast<unsigned long long>(super->buckets_per_seg * 256));
  for (int l = 0; l < 2; ++l) {
    std::fprintf(g_out, "%s  level %d         : %llu segments @ offset %llu\n",
                 ind, l, static_cast<unsigned long long>(super->level_segs[l]),
                 static_cast<unsigned long long>(super->level_off[l]));
  }
  const uint32_t ln = super->level_number.load();
  std::fprintf(g_out,
               "%s  resize state    : level_number=%u (%s), resizing_flag=%u, "
               "rehash_progress=%llu\n",
               ind, ln,
               ln == 0   ? "steady"
               : ln == 2 ? "resize started"
               : ln == 3 ? "REHASH IN FLIGHT — will resume on attach"
                         : "unknown",
               super->resizing_flag,
               static_cast<unsigned long long>(super->rehash_progress.load()));
  const bool clean = super->clean_shutdown != 0;
  std::fprintf(g_out, "%s  clean shutdown  : %s (recorded count %llu)\n", ind,
               clean ? "yes" : "NO (crash or still open)",
               static_cast<unsigned long long>(super->clean_item_count));

  const uint64_t log_off = alloc.root(Hdnh::kLogRoot);
  uint32_t armed = 0;
  if (log_off != 0) {
    auto* logs = pool.to_ptr<UpdateLogEntry>(log_off);
    for (uint32_t i = 0; i < kUpdateLogSlots; ++i) {
      if (logs[i].state.load() == 1) ++armed;
    }
  }
  std::fprintf(g_out, "%s  update log      : %u/%u entries armed%s\n", ind,
               armed, kUpdateLogSlots,
               armed ? " — attach will replay them" : "");

  std::fprintf(g_out, "%sattaching (runs §3.7 recovery)...\n", ind);
  HdnhConfig cfg;
  Hdnh table(alloc, cfg);
  const auto rs = table.last_recovery();
  std::fprintf(g_out,
               "%s  recovered %llu items in %.2f ms (resumed resize: %s)\n",
               ind, static_cast<unsigned long long>(rs.items), rs.total_ms,
               rs.resumed_resize ? "yes" : "no");
  std::fprintf(g_out,
               "%s  load factor %.3f over %llu slots, hot table %llu slots\n",
               ind, table.load_factor(),
               static_cast<unsigned long long>(table.total_slots()),
               static_cast<unsigned long long>(table.hot_table_slots()));

  if (jw) {
    jw->begin_object();
    jw->kv("status", "ok");
    jw->kv("clean_shutdown", clean);
    jw->kv("resize_level_number", ln);
    jw->kv("armed_log_entries", static_cast<uint64_t>(armed));
    jw->kv("items", table.size());
    jw->kv("total_slots", table.total_slots());
    jw->kv("load_factor", table.load_factor());
    jw->kv("recovery_ms", rs.total_ms);
    jw->kv("resumed_resize", rs.resumed_resize);
  }

  int rc = kExitOk;
  if (deep) {
    std::fprintf(g_out, "%sdeep integrity check...\n", ind);
    auto rep = table.check_integrity();
    std::fprintf(
        g_out,
        "%s  items=%llu ocf_mismatch=%llu fp_mismatch=%llu busy=%llu "
        "dups=%llu stale_hot=%llu armed_logs=%llu -> %s\n",
        ind, static_cast<unsigned long long>(rep.items),
        static_cast<unsigned long long>(rep.ocf_valid_mismatches),
        static_cast<unsigned long long>(rep.fingerprint_mismatches),
        static_cast<unsigned long long>(rep.stuck_busy_entries),
        static_cast<unsigned long long>(rep.duplicate_keys),
        static_cast<unsigned long long>(rep.hot_table_stale),
        static_cast<unsigned long long>(rep.armed_log_entries),
        rep.ok() ? "OK" : "PROBLEMS FOUND");
    if (jw) {
      jw->key("integrity").begin_object();
      jw->kv("ok", rep.ok());
      jw->kv("ocf_valid_mismatches", rep.ocf_valid_mismatches);
      jw->kv("fingerprint_mismatches", rep.fingerprint_mismatches);
      jw->kv("stuck_busy_entries", rep.stuck_busy_entries);
      jw->kv("duplicate_keys", rep.duplicate_keys);
      jw->kv("hot_table_stale", rep.hot_table_stale);
      jw->kv("armed_log_entries", rep.armed_log_entries);
      jw->end_object();
    }
    if (!rep.ok()) rc = kExitIntegrity;
  }
  if (jw) jw->end_object();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string pool_path =
      cli.get_str("pool", "", "file-backed pool to inspect (required)");
  const int64_t pool_mb =
      cli.get_int("pool_mb", 256, "pool size in MiB (must match creator)");
  const bool deep = cli.get_bool("deep", false, "run full integrity check");
  const bool stats =
      cli.get_bool("stats", false, "append the unified metrics scrape");
  const bool json = cli.get_bool(
      "json", false, "emit one JSON document on stdout (narration -> stderr)");
  cli.finish();
  g_out = json ? stderr : stdout;
  if (pool_path.empty()) {
    std::fprintf(stderr, "need --pool=PATH (see --help)\n");
    return kExitUsage;
  }

  obs::JsonWriter jw;
  obs::JsonWriter* jwp = json ? &jw : nullptr;
  if (jwp) {
    jw.begin_object();
    jw.kv("pool", pool_path);
  }
  // Emits the accumulated document (closing the root object) and returns
  // `rc` — the single exit point for every post-parse path.
  auto finish = [&](int rc, const char* status) -> int {
    if (jwp) {
      jw.kv("status", status);
      jw.kv("exit_code", rc);
      if (stats) {
        // Raw passthrough: the metrics registry serializes itself. Captured
        // here so any tables still in scope would be included; with the
        // doctor's scoped attaches this carries the global counters (nvm
        // traffic of every inspection) and any gauges still live.
        jw.key("metrics").raw(obs::Metrics::json());
      }
      jw.end_object();
      std::printf("%s\n", jw.str().c_str());
    } else if (stats) {
      std::printf("\n-- metrics scrape --\n%s", obs::Metrics::prometheus().c_str());
    }
    return rc;
  };

  nvm::PmemPool pool(static_cast<uint64_t>(pool_mb) << 20, nvm::NvmConfig{},
                     pool_path);
  if (!pool.recovered()) {
    std::fprintf(g_out, "%s: fresh/empty pool (no prior contents)\n",
                 pool_path.c_str());
    return finish(kExitOk, "fresh");
  }
  nvm::PmemAllocator alloc(pool);
  if (!alloc.attached_existing()) {
    std::fprintf(g_out, "%s: no allocator superblock — not an HDNH pool\n",
                 pool_path.c_str());
    return finish(kExitCorrupt, "not_hdnh");
  }

  std::fprintf(g_out, "pool: %s (%lld MiB, %llu bytes allocated)\n",
               pool_path.c_str(), static_cast<long long>(pool_mb),
               static_cast<unsigned long long>(alloc.used()));

  int rc = kExitOk;
  if (nvm::ShardedPmemLayout::present(alloc)) {
    // Sharded pool: the shard-map superblock lives in the parent allocator;
    // each shard is a self-contained HDNH region.
    nvm::ShardedPmemLayout layout(alloc, 1);
    std::fprintf(g_out, "\nshard map: %u shards\n", layout.shards());
    if (jwp) {
      jw.kv("shards", static_cast<uint64_t>(layout.shards()));
      jw.key("tables").begin_array();
    }
    for (uint32_t s = 0; s < layout.shards(); ++s) {
      std::fprintf(g_out, "\n-- shard %u: region [%llu, +%llu) --\n", s,
                   static_cast<unsigned long long>(layout.shard_off(s)),
                   static_cast<unsigned long long>(layout.shard_bytes(s)));
      rc = std::max(rc, inspect_table(pool, layout.shard_alloc(s), deep, "  ",
                                      jwp));
    }
    if (jwp) jw.end_array();
    std::fprintf(g_out, "\n%s\n", rc == kExitOk ? "all shards OK"
                                                : "PROBLEMS FOUND");
  } else {
    std::fprintf(g_out, "\n");
    if (jwp) {
      jw.kv("shards", static_cast<uint64_t>(1));
      jw.key("tables").begin_array();
    }
    rc = inspect_table(pool, alloc, deep, "", jwp);
    if (jwp) jw.end_array();
  }
  return finish(rc, rc == kExitOk          ? "ok"
                    : rc == kExitIntegrity ? "integrity_failed"
                                           : "corrupt");
}
