// hdnh_doctor: inspect and verify a file-backed HDNH pool.
//
//   $ ./tools/hdnh_doctor --pool=/tmp/store.pool            # inspect + verify
//   $ ./tools/hdnh_doctor --pool=/tmp/store.pool --deep     # + full integrity
//   $ ./tools/hdnh_doctor --pool=/tmp/store.pool --stats --json | jq .
//
// Prints the superblock (level geometry, resize state machine, clean-
// shutdown marker), the update-log occupancy, and — after attaching, which
// itself resumes any interrupted resize and replays armed update logs —
// item counts and recovery timings. --deep additionally runs the full
// OCF/NVT/hot-table coherence check. --stats appends the unified metrics
// scrape (src/obs) of the attached table(s); with --json, stdout carries
// exactly one machine-readable JSON document (all narration moves to
// stderr), so `hdnh_doctor --stats --json | python3 -m json.tool` always
// works.
//
// Sharded pools (created with an "hdnh@N" scheme) are detected via the
// shard-map superblock: the doctor walks every shard region and runs the
// same inspection per shard.
//
// Exit codes: 0 healthy (or fresh/empty pool), 2 usage error, 3 missing or
// corrupt superblock / not an HDNH pool, 4 deep integrity check failed.
#include <algorithm>
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "hdnh/hdnh.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "nvm/sharded_layout.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "vkv/log_store.h"
#include "vkv/vkv_store.h"

using namespace hdnh;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitCorrupt = 3;    // missing/invalid superblock structures
constexpr int kExitIntegrity = 4;  // --deep coherence check found problems

// Narration sink: stdout normally, stderr in --json mode (stdout is then
// reserved for the single JSON document).
FILE* g_out = nullptr;

// DIMM geometry used to map pool offsets offline. Resolved from (highest
// precedence first) explicit --dimms/--dimm_ig flags, the persisted shard
// map, or a persisted chunk-table super. Pools created with a flat config
// carry neither and print no placement map.
struct DimmGeom {
  uint32_t dimms = 1;
  uint64_t interleave = 0;  // 0 = contiguous per-DIMM slices
  const char* source = "none";
};

uint32_t geom_dimm(const DimmGeom& g, uint64_t off, uint64_t pool_size) {
  if (g.dimms <= 1) return 0;
  if (g.interleave != 0) {
    return static_cast<uint32_t>((off / g.interleave) % g.dimms);
  }
  uint64_t slice = pool_size / g.dimms / nvm::kNvmBlock * nvm::kNvmBlock;
  if (slice == 0) slice = nvm::kNvmBlock;
  const uint64_t s = off / slice;
  return static_cast<uint32_t>(s < g.dimms ? s : g.dimms - 1);
}

// Placement map of one allocator region: its chunk table (if chunked) and
// its value-log segment directory (if VkvStore's log root is set). Appends
// one JSON object to the open "regions" array when there is anything to
// report.
void region_placement(nvm::PmemPool& pool, nvm::PmemAllocator& alloc,
                      const DimmGeom& g, const std::string& region,
                      obs::JsonWriter* jw) {
  nvm::PmemAllocator::ChunkStats cs;
  const bool chunked = alloc.chunk_stats(&cs);
  const uint64_t log_super = alloc.root(vkv::VkvStore::kLogRoot);
  if (!chunked && log_super == 0) return;
  if (jw) {
    jw->begin_object();
    jw->kv("region", region);
  }
  if (chunked) {
    uint64_t per_dimm[nvm::kMaxDimms] = {};
    for (uint64_t i = 0; i < cs.chunk_count; ++i) {
      if (alloc.chunk_claimed(i)) {
        per_dimm[geom_dimm(g, cs.arena_off + i * cs.chunk_bytes,
                           pool.size())]++;
      }
    }
    std::fprintf(g_out,
                 "  %s: chunk table %llu x %llu KiB chunks, %llu claimed\n",
                 region.c_str(),
                 static_cast<unsigned long long>(cs.chunk_count),
                 static_cast<unsigned long long>(cs.chunk_bytes >> 10),
                 static_cast<unsigned long long>(cs.claimed));
    if (g.dimms > 1) {
      std::fprintf(g_out, "    claimed per dimm:");
      for (uint32_t d = 0; d < g.dimms; ++d) {
        std::fprintf(g_out, " %llu",
                     static_cast<unsigned long long>(per_dimm[d]));
      }
      std::fprintf(g_out, "\n");
    }
    if (jw) {
      jw->key("chunk_table").begin_object();
      jw->kv("chunk_bytes", cs.chunk_bytes);
      jw->kv("chunk_count", cs.chunk_count);
      jw->kv("claimed", cs.claimed);
      jw->key("claimed_per_dimm").begin_array();
      for (uint32_t d = 0; d < g.dimms; ++d) jw->value(per_dimm[d]);
      jw->end_array();
      jw->end_object();
    }
  }
  if (log_super != 0) {
    if (jw) jw->key("segments").begin_array();
    std::fprintf(g_out, "  %s: value-log segments:\n", region.c_str());
    const bool found = vkv::LogStore::inspect(
        pool, log_super,
        [&](int idx, uint64_t off, uint64_t cap, uint32_t state,
            uint64_t tail) {
          const uint32_t d = geom_dimm(g, off, pool.size());
          std::fprintf(
              g_out, "    seg %2d @ %12llu (+%llu) %s -> dimm %u\n", idx,
              static_cast<unsigned long long>(off),
              static_cast<unsigned long long>(cap),
              state == 1 ? "active" : "sealed", d);
          if (jw) {
            jw->begin_object();
            jw->kv("idx", static_cast<uint64_t>(idx));
            jw->kv("off", off);
            jw->kv("capacity", cap);
            jw->kv("state", static_cast<uint64_t>(state));
            jw->kv("sealed_tail", tail);
            jw->kv("dimm", static_cast<uint64_t>(d));
            jw->end_object();
          }
        });
    if (!found) {
      std::fprintf(g_out, "    (root slot set but no log magic)\n");
    }
    if (jw) jw->end_array();
  }
  if (jw) jw->end_object();
}

// Inspect one HDNH instance rooted in `alloc` (the whole pool for the
// single-table layout, one shard region for sharded pools). Returns an exit
// code; when `jw` is non-null, appends one JSON object describing the
// region to the (already-open) array.
int inspect_table(nvm::PmemPool& pool, nvm::PmemAllocator& alloc, bool deep,
                  const char* ind, obs::JsonWriter* jw) {
  const uint64_t super_off = alloc.root(Hdnh::kSuperRoot);
  if (super_off == 0) {
    std::fprintf(g_out,
                 "%sno HDNH superblock root — region holds something else\n",
                 ind);
    if (jw) {
      jw->begin_object();
      jw->kv("status", "no_superblock");
      jw->end_object();
    }
    return kExitCorrupt;
  }
  auto* super = pool.to_ptr<HdnhSuper>(super_off);
  if (super->magic != HdnhSuper::kMagic) {
    std::fprintf(g_out, "%ssuperblock magic mismatch (%016llx) — corrupt?\n",
                 ind, static_cast<unsigned long long>(super->magic));
    if (jw) {
      jw->begin_object();
      jw->kv("status", "corrupt_superblock");
      jw->end_object();
    }
    return kExitCorrupt;
  }

  std::fprintf(g_out, "%ssuperblock (pre-attach, as found on media):\n", ind);
  std::fprintf(g_out, "%s  buckets/segment : %llu (%llu B segments)\n", ind,
               static_cast<unsigned long long>(super->buckets_per_seg),
               static_cast<unsigned long long>(super->buckets_per_seg * 256));
  for (int l = 0; l < 2; ++l) {
    std::fprintf(g_out, "%s  level %d         : %llu segments @ offset %llu\n",
                 ind, l, static_cast<unsigned long long>(super->level_segs[l]),
                 static_cast<unsigned long long>(super->level_off[l]));
  }
  const uint32_t ln = super->level_number.load();
  std::fprintf(g_out,
               "%s  resize state    : level_number=%u (%s), resizing_flag=%u, "
               "rehash_progress=%llu\n",
               ind, ln,
               ln == 0   ? "steady"
               : ln == 2 ? "resize started"
               : ln == 3 ? "REHASH IN FLIGHT — will resume on attach"
                         : "unknown",
               super->resizing_flag,
               static_cast<unsigned long long>(super->rehash_progress.load()));
  const bool clean = super->clean_shutdown != 0;
  std::fprintf(g_out, "%s  clean shutdown  : %s (recorded count %llu)\n", ind,
               clean ? "yes" : "NO (crash or still open)",
               static_cast<unsigned long long>(super->clean_item_count));

  const uint64_t log_off = alloc.root(Hdnh::kLogRoot);
  uint32_t armed = 0;
  if (log_off != 0) {
    auto* logs = pool.to_ptr<UpdateLogEntry>(log_off);
    for (uint32_t i = 0; i < kUpdateLogSlots; ++i) {
      if (logs[i].state.load() == 1) ++armed;
    }
  }
  std::fprintf(g_out, "%s  update log      : %u/%u entries armed%s\n", ind,
               armed, kUpdateLogSlots,
               armed ? " — attach will replay them" : "");

  std::fprintf(g_out, "%sattaching (runs §3.7 recovery)...\n", ind);
  HdnhConfig cfg;
  Hdnh table(alloc, cfg);
  const auto rs = table.last_recovery();
  std::fprintf(g_out,
               "%s  recovered %llu items in %.2f ms (resumed resize: %s)\n",
               ind, static_cast<unsigned long long>(rs.items), rs.total_ms,
               rs.resumed_resize ? "yes" : "no");
  std::fprintf(g_out,
               "%s  load factor %.3f over %llu slots, hot table %llu slots\n",
               ind, table.load_factor(),
               static_cast<unsigned long long>(table.total_slots()),
               static_cast<unsigned long long>(table.hot_table_slots()));

  if (jw) {
    jw->begin_object();
    jw->kv("status", "ok");
    jw->kv("clean_shutdown", clean);
    jw->kv("resize_level_number", ln);
    jw->kv("armed_log_entries", static_cast<uint64_t>(armed));
    jw->kv("items", table.size());
    jw->kv("total_slots", table.total_slots());
    jw->kv("load_factor", table.load_factor());
    jw->kv("recovery_ms", rs.total_ms);
    jw->kv("resumed_resize", rs.resumed_resize);
  }

  int rc = kExitOk;
  if (deep) {
    std::fprintf(g_out, "%sdeep integrity check...\n", ind);
    auto rep = table.check_integrity();
    std::fprintf(
        g_out,
        "%s  items=%llu ocf_mismatch=%llu fp_mismatch=%llu busy=%llu "
        "dups=%llu stale_hot=%llu armed_logs=%llu -> %s\n",
        ind, static_cast<unsigned long long>(rep.items),
        static_cast<unsigned long long>(rep.ocf_valid_mismatches),
        static_cast<unsigned long long>(rep.fingerprint_mismatches),
        static_cast<unsigned long long>(rep.stuck_busy_entries),
        static_cast<unsigned long long>(rep.duplicate_keys),
        static_cast<unsigned long long>(rep.hot_table_stale),
        static_cast<unsigned long long>(rep.armed_log_entries),
        rep.ok() ? "OK" : "PROBLEMS FOUND");
    if (jw) {
      jw->key("integrity").begin_object();
      jw->kv("ok", rep.ok());
      jw->kv("ocf_valid_mismatches", rep.ocf_valid_mismatches);
      jw->kv("fingerprint_mismatches", rep.fingerprint_mismatches);
      jw->kv("stuck_busy_entries", rep.stuck_busy_entries);
      jw->kv("duplicate_keys", rep.duplicate_keys);
      jw->kv("hot_table_stale", rep.hot_table_stale);
      jw->kv("armed_log_entries", rep.armed_log_entries);
      jw->end_object();
    }
    if (!rep.ok()) rc = kExitIntegrity;
  }
  if (jw) jw->end_object();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string pool_path =
      cli.get_str("pool", "", "file-backed pool to inspect (required)");
  const int64_t pool_mb =
      cli.get_int("pool_mb", 256, "pool size in MiB (must match creator)");
  const bool deep = cli.get_bool("deep", false, "run full integrity check");
  const bool show_shards = cli.get_bool(
      "shards", false, "dump the extendible shard directory (sharded pools)");
  const bool stats =
      cli.get_bool("stats", false, "append the unified metrics scrape");
  const bool json = cli.get_bool(
      "json", false, "emit one JSON document on stdout (narration -> stderr)");
  const int64_t dimms_flag = cli.get_int(
      "dimms", 0, "override DIMM count for placement maps (0 = use persisted)");
  const int64_t dimm_ig_flag = cli.get_int(
      "dimm_ig", 1 << 20, "interleave granularity in bytes (with --dimms)");
  cli.finish();
  g_out = json ? stderr : stdout;
  if (pool_path.empty()) {
    std::fprintf(stderr, "need --pool=PATH (see --help)\n");
    return kExitUsage;
  }

  obs::JsonWriter jw;
  obs::JsonWriter* jwp = json ? &jw : nullptr;
  if (jwp) {
    jw.begin_object();
    jw.kv("pool", pool_path);
  }
  // One-shot aggregator (no background thread): a manual tick before the
  // scrape closes the window over the doctor's own inspection traffic and
  // publishes the per-DIMM queue-depth/stall EWMA gauges, so --stats shows
  // the same families a live server exports.
  obs::Aggregator::Options aopts;
  aopts.interval_s = 0;
  obs::Aggregator aggregator(aopts);

  // Emits the accumulated document (closing the root object) and returns
  // `rc` — the single exit point for every post-parse path.
  auto finish = [&](int rc, const char* status) -> int {
    if (stats) aggregator.tick_now();
    if (jwp) {
      jw.kv("status", status);
      jw.kv("exit_code", rc);
      if (stats) {
        // Raw passthrough: the metrics registry serializes itself. Captured
        // here so any tables still in scope would be included; with the
        // doctor's scoped attaches this carries the global counters (nvm
        // traffic of every inspection) and any gauges still live.
        jw.key("metrics").raw(obs::Metrics::json());
      }
      jw.end_object();
      std::printf("%s\n", jw.str().c_str());
    } else if (stats) {
      std::printf("\n-- metrics scrape --\n%s", obs::Metrics::prometheus().c_str());
    }
    return rc;
  };

  nvm::PmemPool pool(static_cast<uint64_t>(pool_mb) << 20, nvm::NvmConfig{},
                     pool_path);
  if (!pool.recovered()) {
    std::fprintf(g_out, "%s: fresh/empty pool (no prior contents)\n",
                 pool_path.c_str());
    return finish(kExitOk, "fresh");
  }
  nvm::PmemAllocator alloc(pool);
  if (!alloc.attached_existing()) {
    std::fprintf(g_out, "%s: no allocator superblock — not an HDNH pool\n",
                 pool_path.c_str());
    return finish(kExitCorrupt, "not_hdnh");
  }

  std::fprintf(g_out, "pool: %s (%lld MiB, %llu bytes allocated)\n",
               pool_path.c_str(), static_cast<long long>(pool_mb),
               static_cast<unsigned long long>(alloc.used()));

  // Placement maps: chunk tables, shard→DIMM, value-log segment→DIMM. The
  // doctor opens the pool with a flat config, so DIMM homes are computed
  // offline from persisted geometry (shard map, then chunk-table super),
  // overridable with --dimms/--dimm_ig.
  auto placement = [&](nvm::ShardedPmemLayout* layout) {
    DimmGeom g;
    if (dimms_flag > 1) {
      g = {static_cast<uint32_t>(dimms_flag),
           static_cast<uint64_t>(dimm_ig_flag), "flags"};
    } else if (layout && layout->dimms() > 1) {
      g = {layout->dimms(), layout->interleave_bytes(), "shard_map"};
    } else {
      nvm::PmemAllocator::ChunkStats cs;
      if (alloc.chunk_stats(&cs) && cs.dimms > 1) {
        g = {cs.dimms, cs.interleave_bytes, "chunk_table"};
      }
    }
    nvm::PmemAllocator::ChunkStats cs;
    bool any = g.dimms > 1 || alloc.chunk_stats(&cs) ||
               alloc.root(vkv::VkvStore::kLogRoot) != 0;
    if (layout) {
      for (uint32_t s = 0; !any && s < layout->shards(); ++s) {
        any = layout->shard_alloc(s).chunk_stats(&cs) ||
              layout->shard_alloc(s).root(vkv::VkvStore::kLogRoot) != 0;
      }
    }
    if (!any) return;
    std::fprintf(g_out, "\nplacement (%u dimm%s, geometry from %s):\n",
                 g.dimms, g.dimms == 1 ? "" : "s", g.source);
    if (jwp) {
      jw.key("placement").begin_object();
      jw.kv("dimms", static_cast<uint64_t>(g.dimms));
      jw.kv("interleave_bytes", g.interleave);
      jw.kv("source", g.source);
    }
    if (layout && g.dimms > 1) {
      std::fprintf(g_out, "  shard homes:");
      for (uint32_t s = 0; s < layout->shards(); ++s) {
        std::fprintf(g_out, " %u->d%u", s, layout->shard_dimm(s));
      }
      std::fprintf(g_out, "\n");
      if (jwp) {
        jw.key("shard_dimm").begin_array();
        for (uint32_t s = 0; s < layout->shards(); ++s) {
          jw.value(static_cast<uint64_t>(layout->shard_dimm(s)));
        }
        jw.end_array();
      }
    }
    if (jwp) jw.key("regions").begin_array();
    region_placement(pool, alloc, g, "pool", jwp);
    if (layout) {
      for (uint32_t s = 0; s < layout->shards(); ++s) {
        region_placement(pool, layout->shard_alloc(s), g,
                         "shard " + std::to_string(s), jwp);
      }
    }
    if (jwp) {
      jw.end_array();
      jw.end_object();
    }
  };

  int rc = kExitOk;
  if (nvm::ShardedPmemLayout::present(alloc)) {
    // Sharded pool: the shard-map superblock lives in the parent allocator;
    // each shard is a self-contained HDNH region.
    nvm::ShardedPmemLayout layout(alloc, 1);
    std::fprintf(g_out, "\nshard map: %u shards\n", layout.shards());
    if (jwp) jw.kv("shards", static_cast<uint64_t>(layout.shards()));
    if (show_shards) {
      // The extendible directory as persisted: who owns which top-hash-bit
      // prefix, at what depth, and whether a split is mid-flight.
      std::fprintf(g_out,
                   "directory: global_depth=%u epoch=%llu entries=%u "
                   "shards=%u/%u split_in_progress=%d\n",
                   layout.global_depth(),
                   static_cast<unsigned long long>(layout.dir_seq()),
                   layout.dir_entries(), layout.shards(), layout.regions(),
                   layout.split_in_progress() ? 1 : 0);
      std::fprintf(g_out, "  entries:");
      for (uint32_t e = 0; e < layout.dir_entries(); ++e) {
        std::fprintf(g_out, " %u", layout.dir_shard(e));
      }
      std::fprintf(g_out, "\n  local depths:");
      for (uint32_t s = 0; s < layout.shards(); ++s) {
        std::fprintf(g_out, " %u:%u", s, layout.local_depth(s));
      }
      std::fprintf(g_out, "\n");
      if (jwp) {
        jw.key("directory").begin_object();
        jw.kv("global_depth", static_cast<uint64_t>(layout.global_depth()));
        jw.kv("epoch", layout.dir_seq());
        jw.kv("shard_count", static_cast<uint64_t>(layout.shards()));
        jw.kv("max_shards", static_cast<uint64_t>(layout.regions()));
        jw.kv("split_in_progress",
              static_cast<uint64_t>(layout.split_in_progress() ? 1 : 0));
        jw.key("entries").begin_array();
        for (uint32_t e = 0; e < layout.dir_entries(); ++e) {
          jw.value(static_cast<uint64_t>(layout.dir_shard(e)));
        }
        jw.end_array();
        jw.key("local_depth").begin_array();
        for (uint32_t s = 0; s < layout.shards(); ++s) {
          jw.value(static_cast<uint64_t>(layout.local_depth(s)));
        }
        jw.end_array();
        jw.end_object();
      }
    }
    placement(&layout);
    if (jwp) jw.key("tables").begin_array();
    for (uint32_t s = 0; s < layout.shards(); ++s) {
      std::fprintf(g_out, "\n-- shard %u: region [%llu, +%llu) --\n", s,
                   static_cast<unsigned long long>(layout.shard_off(s)),
                   static_cast<unsigned long long>(layout.shard_bytes(s)));
      rc = std::max(rc, inspect_table(pool, layout.shard_alloc(s), deep, "  ",
                                      jwp));
    }
    if (jwp) jw.end_array();
    std::fprintf(g_out, "\n%s\n", rc == kExitOk ? "all shards OK"
                                                : "PROBLEMS FOUND");
  } else {
    std::fprintf(g_out, "\n");
    if (jwp) jw.kv("shards", static_cast<uint64_t>(1));
    if (show_shards) {
      std::fprintf(g_out, "single-table pool: no shard directory\n");
    }
    placement(nullptr);
    if (jwp) jw.key("tables").begin_array();
    rc = inspect_table(pool, alloc, deep, "", jwp);
    if (jwp) jw.end_array();
  }
  return finish(rc, rc == kExitOk          ? "ok"
                    : rc == kExitIntegrity ? "integrity_failed"
                                           : "corrupt");
}
