// hdnh_doctor: inspect and verify a file-backed HDNH pool.
//
//   $ ./tools/hdnh_doctor --pool=/tmp/store.pool            # inspect + verify
//   $ ./tools/hdnh_doctor --pool=/tmp/store.pool --deep     # + full integrity
//
// Prints the superblock (level geometry, resize state machine, clean-
// shutdown marker), the update-log occupancy, and — after attaching, which
// itself resumes any interrupted resize and replays armed update logs —
// item counts and recovery timings. --deep additionally runs the full
// OCF/NVT/hot-table coherence check.
//
// Sharded pools (created with an "hdnh@N" scheme) are detected via the
// shard-map superblock: the doctor walks every shard region and runs the
// same inspection per shard.
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "hdnh/hdnh.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "nvm/sharded_layout.h"

using namespace hdnh;

namespace {

// Inspect one HDNH instance rooted in `alloc` (the whole pool for the
// single-table layout, one shard region for sharded pools). Returns 0 when
// healthy, 1 on missing/corrupt structures or failed integrity.
int inspect_table(nvm::PmemPool& pool, nvm::PmemAllocator& alloc, bool deep,
                  const char* ind) {
  const uint64_t super_off = alloc.root(Hdnh::kSuperRoot);
  if (super_off == 0) {
    std::printf("%sno HDNH superblock root — region holds something else\n",
                ind);
    return 1;
  }
  auto* super = pool.to_ptr<HdnhSuper>(super_off);
  if (super->magic != HdnhSuper::kMagic) {
    std::printf("%ssuperblock magic mismatch (%016llx) — corrupt?\n", ind,
                static_cast<unsigned long long>(super->magic));
    return 1;
  }

  std::printf("%ssuperblock (pre-attach, as found on media):\n", ind);
  std::printf("%s  buckets/segment : %llu (%llu B segments)\n", ind,
              static_cast<unsigned long long>(super->buckets_per_seg),
              static_cast<unsigned long long>(super->buckets_per_seg * 256));
  for (int l = 0; l < 2; ++l) {
    std::printf("%s  level %d         : %llu segments @ offset %llu\n", ind, l,
                static_cast<unsigned long long>(super->level_segs[l]),
                static_cast<unsigned long long>(super->level_off[l]));
  }
  const uint32_t ln = super->level_number.load();
  std::printf("%s  resize state    : level_number=%u (%s), resizing_flag=%u, "
              "rehash_progress=%llu\n",
              ind, ln,
              ln == 0   ? "steady"
              : ln == 2 ? "resize started"
              : ln == 3 ? "REHASH IN FLIGHT — will resume on attach"
                        : "unknown",
              super->resizing_flag,
              static_cast<unsigned long long>(super->rehash_progress.load()));
  std::printf("%s  clean shutdown  : %s (recorded count %llu)\n", ind,
              super->clean_shutdown ? "yes" : "NO (crash or still open)",
              static_cast<unsigned long long>(super->clean_item_count));

  const uint64_t log_off = alloc.root(Hdnh::kLogRoot);
  uint32_t armed = 0;
  if (log_off != 0) {
    auto* logs = pool.to_ptr<UpdateLogEntry>(log_off);
    for (uint32_t i = 0; i < kUpdateLogSlots; ++i) {
      if (logs[i].state.load() == 1) ++armed;
    }
  }
  std::printf("%s  update log      : %u/%u entries armed%s\n", ind, armed,
              kUpdateLogSlots,
              armed ? " — attach will replay them" : "");

  std::printf("%sattaching (runs §3.7 recovery)...\n", ind);
  HdnhConfig cfg;
  Hdnh table(alloc, cfg);
  const auto rs = table.last_recovery();
  std::printf("%s  recovered %llu items in %.2f ms (resumed resize: %s)\n",
              ind, static_cast<unsigned long long>(rs.items), rs.total_ms,
              rs.resumed_resize ? "yes" : "no");
  std::printf("%s  load factor %.3f over %llu slots, hot table %llu slots\n",
              ind, table.load_factor(),
              static_cast<unsigned long long>(table.total_slots()),
              static_cast<unsigned long long>(table.hot_table_slots()));

  if (deep) {
    std::printf("%sdeep integrity check...\n", ind);
    auto rep = table.check_integrity();
    std::printf("%s  items=%llu ocf_mismatch=%llu fp_mismatch=%llu busy=%llu "
                "dups=%llu stale_hot=%llu armed_logs=%llu -> %s\n",
                ind, static_cast<unsigned long long>(rep.items),
                static_cast<unsigned long long>(rep.ocf_valid_mismatches),
                static_cast<unsigned long long>(rep.fingerprint_mismatches),
                static_cast<unsigned long long>(rep.stuck_busy_entries),
                static_cast<unsigned long long>(rep.duplicate_keys),
                static_cast<unsigned long long>(rep.hot_table_stale),
                static_cast<unsigned long long>(rep.armed_log_entries),
                rep.ok() ? "OK" : "PROBLEMS FOUND");
    return rep.ok() ? 0 : 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string pool_path =
      cli.get_str("pool", "", "file-backed pool to inspect (required)");
  const int64_t pool_mb =
      cli.get_int("pool_mb", 256, "pool size in MiB (must match creator)");
  const bool deep = cli.get_bool("deep", false, "run full integrity check");
  cli.finish();
  if (pool_path.empty()) {
    std::fprintf(stderr, "need --pool=PATH (see --help)\n");
    return 2;
  }

  nvm::PmemPool pool(static_cast<uint64_t>(pool_mb) << 20, nvm::NvmConfig{},
                     pool_path);
  if (!pool.recovered()) {
    std::printf("%s: fresh/empty pool (no prior contents)\n",
                pool_path.c_str());
    return 0;
  }
  nvm::PmemAllocator alloc(pool);
  if (!alloc.attached_existing()) {
    std::printf("%s: no allocator superblock — not an HDNH pool\n",
                pool_path.c_str());
    return 1;
  }

  std::printf("pool: %s (%lld MiB, %llu bytes allocated)\n", pool_path.c_str(),
              static_cast<long long>(pool_mb),
              static_cast<unsigned long long>(alloc.used()));

  if (nvm::ShardedPmemLayout::present(alloc)) {
    // Sharded pool: the shard-map superblock lives in the parent allocator;
    // each shard is a self-contained HDNH region.
    nvm::ShardedPmemLayout layout(alloc, 1);
    std::printf("\nshard map: %u shards\n", layout.shards());
    int rc = 0;
    for (uint32_t s = 0; s < layout.shards(); ++s) {
      std::printf("\n-- shard %u: region [%llu, +%llu) --\n", s,
                  static_cast<unsigned long long>(layout.shard_off(s)),
                  static_cast<unsigned long long>(layout.shard_bytes(s)));
      rc |= inspect_table(pool, layout.shard_alloc(s), deep, "  ");
    }
    std::printf("\n%s\n", rc == 0 ? "all shards OK" : "PROBLEMS FOUND");
    return rc;
  }
  std::printf("\n");
  return inspect_table(pool, alloc, deep, "");
}
