// hdnh_server — the store behind a TCP port (docs/server.md).
//
//   $ ./tools/hdnh_server --scheme=hdnh@4 --port=6399 --threads=4
//   hdnh_server listening on 127.0.0.1:6399 (scheme=HDNH@4, threads=4)
//
// Speaks the RESP2 subset GET/SET/SETNX/DEL/MGET/EXISTS/DBSIZE/PING/INFO/
// COMMAND, so redis-cli and our own net::Client both work against it.
// --pool=PATH serves a file-backed pool (data survives restarts; attach
// runs recovery); the default is an anonymous emulated pool. SIGINT /
// SIGTERM / a SHUTDOWN command stop it gracefully: connections drain, a
// final stats line prints, metrics files get a last snapshot, exit 0.
//
// Replication (docs/server.md "Replication"): every server carries a
// ReplLog by default (--repl=false disables), so a replica can attach at
// any time with REPLSTREAM. --replica_of=host:port starts in replica mode:
// read-only, applying the primary's stream, until a PROMOTE verb (or the
// primary's death plus an operator PROMOTE) flips it writable.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "api/factory.h"
#include "common/cli.h"
#include "net/repl.h"
#include "net/server.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "obs/obs.h"

using namespace hdnh;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string scheme = cli.get_str(
      "scheme", "hdnh@4",
      "store scheme (factory name, @N shards; \"vkv[@N]\" = value-log store)");
  const std::string bind = cli.get_str("bind", "127.0.0.1", "bind address");
  const uint16_t port = static_cast<uint16_t>(
      cli.get_int("port", 6399, "TCP port (0 = ephemeral, printed at start)"));
  const uint32_t threads = static_cast<uint32_t>(
      cli.get_int("threads", 4, "reactor threads"));
  const uint64_t capacity = static_cast<uint64_t>(
      cli.get_int("capacity", 1 << 20, "items the store should accommodate"));
  const uint32_t max_shards = static_cast<uint32_t>(cli.get_int(
      "max_shards", 0,
      "region-carve ceiling for online splits (RESHARD; 0 = no headroom)"));
  const bool auto_split = cli.get_bool(
      "auto_split", false,
      "background controller splits the hottest shard (needs max_shards)");
  const std::string pool_path =
      cli.get_str("pool", "", "file-backed pool path (default: anonymous)");
  const uint64_t pool_mb = static_cast<uint64_t>(
      cli.get_int("pool_mb", 0, "pool size in MiB (0 = sized from capacity)"));
  const uint64_t avg_value = static_cast<uint64_t>(cli.get_int(
      "avg_value_bytes", 256, "expected value size (sizes the vkv log)"));
  const uint64_t log_mb = static_cast<uint64_t>(cli.get_int(
      "log_mb", 0, "vkv value-log cap in MiB (0 = sized from capacity)"));
  const bool emulate =
      cli.get_bool("emulate", false, "emulate AEP latency (spin-waits)");
  const bool nodelay = cli.get_bool("tcp_nodelay", true, "set TCP_NODELAY");
  const std::string metrics_out =
      cli.get_str("metrics_out", "", "periodic metrics JSON file");
  const std::string metrics_prom =
      cli.get_str("metrics_prom", "", "periodic Prometheus text file");
  const double metrics_interval =
      cli.get_double("metrics_interval_s", 1.0, "metrics rewrite cadence");
  const bool latency = cli.get_bool(
      "latency", true, "record op latency (windows/LATENCY/SLOWLOG source)");
  const bool hotkeys = cli.get_bool(
      "hotkeys", true, "track hot-key heavy hitters (HOTKEYS command)");
  const double slowlog_ms = cli.get_double(
      "slowlog_ms", 10.0, "SLOWLOG admission threshold in milliseconds");
  const double window_s = cli.get_double(
      "window_s", 1.0, "obs window rotation tick (<=0 disables)");
  const std::string replica_of = cli.get_str(
      "replica_of", "",
      "host:port of a primary to replicate (read-only until PROMOTE)");
  const bool repl = cli.get_bool(
      "repl", true, "keep a replication log so replicas can attach");
  const uint32_t repl_log_entries = static_cast<uint32_t>(cli.get_int(
      "repl_log_entries", 1 << 16, "repl entries retained for late attach"));
  const uint32_t repl_send_timeout_ms = static_cast<uint32_t>(cli.get_int(
      "repl_send_timeout_ms", 5000, "drop a replica sink stalled this long"));
  const uint32_t repl_recv_timeout_ms = static_cast<uint32_t>(cli.get_int(
      "repl_recv_timeout_ms", 500, "replica feed recv deadline per frame"));
  const uint32_t repl_ack_every = static_cast<uint32_t>(cli.get_int(
      "repl_ack_every", 64, "replica REPLACK cadence in applied entries"));
  cli.finish();

  std::string primary_host;
  uint16_t primary_port = 0;
  if (!replica_of.empty()) {
    const size_t colon = replica_of.rfind(':');
    const long p = colon == std::string::npos
                       ? 0
                       : std::atol(replica_of.c_str() + colon + 1);
    if (colon == std::string::npos || colon == 0 || p <= 0 || p > 65535) {
      std::fprintf(stderr, "bad --replica_of '%s' (want host:port)\n",
                   replica_of.c_str());
      return 2;
    }
    primary_host = replica_of.substr(0, colon);
    primary_port = static_cast<uint16_t>(p);
  }

  // Block the termination signals before any thread exists, so every
  // reactor inherits the mask and only the sigwait below sees them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  ShardingOptions sharding;
  sharding.max_shards = max_shards;
  sharding.auto_split = auto_split;
  uint64_t pool_bytes =
      pool_mb ? pool_mb << 20
              : kv_pool_bytes_hint(scheme, capacity + capacity / 2, avg_value,
                                   sharding);
  nvm::NvmConfig ncfg;
  ncfg.emulate_latency = emulate;
  nvm::PmemPool pool(pool_bytes, ncfg, pool_path);
  nvm::PmemAllocator alloc(pool);
  TableOptions topts;
  topts.capacity = capacity;
  topts.sharding = sharding;
  topts.log_bytes = log_mb ? log_mb << 20
                           : 2 * capacity * (avg_value + 48) + (16ull << 20);
  auto store = create_kv_store(scheme, alloc, topts);
  if (pool.recovered()) {
    std::printf("(attached existing pool %s: %llu items)\n", pool_path.c_str(),
                static_cast<unsigned long long>(store->size()));
  }

  net::ServerOptions sopts;
  sopts.bind = bind;
  sopts.port = port;
  sopts.threads = threads;
  sopts.tcp_nodelay = nodelay;
  net::Server server(*store, sopts);

  // Replication wiring. The log rides on every server (a primary is just a
  // server someone attached a replica to); a --replica_of server applies
  // the primary's stream and stays read-only until PROMOTE.
  std::unique_ptr<net::ReplLog> repl_log;
  if (repl) {
    net::ReplLogOptions lopts;
    lopts.ring_entries = repl_log_entries;
    lopts.send_timeout_ms = static_cast<int>(repl_send_timeout_ms);
    repl_log = std::make_unique<net::ReplLog>(lopts);
    repl_log->start();
    server.set_repl_log(repl_log.get());
  }
  std::unique_ptr<net::ReplicaSession> replica;
  if (!primary_host.empty()) {
    net::ReplicaOptions ropts;
    ropts.host = primary_host;
    ropts.port = primary_port;
    ropts.recv_timeout_ms = repl_recv_timeout_ms;
    ropts.ack_every = repl_ack_every;
    replica = std::make_unique<net::ReplicaSession>(*store, ropts);
    server.set_replica(replica.get());
    replica->start();
  }

  // Load-signal plumbing: latency capture feeds the windows, LATENCY,
  // SLOWLOG, and per-shard heat; the aggregator rotates the windows and
  // publishes the EWMA gauges the serializers scrape.
  obs::Metrics::set_latency_enabled(latency);
  obs::HeavyHitters::set_enabled(hotkeys);
  obs::SlowLog::set_threshold_ns(
      static_cast<uint64_t>(slowlog_ms * 1'000'000.0));
  std::unique_ptr<obs::Aggregator> aggregator;
  if constexpr (obs::kCompiledIn) {
    obs::Aggregator::Options aopts;
    aopts.interval_s = window_s;
    aggregator = std::make_unique<obs::Aggregator>(aopts);
  }

  std::unique_ptr<obs::PeriodicReporter> reporter;
  if (!metrics_out.empty() || !metrics_prom.empty()) {
    obs::Metrics::set_latency_enabled(true);
    obs::PeriodicReporter::Options ropts;
    ropts.json_path = metrics_out;
    ropts.prom_path = metrics_prom;
    ropts.interval_s = metrics_interval;
    reporter = std::make_unique<obs::PeriodicReporter>(ropts);
  }

  server.start();
  std::printf("hdnh_server listening on %s:%u (scheme=%s, threads=%u)\n",
              bind.c_str(), server.port(), store->name(), threads);
  if (replica) {
    std::printf("replicating from %s:%u (read-only until PROMOTE)\n",
                primary_host.c_str(), primary_port);
  }
  std::fflush(stdout);

  // One thread turns a delivered signal into a stop request; main parks in
  // wait(), which a SHUTDOWN command also releases. After wait() returns,
  // re-raise SIGTERM so the signal thread always unblocks and joins.
  std::thread sig_thread([&] {
    int sig = 0;
    sigwait(&sigs, &sig);
    server.stop();
  });
  server.wait();
  ::kill(::getpid(), SIGTERM);
  sig_thread.join();
  server.stop();
  // The feed thread and sink shipper touch the store/sockets; stop them
  // before the stats read below and long before the store is destroyed.
  if (replica) replica->stop();
  if (repl_log) repl_log->stop();

  const net::Server::Counters c = server.counters();
  std::printf(
      "hdnh_server stopped: %llu commands, %llu connections, "
      "%llu protocol errors, %llu table-full errors, %llu items\n",
      static_cast<unsigned long long>(c.commands_processed),
      static_cast<unsigned long long>(c.connections_accepted),
      static_cast<unsigned long long>(c.protocol_errors),
      static_cast<unsigned long long>(c.table_full_errors),
      static_cast<unsigned long long>(store->size()));
  reporter.reset();    // final metrics snapshot
  aggregator.reset();  // stop the rotation tick before the store dies
  return 0;
}
