#!/usr/bin/env bash
# Run the read-path benchmark suite and aggregate every BENCH_JSON line the
# benches emit into a single checked-in evidence file, BENCH_results.json.
#
#   scripts/run_bench_suite.sh [quick|default]
#
# quick   — small sizes, one rep (CI smoke; numbers are indicative only)
# default — the sizes EXPERIMENTS.md records, best-of-3 in the microbench
#
# The aggregate carries the acceptance numbers for the vectorized-probe /
# batched-multiget PR: micro_probe.probe_simd_speedup (negative lookups
# isolate the probe kernel) and micro_multiget.multiget_batch_speedup.
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE="${1:-default}"
case "$PROFILE" in
  quick)   ARGS="--preload=20000 --ops=80000"; PROBE_ARGS="--preload=20000 --ops=40000 --reps=1"
           VALUE_ARGS="--preload=10000 --ops=20000 --value_sweep=16,128,1024,65536"
           NET_OPS=50000;  DIMM_ARGS="--thread_list=8"
           OBS_ARGS="--preload=20000 --ops=40000 --reps=3"
           SPLIT_ARGS="--preload=40000 --threads=2 --calm_ms=200" ;;
  default) ARGS="";                            PROBE_ARGS="--reps=3"
           VALUE_ARGS="--value_sweep=16,128,1024,65536"
           NET_OPS=200000; DIMM_ARGS="--thread_list=1,2,4,8"
           OBS_ARGS="--reps=10"
           SPLIT_ARGS="--preload=100000 --threads=4" ;;
  *) echo "usage: $0 [quick|default]" >&2; exit 2 ;;
esac

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

run() {
  echo "===== $1 =====" >&2
  shift
  # Keep the human-readable tables on stderr; collect only BENCH_JSON lines.
  "$@" | tee /dev/stderr | grep '^BENCH_JSON ' >>"$OUT" || true
}

run "probe kernel + multiget pipeline" ./build/bench/bench_micro_probe $PROBE_ARGS
run "telemetry overhead (on vs off)"   ./build/bench/bench_obs_overhead $OBS_ARGS
run "Figure 13 single-thread"          ./build/bench/bench_fig13_single_thread $ARGS
run "Figure 14 concurrency"            ./build/bench/bench_fig14_concurrency $ARGS
run "YCSB suite (serial reads)"        ./build/bench/bench_ycsb_suite $ARGS
run "YCSB suite (batched reads)"       ./build/bench/bench_ycsb_suite $ARGS --read_batch=32
run "YCSB value-size sweep (vkv)"      ./build/bench/bench_ycsb_suite $VALUE_ARGS --fixed=false --threads=4

# Elastic resharding headline: non-victim-shard p99 while a sibling shard
# splits under load (acceptance: ratio < 2x the calm baseline).
run "split stall (online reshard)"     ./build/bench/bench_split_stall $SPLIT_ARGS

# DIMM-parallelism axis: the chunked-vs-shared allocator headline under the
# default 6-DIMM bandwidth model (self-calibrating against this host), plus
# one attribution-only pass of fig13 (--dimms with uncapped buckets is
# traffic- and latency-neutral; CI asserts that separately).
run "DIMM scaling (chunked vs shared)" ./build/bench/bench_dimm_scaling $DIMM_ARGS
run "Figure 13 (per-DIMM attribution)" ./build/bench/bench_fig13_single_thread $ARGS --dimms=6

# Large values over the wire: a vkv-backed server and bench_net at 1 KiB and
# 64 KiB payloads (the fixed-record wire path caps out at 14 B).
for VB in 1024 65536; do
  ./build/tools/hdnh_server --scheme=vkv --port=6431 --capacity=20000 \
    --avg_value_bytes=$VB >/dev/null &
  SRV=$!
  sleep 0.5
  run "net value sweep ${VB}B" ./build/bench/bench_net --port=6431 \
    --conns=4 --depth=8 --ops=$NET_OPS --keys=5000 --value_bytes=$VB
  kill "$SRV" 2>/dev/null || true
  wait "$SRV" 2>/dev/null || true
done

# Provenance stamps: numbers without the tree/build that produced them are
# unreviewable, so record the git SHA, the build type from the CMake cache,
# and the detected SIMD level alongside the runs.
GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
GIT_DIRTY="$(git status --porcelain 2>/dev/null | grep -q . && echo true || echo false)"
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' build/CMakeCache.txt | head -n1)"
OBS="$(sed -n 's/^HDNH_OBS:BOOL=//p' build/CMakeCache.txt | head -n1)"

python3 - "$OUT" "$PROFILE" "$GIT_SHA" "$GIT_DIRTY" "${BUILD_TYPE:-unspecified}" "${OBS:-ON}" <<'PY'
import json, sys

runs = []
with open(sys.argv[1]) as f:
    for line in f:
        runs.append(json.loads(line[len("BENCH_JSON "):]))

# Headline acceptance numbers, pulled out of the run list for quick reading.
headline = {}
for r in runs:
    if r.get("bench") == "micro_probe" and r.get("case") == "negative":
        headline["probe_simd_speedup"] = r["probe_simd_speedup"]
        headline["probe_simd_level"] = r["simd_level"]
    if r.get("bench") == "micro_multiget":
        headline["multiget_batch_speedup"] = r["multiget_batch_speedup"]
        headline["overlapped_read_fraction"] = r["overlapped_read_fraction"]
    if r.get("bench") == "dimm_scaling_headline":
        headline["dimm_chunked_speedup"] = r["speedup"]
    if r.get("bench") == "split_stall":
        headline["split_stall_p99_ratio"] = r["p99_ratio"]
    if r.get("bench") == "obs_overhead":
        headline["obs_on_negative_search_overhead"] = \
            r["obs_on_negative_search_overhead"]

# The DimmConfig the dimm-axis runs executed under (the bench calibrates
# its per-DIMM caps against the host, so they belong in provenance).
dimm_config = {}
for r in runs:
    if r.get("bench") == "dimm_scaling_headline":
        dimm_config = {k: r[k] for k in
                       ("dimms", "dimm_ig", "dimm_write_mbps", "dimm_read_mbps")}

meta = {
    "profile": sys.argv[2],
    "git_sha": sys.argv[3],
    "git_dirty": sys.argv[4] == "true",
    "build_type": sys.argv[5],
    "obs_compiled": sys.argv[6].upper() in ("ON", "1", "TRUE", "YES"),
    # The probe bench reports what the binary actually dispatched to, which
    # beats re-deriving it from compiler flags.
    "simd_level": headline.get("probe_simd_level", "unknown"),
    "dimm_config": dimm_config,
}

doc = {"suite": "read-path", "meta": meta, "headline": headline, "runs": runs}
with open("BENCH_results.json", "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"wrote BENCH_results.json ({len(runs)} runs)")
print("meta:", json.dumps(meta))
print("headline:", json.dumps(headline))
PY
