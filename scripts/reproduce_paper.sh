#!/usr/bin/env bash
# Reproduce every table and figure of the paper, plus the ablations.
#
#   scripts/reproduce_paper.sh [quick|default|large]
#
# quick   — ~1 minute sanity pass (tiny sizes)
# default — the sizes EXPERIMENTS.md records (a few minutes)
# large   — approaches the paper's operating point (hours; needs ~16 GB RAM)
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE="${1:-default}"
case "$PROFILE" in
  quick)   ARGS="--preload=20000 --ops=80000" ;;
  default) ARGS="" ;;
  large)   ARGS="--preload=2000000 --ops=18000000" ;;
  *) echo "usage: $0 [quick|default|large]" >&2; exit 2 ;;
esac

cmake -B build -G Ninja >/dev/null
cmake --build build >/dev/null

run() {
  echo "===== $1 ====="
  shift
  "$@"
  echo
}

run "Figure 11(a) segment size"      ./build/bench/bench_fig11a_segment_size $ARGS
run "Figure 11(b) hot-table slots"   ./build/bench/bench_fig11b_hot_slots $ARGS
run "Figure 12 skewness"             ./build/bench/bench_fig12_skewness $ARGS
run "Figure 13 single-thread"        ./build/bench/bench_fig13_single_thread $ARGS
run "Figure 14 concurrency"          ./build/bench/bench_fig14_concurrency $ARGS
run "Figure 15 tail latency"         ./build/bench/bench_fig15_tail_latency $ARGS
run "Table 1 recovery"               ./build/bench/bench_table1_recovery
run "Ablations"                      ./build/bench/bench_ablation_components $ARGS
run "YCSB A/B/C suite"               ./build/bench/bench_ycsb_suite $ARGS
run "NVM traffic matrix"             ./build/bench/bench_nvm_traffic $ARGS
run "Space utilization"              ./build/bench/bench_space_utilization
run "Resize pauses"                  ./build/bench/bench_resize_pause
