// Trace replay: drive any scheme from a plain-text operation trace — the
// way a downstream user would evaluate HDNH on their own captured workload.
//
// Trace format, one op per line (ids are u64; '#' starts a comment):
//   I <key> <value>     insert
//   R <key>             read / search
//   U <key> <value>     update
//   D <key>             delete
//
//   $ ./examples/trace_replay --scheme=hdnh --trace=ops.txt
//   $ ./examples/trace_replay --make_demo_trace=/tmp/demo.txt   # generate one
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "api/factory.h"
#include "common/cli.h"
#include "common/clock.h"
#include "common/random.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

using namespace hdnh;

namespace {

void make_demo_trace(const std::string& path, uint64_t n) {
  std::ofstream out(path);
  out << "# demo trace: skewed reads over " << n / 4 << " keys\n";
  for (uint64_t i = 0; i < n / 4; ++i)
    out << "I " << i << " " << i << "\n";
  ZipfianChooser zipf(n / 4, 0.99, 7);
  Rng rng(9);
  for (uint64_t i = 0; i < 3 * n / 4; ++i) {
    const uint64_t k = zipf.next();
    switch (rng.next_below(10)) {
      case 0:
        out << "U " << k << " " << i << "\n";
        break;
      case 1:
        out << "D " << k << "\n";
        break;
      default:
        out << "R " << k << "\n";
        break;
    }
  }
  std::printf("wrote demo trace (%llu ops) to %s\n",
              static_cast<unsigned long long>(n), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string scheme =
      cli.get_str("scheme", "hdnh", "hdnh|hdnh-lru|level|cceh|path|...");
  const std::string trace_path = cli.get_str("trace", "", "trace file to replay");
  const std::string demo = cli.get_str("make_demo_trace", "",
                                       "write a demo trace here and exit");
  const uint64_t demo_ops = static_cast<uint64_t>(
      cli.get_int("demo_ops", 400000, "ops in the generated demo trace"));
  const bool emulate = cli.get_bool("emulate", true, "AEP latency emulation");
  cli.finish();

  if (!demo.empty()) {
    make_demo_trace(demo, demo_ops);
    return 0;
  }
  if (trace_path.empty()) {
    std::fprintf(stderr, "need --trace=FILE (or --make_demo_trace=FILE)\n");
    return 2;
  }

  // Pre-scan the trace to size the pool.
  uint64_t inserts = 0, total = 0;
  {
    std::ifstream in(trace_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] == 'I') ++inserts;
      if (!line.empty() && line[0] != '#') ++total;
    }
  }

  nvm::NvmConfig ncfg;
  ncfg.emulate_latency = emulate;
  nvm::PmemPool pool(pool_bytes_hint(scheme, inserts + 1024), ncfg);
  nvm::PmemAllocator alloc(pool);
  TableOptions opts;
  opts.capacity = inserts + 1024;
  auto table = create_table(scheme, alloc, opts);

  std::ifstream in(trace_path);
  std::string line;
  uint64_t done = 0, hits = 0;
  nvm::Stats::reset();
  ScopeTimer timer;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char op;
    uint64_t k, v = 0;
    ls >> op >> k;
    if (op == 'I' || op == 'U') ls >> v;
    bool ok = false;
    switch (op) {
      case 'I':
        ok = table->insert(make_key(k), make_value(v));
        break;
      case 'R': {
        Value out;
        ok = table->search(make_key(k), &out);
        break;
      }
      case 'U':
        ok = table->update(make_key(k), make_value(v));
        break;
      case 'D':
        ok = table->erase(make_key(k));
        break;
      default:
        std::fprintf(stderr, "bad op '%c' in line: %s\n", op, line.c_str());
        return 2;
    }
    hits += ok ? 1 : 0;
    ++done;
  }
  const double secs = timer.elapsed_s();
  auto s = nvm::Stats::snapshot();
  std::printf("%s: replayed %llu ops in %.3f s (%.3f Mops/s), %llu effective\n",
              table->name(), static_cast<unsigned long long>(done), secs,
              static_cast<double>(done) / secs / 1e6,
              static_cast<unsigned long long>(hits));
  std::printf("NVM traffic: %.3f reads/op (%.3f blocks), %.3f writes/op; "
              "hot-table hits %.1f%%, OCF filtered %llu probes\n",
              static_cast<double>(s.nvm_read_ops) / static_cast<double>(done),
              static_cast<double>(s.nvm_read_blocks) / static_cast<double>(done),
              static_cast<double>(s.nvm_write_ops) / static_cast<double>(done),
              100.0 * static_cast<double>(s.dram_hot_hits) /
                  static_cast<double>(done),
              static_cast<unsigned long long>(s.ocf_filtered));
  std::printf("final: %llu items, load factor %.3f\n",
              static_cast<unsigned long long>(table->size()),
              table->load_factor());
  return 0;
}
