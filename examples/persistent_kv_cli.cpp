// A tiny persistent key-value CLI on top of HDNH with a file-backed pool:
// data survives across process runs, exercising the recovery path
// (§3.7 "recovery after a normal shutdown") for real.
//
//   $ ./examples/persistent_kv_cli --pool=/tmp/demo.pool put 1 41
//   $ ./examples/persistent_kv_cli --pool=/tmp/demo.pool put 2 42
//   $ ./examples/persistent_kv_cli --pool=/tmp/demo.pool get 2
//   value id 42
//   $ ./examples/persistent_kv_cli --pool=/tmp/demo.pool stats
//
// --shards=N partitions the store into N independent HDNH shards (see
// docs/sharding.md). The default --shards=1 keeps the classic single-table
// pool layout, byte-compatible with pools written by older builds. A
// sharded pool remembers its shard count: reopening it ignores a
// conflicting --shards value.
//
// Keys and values are u64 ids mapped through make_key/make_value (the
// library stores fixed 16 B keys / 15 B values).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/factory.h"
#include "hdnh/hdnh.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "obs/obs.h"
#include "store/sharded_table.h"

using namespace hdnh;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--pool=PATH] [--shards=N] [--metrics_out=FILE] "
               "(put K V | get K | del K | stats)\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string pool_path = "/tmp/hdnh_demo.pool";
  std::string metrics_out;
  uint32_t shards = 1;
  int arg = 1;
  while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
    if (std::strncmp(argv[arg], "--pool=", 7) == 0) {
      pool_path = argv[arg] + 7;
    } else if (std::strncmp(argv[arg], "--shards=", 9) == 0) {
      shards = static_cast<uint32_t>(std::strtoul(argv[arg] + 9, nullptr, 10));
    } else if (std::strncmp(argv[arg], "--metrics_out=", 14) == 0) {
      metrics_out = argv[arg] + 14;
    } else {
      return usage(argv[0]);
    }
    ++arg;
  }
  if (arg >= argc) return usage(argv[0]);
  const std::string cmd = argv[arg++];

  nvm::PmemPool pool(256ull << 20, nvm::NvmConfig{}, pool_path);
  nvm::PmemAllocator alloc(pool);
  TableOptions topts;
  topts.capacity = 1 << 16;
  // 1 = classic single-table layout (root slot 0)
  topts.sharding.initial_shards = shards;
  auto table = create_table("hdnh", alloc, topts);

  if (pool.recovered()) {
    Hdnh::RecoveryStats rs;
    if (auto* h = dynamic_cast<Hdnh*>(table.get())) rs = h->last_recovery();
    if (auto* s = dynamic_cast<store::ShardedTable*>(table.get()))
      rs = s->last_recovery();
    std::printf("(recovered %llu items in %.2f ms)\n",
                static_cast<unsigned long long>(rs.items), rs.total_ms);
  }

  // Command dispatch runs inside a lambda so the table's metrics (table
  // gauges + the nvm counter deltas of the command itself) can be dumped
  // once, on every exit path, while the table is still alive.
  auto run_cmd = [&]() -> int {
  if (cmd == "put" && arg + 1 < argc) {
    const uint64_t k = std::strtoull(argv[arg], nullptr, 10);
    const uint64_t v = std::strtoull(argv[arg + 1], nullptr, 10);
    // Status surface (API v2): a full pool reports kTableFull here instead
    // of a TableFullError unwinding through main.
    const Status ins = table->insert_s(make_key(k), make_value(v));
    if (ins.ok()) {
      std::printf("inserted %llu\n", static_cast<unsigned long long>(k));
    } else if (ins == StatusCode::kExists) {
      table->update_s(make_key(k), make_value(v));
      std::printf("updated %llu\n", static_cast<unsigned long long>(k));
    } else {
      std::fprintf(stderr, "put failed: %s\n", ins.to_string().c_str());
      return 1;
    }
    return 0;
  }
  if (cmd == "get" && arg < argc) {
    const uint64_t k = std::strtoull(argv[arg], nullptr, 10);
    Value v;
    if (!table->search_s(make_key(k), &v).ok()) {
      std::printf("(not found)\n");
      return 1;
    }
    // Recover the value id by probing (values are generated from ids).
    // A real application would store raw bytes; this demo stores ids.
    for (uint64_t cand = 0; cand < 1000000; ++cand) {
      if (v == make_value(cand)) {
        std::printf("value id %llu\n", static_cast<unsigned long long>(cand));
        return 0;
      }
    }
    std::printf("(opaque 15-byte value)\n");
    return 0;
  }
  if (cmd == "del" && arg < argc) {
    const uint64_t k = std::strtoull(argv[arg], nullptr, 10);
    std::printf(table->erase_s(make_key(k)).ok() ? "deleted\n"
                                                 : "(not found)\n");
    return 0;
  }
  if (cmd == "stats") {
    std::printf("pool: %s (%s)\n", pool_path.c_str(),
                pool.recovered() ? "recovered" : "fresh");
    if (auto* s = dynamic_cast<store::ShardedTable*>(table.get())) {
      std::printf("layout: %u shards\n", s->shards());
      std::printf("items=%llu load_factor=%.3f resizes=%llu\n",
                  static_cast<unsigned long long>(table->size()),
                  table->load_factor(),
                  static_cast<unsigned long long>(s->resize_count()));
    } else {
      auto& h = dynamic_cast<Hdnh&>(*table);
      std::printf("items=%llu load_factor=%.3f resizes=%llu hot_slots=%llu\n",
                  static_cast<unsigned long long>(h.size()), h.load_factor(),
                  static_cast<unsigned long long>(h.resize_count()),
                  static_cast<unsigned long long>(h.hot_table_slots()));
    }
    return 0;
  }
  return usage(argv[0]);
  };

  const int rc = run_cmd();
  if (!metrics_out.empty() &&
      !obs::write_file_atomic(metrics_out, obs::Metrics::json())) {
    std::fprintf(stderr, "failed to write --metrics_out=%s\n",
                 metrics_out.c_str());
  }
  return rc;
}
