// General YCSB driver CLI: run any scheme under any workload mix — the
// swiss-army knife for ad-hoc comparisons beyond the canned paper figures.
//
//   $ ./examples/ycsb_cli --scheme=hdnh --workload=a --preload=200000 \
//         --ops=1000000 --threads=4 --theta=1.1
//   $ ./examples/ycsb_cli --scheme=cceh --read=0.7 --insert=0.2 --update=0.1
#include <cstdio>
#include <string>

#include "api/factory.h"
#include "common/cli.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "obs/obs.h"
#include "ycsb/runner.h"

using namespace hdnh;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::string scheme =
      cli.get_str("scheme", "hdnh", "hdnh|hdnh-lru|hdnh-noocf|hdnh-nohot|"
                                    "hdnh-bg|level|cceh|path (any scheme "
                                    "also takes an @N shard suffix)");
  const uint32_t shards = static_cast<uint32_t>(cli.get_int(
      "shards", 0, "partition the store into N shards (0: scheme decides)"));
  const std::string workload = cli.get_str(
      "workload", "", "canned mix: a|b|c|insert|read|negread|delete|mixed "
                      "(overrides --read/--insert/...)");
  const uint64_t preload =
      static_cast<uint64_t>(cli.get_int("preload", 100000, "preloaded items"));
  const uint64_t ops =
      static_cast<uint64_t>(cli.get_int("ops", 500000, "timed operations"));
  const uint32_t threads =
      static_cast<uint32_t>(cli.get_int("threads", 1, "worker threads"));
  const double theta = cli.get_double("theta", 0.99, "zipfian skew s");
  const double f_read = cli.get_double("read", 1.0, "read fraction");
  const double f_insert = cli.get_double("insert", 0.0, "insert fraction");
  const double f_update = cli.get_double("update", 0.0, "update fraction");
  const double f_erase = cli.get_double("erase", 0.0, "delete fraction");
  const std::string dist =
      cli.get_str("dist", "scrambled", "uniform|zipfian|scrambled|latest");
  const bool emulate = cli.get_bool("emulate", true, "AEP latency emulation");
  const bool latency = cli.get_bool("latency", false, "per-op histogram");
  const uint32_t read_batch = static_cast<uint32_t>(cli.get_int(
      "read_batch", 0, "issue point reads through multiget in batches"));
  const uint64_t seed = static_cast<uint64_t>(cli.get_int("seed", 42, "seed"));
  const std::string metrics_out = cli.get_str(
      "metrics_out", "", "write metrics JSON here (refreshed during the run)");
  const std::string metrics_prom = cli.get_str(
      "metrics_prom", "", "write Prometheus text exposition here");
  const std::string trace_out = cli.get_str(
      "trace_out", "", "write Chrome trace_event JSON here at exit");
  cli.finish();
  try {
    if (shards > 1 && parse_scheme(scheme).shards == 0) {
      scheme += "@" + std::to_string(shards);
    }
    parse_scheme(scheme);  // reject malformed specs before sizing the pool
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  ycsb::WorkloadSpec spec;
  if (workload == "a") spec = ycsb::WorkloadSpec::YcsbA();
  else if (workload == "b") spec = ycsb::WorkloadSpec::YcsbB();
  else if (workload == "c") spec = ycsb::WorkloadSpec::YcsbC();
  else if (workload == "insert") spec = ycsb::WorkloadSpec::InsertOnly();
  else if (workload == "read") spec = ycsb::WorkloadSpec::ReadOnly(theta);
  else if (workload == "negread") spec = ycsb::WorkloadSpec::NegativeRead();
  else if (workload == "delete") spec = ycsb::WorkloadSpec::DeleteOnly();
  else if (workload == "mixed") spec = ycsb::WorkloadSpec::Mixed5050();
  else if (workload.empty()) {
    spec.read = f_read;
    spec.insert = f_insert;
    spec.update = f_update;
    spec.erase = f_erase;
    const double total = f_read + f_insert + f_update + f_erase;
    if (total < 0.999 || total > 1.001) {
      std::fprintf(stderr, "fractions must sum to 1 (got %.3f)\n", total);
      return 2;
    }
    spec.label = "custom";
  } else {
    std::fprintf(stderr, "unknown --workload=%s\n", workload.c_str());
    return 2;
  }
  spec.theta = theta;
  if (dist == "uniform") spec.dist = ycsb::Dist::kUniform;
  else if (dist == "zipfian") spec.dist = ycsb::Dist::kZipfian;
  else if (dist == "scrambled") spec.dist = ycsb::Dist::kScrambledZipfian;
  else if (dist == "latest") spec.dist = ycsb::Dist::kLatest;

  const uint64_t max_items =
      preload + (spec.insert > 0 ? ops : 0) + 1024;
  nvm::NvmConfig ncfg;
  ncfg.emulate_latency = emulate;
  nvm::PmemPool pool(pool_bytes_hint(scheme, max_items), ncfg);
  nvm::PmemAllocator alloc(pool);
  TableOptions topts;
  topts.capacity = parse_scheme(scheme).base == "path" ? max_items : preload;
  std::unique_ptr<HashTable> table;
  try {
    table = create_table(scheme, alloc, topts);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("%s | %s | preload=%llu ops=%llu threads=%u theta=%.2f\n",
              table->name(), spec.label.c_str(),
              static_cast<unsigned long long>(preload),
              static_cast<unsigned long long>(ops), threads, theta);
  pool.set_emulate_latency(false);
  ycsb::preload(*table, preload, 2);
  pool.set_emulate_latency(emulate);

  ycsb::RunOptions ro;
  ro.threads = threads;
  ro.seed = seed;
  ro.measure_latency = latency;
  ro.read_batch = read_batch;
  ro.metrics_json_out = metrics_out;
  ro.metrics_prom_out = metrics_prom;
  auto r = ycsb::run(*table, spec, preload, ops, ro);

  if (!trace_out.empty() &&
      !obs::write_file_atomic(trace_out, obs::Tracer::dump_json())) {
    std::fprintf(stderr, "failed to write --trace_out=%s\n",
                 trace_out.c_str());
  }

  std::printf("throughput: %.3f Mops/s  (%.3f s, %llu/%llu effective)\n",
              r.mops(), r.seconds, static_cast<unsigned long long>(r.hits),
              static_cast<unsigned long long>(r.ops));
  const double n = static_cast<double>(r.ops);
  std::printf("NVM per op: %.3f reads (%.3f blocks), %.3f writes "
              "(%.3f lines), %.3f fences | hot hits %.1f%%, OCF filtered "
              "%.2f/op\n",
              static_cast<double>(r.nvm.nvm_read_ops) / n,
              static_cast<double>(r.nvm.nvm_read_blocks) / n,
              static_cast<double>(r.nvm.nvm_write_ops) / n,
              static_cast<double>(r.nvm.nvm_write_lines) / n,
              static_cast<double>(r.nvm.fences) / n,
              100.0 * static_cast<double>(r.nvm.dram_hot_hits) / n,
              static_cast<double>(r.nvm.ocf_filtered) / n);
  if (latency) {
    auto us = [&](double q) {
      return static_cast<double>(r.latency.percentile(q)) / 1000.0;
    };
    std::printf("latency us: p50=%.2f p90=%.2f p99=%.2f p99.9=%.2f "
                "max=%.2f\n",
                us(0.5), us(0.9), us(0.99), us(0.999),
                static_cast<double>(r.latency.max()) / 1000.0);
  }
  std::printf("table: %llu items, load factor %.3f\n",
              static_cast<unsigned long long>(table->size()),
              table->load_factor());
  return 0;
}
