// Hotspot demo: the scenario from the paper's introduction (Alibaba's
// observation that 1% of items absorb 50-90% of accesses). Runs the same
// skewed read workload against HDNH with and without its hot table and
// shows the DRAM cache absorbing the skew — fewer NVM reads, higher
// throughput — and RAFL beating LRU as skew rises.
//
//   $ ./examples/hotspot_cache_demo [--items=N] [--reads=N]
#include <cstdio>
#include <string>

#include "api/factory.h"
#include "common/cli.h"
#include "common/clock.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "ycsb/runner.h"

using namespace hdnh;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const uint64_t items = static_cast<uint64_t>(
      cli.get_int("items", 200000, "records in the store"));
  const uint64_t reads =
      static_cast<uint64_t>(cli.get_int("reads", 500000, "reads per run"));
  cli.finish();

  std::printf("%llu records, %llu reads per configuration, AEP latency "
              "emulation ON\n\n",
              static_cast<unsigned long long>(items),
              static_cast<unsigned long long>(reads));
  std::printf("%-12s %-10s %12s %14s %14s\n", "variant", "skew s", "Mops/s",
              "nvm-reads/op", "hot-hit rate");

  for (double s : {0.5, 0.99, 1.22}) {
    for (const std::string variant : {"hdnh-nohot", "hdnh-lru", "hdnh"}) {
      nvm::NvmConfig ncfg;
      ncfg.emulate_latency = true;
      nvm::PmemPool pool(pool_bytes_hint(variant, items), ncfg);
      nvm::PmemAllocator alloc(pool);
      TableOptions opts;
      opts.capacity = items;
      auto table = create_table(variant, alloc, opts);

      pool.set_emulate_latency(false);
      ycsb::preload(*table, items, 2);
      pool.set_emulate_latency(true);

      auto spec = ycsb::WorkloadSpec::ReadOnly(s);
      auto r = ycsb::run(*table, spec, items, reads);
      std::printf("%-12s %-10.2f %12.3f %14.3f %13.1f%%\n", variant, s,
                  r.mops(),
                  static_cast<double>(r.nvm.nvm_read_ops) /
                      static_cast<double>(r.ops),
                  100.0 * static_cast<double>(r.nvm.dram_hot_hits) /
                      static_cast<double>(r.ops));
    }
    std::printf("\n");
  }
  std::printf("Takeaway: as skew rises, the RAFL hot table converts NVM reads "
              "into DRAM hits; without it every hot read pays AEP latency.\n");
  return 0;
}
