// Crash-recovery demo: write through HDNH's persistence protocol, pull the
// (simulated) power cord, and watch §3.7 recovery put everything back —
// including an interruption in the middle of a structural resize.
//
//   $ ./examples/crash_recovery_demo
#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/clock.h"
#include "hdnh/hdnh.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

using namespace hdnh;

namespace {
struct PowerLoss : std::runtime_error {
  PowerLoss() : std::runtime_error("power loss") {}
};
}  // namespace

int main() {
  nvm::NvmConfig cfg;
  cfg.track_persistence = true;  // keep a shadow "media" image
  nvm::PmemPool pool(512ull << 20, cfg);
  nvm::PmemAllocator alloc(pool);

  HdnhConfig hcfg;
  hcfg.initial_capacity = 4096;  // small: forces resizes soon
  auto* table = new Hdnh(alloc, hcfg);

  std::printf("1) inserting 50k records through the CLWB/SFENCE protocol...\n");
  for (uint64_t i = 0; i < 50000; ++i) {
    table->insert(make_key(i), make_value(i));
  }
  std::printf("   items=%llu resizes=%llu\n",
              static_cast<unsigned long long>(table->size()),
              static_cast<unsigned long long>(table->resize_count()));

  std::printf("2) power loss at a random moment (unflushed cachelines are "
              "dropped from the media image)...\n");
  pool.simulate_crash();
  // The in-memory table object is now inconsistent with media — abandon it,
  // exactly as a crashed process would.
  table = nullptr;  // intentional leak: the dead process's heap

  std::printf("3) restart: attaching to the pool runs recovery (replay "
              "update logs, rebuild OCF + hot table)...\n");
  ScopeTimer t;
  Hdnh recovered(alloc, hcfg);
  auto rs = recovered.last_recovery();
  std::printf("   recovered %llu items in %.2f ms (attach wall time %.2f ms)\n",
              static_cast<unsigned long long>(rs.items), rs.total_ms,
              t.elapsed_ms());

  std::printf("4) verifying every record...\n");
  Value v;
  uint64_t ok = 0;
  for (uint64_t i = 0; i < 50000; ++i) {
    if (recovered.search(make_key(i), &v) && v == make_value(i)) ++ok;
  }
  std::printf("   %llu/50000 records intact\n",
              static_cast<unsigned long long>(ok));

  std::printf("5) now crash in the MIDDLE of a resize (the §3.7 level_number "
              "= 3 state) and recover again...\n");
  recovered.test_hook = [&](const char* point) {
    if (std::string(point) == "rehash-bucket") {
      pool.simulate_crash();
      throw PowerLoss();
    }
  };
  uint64_t id = 1 << 20;
  try {
    for (;; ++id) recovered.insert(make_key(id), make_value(id));
  } catch (const PowerLoss&) {
    std::printf("   crashed mid-rehash while inserting id %llu\n",
                static_cast<unsigned long long>(id));
  }

  Hdnh recovered2(alloc, hcfg);
  std::printf("   recovery resumed the interrupted resize: resumed=%s, "
              "items=%llu\n",
              recovered2.last_recovery().resumed_resize ? "yes" : "no",
              static_cast<unsigned long long>(recovered2.size()));
  ok = 0;
  for (uint64_t i = 0; i < 50000; ++i) {
    if (recovered2.search(make_key(i), &v) && v == make_value(i)) ++ok;
  }
  std::printf("   %llu/50000 original records intact after double crash\n",
              static_cast<unsigned long long>(ok));
  return 0;
}
