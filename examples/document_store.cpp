// Document store example: variable-length keys and values on HDNH via the
// VkvStore extension (value log + digest index). Demonstrates upserts of
// real-world-shaped payloads, log utilization, and compaction.
//
//   $ ./examples/document_store
#include <cstdio>
#include <string>

#include "nvm/alloc.h"
#include "nvm/pmem.h"
#include "vkv/vkv_store.h"

using namespace hdnh;

int main() {
  nvm::PmemPool pool(256ull << 20);
  nvm::PmemAllocator alloc(pool);
  vkv::VkvStore::Options opts;
  opts.expected_records = 50000;
  opts.log_bytes = 96ull << 20;
  vkv::VkvStore store(alloc, opts);

  std::printf("1) storing 20k JSON-ish documents with string keys...\n");
  for (int i = 0; i < 20000; ++i) {
    const std::string key = "user:" + std::to_string(i) + ":profile";
    const std::string doc = "{\"id\":" + std::to_string(i) +
                            ",\"name\":\"user-" + std::to_string(i) +
                            "\",\"bio\":\"" + std::string(50 + i % 200, 'x') +
                            "\"}";
    store.put(key, doc);
  }
  std::printf("   %llu records, value log %.1f MB used, %.0f%% live\n",
              static_cast<unsigned long long>(store.size()),
              static_cast<double>(store.log().used_bytes()) / 1e6,
              100 * store.log_utilization());

  std::printf("2) point lookups by string key...\n");
  std::string doc;
  store.get("user:1234:profile", &doc);
  std::printf("   user:1234:profile -> %.60s...\n", doc.c_str());

  std::printf("3) rewriting every 3rd document (upserts kill old records)...\n");
  for (int i = 0; i < 20000; i += 3) {
    const std::string key = "user:" + std::to_string(i) + ":profile";
    store.put(key, "{\"id\":" + std::to_string(i) + ",\"v\":2}");
  }
  std::printf("   log now %.0f%% live (%.1f MB dead)\n",
              100 * store.log_utilization(),
              static_cast<double>(store.log().dead_bytes()) / 1e6);

  std::printf("4) compacting...\n");
  const uint64_t reclaimed = store.compact();
  std::printf("   reclaimed %.1f MB; log %.0f%% live\n",
              static_cast<double>(reclaimed) / 1e6,
              100 * store.log_utilization());

  store.get("user:9:profile", &doc);
  std::printf("5) post-compaction check: user:9:profile -> %s\n", doc.c_str());
  std::printf("   index load factor %.2f over %llu records\n",
              store.index().load_factor(),
              static_cast<unsigned long long>(store.index().size()));
  return 0;
}
