// Quickstart: create an HDNH table on an emulated persistent-memory pool,
// do the four basic operations, and look at the NVM traffic counters.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "hdnh/hdnh.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

using namespace hdnh;

int main() {
  // 1. A 64 MiB emulated AEP pool (anonymous; pass a path for a file-backed
  //    pool that survives restarts — see persistent_kv_cli.cpp).
  nvm::PmemPool pool(64ull << 20);
  nvm::PmemAllocator alloc(pool);

  // 2. An HDNH table with default paper configuration: 16 KB segments,
  //    8-slot 256 B buckets, OCF filtering, 4-slot RAFL hot table.
  HdnhConfig cfg;
  cfg.initial_capacity = 100000;
  Hdnh table(alloc, cfg);

  // 3. The four operations. Keys are 16 bytes, values 15 bytes.
  table.insert(make_key(1), make_value(100));
  table.insert(make_key(2), make_value(200));

  Value v;
  if (table.search(make_key(1), &v)) {
    std::printf("search(1): hit (value id %s)\n",
                v == make_value(100) ? "100 - correct" : "unexpected!");
  }

  table.update(make_key(1), make_value(101));
  table.search(make_key(1), &v);
  std::printf("after update(1): value is 101? %s\n",
              v == make_value(101) ? "yes" : "no");

  table.erase(make_key(2));
  std::printf("after erase(2): search(2) hits? %s\n",
              table.search(make_key(2), &v) ? "yes" : "no");

  // 4. Bulk load and observe the structures at work.
  for (uint64_t i = 10; i < 50000; ++i) {
    table.insert(make_key(i), make_value(i));
  }
  std::printf("\nitems=%llu  load_factor=%.2f  resizes=%llu  hot_slots=%llu\n",
              static_cast<unsigned long long>(table.size()),
              table.load_factor(),
              static_cast<unsigned long long>(table.resize_count()),
              static_cast<unsigned long long>(table.hot_table_slots()));

  // 5. The emulated device counts every NVM access — the OCF's job is to
  //    keep nvm_read_ops low.
  nvm::Stats::reset();
  for (uint64_t i = 10; i < 10000; ++i) table.search(make_key(i), &v);
  auto s = nvm::Stats::snapshot();
  std::printf("10k searches: nvm reads=%llu, served from DRAM hot table=%llu, "
              "filtered by OCF=%llu\n",
              static_cast<unsigned long long>(s.nvm_read_ops),
              static_cast<unsigned long long>(s.dram_hot_hits),
              static_cast<unsigned long long>(s.ocf_filtered));
  return 0;
}
