// Quickstart: create an HDNH table on an emulated persistent-memory pool,
// do the four basic operations, and look at the NVM traffic counters.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "hdnh/hdnh.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

using namespace hdnh;

int main() {
  // 1. A 64 MiB emulated AEP pool (anonymous; pass a path for a file-backed
  //    pool that survives restarts — see persistent_kv_cli.cpp).
  nvm::PmemPool pool(64ull << 20);
  nvm::PmemAllocator alloc(pool);

  // 2. An HDNH table with default paper configuration: 16 KB segments,
  //    8-slot 256 B buckets, OCF filtering, 4-slot RAFL hot table.
  HdnhConfig cfg;
  cfg.initial_capacity = 100000;
  Hdnh table(alloc, cfg);

  // 3. The four operations, on the Status surface (API v2): every outcome
  //    — hit, miss, duplicate, table-full — is a value, never an exception.
  //    Keys are 16 bytes, values 15 bytes.
  Status s = table.insert_s(make_key(1), make_value(100));
  std::printf("insert(1): %s\n", s.code_name());
  s = table.insert_s(make_key(1), make_value(100));
  std::printf("insert(1) again: %s (duplicate keys are reported, not lost)\n",
              s.code_name());
  table.insert_s(make_key(2), make_value(200));

  Value v;
  if (table.search_s(make_key(1), &v).ok()) {
    std::printf("search(1): hit (value id %s)\n",
                v == make_value(100) ? "100 - correct" : "unexpected!");
  }

  table.update_s(make_key(1), make_value(101));
  table.search_s(make_key(1), &v);
  std::printf("after update(1): value is 101? %s\n",
              v == make_value(101) ? "yes" : "no");

  table.erase_s(make_key(2));
  std::printf("after erase(2): search(2) -> %s\n",
              table.search_s(make_key(2), &v).code_name());

  // 4. Bulk load and observe the structures at work. A full table would
  //    come back as Status::kTableFull here instead of a thrown
  //    TableFullError (the pool below is sized so it never happens).
  for (uint64_t i = 10; i < 50000; ++i) {
    s = table.insert_s(make_key(i), make_value(i));
    if (!s.ok()) {
      std::printf("bulk load stopped at id %llu: %s\n",
                  static_cast<unsigned long long>(i), s.to_string().c_str());
      return 1;
    }
  }
  std::printf("\nitems=%llu  load_factor=%.2f  resizes=%llu  hot_slots=%llu\n",
              static_cast<unsigned long long>(table.size()),
              table.load_factor(),
              static_cast<unsigned long long>(table.resize_count()),
              static_cast<unsigned long long>(table.hot_table_slots()));

  // 5. The emulated device counts every NVM access — the OCF's job is to
  //    keep nvm_read_ops low.
  nvm::Stats::reset();
  for (uint64_t i = 10; i < 10000; ++i) table.search_s(make_key(i), &v);
  auto snap = nvm::Stats::snapshot();
  std::printf("10k searches: nvm reads=%llu, served from DRAM hot table=%llu, "
              "filtered by OCF=%llu\n",
              static_cast<unsigned long long>(snap.nvm_read_ops),
              static_cast<unsigned long long>(snap.dram_hot_hits),
              static_cast<unsigned long long>(snap.ocf_filtered));
  return 0;
}
