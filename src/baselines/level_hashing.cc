#include "baselines/level_hashing.h"

#include <cstring>

namespace hdnh {

LevelHashing::LevelHashing(nvm::PmemAllocator& alloc, uint64_t capacity)
    : alloc_(alloc), pool_(alloc.pool()) {
  // Total slots = (N + N/2) * 4; size for ~70% fill before first resize.
  // N must be a power of two for the MSB indexing (see header).
  uint64_t want = capacity / 4 + 2;  // ≈ capacity / (0.7 * 6) rounded up
  log2_top_ = 2;
  while ((1ULL << log2_top_) < want) ++log2_top_;
  const uint64_t n = 1ULL << log2_top_;
  top_ = view(alloc_level(n), n);
  bottom_ = view(alloc_level(n / 2), n / 2);
}

uint64_t LevelHashing::alloc_level(uint64_t buckets) {
  const uint64_t bytes = buckets * sizeof(Bucket);
  const uint64_t off = alloc_.alloc(bytes);
  char* p = pool_.to_ptr<char>(off);
  std::memset(p, 0, bytes);
  pool_.persist(p, bytes);
  pool_.fence();
  return off;
}

LevelHashing::Level LevelHashing::view(uint64_t off, uint64_t buckets) {
  Level lv;
  lv.off = off;
  lv.buckets = buckets;
  lv.arr = pool_.to_ptr<Bucket>(off);
  return lv;
}

LevelHashing::Cands LevelHashing::candidates(uint64_t h1, uint64_t h2) {
  Cands c{};
  Bucket* raw[4] = {
      &top_.arr[top_index(h1)],
      &top_.arr[top_index(h2)],
      &bottom_.arr[top_index(h1) / 2],
      &bottom_.arr[top_index(h2) / 2],
  };
  c.n = 0;
  for (Bucket* b : raw) {
    bool dup = false;
    for (int j = 0; j < c.n; ++j) dup |= (c.b[j] == b);
    if (!dup) c.b[c.n++] = b;
  }
  return c;
}

bool LevelHashing::find_locked_read(const Key& key, Value* out) {
  const uint64_t h1 = key_hash1(key);
  const uint64_t h2 = key_hash2(key);
  Cands c = candidates(h1, h2);
  for (;;) {
  const uint64_t seq = move_seq_.load(std::memory_order_acquire);
  for (int i = 0; i < c.n; ++i) {
    Bucket& b = *c.b[i];
    b.lock.lock_read(pool_);
    pool_.on_read(&b, sizeof(Bucket));
    const uint8_t bm = b.bitmap.load(std::memory_order_acquire);
    for (uint32_t s = 0; s < kSlots; ++s) {
      if ((bm & (1u << s)) && b.slots[s].key == key) {
        if (out) *out = b.slots[s].value;
        b.lock.unlock_read(pool_);
        return true;
      }
    }
    b.lock.unlock_read(pool_);
  }
  if (move_seq_.load(std::memory_order_acquire) == seq) return false;
  }  // a displacement overlapped the scan: rescan
}

bool LevelHashing::find_nolock(const Key& key) {
  // Lock-free pre-scan used by insert's duplicate check: the original
  // Level hashing implementation does not read-lock per insert, and
  // charging it 8 lock writebacks per insert would overstate the paper's
  // comparison. Exact when single-threaded; advisory under concurrency
  // (same benign-duplicate caveat HDNH documents).
  const uint64_t h1 = key_hash1(key);
  const uint64_t h2 = key_hash2(key);
  Cands c = candidates(h1, h2);
  for (int i = 0; i < c.n; ++i) {
    Bucket& b = *c.b[i];
    pool_.on_read(&b, sizeof(Bucket));
    const uint8_t bm = b.bitmap.load(std::memory_order_acquire);
    for (uint32_t s = 0; s < kSlots; ++s) {
      if ((bm & (1u << s)) && b.slots[s].key == key) return true;
    }
  }
  return false;
}

bool LevelHashing::search(const Key& key, Value* out) {
  std::shared_lock<std::shared_mutex> lock(resize_mu_);
  return find_locked_read(key, out);
}

void LevelHashing::publish_slot(Bucket& b, uint32_t slot, const KVPair& kv) {
  b.slots[slot] = kv;
  pool_.on_write(&b.slots[slot], sizeof(KVPair));
  pool_.persist(&b.slots[slot], sizeof(KVPair));
  pool_.fence();
  b.bitmap.fetch_or(static_cast<uint8_t>(1u << slot),
                    std::memory_order_release);
  pool_.on_write(&b.bitmap, 1);
  pool_.persist(&b.bitmap, 1);
  pool_.fence();
}

bool LevelHashing::try_insert_bucket(Bucket& b, const KVPair& kv) {
  b.lock.lock_write(pool_);
  pool_.on_read(&b, sizeof(Bucket));
  const uint8_t bm = b.bitmap.load(std::memory_order_acquire);
  for (uint32_t s = 0; s < kSlots; ++s) {
    if (!(bm & (1u << s))) {
      publish_slot(b, s, kv);
      b.lock.unlock_write(pool_);
      return true;
    }
  }
  b.lock.unlock_write(pool_);
  return false;
}

bool LevelHashing::try_cuckoo_displace(uint64_t h1, uint64_t h2,
                                       const KVPair& kv) {
  // One-step bottom-to-top eviction: move a record out of a full bottom
  // candidate into one of ITS top-level buckets, then reuse the freed slot.
  // Only a single displacement is attempted (no cascades) — the Level
  // hashing design point the HDNH paper describes.
  Bucket* bottoms[2] = {&bottom_.arr[top_index(h1) / 2],
                        &bottom_.arr[top_index(h2) / 2]};
  for (int bi = 0; bi < (bottoms[0] == bottoms[1] ? 1 : 2); ++bi) {
    Bucket& bb = *bottoms[bi];
    bb.lock.lock_write(pool_);
    pool_.on_read(&bb, sizeof(Bucket));
    const uint8_t bm = bb.bitmap.load(std::memory_order_acquire);
    for (uint32_t s = 0; s < kSlots; ++s) {
      if (!(bm & (1u << s))) continue;
      const KVPair victim = bb.slots[s];
      const uint64_t vh[2] = {key_hash1(victim.key), key_hash2(victim.key)};
      for (uint64_t vhx : vh) {
        Bucket& tb = top_.arr[top_index(vhx)];
        if (&tb == &bb) continue;
        tb.lock.lock_write(pool_);
        pool_.on_read(&tb, sizeof(Bucket));
        const uint8_t tbm = tb.bitmap.load(std::memory_order_acquire);
        for (uint32_t ts = 0; ts < kSlots; ++ts) {
          if (tbm & (1u << ts)) continue;
          // Move victim up (copy-then-invalidate: crash leaves a benign
          // duplicate, same as the original design).
          publish_slot(tb, ts, victim);
          tb.lock.unlock_write(pool_);
          bb.bitmap.fetch_and(static_cast<uint8_t>(~(1u << s)),
                              std::memory_order_release);
          pool_.on_write(&bb.bitmap, 1);
          pool_.persist(&bb.bitmap, 1);
          pool_.fence();
          publish_slot(bb, s, kv);
          bb.lock.unlock_write(pool_);
          move_seq_.fetch_add(1, std::memory_order_acq_rel);
          return true;
        }
        tb.lock.unlock_write(pool_);
      }
    }
    bb.lock.unlock_write(pool_);
  }
  return false;
}

bool LevelHashing::insert(const Key& key, const Value& value) {
  const KVPair kv{key, value};
  const uint64_t h1 = key_hash1(key);
  const uint64_t h2 = key_hash2(key);
  for (;;) {
    uint64_t gen;
    {
      std::shared_lock<std::shared_mutex> lock(resize_mu_);
      if (find_nolock(key)) return false;
      Cands c = candidates(h1, h2);
      for (int i = 0; i < c.n; ++i) {
        if (try_insert_bucket(*c.b[i], kv)) {
          count_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      }
      if (try_cuckoo_displace(h1, h2, kv)) {
        count_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      gen = gen_.load(std::memory_order_relaxed);
    }
    do_resize(gen);
  }
}

bool LevelHashing::update(const Key& key, const Value& value) {
  std::shared_lock<std::shared_mutex> lock(resize_mu_);
  const uint64_t h1 = key_hash1(key);
  const uint64_t h2 = key_hash2(key);
  Cands c = candidates(h1, h2);
  for (int i = 0; i < c.n; ++i) {
    Bucket& b = *c.b[i];
    b.lock.lock_write(pool_);
    pool_.on_read(&b, sizeof(Bucket));
    const uint8_t bm = b.bitmap.load(std::memory_order_acquire);
    for (uint32_t s = 0; s < kSlots; ++s) {
      if ((bm & (1u << s)) && b.slots[s].key == key) {
        // In-place value overwrite under the bucket write lock, as in the
        // original implementation (not failure-atomic for >8 B values).
        b.slots[s].value = value;
        pool_.on_write(&b.slots[s].value, sizeof(Value));
        pool_.persist(&b.slots[s].value, sizeof(Value));
        pool_.fence();
        b.lock.unlock_write(pool_);
        return true;
      }
    }
    b.lock.unlock_write(pool_);
  }
  return false;
}

bool LevelHashing::erase(const Key& key) {
  std::shared_lock<std::shared_mutex> lock(resize_mu_);
  const uint64_t h1 = key_hash1(key);
  const uint64_t h2 = key_hash2(key);
  Cands c = candidates(h1, h2);
  for (int i = 0; i < c.n; ++i) {
    Bucket& b = *c.b[i];
    b.lock.lock_write(pool_);
    pool_.on_read(&b, sizeof(Bucket));
    const uint8_t bm = b.bitmap.load(std::memory_order_acquire);
    for (uint32_t s = 0; s < kSlots; ++s) {
      if ((bm & (1u << s)) && b.slots[s].key == key) {
        b.bitmap.fetch_and(static_cast<uint8_t>(~(1u << s)),
                           std::memory_order_release);
        pool_.on_write(&b.bitmap, 1);
        pool_.persist(&b.bitmap, 1);
        pool_.fence();
        b.lock.unlock_write(pool_);
        count_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    b.lock.unlock_write(pool_);
  }
  return false;
}

void LevelHashing::rehash_into(const KVPair& kv) {
  const uint64_t h1 = key_hash1(kv.key);
  const uint64_t h2 = key_hash2(kv.key);
  Cands c = candidates(h1, h2);
  for (int i = 0; i < c.n; ++i) {
    Bucket& b = *c.b[i];
    const uint8_t bm = b.bitmap.load(std::memory_order_relaxed);
    for (uint32_t s = 0; s < kSlots; ++s) {
      if (!(bm & (1u << s))) {
        publish_slot(b, s, kv);
        return;
      }
    }
  }
  throw TableFullError("LevelHashing: rehash target full");
}

void LevelHashing::do_resize(uint64_t expected_gen) {
  std::unique_lock<std::shared_mutex> lock(resize_mu_);
  if (gen_.load(std::memory_order_relaxed) != expected_gen) return;

  // Cost-sharing resize: a new 2N top level; the old top level (N buckets)
  // becomes the bottom level unchanged; only the old bottom is rehashed.
  Level old_bottom = bottom_;
  const uint64_t new_n = 2 * top_.buckets;
  Level new_top = view(alloc_level(new_n), new_n);
  bottom_ = top_;
  top_ = new_top;
  ++log2_top_;  // a key's new top index halves to its old one

  for (uint64_t i = 0; i < old_bottom.buckets; ++i) {
    Bucket& b = old_bottom.arr[i];
    const uint8_t bm = b.bitmap.load(std::memory_order_relaxed);
    if (bm == 0) continue;
    pool_.on_read(&b, sizeof(Bucket));
    for (uint32_t s = 0; s < kSlots; ++s) {
      if (bm & (1u << s)) rehash_into(b.slots[s]);
    }
  }
  alloc_.free_block(old_bottom.off, old_bottom.buckets * sizeof(Bucket));
  ++resizes_;
  gen_.fetch_add(1, std::memory_order_relaxed);
}

double LevelHashing::load_factor() const {
  const uint64_t slots = (top_.buckets + bottom_.buckets) * kSlots;
  return slots ? static_cast<double>(count_.load(std::memory_order_relaxed)) /
                     static_cast<double>(slots)
               : 0.0;
}

uint64_t LevelHashing::pool_bytes_hint(uint64_t max_items) {
  return max_items * sizeof(Bucket) + (8ULL << 20) + max_items * 64;
}

}  // namespace hdnh
