// Baseline: Path hashing (Zuo & Hua, MSST '17), per the HDNH paper's setup:
// a static scheme whose stash is an inverted binary tree — level 0 holds N
// single-record cells addressed by two hash functions; each deeper level
// halves in size and a cell's overflow path descends by halving its index.
// With the paper's "reserved level = 8", a lookup probes at most 2 x 8
// cells, giving the O(log B) search the paper quotes.
//
// Concurrency uses coarse striped reader-writer locks resident in NVM
// (the paper groups PATH with LEVEL as "coarse-grained locks ... prevent
// concurrent accesses"). No resizing: the table is sized up front and
// throws TableFullError when both paths of a key are exhausted.
#pragma once

#include <atomic>

#include "api/hash_table.h"
#include "baselines/nvm_lock.h"
#include "nvm/alloc.h"

namespace hdnh {

class PathHashing final : public HashTable {
 public:
  static constexpr uint32_t kLevels = 8;    // paper: reserved level = 8
  static constexpr uint32_t kStripes = 64;  // coarse lock striping

  PathHashing(nvm::PmemAllocator& alloc, uint64_t capacity);

  bool insert(const Key& key, const Value& value) override;
  bool search(const Key& key, Value* out) override;
  bool update(const Key& key, const Value& value) override;
  bool erase(const Key& key) override;

  uint64_t size() const override {
    return count_.load(std::memory_order_relaxed);
  }
  double load_factor() const override;
  const char* name() const override { return "PATH"; }

  uint64_t total_cells() const { return total_cells_; }

  static uint64_t pool_bytes_hint(uint64_t max_items);

 private:
#pragma pack(push, 1)
  struct Cell {
    std::atomic<uint8_t> valid;
    KVPair kv;
  };
#pragma pack(pop)
  static_assert(sizeof(Cell) == 32);

  Cell* cell(uint32_t level, uint64_t pos) const {
    return cells_ + level_off_[level] + pos;
  }

  // Visit the (level, pos) pairs of both search paths of a key, shallow to
  // deep; returns through `fn` until it reports done.
  template <typename Fn>
  void walk_paths(uint64_t p1, uint64_t p2, Fn&& fn) const;

  struct StripeGuard;
  void lock_stripes(uint64_t p1, uint64_t p2, bool write);
  void unlock_stripes(uint64_t p1, uint64_t p2, bool write);

  nvm::PmemAllocator& alloc_;
  nvm::PmemPool& pool_;
  uint64_t n_ = 0;  // level-0 cells
  uint64_t level_size_[kLevels];
  uint64_t level_off_[kLevels];
  uint64_t total_cells_ = 0;
  Cell* cells_ = nullptr;
  NvmRwLock* stripes_ = nullptr;  // in NVM
  std::atomic<uint64_t> count_{0};
};

}  // namespace hdnh
