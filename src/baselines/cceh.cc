#include "baselines/cceh.h"

#include <cstring>

namespace hdnh {

Cceh::Cceh(nvm::PmemAllocator& alloc, uint64_t capacity, uint64_t segment_bytes)
    : alloc_(alloc), pool_(alloc.pool()), seg_bytes_(segment_bytes) {
  bps_ = segment_bytes / sizeof(Bucket);
  if (bps_ == 0 || (bps_ & (bps_ - 1)) != 0) {
    throw std::invalid_argument("CCEH: segment_bytes/64 must be a power of 2");
  }
  // Initial directory sized so `capacity` items fit at ~60% load.
  const uint64_t slots_per_seg = bps_ * kSlotsPerBucket;
  uint64_t segs_needed =
      static_cast<uint64_t>(static_cast<double>(capacity) / 0.6 /
                            static_cast<double>(slots_per_seg)) + 1;
  global_depth_ = 0;
  while ((1ULL << global_depth_) < segs_needed) ++global_depth_;
  dir_.resize(1ULL << global_depth_);
  for (auto& off : dir_) off = alloc_segment(global_depth_);
}

uint64_t Cceh::alloc_segment(uint32_t local_depth) {
  const uint64_t bytes = sizeof(SegHeader) + bps_ * sizeof(Bucket);
  const uint64_t off = alloc_.alloc(bytes);
  char* p = pool_.to_ptr<char>(off);
  std::memset(p, 0, bytes);
  seg_at(off)->local_depth = local_depth;
  pool_.persist(p, bytes);
  pool_.fence();
  return off;
}

bool Cceh::scan_for_insert(uint64_t seg_off, uint64_t h, const Key& key,
                           Bucket** bucket, uint32_t* slot) {
  Bucket* arr = buckets_of(seg_off);
  const uint64_t b0 = bucket_index(h);
  *bucket = nullptr;
  for (uint32_t p = 0; p < kProbe; ++p) {
    Bucket& b = arr[(b0 + p) & (bps_ - 1)];
    pool_.on_read(&b, sizeof(Bucket));
    const uint8_t bm = b.bitmap.load(std::memory_order_acquire);
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      if (bm & (1u << s)) {
        if (b.slots[s].key == key) return false;  // duplicate
      } else if (*bucket == nullptr) {
        *bucket = &b;
        *slot = s;
      }
    }
  }
  return true;
}

bool Cceh::search(const Key& key, Value* out) {
  const uint64_t h = key_hash1(key);
  std::shared_lock<std::shared_mutex> lock(dir_mu_);
  const uint64_t seg_off = dir_[dir_index(h)];
  SegHeader* sh = seg_at(seg_off);
  sh->lock.lock_read(pool_);
  Bucket* arr = buckets_of(seg_off);
  const uint64_t b0 = bucket_index(h);
  bool found = false;
  for (uint32_t p = 0; p < kProbe && !found; ++p) {
    Bucket& b = arr[(b0 + p) & (bps_ - 1)];
    pool_.on_read(&b, sizeof(Bucket));
    const uint8_t bm = b.bitmap.load(std::memory_order_acquire);
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      if ((bm & (1u << s)) && b.slots[s].key == key) {
        if (out) *out = b.slots[s].value;
        found = true;
        break;
      }
    }
  }
  sh->lock.unlock_read(pool_);
  return found;
}

bool Cceh::insert(const Key& key, const Value& value) {
  const KVPair kv{key, value};
  const uint64_t h = key_hash1(key);
  for (;;) {
    {
      std::shared_lock<std::shared_mutex> lock(dir_mu_);
      const uint64_t seg_off = dir_[dir_index(h)];
      SegHeader* sh = seg_at(seg_off);
      sh->lock.lock_write(pool_);
      Bucket* bucket;
      uint32_t slot;
      if (!scan_for_insert(seg_off, h, key, &bucket, &slot)) {
        sh->lock.unlock_write(pool_);
        return false;  // already present
      }
      if (bucket != nullptr) {
        bucket->slots[slot] = kv;
        pool_.on_write(&bucket->slots[slot], sizeof(KVPair));
        pool_.persist(&bucket->slots[slot], sizeof(KVPair));
        pool_.fence();
        bucket->bitmap.fetch_or(static_cast<uint8_t>(1u << slot),
                                std::memory_order_release);
        pool_.on_write(&bucket->bitmap, 1);
        pool_.persist(&bucket->bitmap, 1);
        pool_.fence();
        sh->lock.unlock_write(pool_);
        count_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      sh->lock.unlock_write(pool_);
    }
    std::unique_lock<std::shared_mutex> xlock(dir_mu_);
    split(h);
  }
}

bool Cceh::place(uint64_t seg_off, const KVPair& kv, uint64_t h) {
  Bucket* arr = buckets_of(seg_off);
  const uint64_t b0 = bucket_index(h);
  for (uint32_t p = 0; p < kProbe; ++p) {
    Bucket& b = arr[(b0 + p) & (bps_ - 1)];
    const uint8_t bm = b.bitmap.load(std::memory_order_relaxed);
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      if (bm & (1u << s)) continue;
      b.slots[s] = kv;
      pool_.on_write(&b.slots[s], sizeof(KVPair));
      pool_.persist(&b.slots[s], sizeof(KVPair));
      pool_.fence();
      b.bitmap.fetch_or(static_cast<uint8_t>(1u << s),
                        std::memory_order_relaxed);
      pool_.on_write(&b.bitmap, 1);
      pool_.persist(&b.bitmap, 1);
      pool_.fence();
      return true;
    }
  }
  return false;
}

void Cceh::split(uint64_t h) {
  // Caller holds dir_mu_ exclusively. Another thread may have split this
  // range already — recompute from the current directory. A split may
  // cascade when redistribution still cannot place every record.
  for (int round = 0; round < 64; ++round) {
    const uint64_t idx = dir_index(h);
    const uint64_t old_off = dir_[idx];
    SegHeader* old_sh = seg_at(old_off);
    const uint32_t ld = old_sh->local_depth;

    if (ld == global_depth_) {
      // Directory doubling (DRAM only).
      std::vector<uint64_t> bigger(dir_.size() * 2);
      for (uint64_t i = 0; i < dir_.size(); ++i) {
        bigger[2 * i] = dir_[i];
        bigger[2 * i + 1] = dir_[i];
      }
      dir_ = std::move(bigger);
      ++global_depth_;
    }

    const uint64_t s0 = alloc_segment(ld + 1);
    const uint64_t s1 = alloc_segment(ld + 1);

    bool overflow = false;
    Bucket* arr = buckets_of(old_off);
    for (uint64_t b = 0; b < bps_ && !overflow; ++b) {
      pool_.on_read(&arr[b], sizeof(Bucket));
      const uint8_t bm = arr[b].bitmap.load(std::memory_order_relaxed);
      for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
        if (!(bm & (1u << s))) continue;
        const KVPair& kv = arr[b].slots[s];
        const uint64_t kh = key_hash1(kv.key);
        const uint64_t child = (kh >> (64 - (ld + 1))) & 1;
        if (!place(child ? s1 : s0, kv, kh)) {
          overflow = true;
          break;
        }
      }
    }

    // Update every directory entry that pointed at the old segment.
    const uint64_t range = 1ULL << (global_depth_ - ld);
    const uint64_t first = (dir_index(h) >> (global_depth_ - ld))
                           << (global_depth_ - ld);
    for (uint64_t i = 0; i < range; ++i) {
      dir_[first + i] = (i < range / 2) ? s0 : s1;
    }
    alloc_.free_block(old_off, sizeof(SegHeader) + bps_ * sizeof(Bucket));

    if (!overflow) return;
    // Rare skew pathology: one child overflowed during redistribution.
    // Loop to split the overfull child as well.
  }
  throw TableFullError("CCEH: cascading splits exceeded bound");
}

bool Cceh::update(const Key& key, const Value& value) {
  const uint64_t h = key_hash1(key);
  std::shared_lock<std::shared_mutex> lock(dir_mu_);
  const uint64_t seg_off = dir_[dir_index(h)];
  SegHeader* sh = seg_at(seg_off);
  sh->lock.lock_write(pool_);
  Bucket* arr = buckets_of(seg_off);
  const uint64_t b0 = bucket_index(h);
  bool done = false;
  for (uint32_t p = 0; p < kProbe && !done; ++p) {
    Bucket& b = arr[(b0 + p) & (bps_ - 1)];
    pool_.on_read(&b, sizeof(Bucket));
    const uint8_t bm = b.bitmap.load(std::memory_order_acquire);
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      if ((bm & (1u << s)) && b.slots[s].key == key) {
        b.slots[s].value = value;
        pool_.on_write(&b.slots[s].value, sizeof(Value));
        pool_.persist(&b.slots[s].value, sizeof(Value));
        pool_.fence();
        done = true;
        break;
      }
    }
  }
  sh->lock.unlock_write(pool_);
  return done;
}

bool Cceh::erase(const Key& key) {
  const uint64_t h = key_hash1(key);
  std::shared_lock<std::shared_mutex> lock(dir_mu_);
  const uint64_t seg_off = dir_[dir_index(h)];
  SegHeader* sh = seg_at(seg_off);
  sh->lock.lock_write(pool_);
  Bucket* arr = buckets_of(seg_off);
  const uint64_t b0 = bucket_index(h);
  bool done = false;
  for (uint32_t p = 0; p < kProbe && !done; ++p) {
    Bucket& b = arr[(b0 + p) & (bps_ - 1)];
    pool_.on_read(&b, sizeof(Bucket));
    const uint8_t bm = b.bitmap.load(std::memory_order_acquire);
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      if ((bm & (1u << s)) && b.slots[s].key == key) {
        b.bitmap.fetch_and(static_cast<uint8_t>(~(1u << s)),
                           std::memory_order_release);
        pool_.on_write(&b.bitmap, 1);
        pool_.persist(&b.bitmap, 1);
        pool_.fence();
        done = true;
        break;
      }
    }
  }
  sh->lock.unlock_write(pool_);
  if (done) count_.fetch_sub(1, std::memory_order_relaxed);
  return done;
}

uint64_t Cceh::segment_count() const {
  std::shared_lock<std::shared_mutex> lock(dir_mu_);
  uint64_t n = 0;
  uint64_t prev = UINT64_MAX;
  for (uint64_t off : dir_) {
    if (off != prev) ++n;  // entries for one segment are contiguous
    prev = off;
  }
  return n;
}

double Cceh::load_factor() const {
  const uint64_t slots = segment_count() * bps_ * kSlotsPerBucket;
  return slots ? static_cast<double>(count_.load(std::memory_order_relaxed)) /
                     static_cast<double>(slots)
               : 0.0;
}

uint64_t Cceh::pool_bytes_hint(uint64_t max_items) {
  // Linear probing 4 settles around 30-40% fill before a bucket group
  // forces a split, so provision ~3 slots of bucket space per item plus
  // split transients (the two children coexist with the parent briefly).
  return max_items * (64 / kSlotsPerBucket) * 4 + (32ULL << 20);
}

}  // namespace hdnh
