// Baseline: Level hashing (Zuo, Hua, Wu — OSDI '18), as configured by the
// HDNH paper's evaluation (§4.1):
//   * two levels of 4-slot buckets, the bottom level (half the top's size)
//     acting as the stash; 2 hash functions for the top level, bottom
//     candidates derived as top/2;
//   * one-step bottom-to-top cuckoo displacement before resizing;
//   * cost-sharing resize: the old top level is reused as the new bottom
//     without rehashing, only the old bottom is rehashed;
//   * per-bucket reader-writer locks living in NVM (the paper's point: read
//     locking burns NVM write bandwidth) and a global resizing lock.
//
// Purely NVM-resident: every probe, lock and flush is charged to the
// emulated device.
#pragma once

#include <atomic>
#include <shared_mutex>

#include "api/hash_table.h"
#include "baselines/nvm_lock.h"
#include "nvm/alloc.h"

namespace hdnh {

class LevelHashing final : public HashTable {
 public:
  static constexpr uint32_t kSlots = 4;

  LevelHashing(nvm::PmemAllocator& alloc, uint64_t capacity);

  bool insert(const Key& key, const Value& value) override;
  bool search(const Key& key, Value* out) override;
  bool update(const Key& key, const Value& value) override;
  bool erase(const Key& key) override;

  uint64_t size() const override {
    return count_.load(std::memory_order_relaxed);
  }
  double load_factor() const override;
  const char* name() const override { return "LEVEL"; }

  uint64_t resize_count() const { return resizes_; }

  static uint64_t pool_bytes_hint(uint64_t max_items);

 private:
#pragma pack(push, 1)
  struct Bucket {
    std::atomic<uint8_t> bitmap;
    uint8_t pad[3];
    NvmRwLock lock;
    KVPair slots[kSlots];
  };
#pragma pack(pop)
  static_assert(sizeof(Bucket) == 8 + kSlots * sizeof(KVPair));

  struct Level {
    uint64_t off = 0;
    uint64_t buckets = 0;
    Bucket* arr = nullptr;
  };

  // Candidate buckets: top t1,t2 (two hashes), bottom t1/2, t2/2. Top-level
  // positions use the hash's MOST significant bits over a power-of-two
  // bucket count: when the top level doubles, a key's new top index halves
  // back to its old one, which is exactly what lets the old top level be
  // reused in place as the new bottom level without rehashing.
  struct Cands {
    Bucket* b[4];
    int n;
  };
  uint64_t top_index(uint64_t h) const { return h >> (64 - log2_top_); }
  Cands candidates(uint64_t h1, uint64_t h2);

  uint64_t alloc_level(uint64_t buckets);
  Level view(uint64_t off, uint64_t buckets);

  bool find_locked_read(const Key& key, Value* out);
  bool find_nolock(const Key& key);
  bool try_insert_bucket(Bucket& b, const KVPair& kv);
  bool try_cuckoo_displace(uint64_t h1, uint64_t h2, const KVPair& kv);
  void publish_slot(Bucket& b, uint32_t slot, const KVPair& kv);
  void do_resize(uint64_t expected_gen);
  void rehash_into(const KVPair& kv);

  nvm::PmemAllocator& alloc_;
  nvm::PmemPool& pool_;
  uint32_t log2_top_ = 2;  // top level holds 2^log2_top_ buckets
  Level top_, bottom_;
  mutable std::shared_mutex resize_mu_;
  std::atomic<uint64_t> gen_{0};
  std::atomic<uint64_t> count_{0};
  // Bumped after a bottom-to-top cuckoo displacement: searchers that miss
  // rescan if a displacement overlapped their probe (the key may have moved
  // to an already-scanned bucket).
  std::atomic<uint64_t> move_seq_{0};
  uint64_t resizes_ = 0;
};

}  // namespace hdnh
