// A reader-writer spinlock whose lock word lives inside the NVM pool.
//
// CCEH (segment-grained) and Level hashing (bucket-grained) keep their lock
// state next to the data in persistent memory; the HDNH paper's concurrency
// argument (§1, §4.5) is that acquiring/releasing even a READ lock then
// dirties an NVM cacheline and burns the module's scarce write bandwidth.
// We model that by charging one NVM lock RMW (a block read + a line write,
// see PmemPool::on_lock_rmw) per successful acquire and per release, and by
// counting contended retries in stats.lock_waits without charging them —
// spinning happens in cache; the bandwidth cost comes from the dirtied
// line's writeback, once per ownership change.
#pragma once

#include <atomic>
#include <cstdint>

#include "nvm/pmem.h"

namespace hdnh {

struct NvmRwLock {
  // bit 31 = writer; bits 0..30 = reader count.
  std::atomic<uint32_t> word;

  static constexpr uint32_t kWriter = 0x80000000u;

  void lock_read(nvm::PmemPool& pool) {
    for (;;) {
      uint32_t cur = word.load(std::memory_order_relaxed);
      if (!(cur & kWriter) &&
          word.compare_exchange_weak(cur, cur + 1,
                                     std::memory_order_acquire)) {
        break;
      }
      nvm::Stats::local().lock_waits++;
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
    pool.on_lock_rmw(&word);
  }

  void unlock_read(nvm::PmemPool& pool) {
    word.fetch_sub(1, std::memory_order_release);
    pool.on_lock_rmw(&word);
  }

  void lock_write(nvm::PmemPool& pool) {
    for (;;) {
      uint32_t expected = 0;
      if (word.compare_exchange_weak(expected, kWriter,
                                     std::memory_order_acquire)) {
        break;
      }
      nvm::Stats::local().lock_waits++;
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
    pool.on_lock_rmw(&word);
  }

  void unlock_write(nvm::PmemPool& pool) {
    word.store(0, std::memory_order_release);
    pool.on_lock_rmw(&word);
  }
};

}  // namespace hdnh
