// Baseline: CCEH — Cacheline-Conscious Extendible Hashing (Nam et al.,
// FAST '19), configured per the HDNH paper's evaluation (§4.1): 16 KB
// segments of 64-byte buckets, linear probing distance 4, dynamic growth
// through segment splits and directory doubling, and a segment-grained
// reader-writer lock kept in NVM (the coarse lock whose read-lock NVM
// writes the paper measures against).
//
// The directory lives in DRAM (rebuildable metadata); segments — data,
// local depths and the lock words — live in the emulated NVM pool.
#pragma once

#include <atomic>
#include <shared_mutex>
#include <vector>

#include "api/hash_table.h"
#include "baselines/nvm_lock.h"
#include "nvm/alloc.h"

namespace hdnh {

class Cceh final : public HashTable {
 public:
  static constexpr uint32_t kSlotsPerBucket = 2;  // 2 x 31 B + header = 64 B
  static constexpr uint32_t kProbe = 4;           // linear probing distance

  Cceh(nvm::PmemAllocator& alloc, uint64_t capacity,
       uint64_t segment_bytes = 16 * 1024);

  bool insert(const Key& key, const Value& value) override;
  bool search(const Key& key, Value* out) override;
  bool update(const Key& key, const Value& value) override;
  bool erase(const Key& key) override;

  uint64_t size() const override {
    return count_.load(std::memory_order_relaxed);
  }
  double load_factor() const override;
  const char* name() const override { return "CCEH"; }

  uint32_t global_depth() const { return global_depth_; }
  uint64_t segment_count() const;

  static uint64_t pool_bytes_hint(uint64_t max_items);

 private:
#pragma pack(push, 1)
  struct Bucket {
    std::atomic<uint8_t> bitmap;
    uint8_t pad;
    KVPair slots[kSlotsPerBucket];
  };
  struct SegHeader {
    uint32_t local_depth;
    NvmRwLock lock;
    uint8_t pad[56];
  };
#pragma pack(pop)
  static_assert(sizeof(Bucket) == 64, "bucket must be one cacheline");
  static_assert(sizeof(SegHeader) == 64);

  SegHeader* seg_at(uint64_t off) const { return pool_.to_ptr<SegHeader>(off); }
  Bucket* buckets_of(uint64_t off) const {
    return pool_.to_ptr<Bucket>(off + sizeof(SegHeader));
  }
  uint64_t dir_index(uint64_t h) const {
    return global_depth_ == 0 ? 0 : (h >> (64 - global_depth_));
  }
  uint64_t bucket_index(uint64_t h) const { return h & (bps_ - 1); }

  uint64_t alloc_segment(uint32_t local_depth);
  // Returns false if the key was found (duplicate); fills *bucket/*slot with
  // a free location if one exists (else *bucket = nullptr).
  bool scan_for_insert(uint64_t seg_off, uint64_t h, const Key& key,
                       Bucket** bucket, uint32_t* slot);
  bool place(uint64_t seg_off, const KVPair& kv, uint64_t h);
  void split(uint64_t h);  // caller holds dir_mu_ exclusively

  nvm::PmemAllocator& alloc_;
  nvm::PmemPool& pool_;
  uint64_t bps_;  // buckets per segment (power of two)
  uint64_t seg_bytes_;

  mutable std::shared_mutex dir_mu_;  // shared: ops; exclusive: split/double
  std::vector<uint64_t> dir_;        // segment offsets, 2^global_depth_
  uint32_t global_depth_ = 0;
  std::atomic<uint64_t> count_{0};
};

}  // namespace hdnh
