#include "baselines/path_hashing.h"

#include <algorithm>
#include <cstring>

namespace hdnh {

PathHashing::PathHashing(nvm::PmemAllocator& alloc, uint64_t capacity)
    : alloc_(alloc), pool_(alloc.pool()) {
  // Total cells ≈ 2N(1 - 2^-L); size level 0 so `capacity` fits at ~70%.
  n_ = static_cast<uint64_t>(static_cast<double>(capacity) / (0.7 * 1.99)) + 8;
  uint64_t off = 0;
  for (uint32_t l = 0; l < kLevels; ++l) {
    level_size_[l] = (n_ >> l) ? (n_ >> l) : 1;
    level_off_[l] = off;
    off += level_size_[l];
  }
  total_cells_ = off;

  const uint64_t cells_off = alloc_.alloc(total_cells_ * sizeof(Cell));
  cells_ = pool_.to_ptr<Cell>(cells_off);
  std::memset(static_cast<void*>(cells_), 0, total_cells_ * sizeof(Cell));
  pool_.persist(cells_, total_cells_ * sizeof(Cell));

  const uint64_t stripes_off = alloc_.alloc(kStripes * sizeof(NvmRwLock));
  stripes_ = pool_.to_ptr<NvmRwLock>(stripes_off);
  std::memset(static_cast<void*>(stripes_), 0, kStripes * sizeof(NvmRwLock));
  pool_.persist(stripes_, kStripes * sizeof(NvmRwLock));
  pool_.fence();
}

template <typename Fn>
void PathHashing::walk_paths(uint64_t p1, uint64_t p2, Fn&& fn) const {
  for (uint32_t l = 0; l < kLevels; ++l) {
    const uint64_t a = (p1 >> l) % level_size_[l];
    const uint64_t b = (p2 >> l) % level_size_[l];
    if (fn(l, a)) return;
    if (b != a && fn(l, b)) return;
  }
}

void PathHashing::lock_stripes(uint64_t p1, uint64_t p2, bool write) {
  uint64_t s1 = p1 % kStripes, s2 = p2 % kStripes;
  if (s1 > s2) std::swap(s1, s2);
  if (write) {
    stripes_[s1].lock_write(pool_);
    if (s2 != s1) stripes_[s2].lock_write(pool_);
  } else {
    stripes_[s1].lock_read(pool_);
    if (s2 != s1) stripes_[s2].lock_read(pool_);
  }
}

void PathHashing::unlock_stripes(uint64_t p1, uint64_t p2, bool write) {
  uint64_t s1 = p1 % kStripes, s2 = p2 % kStripes;
  if (s1 > s2) std::swap(s1, s2);
  if (write) {
    if (s2 != s1) stripes_[s2].unlock_write(pool_);
    stripes_[s1].unlock_write(pool_);
  } else {
    if (s2 != s1) stripes_[s2].unlock_read(pool_);
    stripes_[s1].unlock_read(pool_);
  }
}

bool PathHashing::search(const Key& key, Value* out) {
  const uint64_t p1 = key_hash1(key) % n_;
  const uint64_t p2 = key_hash2(key) % n_;
  lock_stripes(p1, p2, /*write=*/false);
  bool found = false;
  walk_paths(p1, p2, [&](uint32_t l, uint64_t pos) {
    Cell* c = cell(l, pos);
    pool_.on_read(c, sizeof(Cell));
    if (c->valid.load(std::memory_order_acquire) && c->kv.key == key) {
      if (out) *out = c->kv.value;
      found = true;
      return true;
    }
    return false;
  });
  unlock_stripes(p1, p2, /*write=*/false);
  return found;
}

bool PathHashing::insert(const Key& key, const Value& value) {
  const uint64_t p1 = key_hash1(key) % n_;
  const uint64_t p2 = key_hash2(key) % n_;
  lock_stripes(p1, p2, /*write=*/true);

  Cell* free_cell = nullptr;
  bool dup = false;
  walk_paths(p1, p2, [&](uint32_t l, uint64_t pos) {
    Cell* c = cell(l, pos);
    pool_.on_read(c, sizeof(Cell));
    if (c->valid.load(std::memory_order_acquire)) {
      if (c->kv.key == key) {
        dup = true;
        return true;
      }
    } else if (free_cell == nullptr) {
      free_cell = c;  // shallowest free position wins
    }
    return false;
  });

  if (dup) {
    unlock_stripes(p1, p2, true);
    return false;
  }
  if (free_cell == nullptr) {
    unlock_stripes(p1, p2, true);
    throw TableFullError("PathHashing: both paths exhausted (static table)");
  }
  free_cell->kv = KVPair{key, value};
  pool_.on_write(&free_cell->kv, sizeof(KVPair));
  pool_.persist(&free_cell->kv, sizeof(KVPair));
  pool_.fence();
  free_cell->valid.store(1, std::memory_order_release);
  pool_.on_write(&free_cell->valid, 1);
  pool_.persist(&free_cell->valid, 1);
  pool_.fence();
  unlock_stripes(p1, p2, true);
  count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool PathHashing::update(const Key& key, const Value& value) {
  const uint64_t p1 = key_hash1(key) % n_;
  const uint64_t p2 = key_hash2(key) % n_;
  lock_stripes(p1, p2, /*write=*/true);
  bool done = false;
  walk_paths(p1, p2, [&](uint32_t l, uint64_t pos) {
    Cell* c = cell(l, pos);
    pool_.on_read(c, sizeof(Cell));
    if (c->valid.load(std::memory_order_acquire) && c->kv.key == key) {
      c->kv.value = value;
      pool_.on_write(&c->kv.value, sizeof(Value));
      pool_.persist(&c->kv.value, sizeof(Value));
      pool_.fence();
      done = true;
      return true;
    }
    return false;
  });
  unlock_stripes(p1, p2, true);
  return done;
}

bool PathHashing::erase(const Key& key) {
  const uint64_t p1 = key_hash1(key) % n_;
  const uint64_t p2 = key_hash2(key) % n_;
  lock_stripes(p1, p2, /*write=*/true);
  bool done = false;
  walk_paths(p1, p2, [&](uint32_t l, uint64_t pos) {
    Cell* c = cell(l, pos);
    pool_.on_read(c, sizeof(Cell));
    if (c->valid.load(std::memory_order_acquire) && c->kv.key == key) {
      c->valid.store(0, std::memory_order_release);
      pool_.on_write(&c->valid, 1);
      pool_.persist(&c->valid, 1);
      pool_.fence();
      done = true;
      return true;
    }
    return false;
  });
  unlock_stripes(p1, p2, true);
  if (done) count_.fetch_sub(1, std::memory_order_relaxed);
  return done;
}

double PathHashing::load_factor() const {
  return total_cells_
             ? static_cast<double>(count_.load(std::memory_order_relaxed)) /
                   static_cast<double>(total_cells_)
             : 0.0;
}

uint64_t PathHashing::pool_bytes_hint(uint64_t max_items) {
  return max_items * sizeof(Cell) * 3 + (8ULL << 20);
}

}  // namespace hdnh
