// Multi-threaded workload runner: preload + timed run, reporting
// throughput, success counts, per-op latency histogram (for the Fig 15
// CDF), and the delta of emulated-NVM traffic counters (the
// hardware-independent reproduction signal).
#pragma once

#include <cstdint>
#include <string>

#include "api/hash_table.h"
#include "api/kv_store.h"
#include "common/histogram.h"
#include "nvm/stats.h"
#include "ycsb/workload.h"

namespace hdnh::ycsb {

struct RunOptions {
  uint32_t threads = 1;
  bool measure_latency = false;
  uint64_t seed = 42;
  // > 1: point reads are accumulated per thread and issued through
  // HashTable::multiget in batches of this size (sharded tables regroup
  // each batch by shard). 0/1 keeps per-key search().
  uint32_t read_batch = 0;
  // Observability plumbing (src/obs): when either path is set, per-op
  // latency histogram recording is switched on for the run and an
  // obs::PeriodicReporter atomically rewrites the file(s) every
  // metrics_interval_s during the timed region, with a final snapshot once
  // the run completes. Paths: metrics_json_out gets Metrics::json(),
  // metrics_prom_out gets the Prometheus text exposition.
  std::string metrics_json_out;
  std::string metrics_prom_out;
  double metrics_interval_s = 1.0;
  // Variable-length runs only (the KvStore overloads below): exact value
  // size in bytes. 0 keeps the historic tiny "v<id>" values.
  uint64_t value_bytes = 0;
};

struct RunResult {
  uint64_t ops = 0;
  uint64_t hits = 0;  // operations that found/affected a key
  double seconds = 0;
  nvm::StatsSnapshot nvm;  // counter delta over the timed region
  Histogram latency;       // filled when measure_latency

  double mops() const {
    return seconds > 0 ? static_cast<double>(ops) / seconds / 1e6 : 0;
  }
};

// Insert keys [0, n) (ids map to records via make_key/make_value).
void preload(HashTable& table, uint64_t n, uint32_t threads = 1);

// Run `ops` operations of `spec` against a table preloaded with
// [0, preloaded). Inserts allocate fresh ids above `preloaded`; deletes
// consume distinct preloaded ids; negative reads probe a key range that is
// never inserted.
RunResult run(HashTable& table, const WorkloadSpec& spec, uint64_t preloaded,
              uint64_t ops, const RunOptions& opts = {});

// Variable-length twins of preload/run over the KvStore surface (string
// keys "k<id>", values of exactly value_bytes id-derived bytes; 0 = tiny
// "v<id>"). Same workload mix semantics; read_batch goes through
// KvStore::multiget.
void preload(KvStore& store, uint64_t n, uint64_t value_bytes,
             uint32_t threads = 1);
RunResult run(KvStore& store, const WorkloadSpec& spec, uint64_t preloaded,
              uint64_t ops, const RunOptions& opts = {});

}  // namespace hdnh::ycsb
