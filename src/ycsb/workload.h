// YCSB-style workload specification (Cooper et al., SoCC '10) — the
// generator behind every experiment in the paper's §4: operation mixes,
// request distributions, and the zipfian skew parameter `s` swept in Fig 12.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"

namespace hdnh::ycsb {

enum class Dist { kUniform, kZipfian, kScrambledZipfian, kLatest };

struct WorkloadSpec {
  // Operation mix; fractions must sum to 1.
  double read = 1.0;
  double insert = 0.0;
  double update = 0.0;
  double erase = 0.0;

  // Key-chooser distribution for read/update/erase operations.
  Dist dist = Dist::kScrambledZipfian;
  double theta = 0.99;  // zipfian s

  // Reads target keys that were never inserted (the paper's "negative
  // search" experiments, where the OCF shines).
  bool negative_read = false;

  std::string label;

  // --- canned paper workloads -------------------------------------------
  static WorkloadSpec InsertOnly();                       // Fig 13/14 insert
  static WorkloadSpec ReadOnly(double theta = 0.99);      // 100% search
  static WorkloadSpec NegativeRead();                     // negative search
  static WorkloadSpec DeleteOnly();                       // Fig 13 delete
  static WorkloadSpec Mixed5050();                        // Fig 14(c)
  static WorkloadSpec YcsbA();  // 50% read / 50% update, zipf 0.99 (Fig 15)
  static WorkloadSpec YcsbB();  // 95% read / 5% update
  static WorkloadSpec YcsbC();  // 100% read
};

// Build a key chooser over `n` keys for this spec.
std::unique_ptr<KeyChooser> make_chooser(const WorkloadSpec& spec, uint64_t n,
                                         uint64_t seed);

}  // namespace hdnh::ycsb
