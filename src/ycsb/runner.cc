#include "ycsb/runner.h"

#include <atomic>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "api/batch.h"
#include "common/clock.h"
#include "common/threads.h"
#include "obs/aggregator.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace hdnh::ycsb {

namespace {
// Negative-read keys live far above any id the runner ever inserts.
constexpr uint64_t kNegativeBase = 1ULL << 40;

std::string kv_key(uint64_t id) { return "k" + std::to_string(id); }

// Deterministic value of exactly `len` bytes (0 = tiny "v<id>"); `tag`
// distinguishes updated values from the preloaded ones.
std::string kv_value(uint64_t id, uint64_t tag, uint64_t len) {
  std::string v = "v" + std::to_string(id);
  if (tag) {
    v += '.';
    v += std::to_string(tag);
  }
  if (len == 0) return v;
  if (v.size() > len) {
    v.resize(len);
    return v;
  }
  v.reserve(len);
  while (v.size() < len) {
    v += static_cast<char>('a' + (id + v.size()) % 26);
  }
  return v;
}
}  // namespace

void preload(HashTable& table, uint64_t n, uint32_t threads) {
  parallel_for(n, threads, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t id = begin; id < end; ++id) {
      table.insert(make_key(id), make_value(id));
    }
  });
}

RunResult run(HashTable& table, const WorkloadSpec& spec, uint64_t preloaded,
              uint64_t ops, const RunOptions& opts) {
  const uint32_t threads = opts.threads ? opts.threads : 1;
  std::atomic<uint64_t> next_insert{preloaded};
  std::atomic<uint64_t> next_delete{0};
  std::atomic<uint64_t> total_hits{0};

  // Metrics surfacing: turn on per-op latency capture and start the
  // periodic file reporter for the duration of the run when the caller
  // asked for metrics output.
  const bool want_metrics =
      !opts.metrics_json_out.empty() || !opts.metrics_prom_out.empty();
  // Metrics output implies latency capture in the result histogram too, so
  // the BENCH_JSON/percentile consumers see the same run they scraped.
  const bool measure = opts.measure_latency || want_metrics;
  const bool latency_was = obs::Metrics::latency_enabled();
  std::unique_ptr<obs::PeriodicReporter> reporter;
  std::unique_ptr<obs::Aggregator> aggregator;
  if (want_metrics) {
    obs::Metrics::set_latency_enabled(true);
    // Rotate the load-signal windows for the reporter's scrapes (windowed
    // rates/percentiles, per-shard heat, EWMA gauges ride the same tick).
    obs::Aggregator::Options aopts;
    aopts.interval_s = opts.metrics_interval_s;
    aggregator = std::make_unique<obs::Aggregator>(aopts);
    obs::PeriodicReporter::Options ropts;
    ropts.json_path = opts.metrics_json_out;
    ropts.prom_path = opts.metrics_prom_out;
    ropts.interval_s = opts.metrics_interval_s;
    reporter = std::make_unique<obs::PeriodicReporter>(ropts);
  }

  std::vector<Histogram> hists(threads);
  SpinBarrier barrier(threads);
  const nvm::ScopedStatsDelta nvm_delta;
  std::atomic<uint64_t> t_start{0};
  std::atomic<uint64_t> t_end{0};

  auto worker = [&](uint32_t tid, uint64_t my_ops) {
    auto chooser = make_chooser(spec, preloaded ? preloaded : 1,
                                opts.seed + 1000003ULL * tid);
    Rng op_rng(opts.seed ^ (0x1234567ULL * (tid + 1)));
    Histogram& hist = hists[tid];
    uint64_t hits = 0;

    const size_t batch = opts.read_batch > 1 ? opts.read_batch : 0;
    std::vector<Key> batch_keys;
    std::vector<Value> batch_vals(batch);
    std::vector<uint8_t> batch_found(batch);
    if (batch) batch_keys.reserve(batch);
    auto flush_reads = [&] {
      if (batch_keys.empty()) return;
      const uint64_t t0 = measure ? now_ns() : 0;
      hits += hdnh::multiget(
          table, std::span<const Key>(batch_keys),
          std::span<Value>(batch_vals.data(), batch_keys.size()),
          std::span<uint8_t>(batch_found.data(), batch_keys.size()));
      if (measure) {
        const uint64_t per = (now_ns() - t0) / batch_keys.size();
        for (size_t j = 0; j < batch_keys.size(); ++j) hist.record(per);
      }
      batch_keys.clear();
    };

    barrier.arrive_and_wait();
    if (tid == 0) t_start.store(now_ns(), std::memory_order_relaxed);

    const double p_read = spec.read;
    const double p_insert = p_read + spec.insert;
    const double p_update = p_insert + spec.update;

    for (uint64_t i = 0; i < my_ops; ++i) {
      const double dice = op_rng.next_double();
      const uint64_t t0 = measure ? now_ns() : 0;
      bool ok = false;
      if (dice < p_read) {
        const uint64_t id = spec.negative_read
                                ? kNegativeBase + chooser->next()
                                : chooser->next();
        if (batch) {
          batch_keys.push_back(make_key(id));
          if (batch_keys.size() == batch) flush_reads();
          continue;  // hits and latency are accounted at flush time
        }
        Value v;
        ok = table.search(make_key(id), &v);
      } else if (dice < p_insert) {
        const uint64_t id = next_insert.fetch_add(1, std::memory_order_relaxed);
        ok = table.insert(make_key(id), make_value(id));
      } else if (dice < p_update) {
        const uint64_t id = chooser->next();
        ok = table.update(make_key(id), make_value(id ^ i));
      } else {
        // Deletes consume distinct preloaded ids so a delete-only workload
        // removes `ops` different keys, as in the paper's experiment.
        const uint64_t id = next_delete.fetch_add(1, std::memory_order_relaxed);
        ok = table.erase(make_key(id % (preloaded ? preloaded : 1)));
      }
      if (measure) hist.record(now_ns() - t0);
      hits += ok ? 1 : 0;
    }
    flush_reads();
    total_hits.fetch_add(hits, std::memory_order_relaxed);
    // Last thread out closes the timing window.
    t_end.store(now_ns(), std::memory_order_relaxed);
  };

  const uint64_t per = ops / threads;
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (uint32_t t = 1; t < threads; ++t) {
    const uint64_t my = per + (t < ops % threads ? 1 : 0);
    pool.emplace_back(worker, t, my);
  }
  worker(0, per + (0 < ops % threads ? 1 : 0));
  for (auto& th : pool) th.join();

  RunResult r;
  r.ops = ops;
  r.hits = total_hits.load();
  r.seconds = static_cast<double>(t_end.load() - t_start.load()) / 1e9;
  r.nvm = nvm_delta.delta();
  for (auto& h : hists) r.latency.merge(h);

  if (aggregator) aggregator->tick_now();  // close the final partial window
  reporter.reset();  // final snapshot now that the workload is complete
  aggregator.reset();
  if (want_metrics) obs::Metrics::set_latency_enabled(latency_was);
  return r;
}

void preload(KvStore& store, uint64_t n, uint64_t value_bytes,
             uint32_t threads) {
  parallel_for(n, threads, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t id = begin; id < end; ++id) {
      (void)store.insert(kv_key(id), kv_value(id, 0, value_bytes));
    }
  });
}

RunResult run(KvStore& store, const WorkloadSpec& spec, uint64_t preloaded,
              uint64_t ops, const RunOptions& opts) {
  const uint32_t threads = opts.threads ? opts.threads : 1;
  const uint64_t vb = opts.value_bytes;
  std::atomic<uint64_t> next_insert{preloaded};
  std::atomic<uint64_t> next_delete{0};
  std::atomic<uint64_t> total_hits{0};
  const bool measure = opts.measure_latency;

  std::vector<Histogram> hists(threads);
  SpinBarrier barrier(threads);
  const nvm::ScopedStatsDelta nvm_delta;
  std::atomic<uint64_t> t_start{0};
  std::atomic<uint64_t> t_end{0};

  auto worker = [&](uint32_t tid, uint64_t my_ops) {
    auto chooser = make_chooser(spec, preloaded ? preloaded : 1,
                                opts.seed + 1000003ULL * tid);
    Rng op_rng(opts.seed ^ (0x1234567ULL * (tid + 1)));
    Histogram& hist = hists[tid];
    uint64_t hits = 0;
    std::string scratch;

    const size_t batch = opts.read_batch > 1 ? opts.read_batch : 0;
    std::vector<std::string> batch_key_store(batch);
    std::vector<std::string_view> batch_keys;
    std::vector<std::string> batch_vals(batch);
    std::vector<uint8_t> batch_found(batch);
    if (batch) batch_keys.reserve(batch);
    auto flush_reads = [&] {
      if (batch_keys.empty()) return;
      const uint64_t t0 = measure ? now_ns() : 0;
      hits += store.multiget(batch_keys.data(), batch_keys.size(),
                             batch_vals.data(), batch_found.data());
      if (measure) {
        const uint64_t per = (now_ns() - t0) / batch_keys.size();
        for (size_t j = 0; j < batch_keys.size(); ++j) hist.record(per);
      }
      batch_keys.clear();
    };

    barrier.arrive_and_wait();
    if (tid == 0) t_start.store(now_ns(), std::memory_order_relaxed);

    const double p_read = spec.read;
    const double p_insert = p_read + spec.insert;
    const double p_update = p_insert + spec.update;

    for (uint64_t i = 0; i < my_ops; ++i) {
      const double dice = op_rng.next_double();
      const uint64_t t0 = measure ? now_ns() : 0;
      bool ok = false;
      if (dice < p_read) {
        const uint64_t id = spec.negative_read
                                ? kNegativeBase + chooser->next()
                                : chooser->next();
        if (batch) {
          std::string& slot = batch_key_store[batch_keys.size()];
          slot = kv_key(id);
          batch_keys.push_back(slot);
          if (batch_keys.size() == batch) flush_reads();
          continue;  // hits and latency are accounted at flush time
        }
        ok = store.get(kv_key(id), &scratch).ok();
      } else if (dice < p_insert) {
        const uint64_t id = next_insert.fetch_add(1, std::memory_order_relaxed);
        ok = store.insert(kv_key(id), kv_value(id, 0, vb)).ok();
      } else if (dice < p_update) {
        const uint64_t id = chooser->next();
        ok = store.put(kv_key(id), kv_value(id, i + 1, vb)).ok();
      } else {
        const uint64_t id = next_delete.fetch_add(1, std::memory_order_relaxed);
        ok = store.erase(kv_key(id % (preloaded ? preloaded : 1))).ok();
      }
      if (measure) hist.record(now_ns() - t0);
      hits += ok ? 1 : 0;
    }
    flush_reads();
    total_hits.fetch_add(hits, std::memory_order_relaxed);
    t_end.store(now_ns(), std::memory_order_relaxed);
  };

  const uint64_t per = ops / threads;
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (uint32_t t = 1; t < threads; ++t) {
    const uint64_t my = per + (t < ops % threads ? 1 : 0);
    pool.emplace_back(worker, t, my);
  }
  worker(0, per + (0 < ops % threads ? 1 : 0));
  for (auto& th : pool) th.join();

  RunResult r;
  r.ops = ops;
  r.hits = total_hits.load();
  r.seconds = static_cast<double>(t_end.load() - t_start.load()) / 1e9;
  r.nvm = nvm_delta.delta();
  for (auto& h : hists) r.latency.merge(h);
  return r;
}

}  // namespace hdnh::ycsb
