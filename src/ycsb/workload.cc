#include "ycsb/workload.h"

namespace hdnh::ycsb {

WorkloadSpec WorkloadSpec::InsertOnly() {
  WorkloadSpec s;
  s.read = 0;
  s.insert = 1;
  s.label = "100% insert";
  return s;
}

WorkloadSpec WorkloadSpec::ReadOnly(double theta) {
  WorkloadSpec s;
  s.read = 1;
  s.theta = theta;
  s.label = "100% search";
  return s;
}

WorkloadSpec WorkloadSpec::NegativeRead() {
  WorkloadSpec s;
  s.read = 1;
  s.negative_read = true;
  s.dist = Dist::kUniform;
  s.label = "100% negative search";
  return s;
}

WorkloadSpec WorkloadSpec::DeleteOnly() {
  WorkloadSpec s;
  s.read = 0;
  s.erase = 1;
  s.dist = Dist::kUniform;
  s.label = "100% delete";
  return s;
}

WorkloadSpec WorkloadSpec::Mixed5050() {
  WorkloadSpec s;
  s.read = 0.5;
  s.insert = 0.5;
  s.label = "50% insert / 50% search";
  return s;
}

WorkloadSpec WorkloadSpec::YcsbA() {
  WorkloadSpec s;
  s.read = 0.5;
  s.update = 0.5;
  s.theta = 0.99;
  s.label = "YCSB-A";
  return s;
}

WorkloadSpec WorkloadSpec::YcsbB() {
  WorkloadSpec s;
  s.read = 0.95;
  s.update = 0.05;
  s.theta = 0.99;
  s.label = "YCSB-B";
  return s;
}

WorkloadSpec WorkloadSpec::YcsbC() {
  WorkloadSpec s;
  s.read = 1.0;
  s.theta = 0.99;
  s.label = "YCSB-C";
  return s;
}

std::unique_ptr<KeyChooser> make_chooser(const WorkloadSpec& spec, uint64_t n,
                                         uint64_t seed) {
  switch (spec.dist) {
    case Dist::kUniform:
      return std::make_unique<UniformChooser>(n, seed);
    case Dist::kZipfian:
      return std::make_unique<ZipfianChooser>(n, spec.theta, seed);
    case Dist::kScrambledZipfian:
      return std::make_unique<ScrambledZipfianChooser>(n, spec.theta, seed);
    case Dist::kLatest:
      return std::make_unique<LatestChooser>(n, spec.theta, seed);
  }
  return nullptr;
}

}  // namespace hdnh::ycsb
