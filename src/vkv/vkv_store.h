// VkvStore — variable-length key/value storage on top of HDNH.
//
// The paper evaluates fixed 16 B keys / 15 B values; real key-value stores
// need arbitrary sizes. VkvStore composes the two pieces this repository
// already has:
//   * a LogStore holds the real bytes (append-only, crash-consistent);
//   * an Hdnh table indexes a 16-byte key digest -> 15-byte record handle.
// Gets verify the stored key bytes against the request, so digest
// collisions (~2^-128 per pair anyway) cannot return a wrong value.
//
// Crash consistency is inherited: a record is appended and persisted
// BEFORE its handle is published through HDNH's crash-atomic insert/update,
// so recovery (re-attaching both structures) always sees index entries that
// point at complete records; a crash in between only orphans log bytes,
// which compact() reclaims.
//
// compact() requires quiescence (no concurrent operations); everything
// else is as thread-safe as the underlying Hdnh.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "hdnh/hdnh.h"
#include "vkv/log_store.h"

namespace hdnh::vkv {

class VkvStore {
 public:
  struct Options {
    // Expected live records (sizes the HDNH index).
    uint64_t expected_records = 1 << 16;
    // Value-log segment size.
    uint64_t log_bytes = 64ull << 20;
    HdnhConfig index;
  };

  // Root slot (in the allocator's directory) holding the current log.
  static constexpr int kLogRoot = 3;

  // Creates a fresh store or re-attaches (running HDNH recovery) when the
  // pool already holds one.
  explicit VkvStore(nvm::PmemAllocator& alloc) : VkvStore(alloc, Options()) {}
  VkvStore(nvm::PmemAllocator& alloc, Options opts);

  // Upsert. Returns true if the key was new. Throws std::bad_alloc when
  // the value log is full (compact() or provision a larger log).
  bool put(std::string_view key, std::string_view value);

  // Point lookup; fills *out on hit.
  bool get(std::string_view key, std::string* out);

  bool erase(std::string_view key);

  uint64_t size() const { return index_->size(); }

  // live bytes / appended bytes — 1.0 means nothing to reclaim.
  double log_utilization() const;

  // Rewrite every live record into a fresh log and retire the old one.
  // Requires quiescence. Returns bytes reclaimed.
  uint64_t compact();

  Hdnh& index() { return *index_; }
  LogStore& log() { return *log_; }

 private:
  static Key digest(std::string_view key);
  static Value encode(const Handle& h);
  static Handle decode(const Value& v);

  nvm::PmemAllocator& alloc_;
  Options opts_;
  std::unique_ptr<Hdnh> index_;
  std::unique_ptr<LogStore> log_;
};

}  // namespace hdnh::vkv
