// VkvStore — variable-length key/value storage on top of HDNH.
//
// The paper evaluates fixed 16 B keys / 15 B values; real key-value stores
// need arbitrary sizes. VkvStore composes the pieces this repository
// already has behind the KvStore surface of API v2:
//   * a segmented LogStore holds the real bytes (append-only, per-record
//     CRC, crash-consistent — see log_store.h);
//   * an HDNH table (or a ShardedTable of them, Options::shards) indexes a
//     16-byte key digest -> 15-byte entry.
// Small values (<= 14 bytes) are inlined in the fixed record itself — the
// paper's exact read path, no log access at all. Larger values live in the
// log; the index entry's tag byte distinguishes the two encodings.
//
// Crash consistency is inherited: a record is appended and persisted
// BEFORE its handle is published through the index's crash-atomic
// insert/update, so recovery (re-attaching both structures) always sees
// index entries that point at complete, checksum-valid records; a crash in
// between only orphans log bytes, which GC reclaims.
//
// Concurrency. Point reads are lock-free: pin an epoch, read the index,
// CRC-verify the record. Mutations (put/insert/erase) and GC relocation
// serialize per key digest on a striped volatile lock, which is what makes
// GC's read-check-republish atomic against a racing overwrite. GC itself
// is concurrent with everything: it picks the sealed segment with the most
// dead bytes, relocates the still-live records through the index's
// crash-atomic update, and retires the segment under epoch-based
// reclamation (log_store.h) so in-flight readers never observe freed
// space. No quiescence anywhere.
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "api/kv_store.h"
#include "hdnh/hdnh.h"
#include "vkv/log_store.h"

namespace hdnh::vkv {

class VkvStore final : public KvStore {
 public:
  struct Options {
    // Expected live records (sizes the index).
    uint64_t expected_records = 1 << 16;
    // Cap on total value-log bytes (segments are carved from this).
    uint64_t log_bytes = 64ull << 20;
    // Per-segment capacity; 0 derives a sensible split of log_bytes.
    uint64_t segment_bytes = 0;
    // > 1: shard the index (ShardedTable over per-shard HDNH instances in
    // their own allocator regions). The log stays shared — appends are
    // already per-thread.
    uint32_t shards = 1;
    // A put that hits kLogFull runs one GC pass and retries before giving
    // the status to the caller.
    bool auto_gc = true;
    HdnhConfig index;
  };

  // Root slot (in the allocator's directory) holding the log directory.
  static constexpr int kLogRoot = 3;
  // Values up to this many bytes are stored inline in the index record.
  static constexpr size_t kInlineMax = kValueBytes - 1;  // 14

  // Creates a fresh store or re-attaches (running index recovery and the
  // log's checksum scan) when the pool already holds one.
  explicit VkvStore(nvm::PmemAllocator& alloc) : VkvStore(alloc, Options()) {}
  VkvStore(nvm::PmemAllocator& alloc, Options opts);

  // ---- KvStore surface ----
  const char* name() const override { return name_.c_str(); }
  uint64_t size() const override { return index_->size(); }
  double load_factor() const override { return index_->load_factor(); }
  size_t max_key_len() const override { return LogStore::kMaxKey; }
  size_t max_value_len() const override { return LogStore::kMaxValue; }
  Status put(std::string_view key, std::string_view value) override;
  Status insert(std::string_view key, std::string_view value) override;
  Status get(std::string_view key, std::string* out) override;
  Status erase(std::string_view key) override;
  size_t multiget(const std::string_view* keys, size_t n,
                  std::string* values, uint8_t* found) override;

  // live bytes / appended bytes — 1.0 means nothing to reclaim.
  double log_utilization() const;

  // One GC round: relocate + retire up to `max_segments` victim segments
  // whose dead fraction is at least `min_dead_fraction`. Concurrent with
  // reads and writes; one GC runs at a time. Returns bytes reclaimed.
  uint64_t gc(uint32_t max_segments = 1, double min_dead_fraction = 0.25);

  // Repeated GC until nothing reclaimable remains. Returns bytes
  // reclaimed. (Unlike the quiescent compact() this replaced, it is safe
  // under concurrent operations.)
  uint64_t compact();

  // Deep integrity check of the index structure (test hook).
  bool check_index_integrity();

  // After a simulated crash, severs the index from the pool (see
  // Hdnh::abandon_after_crash) so destroying the store writes no
  // clean-shutdown markers into the crash image. The log itself writes
  // nothing on destruction.
  void abandon_after_crash();

  HashTable& index() { return *index_; }
  LogStore& log() { return *log_; }

 private:
  static Key digest(std::string_view key);
  static bool is_inline(const Value& v) { return (v.b[kValueBytes - 1] & 0x80) == 0; }
  static Value encode_inline(std::string_view value);
  static std::string decode_inline(const Value& v);
  static Value encode_handle(const Handle& h);
  static Handle decode_handle(const Value& v);
  std::mutex& stripe(const Key& dk);

  Status put_once(const Key& dk, std::string_view key, std::string_view value,
                  bool upsert);
  Status put_with_gc(const Key& dk, std::string_view key,
                     std::string_view value, bool upsert);
  void rebuild_dead_accounting();

  nvm::PmemAllocator& alloc_;
  Options opts_;
  std::unique_ptr<HashTable> index_;
  std::unique_ptr<LogStore> log_;
  std::string name_;
  std::array<std::mutex, 64> stripes_;
  std::mutex gc_mu_;  // one GC round at a time
};

}  // namespace hdnh::vkv
