// Epoch-based reclamation for the value log's segment GC.
//
// Readers resolve a handle from the index and then dereference log bytes
// with no lock; GC must therefore never hand a segment's space back to the
// allocator while such a reader might still be inside it. The protocol is
// the classic grace-period one:
//
//   reader:  Guard g = tracker.pin();      // BEFORE reading the index
//            <read index, read log bytes>
//            // guard drops on scope exit
//
//   gc:      <republish every live handle out of the victim segment>
//            tracker.synchronize();        // wait out pinned readers
//            <free the segment's block>
//
// A reader pinned before synchronize() started may still hold a stale
// handle into the victim — synchronize() waits for it to unpin, and the
// bytes stay mapped and intact until then. A reader that pins afterwards
// re-reads the index and only sees relocated handles. Pool memory is never
// unmapped, so the hazard is reuse-tearing, not a fault — which is exactly
// what the grace period excludes.
//
// Slots are claimed by CAS with linear probing, so more threads than slots
// degrade (probe longer) rather than break, and a thread id colliding after
// wraparound cannot corrupt another thread's pin.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace hdnh::vkv {

class EpochTracker {
 public:
  static constexpr uint32_t kSlots = 256;

  class Guard {
   public:
    Guard(EpochTracker* t, uint32_t slot) : t_(t), slot_(slot) {}
    ~Guard() {
      if (t_) t_->slots_[slot_].e.store(0, std::memory_order_seq_cst);
    }
    Guard(Guard&& o) noexcept : t_(o.t_), slot_(o.slot_) { o.t_ = nullptr; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;

   private:
    EpochTracker* t_;
    uint32_t slot_;
  };

  // Pin the calling thread at the current epoch. Cheap (one CAS on an
  // uncontended, thread-affine slot).
  Guard pin() {
    const uint64_t e = global_.load(std::memory_order_seq_cst);
    uint32_t s = preferred_slot();
    for (;;) {
      uint64_t expected = 0;
      if (slots_[s].e.compare_exchange_strong(expected, e,
                                              std::memory_order_seq_cst)) {
        return Guard(this, s);
      }
      s = (s + 1) & (kSlots - 1);
    }
  }

  // Advance the global epoch and wait until every reader pinned before the
  // advance has unpinned. Callers (GC) are expected to be rare and patient.
  void synchronize() {
    const uint64_t target = global_.fetch_add(1, std::memory_order_seq_cst) + 1;
    for (uint32_t s = 0; s < kSlots; ++s) {
      for (;;) {
        const uint64_t v = slots_[s].e.load(std::memory_order_seq_cst);
        if (v == 0 || v >= target) break;
        std::this_thread::yield();
      }
    }
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> e{0};  // 0 = unpinned, else the pinned epoch
  };

  static uint32_t preferred_slot() {
    static std::atomic<uint32_t> next{0};
    thread_local uint32_t slot =
        next.fetch_add(1, std::memory_order_relaxed) & (kSlots - 1);
    return slot;
  }

  std::atomic<uint64_t> global_{1};  // pinned epochs are always nonzero
  Slot slots_[kSlots];
};

}  // namespace hdnh::vkv
