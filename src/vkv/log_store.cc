#include "vkv/log_store.h"

#include <cstring>
#include <new>
#include <stdexcept>

namespace hdnh::vkv {

LogStore::LogStore(nvm::PmemAllocator& alloc, uint64_t existing_super_off,
                   uint64_t capacity_bytes)
    : alloc_(alloc), pool_(alloc.pool()) {
  if (existing_super_off != 0) {
    super_ = pool_.to_ptr<Super>(existing_super_off);
    if (super_->magic != kMagic) {
      throw std::runtime_error("LogStore: offset is not a value log super");
    }
    capacity_ = super_->capacity;
    return;
  }
  const uint64_t super_off = alloc_.alloc(sizeof(Super));
  const uint64_t data = alloc_.alloc(capacity_bytes);
  super_ = pool_.to_ptr<Super>(super_off);
  std::memset(static_cast<void*>(super_), 0, sizeof(Super));
  super_->data_off = data;
  super_->capacity = capacity_bytes;
  super_->tail.store(0, std::memory_order_relaxed);
  pool_.persist(super_, sizeof(Super));
  pool_.fence();
  super_->magic = kMagic;
  pool_.persist_fence(&super_->magic, sizeof(uint64_t));
  capacity_ = capacity_bytes;
}

uint64_t LogStore::data_off() const { return super_->data_off; }

void LogStore::retire() {
  alloc_.free_block(super_->data_off, capacity_);
  super_->magic = 0;
  pool_.persist_fence(&super_->magic, sizeof(uint64_t));
  alloc_.free_block(pool_.to_off(super_), sizeof(Super));
}

Handle LogStore::append(std::string_view key, std::string_view value) {
  if (key.size() > kMaxKey || value.size() > kMaxValue) {
    throw std::invalid_argument("LogStore: record too large");
  }
  const uint64_t need = sizeof(RecordHeader) + key.size() + value.size();
  // Reserve space with a CAS on the volatile-side of tail; durability of
  // the advanced tail is ensured before the handle escapes.
  uint64_t pos = super_->tail.load(std::memory_order_relaxed);
  for (;;) {
    if (pos + need > capacity_) throw std::bad_alloc();
    if (super_->tail.compare_exchange_weak(pos, pos + need,
                                           std::memory_order_relaxed)) {
      break;
    }
  }

  char* rec = pool_.to_ptr<char>(super_->data_off + pos);
  RecordHeader hdr{static_cast<uint16_t>(key.size()),
                   static_cast<uint32_t>(value.size())};
  std::memcpy(rec, &hdr, sizeof(hdr));
  std::memcpy(rec + sizeof(hdr), key.data(), key.size());
  std::memcpy(rec + sizeof(hdr) + key.size(), value.data(), value.size());
  pool_.on_write(rec, need);
  pool_.persist(rec, need);
  pool_.fence();
  // Persist the tail so a recovered log never re-hands-out these bytes.
  pool_.persist_fence(&super_->tail, sizeof(uint64_t));

  Handle h;
  h.off = super_->data_off + pos;
  h.klen = hdr.klen;
  h.vlen = hdr.vlen;
  return h;
}

std::string_view LogStore::key_of(const Handle& h) const {
  const char* rec = pool_.to_ptr<char>(h.off);
  pool_.on_read(rec, sizeof(RecordHeader) + h.klen);
  return {rec + sizeof(RecordHeader), h.klen};
}

std::string_view LogStore::value_of(const Handle& h) const {
  const char* rec = pool_.to_ptr<char>(h.off);
  pool_.on_read(rec, sizeof(RecordHeader) + h.klen + h.vlen);
  return {rec + sizeof(RecordHeader) + h.klen, h.vlen};
}

void LogStore::note_dead(const Handle& h) {
  dead_bytes_.fetch_add(sizeof(RecordHeader) + h.klen + h.vlen,
                        std::memory_order_relaxed);
}

uint64_t LogStore::used_bytes() const {
  return super_->tail.load(std::memory_order_relaxed);
}

}  // namespace hdnh::vkv
