#include "vkv/log_store.h"

#include <algorithm>
#include <cstring>
#include <new>
#include <stdexcept>
#include <unordered_map>

#include "common/hash.h"
#include "nvm/fault.h"
#include "nvm/pmem.h"

namespace hdnh::vkv {

thread_local bool LogStore::gc_thread_ = false;

namespace {

// The directory lives in pool memory and is read by lock-free readers
// (handle->segment resolution) while the directory mutex serializes
// writers; all cross-thread field accesses go through atomic_ref so the
// races are ordered (and TSan-clean). Fields are naturally aligned inside
// the packed structs, which atomic_ref requires.
template <typename T>
inline T aload(const T& field) {
  return std::atomic_ref<T>(const_cast<T&>(field))
      .load(std::memory_order_acquire);
}
template <typename T>
inline void astore(T& field, T v) {
  std::atomic_ref<T>(field).store(v, std::memory_order_release);
}

std::atomic<uint64_t> g_instance_gen{1};
std::atomic<uint64_t> g_thread_tokens{1};

}  // namespace

LogStore::LogStore(nvm::PmemAllocator& alloc, uint64_t existing_super_off,
                   Options opts)
    : alloc_(alloc), pool_(alloc.pool()) {
  instance_gen_.store(g_instance_gen.fetch_add(1, std::memory_order_relaxed),
                      std::memory_order_relaxed);
  if (existing_super_off != 0) {
    super_ = pool_.to_ptr<Super>(existing_super_off);
    if (super_->magic != kMagic) {
      throw std::runtime_error("LogStore: offset is not a value log super");
    }
    // Recovery: CRC-scan every segment. Previously-active segments are
    // sealed at their last valid record — the dense-prefix property of
    // single-writer segments means everything past the scan point is a
    // torn tail (or never-written space), which is discarded here and can
    // never be handed out again.
    nvm::FaultScope scope(nvm::kFaultVkvSeal);
    for (uint32_t i = 0; i < kMaxSegments; ++i) {
      SegmentEntry& e = super_->seg[i];
      const uint32_t state = aload(e.state);
      if (state == kSegFree) continue;
      const uint64_t limit =
          state == kSegSealed ? std::min(e.sealed_tail, e.capacity)
                              : e.capacity;
      const uint64_t valid = scan_valid_prefix(e, limit, nullptr);
      if (state == kSegActive || valid != e.sealed_tail) {
        astore(e.sealed_tail, valid);
        pool_.persist_fence(&e.sealed_tail, sizeof(e.sealed_tail));
        astore(e.state, kSegSealed);
        pool_.persist_fence(&e.state, sizeof(e.state));
      }
      seg_state_[i].vtail.store(valid, std::memory_order_relaxed);
    }
    return;
  }

  if (opts.segment_bytes < kMinSegmentBytes) {
    opts.segment_bytes = kMinSegmentBytes;
  }
  const uint64_t super_off = alloc_.alloc(sizeof(Super));
  super_ = pool_.to_ptr<Super>(super_off);
  std::memset(static_cast<void*>(super_), 0, sizeof(Super));
  super_->segment_bytes = opts.segment_bytes;
  super_->max_total_bytes = opts.max_total_bytes;
  pool_.persist(super_, sizeof(Super));
  pool_.fence();
  super_->magic = kMagic;
  pool_.persist_fence(&super_->magic, sizeof(uint64_t));
}

uint32_t LogStore::record_seed(uint32_t salt, uint64_t seg_pos) const {
  return static_cast<uint32_t>(
      mix64((static_cast<uint64_t>(salt) << 32) | seg_pos));
}

uint32_t LogStore::next_salt(int idx) {
  const uint32_t old = super_->seg[idx].salt;
  uint32_t s = old * 2654435761u +
               static_cast<uint32_t>(idx + 1) * 0x9E3779B9u +
               salt_seq_.fetch_add(1, std::memory_order_relaxed);
  return s == 0 ? 1u : s;
}

LogStore::Head& LogStore::my_head() {
  // Per-thread cache of "my head slot in store generation G". Generations
  // are process-unique, so a destroyed store's stale cache entries can
  // never alias a new one.
  thread_local std::unordered_map<uint64_t, uint32_t> cache;
  const uint64_t gen = instance_gen_.load(std::memory_order_relaxed);
  if (auto it = cache.find(gen); it != cache.end()) return heads_[it->second];

  thread_local uint64_t token =
      g_thread_tokens.fetch_add(1, std::memory_order_relaxed);
  uint32_t s = static_cast<uint32_t>(token % kMaxHeads);
  for (uint32_t probes = 0; probes < kMaxHeads; ++probes) {
    uint64_t expected = 0;
    if (heads_[s].owner.compare_exchange_strong(expected, token,
                                                std::memory_order_acq_rel)) {
      cache.emplace(gen, s);
      return heads_[s];
    }
    s = (s + 1) % kMaxHeads;
  }
  throw std::runtime_error("LogStore: more than kMaxHeads appending threads");
}

void LogStore::seal_locked(Head& head) {
  if (head.seg < 0) return;
  SegmentEntry& e = super_->seg[head.seg];
  if (head.pos == 0) {
    // Nothing was ever written here (a record bigger than the fresh
    // segment forced an immediate jumbo switch): return it to the free
    // pool instead of sealing an empty segment.
    const uint64_t off = e.off;
    const uint64_t cap = e.capacity;
    astore(e.state, kSegFree);
    pool_.persist_fence(&e.state, sizeof(e.state));
    alloc_.free_block(off, cap);
    head.seg = -1;
    return;
  }
  // Tail first, state second — a crash in between leaves the segment
  // active, and recovery re-derives the tail by scanning.
  astore(e.sealed_tail, head.pos);
  pool_.persist_fence(&e.sealed_tail, sizeof(e.sealed_tail));
  astore(e.state, kSegSealed);
  pool_.persist_fence(&e.state, sizeof(e.state));
  head.seg = -1;
}

bool LogStore::acquire_segment(Head& head, uint64_t need) {
  const uint64_t cap = std::max(super_->segment_bytes, need);
  int free_idx = -1;
  uint32_t free_count = 0;
  uint64_t in_use = 0;
  for (uint32_t i = 0; i < kMaxSegments; ++i) {
    const SegmentEntry& e = super_->seg[i];
    if (aload(e.state) == kSegFree) {
      ++free_count;
      if (free_idx < 0) free_idx = static_cast<int>(i);
    } else {
      in_use += e.capacity;
    }
  }
  if (free_idx < 0) return false;
  // GC headroom: normal appends stop kGcReservedSegments short of the
  // directory/byte limit so relocation always has space to move live
  // records into (GcScope appends may use it). Logs too small to spare the
  // reserve — under four segments of budget — skip it.
  if (!gc_thread_ && free_count <= kGcReservedSegments) return false;
  uint64_t reserve = 0;
  if (!gc_thread_ && super_->max_total_bytes != 0) {
    reserve = uint64_t{kGcReservedSegments} * super_->segment_bytes;
    if (super_->max_total_bytes < 2 * reserve) reserve = 0;
  }
  if (super_->max_total_bytes != 0 &&
      in_use + cap + reserve > super_->max_total_bytes) {
    return false;
  }
  uint64_t off;
  try {
    off = alloc_.alloc(cap);
  } catch (const std::bad_alloc&) {
    return false;
  }
  SegmentEntry& e = super_->seg[free_idx];
  // Identity fields first, state last: a crash in between leaves the entry
  // free (the block leaks, the allocator's documented crash-leak
  // semantics) rather than active-with-garbage. Atomic stores, not plain:
  // a reader that captured this entry's previous (pre-free) state may
  // still be aload-ing the identity fields; it gets old or new bytes —
  // either fails its bounds/CRC checks — but never a torn word.
  astore(e.off, off);
  astore(e.capacity, cap);
  astore(e.sealed_tail, uint64_t{0});
  astore(e.salt, next_salt(free_idx));
  pool_.persist(&e, sizeof(e));
  pool_.fence();
  astore(e.state, kSegActive);
  pool_.persist_fence(&e.state, sizeof(e.state));

  seg_state_[free_idx].vtail.store(0, std::memory_order_relaxed);
  seg_state_[free_idx].dead.store(0, std::memory_order_relaxed);
  head.seg = free_idx;
  head.pos = 0;
  head.end = cap;
  return true;
}

Status LogStore::append(std::string_view key, std::string_view value,
                        Handle* out) {
  if (key.size() > kMaxKey || value.size() > kMaxValue) {
    return Status::InvalidArgument("record exceeds value-log limits");
  }
  const uint64_t need = kRecordHeaderBytes + key.size() + value.size();
  Head& head = my_head();
  if (head.seg < 0 || head.pos + need > head.end) {
    std::lock_guard<std::mutex> lock(dir_mu_);
    nvm::FaultScope scope(nvm::kFaultVkvSeal);
    seal_locked(head);
    if (!acquire_segment(head, need)) {
      return Status::LogFull("value log full");
    }
  }
  const SegmentEntry& e = super_->seg[head.seg];
  char* rec = pool_.to_ptr<char>(e.off + head.pos);
  RecordHeader hdr{0, static_cast<uint16_t>(key.size()),
                   static_cast<uint32_t>(value.size())};
  uint32_t crc = crc32c(&hdr.klen, sizeof(hdr.klen) + sizeof(hdr.vlen),
                        record_seed(aload(e.salt), head.pos));
  crc = crc32c(key.data(), key.size(), crc);
  crc = crc32c(value.data(), value.size(), crc);
  if (crc == 0) crc = 1;  // 0 is reserved for "never written"
  hdr.crc = crc;
  {
    // The entire hot-path durability cost: persisting the record's own
    // bytes. No shared persistent metadata is touched.
    nvm::FaultScope scope(nvm::kFaultVkvAppend);
    std::memcpy(rec, &hdr, sizeof(hdr));
    std::memcpy(rec + sizeof(hdr), key.data(), key.size());
    std::memcpy(rec + sizeof(hdr) + key.size(), value.data(), value.size());
    pool_.on_write(rec, need);
    pool_.persist(rec, need);
    pool_.fence();
  }
  out->off = e.off + head.pos;
  out->klen = hdr.klen;
  out->vlen = hdr.vlen;
  head.pos += need;
  seg_state_[head.seg].vtail.store(head.pos, std::memory_order_release);
  return Status::Ok();
}

int LogStore::find_segment_of(uint64_t off) const {
  for (uint32_t i = 0; i < kMaxSegments; ++i) {
    const SegmentEntry& e = super_->seg[i];
    if (aload(e.state) == kSegFree) continue;
    const uint64_t base = aload(e.off);
    if (off >= base && off < base + aload(e.capacity)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool LogStore::read(const Handle& h, std::string_view* key,
                    std::string_view* value) const {
  const int idx = find_segment_of(h.off);
  if (idx < 0) return false;
  const SegmentEntry& e = super_->seg[idx];
  const uint64_t base = aload(e.off);
  const uint64_t total = kRecordHeaderBytes + h.klen + h.vlen;
  if (h.off - base + total > aload(e.capacity)) return false;
  const char* rec = pool_.to_ptr<char>(h.off);
  pool_.on_read(rec, total);
  RecordHeader hdr;
  std::memcpy(&hdr, rec, sizeof(hdr));
  if (hdr.klen != h.klen || hdr.vlen != h.vlen) return false;
  uint32_t crc =
      crc32c(rec + sizeof(uint32_t), sizeof(hdr.klen) + sizeof(hdr.vlen) +
                                         h.klen + h.vlen,
             record_seed(aload(e.salt), h.off - base));
  if (crc == 0) crc = 1;
  if (crc != hdr.crc) return false;
  *key = {rec + sizeof(RecordHeader), h.klen};
  *value = {rec + sizeof(RecordHeader) + h.klen, h.vlen};
  return true;
}

std::string_view LogStore::key_of(const Handle& h) const {
  const char* rec = pool_.to_ptr<char>(h.off);
  pool_.on_read(rec, kRecordHeaderBytes + h.klen);
  return {rec + sizeof(RecordHeader), h.klen};
}

std::string_view LogStore::value_of(const Handle& h) const {
  const char* rec = pool_.to_ptr<char>(h.off);
  pool_.on_read(rec, kRecordHeaderBytes + h.klen + h.vlen);
  return {rec + sizeof(RecordHeader) + h.klen, h.vlen};
}

void LogStore::note_dead(const Handle& h) {
  const int idx = find_segment_of(h.off);
  if (idx < 0) return;
  seg_state_[idx].dead.fetch_add(kRecordHeaderBytes + h.klen + h.vlen,
                                 std::memory_order_relaxed);
}

uint64_t LogStore::used_bytes() const {
  uint64_t used = 0;
  for (uint32_t i = 0; i < kMaxSegments; ++i) {
    const SegmentEntry& e = super_->seg[i];
    const uint32_t state = aload(e.state);
    if (state == kSegFree) continue;
    used += state == kSegSealed
                ? aload(e.sealed_tail)
                : seg_state_[i].vtail.load(std::memory_order_relaxed);
  }
  return used;
}

uint64_t LogStore::dead_bytes() const {
  uint64_t dead = 0;
  for (uint32_t i = 0; i < kMaxSegments; ++i) {
    if (aload(super_->seg[i].state) == kSegFree) continue;
    dead += seg_state_[i].dead.load(std::memory_order_relaxed);
  }
  return dead;
}

uint64_t LogStore::capacity_bytes() const {
  uint64_t cap = 0;
  for (uint32_t i = 0; i < kMaxSegments; ++i) {
    const SegmentEntry& e = super_->seg[i];
    if (aload(e.state) != kSegFree) cap += aload(e.capacity);
  }
  return cap;
}

uint32_t LogStore::segments_in_use() const {
  uint32_t n = 0;
  for (uint32_t i = 0; i < kMaxSegments; ++i) {
    if (aload(super_->seg[i].state) != kSegFree) ++n;
  }
  return n;
}

bool LogStore::inspect(const nvm::PmemPool& pool, uint64_t super_off,
                       const std::function<void(int, uint64_t, uint64_t,
                                                uint32_t, uint64_t)>& fn) {
  if (super_off == 0 || super_off + sizeof(Super) > pool.size()) return false;
  const Super* s = pool.to_ptr<const Super>(super_off);
  if (s->magic != kMagic) return false;
  for (uint32_t i = 0; i < kMaxSegments; ++i) {
    const SegmentEntry& e = s->seg[i];
    const uint32_t state = aload(e.state);
    if (state == kSegFree) continue;
    fn(static_cast<int>(i), e.off, e.capacity, state, e.sealed_tail);
  }
  return true;
}

int LogStore::pick_victim(double min_dead_fraction) const {
  std::lock_guard<std::mutex> lock(dir_mu_);
  int best = -1;
  double best_frac = min_dead_fraction;
  for (uint32_t i = 0; i < kMaxSegments; ++i) {
    const SegmentEntry& e = super_->seg[i];
    if (aload(e.state) != kSegSealed) continue;
    const uint64_t tail = aload(e.sealed_tail);
    if (tail == 0) continue;
    const uint64_t dead = seg_state_[i].dead.load(std::memory_order_relaxed);
    if (dead == 0) continue;
    const double frac = static_cast<double>(dead) / static_cast<double>(tail);
    if (frac >= best_frac) {
      best_frac = frac;
      best = static_cast<int>(i);
    }
  }
  return best;
}

uint64_t LogStore::scan_valid_prefix(
    const SegmentEntry& e, uint64_t limit,
    const std::function<void(const Handle&, std::string_view,
                             std::string_view)>* fn) const {
  const uint64_t base = aload(e.off);
  const uint32_t salt = aload(e.salt);
  uint64_t pos = 0;
  while (pos + kRecordHeaderBytes <= limit) {
    const char* rec = pool_.to_ptr<char>(base + pos);
    pool_.on_read(rec, kRecordHeaderBytes);
    RecordHeader hdr;
    std::memcpy(&hdr, rec, sizeof(hdr));
    if (hdr.crc == 0) break;
    if (hdr.klen > kMaxKey || hdr.vlen > kMaxValue) break;
    const uint64_t need = kRecordHeaderBytes + hdr.klen + hdr.vlen;
    if (pos + need > limit) break;
    pool_.on_read(rec + kRecordHeaderBytes, hdr.klen + hdr.vlen);
    uint32_t crc = crc32c(rec + sizeof(uint32_t),
                          sizeof(hdr.klen) + sizeof(hdr.vlen) + hdr.klen +
                              hdr.vlen,
                          record_seed(salt, pos));
    if (crc == 0) crc = 1;
    if (crc != hdr.crc) break;
    if (fn) {
      Handle h;
      h.off = base + pos;
      h.klen = hdr.klen;
      h.vlen = hdr.vlen;
      (*fn)(h, {rec + sizeof(RecordHeader), hdr.klen},
            {rec + sizeof(RecordHeader) + hdr.klen, hdr.vlen});
    }
    pos += need;
  }
  return pos;
}

void LogStore::scan_segment(
    int idx, const std::function<void(const Handle&, std::string_view,
                                      std::string_view)>& fn) const {
  const SegmentEntry& e = super_->seg[idx];
  if (aload(e.state) != kSegSealed) return;
  scan_valid_prefix(e, std::min(aload(e.sealed_tail), aload(e.capacity)),
                    &fn);
}

void LogStore::for_each_record(
    const std::function<void(const Handle&, std::string_view,
                             std::string_view)>& fn) const {
  for (uint32_t i = 0; i < kMaxSegments; ++i) {
    const SegmentEntry& e = super_->seg[i];
    const uint32_t state = aload(e.state);
    if (state == kSegFree) continue;
    const uint64_t limit =
        state == kSegSealed
            ? std::min(aload(e.sealed_tail), aload(e.capacity))
            : seg_state_[i].vtail.load(std::memory_order_acquire);
    scan_valid_prefix(e, limit, &fn);
  }
}

uint64_t LogStore::free_segment(int idx) {
  uint64_t off, cap, freed;
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    SegmentEntry& e = super_->seg[idx];
    if (aload(e.state) != kSegSealed) return 0;
    off = aload(e.off);
    cap = aload(e.capacity);
    freed = aload(e.sealed_tail);
    nvm::FaultScope scope(nvm::kFaultVkvGc);
    astore(e.state, kSegFree);
    pool_.persist_fence(&e.state, sizeof(e.state));
  }
  // Grace period: every reader that resolved a handle into this segment
  // before the entry went free must unpin before the space is reusable.
  epochs_.synchronize();
  alloc_.free_block(off, cap);
  seg_state_[idx].dead.store(0, std::memory_order_relaxed);
  seg_state_[idx].vtail.store(0, std::memory_order_relaxed);
  return freed;
}

}  // namespace hdnh::vkv
