#include "vkv/vkv_store.h"

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "nvm/fault.h"
#include "nvm/sharded_layout.h"
#include "store/sharded_table.h"

namespace hdnh::vkv {

VkvStore::VkvStore(nvm::PmemAllocator& alloc, Options opts)
    : alloc_(alloc), opts_(opts) {
  HdnhConfig cfg = opts_.index;
  uint32_t shards = opts_.shards;
  // A pool that already holds a shard map stays sharded (same rule as the
  // table factory): re-opening with the wrong shard count must not format
  // a second, overlapping index.
  if (shards <= 1 && nvm::ShardedPmemLayout::present(alloc_)) shards = 2;
  if (shards > 1) {
    const uint64_t per_shard_items =
        std::max<uint64_t>(opts_.expected_records / shards, 64);
    cfg.initial_capacity = per_shard_items;
    // Explicit per-shard bytes: the default carve would hand the ENTIRE
    // remaining pool to the index regions, leaving the value log nothing
    // to allocate segments from.
    const uint64_t per_shard_bytes =
        Hdnh::pool_bytes_hint(per_shard_items + per_shard_items / 4, cfg);
    auto layout = std::make_unique<nvm::ShardedPmemLayout>(alloc_, shards,
                                                           per_shard_bytes);
    const uint32_t actual = layout->shards();
    std::vector<std::unique_ptr<HashTable>> tables;
    tables.reserve(actual);
    for (uint32_t s = 0; s < actual; ++s) {
      tables.push_back(std::make_unique<Hdnh>(layout->shard_alloc(s), cfg));
    }
    std::string name =
        std::string(tables[0]->name()) + "@" + std::to_string(actual);
    index_ = std::make_unique<store::ShardedTable>(
        std::move(layout), std::move(tables), std::move(name));
  } else {
    cfg.initial_capacity = std::max<uint64_t>(opts_.expected_records, 64);
    index_ = std::make_unique<Hdnh>(alloc_, cfg);  // attaches + recovers
  }
  name_ = std::string("vkv(") + index_->name() + ")";

  LogStore::Options lopts;
  lopts.segment_bytes =
      opts_.segment_bytes
          ? opts_.segment_bytes
          : std::clamp<uint64_t>(opts_.log_bytes / 16, 64 * 1024, 8ull << 20);
  lopts.max_total_bytes = opts_.log_bytes;
  const uint64_t existing = alloc_.root(kLogRoot);
  log_ = std::make_unique<LogStore>(alloc_, existing, lopts);
  if (existing == 0) {
    alloc_.set_root(kLogRoot, log_->super_off(), 0);
  } else {
    rebuild_dead_accounting();
  }
}

Key VkvStore::digest(std::string_view key) {
  Key k;
  const uint64_t a = hash64(key, kSeed1 ^ 0x5A5A5A5A5A5A5A5AULL);
  const uint64_t b = hash64(key, kSeed2 ^ 0xA5A5A5A5A5A5A5A5ULL);
  std::memcpy(k.b, &a, 8);
  std::memcpy(k.b + 8, &b, 8);
  return k;
}

Value VkvStore::encode_inline(std::string_view value) {
  // Tag byte 0..14 = inline length; handles set bit 7 instead (their tag is
  // 0x80, and inline lengths never reach it).
  Value v{};
  std::memcpy(v.b, value.data(), value.size());
  v.b[kValueBytes - 1] = static_cast<uint8_t>(value.size());
  return v;
}

std::string VkvStore::decode_inline(const Value& v) {
  const size_t len = std::min<size_t>(v.b[kValueBytes - 1], kInlineMax);
  return std::string(reinterpret_cast<const char*>(v.b), len);
}

Value VkvStore::encode_handle(const Handle& h) {
  // 15 bytes: off(8) + vlen(4) + klen(2) + tag.
  Value v{};
  std::memcpy(v.b, &h.off, 8);
  std::memcpy(v.b + 8, &h.vlen, 4);
  std::memcpy(v.b + 12, &h.klen, 2);
  v.b[kValueBytes - 1] = 0x80;
  return v;
}

Handle VkvStore::decode_handle(const Value& v) {
  Handle h;
  std::memcpy(&h.off, v.b, 8);
  std::memcpy(&h.vlen, v.b + 8, 4);
  std::memcpy(&h.klen, v.b + 12, 2);
  return h;
}

std::mutex& VkvStore::stripe(const Key& dk) {
  uint64_t a;
  std::memcpy(&a, dk.b, 8);
  return stripes_[a % stripes_.size()];
}

Status VkvStore::put_once(const Key& dk, std::string_view key,
                          std::string_view value, bool upsert) {
  std::lock_guard<std::mutex> lock(stripe(dk));
  Value old_v;
  const Status found = index_->search_s(dk, &old_v);
  if (!found.ok() && found.code() != StatusCode::kNotFound) return found;
  const bool existed = found.ok();
  if (existed && !upsert) return Status::Exists();

  Value nv;
  Handle nh{};
  if (value.size() <= kInlineMax) {
    nv = encode_inline(value);
  } else {
    const Status as = log_->append(key, value, &nh);
    if (!as.ok()) return as;
    nv = encode_handle(nh);
  }
  const Status ps =
      existed ? index_->update_s(dk, nv) : index_->insert_s(dk, nv);
  if (!ps.ok()) {
    // Index rejection (e.g. kTableFull) orphans the freshly appended
    // record; account it dead so GC can reclaim it.
    if (nh.valid()) log_->note_dead(nh);
    return ps;
  }
  if (existed && !is_inline(old_v)) log_->note_dead(decode_handle(old_v));
  return Status::Ok();
}

Status VkvStore::put(std::string_view key, std::string_view value) {
  if (key.size() > max_key_len()) {
    return Status::InvalidArgument(
        "key too long (max " + std::to_string(max_key_len()) + " bytes)");
  }
  if (value.size() > max_value_len()) {
    return Status::InvalidArgument(
        "value too long (max " + std::to_string(max_value_len()) + " bytes)");
  }
  return put_with_gc(digest(key), key, value, /*upsert=*/true);
}

Status VkvStore::insert(std::string_view key, std::string_view value) {
  if (key.size() > max_key_len()) {
    return Status::InvalidArgument(
        "key too long (max " + std::to_string(max_key_len()) + " bytes)");
  }
  if (value.size() > max_value_len()) {
    return Status::InvalidArgument(
        "value too long (max " + std::to_string(max_value_len()) + " bytes)");
  }
  return put_with_gc(digest(key), key, value, /*upsert=*/false);
}

Status VkvStore::put_with_gc(const Key& dk, std::string_view key,
                             std::string_view value, bool upsert) {
  Status s = put_once(dk, key, value, upsert);
  if (!opts_.auto_gc) return s;
  // A full log triggers GC and a retry. Deliberately NOT conditioned on our
  // own pass reclaiming bytes: a thread that waited on gc_mu_ behind
  // another thread's pass reclaims nothing itself but usually has space
  // now, and bounded rounds keep a genuinely full log from looping.
  for (int round = 0; round < 3 && s.code() == StatusCode::kLogFull; ++round) {
    (void)gc(LogStore::kMaxSegments, 0.0);
    s = put_once(dk, key, value, upsert);
  }
  return s;
}

Status VkvStore::get(std::string_view key, std::string* out) {
  if (key.size() > max_key_len()) return Status::NotFound();
  const Key dk = digest(key);
  // The epoch pin is taken BEFORE the index read, so any segment the
  // returned handle points into stays resident (free_segment waits for our
  // pin). A failed CRC read therefore means exactly one thing: GC
  // republished the key between our index read and our log read.
  // Re-pinning and re-reading the index observes the relocated handle.
  for (int attempt = 0; attempt < 4; ++attempt) {
    auto guard = log_->epochs().pin();
    Value v;
    const Status s = index_->search_s(dk, &v);
    if (!s.ok()) return s;
    if (is_inline(v)) {
      if (out) *out = decode_inline(v);
      return Status::Ok();
    }
    const Handle h = decode_handle(v);
    std::string_view rk, rv;
    if (log_->read(h, &rk, &rv)) {
      // Full key bytes are stored with the record: digest collisions
      // (~2^-128 per pair) cannot return a wrong value.
      if (rk != key) return Status::NotFound();
      if (out) out->assign(rv);
      return Status::Ok();
    }
  }
  return Status::Retry("value relocated repeatedly during read");
}

Status VkvStore::erase(std::string_view key) {
  if (key.size() > max_key_len()) return Status::NotFound();
  const Key dk = digest(key);
  std::lock_guard<std::mutex> lock(stripe(dk));
  Value v;
  const Status s = index_->search_s(dk, &v);
  if (!s.ok()) return s;
  if (!is_inline(v)) {
    // The stripe lock makes this safe without an epoch pin: GC must
    // relocate every live record (including this one) before it can retire
    // the segment, and relocating this key takes this stripe.
    const Handle h = decode_handle(v);
    if (log_->key_of(h) != key) return Status::NotFound();
  }
  const Status es = index_->erase_s(dk);
  if (es.ok() && !is_inline(v)) log_->note_dead(decode_handle(v));
  return es;
}

size_t VkvStore::multiget(const std::string_view* keys, size_t n,
                          std::string* values, uint8_t* found) {
  thread_local std::vector<Key> dks;
  thread_local std::vector<Value> vals;
  thread_local std::vector<uint8_t> f8;
  dks.resize(n);
  vals.resize(n);
  f8.assign(n, 0);
  for (size_t i = 0; i < n; ++i) dks[i] = digest(keys[i]);

  auto guard = log_->epochs().pin();
  hdnh::multiget(*index_, std::span<const Key>(dks.data(), n),
                 std::span<Value>(vals.data(), n),
                 std::span<uint8_t>(f8.data(), n));
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    found[i] = 0;
    if (!f8[i]) continue;
    if (is_inline(vals[i])) {
      values[i] = decode_inline(vals[i]);
      found[i] = 1;
      ++hits;
      continue;
    }
    const Handle h = decode_handle(vals[i]);
    std::string_view rk, rv;
    if (log_->read(h, &rk, &rv)) {
      if (rk != keys[i]) continue;  // digest collision: miss
      values[i].assign(rv);
      found[i] = 1;
      ++hits;
    } else if (get(keys[i], &values[i]).ok()) {
      // GC moved the record after the batched index read; the point get
      // retries with a fresh pin.
      found[i] = 1;
      ++hits;
    }
  }
  return hits;
}

double VkvStore::log_utilization() const {
  const uint64_t used = log_->used_bytes();
  if (used == 0) return 1.0;
  return 1.0 -
         static_cast<double>(log_->dead_bytes()) / static_cast<double>(used);
}

uint64_t VkvStore::gc(uint32_t max_segments, double min_dead_fraction) {
  std::lock_guard<std::mutex> gl(gc_mu_);
  uint64_t reclaimed = 0;
  for (uint32_t round = 0; round < max_segments; ++round) {
    const int victim = log_->pick_victim(min_dead_fraction);
    if (victim < 0) break;
    nvm::FaultScope scope(nvm::kFaultVkvGc);
    LogStore::GcScope gc_scope;  // relocation may use the reserved headroom
    bool aborted = false;
    log_->scan_segment(
        victim, [&](const Handle& h, std::string_view k, std::string_view v) {
          if (aborted) return;
          const Key dk = digest(k);
          // Per-record stripe lock: the read-check-republish below is
          // atomic against a racing put/erase of the same key.
          std::lock_guard<std::mutex> lock(stripe(dk));
          Value cur;
          if (!index_->search_s(dk, &cur).ok()) return;  // dead record
          if (is_inline(cur)) return;                    // superseded
          if (decode_handle(cur).off != h.off) return;   // superseded
          Handle nh;
          if (!log_->append(k, v, &nh).ok() ||
              !index_->update_s(dk, encode_handle(nh)).ok()) {
            // Cannot relocate (log/table full): leave the victim sealed —
            // every index entry still points at valid bytes.
            aborted = true;
          }
        });
    if (aborted) break;
    reclaimed += log_->free_segment(victim);
  }
  return reclaimed;
}

uint64_t VkvStore::compact() {
  uint64_t total = 0;
  for (;;) {
    const uint64_t got = gc(LogStore::kMaxSegments, 0.0);
    if (got == 0) break;
    total += got;
  }
  return total;
}

bool VkvStore::check_index_integrity() {
  if (auto* h = dynamic_cast<Hdnh*>(index_.get())) {
    return h->check_integrity().ok();
  }
  if (auto* s = dynamic_cast<store::ShardedTable*>(index_.get())) {
    return s->check_integrity().ok();
  }
  return true;
}

void VkvStore::abandon_after_crash() {
  if (auto* h = dynamic_cast<Hdnh*>(index_.get())) {
    h->abandon_after_crash();
  } else if (auto* s = dynamic_cast<store::ShardedTable*>(index_.get())) {
    s->abandon_after_crash();
  }
}

void VkvStore::rebuild_dead_accounting() {
  // The dead-byte counters are volatile; after re-attach, re-derive them by
  // walking every valid record and asking the index whether it still points
  // here. Unreferenced records (overwritten, erased, or orphaned by a crash
  // between append and index publish) are dead.
  log_->for_each_record(
      [&](const Handle& h, std::string_view k, std::string_view) {
        Value cur;
        if (!index_->search_s(digest(k), &cur).ok() || is_inline(cur) ||
            decode_handle(cur).off != h.off) {
          log_->note_dead(h);
        }
      });
}

}  // namespace hdnh::vkv
