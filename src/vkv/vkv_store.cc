#include "vkv/vkv_store.h"

#include <cstring>
#include <vector>

namespace hdnh::vkv {

VkvStore::VkvStore(nvm::PmemAllocator& alloc, Options opts)
    : alloc_(alloc), opts_(opts) {
  HdnhConfig cfg = opts_.index;
  cfg.initial_capacity = opts_.expected_records;
  index_ = std::make_unique<Hdnh>(alloc_, cfg);  // attaches + recovers
  const uint64_t existing = alloc_.root(kLogRoot);
  log_ = std::make_unique<LogStore>(alloc_, existing, opts_.log_bytes);
  if (existing == 0) {
    alloc_.set_root(kLogRoot, log_->super_off(), 0);
  }
}

Key VkvStore::digest(std::string_view key) {
  Key k;
  const uint64_t a = hash64(key, kSeed1 ^ 0x5A5A5A5A5A5A5A5AULL);
  const uint64_t b = hash64(key, kSeed2 ^ 0xA5A5A5A5A5A5A5A5ULL);
  std::memcpy(k.b, &a, 8);
  std::memcpy(k.b + 8, &b, 8);
  return k;
}

Value VkvStore::encode(const Handle& h) {
  // 15 bytes: off(8) + vlen(4) + klen(2) + 1 spare.
  Value v{};
  std::memcpy(v.b, &h.off, 8);
  std::memcpy(v.b + 8, &h.vlen, 4);
  std::memcpy(v.b + 12, &h.klen, 2);
  return v;
}

Handle VkvStore::decode(const Value& v) {
  Handle h;
  std::memcpy(&h.off, v.b, 8);
  std::memcpy(&h.vlen, v.b + 8, 4);
  std::memcpy(&h.klen, v.b + 12, 2);
  return h;
}

bool VkvStore::put(std::string_view key, std::string_view value) {
  const Key dk = digest(key);
  // Fetch the old handle (if any) so its bytes can be marked dead.
  Value old_v;
  const bool existed = index_->search(dk, &old_v);

  const Handle h = log_->append(key, value);  // durable before publication
  const Value encoded = encode(h);
  if (existed) {
    index_->update(dk, encoded);
    log_->note_dead(decode(old_v));
    return false;
  }
  if (!index_->insert(dk, encoded)) {
    // Raced with a concurrent put of the same new key: fall back to update.
    Value racer;
    if (index_->search(dk, &racer)) {
      index_->update(dk, encoded);
      log_->note_dead(decode(racer));
    }
    return false;
  }
  return true;
}

bool VkvStore::get(std::string_view key, std::string* out) {
  Value v;
  if (!index_->search(digest(key), &v)) return false;
  const Handle h = decode(v);
  // Verify the full key bytes: digests collide only astronomically rarely,
  // but correctness should not rest on probability.
  if (log_->key_of(h) != key) return false;
  if (out) out->assign(log_->value_of(h));
  return true;
}

bool VkvStore::erase(std::string_view key) {
  const Key dk = digest(key);
  Value v;
  if (!index_->search(dk, &v)) return false;
  if (log_->key_of(decode(v)) != key) return false;
  if (!index_->erase(dk)) return false;
  log_->note_dead(decode(v));
  return true;
}

double VkvStore::log_utilization() const {
  const uint64_t used = log_->used_bytes();
  if (used == 0) return 1.0;
  return 1.0 - static_cast<double>(log_->dead_bytes()) /
                   static_cast<double>(used);
}

uint64_t VkvStore::compact() {
  const uint64_t before = log_->used_bytes();
  auto fresh = std::make_unique<LogStore>(alloc_, 0, opts_.log_bytes);

  // Snapshot the live entries first (for_each holds the index's shared
  // lock; updating from inside the visitor would re-enter it), then migrate
  // each record and rewrite its handle through the index's crash-atomic
  // update. A crash mid-compaction leaves a fully usable store whose
  // entries point at a mix of old and new logs (both retained until the
  // root swap below).
  std::vector<KVPair> live;
  live.reserve(index_->size());
  index_->for_each([&](const KVPair& kv) { live.push_back(kv); });
  for (const KVPair& kv : live) {
    const Handle old = decode(kv.value);
    const Handle moved =
        fresh->append(log_->key_of(old), log_->value_of(old));
    index_->update(kv.key, encode(moved));
  }

  // Publish the new log, then retire the old one.
  alloc_.set_root(kLogRoot, fresh->super_off(), 0);
  log_->retire();
  log_ = std::move(fresh);
  return before - log_->used_bytes();
}

}  // namespace hdnh::vkv
