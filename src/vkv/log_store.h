// A persistent, segmented append-only record log inside a PmemPool — the
// substrate that lets HDNH (fixed 31-byte records) index variable-length
// key/value data: the log holds the real bytes, the hash table holds
// 15-byte handles.
//
// Layout. The log is a persisted directory of up to kMaxSegments segments,
// each an independently allocated block. A directory entry carries the
// segment's pool offset, capacity, state (free / active / sealed), the
// sealed tail, and a per-activation salt. Records are packed
//
//   [u32 crc][u16 klen][u32 vlen][key bytes][value bytes]
//
// where crc is CRC-32C over everything after it, seeded with the segment's
// salt mixed with the record's in-segment offset — so a stale record left
// over from a recycled segment, or bytes sheared by a torn write, can never
// verify. Records are immutable once published.
//
// Hot path. Every appending thread owns one active segment exclusively and
// bump-allocates inside it thread-locally: an append writes and persists
// only the record's own bytes, touching no shared persistent metadata (the
// Dash lesson — shared PM cachelines on the hot path serialize everything
// behind them). Shared persistent state changes only at segment-granular
// events: sealing a full segment, activating a fresh one, retiring a dead
// one — all rare, all under a directory mutex, all tagged kFaultVkvSeal /
// kFaultVkvGc for the crash sweeps.
//
// Crash consistency. A record's bytes are persisted and fenced before its
// handle escapes append(); owners publish handles through the index's
// crash-atomic update afterwards. A crash mid-append leaves a torn record
// past the last acknowledged one; because each segment has a single writer,
// records within a segment form a dense prefix, so recovery scans each
// segment from the start, CRC-verifying every record, and seals the segment
// at the first invalid byte — the torn tail is detected and discarded,
// never replayed. Handles held by a recovered index always point below that
// scan point.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>

#include "api/types.h"
#include "nvm/alloc.h"
#include "vkv/epoch.h"

namespace hdnh::vkv {

// Opaque position of a record in the log.
struct Handle {
  uint64_t off = 0;   // pool offset of the record header
  uint32_t vlen = 0;  // value length (cached to size reads)
  uint16_t klen = 0;  // key length
  bool valid() const { return off != 0; }
};

class LogStore {
 public:
  static constexpr uint64_t kMaxKey = 64 * 1024;
  static constexpr uint64_t kMaxValue = 16 * 1024 * 1024;
  static constexpr uint32_t kMaxSegments = 64;
  static constexpr uint64_t kMinSegmentBytes = 4 * 1024;
  static constexpr uint32_t kMaxHeads = 256;
  // Segments of headroom normal appends must leave unprovisioned so GC can
  // relocate live records out of a victim even when the log is otherwise
  // full. Without the reserve a full directory jams: GC needs append space
  // to free anything, and appends need GC to free space.
  static constexpr uint32_t kGcReservedSegments = 2;

  // Appends made while a GcScope is alive on the calling thread may consume
  // the reserved headroom (VkvStore::gc wraps relocation in one).
  class GcScope {
   public:
    GcScope() : prev_(gc_thread_) { gc_thread_ = true; }
    ~GcScope() { gc_thread_ = prev_; }
    GcScope(const GcScope&) = delete;
    GcScope& operator=(const GcScope&) = delete;

   private:
    bool prev_;
  };

  struct Options {
    // Per-segment capacity. Records larger than this get a dedicated
    // "jumbo" segment sized to fit.
    uint64_t segment_bytes = 8ull << 20;
    // Cap on the sum of segment capacities (0 = directory/allocator
    // limited). Appends return kLogFull beyond it.
    uint64_t max_total_bytes = 0;
  };

  // Creates a fresh log, or — when `existing_super_off` is non-zero —
  // attaches to one created earlier, scanning every segment to verify
  // record checksums and seal previously-active segments at their last
  // valid record (torn tails are discarded here). Owners (VkvStore) keep
  // the returned super_off() in a root slot of their choosing.
  LogStore(nvm::PmemAllocator& alloc, uint64_t existing_super_off)
      : LogStore(alloc, existing_super_off, Options()) {}
  LogStore(nvm::PmemAllocator& alloc, uint64_t existing_super_off,
           Options opts);

  // Pool offset of this log's directory superblock (stable across
  // re-attach).
  uint64_t super_off() const { return pool_.to_off(super_); }

  // Append a record. On success fills *out with the handle after the
  // record's bytes are durable. Returns kInvalidArgument for oversize
  // records and kLogFull when no segment can be provisioned (directory
  // full, byte budget reached, or pool exhausted) — never throws for
  // capacity. Safe to call from any number of threads.
  Status append(std::string_view key, std::string_view value, Handle* out);

  // CRC-verified read of a record: fills *key / *value (views into the
  // pool) after recomputing the record checksum. Returns false if the
  // checksum does not match (never true for torn or recycled bytes).
  // Callers needing GC-safety must hold an epochs() guard across the call
  // and the use of the views.
  bool read(const Handle& h, std::string_view* key,
            std::string_view* value) const;

  // Unverified views (hot paths that already trust the handle, e.g. a key
  // compare under the owner's stripe lock).
  std::string_view key_of(const Handle& h) const;
  std::string_view value_of(const Handle& h) const;

  // Accounting for GC decisions.
  void note_dead(const Handle& h);  // a record became unreachable
  uint64_t used_bytes() const;
  uint64_t dead_bytes() const;
  uint64_t capacity_bytes() const;  // sum of live segment capacities

  // GC surface. pick_victim() returns the sealed segment with the highest
  // dead fraction (at least `min_dead_fraction` of its sealed bytes), or
  // -1. scan_segment() walks a segment's valid records in order.
  // free_segment() retires a fully-relocated segment: persists the
  // directory entry free, waits out pinned readers (epochs().synchronize())
  // and releases the block to the allocator; returns the sealed bytes
  // reclaimed.
  int pick_victim(double min_dead_fraction = 0.25) const;
  void scan_segment(int idx,
                    const std::function<void(const Handle&, std::string_view,
                                             std::string_view)>& fn) const;
  uint64_t free_segment(int idx);

  // Walk every valid record in every segment (recovery accounting).
  void for_each_record(
      const std::function<void(const Handle&, std::string_view,
                               std::string_view)>& fn) const;

  // Reader reclamation domain (see epoch.h).
  EpochTracker& epochs() { return epochs_; }

  uint32_t segments_in_use() const;

  nvm::PmemAllocator& allocator() { return alloc_; }

  // Read-only walk of a persisted log directory for offline tools
  // (hdnh_doctor's segment→DIMM placement map): calls
  // fn(idx, off, capacity, state, sealed_tail) for every non-free entry,
  // without the recovery scans a LogStore construction performs. Returns
  // false when `super_off` does not hold a log superblock.
  static bool inspect(const nvm::PmemPool& pool, uint64_t super_off,
                      const std::function<void(int, uint64_t, uint64_t,
                                               uint32_t, uint64_t)>& fn);

 private:
#pragma pack(push, 1)
  struct RecordHeader {
    uint32_t crc;
    uint16_t klen;
    uint32_t vlen;
  };
  struct SegmentEntry {   // 32 bytes; entries are cacheline-contained
    uint64_t off;         // pool offset of the segment's data block
    uint64_t capacity;
    uint64_t sealed_tail; // valid when state == kSealed
    uint32_t salt;        // CRC seed component; changes on (re)activation
    uint32_t state;       // kSegFree / kSegActive / kSegSealed
  };
  struct Super {
    uint64_t magic;
    uint64_t segment_bytes;
    uint64_t max_total_bytes;
    uint64_t reserved;
    SegmentEntry seg[kMaxSegments];
  };
#pragma pack(pop)
  static_assert(sizeof(SegmentEntry) == 32);
  static constexpr uint64_t kMagic = 0x48444E485F4C4F47ULL;  // "HDNH_LOG"
  static constexpr uint32_t kSegFree = 0;
  static constexpr uint32_t kSegActive = 1;
  static constexpr uint32_t kSegSealed = 2;
  static constexpr uint64_t kRecordHeaderBytes = sizeof(RecordHeader);

  // Volatile per-segment state.
  struct SegState {
    std::atomic<uint64_t> vtail{0};  // owner's bump point (active segments)
    std::atomic<uint64_t> dead{0};   // dead record bytes
  };

  // Per-thread append head: the segment this thread owns and its bump
  // cursor. Claimed by CAS so thread-id collisions probe instead of race.
  struct alignas(64) Head {
    std::atomic<uint64_t> owner{0};  // 0 = unclaimed, else thread token
    int32_t seg = -1;
    uint64_t pos = 0;  // in-segment offset of the next record
    uint64_t end = 0;  // segment capacity
  };

  Head& my_head();
  uint32_t record_seed(uint32_t salt, uint64_t seg_pos) const;
  // Seals `head.seg` at head.pos (persisted); no-op for -1.
  void seal_locked(Head& head);
  // Finds/activates a segment with >= need free bytes for `head`. Returns
  // false when the log cannot grow (kLogFull).
  bool acquire_segment(Head& head, uint64_t need);
  // Scans one segment's records up to `limit`, returning the offset of the
  // first invalid byte (== valid prefix length).
  uint64_t scan_valid_prefix(const SegmentEntry& e, uint64_t limit,
                             const std::function<void(const Handle&,
                                                      std::string_view,
                                                      std::string_view)>* fn)
      const;
  int find_segment_of(uint64_t off) const;
  uint32_t next_salt(int idx);

  static thread_local bool gc_thread_;

  nvm::PmemAllocator& alloc_;
  nvm::PmemPool& pool_;
  Super* super_ = nullptr;
  mutable std::mutex dir_mu_;  // segment state transitions + victim scan
  SegState seg_state_[kMaxSegments];
  Head heads_[kMaxHeads];
  std::atomic<uint64_t> instance_gen_;
  std::atomic<uint32_t> salt_seq_{1};
  EpochTracker epochs_;
};

}  // namespace hdnh::vkv
