// A persistent append-only record log inside a PmemPool — the substrate
// that lets HDNH (fixed 31-byte records) index variable-length key/value
// data: the log holds the real bytes, the hash table holds 15-byte handles.
//
// Record layout (packed):   [u16 klen][u32 vlen][key bytes][value bytes]
// A record is immutable once published. Appends are crash-consistent: the
// record bytes are persisted before the caller publishes its handle in the
// index, and the log's persisted tail is advanced before the handle is
// returned — so a handle that exists anywhere durable always points at a
// fully-persisted record, and a crash between append and publish merely
// orphans bytes that compaction reclaims.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "nvm/alloc.h"

namespace hdnh::vkv {

// Opaque position of a record in the log.
struct Handle {
  uint64_t off = 0;   // pool offset of the record header
  uint32_t vlen = 0;  // value length (cached to size reads)
  uint16_t klen = 0;  // key length
  bool valid() const { return off != 0; }
};

class LogStore {
 public:
  static constexpr uint64_t kMaxKey = 64 * 1024;
  static constexpr uint64_t kMaxValue = 16 * 1024 * 1024;

  // Creates a fresh log of `capacity_bytes`, or — when `existing_super_off`
  // is non-zero — attaches to one created earlier. Owners (VkvStore) keep
  // the returned super_off() in a root slot of their choosing; keeping it
  // out of this class lets compaction build a replacement log before
  // atomically publishing it.
  LogStore(nvm::PmemAllocator& alloc, uint64_t existing_super_off,
           uint64_t capacity_bytes);

  // Pool offset of this log's superblock (stable across re-attach).
  uint64_t super_off() const { return pool_.to_off(super_); }
  uint64_t data_off() const;

  // Release the log's pool space back to the allocator (after compaction
  // has migrated every live record elsewhere).
  void retire();

  // Append a record; returns its handle after the bytes and the log tail
  // are durable. Throws std::bad_alloc when the log segment is full
  // (callers run compact() or provision a bigger log).
  Handle append(std::string_view key, std::string_view value);

  // Read back a record's key / value. The handle must come from append()
  // on this log (or a recovered index). Reads are charged as NVM traffic.
  std::string_view key_of(const Handle& h) const;
  std::string_view value_of(const Handle& h) const;

  // Accounting for compaction decisions.
  void note_dead(const Handle& h);  // a record became unreachable
  uint64_t used_bytes() const;
  uint64_t dead_bytes() const { return dead_bytes_.load(std::memory_order_relaxed); }
  uint64_t capacity_bytes() const { return capacity_; }

  // Begin-from-zero reset used by compaction (caller rewrites live records
  // into a fresh log and swaps).
  nvm::PmemAllocator& allocator() { return alloc_; }

 private:
#pragma pack(push, 1)
  struct RecordHeader {
    uint16_t klen;
    uint32_t vlen;
  };
  struct Super {
    uint64_t magic;
    uint64_t data_off;
    uint64_t capacity;
    std::atomic<uint64_t> tail;  // persisted high-water mark
  };
#pragma pack(pop)
  static constexpr uint64_t kMagic = 0x48444E485F4C4F47ULL;  // "HDNH_LOG"

  nvm::PmemAllocator& alloc_;
  nvm::PmemPool& pool_;
  Super* super_ = nullptr;
  uint64_t capacity_ = 0;
  std::atomic<uint64_t> dead_bytes_{0};
};

}  // namespace hdnh::vkv
