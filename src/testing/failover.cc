#include "testing/failover.h"

#include <chrono>
#include <map>
#include <thread>

#include "api/factory.h"
#include "common/clock.h"
#include "net/client.h"
#include "net/repl.h"
#include "net/server.h"
#include "nvm/alloc.h"
#include "nvm/pmem.h"

namespace hdnh::failover {

namespace {

std::string point_key(uint64_t seed, uint32_t i) {
  // <= 15 bytes so the fixed-record codec accepts it at any seed.
  return "f" + std::to_string((seed % 1000) * 100000 + i);
}

std::string point_val(uint64_t seed, uint32_t i) {
  return "v" + std::to_string((seed % 1000) * 100000 + i);
}

net::Client make_client(uint16_t port) {
  net::Client c;
  c.set_timeouts({2000, 2000, 2000});
  c.connect("127.0.0.1", port);
  return c;
}

}  // namespace

// Pool + allocator + store + server for one role.
struct Pair::Node {
  Node(const PairOptions& opts, uint32_t threads)
      : pool(pool_bytes_hint(opts.scheme, opts.capacity * 2,
                             ShardingOptions{})),
        alloc(pool) {
    TableOptions topts;
    topts.capacity = opts.capacity;
    kv = std::make_unique<FixedTableKv>(
        create_table(opts.scheme, alloc, topts));
    net::ServerOptions sopts;
    sopts.port = 0;  // ephemeral
    sopts.threads = threads;
    server = std::make_unique<net::Server>(*kv, sopts);
  }

  nvm::PmemPool pool;
  nvm::PmemAllocator alloc;
  std::unique_ptr<FixedTableKv> kv;
  std::unique_ptr<net::Server> server;
};

Pair::Pair(const PairOptions& opts) {
  primary_ = std::make_unique<Node>(opts, opts.threads);
  log_ = std::make_unique<net::ReplLog>();
  log_->start();
  primary_->server->set_repl_log(log_.get());
  primary_->server->start();

  replica_ = std::make_unique<Node>(opts, opts.threads);
  net::ReplicaOptions ropts;
  ropts.host = "127.0.0.1";
  ropts.port = primary_->server->port();
  ropts.recv_timeout_ms = opts.recv_timeout_ms;
  ropts.ack_every = opts.ack_every;
  session_ = std::make_unique<net::ReplicaSession>(*replica_->kv, ropts);
  replica_->server->set_replica(session_.get());
  replica_->server->start();
  session_->start();
}

Pair::~Pair() {
  replica_->server->stop();
  session_->stop();
  kill_primary();
}

uint16_t Pair::primary_port() const { return primary_->server->port(); }
uint16_t Pair::replica_port() const { return replica_->server->port(); }

bool Pair::wait_for_sink(uint32_t timeout_ms) {
  const uint64_t deadline =
      now_ns() + static_cast<uint64_t>(timeout_ms) * 1'000'000ull;
  while (log_->sink_count() == 0) {
    if (now_ns() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

void Pair::kill_primary() {
  if (primary_dead_) return;
  primary_dead_ = true;
  primary_->server->stop();
  log_->stop();
}

uint64_t Pair::promote_replica() {
  net::Client c = make_client(replica_port());
  const net::RespValue v = c.command({"PROMOTE"});
  if (v.type == net::RespValue::Type::kInteger) {
    return static_cast<uint64_t>(v.integer);
  }
  // "+ALREADY" or an error: report the session's own view.
  return session_->applied_seq();
}

std::string run_failover_point(const PointOptions& opts) {
  Pair pair(opts.pair);
  if (!pair.wait_for_sink()) {
    return "replica sink never attached to the primary";
  }

  // Pipelined writer against the primary, killed at the k-th ack. Keys are
  // fresh (no overwrites), so the oracle's model is exactly "acked keys
  // hold their value, in-flight keys are absent or complete".
  std::map<std::string, std::string> acked;
  uint32_t sent = 0;
  uint32_t acks = 0;
  bool writer_died_early = false;
  {
    net::Client w = make_client(pair.primary_port());
    std::vector<std::pair<std::string, std::string>> inflight;
    try {
      while (acks < opts.kill_after_acks && acks < opts.writes) {
        while (sent < opts.writes &&
               inflight.size() < static_cast<size_t>(opts.depth)) {
          std::string k = point_key(opts.seed, sent);
          std::string v = point_val(opts.seed, sent);
          w.pipeline({"SET", k, v});
          inflight.emplace_back(std::move(k), std::move(v));
          ++sent;
        }
        w.flush();
        const net::RespValue v = w.read_reply();
        if (v.is_error()) {
          return "primary rejected a write: " + v.str;
        }
        auto& done = inflight.front();
        acked.emplace(std::move(done.first), std::move(done.second));
        inflight.erase(inflight.begin());
        ++acks;
      }
    } catch (const std::exception&) {
      // The writer may race the kill below only if the primary dies on its
      // own — that is a failed point, not an oracle case.
      writer_died_early = true;
    }
    // Kill at the protocol event: the k-th acknowledgement has been read,
    // in-flight writes (sent, unacked) are still on the wire.
    pair.kill_primary();
  }
  if (writer_died_early) {
    return "primary connection died before the kill point (acks=" +
           std::to_string(acks) + ")";
  }

  const uint64_t applied = pair.promote_replica();
  if (!pair.replica_session().promoted()) {
    return "replica did not report promoted after PROMOTE";
  }

  net::Client r = make_client(pair.replica_port());
  std::string got;

  // 1. No acknowledged write may be lost or wrong.
  for (const auto& [k, v] : acked) {
    if (!r.get(k, &got)) {
      return "acked key lost after promotion: " + k +
             " (applied_seq=" + std::to_string(applied) + ")";
    }
    if (got != v) {
      return "acked key " + k + " has wrong value '" + got + "' (want '" + v +
             "')";
    }
  }
  // 2. In-flight writes surface complete or not at all — never torn.
  for (uint32_t i = acks; i < sent; ++i) {
    const std::string k = point_key(opts.seed, i);
    if (r.get(k, &got) && got != point_val(opts.seed, i)) {
      return "in-flight key " + k + " surfaced torn: '" + got + "'";
    }
  }
  // 3. No ghost writes: keys never sent must not exist.
  for (uint32_t i = sent; i < opts.writes; ++i) {
    if (r.get(point_key(opts.seed, i), &got)) {
      return "ghost key after promotion: " + point_key(opts.seed, i);
    }
  }
  // 4. Item count bounded by [acked, sent].
  const int64_t items = r.dbsize();
  if (items < static_cast<int64_t>(acked.size()) ||
      items > static_cast<int64_t>(sent)) {
    return "promoted dbsize " + std::to_string(items) + " outside [" +
           std::to_string(acked.size()) + ", " + std::to_string(sent) + "]";
  }
  // 5. The survivor is writable.
  const net::RespValue w2 = r.command({"SET", "post-promote", "pp"});
  if (w2.is_error()) {
    return "promoted node rejected a write: " + w2.str;
  }
  if (!r.get("post-promote", &got) || got != "pp") {
    return "post-promotion write not readable";
  }
  return "";
}

SweepResult sweep_failover(uint32_t writes, uint32_t stride, uint64_t seed,
                           const PairOptions& pair) {
  SweepResult res;
  if (stride == 0) stride = 1;
  for (uint32_t k = 1; k < writes; k += stride) {
    PointOptions p;
    p.writes = writes;
    p.kill_after_acks = k;
    p.seed = seed + k;
    p.pair = pair;
    const std::string msg = run_failover_point(p);
    ++res.points;
    if (!msg.empty()) {
      ++res.failures;
      res.messages.push_back("kill_after_acks=" + std::to_string(k) + ": " +
                             msg);
    }
  }
  return res;
}

}  // namespace hdnh::failover
