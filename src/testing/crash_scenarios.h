// Crash-point scenario library shared by the sweep tool and the crash tests.
//
// A Scenario is a deterministic workload over a fresh HDNH table whose
// durability-event stream (see nvm/fault.h) is a pure function of
// (scenario, seed): only the foreground thread emits persist/fence events
// (background writers are DRAM-only, resize_threads=1 rehashes inline), so
// every crash point is reproducible from the (scenario, event_index, seed)
// triple alone.
//
// The sweep protocol for one point:
//   1. build the environment and run the scenario's setup (plan disarmed);
//   2. arm a FaultPlan{crash_at = k, mask = scenario mask} and run the
//      scenario ops (or, for crash-during-recovery scenarios, run stage A
//      to produce a crashed image first and arm the plan across recovery);
//   3. if InjectedCrash fired: assert no background request is in flight,
//      then reattach — fresh allocator (volatile free lists die with the
//      crash) and fresh table over the rolled-back media image;
//   4. run the durability oracle: deep integrity, recovered state equals
//      the model of acknowledged ops modulo the single in-flight op (which
//      may surface entirely-old or entirely-new, never torn), no ghost or
//      duplicate records.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hdnh/hdnh.h"
#include "nvm/alloc.h"
#include "nvm/fault.h"
#include "nvm/pmem.h"
#include "store/sharded_table.h"
#include "vkv/vkv_store.h"

namespace hdnh::crashtest {

// The single operation that may be in flight when a crash fires. The oracle
// accepts either the pre-op or the post-op state for it — anything else
// (torn value, lost pre-existing key) is a durability hole.
struct PendingOp {
  enum Kind { kNone, kInsert, kUpdate, kErase };
  Kind kind = kNone;
  uint64_t id = 0;
  uint64_t old_vid = 0;  // acknowledged value before the op (update/erase)
  uint64_t new_vid = 0;  // value the op was installing (insert/update)
};

// Pool + allocator + table + model-of-acknowledged-ops for one sweep point.
struct ScenarioEnv {
  std::unique_ptr<nvm::PmemPool> pool;
  std::unique_ptr<nvm::PmemAllocator> alloc;
  std::unique_ptr<Hdnh> table;
  std::map<uint64_t, uint64_t> model;  // id -> value id, acknowledged ops only
  PendingOp pending;
  HdnhConfig cfg;

  // Model-tracked operations: mark the op pending, run it, and fold it into
  // the model only once acknowledged. If the table throws (InjectedCrash),
  // `pending` keeps the in-flight op for the oracle.
  bool ins(uint64_t id, uint64_t vid);
  bool upd(uint64_t id, uint64_t vid);
  bool del(uint64_t id);

  // Post-crash reattach: abandon the dead table object, then rebuild the
  // allocator (a real crash loses its volatile free lists too — a stale
  // list could re-hand-out a block the rolled-back image still references)
  // and construct a fresh table, which runs recovery.
  void crash_reattach();
};

struct Scenario {
  const char* name;
  const char* what;  // one-line description for --list
  // FaultPlan mask for the swept stage (kFaultAnyKind, or a phase subset
  // such as kFaultRehash to put every point inside one mechanism).
  uint32_t mask;
  // True for crash-during-recovery scenarios: stage_a produces a crashed
  // media image, and the swept stage is the *recovery* reattach itself.
  bool sweep_recovery;
  HdnhConfig (*config)();
  uint64_t pool_bytes;
  void (*setup)(ScenarioEnv&, uint64_t seed);    // plan disarmed (may be null)
  void (*ops)(ScenarioEnv&, uint64_t seed);      // swept stage (normal scenarios)
  void (*stage_a)(ScenarioEnv&, uint64_t seed);  // pre-crash stage (recovery scenarios)
};

const std::vector<Scenario>& scenarios();
const Scenario* find_scenario(const std::string& name);

// Builds the environment and runs setup (and stage_a for recovery
// scenarios happens inside probe/run, not here).
ScenarioEnv make_env(const Scenario& s, uint64_t seed);

// Counts the swept stage's durability events without crashing (FaultPlan
// probe mode): the sweep enumerates crash points 0 .. probe_events()-1.
uint64_t probe_events(const Scenario& s, uint64_t seed);

struct PointResult {
  bool crashed = false;   // the plan fired (crash_at < event count)
  uint64_t events = 0;    // events observed before return/crash
  std::string failure;    // empty = oracle passed
};

// Runs one crash point end-to-end (setup, armed ops, reattach, oracle).
// evict_lines > 0 additionally evicts that many random cachelines to media
// every 7th event and at the crash itself (adversarial writeback).
PointResult run_crash_point(const Scenario& s, uint64_t seed,
                            uint64_t crash_at, uint64_t evict_lines);

// The durability oracle; returns "" on pass, else a description of the
// violation. Folds env.pending into the model (old or new state accepted).
std::string check_oracle(ScenarioEnv& env);

// ---------------------------------------------------------------------------
// Value-log (VkvStore) crash scenarios.
//
// Same sweep protocol as above, over the variable-length store: the swept
// events are the value log's tagged durability points (kFaultVkvAppend /
// kFaultVkvSeal / kFaultVkvGc, see nvm/fault.h). The oracle is the value
// log's durability contract: acknowledged values are never lost or torn
// (a record's bytes are durable before its handle is published), a torn
// tail is detected by checksum and discarded on recovery, and a crash at
// any point of a GC pass leaves every acknowledged key readable (relocation
// republishes through the index's crash-atomic update before the victim is
// retired).
// ---------------------------------------------------------------------------

// The single vkv operation that may be in flight at the crash.
struct VkvPendingOp {
  enum Kind { kNone, kPut, kErase };
  Kind kind = kNone;
  std::string key;
  std::string old_value;  // acknowledged value before the op (if had_old)
  std::string new_value;  // value a put was installing
  bool had_old = false;
};

struct VkvScenarioEnv {
  std::unique_ptr<nvm::PmemPool> pool;
  std::unique_ptr<nvm::PmemAllocator> alloc;
  std::unique_ptr<vkv::VkvStore> store;
  std::map<std::string, std::string> model;  // acknowledged ops only
  VkvPendingOp pending;
  vkv::VkvStore::Options opts;
  uint64_t chunk_bytes = 0;  // nonzero = allocator runs in chunked mode

  // Model-tracked operations (see ScenarioEnv::ins/upd/del).
  bool put(const std::string& key, const std::string& value);
  bool del(const std::string& key);

  void crash_reattach();
};

struct VkvScenario {
  const char* name;
  const char* what;
  uint32_t mask;  // FaultPlan mask (the kFaultVkv* / kFaultAllocChunk bits)
  vkv::VkvStore::Options (*options)();
  uint64_t pool_bytes;
  void (*setup)(VkvScenarioEnv&, uint64_t seed);  // plan disarmed (may be null)
  void (*ops)(VkvScenarioEnv&, uint64_t seed);    // swept stage
  // Nonzero: enable chunked allocation (chunks of this size) before the
  // store is built, so segment allocations and chunk-claim persists are
  // part of the swept event stream.
  uint64_t chunk_bytes = 0;
};

const std::vector<VkvScenario>& vkv_scenarios();
const VkvScenario* find_vkv_scenario(const std::string& name);

VkvScenarioEnv make_vkv_env(const VkvScenario& s, uint64_t seed);
uint64_t probe_vkv_events(const VkvScenario& s, uint64_t seed);
PointResult run_vkv_crash_point(const VkvScenario& s, uint64_t seed,
                                uint64_t crash_at, uint64_t evict_lines);
std::string check_vkv_oracle(VkvScenarioEnv& env);

// ---------------------------------------------------------------------------
// Sharded store (online shard split) crash scenarios.
//
// Same sweep protocol over the ShardedTable facade: the swept events are
// the split machine's kFaultShardSplit-tagged durability points — the
// begin_split marker, the target region reset and format, every migration
// persist, the directory publish flip, and the post-publish cleanup
// erases. The oracle is the split's durability contract: recovery lands
// on the pre-split directory (target reset for reuse) or the fully
// published one (cleanup finished, idempotently re-run by attach), every
// acknowledged key readable with its value through the facade at either
// epoch, no ghost or duplicate record in any region.
// ---------------------------------------------------------------------------

struct StoreScenarioEnv {
  std::unique_ptr<nvm::PmemPool> pool;
  std::unique_ptr<nvm::PmemAllocator> alloc;
  std::unique_ptr<store::ShardedTable> table;
  std::map<uint64_t, uint64_t> model;  // id -> value id, acknowledged only
  PendingOp pending;
  HdnhConfig cfg;
  uint32_t initial_shards = 2;
  uint32_t max_shards = 4;

  // Model-tracked operations (see ScenarioEnv::ins/upd/del).
  bool ins(uint64_t id, uint64_t vid);
  bool upd(uint64_t id, uint64_t vid);
  bool del(uint64_t id);

  // (Re)build layout + inner tables + facade over the current pool image.
  // On a post-crash image the facade constructor replays the split tail.
  void build();
  void crash_reattach();
};

struct StoreScenario {
  const char* name;
  const char* what;
  uint32_t mask;  // kFaultShardSplit for the split family
  uint64_t pool_bytes;
  void (*setup)(StoreScenarioEnv&, uint64_t seed);  // plan disarmed
  void (*ops)(StoreScenarioEnv&, uint64_t seed);    // swept stage
};

const std::vector<StoreScenario>& store_scenarios();
const StoreScenario* find_store_scenario(const std::string& name);

StoreScenarioEnv make_store_env(const StoreScenario& s, uint64_t seed);
uint64_t probe_store_events(const StoreScenario& s, uint64_t seed);
PointResult run_store_crash_point(const StoreScenario& s, uint64_t seed,
                                  uint64_t crash_at, uint64_t evict_lines);
std::string check_store_oracle(StoreScenarioEnv& env);

}  // namespace hdnh::crashtest
