#include "testing/crash_scenarios.h"

#include <cstring>
#include <stdexcept>

namespace hdnh::crashtest {

// ---------------------------------------------------------------------------
// ScenarioEnv
// ---------------------------------------------------------------------------

bool ScenarioEnv::ins(uint64_t id, uint64_t vid) {
  pending = {PendingOp::kInsert, id, 0, vid};
  const bool ok = table->insert(make_key(id), make_value(vid));
  pending.kind = PendingOp::kNone;
  if (ok) model[id] = vid;
  return ok;
}

bool ScenarioEnv::upd(uint64_t id, uint64_t vid) {
  const auto it = model.find(id);
  pending = {PendingOp::kUpdate, id, it == model.end() ? 0 : it->second, vid};
  const bool ok = table->update(make_key(id), make_value(vid));
  pending.kind = PendingOp::kNone;
  if (ok) model[id] = vid;
  return ok;
}

bool ScenarioEnv::del(uint64_t id) {
  const auto it = model.find(id);
  pending = {PendingOp::kErase, id, it == model.end() ? 0 : it->second, 0};
  const bool ok = table->erase(make_key(id));
  pending.kind = PendingOp::kNone;
  if (ok) model.erase(id);
  return ok;
}

void ScenarioEnv::crash_reattach() {
  if (table) {
    table->abandon_after_crash();
    table.reset();
  }
  alloc = std::make_unique<nvm::PmemAllocator>(*pool);
  table = std::make_unique<Hdnh>(*alloc, cfg);
}

// ---------------------------------------------------------------------------
// Scenario workloads. Key ids are salted with the seed so placement (and
// therefore which buckets fill, which inserts move keys, which updates go
// cross-bucket) varies across seeds while staying fully deterministic for
// any one (scenario, seed).
// ---------------------------------------------------------------------------

namespace {

uint64_t base_id(uint64_t seed) { return (seed & 0xFFFFull) << 32; }

HdnhConfig cfg_cap(uint64_t cap) {
  HdnhConfig cfg;
  cfg.initial_capacity = cap;
  cfg.segment_bytes = 4 * 1024;
  return cfg;
}

HdnhConfig cfg_mid() { return cfg_cap(2048); }    // ~3072 slots
HdnhConfig cfg_small() { return cfg_cap(256); }   // ~384 slots, resizes fast
HdnhConfig cfg_bg() {
  HdnhConfig cfg = cfg_cap(2048);
  cfg.sync_mode = HdnhConfig::SyncMode::kBackground;
  cfg.bg_workers = 2;
  return cfg;
}

void preload(ScenarioEnv& env, uint64_t seed, uint64_t n) {
  const uint64_t b = base_id(seed);
  for (uint64_t i = 1; i <= n; ++i) {
    if (!env.ins(b + i, i)) throw std::runtime_error("preload insert failed");
  }
}

void setup_mid(ScenarioEnv& env, uint64_t seed) { preload(env, seed, 1200); }
void setup_small(ScenarioEnv& env, uint64_t seed) { preload(env, seed, 250); }
void setup_bg(ScenarioEnv& env, uint64_t seed) { preload(env, seed, 600); }
// Dense enough that some buckets are full, so updates exercise the
// cross-bucket (update-log) path, not just the same-bucket two-bit flip.
void setup_dense(ScenarioEnv& env, uint64_t seed) { preload(env, seed, 1800); }

void ops_insert(ScenarioEnv& env, uint64_t seed) {
  const uint64_t b = base_id(seed);
  for (uint64_t i = 0; i < 32; ++i) env.ins(b + 500000 + i, 500000 + i);
}

void ops_update(ScenarioEnv& env, uint64_t seed) {
  const uint64_t b = base_id(seed);
  for (uint64_t i = 0; i < 24; ++i) {
    env.upd(b + 1 + (i * 53) % 1800, 900000 + i);
  }
}

void ops_erase(ScenarioEnv& env, uint64_t seed) {
  const uint64_t b = base_id(seed);
  for (uint64_t i = 0; i < 24; ++i) env.del(b + 1 + (i * 97) % 1200);
}

// Insert until a resize fires; the resize (level swap + old-bottom-level
// drain) runs inside the ins() call whose claim found all candidates full.
void ops_fill_to_resize(ScenarioEnv& env, uint64_t seed) {
  const uint64_t b = base_id(seed);
  const uint64_t before = env.table->resize_count();
  for (uint64_t i = 0; env.table->resize_count() == before; ++i) {
    if (i > 20000) throw std::runtime_error("resize never triggered");
    env.ins(b + 700000 + i, 700000 + i);
  }
}

void ops_bg_mix(ScenarioEnv& env, uint64_t seed) {
  const uint64_t b = base_id(seed);
  for (uint64_t i = 0; i < 16; ++i) env.ins(b + 500000 + i, 500000 + i);
  for (uint64_t i = 0; i < 8; ++i) env.upd(b + 1 + (i * 67) % 600, 910000 + i);
  for (uint64_t i = 0; i < 8; ++i) env.del(b + 1 + (i * 41) % 600);
}

// Stage A for crash-during-recovery (resumed resize): crash partway through
// the rehash drain, leaving media with level_number=3 and a batch-granular
// rehash_progress high-water mark. The swept stage is the recovery that
// must resume (and survive a second crash at any of its own events).
void stage_a_resize(ScenarioEnv& env, uint64_t seed) {
  nvm::FaultPlan plan;
  plan.mask = nvm::kFaultRehash;
  plan.crash_at = 25;
  plan.seed = seed;
  env.pool->set_fault_plan(&plan);
  bool crashed = false;
  try {
    ops_fill_to_resize(env, seed);
  } catch (const nvm::InjectedCrash&) {
    crashed = true;
  }
  env.pool->set_fault_plan(nullptr);
  if (!crashed) throw std::runtime_error("stage A rehash crash never fired");
}

// Stage A for crash-during-recovery (log replay): crash exactly when a
// cross-bucket update's log entry is armed — new record persisted, both
// validity bits still in the pre-op state — so recovery must complete the
// two-bit flip by replaying the log (idempotently, at every crash point).
void stage_a_replay(ScenarioEnv& env, uint64_t seed) {
  env.table->test_hook = [&env](const char* pt) {
    if (std::strcmp(pt, "update-log-armed") == 0) {
      env.pool->simulate_crash();
      throw nvm::InjectedCrash();
    }
  };
  const uint64_t b = base_id(seed);
  for (uint64_t i = 0; i < 1800; ++i) {
    try {
      env.upd(b + 1 + (i * 37) % 1800, 940000 + i);
    } catch (const nvm::InjectedCrash&) {
      return;  // env.pending still holds the in-flight update
    }
  }
  throw std::runtime_error("no cross-bucket update occurred");
}

const std::vector<Scenario>& scenario_table() {
  static const std::vector<Scenario> kScenarios = {
      {"insert", "fresh inserts with OCF claim/publish movement",
       nvm::kFaultAnyKind, false, cfg_mid, 32ull << 20, setup_mid, ops_insert,
       nullptr},
      {"update", "out-of-place updates: same-bucket and logged cross-bucket",
       nvm::kFaultAnyKind, false, cfg_mid, 32ull << 20, setup_dense,
       ops_update, nullptr},
      {"erase", "erases (single validity-bit retirement)", nvm::kFaultAnyKind,
       false, cfg_mid, 32ull << 20, setup_mid, ops_erase, nullptr},
      {"rehash", "old-bottom-level drain during resize",
       nvm::kFaultRehash, false, cfg_small, 8ull << 20, setup_small,
       ops_fill_to_resize, nullptr},
      {"resize-swap", "resize level-swap and finish protocol",
       nvm::kFaultResizeSwap | nvm::kFaultResizeFinish, false, cfg_small,
       8ull << 20, setup_small, ops_fill_to_resize, nullptr},
      {"bg-flush", "mixed ops with background hot-table mirroring",
       nvm::kFaultAnyKind, false, cfg_bg, 32ull << 20, setup_bg, ops_bg_mix,
       nullptr},
      {"recovery-resize", "crash during recovery of a mid-rehash image",
       nvm::kFaultRecovery, true, cfg_small, 8ull << 20, setup_small, nullptr,
       stage_a_resize},
      {"recovery-replay", "crash during recovery of an armed-update-log image",
       nvm::kFaultRecovery, true, cfg_mid, 32ull << 20, setup_dense, nullptr,
       stage_a_replay},
  };
  return kScenarios;
}

}  // namespace

const std::vector<Scenario>& scenarios() { return scenario_table(); }

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& s : scenarios()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Sweep driver
// ---------------------------------------------------------------------------

ScenarioEnv make_env(const Scenario& s, uint64_t seed) {
  ScenarioEnv env;
  env.cfg = s.config();
  env.pool = std::make_unique<nvm::PmemPool>(s.pool_bytes);
  env.pool->enable_crash_sim();
  env.alloc = std::make_unique<nvm::PmemAllocator>(*env.pool);
  env.table = std::make_unique<Hdnh>(*env.alloc, env.cfg);
  if (s.setup) s.setup(env, seed);
  return env;
}

uint64_t probe_events(const Scenario& s, uint64_t seed) {
  ScenarioEnv env = make_env(s, seed);
  nvm::FaultPlan plan;  // crash_at = kNever: count only
  plan.mask = s.mask;
  plan.seed = seed;
  if (s.sweep_recovery) {
    s.stage_a(env, seed);
    env.pool->set_fault_plan(&plan);
    env.crash_reattach();
  } else {
    env.pool->set_fault_plan(&plan);
    s.ops(env, seed);
  }
  env.pool->set_fault_plan(nullptr);
  return plan.events();
}

PointResult run_crash_point(const Scenario& s, uint64_t seed,
                            uint64_t crash_at, uint64_t evict_lines) {
  ScenarioEnv env = make_env(s, seed);
  PointResult r;

  nvm::FaultPlan plan;
  plan.crash_at = crash_at;
  plan.mask = s.mask;
  plan.seed = seed ^ (crash_at * 0x9E3779B97F4A7C15ull);
  if (evict_lines != 0) {
    plan.evict_every = 7;
    plan.evict_lines = evict_lines;
    plan.evict_lines_at_crash = evict_lines;
  }

  if (s.sweep_recovery) {
    s.stage_a(env, seed);
    env.pool->set_fault_plan(&plan);
    try {
      env.crash_reattach();  // the swept stage: recovery itself
    } catch (const nvm::InjectedCrash&) {
      r.crashed = true;
    }
  } else {
    env.pool->set_fault_plan(&plan);
    try {
      s.ops(env, seed);
    } catch (const nvm::InjectedCrash&) {
      r.crashed = true;
    }
  }
  env.pool->set_fault_plan(nullptr);
  r.events = plan.events();

  if (r.crashed) {
    // No background worker may still hold a pointer to an unwound stack
    // signal: the queue must have drained before the exception escaped.
    if (env.table && env.table->bg_queue_depth() != 0) {
      r.failure = "background queue non-empty after injected crash";
      return r;
    }
    env.crash_reattach();
  }
  r.failure = check_oracle(env);
  return r;
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

std::string check_oracle(ScenarioEnv& env) {
  Hdnh& t = *env.table;

  const auto rep = t.check_integrity();
  if (!rep.ok()) {
    return "deep integrity failed: ocf=" +
           std::to_string(rep.ocf_valid_mismatches) +
           " fp=" + std::to_string(rep.fingerprint_mismatches) +
           " busy=" + std::to_string(rep.stuck_busy_entries) +
           " dup=" + std::to_string(rep.duplicate_keys) +
           " hot=" + std::to_string(rep.hot_table_stale) +
           " log=" + std::to_string(rep.armed_log_entries);
  }

  // Fold the single in-flight op into the model: entirely-old or
  // entirely-new state is acceptable, anything torn is not.
  const PendingOp p = env.pending;
  env.pending.kind = PendingOp::kNone;
  if (p.kind != PendingOp::kNone) {
    Value v{};
    const bool found = t.search(make_key(p.id), &v);
    switch (p.kind) {
      case PendingOp::kInsert:
        if (found) {
          if (!(v == make_value(p.new_vid))) {
            return "torn in-flight insert for id " + std::to_string(p.id);
          }
          env.model[p.id] = p.new_vid;
        }
        break;
      case PendingOp::kUpdate: {
        const auto it = env.model.find(p.id);
        if (it == env.model.end()) {
          if (found) return "update of absent key materialized a record";
          break;
        }
        if (!found) {
          return "in-flight update lost key " + std::to_string(p.id);
        }
        if (v == make_value(p.new_vid)) {
          it->second = p.new_vid;
        } else if (!(v == make_value(it->second))) {
          return "torn in-flight update for id " + std::to_string(p.id);
        }
        break;
      }
      case PendingOp::kErase: {
        const auto it = env.model.find(p.id);
        if (it == env.model.end()) {
          if (found) return "erase of absent key materialized a record";
          break;
        }
        if (found) {
          if (!(v == make_value(it->second))) {
            return "torn in-flight erase for id " + std::to_string(p.id);
          }
        } else {
          env.model.erase(it);
        }
        break;
      }
      case PendingOp::kNone:
        break;
    }
  }

  if (t.size() != env.model.size()) {
    return "size mismatch: table=" + std::to_string(t.size()) +
           " model=" + std::to_string(env.model.size());
  }
  for (const auto& [id, vid] : env.model) {
    Value v{};
    if (!t.search(make_key(id), &v)) {
      return "acknowledged key missing: id " + std::to_string(id);
    }
    if (!(v == make_value(vid))) {
      return "acknowledged value wrong: id " + std::to_string(id);
    }
  }

  // Ghost/duplicate scan: every live record must be an acknowledged one.
  std::string err;
  uint64_t live = 0;
  t.for_each([&](const KVPair& kv) {
    ++live;
    if (!err.empty()) return;
    const uint64_t id = key_id(kv.key);
    const auto it = env.model.find(id);
    if (it == env.model.end()) {
      err = "ghost record: id " + std::to_string(id);
    } else if (!(kv.value == make_value(it->second))) {
      err = "ghost value: id " + std::to_string(id);
    }
  });
  if (!err.empty()) return err;
  if (live != env.model.size()) {
    return "live-record count mismatch: scanned " + std::to_string(live) +
           " model " + std::to_string(env.model.size());
  }
  return "";
}

// ---------------------------------------------------------------------------
// Value-log (VkvStore) scenarios
// ---------------------------------------------------------------------------

bool VkvScenarioEnv::put(const std::string& key, const std::string& value) {
  const auto it = model.find(key);
  pending.kind = VkvPendingOp::kPut;
  pending.key = key;
  pending.new_value = value;
  pending.had_old = it != model.end();
  pending.old_value = pending.had_old ? it->second : std::string();
  const bool ok = store->put(key, value).ok();
  pending.kind = VkvPendingOp::kNone;
  if (ok) model[key] = value;
  return ok;
}

bool VkvScenarioEnv::del(const std::string& key) {
  const auto it = model.find(key);
  pending.kind = VkvPendingOp::kErase;
  pending.key = key;
  pending.new_value.clear();
  pending.had_old = it != model.end();
  pending.old_value = pending.had_old ? it->second : std::string();
  const bool ok = store->erase(key).ok();
  pending.kind = VkvPendingOp::kNone;
  if (ok) model.erase(key);
  return ok;
}

void VkvScenarioEnv::crash_reattach() {
  if (store) {
    store->abandon_after_crash();
    store.reset();
  }
  alloc = std::make_unique<nvm::PmemAllocator>(*pool);
  store = std::make_unique<vkv::VkvStore>(*alloc, opts);
}

namespace {

std::string vkv_key(uint64_t seed, uint64_t i) {
  return "key" + std::to_string(seed & 0xFF) + "_" + std::to_string(i);
}

// Deterministic value of exactly `len` bytes, distinct per (seed, i, tag).
std::string vkv_val(uint64_t seed, uint64_t i, char tag, size_t len) {
  std::string v;
  v += tag;
  v += std::to_string(seed & 0xFFFF);
  v += '_';
  v += std::to_string(i);
  if (v.size() > len) {
    v.resize(len);
    return v;
  }
  while (v.size() < len) {
    v += static_cast<char>('a' + (i + v.size()) % 26);
  }
  return v;
}

vkv::VkvStore::Options vopts_mixed() {
  vkv::VkvStore::Options o;
  o.expected_records = 4096;
  o.log_bytes = 8ull << 20;
  o.segment_bytes = 32 * 1024;
  o.auto_gc = false;  // GC events belong to the vkv_gc sweep only
  return o;
}

vkv::VkvStore::Options vopts_tiny_segments() {
  vkv::VkvStore::Options o;
  o.expected_records = 4096;
  o.log_bytes = 4ull << 20;
  o.segment_bytes = 4 * 1024;  // ~5 records of 700 B per segment
  o.auto_gc = false;
  return o;
}

// Mixed sizes: inline (<= 14 B, no log record at all), small, and
// multi-KiB log records.
constexpr size_t kVkvSizes[] = {8, 14, 60, 300, 2000};

void setup_vkv_mixed(VkvScenarioEnv& env, uint64_t seed) {
  for (uint64_t i = 0; i < 24; ++i) {
    const size_t len = kVkvSizes[i % (sizeof(kVkvSizes) / sizeof(*kVkvSizes))];
    if (!env.put(vkv_key(seed, i), vkv_val(seed, i, 'p', len))) {
      throw std::runtime_error("vkv setup put failed");
    }
  }
}

void ops_vkv_append(VkvScenarioEnv& env, uint64_t seed) {
  // New keys, overwrites (inline->log and log->log), erases: every append
  // crash point with a different pre-state.
  for (uint64_t i = 0; i < 12; ++i) {
    const size_t len = kVkvSizes[(i + 2) % (sizeof(kVkvSizes) / sizeof(*kVkvSizes))];
    env.put(vkv_key(seed, 100 + i), vkv_val(seed, 100 + i, 'n', len));
  }
  for (uint64_t i = 0; i < 8; ++i) {
    env.put(vkv_key(seed, (i * 5) % 24), vkv_val(seed, i, 'o', 200));
  }
  for (uint64_t i = 0; i < 6; ++i) {
    env.del(vkv_key(seed, (i * 7) % 24));
  }
}

void setup_vkv_seal(VkvScenarioEnv& env, uint64_t seed) {
  for (uint64_t i = 0; i < 5; ++i) {
    if (!env.put(vkv_key(seed, i), vkv_val(seed, i, 'p', 700))) {
      throw std::runtime_error("vkv setup put failed");
    }
  }
}

void ops_vkv_seal(VkvScenarioEnv& env, uint64_t seed) {
  // 700 B records through 4 KiB segments: every ~5th put seals the active
  // segment and activates a fresh one, so the sweep lands inside the
  // seal/activate directory transitions.
  for (uint64_t i = 0; i < 30; ++i) {
    env.put(vkv_key(seed, 200 + i), vkv_val(seed, 200 + i, 's', 700));
  }
}

void setup_vkv_gc(VkvScenarioEnv& env, uint64_t seed) {
  // ~20 tiny segments of 700 B records, then overwrite two of every three
  // keys: each early segment ends up mostly-dead but still holds live
  // records, so the armed GC pass must *relocate* (append + republish)
  // before it can retire a victim — the crash points land inside that
  // move, not just the trivially-free fully-dead case.
  for (uint64_t i = 0; i < 60; ++i) {
    if (!env.put(vkv_key(seed, i), vkv_val(seed, i, 'p', 700))) {
      throw std::runtime_error("vkv setup put failed");
    }
  }
  for (uint64_t i = 0; i < 60; ++i) {
    if (i % 3 == 0) continue;  // keep every third original record live
    if (!env.put(vkv_key(seed, i), vkv_val(seed, i, 'q', 700))) {
      throw std::runtime_error("vkv setup overwrite failed");
    }
  }
}

void ops_vkv_gc(VkvScenarioEnv& env, uint64_t seed) {
  // The swept stage is the GC pass itself: victim relocation appends, the
  // index republish of each moved handle, and the retire transition all
  // carry the kFaultVkvGc scope bit. The trailing puts verify the store
  // keeps working after (a crash during) GC.
  env.store->gc(/*max_segments=*/16, /*min_dead_fraction=*/0.05);
  for (uint64_t i = 0; i < 4; ++i) {
    env.put(vkv_key(seed, 300 + i), vkv_val(seed, 300 + i, 'g', 700));
  }
}

const std::vector<VkvScenario>& vkv_scenario_table() {
  static const std::vector<VkvScenario> kScenarios = {
      {"vkv_append",
       "value-log appends: mixed-size puts, overwrites, erases (torn records)",
       nvm::kFaultVkvAppend, vopts_mixed, 64ull << 20, setup_vkv_mixed,
       ops_vkv_append},
      {"vkv_seal",
       "segment seal/activate directory transitions under tiny segments",
       nvm::kFaultVkvSeal, vopts_tiny_segments, 64ull << 20, setup_vkv_seal,
       ops_vkv_seal},
      {"vkv_gc",
       "crash during concurrent GC: relocation, republish, segment retire",
       nvm::kFaultVkvGc, vopts_tiny_segments, 64ull << 20, setup_vkv_gc,
       ops_vkv_gc},
      // Chunked allocator under the value log: 4 KiB segments over 4 KiB
      // chunks, so every segment activation claims a fresh chunk from the
      // persisted chunk table. The sweep lands between a chunk-claim
      // persist and the first record persisted into it (claim must never
      // hand out a chunk the media image still shows free *and* in use),
      // and inside seal/append transitions whose segment lives in a
      // freshly claimed chunk.
      {"vkv_chunked",
       "chunk-table claims interleaved with value-log appends and seals",
       nvm::kFaultAllocChunk | nvm::kFaultVkvAppend | nvm::kFaultVkvSeal,
       vopts_tiny_segments, 64ull << 20, setup_vkv_seal, ops_vkv_seal,
       /*chunk_bytes=*/4 * 1024},
  };
  return kScenarios;
}

}  // namespace

const std::vector<VkvScenario>& vkv_scenarios() { return vkv_scenario_table(); }

const VkvScenario* find_vkv_scenario(const std::string& name) {
  for (const VkvScenario& s : vkv_scenarios()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

VkvScenarioEnv make_vkv_env(const VkvScenario& s, uint64_t seed) {
  VkvScenarioEnv env;
  env.opts = s.options();
  env.chunk_bytes = s.chunk_bytes;
  env.pool = std::make_unique<nvm::PmemPool>(s.pool_bytes);
  env.pool->enable_crash_sim();
  env.alloc = std::make_unique<nvm::PmemAllocator>(*env.pool);
  if (env.chunk_bytes != 0) {
    nvm::PmemAllocator::ChunkConfig cc;
    cc.chunk_bytes = env.chunk_bytes;
    env.alloc->enable_chunked(cc);
  }
  env.store = std::make_unique<vkv::VkvStore>(*env.alloc, env.opts);
  if (s.setup) s.setup(env, seed);
  return env;
}

uint64_t probe_vkv_events(const VkvScenario& s, uint64_t seed) {
  VkvScenarioEnv env = make_vkv_env(s, seed);
  nvm::FaultPlan plan;  // crash_at = kNever: count only
  plan.mask = s.mask;
  plan.seed = seed;
  env.pool->set_fault_plan(&plan);
  s.ops(env, seed);
  env.pool->set_fault_plan(nullptr);
  return plan.events();
}

PointResult run_vkv_crash_point(const VkvScenario& s, uint64_t seed,
                                uint64_t crash_at, uint64_t evict_lines) {
  VkvScenarioEnv env = make_vkv_env(s, seed);
  PointResult r;

  nvm::FaultPlan plan;
  plan.crash_at = crash_at;
  plan.mask = s.mask;
  plan.seed = seed ^ (crash_at * 0x9E3779B97F4A7C15ull);
  if (evict_lines != 0) {
    plan.evict_every = 7;
    plan.evict_lines = evict_lines;
    plan.evict_lines_at_crash = evict_lines;
  }

  env.pool->set_fault_plan(&plan);
  try {
    s.ops(env, seed);
  } catch (const nvm::InjectedCrash&) {
    r.crashed = true;
  }
  env.pool->set_fault_plan(nullptr);
  r.events = plan.events();

  if (r.crashed) env.crash_reattach();
  r.failure = check_vkv_oracle(env);
  return r;
}

std::string check_vkv_oracle(VkvScenarioEnv& env) {
  vkv::VkvStore& st = *env.store;
  if (!st.check_index_integrity()) return "index deep integrity failed";

  // Fold the single in-flight op: entirely-old or entirely-new state is
  // acceptable, a torn or lost value is a durability hole. A torn log
  // record can never surface as a value at all — the per-record CRC fails
  // and the recovery scan discards it — so "torn" here would mean the
  // index published a handle before its bytes were durable.
  const VkvPendingOp p = env.pending;
  env.pending.kind = VkvPendingOp::kNone;
  if (p.kind != VkvPendingOp::kNone) {
    std::string v;
    const Status s = st.get(p.key, &v);
    if (!s.ok() && s.code() != StatusCode::kNotFound) {
      return "get of in-flight key failed: " + s.to_string();
    }
    const bool found = s.ok();
    if (p.kind == VkvPendingOp::kPut) {
      if (found) {
        if (v == p.new_value) {
          env.model[p.key] = p.new_value;
        } else if (!(p.had_old && v == p.old_value)) {
          return "torn in-flight put for key " + p.key;
        }
      } else if (p.had_old) {
        return "in-flight put lost key " + p.key;
      }
    } else {  // kErase
      if (found) {
        if (!(p.had_old && v == p.old_value)) {
          return "torn in-flight erase for key " + p.key;
        }
      } else if (p.had_old) {
        env.model.erase(p.key);
      }
    }
  }

  if (st.size() != env.model.size()) {
    return "size mismatch: store=" + std::to_string(st.size()) +
           " model=" + std::to_string(env.model.size());
  }
  for (const auto& [k, v] : env.model) {
    std::string got;
    const Status s = st.get(k, &got);
    if (!s.ok()) {
      return "acknowledged key missing: " + k + " (" + s.to_string() + ")";
    }
    if (got != v) return "acknowledged value wrong or torn: " + k;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Sharded store (online shard split) scenarios
// ---------------------------------------------------------------------------

bool StoreScenarioEnv::ins(uint64_t id, uint64_t vid) {
  pending = {PendingOp::kInsert, id, 0, vid};
  const bool ok = table->insert(make_key(id), make_value(vid));
  pending.kind = PendingOp::kNone;
  if (ok) model[id] = vid;
  return ok;
}

bool StoreScenarioEnv::upd(uint64_t id, uint64_t vid) {
  const auto it = model.find(id);
  pending = {PendingOp::kUpdate, id, it == model.end() ? 0 : it->second, vid};
  const bool ok = table->update(make_key(id), make_value(vid));
  pending.kind = PendingOp::kNone;
  if (ok) model[id] = vid;
  return ok;
}

bool StoreScenarioEnv::del(uint64_t id) {
  const auto it = model.find(id);
  pending = {PendingOp::kErase, id, it == model.end() ? 0 : it->second, 0};
  const bool ok = table->erase(make_key(id));
  pending.kind = PendingOp::kNone;
  if (ok) model.erase(id);
  return ok;
}

void StoreScenarioEnv::build() {
  alloc = std::make_unique<nvm::PmemAllocator>(*pool);
  auto layout = std::make_unique<nvm::ShardedPmemLayout>(
      *alloc, initial_shards, 0, nvm::ShardedPmemLayout::kShardMapRoot,
      max_shards);
  const uint32_t n = layout->shards();
  std::vector<std::unique_ptr<HashTable>> inners;
  inners.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    inners.push_back(std::make_unique<Hdnh>(layout->shard_alloc(s), cfg));
  }
  store::ShardedTable::ShardFactory factory =
      [cfg = cfg](nvm::PmemAllocator& a) -> std::unique_ptr<HashTable> {
    return std::make_unique<Hdnh>(a, cfg);
  };
  table = std::make_unique<store::ShardedTable>(
      std::move(layout), std::move(inners), "HDNH@" + std::to_string(n),
      std::move(factory));
}

void StoreScenarioEnv::crash_reattach() {
  if (table) {
    table->abandon_after_crash();
    table.reset();
  }
  build();  // rebuilds the allocator too; attach replays the split tail
}

namespace {

void store_setup_split(StoreScenarioEnv& env, uint64_t seed) {
  const uint64_t b = base_id(seed);
  for (uint64_t i = 1; i <= 700; ++i) {
    if (!env.ins(b + i, i)) throw std::runtime_error("preload insert failed");
  }
  // A few erases so the migrated half contains holes the cleanup must not
  // resurrect.
  for (uint64_t i = 0; i < 40; ++i) env.del(b + 1 + (i * 37) % 700);
}

// The swept stage: one full online split of shard 0 — begin marker, target
// region format, every migration persist, the directory flip, the cleanup
// erases. All its durability events carry kFaultShardSplit, so the mask
// puts every crash point inside the split machine.
void store_ops_split(StoreScenarioEnv& env, uint64_t seed) {
  (void)seed;
  const Status s = env.table->split_shard(0);
  if (!s.ok()) throw std::runtime_error("split refused: " + s.to_string());
}

const std::vector<StoreScenario>& store_scenario_table() {
  static const std::vector<StoreScenario> kScenarios = {
      {"shard_split",
       "online shard split: marker, migration, directory flip, cleanup",
       nvm::kFaultShardSplit, 24ull << 20, store_setup_split,
       store_ops_split},
  };
  return kScenarios;
}

}  // namespace

const std::vector<StoreScenario>& store_scenarios() {
  return store_scenario_table();
}

const StoreScenario* find_store_scenario(const std::string& name) {
  for (const StoreScenario& s : store_scenarios()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

StoreScenarioEnv make_store_env(const StoreScenario& s, uint64_t seed) {
  StoreScenarioEnv env;
  env.cfg = cfg_cap(2048);
  env.pool = std::make_unique<nvm::PmemPool>(s.pool_bytes);
  env.pool->enable_crash_sim();
  env.build();
  if (s.setup) s.setup(env, seed);
  return env;
}

uint64_t probe_store_events(const StoreScenario& s, uint64_t seed) {
  StoreScenarioEnv env = make_store_env(s, seed);
  nvm::FaultPlan plan;  // crash_at = kNever: count only
  plan.mask = s.mask;
  plan.seed = seed;
  env.pool->set_fault_plan(&plan);
  s.ops(env, seed);
  env.pool->set_fault_plan(nullptr);
  return plan.events();
}

PointResult run_store_crash_point(const StoreScenario& s, uint64_t seed,
                                  uint64_t crash_at, uint64_t evict_lines) {
  StoreScenarioEnv env = make_store_env(s, seed);
  PointResult r;

  nvm::FaultPlan plan;
  plan.crash_at = crash_at;
  plan.mask = s.mask;
  plan.seed = seed ^ (crash_at * 0x9E3779B97F4A7C15ull);
  if (evict_lines != 0) {
    plan.evict_every = 7;
    plan.evict_lines = evict_lines;
    plan.evict_lines_at_crash = evict_lines;
  }

  env.pool->set_fault_plan(&plan);
  try {
    s.ops(env, seed);
  } catch (const nvm::InjectedCrash&) {
    r.crashed = true;
  }
  env.pool->set_fault_plan(nullptr);
  r.events = plan.events();

  if (r.crashed) env.crash_reattach();
  r.failure = check_store_oracle(env);
  return r;
}

std::string check_store_oracle(StoreScenarioEnv& env) {
  store::ShardedTable& t = *env.table;

  // Recovery must land on pre-split or fully-published: never a dangling
  // split marker, never a shard count outside {initial, initial + 1}.
  if (t.layout().split_in_progress()) {
    return "split marker still set after recovery";
  }
  const uint32_t n = t.shards();
  if (n != env.initial_shards && n != env.initial_shards + 1) {
    return "recovered shard count " + std::to_string(n) +
           " outside {pre-split, published}";
  }

  const auto rep = t.check_integrity();
  if (!rep.ok()) {
    return "deep integrity failed: ocf=" +
           std::to_string(rep.ocf_valid_mismatches) +
           " fp=" + std::to_string(rep.fingerprint_mismatches) +
           " busy=" + std::to_string(rep.stuck_busy_entries) +
           " dup=" + std::to_string(rep.duplicate_keys) +
           " hot=" + std::to_string(rep.hot_table_stale) +
           " log=" + std::to_string(rep.armed_log_entries);
  }

  // The split scenario has no user op in flight at the crash (the swept
  // stage is the split machine itself), so the model is exact.
  if (env.pending.kind != PendingOp::kNone) {
    return "unexpected in-flight user op during split sweep";
  }
  if (t.size() != env.model.size()) {
    return "size mismatch: table=" + std::to_string(t.size()) +
           " model=" + std::to_string(env.model.size());
  }
  for (const auto& [id, vid] : env.model) {
    Value v{};
    if (!t.search(make_key(id), &v)) {
      return "acknowledged key missing: id " + std::to_string(id);
    }
    if (!(v == make_value(vid))) {
      return "acknowledged value wrong: id " + std::to_string(id);
    }
  }

  // Ghost/duplicate scan across every region, and routing consistency:
  // each live record must sit in the shard the directory routes it to.
  std::string err;
  uint64_t live = 0;
  t.for_each([&](const KVPair& kv) {
    ++live;
    if (!err.empty()) return;
    const uint64_t id = key_id(kv.key);
    const auto it = env.model.find(id);
    if (it == env.model.end()) {
      err = "ghost record: id " + std::to_string(id);
    } else if (!(kv.value == make_value(it->second))) {
      err = "ghost value: id " + std::to_string(id);
    }
  });
  if (!err.empty()) return err;
  if (live != env.model.size()) {
    return "live-record count mismatch: scanned " + std::to_string(live) +
           " model " + std::to_string(env.model.size());
  }
  return "";
}

}  // namespace hdnh::crashtest
