// Failover harness: a primary+replica pair in one process, a pipelined
// writer killed mid-stream, and an acknowledged-op oracle on the promoted
// survivor (docs/crash_testing.md "Failover sweep").
//
// The sweep protocol for one point:
//   1. build a Pair — two servers on ephemeral loopback ports, the
//      replica's feed attached to the primary's ReplLog — and wait for the
//      sink to attach (writes appended before the attach would be refused
//      on a wrapped ring, never silently skipped);
//   2. run a pipelined writer against the primary (depth-D in flight,
//      fresh keys) and kill the primary the instant the k-th ack is read —
//      server stopped, replication log torn down, every socket closed —
//      leaving up to D-1 writes in flight;
//   3. PROMOTE the replica over the wire (seals the stream, replays the
//      delivered tail, flips writable) and run the oracle against it:
//      every acknowledged key present with its exact value (ship-before-ack
//      means a lost one is a real durability hole, not a race), every
//      in-flight key absent-or-complete (never torn), no ghost keys beyond
//      what was sent, and the promoted node accepts a fresh write.
//
// Each point is deterministic given (writes, kill_after_acks, seed): keys
// and values are derived from the seed, and the kill trigger is the ack
// count — a protocol event — not a timer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/kv_store.h"

namespace hdnh {
class HashTable;
namespace nvm {
class PmemPool;
class PmemAllocator;
}  // namespace nvm
namespace net {
class Server;
class ReplLog;
class ReplicaSession;
}  // namespace net
}  // namespace hdnh

namespace hdnh::failover {

struct PairOptions {
  std::string scheme = "hdnh@2";
  uint64_t capacity = 1 << 14;
  uint32_t threads = 2;           // reactors per server
  uint32_t recv_timeout_ms = 200; // replica feed deadline (promote speed)
  // Effectively no mid-stream REPLACK: an ack racing the primary's death
  // can RST the connection and discard kernel-buffered stream data the
  // oracle is owed — progress acks resume once the pair is stable.
  uint32_t ack_every = 1u << 20;
};

// One pool/store/server per role, wired primary -> replica. Servers run
// from construction; the replica is read-only until promote_replica().
class Pair {
 public:
  explicit Pair(const PairOptions& opts = {});
  ~Pair();
  Pair(const Pair&) = delete;
  Pair& operator=(const Pair&) = delete;

  uint16_t primary_port() const;
  uint16_t replica_port() const;

  // True once the replica's feed is attached as a ReplLog sink (writes
  // before that would race the attach).
  bool wait_for_sink(uint32_t timeout_ms = 5000);

  // The primary dies: server stopped, log (and every sink socket) torn
  // down. Bytes already handed to the kernel still reach the replica —
  // that is the ship-before-ack guarantee under test. Idempotent.
  void kill_primary();

  // PROMOTE over the wire; returns the applied seq the replica reported.
  uint64_t promote_replica();

  net::ReplicaSession& replica_session() { return *session_; }
  net::ReplLog& repl_log() { return *log_; }

 private:
  struct Node;
  std::unique_ptr<Node> primary_;
  std::unique_ptr<Node> replica_;
  std::unique_ptr<net::ReplLog> log_;
  std::unique_ptr<net::ReplicaSession> session_;
  bool primary_dead_ = false;
};

struct PointOptions {
  uint32_t writes = 64;          // total SETs the writer will attempt
  uint32_t depth = 8;            // pipelined writes in flight
  uint32_t kill_after_acks = 1;  // kill the primary after this many acks
  uint64_t seed = 42;
  PairOptions pair;
};

// Run one kill point end to end. Returns "" on pass, else a one-line
// failure description (first violation found).
std::string run_failover_point(const PointOptions& opts);

struct SweepResult {
  uint32_t points = 0;
  uint32_t failures = 0;
  std::vector<std::string> messages;  // one per failed point
};

// Sweep kill_after_acks = 1, 1+stride, ... <= writes-1: the primary dies
// at every acknowledgement event in the stream.
SweepResult sweep_failover(uint32_t writes, uint32_t stride, uint64_t seed,
                           const PairOptions& pair = {});

}  // namespace hdnh::failover
