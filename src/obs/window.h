// Time-windowed aggregation over the per-op counters and latency
// histograms — the live load signal the lifetime counters in obs/metrics.h
// cannot provide ("which shard is hot *right now*", "what was p99 over the
// last few seconds", "did the hot-table hit ratio just collapse").
//
// Design (merge-on-rotate, lock-free recording):
//
//   * Each recording thread owns an atomic counter block (relaxed ops, no
//     cross-thread RMW contention: one writer per block) holding the
//     *current epoch's* per-op counts and — while latency capture is on —
//     per-op atomic bucket arrays sharing common/histogram.h's bucket
//     mapping.
//   * Windows::rotate() (called by obs::Aggregator on a fixed tick, or
//     manually by tests/tools) closes the current epoch: it drains every
//     thread block (atomic exchange-to-zero per field, so recording never
//     pauses), folds the result into one Epoch record together with the
//     nvm::Stats delta accrued since the previous rotation, and pushes it
//     onto a ring of the last kEpochs completed epochs.
//   * Windows::snapshot(n) merges the most recent n completed epochs into
//     plain counters/Histograms — per-window op rates and windowed
//     p50/p99/p999 fall out. An idle window has count 0 and percentile 0:
//     lifetime totals never bleed through.
//
// A record racing a rotation lands in either the closing or the next epoch
// (never lost, never double-counted): windows are a telemetry signal, not
// an accounting ledger, and that smear is bounded by one operation.
//
// Per-shard heat rides the same rotation: a ShardHeat (registered by
// ShardedTable, one slot per shard) accumulates op counts and latency sums
// into shared relaxed-atomic counters that rotate() drains into a per-shard
// epoch ring, yielding windowed per-shard op rates and mean latency.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "nvm/stats.h"

namespace hdnh::obs {

enum class Op : uint32_t;  // obs/metrics.h
inline constexpr uint32_t kWindowOpCount = 6;  // == obs::kOpCount

// Atomic histogram sharing Histogram's bucket mapping. One writer thread
// (relaxed adds), drained by rotate() with exchange-to-zero.
class AtomicHistogram {
 public:
  void record(uint64_t v) {
    counts_[Histogram::index_for(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // Max via CAS (rare after warm-up); min is derived from the lowest
    // non-empty bucket at drain time.
    uint64_t m = max_.load(std::memory_order_relaxed);
    while (v > m &&
           !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
    }
  }

  bool idle() const { return count_.load(std::memory_order_relaxed) == 0; }

  // Exchange every field to zero, folding the drained totals into `out`.
  void drain_into(Histogram* out);

 private:
  std::array<std::atomic<uint64_t>, Histogram::kBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// Per-shard heat accumulator. Shared counters (not per-thread): a relaxed
// fetch_add per op is noise next to an emulated-NVM probe, and it keeps the
// footprint independent of thread count.
class ShardHeat {
 public:
  static constexpr uint32_t kEpochs = 8;

  struct Window {
    uint64_t ops = 0;
    uint64_t lat_sum_ns = 0;   // 0 when latency capture was off
    uint64_t lat_count = 0;    // ops that carried a latency sample
  };

  // Registers with the window registry; label is the Prometheus label body
  // identifying the owning store (e.g. store="hdnh@4"). `capacity` slots
  // are allocated up front (the sharded store's split headroom); `live`
  // says how many currently serve — set_live() grows it when a split
  // publishes, so serializers never race a reallocation.
  ShardHeat(uint32_t capacity, std::string label, uint32_t live = 0);
  ~ShardHeat();

  ShardHeat(const ShardHeat&) = delete;
  ShardHeat& operator=(const ShardHeat&) = delete;

  void record(uint32_t shard, uint64_t lat_ns, uint64_t ops = 1) {
    Cell& c = cur_[shard];
    c.ops.fetch_add(ops, std::memory_order_relaxed);
    if (lat_ns) {
      c.lat_sum.fetch_add(lat_ns, std::memory_order_relaxed);
      c.lat_count.fetch_add(ops, std::memory_order_relaxed);
    }
  }

  // Shards currently live (window() and the serializers report this many).
  uint32_t shards() const { return live_.load(std::memory_order_acquire); }
  uint32_t capacity() const { return static_cast<uint32_t>(cur_.size()); }
  // Grow (never shrink) the live count after a split publishes.
  void set_live(uint32_t live);
  const std::string& label() const { return label_; }

  // Merge of the completed-epoch ring (newest kEpochs rotations), per shard.
  std::vector<Window> window() const;

 private:
  friend class Windows;
  struct Cell {
    std::atomic<uint64_t> ops{0};
    std::atomic<uint64_t> lat_sum{0};
    std::atomic<uint64_t> lat_count{0};
  };
  // Called by Windows::rotate() under the window registry lock.
  void rotate_locked();

  std::string label_;
  std::atomic<uint32_t> live_{0};
  std::vector<Cell> cur_;
  // ring_[shard][slot]; head_ is the next slot to overwrite.
  std::vector<std::array<Window, kEpochs>> ring_;
  uint32_t head_ = 0;
  uint32_t filled_ = 0;
};

class Windows {
 public:
  // Completed epochs retained; at the aggregator's default 1 s tick the
  // full ring is an 8-second rolling window.
  static constexpr uint32_t kEpochs = 8;

  // ---- hot path ---------------------------------------------------------

  static void count(Op op, uint64_t n = 1) {
    local().counts[static_cast<uint32_t>(op)].fetch_add(
        n, std::memory_order_relaxed);
  }
  static void record_latency(Op op, uint64_t ns);

  // ---- rotation (Aggregator tick / tests / tools) -----------------------

  // Close the current epoch: drain thread blocks and shard heats, capture
  // the nvm::Stats delta, push onto the ring.
  static void rotate();
  // rotate() only if the current epoch is older than max_age_ns (serves
  // scrapers in processes that never started an Aggregator). Returns
  // whether it rotated.
  static bool rotate_if_stale(uint64_t max_age_ns);
  // Completed rotations since start (monotone).
  static uint64_t rotations();
  // Test support: discard all completed epochs and pending per-thread
  // accumulation. Requires quiescence of recorded operations.
  static void reset();

  // ---- scrape -----------------------------------------------------------

  struct Snapshot {
    uint64_t window_ns = 0;  // wall time the merged epochs cover
    uint32_t epochs = 0;     // completed epochs merged
    std::array<uint64_t, kWindowOpCount> counts{};
    std::array<Histogram, kWindowOpCount> latency;
    nvm::StatsSnapshot nvm{};  // counter deltas accrued inside the window

    double rate(uint32_t op) const {
      return window_ns ? static_cast<double>(counts[op]) * 1e9 /
                             static_cast<double>(window_ns)
                       : 0.0;
    }
  };

  // Merge the most recent min(max_epochs, available) completed epochs.
  // The in-progress epoch is never included: an idle window reads zero.
  static void snapshot(uint32_t max_epochs, Snapshot* out);

  // Registered shard heats, for the serializers. The returned pointers stay
  // valid only while the owning stores live; serializers copy under the
  // registry lock via each heat's window().
  static void visit_heats(
      const std::function<void(const ShardHeat&)>& fn);

 private:
  friend class ShardHeat;
  struct ThreadBlock {
    std::array<std::atomic<uint64_t>, kWindowOpCount> counts{};
    // Lazily allocated on the first latency record (atomic: the rotating
    // thread dereferences it concurrently with the owner's lazy init).
    std::atomic<AtomicHistogram*> hist{nullptr};
  };
  struct Registry;
  static Registry& registry();
  static ThreadBlock& local();

  inline static thread_local ThreadBlock* tl_block_ = nullptr;
};

}  // namespace hdnh::obs
