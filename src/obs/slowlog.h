// SLOWLOG-style slow-operation capture: a fixed FIFO ring of the most
// recent operations whose latency exceeded a runtime threshold, each entry
// carrying enough context (op kind, 16 B key digest, shard, latency,
// monotonic timestamp) to chase the offender afterwards.
//
// Cost model: the hot path pays one relaxed atomic load (the threshold)
// and a compare; only operations actually over the threshold take the ring
// mutex. With the default 10 ms threshold that is never on the emulated-NVM
// fast path, so leaving the check on is free next to an op's own work.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace hdnh::obs {

class SlowLog {
 public:
  static constexpr uint32_t kCapacity = 128;
  static constexpr uint64_t kDefaultThresholdNs = 10'000'000;  // 10 ms

  struct Entry {
    uint64_t id = 0;          // monotone, never reused (RESET keeps counting)
    uint64_t ts_ns = 0;       // monotonic clock at completion
    uint64_t latency_ns = 0;
    Op op = Op::kGet;
    uint64_t d0 = 0;          // key digest halves (0/0 for keyless ops)
    uint64_t d1 = 0;
    uint32_t shard = 0;       // owning shard, 0 for unsharded stores
  };

  static uint64_t threshold_ns() {
    return threshold_ns_.load(std::memory_order_relaxed);
  }
  static void set_threshold_ns(uint64_t ns) {
    threshold_ns_.store(ns, std::memory_order_relaxed);
  }

  // Hot path: cheap reject, locked append only for genuinely slow ops.
  static void maybe_record(Op op, uint64_t latency_ns, uint64_t d0,
                           uint64_t d1, uint32_t shard) {
    if (latency_ns < threshold_ns()) return;
    record_slow(op, latency_ns, d0, d1, shard);
  }

  // Entries newest-first (SLOWLOG GET order).
  static std::vector<Entry> entries(uint32_t max = kCapacity);
  static uint64_t len();
  // Total entries ever admitted (monotone; survives reset()).
  static uint64_t total();
  static void reset();

 private:
  static void record_slow(Op op, uint64_t latency_ns, uint64_t d0,
                          uint64_t d1, uint32_t shard);
  struct Ring;
  static Ring& ring();

  inline static std::atomic<uint64_t> threshold_ns_{kDefaultThresholdNs};
};

}  // namespace hdnh::obs
