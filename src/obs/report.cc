#include "obs/report.h"

#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace hdnh::obs {

bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

PeriodicReporter::PeriodicReporter(Options opts) : opts_(std::move(opts)) {
  flush();
  thread_ = std::thread([this] { run(); });
}

PeriodicReporter::~PeriodicReporter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  flush();
}

void PeriodicReporter::flush() {
  if (!opts_.json_path.empty()) {
    write_file_atomic(opts_.json_path, Metrics::json());
  }
  if (!opts_.prom_path.empty()) {
    write_file_atomic(opts_.prom_path, Metrics::prometheus());
  }
}

void PeriodicReporter::run() {
  const auto interval = std::chrono::duration<double>(
      opts_.interval_s > 0 ? opts_.interval_s : 1.0);
  std::unique_lock<std::mutex> lock(mu_);
  while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
    lock.unlock();
    flush();
    lock.lock();
  }
}

}  // namespace hdnh::obs
