#include "obs/slowlog.h"

#include <algorithm>
#include <mutex>

#include "common/clock.h"

namespace hdnh::obs {

struct SlowLog::Ring {
  std::mutex mu;
  Entry entries[kCapacity];
  uint64_t next_id = 1;   // also the count of entries ever admitted + 1
  uint64_t base_id = 1;   // first id still considered live (reset() bumps)
};

SlowLog::Ring& SlowLog::ring() {
  static Ring* r = new Ring();  // leaked: outlives all threads
  return *r;
}

void SlowLog::record_slow(Op op, uint64_t latency_ns, uint64_t d0,
                          uint64_t d1, uint32_t shard) {
  const uint64_t ts = now_ns();
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  const uint64_t id = r.next_id++;
  Entry& e = r.entries[id % kCapacity];
  e.id = id;
  e.ts_ns = ts;
  e.latency_ns = latency_ns;
  e.op = op;
  e.d0 = d0;
  e.d1 = d1;
  e.shard = shard;
}

std::vector<SlowLog::Entry> SlowLog::entries(uint32_t max) {
  std::vector<Entry> out;
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  const uint64_t newest = r.next_id - 1;
  const uint64_t live =
      newest >= r.base_id ? newest - r.base_id + 1 : 0;
  const uint64_t n = std::min<uint64_t>({live, kCapacity, max});
  out.reserve(n);
  for (uint64_t k = 0; k < n; ++k) {
    out.push_back(r.entries[(newest - k) % kCapacity]);
  }
  return out;
}

uint64_t SlowLog::len() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  const uint64_t newest = r.next_id - 1;
  const uint64_t live = newest >= r.base_id ? newest - r.base_id + 1 : 0;
  return std::min<uint64_t>(live, kCapacity);
}

uint64_t SlowLog::total() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.next_id - 1;
}

void SlowLog::reset() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  r.base_id = r.next_id;  // ids stay monotone across resets, like Redis
}

}  // namespace hdnh::obs
