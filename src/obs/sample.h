// Per-operation sampling hook: the one RAII object an instrumented op site
// carries. On scope exit it fans a single observation out to every load
// signal (docs/observability.md):
//   * lifetime op counter             (obs/metrics.h, every op)
//   * current-epoch windowed counter  (obs/window.h, every op)
//   * hot-key heavy-hitter sketch     (obs/heavy_hitters.h, sampled)
//   * lifetime + windowed latency histograms, slow-op ring, per-shard heat
//                                     (sampled; one clock pair shared by
//                                      all four when the sample fires)
//
// Sampling is the load-bearing design decision here. A DRAM-resolved
// negative search is ~100 ns end to end; a clock pair alone is ~40 ns and
// a sketch probe ~20 ns, so timing every op would cost more than the op.
// Instead a per-thread tick counter deterministically selects 1-in-N ops
// (N a power of two): the latency path fires every kLatencyEvery-th op,
// the heavy-hitter probe every kHotkeyEvery-th key. Unsampled ops pay one
// thread-local increment and two predictable branches. Percentiles,
// rates, and top-k ranks are statistics over the stream, so sampling
// narrows them only by sqrt(N); the one real trade is that a slow op is
// only *caught* when it lands on a latency sample — a recurring slow-op
// class still surfaces within ~kLatencyEvery occurrences. Tests that
// need exhaustive capture call Sampling::set_*_every(1).
//
// The key is passed as a pointer to the 16 B inner-index Key (whose bytes
// are already a digest of the user key); nullptr for keyless/batched ops.
// `heat`/`shard` come from the owning ShardedTable via set_obs_heat();
// unsharded stores pass nullptr/0.
#pragma once

#include <atomic>
#include <cstring>

#include "common/clock.h"
#include "obs/heavy_hitters.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/window.h"

namespace hdnh::obs {

// Process-wide sampling periods, runtime-adjustable (rounded up to a power
// of two; 0 and 1 both mean "every op"). Defaults keep the measured
// NegativeSearch overhead of latency+hotkeys ON inside the 3% acceptance
// budget (bench/bench_obs_overhead.cc).
class Sampling {
 public:
  static constexpr uint32_t kLatencyEvery = 128;
  static constexpr uint32_t kHotkeyEvery = 64;

  static uint32_t latency_mask() {
    return latency_mask_.load(std::memory_order_relaxed);
  }
  static uint32_t hotkey_mask() {
    return hotkey_mask_.load(std::memory_order_relaxed);
  }
  static void set_latency_every(uint32_t n) {
    latency_mask_.store(to_mask(n), std::memory_order_relaxed);
  }
  static void set_hotkey_every(uint32_t n) {
    hotkey_mask_.store(to_mask(n), std::memory_order_relaxed);
  }

 private:
  static uint32_t to_mask(uint32_t n) {
    uint32_t pow2 = 1;
    while (pow2 < n && pow2 < (1u << 30)) pow2 <<= 1;
    return pow2 - 1;
  }
  inline static std::atomic<uint32_t> latency_mask_{kLatencyEvery - 1};
  inline static std::atomic<uint32_t> hotkey_mask_{kHotkeyEvery - 1};
};

// Per-thread op tick driving both sampling decisions (and record_hotkeys'
// per-key decision, so batched keys sample at the same rate as keyed ops).
inline thread_local uint32_t tl_op_tick = 0;

class OpSample {
 public:
  // `weight` is the per-shard heat op count (batched ops pass the batch
  // size so heat reflects keys served, not calls).
  OpSample(Op op, const void* key16, ShardHeat* heat, uint32_t shard,
           uint64_t weight = 1)
      : op_(op), key16_(key16), heat_(heat), shard_(shard), weight_(weight) {
    const uint32_t tick = ++tl_op_tick;
    if (Metrics::latency_enabled() &&
        (tick & Sampling::latency_mask()) == 0) {
      start_ = now_ns();
    }
    hh_ = key16 != nullptr && HeavyHitters::enabled() &&
          (tick & Sampling::hotkey_mask()) == 0;
  }

  ~OpSample() {
    Metrics::count_op(op_);
    Windows::count(op_);
    uint64_t d0 = 0, d1 = 0;
    if ((hh_ || start_ != 0) && key16_ != nullptr) {
      std::memcpy(&d0, key16_, 8);
      std::memcpy(&d1, static_cast<const char*>(key16_) + 8, 8);
    }
    if (hh_) HeavyHitters::record(d0, d1);
    if (start_ != 0) {
      const uint64_t lat = now_ns() - start_;
      Metrics::record_latency(op_, lat);
      Windows::record_latency(op_, lat);
      SlowLog::maybe_record(op_, lat, d0, d1, shard_);
      if (heat_ != nullptr) heat_->record(shard_, lat, weight_);
    } else if (heat_ != nullptr) {
      heat_->record(shard_, 0, weight_);
    }
  }

  OpSample(const OpSample&) = delete;
  OpSample& operator=(const OpSample&) = delete;

 private:
  Op op_;
  const void* key16_;
  ShardHeat* heat_;
  uint32_t shard_;
  uint64_t weight_;
  uint64_t start_ = 0;
  bool hh_ = false;
};

// Batched heavy-hitter recording: `keys16` points at n contiguous 16 B
// keys (the inner-index Key array a multiget carries). Each key advances
// the same per-thread tick an OpSample would, so a workload's sampling
// rate is identical whether its reads arrive one by one or batched.
inline void record_hotkeys(const void* keys16, size_t n) {
  if (!HeavyHitters::enabled()) return;
  const uint32_t mask = Sampling::hotkey_mask();
  const char* p = static_cast<const char*>(keys16);
  for (size_t i = 0; i < n; ++i, p += 16) {
    if ((++tl_op_tick & mask) != 0) continue;
    uint64_t d0, d1;
    std::memcpy(&d0, p, 8);
    std::memcpy(&d1, p + 8, 8);
    HeavyHitters::record(d0, d1);
  }
}

}  // namespace hdnh::obs

#if defined(HDNH_OBS)
#define HDNH_OBS_OP_SAMPLE(op, key16, heat, shard) \
  ::hdnh::obs::OpSample HDNH_OBS_CONCAT(obs_op_, __COUNTER__)( \
      op, key16, heat, shard)
#define HDNH_OBS_OP_SAMPLE_N(op, key16, heat, shard, n) \
  ::hdnh::obs::OpSample HDNH_OBS_CONCAT(obs_op_, __COUNTER__)( \
      op, key16, heat, shard, n)
#define HDNH_OBS_HOTKEYS(keys16, n) ::hdnh::obs::record_hotkeys(keys16, n)
#else
#define HDNH_OBS_OP_SAMPLE(op, key16, heat, shard) \
  do {                                             \
  } while (0)
#define HDNH_OBS_OP_SAMPLE_N(op, key16, heat, shard, n) \
  do {                                                  \
  } while (0)
#define HDNH_OBS_HOTKEYS(keys16, n) \
  do {                              \
  } while (0)
#endif
