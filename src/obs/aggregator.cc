#include "obs/aggregator.h"

#include <chrono>
#include <string>

#include "nvm/stats.h"
#include "obs/metrics.h"
#include "obs/window.h"

namespace hdnh::obs {

namespace {

void ewma_update(Aggregator::Options& opts, std::atomic<double>& cell,
                 bool& primed, double sample) {
  if (!primed) {
    cell.store(sample, std::memory_order_relaxed);
    primed = true;
    return;
  }
  const double prev = cell.load(std::memory_order_relaxed);
  cell.store(opts.ewma_alpha * sample + (1.0 - opts.ewma_alpha) * prev,
             std::memory_order_relaxed);
}

}  // namespace

Aggregator::Aggregator() : Aggregator(Options()) {}

Aggregator::Aggregator(Options opts) : opts_(opts) {
  rate_cells_.reserve(kOpCount);
  for (uint32_t i = 0; i < kOpCount; ++i) {
    rate_cells_.push_back(std::make_unique<Cell>());
    Cell* c = rate_cells_.back().get();
    gauge_ids_.push_back(Metrics::add_gauge(
        "hdnh_window_rate_ewma",
        "op=\"" + std::string(op_name(static_cast<Op>(i))) + "\"",
        "EWMA of per-epoch op rate (ops/s)",
        [c] { return c->value.load(std::memory_order_relaxed); }));
  }
  dimm_queue_cells_.reserve(nvm::kMaxDimms);
  dimm_stall_cells_.reserve(nvm::kMaxDimms);
  for (uint32_t d = 0; d < nvm::kMaxDimms; ++d) {
    dimm_queue_cells_.push_back(std::make_unique<Cell>());
    dimm_stall_cells_.push_back(std::make_unique<Cell>());
  }
  // Per-DIMM gauges are registered lazily on the first tick that sees
  // traffic on that DIMM, so single-DIMM runs don't scrape 16 zero series.
  if (opts_.interval_s > 0) {
    thread_ = std::thread([this] { run(); });
  }
}

Aggregator::~Aggregator() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  for (uint64_t id : gauge_ids_) Metrics::remove_gauge(id);
}

void Aggregator::run() {
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(opts_.interval_s));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    tick_now();
    lock.lock();
  }
}

void Aggregator::tick_now() {
  Windows::rotate();
  publish_from_last_epoch();
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

void Aggregator::publish_from_last_epoch() {
  Windows::Snapshot s;
  Windows::snapshot(1, &s);  // the epoch tick_now() just closed
  if (s.epochs == 0 || s.window_ns == 0) return;
  const double secs = static_cast<double>(s.window_ns) * 1e-9;

  for (uint32_t i = 0; i < kOpCount; ++i) {
    ewma_update(opts_, rate_cells_[i]->value, rate_cells_[i]->primed,
                static_cast<double>(s.counts[i]) / secs);
  }

  for (uint32_t d = 0; d < nvm::kMaxDimms; ++d) {
    const uint64_t stall =
        s.nvm.nvm_dimm_read_stall_ns[d] + s.nvm.nvm_dimm_write_stall_ns[d];
    const uint64_t queue = s.nvm.nvm_dimm_queue_depth[d];
    const bool touched = stall != 0 || queue != 0 ||
                         s.nvm.nvm_dimm_read_bytes[d] != 0 ||
                         s.nvm.nvm_dimm_write_bytes[d] != 0;
    Cell* qc = dimm_queue_cells_[d].get();
    Cell* sc = dimm_stall_cells_[d].get();
    if (!qc->primed && !touched) continue;  // idle DIMM: stay unregistered
    if (!qc->primed) {
      // First traffic on this DIMM: publish its gauges.
      const std::string label = "dimm=\"" + std::to_string(d) + "\"";
      gauge_ids_.push_back(Metrics::add_gauge(
          "hdnh_dimm_queue_depth_ewma", label,
          "EWMA of per-DIMM queued-requests accumulation (1/s)",
          [qc] { return qc->value.load(std::memory_order_relaxed); }));
      gauge_ids_.push_back(Metrics::add_gauge(
          "hdnh_dimm_stall_ns_ewma", label,
          "EWMA of per-DIMM bandwidth stall time (ns/s)",
          [sc] { return sc->value.load(std::memory_order_relaxed); }));
    }
    ewma_update(opts_, qc->value, qc->primed,
                static_cast<double>(queue) / secs);
    ewma_update(opts_, sc->value, sc->primed,
                static_cast<double>(stall) / secs);
  }
}

}  // namespace hdnh::obs
