// Umbrella header for the observability layer (docs/observability.md):
//   * obs/metrics.h       — metrics registry (counters, latency histograms,
//     gauges, Prometheus/JSON scrape) + HDNH_OBS_OP_SAMPLE/HDNH_OBS_COUNT
//   * obs/window.h        — time-windowed aggregation (rotating epochs,
//     windowed rates/percentiles, per-shard heat)
//   * obs/heavy_hitters.h — always-on hot-key top-k sketch
//   * obs/slowlog.h       — slow-operation capture ring
//   * obs/aggregator.h    — background rotation tick + EWMA gauges
//   * obs/trace.h         — event tracer (per-thread span rings, Chrome
//     trace_event dump) + HDNH_OBS_SPAN/HDNH_OBS_INSTANT
//   * obs/report.h        — periodic file reporter
//
// All instrumentation macros compile to nothing under -DHDNH_OBS=OFF;
// obs::kCompiledIn reflects the gate at runtime.
#pragma once

#include "obs/aggregator.h"
#include "obs/heavy_hitters.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "obs/window.h"
