// Umbrella header for the observability layer (docs/observability.md):
//   * obs/metrics.h — metrics registry (counters, latency histograms,
//     gauges, Prometheus/JSON scrape) + HDNH_OBS_OP_SCOPE/HDNH_OBS_COUNT
//   * obs/trace.h   — event tracer (per-thread span rings, Chrome
//     trace_event dump) + HDNH_OBS_SPAN/HDNH_OBS_INSTANT
//   * obs/report.h  — periodic file reporter
//
// All instrumentation macros compile to nothing under -DHDNH_OBS=OFF;
// obs::kCompiledIn reflects the gate at runtime.
#pragma once

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
