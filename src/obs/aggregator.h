// Background window rotation + derived EWMA gauges.
//
// An Aggregator owns the rotation cadence for obs/window.h: every
// interval_s it calls Windows::rotate() (closing the current epoch) and
// refreshes a set of EWMA gauges computed from the epoch just closed:
//
//   hdnh_window_rate_ewma{op=...}          smoothed ops/s per op kind
//   hdnh_dimm_queue_depth_ewma{dimm=...}   smoothed per-DIMM queue pressure
//   hdnh_dimm_stall_ns_ewma{dimm=...}      smoothed per-DIMM stall ns/s
//                                          (read + write stalls combined)
//
// The per-DIMM EWMAs are the divergence signal ROADMAP names for adaptive
// DIMM rebalancing; the rate EWMAs feed elastic resharding. Gauges are
// plain atomic<double> cells registered with Metrics::add_gauge, so every
// serializer (Prometheus, JSON, INFO, doctor) picks them up for free.
//
// Processes that never start an Aggregator (hdnh_doctor, one-shot tools)
// can call tick_now() manually, or rely on Windows::rotate_if_stale() at
// scrape time; interval_s <= 0 constructs without a thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hdnh::obs {

class Aggregator {
 public:
  struct Options {
    double interval_s = 1.0;   // <= 0: no background thread (manual ticks)
    double ewma_alpha = 0.3;   // weight of the newest epoch
  };

  Aggregator();  // default Options
  explicit Aggregator(Options opts);
  ~Aggregator();

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  // One rotation + gauge refresh, synchronously on the caller's thread.
  void tick_now();

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void run();
  void publish_from_last_epoch();

  Options opts_;
  std::atomic<uint64_t> ticks_{0};

  // EWMA cells read by the registered gauge callbacks.
  struct Cell {
    std::atomic<double> value{0.0};
    bool primed = false;  // first sample seeds the EWMA (aggregator thread only)
  };
  std::vector<std::unique_ptr<Cell>> rate_cells_;        // [kOpCount]
  std::vector<std::unique_ptr<Cell>> dimm_queue_cells_;  // [kMaxDimms]
  std::vector<std::unique_ptr<Cell>> dimm_stall_cells_;  // [kMaxDimms]
  std::vector<uint64_t> gauge_ids_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace hdnh::obs
