// Minimal streaming JSON writer used by the metrics serializers, the YCSB
// reporter, and hdnh_doctor --json. Produces strictly valid JSON (comma
// placement tracked by a container stack, strings escaped, non-finite
// doubles mapped to null); deliberately write-only — parsing/validation
// belongs to the consumers (python in CI, the test-side validator).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace hdnh::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  // Object member key; follow with exactly one value (or container).
  JsonWriter& key(const std::string& k) {
    comma();
    append_string(k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    comma();
    append_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(uint32_t v) { return value(static_cast<uint64_t>(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    if (!std::isfinite(v)) {
      out_ += "null";  // JSON has no inf/nan
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.10g", v);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& null() {
    comma();
    out_ += "null";
    return *this;
  }

  // Splice a pre-serialized JSON value verbatim (e.g. a nested document
  // produced by another serializer). The caller guarantees validity.
  JsonWriter& raw(const std::string& json) {
    comma();
    out_ += json;
    return *this;
  }

  template <typename T>
  JsonWriter& kv(const std::string& k, T v) {
    return key(k).value(v);
  }

  const std::string& str() const { return out_; }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    first_.push_back(true);
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    first_.pop_back();
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;  // value follows its key directly
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }
  void append_string(const std::string& s) {
    out_ += '"';
    for (const char ch : s) {
      switch (ch) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
            out_ += buf;
          } else {
            out_ += ch;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

}  // namespace hdnh::obs
