// Store-wide metrics registry: one scrape point unifying
//   * the emulated-NVM counters (nvm::Stats — reads/writes/fences, OCF
//     filtering, hot-table hits, prefetch overlap),
//   * per-operation counts and latency histograms (per-thread recording,
//     merge on scrape, common/histogram.h),
//   * live gauges registered by the components themselves (per-table
//     occupancy, resize phase, bg-writer backlog, shard count, ...),
//   * derived ratios the paper's claims are stated in (hot-table hit
//     ratio, OCF false-positive rate, overlapped-read fraction),
// exposed through both Prometheus text exposition and a JSON document.
//
// Hot-path cost model: counting an operation is a thread-local nonatomic
// increment; latency histograms are recorded only while
// set_latency_enabled(true) (one relaxed atomic load per op otherwise).
// Scrape-side work (merging thread blocks, walking gauges) happens only
// when a serializer is called. The instrumentation macros at the bottom
// compile to nothing when the HDNH_OBS gate is off.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/histogram.h"
#include "nvm/stats.h"
#include "obs/trace.h"
#include "obs/window.h"

namespace hdnh::obs {

// Operation kinds tracked by the registry. kMultiget counts batched calls;
// kMultigetKeys counts the keys those calls carried (the per-key
// denominator for hit-ratio math).
enum class Op : uint32_t {
  kGet = 0,
  kPut,
  kUpdate,
  kDelete,
  kMultiget,
  kMultigetKeys,
};
inline constexpr uint32_t kOpCount = 6;
static_assert(kOpCount == kWindowOpCount,
              "obs/window.h sizes its per-thread blocks off this");
const char* op_name(Op op);

class Metrics {
 public:
  struct OpSnapshot {
    uint64_t count = 0;
    Histogram latency;
  };

  // ---- hot path ---------------------------------------------------------

  static bool latency_enabled() {
    return latency_enabled_.load(std::memory_order_relaxed);
  }
  // Turn per-op latency histogram recording on/off (off by default; the
  // YCSB runner enables it for runs that request metrics output).
  static void set_latency_enabled(bool on) {
    latency_enabled_.store(on, std::memory_order_relaxed);
  }

  // Inline fast path: a constant-initialized thread_local pointer (no TLS
  // init guard on access) plus a nonatomic array bump. The slow branch
  // (first call on a thread) registers the block and caches the pointer.
  static void count_op(Op op, uint64_t n = 1) {
    ThreadBlock* b = tl_block_;
    if (b == nullptr) b = &local();
    b->counts[static_cast<uint32_t>(op)] += n;
  }
  static void record_latency(Op op, uint64_t ns);

  // ---- gauges -----------------------------------------------------------

  // Register a live gauge sampled at scrape time. `name` is the Prometheus
  // metric name (e.g. "hdnh_load_factor"), `labels` the label body without
  // braces (e.g. "table=\"0\"", may be empty). The callback must stay
  // callable until remove_gauge and must not re-enter the registry.
  // Returns a handle for remove_gauge.
  static uint64_t add_gauge(std::string name, std::string labels,
                            std::string help, std::function<double()> fn);
  static void remove_gauge(uint64_t id);

  // Monotone id used by components to label their per-instance gauges.
  static uint64_t next_instance_id();

  // ---- scrape -----------------------------------------------------------

  // Merged per-op counters/histograms since start (or reset_ops).
  static void op_snapshot(std::array<OpSnapshot, kOpCount>* out);

  // Prometheus text exposition format (counters, summaries, gauges).
  static std::string prometheus();
  // The same data as one JSON document:
  // {"nvm":{...},"ops":{...},"gauges":[...],"derived":{...}}.
  static std::string json();

  // Zero op counters and histograms. Requires quiescence of instrumented
  // operations (test harness / between benchmark phases); gauges and the
  // nvm::Stats counters are not touched (use nvm::Stats::reset()).
  static void reset_ops();

 private:
  struct ThreadBlock {
    std::array<uint64_t, kOpCount> counts{};
    std::unique_ptr<Histogram[]> hist;  // [kOpCount], lazily allocated
  };
  struct Registry;
  static Registry& registry();
  // Registers this thread's block (first call) and caches it in tl_block_.
  static ThreadBlock& local();

  // Blocks are owned by the (leaked) registry, so the cached pointer can
  // never dangle; constant initialization keeps the access guard-free.
  inline static thread_local ThreadBlock* tl_block_ = nullptr;
  inline static std::atomic<bool> latency_enabled_{false};
};

// RAII per-operation hook: bumps the op counter at scope exit and, when
// latency recording is enabled, times the scope into the op's histogram.
class OpTimer {
 public:
  explicit OpTimer(Op op)
      : op_(op), start_(Metrics::latency_enabled() ? now_ns() : 0) {}
  ~OpTimer() {
    Metrics::count_op(op_);
    if (start_) Metrics::record_latency(op_, now_ns() - start_);
  }
  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

 private:
  Op op_;
  uint64_t start_;
};

}  // namespace hdnh::obs

#if defined(HDNH_OBS)
#define HDNH_OBS_OP_SCOPE(op) \
  ::hdnh::obs::OpTimer HDNH_OBS_CONCAT(obs_op_, __COUNTER__)(op)
#define HDNH_OBS_COUNT(op, n)                  \
  do {                                         \
    ::hdnh::obs::Metrics::count_op(op, n);     \
    ::hdnh::obs::Windows::count(op, n);        \
  } while (0)
#else
#define HDNH_OBS_OP_SCOPE(op) \
  do {                        \
  } while (0)
#define HDNH_OBS_COUNT(op, n) \
  do {                        \
  } while (0)
#endif
