// Event tracer: lock-free per-thread span rings, dumped on demand as Chrome
// trace_event JSON (load the dump in chrome://tracing or Perfetto).
//
// Recording is designed for the store's *coarse* events — resize and its
// phases, segment rehash, background flush batches, update-log replay,
// recovery passes, crash simulation — not per-operation spans: a record is
// two clock reads plus a nonatomic store into the calling thread's own
// fixed-size ring, so leaving tracing enabled in production costs nothing
// measurable at those rates. Each thread owns its ring exclusively; the
// global registry mutex is taken only on first use per thread and on dump.
// Rings wrap, overwriting the oldest events (the per-ring `dropped` count
// is reported in the dump so truncation is never silent).
//
// Span names/categories must be string literals (or otherwise outlive the
// tracer): rings store the pointers, not copies.
//
// This header is intentionally header-only and depends only on common/ so
// the NVM emulator (a lower layer than the metrics registry) can record
// spans without a dependency cycle.
//
// Dumping and clearing assume quiescence of *tracing* activity (spans in
// flight on other threads may be partially visible); the store itself may
// keep serving traffic.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace hdnh::obs {

// True when the HDNH_OBS compile-time gate is on, i.e. the instrumentation
// macros below expand to real code. Tests use this to skip wiring checks in
// gated-out builds; the obs classes themselves are always available.
#if defined(HDNH_OBS)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

class Tracer {
 public:
  struct Event {
    const char* cat = nullptr;
    const char* name = nullptr;
    uint64_t start_ns = 0;
    uint64_t dur_ns = 0;
  };
  // Per-thread capacity. 4096 complete events cover thousands of resizes /
  // flush batches; older events are overwritten, newest always retained.
  static constexpr uint64_t kRingEvents = 4096;

  static bool enabled() {
    return state().enabled.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    state().enabled.store(on, std::memory_order_relaxed);
  }

  static void record(const char* cat, const char* name, uint64_t start_ns,
                     uint64_t dur_ns) {
    Ring& r = ring();
    r.ev[r.next % kRingEvents] = Event{cat, name, start_ns, dur_ns};
    r.next++;
  }

  // Zero-duration marker event.
  static void instant(const char* cat, const char* name) {
    record(cat, name, now_ns(), 0);
  }

  // Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...},...]}.
  // Timestamps are microseconds on the process monotonic clock.
  static std::string dump_json() {
    State& s = state();
    std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    std::lock_guard<std::mutex> lock(s.mu);
    bool first = true;
    char buf[256];
    for (const Ring* r : s.rings) {
      const uint64_t n = r->next;
      const uint64_t lo = n > kRingEvents ? n - kRingEvents : 0;
      for (uint64_t i = lo; i < n; ++i) {
        const Event& e = r->ev[i % kRingEvents];
        std::snprintf(buf, sizeof(buf),
                      "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                      "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                      first ? "" : ",", e.name, e.cat, r->tid,
                      static_cast<double>(e.start_ns) / 1e3,
                      static_cast<double>(e.dur_ns) / 1e3);
        out += buf;
        first = false;
      }
    }
    out += "],\"otherData\":{\"dropped_events\":";
    uint64_t dropped = 0;
    for (const Ring* r : s.rings) {
      if (r->next > kRingEvents) dropped += r->next - kRingEvents;
    }
    out += std::to_string(dropped);
    out += "}}";
    return out;
  }

  // Forget all recorded events (rings stay registered). Quiescence of
  // tracing activity assumed, as for dump_json().
  static void clear() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (Ring* r : s.rings) r->next = 0;
  }

  // Events currently retained across all rings (post-wrap), for tests.
  static uint64_t event_count() {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    uint64_t n = 0;
    for (const Ring* r : s.rings) n += std::min(r->next, kRingEvents);
    return n;
  }

 private:
  struct Ring {
    std::array<Event, kRingEvents> ev;
    uint64_t next = 0;  // monotone write index; ev[next % kRingEvents]
    uint32_t tid = 0;
  };
  struct State {
    std::atomic<bool> enabled{true};
    std::mutex mu;
    std::vector<Ring*> rings;  // leaked blocks: outlive their threads
    uint32_t next_tid = 1;
  };

  static State& state() {
    static State* s = new State();  // leaked: usable during any thread exit
    return *s;
  }

  static Ring& ring() {
    thread_local Ring* r = [] {
      auto* owned = new Ring();
      State& s = state();
      std::lock_guard<std::mutex> lock(s.mu);
      owned->tid = s.next_tid++;
      s.rings.push_back(owned);
      return owned;
    }();
    return *r;
  }
};

// RAII span: times its scope and records it at destruction. Skips the clock
// reads entirely while tracing is disabled.
class Span {
 public:
  Span(const char* cat, const char* name)
      : cat_(cat), name_(name), start_(Tracer::enabled() ? now_ns() : 0) {}
  ~Span() {
    if (start_) Tracer::record(cat_, name_, start_, now_ns() - start_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* cat_;
  const char* name_;
  uint64_t start_;
};

}  // namespace hdnh::obs

// Instrumentation macros: compile to nothing when the HDNH_OBS gate is off
// (cmake -DHDNH_OBS=OFF), so the hot path carries zero observability cost
// in gated-out builds.
#define HDNH_OBS_CONCAT_(a, b) a##b
#define HDNH_OBS_CONCAT(a, b) HDNH_OBS_CONCAT_(a, b)

#if defined(HDNH_OBS)
#define HDNH_OBS_SPAN(cat, name) \
  ::hdnh::obs::Span HDNH_OBS_CONCAT(obs_span_, __COUNTER__)(cat, name)
#define HDNH_OBS_INSTANT(cat, name) ::hdnh::obs::Tracer::instant(cat, name)
#else
#define HDNH_OBS_SPAN(cat, name) \
  do {                           \
  } while (0)
#define HDNH_OBS_INSTANT(cat, name) \
  do {                              \
  } while (0)
#endif
