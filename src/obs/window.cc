#include "obs/window.h"

#include <algorithm>
#include <mutex>

#include "common/clock.h"
#include "obs/metrics.h"

namespace hdnh::obs {

void AtomicHistogram::drain_into(Histogram* out) {
  const uint64_t c = count_.exchange(0, std::memory_order_relaxed);
  if (c == 0) return;
  const uint64_t s = sum_.exchange(0, std::memory_order_relaxed);
  const uint64_t mx = max_.exchange(0, std::memory_order_relaxed);
  uint64_t mn = mx;
  bool min_set = false;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (counts_[i].load(std::memory_order_relaxed) == 0) continue;
    const uint64_t n = counts_[i].exchange(0, std::memory_order_relaxed);
    if (n == 0) continue;
    if (!min_set) {
      mn = Histogram::value_for(i);
      min_set = true;
    }
    out->merge_bucket(i, n);
  }
  out->merge_summary(c, s, mx, mn);
}

// ---------------------------------------------------------------------------
// Registry: thread blocks, shard heats, and the completed-epoch ring
// ---------------------------------------------------------------------------

namespace {

struct Epoch {
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  std::array<uint64_t, kWindowOpCount> counts{};
  std::array<Histogram, kWindowOpCount> hist;
  nvm::StatsSnapshot nvm{};
};

}  // namespace

struct Windows::Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBlock>> blocks;
  std::vector<ShardHeat*> heats;
  // Ring of the last kEpochs completed epochs; head is the next overwrite.
  std::array<Epoch, kEpochs> ring;
  uint32_t head = 0;
  uint32_t filled = 0;
  uint64_t rotations = 0;
  uint64_t epoch_start_ns = 0;        // start of the in-progress epoch
  nvm::StatsSnapshot nvm_baseline{};  // nvm totals at the last rotation
  bool baseline_valid = false;
};

Windows::Registry& Windows::registry() {
  static Registry* r = new Registry();  // leaked: outlives all threads
  return *r;
}

Windows::ThreadBlock& Windows::local() {
  if (tl_block_ == nullptr) {
    auto owned = std::make_unique<ThreadBlock>();
    ThreadBlock* raw = owned.get();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.blocks.push_back(std::move(owned));
    tl_block_ = raw;
  }
  return *tl_block_;
}

void Windows::record_latency(Op op, uint64_t ns) {
  ThreadBlock& b = local();
  AtomicHistogram* h = b.hist.load(std::memory_order_acquire);
  if (h == nullptr) {
    h = new AtomicHistogram[kWindowOpCount];
    b.hist.store(h, std::memory_order_release);
  }
  h[static_cast<uint32_t>(op)].record(ns);
}

void Windows::rotate() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const uint64_t now = now_ns();
  Epoch& e = r.ring[r.head];
  e = Epoch{};
  e.start_ns = r.epoch_start_ns ? r.epoch_start_ns : now;
  e.end_ns = now;

  for (auto& b : r.blocks) {
    for (uint32_t i = 0; i < kWindowOpCount; ++i) {
      e.counts[i] += b->counts[i].exchange(0, std::memory_order_relaxed);
    }
    AtomicHistogram* h = b->hist.load(std::memory_order_acquire);
    if (h != nullptr) {
      for (uint32_t i = 0; i < kWindowOpCount; ++i) {
        if (!h[i].idle()) h[i].drain_into(&e.hist[i]);
      }
    }
  }

  // nvm::Stats delta since the previous rotation (the first rotation's
  // baseline is everything since process start, so recovery-time traffic
  // lands in the first window rather than vanishing).
  const nvm::StatsSnapshot total = nvm::Stats::snapshot();
  if (r.baseline_valid) {
    e.nvm = total;
    e.nvm -= r.nvm_baseline;
  } else {
    e.nvm = total;
  }
  r.nvm_baseline = total;
  r.baseline_valid = true;

  for (ShardHeat* h : r.heats) h->rotate_locked();

  r.head = (r.head + 1) % kEpochs;
  r.filled = std::min(r.filled + 1, kEpochs);
  r.rotations++;
  r.epoch_start_ns = now;
}

bool Windows::rotate_if_stale(uint64_t max_age_ns) {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (r.epoch_start_ns != 0 &&
        now_ns() - r.epoch_start_ns < max_age_ns) {
      return false;
    }
  }
  rotate();
  return true;
}

uint64_t Windows::rotations() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.rotations;
}

void Windows::reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& b : r.blocks) {
    for (auto& c : b->counts) c.store(0, std::memory_order_relaxed);
    AtomicHistogram* h = b->hist.load(std::memory_order_acquire);
    if (h != nullptr) {
      Histogram sink;
      for (uint32_t i = 0; i < kWindowOpCount; ++i) h[i].drain_into(&sink);
    }
  }
  for (Epoch& e : r.ring) e = Epoch{};
  r.head = 0;
  r.filled = 0;
  r.epoch_start_ns = now_ns();
  r.nvm_baseline = nvm::Stats::snapshot();
  r.baseline_valid = true;
  for (ShardHeat* h : r.heats) {
    for (auto& c : h->cur_) {
      c.ops.store(0, std::memory_order_relaxed);
      c.lat_sum.store(0, std::memory_order_relaxed);
      c.lat_count.store(0, std::memory_order_relaxed);
    }
    for (auto& ring : h->ring_) ring.fill(ShardHeat::Window{});
    h->head_ = 0;
    h->filled_ = 0;
  }
}

void Windows::snapshot(uint32_t max_epochs, Snapshot* out) {
  *out = Snapshot{};
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const uint32_t n = std::min(max_epochs, r.filled);
  for (uint32_t k = 0; k < n; ++k) {
    // Newest-first: head-1 is the most recently completed epoch.
    const uint32_t idx = (r.head + kEpochs - 1 - k) % kEpochs;
    const Epoch& e = r.ring[idx];
    out->window_ns += e.end_ns - e.start_ns;
    for (uint32_t i = 0; i < kWindowOpCount; ++i) {
      out->counts[i] += e.counts[i];
      out->latency[i].merge(e.hist[i]);
    }
    nvm::StatsSnapshot d = e.nvm;  // operator-= only; accumulate by hand
    out->nvm.nvm_read_ops += d.nvm_read_ops;
    out->nvm.nvm_read_blocks += d.nvm_read_blocks;
    out->nvm.nvm_write_ops += d.nvm_write_ops;
    out->nvm.nvm_write_lines += d.nvm_write_lines;
    out->nvm.fences += d.fences;
    out->nvm.dram_hot_hits += d.dram_hot_hits;
    out->nvm.ocf_filtered += d.ocf_filtered;
    out->nvm.ocf_false_positive += d.ocf_false_positive;
    out->nvm.lock_waits += d.lock_waits;
    out->nvm.nvm_prefetch_issued += d.nvm_prefetch_issued;
    out->nvm.nvm_read_blocks_overlapped += d.nvm_read_blocks_overlapped;
    out->nvm.nvm_read_blocks_stalled += d.nvm_read_blocks_stalled;
    out->nvm.fault_events += d.fault_events;
    out->nvm.fault_crashes += d.fault_crashes;
    for (uint32_t dd = 0; dd < nvm::kMaxDimms; ++dd) {
      out->nvm.nvm_dimm_read_bytes[dd] += d.nvm_dimm_read_bytes[dd];
      out->nvm.nvm_dimm_write_bytes[dd] += d.nvm_dimm_write_bytes[dd];
      out->nvm.nvm_dimm_read_stall_ns[dd] += d.nvm_dimm_read_stall_ns[dd];
      out->nvm.nvm_dimm_write_stall_ns[dd] += d.nvm_dimm_write_stall_ns[dd];
      out->nvm.nvm_dimm_queue_depth[dd] += d.nvm_dimm_queue_depth[dd];
    }
    out->nvm.alloc_chunks_claimed += d.alloc_chunks_claimed;
    out->nvm.alloc_chunk_bytes += d.alloc_chunk_bytes;
    out->nvm.alloc_shared_fallbacks += d.alloc_shared_fallbacks;
  }
  out->epochs = n;
}

void Windows::visit_heats(const std::function<void(const ShardHeat&)>& fn) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const ShardHeat* h : r.heats) fn(*h);
}

// ---------------------------------------------------------------------------
// ShardHeat
// ---------------------------------------------------------------------------

ShardHeat::ShardHeat(uint32_t capacity, std::string label, uint32_t live)
    : label_(std::move(label)), cur_(capacity), ring_(capacity) {
  live_.store(live == 0 ? capacity : std::min(live, capacity),
              std::memory_order_release);
  Windows::Registry& r = Windows::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.heats.push_back(this);
}

void ShardHeat::set_live(uint32_t live) {
  // Under the registry lock so neither a rotation nor a serializer sees
  // the count move mid-scan.
  Windows::Registry& r = Windows::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const uint32_t cap = static_cast<uint32_t>(cur_.size());
  if (live > cap) live = cap;
  if (live > live_.load(std::memory_order_relaxed)) {
    live_.store(live, std::memory_order_release);
  }
}

ShardHeat::~ShardHeat() {
  Windows::Registry& r = Windows::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.heats.erase(std::remove(r.heats.begin(), r.heats.end(), this),
                r.heats.end());
}

void ShardHeat::rotate_locked() {
  for (uint32_t s = 0; s < shards(); ++s) {
    Window& w = ring_[s][head_];
    w.ops = cur_[s].ops.exchange(0, std::memory_order_relaxed);
    w.lat_sum_ns = cur_[s].lat_sum.exchange(0, std::memory_order_relaxed);
    w.lat_count = cur_[s].lat_count.exchange(0, std::memory_order_relaxed);
  }
  head_ = (head_ + 1) % kEpochs;
  filled_ = std::min(filled_ + 1, kEpochs);
}

std::vector<ShardHeat::Window> ShardHeat::window() const {
  // Called under the window registry lock (visit_heats) or from the owning
  // store's scrape path; ring slots are only written under that same lock.
  std::vector<Window> out(shards());
  for (uint32_t s = 0; s < shards(); ++s) {
    for (uint32_t k = 0; k < filled_; ++k) {
      const Window& w = ring_[s][k];
      out[s].ops += w.ops;
      out[s].lat_sum_ns += w.lat_sum_ns;
      out[s].lat_count += w.lat_count;
    }
  }
  return out;
}

}  // namespace hdnh::obs
