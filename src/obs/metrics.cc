#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <vector>

#include "obs/heavy_hitters.h"
#include "obs/json.h"
#include "obs/slowlog.h"
#include "obs/window.h"

namespace hdnh::obs {

namespace {

// A scrape in a process that never started an obs::Aggregator still wants
// fresh windows: rotate when the in-progress epoch is older than this, so
// back-to-back scrapes see scrape-to-scrape windows. Processes with an
// Aggregator tick (1 s default) never trip it.
constexpr uint64_t kScrapeRotateNs = 2'000'000'000;

// Hot keys surfaced per scrape (HOTKEYS takes its own k).
constexpr uint32_t kScrapeHotkeys = 8;

double windowed_hot_hit_ratio(const Windows::Snapshot& s) {
  const double lookups = static_cast<double>(
      s.counts[static_cast<uint32_t>(Op::kGet)] +
      s.counts[static_cast<uint32_t>(Op::kMultigetKeys)]);
  return lookups > 0 ? static_cast<double>(s.nvm.dram_hot_hits) / lookups
                     : 0.0;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kGet: return "get";
    case Op::kPut: return "put";
    case Op::kUpdate: return "update";
    case Op::kDelete: return "delete";
    case Op::kMultiget: return "multiget";
    case Op::kMultigetKeys: return "multiget_keys";
  }
  return "unknown";
}

namespace {

struct GaugeEntry {
  std::string name;
  std::string labels;
  std::string help;
  std::function<double()> fn;
};

}  // namespace

struct Metrics::Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBlock>> blocks;
  std::map<uint64_t, GaugeEntry> gauges;
  uint64_t next_gauge_id = 1;
  std::atomic<uint64_t> next_instance{0};
};

Metrics::Registry& Metrics::registry() {
  static Registry* r = new Registry();  // leaked: outlives all threads
  return *r;
}

Metrics::ThreadBlock& Metrics::local() {
  if (tl_block_ == nullptr) {
    auto owned = std::make_unique<ThreadBlock>();
    ThreadBlock* raw = owned.get();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.blocks.push_back(std::move(owned));
    tl_block_ = raw;
  }
  return *tl_block_;
}

void Metrics::record_latency(Op op, uint64_t ns) {
  ThreadBlock& b = local();
  if (!b.hist) b.hist = std::make_unique<Histogram[]>(kOpCount);
  b.hist[static_cast<uint32_t>(op)].record(ns);
}

uint64_t Metrics::add_gauge(std::string name, std::string labels,
                            std::string help, std::function<double()> fn) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const uint64_t id = r.next_gauge_id++;
  r.gauges.emplace(id, GaugeEntry{std::move(name), std::move(labels),
                                  std::move(help), std::move(fn)});
  return id;
}

void Metrics::remove_gauge(uint64_t id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.gauges.erase(id);
}

uint64_t Metrics::next_instance_id() {
  return registry().next_instance.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::op_snapshot(std::array<OpSnapshot, kOpCount>* out) {
  for (auto& s : *out) s = OpSnapshot{};
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& b : r.blocks) {
    for (uint32_t i = 0; i < kOpCount; ++i) {
      (*out)[i].count += b->counts[i];
      if (b->hist) (*out)[i].latency.merge(b->hist[i]);
    }
  }
}

void Metrics::reset_ops() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& b : r.blocks) {
    b->counts.fill(0);
    b->hist.reset();
  }
}

namespace {

// The nvm counter names, in stats.h declaration order, paired with a getter
// so both serializers walk one list.
struct NvmField {
  const char* name;
  uint64_t nvm::StatsSnapshot::* field;
};
constexpr NvmField kNvmFields[] = {
    {"nvm_read_ops", &nvm::StatsSnapshot::nvm_read_ops},
    {"nvm_read_blocks", &nvm::StatsSnapshot::nvm_read_blocks},
    {"nvm_write_ops", &nvm::StatsSnapshot::nvm_write_ops},
    {"nvm_write_lines", &nvm::StatsSnapshot::nvm_write_lines},
    {"fences", &nvm::StatsSnapshot::fences},
    {"dram_hot_hits", &nvm::StatsSnapshot::dram_hot_hits},
    {"ocf_filtered", &nvm::StatsSnapshot::ocf_filtered},
    {"ocf_false_positive", &nvm::StatsSnapshot::ocf_false_positive},
    {"lock_waits", &nvm::StatsSnapshot::lock_waits},
    {"nvm_prefetch_issued", &nvm::StatsSnapshot::nvm_prefetch_issued},
    {"nvm_read_blocks_overlapped",
     &nvm::StatsSnapshot::nvm_read_blocks_overlapped},
    {"nvm_read_blocks_stalled", &nvm::StatsSnapshot::nvm_read_blocks_stalled},
    {"fault_events", &nvm::StatsSnapshot::fault_events},
    {"fault_crashes", &nvm::StatsSnapshot::fault_crashes},
    {"alloc_chunks_claimed", &nvm::StatsSnapshot::alloc_chunks_claimed},
    {"alloc_chunk_bytes", &nvm::StatsSnapshot::alloc_chunk_bytes},
    {"alloc_shared_fallbacks", &nvm::StatsSnapshot::alloc_shared_fallbacks},
};

// The per-DIMM counter arrays (DimmConfig with dimms > 1), walked the same
// way. Serializers emit only DIMMs with any traffic, so the flat model
// stays free of 16 all-zero series.
struct NvmDimmField {
  const char* name;
  uint64_t (nvm::StatsSnapshot::*field)[nvm::kMaxDimms];
};
constexpr NvmDimmField kNvmDimmFields[] = {
    {"nvm_dimm_read_bytes", &nvm::StatsSnapshot::nvm_dimm_read_bytes},
    {"nvm_dimm_write_bytes", &nvm::StatsSnapshot::nvm_dimm_write_bytes},
    {"nvm_dimm_read_stall_ns", &nvm::StatsSnapshot::nvm_dimm_read_stall_ns},
    {"nvm_dimm_write_stall_ns", &nvm::StatsSnapshot::nvm_dimm_write_stall_ns},
    {"nvm_dimm_queue_depth", &nvm::StatsSnapshot::nvm_dimm_queue_depth},
};

bool dimm_active(const nvm::StatsSnapshot& s, uint32_t d) {
  for (const NvmDimmField& f : kNvmDimmFields) {
    if ((s.*f.field)[d] != 0) return true;
  }
  return false;
}

constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};

struct Derived {
  double hot_hit_ratio;          // DRAM hot-table hits / point lookups
  double ocf_false_positive_rate;  // fp matches that missed / NVM reads
  double overlapped_read_fraction;  // pipelined blocks / all blocks
};

Derived derive(const nvm::StatsSnapshot& s,
               const std::array<Metrics::OpSnapshot, kOpCount>& ops) {
  auto ratio = [](double num, double den) { return den > 0 ? num / den : 0.0; };
  const double lookups =
      static_cast<double>(ops[static_cast<uint32_t>(Op::kGet)].count +
                          ops[static_cast<uint32_t>(Op::kMultigetKeys)].count);
  Derived d;
  d.hot_hit_ratio = ratio(static_cast<double>(s.dram_hot_hits), lookups);
  d.ocf_false_positive_rate = ratio(static_cast<double>(s.ocf_false_positive),
                                    static_cast<double>(s.nvm_read_ops));
  d.overlapped_read_fraction =
      ratio(static_cast<double>(s.nvm_read_blocks_overlapped),
            static_cast<double>(s.nvm_read_blocks_overlapped +
                                s.nvm_read_blocks_stalled));
  return d;
}

}  // namespace

std::string Metrics::prometheus() {
  const nvm::StatsSnapshot nvm = nvm::Stats::snapshot();
  std::array<OpSnapshot, kOpCount> ops;
  op_snapshot(&ops);

  std::string out;
  char buf[256];
  auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };

  for (const NvmField& f : kNvmFields) {
    line("# TYPE hdnh_%s_total counter\n", f.name);
    line("hdnh_%s_total %llu\n", f.name,
         static_cast<unsigned long long>(nvm.*f.field));
  }

  for (const NvmDimmField& f : kNvmDimmFields) {
    bool typed = false;
    for (uint32_t d = 0; d < nvm::kMaxDimms; ++d) {
      if (!dimm_active(nvm, d)) continue;
      if (!typed) {
        line("# TYPE hdnh_%s_total counter\n", f.name);
        typed = true;
      }
      line("hdnh_%s_total{dimm=\"%u\"} %llu\n", f.name, d,
           static_cast<unsigned long long>((nvm.*f.field)[d]));
    }
  }

  out += "# HELP hdnh_ops_total operations issued, by kind\n";
  out += "# TYPE hdnh_ops_total counter\n";
  for (uint32_t i = 0; i < kOpCount; ++i) {
    line("hdnh_ops_total{op=\"%s\"} %llu\n", op_name(static_cast<Op>(i)),
         static_cast<unsigned long long>(ops[i].count));
  }

  out += "# HELP hdnh_op_latency_ns per-operation latency (recorded while "
         "latency capture is enabled)\n";
  out += "# TYPE hdnh_op_latency_ns summary\n";
  for (uint32_t i = 0; i < kOpCount; ++i) {
    const Histogram& h = ops[i].latency;
    if (h.count() == 0) continue;
    const char* op = op_name(static_cast<Op>(i));
    for (const double q : kQuantiles) {
      line("hdnh_op_latency_ns{op=\"%s\",quantile=\"%g\"} %llu\n", op, q,
           static_cast<unsigned long long>(h.percentile(q)));
    }
    line("hdnh_op_latency_ns_sum{op=\"%s\"} %.0f\n", op,
         h.mean() * static_cast<double>(h.count()));
    line("hdnh_op_latency_ns_count{op=\"%s\"} %llu\n", op,
         static_cast<unsigned long long>(h.count()));
  }

  {
    // Gauges, grouped by metric name so each TYPE header appears once.
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::map<std::string, std::vector<const GaugeEntry*>> by_name;
    for (const auto& [id, g] : r.gauges) by_name[g.name].push_back(&g);
    for (const auto& [name, entries] : by_name) {
      if (!entries.front()->help.empty()) {
        line("# HELP %s %s\n", name.c_str(), entries.front()->help.c_str());
      }
      line("# TYPE %s gauge\n", name.c_str());
      for (const GaugeEntry* g : entries) {
        if (g->labels.empty()) {
          line("%s %.10g\n", name.c_str(), g->fn());
        } else {
          line("%s{%s} %.10g\n", name.c_str(), g->labels.c_str(), g->fn());
        }
      }
    }
  }

  {
    // ---- windowed load signal (obs/window.h) ----------------------------
    Windows::rotate_if_stale(kScrapeRotateNs);
    Windows::Snapshot s;
    Windows::snapshot(Windows::kEpochs, &s);
    out += "# HELP hdnh_window_seconds wall time covered by the merged "
           "completed epochs\n";
    out += "# TYPE hdnh_window_seconds gauge\n";
    line("hdnh_window_seconds %.6g\n",
         static_cast<double>(s.window_ns) * 1e-9);
    out += "# TYPE hdnh_window_epochs gauge\n";
    line("hdnh_window_epochs %u\n", s.epochs);
    out += "# HELP hdnh_window_ops operations inside the window, by kind\n";
    out += "# TYPE hdnh_window_ops gauge\n";
    for (uint32_t i = 0; i < kOpCount; ++i) {
      line("hdnh_window_ops{op=\"%s\"} %llu\n", op_name(static_cast<Op>(i)),
           static_cast<unsigned long long>(s.counts[i]));
    }
    out += "# HELP hdnh_window_op_rate windowed op rate (ops/s)\n";
    out += "# TYPE hdnh_window_op_rate gauge\n";
    for (uint32_t i = 0; i < kOpCount; ++i) {
      line("hdnh_window_op_rate{op=\"%s\"} %.10g\n",
           op_name(static_cast<Op>(i)), s.rate(i));
    }
    out += "# HELP hdnh_window_op_latency_ns windowed latency quantiles "
           "(zero series are omitted; an idle window emits nothing)\n";
    out += "# TYPE hdnh_window_op_latency_ns gauge\n";
    for (uint32_t i = 0; i < kOpCount; ++i) {
      const Histogram& h = s.latency[i];
      if (h.count() == 0) continue;
      const char* op = op_name(static_cast<Op>(i));
      for (const double q : kQuantiles) {
        line("hdnh_window_op_latency_ns{op=\"%s\",quantile=\"%g\"} %llu\n",
             op, q, static_cast<unsigned long long>(h.percentile(q)));
      }
    }
    out += "# HELP hdnh_window_hot_hit_ratio DRAM hot-table hits / point "
           "lookups, inside the window\n";
    out += "# TYPE hdnh_window_hot_hit_ratio gauge\n";
    line("hdnh_window_hot_hit_ratio %.10g\n", windowed_hot_hit_ratio(s));

    // ---- per-shard heat -------------------------------------------------
    bool heat_typed = false;
    Windows::visit_heats([&](const ShardHeat& heat) {
      if (!heat_typed) {
        out += "# HELP hdnh_shard_window_ops operations inside the window, "
               "per shard\n";
        out += "# TYPE hdnh_shard_window_ops gauge\n";
        heat_typed = true;
      }
      const auto w = heat.window();
      for (uint32_t sh = 0; sh < w.size(); ++sh) {
        line("hdnh_shard_window_ops{%s,shard=\"%u\"} %llu\n",
             heat.label().c_str(), sh,
             static_cast<unsigned long long>(w[sh].ops));
      }
    });
    bool heat_lat_typed = false;
    Windows::visit_heats([&](const ShardHeat& heat) {
      if (!heat_lat_typed) {
        out += "# HELP hdnh_shard_window_mean_latency_ns windowed mean op "
               "latency per shard (0 while latency capture is off)\n";
        out += "# TYPE hdnh_shard_window_mean_latency_ns gauge\n";
        heat_lat_typed = true;
      }
      const auto w = heat.window();
      for (uint32_t sh = 0; sh < w.size(); ++sh) {
        const double mean =
            w[sh].lat_count
                ? static_cast<double>(w[sh].lat_sum_ns) /
                      static_cast<double>(w[sh].lat_count)
                : 0.0;
        line("hdnh_shard_window_mean_latency_ns{%s,shard=\"%u\"} %.10g\n",
             heat.label().c_str(), sh, mean);
      }
    });

    // ---- hot keys -------------------------------------------------------
    const auto hot = HeavyHitters::top(kScrapeHotkeys);
    out += "# HELP hdnh_hotkey_count heavy-hitter key digests with "
           "approximate counts, hottest first\n";
    out += "# TYPE hdnh_hotkey_count gauge\n";
    for (uint32_t i = 0; i < hot.size(); ++i) {
      line("hdnh_hotkey_count{rank=\"%u\",key=\"%016llx%016llx\"} %llu\n", i,
           static_cast<unsigned long long>(hot[i].d0),
           static_cast<unsigned long long>(hot[i].d1),
           static_cast<unsigned long long>(hot[i].count));
    }

    // ---- slowlog --------------------------------------------------------
    out += "# TYPE hdnh_slowlog_len gauge\n";
    line("hdnh_slowlog_len %llu\n",
         static_cast<unsigned long long>(SlowLog::len()));
    out += "# TYPE hdnh_slowlog_total counter\n";
    line("hdnh_slowlog_total %llu\n",
         static_cast<unsigned long long>(SlowLog::total()));
    out += "# TYPE hdnh_slowlog_threshold_ns gauge\n";
    line("hdnh_slowlog_threshold_ns %llu\n",
         static_cast<unsigned long long>(SlowLog::threshold_ns()));
  }

  const Derived d = derive(nvm, ops);
  out += "# TYPE hdnh_hot_hit_ratio gauge\n";
  line("hdnh_hot_hit_ratio %.10g\n", d.hot_hit_ratio);
  out += "# TYPE hdnh_ocf_false_positive_rate gauge\n";
  line("hdnh_ocf_false_positive_rate %.10g\n", d.ocf_false_positive_rate);
  out += "# TYPE hdnh_overlapped_read_fraction gauge\n";
  line("hdnh_overlapped_read_fraction %.10g\n", d.overlapped_read_fraction);
  return out;
}

std::string Metrics::json() {
  const nvm::StatsSnapshot nvm = nvm::Stats::snapshot();
  std::array<OpSnapshot, kOpCount> ops;
  op_snapshot(&ops);

  JsonWriter w;
  w.begin_object();

  w.key("nvm").begin_object();
  for (const NvmField& f : kNvmFields) w.kv(f.name, nvm.*f.field);
  w.end_object();

  w.key("nvm_dimms").begin_array();
  for (uint32_t d = 0; d < nvm::kMaxDimms; ++d) {
    if (!dimm_active(nvm, d)) continue;
    w.begin_object();
    w.kv("dimm", static_cast<uint64_t>(d));
    for (const NvmDimmField& f : kNvmDimmFields) {
      w.kv(f.name, (nvm.*f.field)[d]);
    }
    w.end_object();
  }
  w.end_array();

  w.key("ops").begin_object();
  for (uint32_t i = 0; i < kOpCount; ++i) {
    const Histogram& h = ops[i].latency;
    w.key(op_name(static_cast<Op>(i))).begin_object();
    w.kv("count", ops[i].count);
    if (h.count() > 0) {
      w.kv("latency_count", h.count());
      w.kv("mean_ns", h.mean());
      w.kv("p50_ns", h.percentile(0.5));
      w.kv("p90_ns", h.percentile(0.9));
      w.kv("p99_ns", h.percentile(0.99));
      w.kv("p999_ns", h.percentile(0.999));
      w.kv("max_ns", h.max());
    }
    w.end_object();
  }
  w.end_object();

  w.key("gauges").begin_array();
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& [id, g] : r.gauges) {
      w.begin_object();
      w.kv("name", g.name);
      if (!g.labels.empty()) w.kv("labels", g.labels);
      w.kv("value", g.fn());
      w.end_object();
    }
  }
  w.end_array();

  {
    Windows::rotate_if_stale(kScrapeRotateNs);
    Windows::Snapshot s;
    Windows::snapshot(Windows::kEpochs, &s);
    w.key("window").begin_object();
    w.kv("seconds", static_cast<double>(s.window_ns) * 1e-9);
    w.kv("epochs", static_cast<uint64_t>(s.epochs));
    w.kv("rotations", Windows::rotations());
    w.key("ops").begin_object();
    for (uint32_t i = 0; i < kOpCount; ++i) {
      const Histogram& h = s.latency[i];
      w.key(op_name(static_cast<Op>(i))).begin_object();
      w.kv("count", s.counts[i]);
      w.kv("rate", s.rate(i));
      if (h.count() > 0) {
        w.kv("p50_ns", h.percentile(0.5));
        w.kv("p90_ns", h.percentile(0.9));
        w.kv("p99_ns", h.percentile(0.99));
        w.kv("p999_ns", h.percentile(0.999));
        w.kv("max_ns", h.max());
      }
      w.end_object();
    }
    w.end_object();
    w.kv("hot_hit_ratio", windowed_hot_hit_ratio(s));
    w.end_object();

    w.key("shard_heat").begin_array();
    Windows::visit_heats([&](const ShardHeat& heat) {
      const auto win = heat.window();
      for (uint32_t sh = 0; sh < win.size(); ++sh) {
        w.begin_object();
        w.kv("store", heat.label());
        w.kv("shard", static_cast<uint64_t>(sh));
        w.kv("window_ops", win[sh].ops);
        w.kv("window_mean_latency_ns",
             win[sh].lat_count
                 ? static_cast<double>(win[sh].lat_sum_ns) /
                       static_cast<double>(win[sh].lat_count)
                 : 0.0);
        w.end_object();
      }
    });
    w.end_array();

    w.key("hotkeys").begin_array();
    for (const auto& e : HeavyHitters::top(kScrapeHotkeys)) {
      char digest[33];
      std::snprintf(digest, sizeof(digest), "%016llx%016llx",
                    static_cast<unsigned long long>(e.d0),
                    static_cast<unsigned long long>(e.d1));
      w.begin_object();
      w.kv("key", digest);
      w.kv("count", e.count);
      w.end_object();
    }
    w.end_array();

    w.key("slowlog").begin_object();
    w.kv("len", SlowLog::len());
    w.kv("total", SlowLog::total());
    w.kv("threshold_ns", SlowLog::threshold_ns());
    w.key("entries").begin_array();
    for (const auto& e : SlowLog::entries(16)) {
      char digest[33];
      std::snprintf(digest, sizeof(digest), "%016llx%016llx",
                    static_cast<unsigned long long>(e.d0),
                    static_cast<unsigned long long>(e.d1));
      w.begin_object();
      w.kv("id", e.id);
      w.kv("op", op_name(e.op));
      w.kv("latency_ns", e.latency_ns);
      w.kv("key", digest);
      w.kv("shard", static_cast<uint64_t>(e.shard));
      w.kv("ts_ns", e.ts_ns);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  const Derived d = derive(nvm, ops);
  w.key("derived").begin_object();
  w.kv("hot_hit_ratio", d.hot_hit_ratio);
  w.kv("ocf_false_positive_rate", d.ocf_false_positive_rate);
  w.kv("overlapped_read_fraction", d.overlapped_read_fraction);
  w.end_object();

  w.end_object();
  return w.str();
}

}  // namespace hdnh::obs
