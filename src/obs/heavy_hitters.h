// Hot-key heavy-hitter tracking: an always-on SpaceSaving-style top-k
// sketch over 16 B key digests, cheap enough to leave enabled in
// production paths (the acceptance budget is ≤3% on the all-miss
// NegativeSearch loop with latency capture also on).
//
// Shape: each recording thread owns a 128-slot open-addressed table of
// {digest, count} slots. record() probes at most kProbe slots starting at
// (digest & mask):
//   * digest already present  -> count++            (the common case)
//   * an empty probed slot    -> claim it, count=1
//   * otherwise               -> SpaceSaving eviction limited to the probe
//                                window: overwrite the min-count slot among
//                                the kProbe probed, count = min+1.
// Limited associativity keeps the hot path to <=8 L1-resident slot reads
// and no heap or global state; the classic full-table min-scan would cost
// O(capacity) per miss — fatal on an all-miss workload. The price is a
// slightly weaker guarantee than textbook SpaceSaving (a heavy key can be
// displaced only by keys hashing into its window), which is ample for a
// "which keys are flooding us" signal and is verified against exact counts
// on a zipfian stream in tests.
//
// Sketches are merged on scrape (HOTKEYS / hdnh_hotkey_* families). All
// slot fields are relaxed atomics so a scrape racing recording is
// TSan-clean; a reader can observe a slot mid-eviction (digest/count
// smear), which telemetry tolerates.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace hdnh::obs {

class HeavyHitters {
 public:
  static constexpr uint32_t kSlots = 128;   // per-thread table (power of two)
  static constexpr uint32_t kProbe = 8;     // eviction window

  struct Entry {
    uint64_t d0 = 0;  // key digest, first 8 bytes (little-endian)
    uint64_t d1 = 0;  // key digest, last 8 bytes
    uint64_t count = 0;
  };

  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Hot path. The 16 B digest is the inner-index Key itself: its first half
  // is already mix64-scrambled, so d0 doubles as the probe hash.
  static void record(uint64_t d0, uint64_t d1) {
    Sketch* s = tl_sketch_;
    if (s == nullptr) s = &local();
    const uint32_t base = static_cast<uint32_t>(d0) & (kSlots - 1);
    uint32_t empty = kSlots;            // first empty probed slot, if any
    uint32_t min_idx = base;
    uint64_t min_count = UINT64_MAX;
    for (uint32_t i = 0; i < kProbe; ++i) {
      const uint32_t idx = (base + i) & (kSlots - 1);
      Slot& slot = s->slots[idx];
      const uint64_t c = slot.count.load(std::memory_order_relaxed);
      if (c == 0) {
        if (empty == kSlots) empty = idx;
        continue;
      }
      if (slot.d0.load(std::memory_order_relaxed) == d0 &&
          slot.d1.load(std::memory_order_relaxed) == d1) {
        slot.count.store(c + 1, std::memory_order_relaxed);
        return;
      }
      if (c < min_count) {
        min_count = c;
        min_idx = idx;
      }
    }
    if (empty != kSlots) {
      Slot& slot = s->slots[empty];
      slot.d0.store(d0, std::memory_order_relaxed);
      slot.d1.store(d1, std::memory_order_relaxed);
      slot.count.store(1, std::memory_order_relaxed);
      return;
    }
    // SpaceSaving within the probe window: the new key inherits min+1.
    Slot& slot = s->slots[min_idx];
    slot.d0.store(d0, std::memory_order_relaxed);
    slot.d1.store(d1, std::memory_order_relaxed);
    slot.count.store(min_count + 1, std::memory_order_relaxed);
  }

  // Merge every thread sketch and return the k largest entries, count
  // descending (digest ascending on ties, so output is deterministic).
  static std::vector<Entry> top(uint32_t k);

  // Zero all sketches. Requires quiescence of recorded operations.
  static void reset();

 private:
  struct Slot {
    std::atomic<uint64_t> d0{0};
    std::atomic<uint64_t> d1{0};
    std::atomic<uint64_t> count{0};
  };
  struct Sketch {
    Slot slots[kSlots];
  };
  struct Registry;
  static Registry& registry();
  static Sketch& local();

  inline static thread_local Sketch* tl_sketch_ = nullptr;
  inline static std::atomic<bool> enabled_{true};
};

}  // namespace hdnh::obs
