#include "obs/heavy_hitters.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

namespace hdnh::obs {

struct HeavyHitters::Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Sketch>> sketches;
};

HeavyHitters::Registry& HeavyHitters::registry() {
  static Registry* r = new Registry();  // leaked: outlives all threads
  return *r;
}

HeavyHitters::Sketch& HeavyHitters::local() {
  if (tl_sketch_ == nullptr) {
    auto owned = std::make_unique<Sketch>();
    Sketch* raw = owned.get();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.sketches.push_back(std::move(owned));
    tl_sketch_ = raw;
  }
  return *tl_sketch_;
}

std::vector<HeavyHitters::Entry> HeavyHitters::top(uint32_t k) {
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> merged;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& s : r.sketches) {
      for (const Slot& slot : s->slots) {
        const uint64_t c = slot.count.load(std::memory_order_relaxed);
        if (c == 0) continue;
        merged[{slot.d0.load(std::memory_order_relaxed),
                slot.d1.load(std::memory_order_relaxed)}] += c;
      }
    }
  }
  std::vector<Entry> all;
  all.reserve(merged.size());
  for (const auto& [digest, count] : merged) {
    all.push_back(Entry{digest.first, digest.second, count});
  }
  std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
    return std::tie(b.count, a.d0, a.d1) < std::tie(a.count, b.d0, b.d1);
  });
  if (all.size() > k) all.resize(k);
  return all;
}

void HeavyHitters::reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& s : r.sketches) {
    for (Slot& slot : s->slots) {
      slot.count.store(0, std::memory_order_relaxed);
      slot.d0.store(0, std::memory_order_relaxed);
      slot.d1.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace hdnh::obs
