// Periodic stats reporter: a background thread that snapshots the metrics
// registry on a fixed cadence and (re)writes the snapshot to files, so an
// external collector — or a human with `watch cat` — always sees a fresh,
// complete document. Files are written atomically (temp + rename): a reader
// never observes a torn snapshot.
//
// Used by the YCSB runner's --metrics_out plumbing; cheap enough to leave
// running for the life of a long process (all cost is on the reporter
// thread, at scrape granularity).
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

namespace hdnh::obs {

// Write `content` to `path` via a sibling temp file + rename. Returns false
// (and leaves any previous file intact) on I/O failure.
bool write_file_atomic(const std::string& path, const std::string& content);

class PeriodicReporter {
 public:
  struct Options {
    std::string json_path;  // Metrics::json() target ("" = skip)
    std::string prom_path;  // Metrics::prometheus() target ("" = skip)
    double interval_s = 1.0;
  };

  // Starts the reporter thread; writes a first snapshot immediately.
  explicit PeriodicReporter(Options opts);
  // Writes a final snapshot, then stops.
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  // Snapshot + write now, off-schedule (also used for the final write).
  void flush();

 private:
  void run();

  Options opts_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace hdnh::obs
