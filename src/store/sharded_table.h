// ShardedTable — the multi-shard store runtime facade.
//
// Hash-partitions the keyspace across N independent inner tables (any
// scheme), each living in its own ShardedPmemLayout region with its own
// allocator, root directory, and — for HDNH shards — its own resize lock
// and resize state machine. The facade implements the uniform HashTable
// interface, so everything that drives a single table (test battery, YCSB
// runner, benches) drives a sharded store unchanged.
//
// What sharding buys (see docs/sharding.md for the math):
//   * a structural resize stops only its own shard — the stop-the-world
//     pause inherited from Level hashing shrinks to ~1/N of the keyspace;
//   * the N resize locks are taken shared by N disjoint key populations,
//     multiplying lock throughput under contention;
//   * recovery and integrity checking are per-shard and independently
//     resumable — a crash during shard 3's resize replays only shard 3.
//
// Shard routing uses a dedicated mix of the primary hash (never the raw
// h1 % N): the inner tables consume h1/h2 bits for bucket placement, and
// routing on a bijective remix keeps the per-shard hash distributions
// uniform instead of conditioning the low bits.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/hash_table.h"
#include "hdnh/hdnh.h"
#include "nvm/sharded_layout.h"

namespace hdnh::store {

// Stable routing function on a precomputed primary hash — batch paths hash
// each key once and route on the result.
inline uint32_t shard_of_hash(uint64_t h1, uint32_t shards) {
  // Remix so the modulus consumes bits independent from the placement
  // hashes (mix64 is bijective; conditioning on the shard leaves the inner
  // tables' h1/h2 uniform).
  return static_cast<uint32_t>(mix64(h1 ^ 0x9E3779B97F4A7C15ULL) % shards);
}

// Stable routing function: which of `shards` partitions owns `key`.
inline uint32_t shard_of_key(const Key& key, uint32_t shards) {
  return shard_of_hash(key_hash1(key), shards);
}

class ShardedTable final : public HashTable {
 public:
  // Takes ownership of the carve and the inner tables (shards[i] lives in
  // layout->shard_alloc(i)). Built by the factory for "scheme@N" names.
  ShardedTable(std::unique_ptr<nvm::ShardedPmemLayout> layout,
               std::vector<std::unique_ptr<HashTable>> shards,
               std::string name);
  ~ShardedTable() override;

  bool insert(const Key& key, const Value& value) override;
  bool search(const Key& key, Value* out) override;
  bool update(const Key& key, const Value& value) override;
  bool erase(const Key& key) override;

  // Status surface (API v2): routes to the owning shard's _s method, so an
  // inner table's native override is used and its exceptions are converted
  // at the inner boundary. guard() wraps the routing too — a shard that
  // only implements the bool interface still cannot leak a throw.
  Status insert_s(const Key& key, const Value& value) override;
  Status search_s(const Key& key, Value* out) override;
  Status update_s(const Key& key, const Value& value) override;
  Status erase_s(const Key& key) override;

  // Groups the batch by shard so each inner table sees one phased batch
  // (one resize-lock acquisition per touched shard, not per key).
  size_t multiget(const Key* keys, size_t n, Value* values,
                  bool* found) override;

  uint64_t size() const override;
  double load_factor() const override;  // aggregate items / aggregate slots
  const char* name() const override { return name_.c_str(); }

  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t shard_of(const Key& key) const {
    return shard_of_key(key, shards());
  }
  HashTable& shard(uint32_t s) { return *shards_[s]; }
  const nvm::ShardedPmemLayout& layout() const { return *layout_; }

  // ---- HDNH-shard aggregates (throw std::logic_error on non-HDNH inners,
  // matching the single-table members they forward to) ----

  // Visit every live record across all shards (quiescence caveats as Hdnh).
  void for_each(const std::function<void(const KVPair&)>& fn) const;

  // Field-wise sum of every shard's deep integrity report.
  Hdnh::IntegrityReport check_integrity();

  // Merged recovery stats of the last attach: items/timings summed,
  // resumed_resize true if ANY shard resumed an interrupted resize.
  Hdnh::RecoveryStats last_recovery() const;

  // Total structural resizes across shards.
  uint64_t resize_count() const;

  // After a simulated crash, severs every shard from the pool (see
  // Hdnh::abandon_after_crash) so destroying the facade writes no
  // clean-shutdown markers into the crash image.
  void abandon_after_crash();

 private:
  Hdnh& hdnh_shard(uint32_t s) const;

  // layout_ declared before shards_ so the inner tables are destroyed
  // before the regions they live in; obs_heat_ before shards_ because the
  // HDNH inners hold a raw pointer into it (set_obs_heat).
  std::unique_ptr<nvm::ShardedPmemLayout> layout_;
  std::unique_ptr<obs::ShardHeat> obs_heat_;
  std::vector<std::unique_ptr<HashTable>> shards_;
  std::string name_;
  // Metrics-registry gauges owned by the facade (shard count, aggregate
  // load factor); empty when the HDNH_OBS gate is off.
  std::vector<uint64_t> obs_gauges_;
  std::string obs_label_;
};

}  // namespace hdnh::store
