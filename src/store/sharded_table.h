// ShardedTable — the elastic multi-shard store runtime facade.
//
// Hash-partitions the keyspace across independent inner tables (any
// scheme), each living in its own ShardedPmemLayout region with its own
// allocator, root directory, and — for HDNH shards — its own resize lock
// and resize state machine. The facade implements the uniform HashTable
// interface, so everything that drives a single table (test battery, YCSB
// runner, benches) drives a sharded store unchanged, plus the ShardAdmin
// interface for the directory/split admin surface (SHARDS / RESHARD,
// hdnh_doctor --shards).
//
// Routing is an extendible directory (nvm::ShardedPmemLayout v2): a key's
// remixed primary hash addresses 2^global_depth entries by its top bits,
// each entry naming a shard. Ops read an immutable Routing snapshot via a
// lock-free atomic pointer — no lock on the serving path — and a published
// split simply swaps in the successor snapshot. Readers re-check the
// pointer after serving (retrying the idempotent lookup if an epoch change
// raced them); writers announce themselves per shard and re-check before
// committing to the lock-free path, so the split machine can drain them.
//
// Online split lifecycle (split_shard, driven by the background controller
// or a RESHARD command):
//   1. begin_split carves/claims the target region and persists the split
//      marker; a split-in-progress Routing snapshot is published.
//   2. Migration copies the source's upper hash half into the target in
//      batches under split_mu_; writes to the splitting shard take the
//      same lock, apply to the source first (it stays authoritative) and
//      mirror to the target, so reads never block and never miss.
//   3. publish_split flips the persisted directory selector — the single
//      crash-atomic commit point — and the retargeted snapshot goes live
//      (still marked split-active, so source writers stay on the lock).
//   4. An idempotent cleanup erases the migrated keys from the source
//      under the split lock, then the split leaves the snapshot and the
//      marker clears. Crash recovery replays exactly this tail: pre-flip
//      the target region is reset, post-flip the cleanup re-runs
//      (tests/store, crashkit scenario "shard_split").
//
// Shard routing uses a dedicated mix of the primary hash (never the raw
// h1): the inner tables consume h1/h2 bits for bucket placement, and
// routing on a bijective remix keeps the per-shard hash distributions
// uniform instead of conditioning the top bits.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "api/hash_table.h"
#include "api/shard_admin.h"
#include "hdnh/hdnh.h"
#include "nvm/sharded_layout.h"

namespace hdnh::store {

// Remix for directory addressing: bijective, so conditioning on a shard
// leaves the inner tables' h1/h2 bits uniform.
inline uint64_t shard_route_mix(uint64_t h1) {
  return mix64(h1 ^ 0x9E3779B97F4A7C15ULL);
}

// Directory entry for a precomputed primary hash: the top `global_depth`
// bits of the remix (0 at depth 0).
inline uint32_t shard_route_entry(uint64_t h1, uint32_t global_depth) {
  if (global_depth == 0) return 0;
  return static_cast<uint32_t>(shard_route_mix(h1) >> (64 - global_depth));
}

struct SplitOptions {
  // Background controller: watch the obs shard heat and split the
  // hottest shard when its windowed op share exceeds the threshold.
  bool auto_split = false;
  // Fraction (0, 1] of the windowed ops a single shard must carry.
  double split_load_threshold = 0.5;
  // Ignore windows with fewer total ops than this (noise floor).
  uint64_t min_window_ops = 1000;
  // Controller poll cadence in milliseconds.
  uint32_t controller_period_ms = 200;
  // Controller ticks to skip a shard whose split just failed (target
  // region too small etc.) before retrying it — each failed attempt
  // copies up to half the shard, so hammering every tick is pure waste.
  // Manual RESHARD is never throttled.
  uint32_t failed_split_backoff_ticks = 25;
};

class ShardedTable final : public HashTable, public ShardAdmin {
 public:
  // Builds a fresh inner table inside a (fresh) split-target region;
  // supplied by the factory so the facade can split without knowing the
  // scheme. Null disables splitting.
  using ShardFactory =
      std::function<std::unique_ptr<HashTable>(nvm::PmemAllocator&)>;

  using SplitOptions = store::SplitOptions;

  // An epoch-consistent routing decision: the owning shard and inner table
  // under directory epoch `seq`. Valid until the snapshot it came from is
  // superseded — callers must not persist the index across splits.
  struct ShardRoute {
    uint32_t shard = 0;
    uint64_t seq = 0;
    HashTable* table = nullptr;
  };

  // Takes ownership of the carve and the inner tables (shards[i] lives in
  // layout->shard_alloc(i)). Built by the factory for "scheme@N" names.
  // When the layout reports a published-but-uncleaned split (crash between
  // the directory flip and the cleanup), the constructor finishes the
  // idempotent cleanup before serving.
  ShardedTable(std::unique_ptr<nvm::ShardedPmemLayout> layout,
               std::vector<std::unique_ptr<HashTable>> shards,
               std::string name, ShardFactory shard_factory = nullptr,
               SplitOptions split = SplitOptions());
  ~ShardedTable() override;

  bool insert(const Key& key, const Value& value) override;
  bool search(const Key& key, Value* out) override;
  bool update(const Key& key, const Value& value) override;
  bool erase(const Key& key) override;

  // Status surface (API v2): routes to the owning shard's _s method, so an
  // inner table's native override is used and its exceptions are converted
  // at the inner boundary. guard() wraps the routing too — a shard that
  // only implements the bool interface still cannot leak a throw.
  Status insert_s(const Key& key, const Value& value) override;
  Status search_s(const Key& key, Value* out) override;
  Status update_s(const Key& key, const Value& value) override;
  Status erase_s(const Key& key) override;

  // Groups the batch by shard so each inner table sees one phased batch
  // (one resize-lock acquisition per touched shard, not per key).
  size_t multiget(const Key* keys, size_t n, Value* values,
                  bool* found) override;

  uint64_t size() const override;
  double load_factor() const override;  // aggregate items / aggregate slots
  const char* name() const override { return name_.c_str(); }

  // ---- directory-aware routing surface ----------------------------------

  uint32_t shards() const { return layout_->shards(); }
  uint32_t max_shards() const { return layout_->regions(); }

  // Epoch-consistent route: where `key` lives right now. The epoch (seq)
  // identifies the directory version the answer is valid under.
  ShardRoute route(const Key& key) const;

  // Visit every live shard (id, table) under one routing snapshot. The
  // set visited is consistent even if a split publishes concurrently.
  void for_each_shard(
      const std::function<void(uint32_t, HashTable&)>& fn) const;

  // ---- ShardAdmin --------------------------------------------------------

  Directory shard_directory() const override;
  // Synchronous online split (see the lifecycle above). Safe to call from
  // any thread; concurrent split requests serialize and the losers get
  // kInvalidArgument.
  Status split_shard(uint32_t shard) override;

  // ---- deprecation shims (pre-directory API) -----------------------------
  // DEPRECATED: the shard index of a key is only stable within one
  // directory epoch — use route(), which says which epoch it answered for.
  uint32_t shard_of(const Key& key) const { return route(key).shard; }
  // DEPRECATED: fixed-index access assumes a constant shard count — use
  // for_each_shard() or route(key).table.
  HashTable& shard(uint32_t s) { return *shards_[s]; }

  const nvm::ShardedPmemLayout& layout() const { return *layout_; }

  // ---- HDNH-shard aggregates (throw std::logic_error on non-HDNH inners,
  // matching the single-table members they forward to) ----

  // Visit every live record across all shards (quiescence caveats as Hdnh).
  void for_each(const std::function<void(const KVPair&)>& fn) const;

  // Field-wise sum of every shard's deep integrity report.
  Hdnh::IntegrityReport check_integrity();

  // Merged recovery stats of the last attach: items/timings summed,
  // resumed_resize true if ANY shard resumed an interrupted resize.
  Hdnh::RecoveryStats last_recovery() const;

  // Total structural resizes across shards.
  uint64_t resize_count() const;

  // Splits published by this facade instance (gauge source).
  uint64_t split_count() const {
    return splits_.load(std::memory_order_relaxed);
  }

  // After a simulated crash, severs every shard from the pool (see
  // Hdnh::abandon_after_crash) so destroying the facade writes no
  // clean-shutdown markers into the crash image. Also stops the split
  // controller and severs a half-built split target.
  void abandon_after_crash();

 private:
  // Immutable routing snapshot; ops atomic-load it, splits swap it.
  struct Routing {
    uint32_t global_depth = 0;
    uint32_t shard_count = 1;
    uint64_t seq = 0;
    bool split_active = false;
    uint32_t split_source = 0;
    uint32_t split_target = 0;
    uint32_t split_depth = 0;  // source's local depth when the split began
    std::array<uint8_t, nvm::ShardMapSuper::kMaxShards> entry{};
  };

  const Routing* routing() const {
    return routing_.load(std::memory_order_acquire);
  }
  // Append to the history (snapshots are retained for the facade's
  // lifetime, so readers never need a refcount) and make it current.
  const Routing* install_routing(std::unique_ptr<const Routing> r);
  static std::unique_ptr<Routing> snapshot_from(
      const nvm::ShardedPmemLayout& layout);
  uint32_t route_shard(const Routing& r, uint64_t h1) const {
    return r.entry[shard_route_entry(h1, r.global_depth)];
  }
  // True when a key of hash h1 moves to the target of the active split.
  static bool in_split_upper_half(uint64_t h1, uint32_t split_depth) {
    return (shard_route_mix(h1) >> (63 - split_depth)) & 1u;
  }

  // Runs `op(primary, mirror)` on the shard owning `key`. Fast path (shard
  // not splitting): announce in inflight_, re-check the routing, run with
  // mirror == nullptr. Slow path (shard is the split source): serialize on
  // split_mu_ and pass the split target as mirror when the key belongs to
  // the moving half.
  template <typename Op>
  auto write_routed(const Key& key, Op&& op)
      -> std::invoke_result_t<Op&, HashTable&, HashTable*>;

  // Mirror-side effects of an acknowledged source mutation; a mirror
  // capacity failure flags the split for abort instead of surfacing.
  void mirror_put(HashTable* mirror, const Key& key, const Value& value);
  void mirror_erase(HashTable* mirror, const Key& key);

  // Erase every source-resident key that no longer routes to the source —
  // the post-publish tail of a split, idempotent, also replayed by attach.
  void cleanup_published_split();

  void start_controller();
  void stop_controller();
  void controller_loop();
  void maybe_auto_split();
  void register_obs();

  Hdnh& hdnh_shard(uint32_t s) const;

  // layout_ declared before shards_ so the inner tables are destroyed
  // before the regions they live in; obs_heat_ before shards_ because the
  // HDNH inners hold a raw pointer into it (set_obs_heat).
  std::unique_ptr<nvm::ShardedPmemLayout> layout_;
  std::unique_ptr<obs::ShardHeat> obs_heat_;
  // Indexed by region id; entries beyond shards() are null until a split
  // activates them.
  std::vector<std::unique_ptr<HashTable>> shards_;
  std::string name_;
  ShardFactory shard_factory_;
  SplitOptions split_opts_;

  // Lock-free routing: readers load the current snapshot pointer; installs
  // append to routing_history_ (mutated only in the constructor and under
  // split_admin_mu_) so superseded snapshots stay valid for the facade's
  // lifetime — three per published split (bounded by kMaxShards splits)
  // plus one per aborted attempt (the abort reverts to the retained
  // pre-split snapshot instead of allocating, and the auto-split
  // controller backs a failing shard off between attempts).
  std::atomic<const Routing*> routing_{nullptr};
  std::vector<std::unique_ptr<const Routing>> routing_history_;
  // Writers announce here before the no-split fast path and re-check the
  // routing; the splitter drains the source's count after publishing the
  // split-active snapshot, so no un-mirrored write can race the migration.
  std::array<std::atomic<uint32_t>, nvm::ShardMapSuper::kMaxShards>
      inflight_{};
  // Serializes split phases against writes to the splitting shard. Reads
  // never take it: the source stays authoritative until the publish.
  std::mutex split_mu_;
  // Serializes whole split_shard() calls against each other.
  std::mutex split_admin_mu_;
  // A mirror write hit the target's capacity wall: the split must abort.
  std::atomic<bool> split_failed_{false};
  std::atomic<uint64_t> splits_{0};

  std::thread controller_;
  std::mutex ctl_mu_;
  std::condition_variable ctl_cv_;
  bool ctl_stop_ = false;
  // Per-shard retry cooldown after a failed auto-split, in controller
  // ticks. Touched only by the controller thread.
  std::array<uint32_t, nvm::ShardMapSuper::kMaxShards> ctl_cooldown_{};

  // Metrics-registry gauges owned by the facade (shard count, aggregate
  // load factor, split progress); empty when the HDNH_OBS gate is off.
  std::vector<uint64_t> obs_gauges_;
  std::string obs_label_;
};

}  // namespace hdnh::store
