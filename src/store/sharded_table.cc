#include "store/sharded_table.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "api/batch.h"
#include "nvm/fault.h"
#include "obs/metrics.h"
#include "obs/window.h"

namespace hdnh::store {

namespace {

// Unwinds the fast-path announcement even when the inner op throws (a bool
// insert may raise TableFullError); a leaked count would hang the split
// machine's drain forever.
struct InflightGuard {
  std::atomic<uint32_t>& c;
  explicit InflightGuard(std::atomic<uint32_t>& c) : c(c) {}
  ~InflightGuard() { c.fetch_sub(1, std::memory_order_release); }
};

}  // namespace

ShardedTable::ShardedTable(std::unique_ptr<nvm::ShardedPmemLayout> layout,
                           std::vector<std::unique_ptr<HashTable>> shards,
                           std::string name, ShardFactory shard_factory,
                           SplitOptions split)
    : layout_(std::move(layout)),
      shards_(std::move(shards)),
      name_(std::move(name)),
      shard_factory_(std::move(shard_factory)),
      split_opts_(split) {
  if (!layout_) {
    throw std::invalid_argument("sharded table needs a shard layout");
  }
  if (shards_.empty()) {
    throw std::invalid_argument("sharded table needs >= 1 shard");
  }
  if (layout_->shards() != shards_.size()) {
    throw std::invalid_argument("layout/table shard count mismatch");
  }
  // Index by region id; spares stay null until a split activates them.
  shards_.resize(layout_->regions());

  // A crash between the directory flip and the migration cleanup leaves the
  // split marker set with the target already inside the directory: the
  // split committed, only the source's stale copies remain. Finish the
  // idempotent cleanup before serving.
  if (layout_->split_cleanup_pending()) {
    cleanup_published_split();
    layout_->clear_split_state();
  }

  install_routing(snapshot_from(*layout_));
  register_obs();
  if (split_opts_.auto_split && shard_factory_ && obs_heat_) {
    start_controller();
  }
}

ShardedTable::~ShardedTable() {
  stop_controller();
  for (const uint64_t id : obs_gauges_) obs::Metrics::remove_gauge(id);
}

void ShardedTable::register_obs() {
  if constexpr (obs::kCompiledIn) {
    obs_label_ = "store=\"" + name_ + "\"";
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_store_shards", obs_label_, "Live shard count of the store facade",
        [this] { return static_cast<double>(this->shards()); }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_store_load_factor", obs_label_,
        "Aggregate items / aggregate slots across shards",
        [this] { return load_factor(); }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_store_global_depth", obs_label_,
        "Global depth of the extendible shard directory",
        [this] { return static_cast<double>(this->routing()->global_depth); }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_store_split_active", obs_label_,
        "1 while an online shard split is in flight",
        [this] { return this->routing()->split_active ? 1.0 : 0.0; }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_store_splits_total", obs_label_,
        "Shard splits published by this store instance",
        [this] { return static_cast<double>(this->split_count()); }));
    // Per-shard gauges cover every carved region up front — a split then
    // activates slots without touching the registry. The live guard routes
    // through the routing snapshot, which is what makes the target table
    // pointer visible before its slot can report.
    const bool dimms = layout_->shard_alloc(0).pool().dimm_count() > 1;
    for (uint32_t s = 0; s < max_shards(); ++s) {
      const std::string labels =
          obs_label_ + ",shard=\"" + std::to_string(s) + "\"";
      obs_gauges_.push_back(obs::Metrics::add_gauge(
          "hdnh_shard_items", labels, "Live items in the shard", [this, s] {
            const Routing* r = this->routing();
            return s < r->shard_count
                       ? static_cast<double>(this->shards_[s]->size())
                       : 0.0;
          }));
      obs_gauges_.push_back(obs::Metrics::add_gauge(
          "hdnh_shard_load_factor", labels, "Items / slots of the shard",
          [this, s] {
            const Routing* r = this->routing();
            return s < r->shard_count ? this->shards_[s]->load_factor() : 0.0;
          }));
      obs_gauges_.push_back(obs::Metrics::add_gauge(
          "hdnh_shard_local_depth", labels,
          "Local depth of the shard in the directory", [this, s] {
            const Routing* r = this->routing();
            return s < r->shard_count
                       ? static_cast<double>(this->layout_->local_depth(s))
                       : 0.0;
          }));
      // Under a multi-DIMM pool each region has a persisted home DIMM (the
      // stripe its base starts on); export the placement of live shards.
      if (dimms) {
        obs_gauges_.push_back(obs::Metrics::add_gauge(
            "hdnh_store_shard_home_dimm", labels,
            "Home DIMM of the shard's region base", [this, s] {
              const Routing* r = this->routing();
              return s < r->shard_count
                         ? static_cast<double>(this->layout_->shard_dimm(s))
                         : 0.0;
            }));
      }
    }
    // Windowed heat: capacity for every region, live slots tracking the
    // directory. HDNH inners attribute every op they serve to their slot;
    // other inner schemes simply leave theirs cold.
    obs_heat_ = std::make_unique<obs::ShardHeat>(max_shards(), obs_label_,
                                                 this->shards());
    for (uint32_t s = 0; s < this->shards(); ++s) {
      if (auto* h = dynamic_cast<Hdnh*>(shards_[s].get())) {
        h->set_obs_heat(obs_heat_.get(), s);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Routing snapshots
// ---------------------------------------------------------------------------

std::unique_ptr<ShardedTable::Routing> ShardedTable::snapshot_from(
    const nvm::ShardedPmemLayout& layout) {
  auto r = std::make_unique<Routing>();
  r->global_depth = layout.global_depth();
  r->shard_count = layout.shards();
  r->seq = layout.dir_seq();
  for (uint32_t e = 0; e < layout.dir_entries(); ++e) {
    r->entry[e] = static_cast<uint8_t>(layout.dir_shard(e));
  }
  return r;
}

const ShardedTable::Routing* ShardedTable::install_routing(
    std::unique_ptr<const Routing> r) {
  const Routing* raw = r.get();
  routing_history_.push_back(std::move(r));
  routing_.store(raw);  // seq_cst: pairs with the writers' announce/re-check
  return raw;
}

ShardedTable::ShardRoute ShardedTable::route(const Key& key) const {
  const Routing* r = routing();
  const uint32_t s = route_shard(*r, key_hash1(key));
  return ShardRoute{s, r->seq, shards_[s].get()};
}

void ShardedTable::for_each_shard(
    const std::function<void(uint32_t, HashTable&)>& fn) const {
  const Routing* r = routing();
  for (uint32_t s = 0; s < r->shard_count; ++s) fn(s, *shards_[s]);
}

// ---------------------------------------------------------------------------
// Serving paths
// ---------------------------------------------------------------------------

template <typename Op>
auto ShardedTable::write_routed(const Key& key, Op&& op)
    -> std::invoke_result_t<Op&, HashTable&, HashTable*> {
  const uint64_t h1 = key_hash1(key);
  for (;;) {
    const Routing* r = routing_.load();
    const uint32_t s = route_shard(*r, h1);
    if (r->split_active && s == r->split_source) break;  // slow path
    // Announce, then re-check: the split machine publishes the split-active
    // snapshot and then drains the source's announced writers before
    // snapshotting it, so a write that read the routing just before the
    // split began either lands before the snapshot or detects the change
    // here and reroutes.
    inflight_[s].fetch_add(1, std::memory_order_seq_cst);
    InflightGuard guard(inflight_[s]);
    if (routing_.load() == r) {
      return op(*shards_[s], nullptr);
    }
    // Routing moved under us: retry against the current snapshot.
  }
  std::lock_guard<std::mutex> lock(split_mu_);
  const Routing* r = routing_.load();
  const uint32_t s = route_shard(*r, h1);
  HashTable* mirror = nullptr;
  if (r->split_active && s == r->split_source &&
      in_split_upper_half(h1, r->split_depth)) {
    mirror = shards_[r->split_target].get();
  }
  return op(*shards_[s], mirror);
}

void ShardedTable::mirror_put(HashTable* mirror, const Key& key,
                              const Value& value) {
  // Upsert: migration may or may not have copied the key yet. Under the
  // exclusive split lock the two-step upsert cannot race, so any failure is
  // a real capacity wall — flag the split for abort; the source write
  // already succeeded and the source stays authoritative until publish.
  const Status s = mirror->put_s(key, value);
  if (!s.ok()) split_failed_.store(true, std::memory_order_relaxed);
}

void ShardedTable::mirror_erase(HashTable* mirror, const Key& key) {
  mirror->erase_s(key);  // a miss just means migration hadn't copied it
}

bool ShardedTable::insert(const Key& key, const Value& value) {
  return write_routed(key, [&](HashTable& t, HashTable* mirror) {
    const bool ok = t.insert(key, value);
    if (ok && mirror) mirror_put(mirror, key, value);
    return ok;
  });
}

bool ShardedTable::update(const Key& key, const Value& value) {
  return write_routed(key, [&](HashTable& t, HashTable* mirror) {
    const bool ok = t.update(key, value);
    if (ok && mirror) mirror_put(mirror, key, value);
    return ok;
  });
}

bool ShardedTable::erase(const Key& key) {
  return write_routed(key, [&](HashTable& t, HashTable* mirror) {
    const bool ok = t.erase(key);
    if (ok && mirror) mirror_erase(mirror, key);
    return ok;
  });
}

bool ShardedTable::search(const Key& key, Value* out) {
  const uint64_t h1 = key_hash1(key);
  // Seqlock-style: serve from the snapshot's owner, then re-check the
  // snapshot. If an epoch change raced the lookup (a split published and
  // its cleanup may already have erased the source's moved copies), retry —
  // lookups are idempotent. Splits are rare and serialized, so this loops
  // at most a handful of times over the facade's lifetime.
  for (;;) {
    const Routing* r = routing_.load();
    const bool hit = shards_[route_shard(*r, h1)]->search(key, out);
    if (routing_.load() == r) return hit;
  }
}

Status ShardedTable::insert_s(const Key& key, const Value& value) {
  return guard([&] {
    return write_routed(key, [&](HashTable& t, HashTable* mirror) {
      const Status s = t.insert_s(key, value);
      if (s.ok() && mirror) mirror_put(mirror, key, value);
      return s;
    });
  });
}

Status ShardedTable::update_s(const Key& key, const Value& value) {
  return guard([&] {
    return write_routed(key, [&](HashTable& t, HashTable* mirror) {
      const Status s = t.update_s(key, value);
      if (s.ok() && mirror) mirror_put(mirror, key, value);
      return s;
    });
  });
}

Status ShardedTable::erase_s(const Key& key) {
  return guard([&] {
    return write_routed(key, [&](HashTable& t, HashTable* mirror) {
      const Status s = t.erase_s(key);
      if (s.ok() && mirror) mirror_erase(mirror, key);
      return s;
    });
  });
}

Status ShardedTable::search_s(const Key& key, Value* out) {
  return guard([&] {
    const uint64_t h1 = key_hash1(key);
    for (;;) {
      const Routing* r = routing_.load();
      const Status s = shards_[route_shard(*r, h1)]->search_s(key, out);
      if (routing_.load() == r) return s;
    }
  });
}

size_t ShardedTable::multiget(const Key* keys, size_t n, Value* values,
                              bool* found) {
  if (n == 0) return 0;
  for (;;) {
    const Routing* r = routing_.load();
    const uint32_t ns = r->shard_count;
    if (ns == 1 && !r->split_active) {
      const size_t hits = shards_[r->entry[0]]->multiget(keys, n, values, found);
      if (routing_.load() == r) return hits;
      continue;
    }

    // Hash each key once, collapse duplicate keys to their first position
    // (a key repeated K times crosses the shard boundary once), then group
    // the representatives by shard so each inner table sees one phased
    // batch and scatter the answers back.
    std::vector<uint64_t> h1(n);
    for (size_t i = 0; i < n; ++i) h1[i] = key_hash1(keys[i]);
    std::vector<uint32_t> rep(n);
    dedup_batch_positions(keys, n, h1.data(), rep.data());

    std::vector<std::vector<uint32_t>> groups(ns);
    for (size_t i = 0; i < n; ++i) {
      if (rep[i] != i) continue;
      groups[route_shard(*r, h1[i])].push_back(static_cast<uint32_t>(i));
    }

    std::vector<Key> skeys;
    std::vector<Value> svalues;
    std::vector<uint8_t> sfound;
    for (uint32_t s = 0; s < ns; ++s) {
      const auto& idx = groups[s];
      if (idx.empty()) continue;
      skeys.clear();
      skeys.reserve(idx.size());
      for (uint32_t i : idx) skeys.push_back(keys[i]);
      svalues.resize(idx.size());
      sfound.assign(idx.size(), 0);
      shards_[s]->multiget(skeys.data(), idx.size(), svalues.data(),
                           reinterpret_cast<bool*>(sfound.data()));
      for (size_t j = 0; j < idx.size(); ++j) {
        found[idx[j]] = sfound[j] != 0;
        if (sfound[j]) values[idx[j]] = svalues[j];
      }
    }

    // Fan duplicates out from their representatives; every position (dupes
    // included) counts its own hit, matching the serial-get semantics.
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      if (rep[i] != i) {
        found[i] = found[rep[i]];
        if (found[i]) values[i] = values[rep[i]];
      }
      if (found[i]) ++hits;
    }
    if (routing_.load() == r) return hits;  // epoch change raced us: redo
  }
}

uint64_t ShardedTable::size() const {
  // Live shards under one snapshot: an in-flight split target is excluded
  // (its contents duplicate the source until the publish).
  const Routing* r = routing();
  uint64_t total = 0;
  for (uint32_t s = 0; s < r->shard_count; ++s) total += shards_[s]->size();
  return total;
}

double ShardedTable::load_factor() const {
  // Aggregate items / aggregate slots, recovering each shard's slot count
  // from its own ratio (the interface does not expose slots directly).
  const Routing* r = routing();
  double slots = 0, items = 0;
  for (uint32_t s = 0; s < r->shard_count; ++s) {
    const double lf = shards_[s]->load_factor();
    const double sz = static_cast<double>(shards_[s]->size());
    items += sz;
    if (lf > 0) slots += sz / lf;
  }
  return slots > 0 ? items / slots : 0.0;
}

// ---------------------------------------------------------------------------
// The online split machine
// ---------------------------------------------------------------------------

Status ShardedTable::split_shard(uint32_t shard) {
  std::lock_guard<std::mutex> admin(split_admin_mu_);
  if (!shard_factory_) {
    return Status::InvalidArgument(
        "store built without a shard factory: splits unavailable");
  }
  if (shard >= shards()) return Status::InvalidArgument("no such shard");
  if (!layout_->can_split(shard)) {
    return Status::InvalidArgument(
        "shard cannot split (local depth maxed, no spare region, or a split "
        "already in flight)");
  }
  auto* source_h = dynamic_cast<Hdnh*>(shards_[shard].get());
  if (!source_h) {
    return Status::InvalidArgument("online split requires an hdnh shard");
  }

  HDNH_OBS_SPAN("split", "shard_split");
  // One scope for the whole split: every durability event underneath —
  // marker writes, target format, migration copies, the directory flip,
  // cleanup erases — carries kFaultShardSplit for mask-filtered sweeps.
  nvm::FaultScope fault_scope(nvm::kFaultShardSplit);
  split_failed_.store(false, std::memory_order_relaxed);

  const uint32_t source = shard;
  const uint32_t split_depth = layout_->local_depth(source);
  uint32_t target = 0;
  std::unique_ptr<HashTable> fresh;
  try {
    target = layout_->begin_split(source);
    fresh = shard_factory_(layout_->shard_alloc(target));
  } catch (const TableFullError& e) {
    if (layout_->split_in_progress()) layout_->abort_split();
    return Status::TableFull(e.what());
  } catch (const std::bad_alloc&) {
    if (layout_->split_in_progress()) layout_->abort_split();
    return Status::TableFull("split target region too small for the scheme");
  }

  // Make the split visible: install the target table, then the split-active
  // snapshot, then drain writers that pre-date it (they run un-mirrored).
  // The superseded snapshot is retained by routing_history_, so an abort
  // can revert to it without allocating anything.
  const Routing* pre_split = nullptr;
  {
    std::lock_guard<std::mutex> lock(split_mu_);
    if (auto* h = dynamic_cast<Hdnh*>(fresh.get())) {
      h->set_obs_heat(obs_heat_.get(), target);
    }
    shards_[target] = std::move(fresh);
    pre_split = routing();
    auto r = std::make_unique<Routing>(*pre_split);
    r->split_active = true;
    r->split_source = source;
    r->split_target = target;
    r->split_depth = split_depth;
    install_routing(std::move(r));
  }
  while (inflight_[source].load() != 0) std::this_thread::yield();

  // Snapshot the moving half's keys, then copy in small batches with the
  // current value re-read under the lock; writers interleave between
  // batches (and their mirror writes keep already-copied keys current).
  std::vector<Key> moving;
  {
    std::lock_guard<std::mutex> lock(split_mu_);
    source_h->for_each([&](const KVPair& kv) {
      if (in_split_upper_half(key_hash1(kv.key), split_depth)) {
        moving.push_back(kv.key);
      }
    });
  }
  constexpr size_t kBatch = 128;
  Status fail = Status::Ok();
  for (size_t i = 0; i < moving.size() && fail.ok(); i += kBatch) {
    std::lock_guard<std::mutex> lock(split_mu_);
    const size_t end = std::min(moving.size(), i + kBatch);
    for (size_t j = i; j < end; ++j) {
      Value v;
      if (!shards_[source]->search(moving[j], &v)) continue;  // erased since
      const Status s = shards_[target]->put_s(moving[j], v);
      if (!s.ok()) {
        fail = s;
        break;
      }
    }
  }
  // Abort or publish, decided and executed inside ONE split_mu_ critical
  // section. Mirror writes run under the same lock, so the split_failed_
  // re-check below is definitive: no writer can overflow the target
  // between the verdict and the directory flip (a check outside the lock
  // would leave exactly that window, and a publish after a failed mirror
  // write silently loses the acknowledged op once cleanup erases the
  // source copy).
  {
    std::lock_guard<std::mutex> lock(split_mu_);
    if (fail.ok() && split_failed_.load(std::memory_order_relaxed)) {
      fail = Status::TableFull("mirror write overflowed the split target");
    }
    if (!fail.ok()) {
      // Abort: revert to the retained pre-split snapshot (stops the
      // mirroring, allocates nothing), then tear the target down and
      // release the region.
      routing_.store(pre_split);
      shards_[target].reset();
      layout_->abort_split();
      return fail;
    }
    // Publish: flip the persisted directory (the crash-atomic commit
    // point). The snapshot installed here carries the retargeted
    // directory but keeps the split marked active, so writes to the
    // source continue to serialize on split_mu_ while the cleanup scans
    // it — Hdnh::for_each is only stable against quiescent writers.
    layout_->publish_split();
    auto r = snapshot_from(*layout_);
    r->split_active = true;
    r->split_source = source;
    r->split_target = target;
    r->split_depth = split_depth;
    install_routing(std::move(r));
    splits_.fetch_add(1, std::memory_order_relaxed);
    if (obs_heat_) obs_heat_->set_live(layout_->shards());
  }

  // The migrated keys now route to the target; drop the source's stale
  // copies (scans and erases run under split_mu_, see the function). The
  // cleanup is idempotent: a crash anywhere in here is replayed by the
  // next attach. Only then does the split leave the routing snapshot and
  // the persisted marker clear.
  cleanup_published_split();
  {
    std::lock_guard<std::mutex> lock(split_mu_);
    install_routing(snapshot_from(*layout_));
  }
  layout_->clear_split_state();
  return Status::Ok();
}

void ShardedTable::cleanup_published_split() {
  const uint32_t src = layout_->split_source();
  Hdnh& source = hdnh_shard(src);
  const uint32_t g = layout_->global_depth();
  std::array<uint8_t, nvm::ShardMapSuper::kMaxShards> entry{};
  for (uint32_t e = 0; e < layout_->dir_entries(); ++e) {
    entry[e] = static_cast<uint8_t>(layout_->dir_shard(e));
  }
  nvm::FaultScope fault_scope(nvm::kFaultShardSplit);
  // The scan must see a quiescent shard: Hdnh::for_each may skip records
  // while writers run concurrently, and a skipped victim would survive as
  // a permanent duplicate once the split marker clears. Post-publish
  // writes to the source still serialize on split_mu_ (the routing
  // snapshot keeps the split marked active until after this returns), so
  // scanning under the lock is stable; erases run in batches under the
  // same lock to bound writer stalls. The outer loop re-scans until a
  // full pass finds no victims — no new ones can appear (keys that left
  // the source no longer route to it), so it terminates.
  constexpr size_t kBatch = 128;
  for (;;) {
    std::vector<Key> victims;
    {
      std::lock_guard<std::mutex> lock(split_mu_);
      source.for_each([&](const KVPair& kv) {
        if (entry[shard_route_entry(key_hash1(kv.key), g)] != src) {
          victims.push_back(kv.key);
        }
      });
    }
    if (victims.empty()) return;
    for (size_t i = 0; i < victims.size(); i += kBatch) {
      std::lock_guard<std::mutex> lock(split_mu_);
      const size_t end = std::min(victims.size(), i + kBatch);
      for (size_t j = i; j < end; ++j) source.erase(victims[j]);
    }
  }
}

ShardAdmin::Directory ShardedTable::shard_directory() const {
  Directory d;
  const Routing* r = routing();
  d.global_depth = r->global_depth;
  d.shard_count = r->shard_count;
  d.max_shards = max_shards();
  d.epoch = r->seq;
  d.split_active = r->split_active;
  d.split_source = r->split_source;
  d.split_target = r->split_target;
  d.entries.assign(r->entry.begin(),
                   r->entry.begin() + (size_t{1} << r->global_depth));
  std::vector<obs::ShardHeat::Window> heat;
  if (obs_heat_) {
    // window() must run under the registry lock; visit_heats provides it.
    obs::Windows::visit_heats([&](const obs::ShardHeat& h) {
      if (&h == obs_heat_.get()) heat = h.window();
    });
  }
  for (uint32_t s = 0; s < d.shard_count; ++s) {
    ShardInfo info;
    info.id = s;
    info.local_depth = layout_->local_depth(s);
    info.items = shards_[s]->size();
    if (s < heat.size()) {
      info.heat_ops = heat[s].ops;
      info.heat_lat_sum_ns = heat[s].lat_sum_ns;
      info.heat_lat_count = heat[s].lat_count;
    }
    d.shards.push_back(info);
  }
  return d;
}

// ---------------------------------------------------------------------------
// Background split controller
// ---------------------------------------------------------------------------

void ShardedTable::start_controller() {
  controller_ = std::thread([this] { controller_loop(); });
}

void ShardedTable::stop_controller() {
  {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    ctl_stop_ = true;
  }
  ctl_cv_.notify_all();
  if (controller_.joinable()) controller_.join();
}

void ShardedTable::controller_loop() {
  std::unique_lock<std::mutex> lk(ctl_mu_);
  while (!ctl_stop_) {
    ctl_cv_.wait_for(
        lk, std::chrono::milliseconds(split_opts_.controller_period_ms));
    if (ctl_stop_) break;
    lk.unlock();
    maybe_auto_split();
    lk.lock();
  }
}

void ShardedTable::maybe_auto_split() {
  if (!obs_heat_) return;
  for (uint32_t& c : ctl_cooldown_) {
    if (c > 0) --c;
  }
  std::vector<obs::ShardHeat::Window> w;
  obs::Windows::visit_heats([&](const obs::ShardHeat& h) {
    if (&h == obs_heat_.get()) w = h.window();
  });
  if (w.empty()) return;
  uint64_t total = 0;
  for (const auto& x : w) total += x.ops;
  if (total < split_opts_.min_window_ops) return;
  uint32_t hot = 0;
  for (uint32_t s = 1; s < w.size(); ++s) {
    if (w[s].ops > w[hot].ops) hot = s;
  }
  if (static_cast<double>(w[hot].ops) <
      split_opts_.split_load_threshold * static_cast<double>(total)) {
    return;
  }
  if (ctl_cooldown_[hot] > 0) return;
  if (!layout_->can_split(hot)) return;
  // Best effort: a losing race or a full target just means no split this
  // tick. A failed attempt (e.g. the spare region cannot absorb the hot
  // half) is expensive and would fail identically next tick, so back the
  // shard off for a while before re-evaluating it.
  const Status s = split_shard(hot);
  if (!s.ok()) ctl_cooldown_[hot] = split_opts_.failed_split_backoff_ticks;
}

// ---------------------------------------------------------------------------
// HDNH-shard aggregates
// ---------------------------------------------------------------------------

Hdnh& ShardedTable::hdnh_shard(uint32_t s) const {
  auto* h = dynamic_cast<Hdnh*>(shards_[s].get());
  if (!h) {
    throw std::logic_error(std::string(name_) +
                           ": operation requires hdnh shards");
  }
  return *h;
}

void ShardedTable::for_each(
    const std::function<void(const KVPair&)>& fn) const {
  const Routing* r = routing();
  for (uint32_t s = 0; s < r->shard_count; ++s) hdnh_shard(s).for_each(fn);
}

Hdnh::IntegrityReport ShardedTable::check_integrity() {
  HDNH_OBS_SPAN("integrity", "store_check_integrity");
  Hdnh::IntegrityReport agg;
  for (uint32_t s = 0; s < shards(); ++s) {
    const Hdnh::IntegrityReport r = hdnh_shard(s).check_integrity();
    agg.items += r.items;
    agg.ocf_valid_mismatches += r.ocf_valid_mismatches;
    agg.fingerprint_mismatches += r.fingerprint_mismatches;
    agg.stuck_busy_entries += r.stuck_busy_entries;
    agg.duplicate_keys += r.duplicate_keys;
    agg.hot_table_stale += r.hot_table_stale;
    agg.armed_log_entries += r.armed_log_entries;
  }
  return agg;
}

Hdnh::RecoveryStats ShardedTable::last_recovery() const {
  Hdnh::RecoveryStats agg;
  for (uint32_t s = 0; s < shards(); ++s) {
    const Hdnh::RecoveryStats r = hdnh_shard(s).last_recovery();
    agg.ocf_ms += r.ocf_ms;
    agg.hot_ms += r.hot_ms;
    agg.total_ms += r.total_ms;
    agg.items += r.items;
    agg.resumed_resize = agg.resumed_resize || r.resumed_resize;
  }
  return agg;
}

uint64_t ShardedTable::resize_count() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < shards(); ++s) total += hdnh_shard(s).resize_count();
  return total;
}

void ShardedTable::abandon_after_crash() {
  stop_controller();
  // Every constructed inner — including an in-flight split target beyond
  // the live count — must sever from the pool before destruction.
  for (auto& sp : shards_) {
    if (!sp) continue;
    if (auto* h = dynamic_cast<Hdnh*>(sp.get())) h->abandon_after_crash();
  }
}

}  // namespace hdnh::store
