#include "store/sharded_table.h"

#include <stdexcept>

#include "api/batch.h"
#include "obs/metrics.h"
#include "obs/window.h"

namespace hdnh::store {

ShardedTable::ShardedTable(std::unique_ptr<nvm::ShardedPmemLayout> layout,
                           std::vector<std::unique_ptr<HashTable>> shards,
                           std::string name)
    : layout_(std::move(layout)),
      shards_(std::move(shards)),
      name_(std::move(name)) {
  if (shards_.empty()) throw std::invalid_argument("sharded table needs >= 1 shard");
  if (layout_ && layout_->shards() != shards_.size()) {
    throw std::invalid_argument("layout/table shard count mismatch");
  }
  if constexpr (obs::kCompiledIn) {
    obs_label_ = "store=\"" + name_ + "\"";
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_store_shards", obs_label_, "Shard count of the store facade",
        [this] { return static_cast<double>(this->shards()); }));
    obs_gauges_.push_back(obs::Metrics::add_gauge(
        "hdnh_store_load_factor", obs_label_,
        "Aggregate items / aggregate slots across shards",
        [this] { return load_factor(); }));
    // Under a multi-DIMM pool each shard region has a persisted home DIMM
    // (the stripe its region base starts on); export the placement so a
    // scrape can see how the carve spread across the device.
    if (layout_ && layout_->shard_alloc(0).pool().dimm_count() > 1) {
      for (uint32_t s = 0; s < layout_->shards(); ++s) {
        obs_gauges_.push_back(obs::Metrics::add_gauge(
            "hdnh_store_shard_home_dimm",
            obs_label_ + ",shard=\"" + std::to_string(s) + "\"",
            "Home DIMM of the shard's region base",
            [this, s] { return static_cast<double>(this->layout_->shard_dimm(s)); }));
      }
    }
    // Windowed heat: one slot per shard, rotated by the obs aggregator.
    // HDNH inners attribute every op they serve to their slot; other inner
    // schemes simply leave theirs cold.
    obs_heat_ = std::make_unique<obs::ShardHeat>(this->shards(), obs_label_);
    for (uint32_t s = 0; s < this->shards(); ++s) {
      if (auto* h = dynamic_cast<Hdnh*>(shards_[s].get())) {
        h->set_obs_heat(obs_heat_.get(), s);
      }
      // Per-shard occupancy, so a scrape can tell a hot shard (windowed
      // ops) from a full one.
      obs_gauges_.push_back(obs::Metrics::add_gauge(
          "hdnh_shard_items",
          obs_label_ + ",shard=\"" + std::to_string(s) + "\"",
          "Live items in the shard",
          [this, s] { return static_cast<double>(this->shards_[s]->size()); }));
      obs_gauges_.push_back(obs::Metrics::add_gauge(
          "hdnh_shard_load_factor",
          obs_label_ + ",shard=\"" + std::to_string(s) + "\"",
          "Items / slots of the shard",
          [this, s] { return this->shards_[s]->load_factor(); }));
    }
  }
}

ShardedTable::~ShardedTable() {
  for (const uint64_t id : obs_gauges_) obs::Metrics::remove_gauge(id);
}

bool ShardedTable::insert(const Key& key, const Value& value) {
  return shards_[shard_of(key)]->insert(key, value);
}

bool ShardedTable::search(const Key& key, Value* out) {
  return shards_[shard_of(key)]->search(key, out);
}

bool ShardedTable::update(const Key& key, const Value& value) {
  return shards_[shard_of(key)]->update(key, value);
}

bool ShardedTable::erase(const Key& key) {
  return shards_[shard_of(key)]->erase(key);
}

Status ShardedTable::insert_s(const Key& key, const Value& value) {
  return guard([&] { return shards_[shard_of(key)]->insert_s(key, value); });
}

Status ShardedTable::search_s(const Key& key, Value* out) {
  return guard([&] { return shards_[shard_of(key)]->search_s(key, out); });
}

Status ShardedTable::update_s(const Key& key, const Value& value) {
  return guard([&] { return shards_[shard_of(key)]->update_s(key, value); });
}

Status ShardedTable::erase_s(const Key& key) {
  return guard([&] { return shards_[shard_of(key)]->erase_s(key); });
}

size_t ShardedTable::multiget(const Key* keys, size_t n, Value* values,
                              bool* found) {
  if (n == 0) return 0;
  const uint32_t ns = shards();
  if (ns == 1) return shards_[0]->multiget(keys, n, values, found);

  // Hash each key once, collapse duplicate keys to their first position
  // (a key repeated K times crosses the shard boundary once), then group
  // the representatives by shard so each inner table sees one phased batch
  // and scatter the answers back.
  std::vector<uint64_t> h1(n);
  for (size_t i = 0; i < n; ++i) h1[i] = key_hash1(keys[i]);
  std::vector<uint32_t> rep(n);
  dedup_batch_positions(keys, n, h1.data(), rep.data());

  std::vector<std::vector<uint32_t>> groups(ns);
  for (size_t i = 0; i < n; ++i) {
    if (rep[i] != i) continue;
    groups[shard_of_hash(h1[i], ns)].push_back(static_cast<uint32_t>(i));
  }

  std::vector<Key> skeys;
  std::vector<Value> svalues;
  std::vector<uint8_t> sfound;
  for (uint32_t s = 0; s < ns; ++s) {
    const auto& idx = groups[s];
    if (idx.empty()) continue;
    skeys.clear();
    skeys.reserve(idx.size());
    for (uint32_t i : idx) skeys.push_back(keys[i]);
    svalues.resize(idx.size());
    sfound.assign(idx.size(), 0);
    shards_[s]->multiget(skeys.data(), idx.size(), svalues.data(),
                         reinterpret_cast<bool*>(sfound.data()));
    for (size_t j = 0; j < idx.size(); ++j) {
      found[idx[j]] = sfound[j] != 0;
      if (sfound[j]) values[idx[j]] = svalues[j];
    }
  }

  // Fan duplicates out from their representatives; every position (dupes
  // included) counts its own hit, matching the serial-get semantics.
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rep[i] != i) {
      found[i] = found[rep[i]];
      if (found[i]) values[i] = values[rep[i]];
    }
    if (found[i]) ++hits;
  }
  return hits;
}

uint64_t ShardedTable::size() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->size();
  return total;
}

double ShardedTable::load_factor() const {
  // Aggregate items / aggregate slots, recovering each shard's slot count
  // from its own ratio (the interface does not expose slots directly).
  double slots = 0, items = 0;
  for (const auto& s : shards_) {
    const double lf = s->load_factor();
    const double sz = static_cast<double>(s->size());
    items += sz;
    if (lf > 0) slots += sz / lf;
  }
  return slots > 0 ? items / slots : 0.0;
}

Hdnh& ShardedTable::hdnh_shard(uint32_t s) const {
  auto* h = dynamic_cast<Hdnh*>(shards_[s].get());
  if (!h) {
    throw std::logic_error(std::string(name_) +
                           ": operation requires hdnh shards");
  }
  return *h;
}

void ShardedTable::for_each(
    const std::function<void(const KVPair&)>& fn) const {
  for (uint32_t s = 0; s < shards(); ++s) hdnh_shard(s).for_each(fn);
}

Hdnh::IntegrityReport ShardedTable::check_integrity() {
  HDNH_OBS_SPAN("integrity", "store_check_integrity");
  Hdnh::IntegrityReport agg;
  for (uint32_t s = 0; s < shards(); ++s) {
    const Hdnh::IntegrityReport r = hdnh_shard(s).check_integrity();
    agg.items += r.items;
    agg.ocf_valid_mismatches += r.ocf_valid_mismatches;
    agg.fingerprint_mismatches += r.fingerprint_mismatches;
    agg.stuck_busy_entries += r.stuck_busy_entries;
    agg.duplicate_keys += r.duplicate_keys;
    agg.hot_table_stale += r.hot_table_stale;
    agg.armed_log_entries += r.armed_log_entries;
  }
  return agg;
}

Hdnh::RecoveryStats ShardedTable::last_recovery() const {
  Hdnh::RecoveryStats agg;
  for (uint32_t s = 0; s < shards(); ++s) {
    const Hdnh::RecoveryStats r = hdnh_shard(s).last_recovery();
    agg.ocf_ms += r.ocf_ms;
    agg.hot_ms += r.hot_ms;
    agg.total_ms += r.total_ms;
    agg.items += r.items;
    agg.resumed_resize = agg.resumed_resize || r.resumed_resize;
  }
  return agg;
}

uint64_t ShardedTable::resize_count() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < shards(); ++s) total += hdnh_shard(s).resize_count();
  return total;
}

void ShardedTable::abandon_after_crash() {
  for (uint32_t s = 0; s < shards(); ++s) hdnh_shard(s).abandon_after_crash();
}

}  // namespace hdnh::store
