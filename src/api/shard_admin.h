// ShardAdmin — the administrative face of an elastically sharded store.
//
// The serving interfaces (HashTable, KvStore) deliberately hide the shard
// directory: routing is an implementation detail of the facade. Admin
// surfaces — the RESP server's SHARDS / RESHARD verbs, hdnh_doctor,
// operators' scripts — need the opposite: a stable way to *see* the
// directory (global depth, per-shard local depth / occupancy / heat) and
// to *drive* it (trigger an online split). ShardAdmin is that contract,
// defined here at the api layer so upper layers (src/net, tools) can
// depend on the interface without linking the store facade; the facade
// (store::ShardedTable) implements it, and KvStore::shard_admin() exposes
// it when the underlying table is sharded.
#pragma once

#include <cstdint>
#include <vector>

#include "api/types.h"

namespace hdnh {

class ShardAdmin {
 public:
  struct ShardInfo {
    uint32_t id = 0;
    uint32_t local_depth = 0;
    uint64_t items = 0;
    // Windowed heat (obs::ShardHeat merge; zero when the obs gate is off
    // or the window is idle).
    uint64_t heat_ops = 0;
    uint64_t heat_lat_sum_ns = 0;
    uint64_t heat_lat_count = 0;
  };

  // A consistent point-in-time dump of the shard directory.
  struct Directory {
    uint32_t global_depth = 0;
    uint32_t shard_count = 0;
    uint32_t max_shards = 0;  // carved regions = split headroom ceiling
    uint64_t epoch = 0;       // publish sequence; bumps once per split
    bool split_active = false;
    uint32_t split_source = 0;
    uint32_t split_target = 0;
    std::vector<uint8_t> entries;  // 2^global_depth entries -> shard id
    std::vector<ShardInfo> shards;
  };

  virtual ~ShardAdmin() = default;

  virtual Directory shard_directory() const = 0;

  // Synchronous online split of `shard`: migrate its upper hash half to a
  // freshly carved region and publish the retargeted directory. Returns
  // kInvalidArgument when the shard cannot split (bad id, depth maxed, no
  // spare region, or a split already in flight), kTableFull when the
  // target region cannot hold the migrated keys.
  virtual Status split_shard(uint32_t shard) = 0;
};

}  // namespace hdnh
