// KvStore — the variable-length key/value surface of API v2.
//
// HashTable speaks fixed 16 B keys / 15 B values (the paper's record
// shape); everything above the storage layer — the RESP server, the YCSB
// runner, client tools — wants arbitrary byte strings. KvStore is that
// surface: Status-based string operations with per-store limits the caller
// can introspect (max_key_len / max_value_len), so protocol error messages
// derive from the store instead of hard-coding the paper's toy sizes.
//
// Two implementations exist:
//   * FixedTableKv (here) — wraps any HashTable behind the fixed-record
//     codec: strings are packed into the 16/15-byte boxes with their length
//     in the last byte (wire keys 0..15 bytes, values 0..14 bytes; distinct
//     strings map to distinct records, decode recovers exact bytes).
//     Oversized payloads are rejected with kInvalidArgument, never
//     truncated.
//   * vkv::VkvStore (src/vkv) — the value-log-backed store: keys up to
//     64 KiB, values up to 16 MiB, small values still inlined in the fixed
//     record to preserve the paper's read path.
//
// This header is intentionally header-only so lower layers (src/vkv) can
// implement the interface without linking hdnh_api.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/batch.h"
#include "api/hash_table.h"
#include "api/shard_admin.h"
#include "api/types.h"

namespace hdnh {

class KvStore {
 public:
  virtual ~KvStore() = default;

  // The shard-directory admin surface (SHARDS / RESHARD), when the store
  // is elastically sharded; nullptr for single-table and value-log stores.
  // The pointer shares the store's lifetime.
  virtual ShardAdmin* shard_admin() { return nullptr; }

  virtual const char* name() const = 0;
  virtual uint64_t size() const = 0;
  virtual double load_factor() const = 0;

  // Inclusive byte limits for keys/values this store accepts. Callers
  // (the server) build their protocol errors from these.
  virtual size_t max_key_len() const = 0;
  virtual size_t max_value_len() const = 0;

  // Upsert. kOk whether the key was new or replaced.
  virtual Status put(std::string_view key, std::string_view value) = 0;
  // Insert-if-absent. kExists when the key is present.
  virtual Status insert(std::string_view key, std::string_view value) = 0;
  // Point lookup; assigns *out on kOk. kNotFound on miss.
  virtual Status get(std::string_view key, std::string* out) = 0;
  // kNotFound when the key is absent.
  virtual Status erase(std::string_view key) = 0;

  // Batched lookup: values[i]/found[i] for each keys[i]; returns the
  // number of hits. Implementations route through the index's phased
  // multiget where they can; the default is n independent gets.
  virtual size_t multiget(const std::string_view* keys, size_t n,
                          std::string* values, uint8_t* found) {
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      found[i] = get(keys[i], &values[i]).ok() ? 1 : 0;
      hits += found[i];
    }
    return hits;
  }
};

// ---------------------------------------------------------------------------
// Fixed-record codec: strings <-> the paper's 16/15-byte boxes. Length in
// the last byte, zero padding in between.
// ---------------------------------------------------------------------------

inline constexpr size_t kMaxWireKeyLen = kKeyBytes - 1;      // 15
inline constexpr size_t kMaxWireValueLen = kValueBytes - 1;  // 14

inline bool encode_key(std::string_view s, Key* out) {
  if (s.size() > kMaxWireKeyLen) return false;
  std::memset(out->b, 0, kKeyBytes);
  std::memcpy(out->b, s.data(), s.size());
  out->b[kKeyBytes - 1] = static_cast<uint8_t>(s.size());
  return true;
}

inline bool encode_value(std::string_view s, Value* out) {
  if (s.size() > kMaxWireValueLen) return false;
  std::memset(out->b, 0, kValueBytes);
  std::memcpy(out->b, s.data(), s.size());
  out->b[kValueBytes - 1] = static_cast<uint8_t>(s.size());
  return true;
}

inline std::string decode_value(const Value& v) {
  const size_t len = v.b[kValueBytes - 1];
  return std::string(reinterpret_cast<const char*>(v.b),
                     len > kMaxWireValueLen ? kMaxWireValueLen : len);
}

inline std::string decode_key(const Key& k) {
  const size_t len = k.b[kKeyBytes - 1];
  return std::string(reinterpret_cast<const char*>(k.b),
                     len > kMaxWireKeyLen ? kMaxWireKeyLen : len);
}

// ---------------------------------------------------------------------------
// FixedTableKv — any HashTable behind the KvStore surface.
// ---------------------------------------------------------------------------

class FixedTableKv final : public KvStore {
 public:
  explicit FixedTableKv(HashTable& table) : table_(&table) {}
  explicit FixedTableKv(std::unique_ptr<HashTable> table)
      : owned_(std::move(table)), table_(owned_.get()) {}

  HashTable& table() { return *table_; }

  ShardAdmin* shard_admin() override {
    return dynamic_cast<ShardAdmin*>(table_);
  }

  const char* name() const override { return table_->name(); }
  uint64_t size() const override { return table_->size(); }
  double load_factor() const override { return table_->load_factor(); }
  size_t max_key_len() const override { return kMaxWireKeyLen; }
  size_t max_value_len() const override { return kMaxWireValueLen; }

  Status put(std::string_view key, std::string_view value) override {
    Key k;
    Value v;
    Status s = encode(key, value, &k, &v);
    return s.ok() ? table_->put_s(k, v) : s;
  }

  Status insert(std::string_view key, std::string_view value) override {
    Key k;
    Value v;
    Status s = encode(key, value, &k, &v);
    return s.ok() ? table_->insert_s(k, v) : s;
  }

  Status get(std::string_view key, std::string* out) override {
    Key k;
    if (!encode_key(key, &k)) return Status::NotFound();  // cannot exist
    Value v;
    const Status s = table_->search_s(k, &v);
    if (s.ok() && out) *out = decode_value(v);
    return s;
  }

  Status erase(std::string_view key) override {
    Key k;
    if (!encode_key(key, &k)) return Status::NotFound();
    return table_->erase_s(k);
  }

  size_t multiget(const std::string_view* keys, size_t n,
                  std::string* values, uint8_t* found) override {
    // One span multiget for the encodable keys, packed to the front, so a
    // batched caller hits the store's phased pipeline (sharded regrouping,
    // OCF prefilter, overlapped NVM reads) instead of n serial probes.
    thread_local std::vector<Key> mkeys;
    thread_local std::vector<Value> mvals;
    thread_local std::vector<uint8_t> mfound;
    thread_local std::vector<uint8_t> mvalid;
    mkeys.resize(n);
    mvals.resize(n);
    mfound.assign(n, 0);
    mvalid.resize(n);
    size_t m = 0;
    for (size_t i = 0; i < n; ++i) {
      mvalid[i] = encode_key(keys[i], &mkeys[m]) ? 1 : 0;
      if (mvalid[i]) ++m;
    }
    hdnh::multiget(*table_, std::span<const Key>(mkeys.data(), m),
                   std::span<Value>(mvals.data(), m),
                   std::span<uint8_t>(mfound.data(), m));
    size_t hits = 0, j = 0;
    for (size_t i = 0; i < n; ++i) {
      if (mvalid[i] && mfound[j]) {
        values[i] = decode_value(mvals[j]);
        found[i] = 1;
        ++hits;
      } else {
        found[i] = 0;
      }
      j += mvalid[i];
    }
    return hits;
  }

 private:
  static Status encode(std::string_view key, std::string_view value, Key* k,
                       Value* v) {
    if (!encode_key(key, k)) {
      return Status::InvalidArgument("key too long (max " +
                                     std::to_string(kMaxWireKeyLen) +
                                     " bytes)");
    }
    if (!encode_value(value, v)) {
      return Status::InvalidArgument("value too long (max " +
                                     std::to_string(kMaxWireValueLen) +
                                     " bytes)");
    }
    return Status::Ok();
  }

  std::unique_ptr<HashTable> owned_;
  HashTable* table_;
};

}  // namespace hdnh
