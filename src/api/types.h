// Fixed-size key/value records shared by every scheme.
//
// The paper's evaluation uses 16-byte keys and 15-byte values ("we use
// 16-byte keys and 15-byte values for all experiments"); a record is
// therefore 31 bytes, and 8 records + an 8-byte persisted header fill one
// 256 B HDNH bucket exactly — the AEP block granularity the paper designs
// around.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/hash.h"

namespace hdnh {

inline constexpr size_t kKeyBytes = 16;
inline constexpr size_t kValueBytes = 15;

struct Key {
  uint8_t b[kKeyBytes];

  bool operator==(const Key& o) const {
    return std::memcmp(b, o.b, kKeyBytes) == 0;
  }
};

struct Value {
  uint8_t b[kValueBytes];

  bool operator==(const Value& o) const {
    return std::memcmp(b, o.b, kValueBytes) == 0;
  }
};

// A packed record: exactly 31 bytes, no padding.
#pragma pack(push, 1)
struct KVPair {
  Key key;
  Value value;
};
#pragma pack(pop)
static_assert(sizeof(Key) == 16 && sizeof(Value) == 15 && sizeof(KVPair) == 31);

// Deterministic key/value construction from a 64-bit id. Keys are scrambled
// (mix64) so numerically adjacent ids do not collide into adjacent buckets;
// the raw id is kept in the second half for debuggability, and values are
// derived from the id so tests can verify reads end-to-end.
inline Key make_key(uint64_t id) {
  Key k;
  uint64_t a = mix64(id);
  std::memcpy(k.b, &a, 8);
  std::memcpy(k.b + 8, &id, 8);
  return k;
}

inline Value make_value(uint64_t id) {
  Value v;
  uint64_t a = mix64(id ^ 0xABCDEF0123456789ULL);
  std::memcpy(v.b, &a, 8);
  uint64_t b2 = ~a;
  std::memcpy(v.b + 8, &b2, 7);
  return v;
}

inline uint64_t key_id(const Key& k) {
  uint64_t id;
  std::memcpy(&id, k.b + 8, 8);
  return id;
}

// Primary/secondary hashes every scheme derives its placement from.
inline uint64_t key_hash1(const Key& k) { return hash64(k.b, kKeyBytes, kSeed1); }
inline uint64_t key_hash2(const Key& k) { return hash64(k.b, kKeyBytes, kSeed2); }

// ---------------------------------------------------------------------------
// Status — the API v2 operation outcome.
//
// The bool interface collapses every non-success into `false` and reports
// capacity exhaustion by throwing from deep inside a scheme; a caller that
// must *report* outcomes (the network server, batch pipelines) needs them
// as distinct values. Status carries exactly the outcomes the schemes can
// produce; the _s methods on HashTable guarantee no scheme exception
// crosses the API boundary.
// ---------------------------------------------------------------------------

enum class StatusCode : uint8_t {
  kOk = 0,        // operation succeeded
  kNotFound,      // key absent (search/update/erase miss)
  kExists,        // insert of a key that is already present
  kTableFull,     // structure or pool exhausted (was TableFullError/bad_alloc)
  kRetry,         // transient conflict; the caller may retry
  kIOError,       // backing media / socket failure
  kLogFull,       // value log exhausted (GC found nothing to reclaim)
  kInvalidArgument,  // request outside the store's limits (oversize key/value)
};

inline const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kExists: return "exists";
    case StatusCode::kTableFull: return "table_full";
    case StatusCode::kRetry: return "retry";
    case StatusCode::kIOError: return "io_error";
    case StatusCode::kLogFull: return "log_full";
    case StatusCode::kInvalidArgument: return "invalid_argument";
  }
  return "unknown";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // kOk

  static Status Ok() { return Status(); }
  static Status NotFound() { return Status(StatusCode::kNotFound); }
  static Status Exists() { return Status(StatusCode::kExists); }
  static Status TableFull(std::string msg = {}) {
    return Status(StatusCode::kTableFull, std::move(msg));
  }
  static Status Retry(std::string msg = {}) {
    return Status(StatusCode::kRetry, std::move(msg));
  }
  static Status IOError(std::string msg = {}) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status LogFull(std::string msg = {}) {
    return Status(StatusCode::kLogFull, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = {}) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const char* code_name() const { return status_code_name(code_); }
  // Detail for humans/logs (may be empty); never needed to branch on.
  const std::string& message() const { return message_; }

  std::string to_string() const {
    return message_.empty() ? std::string(code_name())
                            : std::string(code_name()) + ": " + message_;
  }

  // Two statuses compare by code: the message is advisory detail.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }
  friend bool operator==(const Status& a, StatusCode c) {
    return a.code_ == c;
  }

 private:
  explicit Status(StatusCode code, std::string msg = {})
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace hdnh
