// Scheme factory: builds any of the hash tables in this repository behind
// the uniform HashTable interface, so tests and benches select schemes by
// name. Known base schemes:
//   "hdnh"        the paper's system (OCF + RAFL hot table)
//   "hdnh-lru"    HDNH with the LRU hot-table baseline (Fig 12 ablation)
//   "hdnh-noocf"  HDNH without fingerprint filtering (ablation)
//   "hdnh-nohot"  HDNH without the DRAM hot table (ablation)
//   "hdnh-bg"     HDNH with background synchronous-write threads (§3.4)
//   "level"       Level hashing baseline
//   "cceh"        CCEH baseline
//   "path"        Path hashing baseline
//
// Any base scheme accepts an "@N" suffix ("hdnh@8") selecting the sharded
// store runtime: N independent inner tables behind a ShardedTable facade,
// each in its own allocator region of the caller's pool, routed through a
// persisted extendible shard directory that can grow online (see
// docs/sharding.md). "@N" is sugar for ShardingOptions::initial_shards and
// takes precedence over it; either channel with a value > 1 produces the
// facade. Capacity and pool-size hints are split per shard.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/hash_table.h"
#include "api/kv_store.h"
#include "hdnh/config.h"
#include "nvm/alloc.h"

namespace hdnh {

// Elastic sharding configuration (replaces the old flat
// TableOptions::shards count). The store starts at initial_shards and can
// grow online — shard by shard, via RESHARD or the load-driven controller —
// up to max_shards, the number of pool regions carved up front.
struct ShardingOptions {
  // Shards the store starts with (1 = the plain single table unless the
  // scheme name carries an "@N" suffix, which takes precedence).
  uint32_t initial_shards = 1;
  // Region-carve ceiling for online splits (0 = initial_shards: no split
  // headroom). Capped at the layout's 64-shard maximum.
  uint32_t max_shards = 0;
  // Run the background controller that watches the windowed per-shard heat
  // (hdnh_shard_window_*) and splits the hottest shard automatically.
  // Requires max_shards headroom and an observability-enabled build.
  bool auto_split = false;
  // Windowed op share (0, 1] a single shard must carry to trigger an
  // automatic split.
  double split_load_threshold = 0.5;
};

struct TableOptions {
  // Items the table should accommodate before its first structural growth.
  // For sharded tables this is the aggregate across shards.
  uint64_t capacity = 1 << 16;
  // Applied to the hdnh* schemes (capacity overrides initial_capacity).
  HdnhConfig hdnh;
  uint64_t cceh_segment_bytes = 16 * 1024;
  // Hash-partitioning across independent shards behind the elastic
  // directory facade.
  ShardingOptions sharding;

  // ---- create_kv_store only ----
  // Force the value-log-backed store (equivalent to the "vkv" scheme name):
  // variable-length keys/values, small values inlined in the fixed record.
  bool value_log = false;
  // Cap on total value-log bytes (0 = VkvStore's default).
  uint64_t log_bytes = 0;
  // Per-segment capacity (0 = derived from log_bytes).
  uint64_t log_segment_bytes = 0;
};

// A scheme name split into its base scheme and shard count ("hdnh@8" ->
// {"hdnh", 8}; no suffix -> shards 0, meaning "not specified").
struct SchemeSpec {
  std::string base;
  uint32_t shards = 0;
};

// Splits an "base[@N]" scheme name. Throws std::invalid_argument on a
// malformed suffix (non-numeric, zero, or above the layout's max). Does NOT
// validate the base name — create_table does, with the full known list.
SchemeSpec parse_scheme(const std::string& scheme);

// All base scheme names create_table accepts, in presentation order.
std::vector<std::string> known_schemes();

std::unique_ptr<HashTable> create_table(const std::string& scheme,
                                        nvm::PmemAllocator& alloc,
                                        const TableOptions& opts);

// Conservative PmemPool size for running `max_items` through `scheme`,
// including — for "@N" names — the shard-map superblock and per-shard
// allocator metadata.
uint64_t pool_bytes_hint(const std::string& scheme, uint64_t max_items);

// As above, but sized for the sharding plan: carves max_shards regions
// (split headroom included), each big enough for its share of max_items
// at the *initial* shard count — a split target must be able to absorb
// half of an initial shard.
uint64_t pool_bytes_hint(const std::string& scheme, uint64_t max_items,
                         const ShardingOptions& sharding);

// Builds the variable-length KvStore surface for a scheme name. "vkv[@N]"
// (or TableOptions::value_log) selects the value-log-backed store — keys to
// 64 KiB, values to 16 MiB; any table scheme from known_schemes() yields a
// FixedTableKv wrapping create_table() (wire keys <= 15 B, values <= 14 B).
std::unique_ptr<KvStore> create_kv_store(const std::string& scheme,
                                         nvm::PmemAllocator& alloc,
                                         const TableOptions& opts);

// Conservative PmemPool size for `max_items` records of ~avg_value_bytes
// through create_kv_store(scheme): index structures plus — for "vkv" — the
// value log with GC headroom. `sharding` carves split headroom for the
// fixed-table schemes (the vkv index shards internally and ignores it).
uint64_t kv_pool_bytes_hint(const std::string& scheme, uint64_t max_items,
                            uint64_t avg_value_bytes,
                            const ShardingOptions& sharding = {});

// The four paper schemes, in the paper's presentation order.
std::vector<std::string> paper_schemes();

}  // namespace hdnh
