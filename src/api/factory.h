// Scheme factory: builds any of the hash tables in this repository behind
// the uniform HashTable interface, so tests and benches select schemes by
// name. Known schemes:
//   "hdnh"        the paper's system (OCF + RAFL hot table)
//   "hdnh-lru"    HDNH with the LRU hot-table baseline (Fig 12 ablation)
//   "hdnh-noocf"  HDNH without fingerprint filtering (ablation)
//   "hdnh-nohot"  HDNH without the DRAM hot table (ablation)
//   "hdnh-bg"     HDNH with background synchronous-write threads (§3.4)
//   "level"       Level hashing baseline
//   "cceh"        CCEH baseline
//   "path"        Path hashing baseline
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/hash_table.h"
#include "hdnh/config.h"
#include "nvm/alloc.h"

namespace hdnh {

struct TableOptions {
  // Items the table should accommodate before its first structural growth.
  uint64_t capacity = 1 << 16;
  // Applied to the hdnh* schemes (capacity overrides initial_capacity).
  HdnhConfig hdnh;
  uint64_t cceh_segment_bytes = 16 * 1024;
};

std::unique_ptr<HashTable> create_table(const std::string& scheme,
                                        nvm::PmemAllocator& alloc,
                                        const TableOptions& opts);

// Conservative PmemPool size for running `max_items` through `scheme`.
uint64_t pool_bytes_hint(const std::string& scheme, uint64_t max_items);

// The four paper schemes, in the paper's presentation order.
std::vector<std::string> paper_schemes();

}  // namespace hdnh
