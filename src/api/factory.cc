#include "api/factory.h"

#include <algorithm>
#include <stdexcept>

#include "baselines/cceh.h"
#include "baselines/level_hashing.h"
#include "baselines/path_hashing.h"
#include "hdnh/hdnh.h"
#include "nvm/sharded_layout.h"
#include "store/sharded_table.h"
#include "vkv/vkv_store.h"

namespace hdnh {

namespace {

std::string known_schemes_message() {
  std::string msg;
  for (const auto& s : known_schemes()) {
    if (!msg.empty()) msg += ", ";
    msg += s;
  }
  return msg + " (each also accepts an @N shard suffix, e.g. \"hdnh@8\")";
}

std::unique_ptr<HashTable> create_single(const std::string& base,
                                         nvm::PmemAllocator& alloc,
                                         const TableOptions& opts) {
  if (base == "level") {
    return std::make_unique<LevelHashing>(alloc, opts.capacity);
  }
  if (base == "cceh") {
    return std::make_unique<Cceh>(alloc, opts.capacity,
                                  opts.cceh_segment_bytes);
  }
  if (base == "path") {
    return std::make_unique<PathHashing>(alloc, opts.capacity);
  }

  HdnhConfig cfg = opts.hdnh;
  cfg.initial_capacity = opts.capacity;
  if (base == "hdnh") {
    return std::make_unique<Hdnh>(alloc, cfg);
  }
  if (base == "hdnh-lru") {
    cfg.hot_policy = HdnhConfig::HotPolicy::kLru;
    return std::make_unique<Hdnh>(alloc, cfg);
  }
  if (base == "hdnh-noocf") {
    cfg.enable_ocf = false;
    return std::make_unique<Hdnh>(alloc, cfg);
  }
  if (base == "hdnh-nohot") {
    cfg.enable_hot_table = false;
    return std::make_unique<Hdnh>(alloc, cfg);
  }
  if (base == "hdnh-bg") {
    cfg.sync_mode = HdnhConfig::SyncMode::kBackground;
    return std::make_unique<Hdnh>(alloc, cfg);
  }
  throw std::invalid_argument("unknown scheme: \"" + base +
                              "\"; known schemes: " + known_schemes_message());
}

uint64_t single_pool_bytes_hint(const std::string& base, uint64_t max_items) {
  if (base == "level") return LevelHashing::pool_bytes_hint(max_items);
  if (base == "cceh") return Cceh::pool_bytes_hint(max_items);
  if (base == "path") return PathHashing::pool_bytes_hint(max_items);
  return Hdnh::pool_bytes_hint(max_items, HdnhConfig{});
}

}  // namespace

SchemeSpec parse_scheme(const std::string& scheme) {
  const size_t at = scheme.find('@');
  if (at == std::string::npos) return {scheme, 0};

  const std::string base = scheme.substr(0, at);
  const std::string digits = scheme.substr(at + 1);
  if (digits.empty() ||
      !std::all_of(digits.begin(), digits.end(),
                   [](char c) { return c >= '0' && c <= '9'; }) ||
      digits.size() > 4) {
    throw std::invalid_argument("malformed shard suffix in \"" + scheme +
                                "\": expected \"" + base + "@N\"");
  }
  const unsigned long n = std::stoul(digits);
  if (n == 0 || n > nvm::ShardMapSuper::kMaxShards) {
    throw std::invalid_argument(
        "shard count in \"" + scheme + "\" must be in [1, " +
        std::to_string(nvm::ShardMapSuper::kMaxShards) + "]");
  }
  return {base, static_cast<uint32_t>(n)};
}

std::vector<std::string> known_schemes() {
  return {"hdnh", "hdnh-lru", "hdnh-noocf", "hdnh-nohot",
          "hdnh-bg", "level", "cceh", "path"};
}

std::unique_ptr<HashTable> create_table(const std::string& scheme,
                                        nvm::PmemAllocator& alloc,
                                        const TableOptions& opts) {
  const SchemeSpec spec = parse_scheme(scheme);
  const auto known = known_schemes();
  if (std::find(known.begin(), known.end(), spec.base) == known.end()) {
    throw std::invalid_argument("unknown scheme: \"" + spec.base +
                                "\"; known schemes: " +
                                known_schemes_message());
  }
  uint32_t shards = spec.shards ? spec.shards : opts.sharding.initial_shards;
  // A pool that already holds a shard map stays sharded no matter what the
  // caller asks for — opening an "hdnh@4" pool with plain "hdnh" must not
  // format a second, overlapping table. The layout ctor below then adopts
  // the persisted directory the same way.
  if (shards <= 1 && nvm::ShardedPmemLayout::present(alloc)) shards = 2;
  if (shards <= 1) return create_single(spec.base, alloc, opts);

  // Sharded store runtime: carve (or re-attach) per-shard regions — with
  // max_shards spares as split headroom — then build one inner table per
  // active region. On an attached pool the persisted directory wins, so the
  // facade always matches what is on media.
  const uint32_t max_shards = std::max(opts.sharding.max_shards, shards);
  auto layout = std::make_unique<nvm::ShardedPmemLayout>(
      alloc, shards, 0, nvm::ShardedPmemLayout::kShardMapRoot, max_shards);
  const uint32_t actual = layout->shards();
  TableOptions inner = opts;
  inner.sharding = ShardingOptions{};
  inner.capacity = std::max<uint64_t>(opts.capacity / actual, 64);

  std::vector<std::unique_ptr<HashTable>> tables;
  tables.reserve(actual);
  for (uint32_t s = 0; s < actual; ++s) {
    tables.push_back(create_single(spec.base, layout->shard_alloc(s), inner));
  }
  std::string name =
      std::string(tables[0]->name()) + "@" + std::to_string(actual);
  // The factory closure lets the facade grow new shards of the same scheme
  // inside split-target regions it claims later.
  store::ShardedTable::ShardFactory shard_factory =
      [base = spec.base, inner](nvm::PmemAllocator& a) {
        return create_single(base, a, inner);
      };
  store::ShardedTable::SplitOptions split;
  split.auto_split = opts.sharding.auto_split;
  split.split_load_threshold = opts.sharding.split_load_threshold;
  return std::make_unique<store::ShardedTable>(
      std::move(layout), std::move(tables), std::move(name),
      std::move(shard_factory), split);
}

std::unique_ptr<KvStore> create_kv_store(const std::string& scheme,
                                         nvm::PmemAllocator& alloc,
                                         const TableOptions& opts) {
  const SchemeSpec spec = parse_scheme(scheme);
  if (spec.base == "vkv" || opts.value_log) {
    vkv::VkvStore::Options vopts;
    vopts.expected_records = opts.capacity;
    if (opts.log_bytes) vopts.log_bytes = opts.log_bytes;
    vopts.segment_bytes = opts.log_segment_bytes;
    vopts.shards = spec.shards ? spec.shards : opts.sharding.initial_shards;
    vopts.index = opts.hdnh;
    return std::make_unique<vkv::VkvStore>(alloc, vopts);
  }
  return std::make_unique<FixedTableKv>(create_table(scheme, alloc, opts));
}

uint64_t kv_pool_bytes_hint(const std::string& scheme, uint64_t max_items,
                            uint64_t avg_value_bytes,
                            const ShardingOptions& sharding) {
  const SchemeSpec spec = parse_scheme(scheme);
  if (spec.base != "vkv") return pool_bytes_hint(scheme, max_items, sharding);
  // Index: HDNH shards sized as the table factory does. Log: records carry
  // a 10-byte header plus key bytes (~32 conservative); double for GC
  // headroom (relocation appends before the victim frees), plus a couple of
  // spare segments.
  const uint32_t shards = spec.shards ? spec.shards : 1;
  const uint64_t per_shard = (max_items + shards - 1) / shards;
  const uint64_t index_bytes =
      shards * Hdnh::pool_bytes_hint(per_shard + per_shard / 4, HdnhConfig{}) +
      (shards > 1 ? nvm::ShardedPmemLayout::overhead_bytes(shards) : 0);
  const uint64_t log_bytes =
      2 * max_items * (avg_value_bytes + 48) + (16ull << 20);
  return index_bytes + log_bytes + nvm::PmemAllocator::header_bytes();
}

uint64_t pool_bytes_hint(const std::string& scheme, uint64_t max_items) {
  return pool_bytes_hint(scheme, max_items, ShardingOptions{});
}

uint64_t pool_bytes_hint(const std::string& scheme, uint64_t max_items,
                         const ShardingOptions& sharding) {
  const SchemeSpec spec = parse_scheme(scheme);
  const uint32_t shards =
      std::max(spec.shards ? spec.shards : sharding.initial_shards, 1u);
  const uint32_t regions = std::max(sharding.max_shards, shards);
  if (regions <= 1) return single_pool_bytes_hint(spec.base, max_items);
  // Every carved region — spares included — is sized for an *initial*
  // shard's share of the items, rounded up so routing skew never overflows
  // a region and a split target can absorb half of any initial shard.
  const uint64_t per_shard = (max_items + shards - 1) / shards;
  return regions *
             single_pool_bytes_hint(spec.base, per_shard + per_shard / 4) +
         nvm::ShardedPmemLayout::overhead_bytes(regions) +
         nvm::PmemAllocator::header_bytes();
}

std::vector<std::string> paper_schemes() {
  return {"path", "level", "cceh", "hdnh"};
}

}  // namespace hdnh
