#include "api/factory.h"

#include <stdexcept>

#include "baselines/cceh.h"
#include "baselines/level_hashing.h"
#include "baselines/path_hashing.h"
#include "hdnh/hdnh.h"

namespace hdnh {

std::unique_ptr<HashTable> create_table(const std::string& scheme,
                                        nvm::PmemAllocator& alloc,
                                        const TableOptions& opts) {
  if (scheme == "level") {
    return std::make_unique<LevelHashing>(alloc, opts.capacity);
  }
  if (scheme == "cceh") {
    return std::make_unique<Cceh>(alloc, opts.capacity,
                                  opts.cceh_segment_bytes);
  }
  if (scheme == "path") {
    return std::make_unique<PathHashing>(alloc, opts.capacity);
  }

  HdnhConfig cfg = opts.hdnh;
  cfg.initial_capacity = opts.capacity;
  if (scheme == "hdnh") {
    return std::make_unique<Hdnh>(alloc, cfg);
  }
  if (scheme == "hdnh-lru") {
    cfg.hot_policy = HdnhConfig::HotPolicy::kLru;
    return std::make_unique<Hdnh>(alloc, cfg);
  }
  if (scheme == "hdnh-noocf") {
    cfg.enable_ocf = false;
    return std::make_unique<Hdnh>(alloc, cfg);
  }
  if (scheme == "hdnh-nohot") {
    cfg.enable_hot_table = false;
    return std::make_unique<Hdnh>(alloc, cfg);
  }
  if (scheme == "hdnh-bg") {
    cfg.sync_mode = HdnhConfig::SyncMode::kBackground;
    return std::make_unique<Hdnh>(alloc, cfg);
  }
  throw std::invalid_argument("unknown scheme: " + scheme);
}

uint64_t pool_bytes_hint(const std::string& scheme, uint64_t max_items) {
  if (scheme == "level") return LevelHashing::pool_bytes_hint(max_items);
  if (scheme == "cceh") return Cceh::pool_bytes_hint(max_items);
  if (scheme == "path") return PathHashing::pool_bytes_hint(max_items);
  return Hdnh::pool_bytes_hint(max_items, HdnhConfig{});
}

std::vector<std::string> paper_schemes() {
  return {"path", "level", "cceh", "hdnh"};
}

}  // namespace hdnh
