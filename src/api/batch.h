// Batch helpers shared by the phased multiget implementations (Hdnh and
// the ShardedTable facade).
#pragma once

#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "api/hash_table.h"
#include "api/types.h"

namespace hdnh {

// Span-style batched lookup (API v2): bounds travel with the data, and the
// found flags are explicit bytes rather than a bool* whose width the caller
// has to vouch for. Delegates to the virtual pointer overload, so every
// scheme's phased implementation (HDNH pipeline, sharded regrouping) is
// reached unchanged. values/found must be at least keys.size() long.
inline size_t multiget(HashTable& table, std::span<const Key> keys,
                       std::span<Value> values, std::span<uint8_t> found) {
  if (values.size() < keys.size() || found.size() < keys.size()) {
    throw std::invalid_argument("multiget: output spans shorter than keys");
  }
  static_assert(sizeof(bool) == 1, "found bytes alias bool flags");
  return table.multiget(keys.data(), keys.size(), values.data(),
                        reinterpret_cast<bool*>(found.data()));
}

// Maps every batch position to the first position holding the same key:
// rep[i] == i for the first occurrence, and rep[i] < i for duplicates.
// Callers resolve only the representatives and fan the answers out, so a
// key repeated K times in one batch pays one probe instead of K (Zipfian
// read batches repeat hot keys constantly). h1[i] must be
// key_hash1(keys[i]) — already computed by every caller for routing or
// placement, so dedup adds no extra hashing.
//
// O(n) via a small open-addressed table of positions, reused across calls
// (thread-local scratch): this runs on every multiget, so it must stay a
// few ns per key or it eats the latency the pipeline wins back.
inline void dedup_batch_positions(const Key* keys, size_t n,
                                  const uint64_t* h1, uint32_t* rep) {
  if (n < 2) {
    for (size_t i = 0; i < n; ++i) rep[i] = static_cast<uint32_t>(i);
    return;
  }
  size_t cap = 2;  // >= 2n slots keeps probe chains short
  while (cap < 2 * n) cap <<= 1;
  static thread_local std::vector<uint32_t> slots;  // position + 1; 0 empty
  slots.assign(cap, 0);
  const size_t mask = cap - 1;
  for (size_t i = 0; i < n; ++i) {
    size_t s = h1[i] & mask;
    for (;;) {
      const uint32_t occ = slots[s];
      if (occ == 0) {
        slots[s] = static_cast<uint32_t>(i) + 1;
        rep[i] = static_cast<uint32_t>(i);
        break;
      }
      const uint32_t j = occ - 1;
      if (h1[j] == h1[i] && keys[j] == keys[i]) {
        rep[i] = j;  // first occurrence stays the representative
        break;
      }
      s = (s + 1) & mask;
    }
  }
}

}  // namespace hdnh
