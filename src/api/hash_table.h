// The uniform persistent-hash-table interface.
//
// All four schemes (HDNH and the PATH / LEVEL / CCEH baselines) implement
// this, which lets one test battery and one bench harness drive them all.
// Semantics:
//   * insert  — adds a new key; returns false (no modification) if present.
//   * search  — fills *out on hit; returns hit/miss.
//   * update  — replaces the value of an existing key; false if absent.
//   * erase   — removes a key; false if absent.
// All operations are linearizable per key and safe to call concurrently
// unless a scheme documents otherwise. Tables grow themselves (except PATH,
// which is static per the original design) and throw std::bad_alloc /
// TableFullError when the pool or structure is exhausted.
//
// API v2: the *_s methods express the same operations as Status values
// (miss vs. exists vs. table-full vs. transient-retry) and guarantee no
// scheme exception crosses the API boundary — the surface remote callers
// (src/net) and batch pipelines build on. The bool methods remain the
// compact local interface; default _s shims adapt them, and schemes with a
// native implementation (HDNH, the sharded facade) override.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <utility>

#include "api/types.h"

namespace hdnh {

class TableFullError : public std::runtime_error {
 public:
  explicit TableFullError(const std::string& what) : std::runtime_error(what) {}
};

class HashTable {
 public:
  virtual ~HashTable() = default;

  virtual bool insert(const Key& key, const Value& value) = 0;
  virtual bool search(const Key& key, Value* out) = 0;
  virtual bool update(const Key& key, const Value& value) = 0;
  virtual bool erase(const Key& key) = 0;

  // ---- Status surface (API v2) ----
  // Same operations with the outcome as a value: kOk on success, kExists
  // for a duplicate insert, kNotFound for a miss, and kTableFull instead of
  // a TableFullError/bad_alloc escaping. The default shims adapt the bool
  // methods through guard(), so every factory-created table — including the
  // baselines, which throw from deep inside their rehash paths — already
  // honours the no-exception contract.
  virtual Status insert_s(const Key& key, const Value& value) {
    return guard([&] {
      return insert(key, value) ? Status::Ok() : Status::Exists();
    });
  }
  virtual Status search_s(const Key& key, Value* out) {
    return guard([&] {
      return search(key, out) ? Status::Ok() : Status::NotFound();
    });
  }
  virtual Status update_s(const Key& key, const Value& value) {
    return guard([&] {
      return update(key, value) ? Status::Ok() : Status::NotFound();
    });
  }
  virtual Status erase_s(const Key& key) {
    return guard([&] { return erase(key) ? Status::Ok() : Status::NotFound(); });
  }

  // Upsert in Status terms: insert, falling back to update when the key is
  // already present. The two-step race (concurrent erase between the steps)
  // resolves to kRetry so remote callers can re-issue.
  Status put_s(const Key& key, const Value& value) {
    Status s = insert_s(key, value);
    if (s != StatusCode::kExists) return s;
    s = update_s(key, value);
    if (s == StatusCode::kNotFound) {
      return Status::Retry("key vanished during upsert");
    }
    return s;
  }

  // Batched lookup: values[i]/found[i] for each keys[i]; returns the number
  // of hits. Duplicate keys within one batch each get their own answer.
  // Schemes with a cheaper phased implementation (HDNH, the sharded facade)
  // override this; the default is n independent searches.
  virtual size_t multiget(const Key* keys, size_t n, Value* values,
                          bool* found) {
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      found[i] = search(keys[i], &values[i]);
      hits += found[i] ? 1 : 0;
    }
    return hits;
  }

  // Number of live items (exact when quiescent; approximate under writes).
  virtual uint64_t size() const = 0;

  // Live items / total slots of the durable structure.
  virtual double load_factor() const = 0;

  virtual const char* name() const = 0;

 protected:
  // The API-boundary exception firewall: runs `fn` and converts the legacy
  // capacity exceptions (TableFullError thrown by a scheme, bad_alloc from
  // the pmem allocator underneath it) into Status::kTableFull. Every _s
  // implementation — shim or native override — routes through this.
  template <typename Fn>
  static Status guard(Fn&& fn) {
    try {
      return std::forward<Fn>(fn)();
    } catch (const TableFullError& e) {
      return Status::TableFull(e.what());
    } catch (const std::bad_alloc&) {
      return Status::TableFull("pmem pool exhausted");
    }
  }
};

}  // namespace hdnh
