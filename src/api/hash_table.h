// The uniform persistent-hash-table interface.
//
// All four schemes (HDNH and the PATH / LEVEL / CCEH baselines) implement
// this, which lets one test battery and one bench harness drive them all.
// Semantics:
//   * insert  — adds a new key; returns false (no modification) if present.
//   * search  — fills *out on hit; returns hit/miss.
//   * update  — replaces the value of an existing key; false if absent.
//   * erase   — removes a key; false if absent.
// All operations are linearizable per key and safe to call concurrently
// unless a scheme documents otherwise. Tables grow themselves (except PATH,
// which is static per the original design) and throw std::bad_alloc /
// TableFullError when the pool or structure is exhausted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "api/types.h"

namespace hdnh {

class TableFullError : public std::runtime_error {
 public:
  explicit TableFullError(const std::string& what) : std::runtime_error(what) {}
};

class HashTable {
 public:
  virtual ~HashTable() = default;

  virtual bool insert(const Key& key, const Value& value) = 0;
  virtual bool search(const Key& key, Value* out) = 0;
  virtual bool update(const Key& key, const Value& value) = 0;
  virtual bool erase(const Key& key) = 0;

  // Batched lookup: values[i]/found[i] for each keys[i]; returns the number
  // of hits. Duplicate keys within one batch each get their own answer.
  // Schemes with a cheaper phased implementation (HDNH, the sharded facade)
  // override this; the default is n independent searches.
  virtual size_t multiget(const Key* keys, size_t n, Value* values,
                          bool* found) {
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      found[i] = search(keys[i], &values[i]);
      hits += found[i] ? 1 : 0;
    }
    return hits;
  }

  // Number of live items (exact when quiescent; approximate under writes).
  virtual uint64_t size() const = 0;

  // Live items / total slots of the durable structure.
  virtual double load_factor() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace hdnh
