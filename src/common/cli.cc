#include "common/cli.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace hdnh {

Cli::Cli(int argc, char** argv) : prog_(argc > 0 ? argv[0] : "prog") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";  // bare boolean flag
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

std::string Cli::get_str(const std::string& name, const std::string& def,
                         const std::string& doc) {
  known_.push_back(name);
  help_lines_.push_back("  --" + name + " (default: " + def + ")  " + doc);
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Cli::get_int(const std::string& name, int64_t def,
                     const std::string& doc) {
  auto s = get_str(name, std::to_string(def), doc);
  return std::strtoll(s.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def,
                       const std::string& doc) {
  auto s = get_str(name, std::to_string(def), doc);
  return std::strtod(s.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def, const std::string& doc) {
  auto s = get_str(name, def ? "true" : "false", doc);
  return s == "true" || s == "1" || s == "yes";
}

void Cli::finish() const {
  if (values_.count("help")) {
    std::printf("usage: %s [flags]\n", prog_.c_str());
    for (const auto& l : help_lines_) std::printf("%s\n", l.c_str());
    std::exit(0);
  }
  for (const auto& [k, v] : values_) {
    (void)v;
    if (std::find(known_.begin(), known_.end(), k) == known_.end()) {
      std::fprintf(stderr, "unknown flag: --%s (see --help)\n", k.c_str());
      std::exit(2);
    }
  }
}

}  // namespace hdnh
