// Log-bucketed latency histogram with percentile and CDF extraction.
// Used by the tail-latency bench (paper Fig 15) and generally by the harness.
//
// Buckets are exponential with 64 sub-buckets per power of two, giving
// ~1.6% relative resolution over [1ns, ~584 years] with a fixed 4 KB table —
// the HdrHistogram idea, simplified.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

namespace hdnh {

class Histogram {
 public:
  static constexpr int kSubBits = 6;                  // 64 sub-buckets
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kBuckets = 64 * kSub;          // generous upper bound

  Histogram() { counts_.fill(0); }

  void record(uint64_t value_ns) {
    ++count_;
    sum_ += value_ns;
    max_ = std::max(max_, value_ns);
    min_ = std::min(min_, value_ns);
    counts_[index_for(value_ns)]++;
  }

  // Merge another histogram into this one (for per-thread aggregation).
  void merge(const Histogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
    for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  }

  uint64_t count() const { return count_; }
  uint64_t max() const { return count_ ? max_ : 0; }
  uint64_t min() const { return count_ ? min_ : 0; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  // Value at quantile q in [0,1] (e.g. 0.999). Returns a bucket-representative
  // value; resolution ~1.6%.
  uint64_t percentile(double q) const;

  // (value_ns, cumulative_fraction) points for every non-empty bucket —
  // exactly what a CDF plot needs.
  std::vector<std::pair<uint64_t, double>> cdf() const;

  // ---- external-bucket ingestion (obs/window.h) -------------------------
  //
  // The sliding-window layer keeps its per-thread live histograms as atomic
  // bucket arrays sharing this class's bucket mapping, and folds them into
  // plain Histograms on rotation. merge_bucket adds to one bucket only;
  // merge_summary folds the externally-tracked count/sum/max/min. The two
  // must be called consistently (same totals) or count() and the bucket sum
  // drift apart.
  void merge_bucket(int idx, uint64_t n) { counts_[idx] += n; }
  void merge_summary(uint64_t count, uint64_t sum, uint64_t mx, uint64_t mn) {
    count_ += count;
    sum_ += sum;
    if (count > 0) {
      max_ = std::max(max_, mx);
      min_ = std::min(min_, mn);
    }
  }

  // Bucket mapping, public so external (atomic) bucket arrays can share it.
  static int index_for(uint64_t v) {
    if (v < kSub) return static_cast<int>(v);
    const int msb = 63 - __builtin_clzll(v);
    const int shift = msb - kSubBits;
    const int sub = static_cast<int>((v >> shift) & (kSub - 1));
    int idx = ((msb - kSubBits + 1) << kSubBits) + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  static uint64_t value_for(int idx) {
    if (idx < kSub) return static_cast<uint64_t>(idx);
    const int bucket = idx >> kSubBits;
    const int sub = idx & (kSub - 1);
    const int shift = bucket - 1;
    return ((static_cast<uint64_t>(kSub) + sub) << shift) + (1ULL << shift) / 2;
  }

 private:
  std::array<uint64_t, kBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = UINT64_MAX;
};

}  // namespace hdnh
