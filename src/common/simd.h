// Portable SIMD shim for the 16-bit slot-state words both DRAM filters are
// built from (the OCF over the non-volatile table, the hot table's state
// array). A bucket's words are contiguous, so "which slots could hold this
// key" is one masked 16-byte compare instead of an eight-iteration scalar
// scan — the Dash-style bucket-wide fingerprint match.
//
// Three tiers, selected at compile time and overridable at runtime:
//   * kAvx2   — 16-lane kernels (256-bit) where a caller has 16 words;
//   * kSse2   — 8-lane kernels (128-bit), the x86-64 baseline;
//   * kScalar — per-lane relaxed atomic loads, bit-identical results.
// force_level() clamps to what the binary was compiled with; the env var
// HDNH_SIMD=scalar|sse2|avx2 sets the initial level (CI runs the parity
// suite under both paths this way).
//
// Concurrency contract: the vector kernels read racing memory with plain
// (non-atomic) wide loads. They are ONLY a pre-filter — every caller must
// re-load any matched word through its std::atomic and re-verify before
// acting, exactly as the scalar probe protocol already does. Torn or stale
// lanes therefore cost at most a wasted verify or a missed *concurrent*
// insert, both of which the optimistic protocol tolerates by design. The
// kernels are excluded from TSan instrumentation for this reason (see
// tsan.supp).
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

#if defined(__GNUC__) || defined(__clang__)
#define HDNH_NO_SANITIZE_THREAD __attribute__((no_sanitize_thread))
#else
#define HDNH_NO_SANITIZE_THREAD
#endif

namespace hdnh::simd {

enum class IsaLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

constexpr IsaLevel compiled_level() {
#if defined(__AVX2__)
  return IsaLevel::kAvx2;
#elif defined(__SSE2__)
  return IsaLevel::kSse2;
#else
  return IsaLevel::kScalar;
#endif
}

const char* level_name(IsaLevel l);

// Active level: starts at compiled_level() unless HDNH_SIMD overrides it;
// force_level() (clamped to the compiled level) changes it at runtime for
// parity testing. Reads are relaxed — flipping mid-traffic is safe, both
// paths compute the same masks.
IsaLevel active_level();
void force_level(IsaLevel l);

namespace detail {
extern std::atomic<int> g_active;  // initialised from HDNH_SIMD in simd.cc

inline bool vector_active() {
  return g_active.load(std::memory_order_relaxed) >=
         static_cast<int>(IsaLevel::kSse2);
}
inline bool avx2_active() {
  return g_active.load(std::memory_order_relaxed) >=
         static_cast<int>(IsaLevel::kAvx2);
}

inline uint32_t match8_scalar(const uint16_t* w, uint16_t mask,
                              uint16_t pattern) {
  uint32_t m = 0;
  for (uint32_t i = 0; i < 8; ++i) {
    const uint16_t v = __atomic_load_n(&w[i], __ATOMIC_RELAXED);
    m |= static_cast<uint32_t>((v & mask) == pattern) << i;
  }
  return m;
}

#if defined(__SSE2__)
// 0xFFFF/0x0000 16-bit lanes -> one bit per lane.
HDNH_NO_SANITIZE_THREAD inline uint32_t movemask16x8(__m128i eq) {
  return static_cast<uint32_t>(_mm_movemask_epi8(
             _mm_packs_epi16(eq, _mm_setzero_si128()))) &
         0xFFu;
}

HDNH_NO_SANITIZE_THREAD inline uint32_t match8_sse2(const uint16_t* w,
                                                    uint16_t mask,
                                                    uint16_t pattern) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  const __m128i eq =
      _mm_cmpeq_epi16(_mm_and_si128(v, _mm_set1_epi16(static_cast<short>(mask))),
                      _mm_set1_epi16(static_cast<short>(pattern)));
  return movemask16x8(eq);
}
#endif

#if defined(__AVX2__)
HDNH_NO_SANITIZE_THREAD inline uint32_t match16_avx2(const uint16_t* w,
                                                     uint16_t mask,
                                                     uint16_t pattern) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  const __m256i eq = _mm256_cmpeq_epi16(
      _mm256_and_si256(v, _mm256_set1_epi16(static_cast<short>(mask))),
      _mm256_set1_epi16(static_cast<short>(pattern)));
  // packs operates within 128-bit halves; permute stitches the two 8-byte
  // results back into lane order before the byte movemask.
  const __m256i packed = _mm256_packs_epi16(eq, _mm256_setzero_si256());
  const __m256i ordered = _mm256_permute4x64_epi64(packed, 0xD8);
  return static_cast<uint32_t>(
             _mm_movemask_epi8(_mm256_castsi256_si128(ordered))) &
         0xFFFFu;
}
#endif
}  // namespace detail

// Bit i (i < n, n <= 8) set iff (words[i] & mask) == pattern. The caller
// guarantees 16 readable bytes at `words` (pad trailing buckets); lanes at
// or beyond n are masked out of the result.
inline uint32_t match8x16_prefix(const uint16_t* words, uint32_t n,
                                 uint16_t mask, uint16_t pattern) {
  uint32_t m;
#if defined(__SSE2__)
  if (detail::vector_active()) {
    m = detail::match8_sse2(words, mask, pattern);
  } else {
    m = detail::match8_scalar(words, mask, pattern);
  }
#else
  m = detail::match8_scalar(words, mask, pattern);
#endif
  return n >= 8 ? m : m & ((1u << n) - 1);
}

// 16-lane variant for 16-word buckets (the hot table's spb=16 sweep point):
// bit i (i < 16) set iff (words[i] & mask) == pattern. Requires 32 readable
// bytes.
inline uint32_t match16x16(const uint16_t* words, uint16_t mask,
                           uint16_t pattern) {
#if defined(__AVX2__)
  if (detail::avx2_active()) return detail::match16_avx2(words, mask, pattern);
#endif
  return match8x16_prefix(words, 8, mask, pattern) |
         (match8x16_prefix(words + 8, 8, mask, pattern) << 8);
}

// One-pass classification of the 8 OCF words of a non-volatile bucket.
// candidate: (w & cand_mask) == cand_pattern — the lanes worth an NVM probe
// (valid, not busy, fingerprint equal when the OCF is enabled);
// busy: writer-owned lanes the authoritative pass must spin on;
// valid: lanes holding a live record (for the filtered-probe statistics).
struct OcfMasks {
  uint32_t candidate;
  uint32_t busy;
  uint32_t valid;
};

namespace detail {
inline OcfMasks prefilter8_scalar(const uint16_t* w, uint16_t cand_mask,
                                  uint16_t cand_pattern, uint16_t busy_bit,
                                  uint16_t valid_bit) {
  OcfMasks m{0, 0, 0};
  for (uint32_t i = 0; i < 8; ++i) {
    const uint16_t v = __atomic_load_n(&w[i], __ATOMIC_RELAXED);
    const uint32_t bit = 1u << i;
    if ((v & cand_mask) == cand_pattern) m.candidate |= bit;
    if (v & busy_bit) m.busy |= bit;
    if (v & valid_bit) m.valid |= bit;
  }
  return m;
}

#if defined(__SSE2__)
HDNH_NO_SANITIZE_THREAD inline OcfMasks prefilter8_sse2(
    const uint16_t* w, uint16_t cand_mask, uint16_t cand_pattern,
    uint16_t busy_bit, uint16_t valid_bit) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  const __m128i cand = _mm_cmpeq_epi16(
      _mm_and_si128(v, _mm_set1_epi16(static_cast<short>(cand_mask))),
      _mm_set1_epi16(static_cast<short>(cand_pattern)));
  const __m128i busyv = _mm_set1_epi16(static_cast<short>(busy_bit));
  const __m128i busy = _mm_cmpeq_epi16(_mm_and_si128(v, busyv), busyv);
  const __m128i validv = _mm_set1_epi16(static_cast<short>(valid_bit));
  const __m128i valid = _mm_cmpeq_epi16(_mm_and_si128(v, validv), validv);
  return OcfMasks{movemask16x8(cand), movemask16x8(busy), movemask16x8(valid)};
}
#endif
}  // namespace detail

inline OcfMasks ocf_prefilter8(const uint16_t* words, uint16_t cand_mask,
                               uint16_t cand_pattern, uint16_t busy_bit,
                               uint16_t valid_bit) {
#if defined(__SSE2__)
  if (detail::vector_active()) {
    return detail::prefilter8_sse2(words, cand_mask, cand_pattern, busy_bit,
                                   valid_bit);
  }
#endif
  return detail::prefilter8_scalar(words, cand_mask, cand_pattern, busy_bit,
                                   valid_bit);
}

}  // namespace hdnh::simd
