#include "common/simd.h"

#include <cstdlib>
#include <cstring>

namespace hdnh::simd {

namespace {

int clamp_to_compiled(IsaLevel l) {
  int v = static_cast<int>(l);
  const int max = static_cast<int>(compiled_level());
  if (v > max) v = max;
  if (v < 0) v = 0;
  return v;
}

int initial_level() {
  // HDNH_SIMD=scalar|sse2|avx2 pins the starting level (clamped to what the
  // binary supports); anything else — including unset — means "best".
  const char* env = std::getenv("HDNH_SIMD");
  if (env) {
    if (std::strcmp(env, "scalar") == 0) {
      return clamp_to_compiled(IsaLevel::kScalar);
    }
    if (std::strcmp(env, "sse2") == 0) {
      return clamp_to_compiled(IsaLevel::kSse2);
    }
    if (std::strcmp(env, "avx2") == 0) {
      return clamp_to_compiled(IsaLevel::kAvx2);
    }
  }
  return static_cast<int>(compiled_level());
}

}  // namespace

namespace detail {
std::atomic<int> g_active{initial_level()};
}  // namespace detail

IsaLevel active_level() {
  return static_cast<IsaLevel>(
      detail::g_active.load(std::memory_order_relaxed));
}

void force_level(IsaLevel l) {
  detail::g_active.store(clamp_to_compiled(l), std::memory_order_relaxed);
}

const char* level_name(IsaLevel l) {
  switch (l) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kSse2:
      return "sse2";
    case IsaLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

}  // namespace hdnh::simd
