#include "common/histogram.h"

namespace hdnh {

uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min();
  if (q >= 1) return max();
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen > target) return value_for(i);
  }
  return max();
}

std::vector<std::pair<uint64_t, double>> Histogram::cdf() const {
  std::vector<std::pair<uint64_t, double>> out;
  if (count_ == 0) return out;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    seen += counts_[i];
    out.emplace_back(value_for(i),
                     static_cast<double>(seen) / static_cast<double>(count_));
  }
  return out;
}

}  // namespace hdnh
