// Minimal --key=value flag parser for benches and examples.
// Unknown flags are an error (catches typos in sweep scripts); a bare
// `--help` prints registered flags and exits.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hdnh {

class Cli {
 public:
  Cli(int argc, char** argv);

  // Registered getters: each call also registers the flag + doc for --help.
  std::string get_str(const std::string& name, const std::string& def,
                      const std::string& doc = "");
  int64_t get_int(const std::string& name, int64_t def,
                  const std::string& doc = "");
  double get_double(const std::string& name, double def,
                    const std::string& doc = "");
  bool get_bool(const std::string& name, bool def, const std::string& doc = "");

  // Call after all getters: errors on unknown flags, handles --help.
  void finish() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::vector<std::string> known_;
  std::string prog_;
  mutable std::vector<std::string> help_lines_;
};

}  // namespace hdnh
