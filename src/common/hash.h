// 64-bit seeded hashing used by every scheme in this repository.
//
// We implement an xxHash64-style mixer from scratch (no external deps).
// All tables derive their two independent hash functions from one
// computation with different seeds, and HDNH's one-byte fingerprint is the
// least-significant byte of the primary hash (paper §3.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace hdnh {

namespace detail {
inline constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
inline constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t rotl(uint64_t v, int r) { return (v << r) | (v >> (64 - r)); }

inline uint64_t read64(const void* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint32_t read32(const void* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t round64(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t merge_round(uint64_t acc, uint64_t val) {
  val = round64(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}
}  // namespace detail

// Hash `len` bytes at `data` with `seed`. xxHash64 algorithm.
uint64_t hash64(const void* data, size_t len, uint64_t seed = 0);

// CRC-32C (Castagnoli polynomial, reflected). Software table implementation
// — no SSE4.2 dependency. `seed` is the running CRC state, so checksums can
// be chained and callers can fold a per-record salt into the initial state
// (the value log seeds each record's CRC with its segment salt and offset,
// so a stale record from a recycled segment can never false-match).
uint32_t crc32c(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t crc32c(std::string_view sv, uint32_t seed = 0) {
  return crc32c(sv.data(), sv.size(), seed);
}

inline uint64_t hash64(std::string_view sv, uint64_t seed = 0) {
  return hash64(sv.data(), sv.size(), seed);
}

// Cheap integer mixer (SplitMix64 finalizer) — used to scramble keyspace ids
// and to derive secondary hashes from a primary one.
inline uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// One-byte fingerprint of a full 64-bit hash (paper §3.2: "the least
// significant byte of the key's hash value").
inline uint8_t fingerprint(uint64_t h) { return static_cast<uint8_t>(h & 0xFF); }

// Seeds for the two independent hash functions every scheme uses.
inline constexpr uint64_t kSeed1 = 0x5851F42D4C957F2DULL;
inline constexpr uint64_t kSeed2 = 0x14057B7EF767814FULL;

}  // namespace hdnh
