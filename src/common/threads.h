// Small threading utilities: a reusable spin barrier for bench start lines,
// core pinning (best effort), and a parallel-for used by multi-threaded
// recovery (paper §3.7 splits non-volatile-table buckets into batches).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace hdnh {

// Reusable sense-reversing spin barrier.
class SpinBarrier {
 public:
  explicit SpinBarrier(uint32_t parties) : parties_(parties) {}

  void arrive_and_wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

 private:
  const uint32_t parties_;
  std::atomic<uint32_t> arrived_{0};
  std::atomic<bool> sense_{false};
};

// Best-effort pin of the calling thread to a CPU. Returns false if the OS
// refuses (e.g. single-core container) — callers treat that as advisory.
bool pin_to_core(uint32_t core);

// Run fn(worker_id, begin, end) over [0, n) split into `workers` contiguous
// batches on `workers` threads (worker 0 is the calling thread).
void parallel_for(uint64_t n, uint32_t workers,
                  const std::function<void(uint32_t, uint64_t, uint64_t)>& fn);

}  // namespace hdnh
